package jaaru_test

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benchmarks for the design choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// The Fig14 benchmarks measure full exhaustive explorations (the paper's
// JTime column); per-op custom metrics report the execution and
// failure-point counts so the table's shape is visible from the bench
// output.

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"jaaru"
	"jaaru/internal/core"
	"jaaru/internal/fuzz"
	"jaaru/internal/litmus"
	"jaaru/internal/netsim"
	"jaaru/internal/pmdk"
	"jaaru/internal/recipe"
	"jaaru/internal/yat"
)

// ---- §3.1, Figures 2–3: constraint refinement ------------------------------

func figure2() jaaru.Program {
	return jaaru.Program{
		Name: "figure2",
		Run: func(c *jaaru.Context) {
			x, y := c.Root(), c.Root().Add(8)
			c.Store64(y, 1)
			c.Store64(x, 2)
			c.Clflush(x, 8)
			c.Store64(y, 3)
			c.Store64(x, 4)
			c.Store64(y, 5)
			c.Store64(x, 6)
		},
		Recover: func(c *jaaru.Context) {
			_ = c.Load64(c.Root())
			_ = c.Load64(c.Root().Add(8))
		},
	}
}

func BenchmarkFigure2Refinement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := jaaru.Check(figure2(), jaaru.Options{})
		if res.Buggy() || res.Scenarios != 8 {
			b.Fatalf("unexpected result: %+v", res)
		}
	}
}

// ---- §3.2, Figure 4: commit stores ------------------------------------------

func BenchmarkFigure4CommitStore(b *testing.B) {
	prog := jaaru.Program{
		Name: "figure4",
		Run: func(c *jaaru.Context) {
			tmp := c.AllocLine(8)
			c.Store64(tmp, 0xD0D0)
			c.Clflush(tmp, 8)
			c.StorePtr(c.Root(), tmp)
			c.Clflush(c.Root(), 8)
		},
		Recover: func(c *jaaru.Context) {
			if child := c.LoadPtr(c.Root()); child != 0 {
				_ = c.Load64(child)
			}
		},
	}
	for i := 0; i < b.N; i++ {
		res := jaaru.Check(prog, jaaru.Options{})
		if res.Buggy() || res.Scenarios != 4 {
			b.Fatalf("unexpected result: %+v", res)
		}
	}
}

// ---- Table 1: the litmus suite -----------------------------------------------

func BenchmarkTable1Litmus(b *testing.B) {
	tests := litmus.Tests()
	for i := 0; i < b.N; i++ {
		for _, tst := range tests {
			if _, res := litmus.Run(tst); res.Buggy() {
				b.Fatalf("%s: %v", tst.Name, res.Bugs)
			}
		}
	}
}

// ---- Figure 12: PMDK bug detection -------------------------------------------

func BenchmarkFig12_PMDKBugs(b *testing.B) {
	cases := pmdk.BugCases()
	for i := 0; i < b.N; i++ {
		for _, bc := range cases {
			res := core.New(bc.Program(), core.Options{StopAtFirstBug: true}).Run()
			if !res.Buggy() {
				b.Fatalf("bug %d not detected", bc.ID)
			}
		}
	}
}

// ---- Figure 13: RECIPE bug detection ------------------------------------------

func BenchmarkFig13_RECIPEBugs(b *testing.B) {
	cases := recipe.BugCases()
	for i := 0; i < b.N; i++ {
		for _, bc := range cases {
			res := core.New(bc.Program(), core.Options{
				StopAtFirstBug: true,
				MaxSteps:       20_000,
			}).Run()
			if !res.Buggy() {
				b.Fatalf("bug %d not detected", bc.ID)
			}
		}
	}
}

// ---- Figure 14: exhaustive exploration of the fixed RECIPE variants ----------

func benchFig14(b *testing.B, idx int) {
	prog := recipe.PerfWorkloads(1)[idx]
	var res *core.Result
	for i := 0; i < b.N; i++ {
		res = core.New(prog, core.Options{}).Run()
		if res.Buggy() {
			b.Fatalf("unexpected bug: %v", res.Bugs[0])
		}
	}
	b.ReportMetric(float64(res.Executions), "JExecs")
	b.ReportMetric(float64(res.FailurePoints), "FPoints")
	b.ReportMetric(float64(res.Executions-1)/float64(res.FailurePoints), "execs/FP")
}

func BenchmarkFig14_CCEH(b *testing.B)       { benchFig14(b, 0) }
func BenchmarkFig14_FAST_FAIR(b *testing.B)  { benchFig14(b, 1) }
func BenchmarkFig14_P_ART(b *testing.B)      { benchFig14(b, 2) }
func BenchmarkFig14_P_BwTree(b *testing.B)   { benchFig14(b, 3) }
func BenchmarkFig14_P_CLHT(b *testing.B)     { benchFig14(b, 4) }
func BenchmarkFig14_P_Masstree(b *testing.B) { benchFig14(b, 5) }

// ---- Parallel exploration scaling ---------------------------------------------
//
// Serial and Workers=N explorations of the same Figure 14 workload, timed
// side by side. Reported metrics: parallel executions per second and the
// wall-clock speedup over the serial run. The speedup tracks min(workers,
// GOMAXPROCS): on a single-CPU host the workers time-slice one core and the
// metric hovers around 1.0 (the interesting number there is that the
// parallel driver's coordination overhead stays in the noise); with real
// cores it approaches the worker count for tree-heavy workloads.

func benchParallelScaling(b *testing.B, workers int) {
	prog := recipe.PerfWorkloads(1)[0] // CCEH: the widest fixed RECIPE tree
	var serial, par time.Duration
	var execs int
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		rs := core.New(prog, core.Options{}).Run()
		serial += time.Since(t0)
		t0 = time.Now()
		rp := core.New(prog, core.Options{Workers: workers}).Run()
		par += time.Since(t0)
		if rs.Executions != rp.Executions || rp.Buggy() {
			b.Fatalf("parallel diverged: %d vs %d executions, bugs %v",
				rp.Executions, rs.Executions, rp.Bugs)
		}
		execs = rp.Executions
	}
	b.ReportMetric(float64(execs)*float64(b.N)/par.Seconds(), "execs/s")
	b.ReportMetric(serial.Seconds()/par.Seconds(), "speedup")
}

func BenchmarkParallelScaling(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchParallelScaling(b, w)
		})
	}
}

// Figure 14's Yat column: the analytic eager state count.
func BenchmarkFig14_YatStateCount(b *testing.B) {
	progs := recipe.PerfWorkloads(1)
	var total float64
	for i := 0; i < b.N; i++ {
		for _, prog := range progs {
			total += orderOfMagnitude(yat.CountStates(prog, core.Options{}))
		}
	}
	b.ReportMetric(total/float64(b.N), "log10(YatStates)Σ")
}

// orderOfMagnitude extracts the decimal exponent from a state count (the
// counts themselves overflow float64).
func orderOfMagnitude(cnt *yat.CountResult) float64 {
	s := cnt.Sci()
	i := strings.LastIndexByte(s, 'e')
	if i < 0 {
		return 0
	}
	exp, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return 0
	}
	return float64(exp)
}

// ---- Ablation: commit stores (the §3.2 complexity claim) ----------------------
//
// The same n-line initialization explored (a) guarded by a commit store the
// recovery checks first, and (b) read unconditionally by recovery. Lazy
// exploration makes (a) linear in n while (b) is exponential — the bench
// bounds (b) with MaxScenarios and reports explored executions for both.

func ablationProgram(lines int, commitStore bool) jaaru.Program {
	return jaaru.Program{
		Name: fmt.Sprintf("ablation-%d-%v", lines, commitStore),
		Run: func(c *jaaru.Context) {
			arr := c.AllocLine(uint64(lines) * 64)
			for i := 0; i < lines; i++ {
				c.Store64(arr.Add(uint64(i)*64), uint64(i)+1)
			}
			c.Clflush(arr, uint64(lines)*64)
			c.StorePtr(c.Root(), arr)
			c.Clflush(c.Root(), 8)
		},
		Recover: func(c *jaaru.Context) {
			arr := c.LoadPtr(c.Root())
			if commitStore {
				if arr == 0 {
					return // not committed: do not touch the data
				}
			} else if arr == 0 {
				// BUG PATTERN: read the data anyway, at its well-known
				// offset, without the commit check.
				arr = c.Root().Add(jaaru.RootSize)
			}
			for i := 0; i < lines; i++ {
				_ = c.Load64(arr.Add(uint64(i) * 64))
			}
		},
	}
}

func BenchmarkAblationCommitStore(b *testing.B) {
	var execs int
	for i := 0; i < b.N; i++ {
		res := jaaru.Check(ablationProgram(8, true), jaaru.Options{})
		execs = res.Executions
	}
	b.ReportMetric(float64(execs), "JExecs")
}

func BenchmarkAblationNoCommitStore(b *testing.B) {
	var execs int
	for i := 0; i < b.N; i++ {
		res := jaaru.Check(ablationProgram(8, false), jaaru.Options{
			MaxScenarios: 4096,
		})
		execs = res.Executions
	}
	b.ReportMetric(float64(execs), "JExecs")
}

// ---- Ablation: eviction policies ----------------------------------------------

func BenchmarkAblationEvictionEager(b *testing.B) {
	prog := recipe.CCEHWorkload(4, recipe.CCEHBugs{})
	for i := 0; i < b.N; i++ {
		if res := jaaru.Check(prog, jaaru.Options{Eviction: jaaru.EvictEager}); res.Buggy() {
			b.Fatal(res.Bugs)
		}
	}
}

func BenchmarkAblationEvictionAtFences(b *testing.B) {
	prog := recipe.CCEHWorkload(4, recipe.CCEHBugs{})
	for i := 0; i < b.N; i++ {
		if res := jaaru.Check(prog, jaaru.Options{Eviction: jaaru.EvictAtFences}); res.Buggy() {
			b.Fatal(res.Bugs)
		}
	}
}

// ---- Microbenchmark: simulation overhead per guest operation -------------------
//
// Context for the paper's 736× per-execution slowdown: the cost of one
// simulated store+flush+load round trip through the TSO machinery.

func BenchmarkGuestOpThroughput(b *testing.B) {
	res := jaaru.Execute("ops", func(c *jaaru.Context) {
		a := c.Alloc(64, 64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Store64(a, uint64(i))
			c.Clflushopt(a, 8)
			c.Sfence()
			if c.Load64(a) != uint64(i) {
				b.Fatal("lost store")
			}
		}
	}, jaaru.Options{MaxSteps: 1 << 40})
	if res.Buggy() {
		b.Fatal(res.Bugs)
	}
}

// ---- Yat equivalence spot check at bench scale ---------------------------------

func BenchmarkYatEagerSmallProgram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := yat.Eager(figure2(), core.Options{}, 100000)
		if err != nil || len(res.Bugs) != 0 {
			b.Fatalf("eager: %v %v", err, res)
		}
	}
}

// ---- Extensions ------------------------------------------------------------------

// Exhaustive checking of the replayed-trace KV server (the deterministic
// record-and-replay extension lifting the paper's Redis limitation).
func BenchmarkServerReplayExploration(b *testing.B) {
	trace := netsim.Trace{
		{Op: netsim.OpSet, Key: 1, Val: 10},
		{Op: netsim.OpAdd, Key: 1, Val: 5},
		{Op: netsim.OpSet, Key: 2, Val: 20},
		{Op: netsim.OpDel, Key: 1},
		{Op: netsim.OpAdd, Key: 2, Val: 7},
	}
	for i := 0; i < b.N; i++ {
		res := jaaru.Check(netsim.Program("bench-server", trace, netsim.ServerBugs{}),
			jaaru.Options{})
		if res.Buggy() {
			b.Fatal(res.Bugs)
		}
	}
}

// One lazy-vs-eager cross-check of a random program (the self-validation
// fuzzer's unit of work).
func BenchmarkFuzzCrossCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := fuzz.CrossCheck(fuzz.Config{Seed: int64(i), MixedSizes: true, RMW: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: undo-log vs redo-log transactions on the same three-word
// transfer, exhaustively explored.
func BenchmarkAblationUndoLogTx(b *testing.B) {
	prog := jaaru.Program{
		Name: "undo-ablation",
		Run: func(c *jaaru.Context) {
			p := pmdk.Create(c, 8192, pmdk.CreateBugs{})
			a := p.PAlloc(24, pmdk.HeapBugs{})
			p.SetRootObj(a)
			tx := p.TxBegin(pmdk.TxBugs{})
			tx.Add(a, 24)
			c.Store64(a, 1)
			c.Store64(a.Add(8), 2)
			c.Store64(a.Add(16), 3)
			tx.Commit()
		},
		Recover: func(c *jaaru.Context) {
			p, ok := pmdk.Open(c)
			if !ok {
				return
			}
			p.TxRecover()
			if a := p.RootObj(); a != 0 {
				v := c.Load64(a)
				c.Assert(v == 0 || v == 1, "torn: %d", v)
			}
		},
	}
	var execs int
	for i := 0; i < b.N; i++ {
		res := jaaru.Check(prog, jaaru.Options{})
		if res.Buggy() {
			b.Fatal(res.Bugs)
		}
		execs = res.Executions
	}
	b.ReportMetric(float64(execs), "JExecs")
}

func BenchmarkAblationRedoLogTx(b *testing.B) {
	prog := jaaru.Program{
		Name: "redo-ablation",
		Run: func(c *jaaru.Context) {
			p := pmdk.Create(c, 8192, pmdk.CreateBugs{})
			a := p.PAlloc(24, pmdk.HeapBugs{})
			p.SetRootObj(a)
			tx := p.RedoBegin()
			tx.Set(a, 1)
			tx.Set(a.Add(8), 2)
			tx.Set(a.Add(16), 3)
			tx.Commit()
		},
		Recover: func(c *jaaru.Context) {
			p, ok := pmdk.Open(c)
			if !ok {
				return
			}
			p.RedoRecover()
			if a := p.RootObj(); a != 0 {
				v := c.Load64(a)
				c.Assert(v == 0 || v == 1, "torn: %d", v)
			}
		},
	}
	var execs int
	for i := 0; i < b.N; i++ {
		res := jaaru.Check(prog, jaaru.Options{})
		if res.Buggy() {
			b.Fatal(res.Bugs)
		}
		execs = res.Executions
	}
	b.ReportMetric(float64(execs), "JExecs")
}

// Ablation: the cost of exploring store-buffer eviction exhaustively
// (Figure 11's "choose to evict") versus the default eager policy, on the
// same small program.
func BenchmarkAblationEvictExplore(b *testing.B) {
	prog := jaaru.Program{
		Name: "evict-explore-ablation",
		Run: func(c *jaaru.Context) {
			r := c.Root()
			c.Store64(r, 1)
			c.Clflush(r, 8)
			c.Store64(r.Add(64), 2)
			c.Clflush(r.Add(64), 8)
		},
		Recover: func(c *jaaru.Context) {
			_ = c.Load64(c.Root())
			_ = c.Load64(c.Root().Add(64))
		},
	}
	var execs int
	for i := 0; i < b.N; i++ {
		res := jaaru.Check(prog, jaaru.Options{Eviction: jaaru.EvictExplore})
		if res.Buggy() {
			b.Fatal(res.Bugs)
		}
		execs = res.Executions
	}
	b.ReportMetric(float64(execs), "JExecs")
}

// ---- Observability layer overhead ----------------------------------------------
//
// The acceptance bar for the observability layer: with Observe unset every
// instrumentation hook reduces to an inlined nil-receiver check, so the
// disabled run must be indistinguishable from the pre-instrumentation
// baseline (<2%), and even the enabled run only pays one shard-local atomic
// per hook. The disabled run also covers the forensics hooks (the witness
// recorder in traceOp, the TSO probe, the interval tracer): outside a
// BuildWitness replay all of them are nil, so exploration pays the same
// one-branch-per-hook cost as the observability counters. Compare with:
//
//	go test -bench Observability -count 10 . | benchstat

func BenchmarkObservability(b *testing.B) {
	prog := recipe.PerfWorkloads(1)[1] // FAST_FAIR: mid-size, flush-heavy
	for _, cfg := range []struct {
		name string
		opts jaaru.Options
	}{
		{"disabled", jaaru.Options{}},
		{"enabled", jaaru.Options{Observe: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := jaaru.Check(prog, cfg.opts)
				if res.Buggy() {
					b.Fatal(res.Bugs)
				}
			}
		})
	}
}

// The cost of the forensics layer itself: one fully-instrumented replay
// (BuildWitness) and one ddmin pass over the choice prefix (Minimize), on a
// bug found once outside the timed region. Both are off the exploration hot
// path — this pins what a user pays per explained bug, not per scenario.
// The subject is the first seeded RECIPE bug under jaaru-bugs' options: a
// CCEH recovery loop whose scenario runs to the 20k step budget, so the
// witness is mid-size (~20k ops, ~160k per-byte load resolutions) rather
// than a litmus-scale toy.
func BenchmarkWitness(b *testing.B) {
	bc := recipe.BugCases()[0]
	prog := bc.Program()
	opts := jaaru.Options{FlagMultiRF: true, MaxSteps: 20_000, StopAtFirstBug: true}
	res := jaaru.Check(prog, opts)
	if !res.Buggy() {
		b.Fatal("no bug to explain")
	}
	bug := res.Bugs[0]
	b.Run("build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if w := jaaru.BuildWitness(prog, opts, bug); !w.Reproduced {
				b.Fatal("witness replay diverged")
			}
		}
	})
	b.Run("minimize", func(b *testing.B) {
		var trials int
		for i := 0; i < b.N; i++ {
			_, m := jaaru.Minimize(prog, opts, bug)
			trials = m.Trials
		}
		b.ReportMetric(float64(trials), "trials")
	})
}

// Performance-issue detection overhead on a clean exploration.
func BenchmarkPerfIssueDetectionOverhead(b *testing.B) {
	prog := recipe.CCEHWorkload(4, recipe.CCEHBugs{})
	for i := 0; i < b.N; i++ {
		res := jaaru.Check(prog, jaaru.Options{FlagPerfIssues: true})
		if res.Buggy() {
			b.Fatal(res.Bugs)
		}
	}
}

// ---- Snapshot engine --------------------------------------------------------
//
// The amortization bar for the snapshot engine (the replay-based equivalent
// of the paper's fork() strategy): resuming failure scenarios from captured
// pre-failure snapshots must beat re-running every choice prefix, with
// bit-identical results either way. Regenerate the full off/on table with:
//
//	go run ./cmd/jaaru-perf -snapshots BENCH_snapshot.json

func BenchmarkSnapshotRestore(b *testing.B) {
	prog := recipe.CCEHWorkload(12, recipe.CCEHBugs{})
	for _, cfg := range []struct {
		name string
		opts jaaru.Options
	}{
		{"off", jaaru.Options{Snapshots: -1}},
		{"on", jaaru.Options{}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var execs int
			for i := 0; i < b.N; i++ {
				res := jaaru.Check(prog, cfg.opts)
				if res.Buggy() {
					b.Fatal(res.Bugs)
				}
				execs = res.Executions
			}
			b.ReportMetric(float64(execs), "JExecs")
		})
	}
}
