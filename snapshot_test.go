package jaaru_test

// Equivalence suite for the pre-failure snapshot engine: resuming a scenario
// from a captured failure-point snapshot instead of re-running its choice
// prefix must not change what is explored or what is found. For the litmus
// suite, the example programs and representative recipe/pmdk workloads, a
// default run (snapshots on) must produce the identical Result — and, when
// observed, identical canonical metrics — as a -snapshots=false reference
// run, serially and with Workers=4.

import (
	"fmt"
	"testing"

	"jaaru"
	"jaaru/internal/core"
	"jaaru/internal/litmus"
	"jaaru/internal/pmdk"
	"jaaru/internal/recipe"
)

// snapshotsOff returns opts with the snapshot engine disabled (the reference
// full-replay path).
func snapshotsOff(opts jaaru.Options) jaaru.Options {
	opts.Snapshots = -1
	return opts
}

// TestSnapshotEquivalenceLitmus: the entire litmus suite, snapshots off vs
// on, results and recovery observation sets both.
func TestSnapshotEquivalenceLitmus(t *testing.T) {
	for _, tst := range litmus.Tests() {
		t.Run(tst.Name, func(t *testing.T) {
			offObs, onObs := newSyncObs(), newSyncObs()
			off := core.New(tst.Prog(offObs.add), snapshotsOff(tst.Opts)).Run()
			on := core.New(tst.Prog(onObs.add), tst.Opts).Run()

			assertResultsEquivalent(t, tst.Name, off, on)
			if !offObs.equal(onObs) {
				t.Errorf("observation sets differ:\n  off: %v\n  on:  %v",
					offObs.seen, onObs.seen)
			}
		})
	}
}

// TestSnapshotEquivalenceExamples: the commitstore variants and walkv,
// serial and parallel, including the observation-set comparison for walkv's
// wide recovery tree.
func TestSnapshotEquivalenceExamples(t *testing.T) {
	for _, workers := range []int{1, equivalenceWorkers} {
		for _, flushData := range []bool{true, false} {
			name := fmt.Sprintf("commitstore/flush=%v/workers=%d", flushData, workers)
			t.Run(name, func(t *testing.T) {
				opts := jaaru.Options{FlagMultiRF: true, Workers: workers}
				off := jaaru.Check(commitstoreProgram(flushData), snapshotsOff(opts))
				on := jaaru.Check(commitstoreProgram(flushData), opts)
				assertResultsEquivalent(t, name, off, on)
			})
		}
		t.Run(fmt.Sprintf("walkv/workers=%d", workers), func(t *testing.T) {
			offObs, onObs := newSyncObs(), newSyncObs()
			opts := jaaru.Options{Workers: workers}
			off := jaaru.Check(walkvProgram(offObs.add), snapshotsOff(opts))
			on := jaaru.Check(walkvProgram(onObs.add), opts)
			assertResultsEquivalent(t, "walkv", off, on)
			if !offObs.equal(onObs) {
				t.Errorf("recovered log states differ:\n  off: %v\n  on:  %v",
					offObs.seen, onObs.seen)
			}
		})
	}
}

// TestSnapshotEquivalenceWorkloads: a RECIPE structure and a PMDK example,
// serial and parallel, with the canonical observability counters compared —
// the restore path must re-apply exactly the per-counter deltas the skipped
// prefix would have accumulated. The serial run must actually exercise the
// engine (restores > 0), or this suite would vacuously pass.
func TestSnapshotEquivalenceWorkloads(t *testing.T) {
	progs := []core.Program{
		recipe.CCEHWorkload(6, recipe.CCEHBugs{}),
		recipe.CLHTWorkloadBuckets(4, 8, recipe.CLHTBugs{}),
		pmdk.CTreeWorkload(4, pmdk.CTreeBugs{}),
	}
	for _, prog := range progs {
		for _, workers := range []int{1, equivalenceWorkers} {
			t.Run(fmt.Sprintf("%s/workers=%d", prog.Name, workers), func(t *testing.T) {
				opts := jaaru.Options{Observe: true, Workers: workers}
				off := core.New(prog, snapshotsOff(opts)).Run()
				on := core.New(prog, opts).Run()

				assertResultsEquivalent(t, prog.Name, off, on)
				if off.Steps != on.Steps {
					t.Errorf("Steps = %d off, %d on", off.Steps, on.Steps)
				}
				if off.Metrics == nil || on.Metrics == nil {
					t.Fatal("Observe set but Metrics nil")
				}
				if co, cn := off.Metrics.Canonical(), on.Metrics.Canonical(); co != cn {
					t.Errorf("canonical metrics differ:\n  off: %+v\n  on:  %+v", co, cn)
				}
				if off.Metrics.SnapshotRestores != 0 {
					t.Errorf("engine disabled yet SnapshotRestores = %d",
						off.Metrics.SnapshotRestores)
				}
				if workers == 1 && on.Metrics.SnapshotRestores == 0 {
					t.Error("snapshot engine never restored: suite is vacuous")
				}
			})
		}
	}
}
