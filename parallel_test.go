package jaaru_test

// Equivalence suite for parallel exploration: partitioning the choice tree
// across workers must not change what is explored or what is found. For the
// full litmus suite and the commitstore/walkv example programs, a Workers=4
// run must produce the identical Result — same bug set, same Scenarios /
// Executions / FailurePoints / MaxRFCandidates — as the serial reference
// run, and the same set of recovery observations.

import (
	"fmt"
	"sync"
	"testing"

	"jaaru"
	"jaaru/internal/core"
	"jaaru/internal/litmus"
)

const equivalenceWorkers = 4

// syncObs is a goroutine-safe observation collector: worker checkers run
// recovery closures concurrently, so the litmus obs callback must lock.
type syncObs struct {
	mu   sync.Mutex
	seen map[string]bool
}

func newSyncObs() *syncObs { return &syncObs{seen: make(map[string]bool)} }

func (o *syncObs) add(s string) {
	o.mu.Lock()
	o.seen[s] = true
	o.mu.Unlock()
}

func (o *syncObs) equal(other *syncObs) bool {
	if len(o.seen) != len(other.seen) {
		return false
	}
	for k := range o.seen {
		if !other.seen[k] {
			return false
		}
	}
	return true
}

func assertResultsEquivalent(t *testing.T, label string, serial, par *jaaru.Result) {
	t.Helper()
	type row struct {
		name         string
		serial, parl int
	}
	for _, r := range []row{
		{"Scenarios", serial.Scenarios, par.Scenarios},
		{"Executions", serial.Executions, par.Executions},
		{"FailurePoints", serial.FailurePoints, par.FailurePoints},
		{"MaxRFCandidates", serial.MaxRFCandidates, par.MaxRFCandidates},
		{"RFChoicePoints", serial.RFChoicePoints, par.RFChoicePoints},
		{"FailDecisionPoints", serial.FailDecisionPoints, par.FailDecisionPoints},
		{"len(Bugs)", len(serial.Bugs), len(par.Bugs)},
	} {
		if r.serial != r.parl {
			t.Errorf("%s: %s = %d parallel, %d serial", label, r.name, r.parl, r.serial)
		}
	}
	if serial.Complete != par.Complete {
		t.Errorf("%s: Complete = %v parallel, %v serial", label, par.Complete, serial.Complete)
	}
	if len(serial.Bugs) == len(par.Bugs) {
		for i := range serial.Bugs {
			s, p := serial.Bugs[i], par.Bugs[i]
			if s.Type != p.Type || s.Message != p.Message ||
				s.Count != p.Count || s.Choices != p.Choices {
				t.Errorf("%s: bug %d differs:\n  serial:   %v (choices %q)\n  parallel: %v (choices %q)",
					label, i, s, s.Choices, p, p.Choices)
			}
		}
	}
	if len(serial.MultiRF) != len(par.MultiRF) {
		t.Errorf("%s: len(MultiRF) = %d parallel, %d serial",
			label, len(par.MultiRF), len(serial.MultiRF))
	}
}

// TestParallelEquivalenceLitmus: the entire litmus suite, serial vs 4
// workers, results and observation sets both.
func TestParallelEquivalenceLitmus(t *testing.T) {
	for _, tst := range litmus.Tests() {
		t.Run(tst.Name, func(t *testing.T) {
			serialObs, parObs := newSyncObs(), newSyncObs()

			serialOpts := tst.Opts
			serialOpts.Workers = 1
			serial := core.New(tst.Prog(serialObs.add), serialOpts).Run()

			parOpts := tst.Opts
			parOpts.Workers = equivalenceWorkers
			par := core.New(tst.Prog(parObs.add), parOpts).Run()

			assertResultsEquivalent(t, tst.Name, serial, par)
			if !serialObs.equal(parObs) {
				t.Errorf("observation sets differ:\n  serial:   %v\n  parallel: %v",
					serialObs.seen, parObs.seen)
			}
		})
	}
}

// commitstoreProgram mirrors examples/commitstore: Figure 4's addChild /
// readChild with and without the commit-store discipline.
func commitstoreProgram(flushData bool) jaaru.Program {
	const dataValue = 0xDA7A
	return jaaru.Program{
		Name: fmt.Sprintf("commitstore-flush=%v", flushData),
		Run: func(c *jaaru.Context) {
			root := c.Root()
			tmp := c.AllocLine(8)
			c.Store64(tmp, dataValue)
			if flushData {
				c.Clflush(tmp, 8)
			}
			c.StorePtr(root, tmp)
			c.Clflush(root, 8)
		},
		Recover: func(c *jaaru.Context) {
			child := c.LoadPtr(c.Root())
			if child == 0 {
				return
			}
			c.Assert(c.Load64(child) == dataValue, "committed child lost its data")
		},
	}
}

// walkvProgram mirrors examples/walkv: a checksum-committed WAL key-value
// store whose recovery validates every record arithmetically.
func walkvProgram(obs func(string)) jaaru.Program {
	const (
		recSize = 24
		maxRecs = 8
		offHead = 0
		offLog  = 64
	)
	appendRecord := func(c *jaaru.Context, k, v uint64) {
		root := c.Root()
		head := c.Load64(root.Add(offHead))
		rec := root.Add(offLog + head*recSize)
		c.Store64(rec, k)
		c.Store64(rec.Add(8), v)
		sum := c.Fnv64(rec, 16)
		c.Store64(rec.Add(16), sum)
		c.Store64(root.Add(offHead), head+1)
		c.Persist(root.Add(offHead), 8)
	}
	return jaaru.Program{
		Name: "walkv",
		Run: func(c *jaaru.Context) {
			appendRecord(c, 1, 100)
			appendRecord(c, 2, 200)
			appendRecord(c, 3, 300)
		},
		Recover: func(c *jaaru.Context) {
			root := c.Root()
			head := c.Load64(root.Add(offHead))
			c.Assert(head <= maxRecs, "log head %d corrupt", head)
			state := ""
			for i := uint64(0); i < head; i++ {
				rec := root.Add(offLog + i*recSize)
				sum := c.Load64(rec.Add(16))
				if c.Fnv64(rec, 16) != sum || sum == 0 {
					state += "?"
					continue
				}
				k, v := c.Load64(rec), c.Load64(rec.Add(8))
				c.Assert(v == k*100, "checksum validated a torn record: k=%d v=%d", k, v)
				state += fmt.Sprintf("[%d=%d]", k, v)
			}
			obs(state)
		},
	}
}

// TestParallelEquivalenceCommitstore: both example variants — the correct
// one (no bugs) and the missing-flush one (assertion bugs + flagged loads).
func TestParallelEquivalenceCommitstore(t *testing.T) {
	for _, flushData := range []bool{true, false} {
		t.Run(fmt.Sprintf("flush=%v", flushData), func(t *testing.T) {
			opts := jaaru.Options{FlagMultiRF: true}
			serial := jaaru.Check(commitstoreProgram(flushData), opts)

			opts.Workers = equivalenceWorkers
			par := jaaru.Check(commitstoreProgram(flushData), opts)

			assertResultsEquivalent(t, "commitstore", serial, par)
			if flushData && par.Buggy() {
				t.Errorf("correct variant found bugs: %v", par.Bugs)
			}
			if !flushData && !par.Buggy() {
				t.Error("missing-flush variant found no bugs in parallel")
			}
		})
	}
}

// TestParallelEquivalenceWalkv: checksum-based recovery explores a wide
// multi-candidate tree; parallel partitioning must visit exactly the same
// recovered-log states.
func TestParallelEquivalenceWalkv(t *testing.T) {
	serialObs, parObs := newSyncObs(), newSyncObs()
	serial := jaaru.Check(walkvProgram(serialObs.add), jaaru.Options{})
	par := jaaru.Check(walkvProgram(parObs.add), jaaru.Options{Workers: equivalenceWorkers})

	assertResultsEquivalent(t, "walkv", serial, par)
	if !serialObs.equal(parObs) {
		t.Errorf("recovered log states differ:\n  serial:   %v\n  parallel: %v",
			serialObs.seen, parObs.seen)
	}
	if serial.Buggy() {
		t.Fatalf("walkv unexpectedly buggy: %v", serial.Bugs)
	}
}
