module jaaru

go 1.22
