package recipe

import (
	"testing"

	"jaaru/internal/core"
)

// Multi-failure exploration (§4: "Jaaru can also support injecting failures
// into a post-failure execution... This option controls the maximum depth
// of the exec stack"): the fixed structures must stay consistent when the
// recovery itself crashes and recovers again. P-CLHT is the interesting
// case — its recovery both resets locks and performs an insert.
func TestRECIPEMultiFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-failure exploration is slow")
	}
	progs := []core.Program{
		CLHTWorkloadBuckets(3, 2, CLHTBugs{}),
		CCEHWorkload(2, CCEHBugs{}),
		MasstreeWorkload(3, MasstreeBugs{}),
	}
	for _, prog := range progs {
		prog := prog
		t.Run(prog.Name, func(t *testing.T) {
			t.Parallel()
			res := core.New(prog, core.Options{MaxFailures: 2}).Run()
			if res.Buggy() {
				t.Fatalf("bugs under double failure: %v\nchoices: %s",
					res.Bugs[0], res.Bugs[0].Choices)
			}
			if !res.Complete {
				t.Fatal("exploration incomplete")
			}
			single := core.New(prog, core.Options{MaxFailures: 1}).Run()
			if res.Scenarios < single.Scenarios {
				t.Errorf("depth-2 explored %d scenarios, depth-1 %d",
					res.Scenarios, single.Scenarios)
			}
		})
	}
}

// The seeded lock bug must also be detectable when the failure hits the
// recovery: the first recovery's insert re-persists the held lock, and the
// second recovery spins on it.
func TestCLHTLockBugAcrossTwoFailures(t *testing.T) {
	res := core.New(CLHTWorkloadBuckets(3, 2, CLHTBugs{NoLockReset: true}),
		core.Options{
			MaxFailures:    2,
			MaxSteps:       20_000,
			StopAtFirstBug: true,
		}).Run()
	if !res.Buggy() {
		t.Fatal("lock bug not detected")
	}
	if res.Bugs[0].Type != core.BugInfiniteLoop {
		t.Errorf("manifestation = %v", res.Bugs[0])
	}
}

// Concurrency meets crash consistency: two guest threads insert disjoint
// keys into one P-CLHT (contending on bucket locks) while failures are
// injected at every flush; every recovered state must validate.
func TestCLHTConcurrentInsertersUnderFailures(t *testing.T) {
	prog := core.Program{
		Name: "clht-concurrent",
		Run: func(c *core.Context) {
			h := CreateCLHT(c, 2, CLHTBugs{})
			h1 := c.Spawn(func(c *core.Context) {
				ht := h.WithContext(c) // handles are per guest thread
				ht.Insert(1, valueOf(1))
				ht.Insert(3, valueOf(3))
			})
			h2 := c.Spawn(func(c *core.Context) {
				ht := h.WithContext(c)
				ht.Insert(2, valueOf(2))
				ht.Insert(4, valueOf(4))
			})
			h1.Join(c)
			h2.Join(c)
		},
		Recover: func(c *core.Context) {
			h, ok := OpenCLHT(c, CLHTBugs{})
			if !ok {
				return
			}
			for k := uint64(1); k <= 4; k++ {
				if v, found := h.Lookup(k); found {
					c.Assert(v == valueOf(k), "key %d recovered value %d", k, v)
				}
			}
			h.Check(valueOf)
		},
	}
	res := core.New(prog, core.Options{}).Run()
	if res.Buggy() {
		t.Fatalf("bugs: %v\nchoices: %s", res.Bugs[0], res.Bugs[0].Choices)
	}
	if !res.Complete {
		t.Fatal("exploration incomplete")
	}
}
