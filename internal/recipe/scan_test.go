package recipe

import (
	"sort"
	"testing"

	"jaaru/internal/core"
)

func collectScan(scan func(lo, hi uint64, fn func(k, v uint64)), lo, hi uint64) (keys, vals []uint64) {
	scan(lo, hi, func(k, v uint64) {
		keys = append(keys, k)
		vals = append(vals, v)
	})
	return keys, vals
}

func checkScan(t *testing.T, name string, keys, vals []uint64, lo, hi uint64,
	oracle map[uint64]uint64) {
	t.Helper()
	var want []uint64
	for k := range oracle {
		if k >= lo && k < hi {
			want = append(want, k)
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(keys) != len(want) {
		t.Fatalf("%s scan [%d,%d): got %d keys %v, want %d %v",
			name, lo, hi, len(keys), keys, len(want), want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("%s scan order: got %v, want %v", name, keys, want)
		}
		if vals[i] != oracle[keys[i]] {
			t.Fatalf("%s scan value for %d: got %d, want %d",
				name, keys[i], vals[i], oracle[keys[i]])
		}
	}
}

func TestFastFairScan(t *testing.T) {
	direct(t, "fastfair-scan", func(c *core.Context) {
		tr := CreateFastFair(c, FFBugs{})
		oracle := make(map[uint64]uint64)
		for i := uint64(1); i <= 50; i++ {
			k := i*31%127 + 1
			tr.Insert(k, k+7)
			oracle[k] = k + 7
		}
		for _, r := range [][2]uint64{{0, ^uint64(0) - 1}, {10, 60}, {40, 41}, {200, 300}} {
			keys, vals := collectScan(tr.Scan, r[0], r[1])
			checkScan(t, "fastfair", keys, vals, r[0], r[1], oracle)
		}
	})
}

func TestMasstreeScan(t *testing.T) {
	direct(t, "masstree-scan", func(c *core.Context) {
		tr := CreateMasstree(c, MasstreeBugs{})
		oracle := make(map[uint64]uint64)
		for i := uint64(1); i <= 40; i++ {
			k := i*53%101 + 1
			tr.Insert(k, k*9)
			oracle[k] = k * 9
		}
		for _, r := range [][2]uint64{{0, ^uint64(0)}, {20, 80}, {50, 51}, {150, 200}} {
			keys, vals := collectScan(tr.Scan, r[0], r[1])
			checkScan(t, "masstree", keys, vals, r[0], r[1], oracle)
		}
	})
}

// Scans must also be safe in every post-failure state: a crash mid-split
// leaves stale duplicates and transient fences, and Scan must neither
// duplicate nor invent keys.
func TestFastFairScanCrashConsistency(t *testing.T) {
	keys := recipeKeys(10)
	prog := core.Program{
		Name: "fastfair-scan-crash",
		Run: func(c *core.Context) {
			tr := CreateFastFair(c, FFBugs{})
			for _, k := range keys {
				tr.Insert(k, valueOf(k))
			}
		},
		Recover: func(c *core.Context) {
			tr, ok := OpenFastFair(c)
			if !ok {
				return
			}
			seen := make(map[uint64]bool)
			prev := uint64(0)
			tr.Scan(0, ^uint64(0)-1, func(k, v uint64) {
				c.Assert(!seen[k], "scan returned key %d twice", k)
				seen[k] = true
				c.Assert(k >= prev, "scan out of order: %d after %d", k, prev)
				prev = k
				c.Assert(v == valueOf(k), "scan: key %d has value %d", k, v)
			})
			// Scan and Lookup must agree on membership.
			for _, k := range keys {
				if _, found := tr.Lookup(k); found {
					c.Assert(seen[k], "key %d visible to Lookup but not Scan", k)
				}
			}
		},
	}
	res := core.New(prog, core.Options{}).Run()
	if res.Buggy() {
		t.Fatalf("bugs: %v\nchoices: %s", res.Bugs[0], res.Bugs[0].Choices)
	}
}
