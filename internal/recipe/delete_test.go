package recipe

import (
	"testing"

	"jaaru/internal/core"
)

func TestCCEHDelete(t *testing.T) {
	direct(t, "cceh-delete", func(c *core.Context) {
		h := CreateCCEH(c, CCEHBugs{})
		for i := uint64(1); i <= 20; i++ {
			h.Insert(i, i*2)
		}
		for i := uint64(1); i <= 20; i += 2 {
			if !h.Delete(i) {
				t.Errorf("Delete(%d) = false", i)
			}
		}
		if h.Delete(999) {
			t.Error("deleted a key never inserted")
		}
		for i := uint64(1); i <= 20; i++ {
			_, ok := h.Lookup(i)
			if want := i%2 == 0; ok != want {
				t.Errorf("Lookup(%d) = %v, want %v", i, ok, want)
			}
		}
		// Deleted slots are reusable.
		h.Insert(1, 111)
		if v, ok := h.Lookup(1); !ok || v != 111 {
			t.Error("re-insert after delete failed")
		}
	})
}

func TestCLHTDelete(t *testing.T) {
	direct(t, "clht-delete", func(c *core.Context) {
		h := CreateCLHT(c, 4, CLHTBugs{})
		for i := uint64(1); i <= 20; i++ {
			h.Insert(i, i+5)
		}
		for i := uint64(2); i <= 20; i += 2 {
			if !h.Delete(i) {
				t.Errorf("Delete(%d) = false", i)
			}
		}
		if h.Delete(999) {
			t.Error("deleted a key never inserted")
		}
		for i := uint64(1); i <= 20; i++ {
			_, ok := h.Lookup(i)
			if want := i%2 == 1; ok != want {
				t.Errorf("Lookup(%d) = %v, want %v", i, ok, want)
			}
		}
		if n := h.Check(func(k uint64) uint64 { return k + 5 }); n != 10 {
			t.Errorf("Check counted %d keys, want 10", n)
		}
	})
}

// A crash anywhere in an insert/delete/re-insert workload must leave every
// present key with a value it was committed with — the delete commit store
// (zeroing the key slot) is atomic like the insert commit.
func TestCCEHDeleteCrashConsistency(t *testing.T) {
	keys := []uint64{3, 7, 11}
	prog := core.Program{
		Name: "cceh-delete-crash",
		Run: func(c *core.Context) {
			h := CreateCCEH(c, CCEHBugs{})
			for _, k := range keys {
				h.Insert(k, k*10+3)
			}
			h.Delete(7)
			h.Insert(7, 703) // fresh value after re-insert
		},
		Recover: func(c *core.Context) {
			h, ok := OpenCCEH(c)
			if !ok {
				return
			}
			if v, found := h.Lookup(7); found {
				c.Assert(v == 73 || v == 703, "key 7 has value %d", v)
			}
			for _, k := range []uint64{3, 11} {
				if v, found := h.Lookup(k); found {
					c.Assert(v == k*10+3, "key %d has value %d", k, v)
				}
			}
		},
	}
	res := core.New(prog, core.Options{}).Run()
	if res.Buggy() {
		t.Fatalf("bugs: %v (choices %s)", res.Bugs[0], res.Bugs[0].Choices)
	}
	if !res.Complete {
		t.Fatal("exploration incomplete")
	}
}

func TestCLHTDeleteCrashConsistency(t *testing.T) {
	prog := core.Program{
		Name: "clht-delete-crash",
		Run: func(c *core.Context) {
			h := CreateCLHT(c, 2, CLHTBugs{})
			h.Insert(1, 13)
			h.Insert(2, 23)
			h.Delete(1)
		},
		Recover: func(c *core.Context) {
			h, ok := OpenCLHT(c, CLHTBugs{})
			if !ok {
				return
			}
			if v, found := h.Lookup(1); found {
				c.Assert(v == 13, "key 1 has value %d", v)
			}
			if v, found := h.Lookup(2); found {
				c.Assert(v == 23, "key 2 has value %d", v)
			}
			h.Check(func(k uint64) uint64 { return k*10 + 3 })
		},
	}
	res := core.New(prog, core.Options{}).Run()
	if res.Buggy() {
		t.Fatalf("bugs: %v (choices %s)", res.Bugs[0], res.Bugs[0].Choices)
	}
}
