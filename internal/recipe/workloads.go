package recipe

import "jaaru/internal/core"

// Checkable workload programs for each RECIPE structure: the pre-failure
// execution creates the index and inserts a key sequence; recovery re-opens
// it, performs the lookups first (dereferencing recovered pointers the way
// application code would) and then runs the structural consistency check.
//
// Unlike the transactional PMDK structures, RECIPE inserts commit
// independently (per-key commit stores), so recovery validates that every
// found key carries its committed value and that all structural invariants
// hold — not that the recovered set is a prefix.

func valueOf(k uint64) uint64 { return k*10 + 3 }

func recipeKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i*37%97 + 1)
	}
	return keys
}

// CCEHWorkload builds the Figure 13 CCEH program.
func CCEHWorkload(n int, bugs CCEHBugs) core.Program {
	keys := recipeKeys(n)
	return core.Program{
		Name: "recipe/CCEH",
		Run: func(c *core.Context) {
			h := CreateCCEH(c, bugs)
			for _, k := range keys {
				h.Insert(k, valueOf(k))
			}
		},
		Recover: func(c *core.Context) {
			h, ok := OpenCCEH(c)
			if !ok {
				return
			}
			for _, k := range keys {
				if v, found := h.Lookup(k); found {
					c.Assert(v == valueOf(k), "CCEH: key %d recovered value %d", k, v)
				}
			}
			h.Check(valueOf)
		},
	}
}

// FastFairWorkload builds the Figure 13 FAST_FAIR program.
func FastFairWorkload(n int, bugs FFBugs) core.Program {
	keys := recipeKeys(n)
	return core.Program{
		Name: "recipe/FAST_FAIR",
		Run: func(c *core.Context) {
			t := CreateFastFair(c, bugs)
			for _, k := range keys {
				t.Insert(k, valueOf(k))
			}
		},
		Recover: func(c *core.Context) {
			t, ok := OpenFastFair(c)
			if !ok {
				return
			}
			for _, k := range keys {
				if v, found := t.Lookup(k); found {
					c.Assert(v == valueOf(k), "FAST_FAIR: key %d recovered value %d", k, v)
				}
			}
			t.Check(valueOf)
		},
	}
}

// ARTWorkload builds the Figure 13 P-ART program.
func ARTWorkload(n int, bugs ARTBugs) core.Program {
	keys := recipeKeys(n)
	return core.Program{
		Name: "recipe/P-ART",
		Run: func(c *core.Context) {
			t := CreateART(c, bugs)
			for _, k := range keys {
				t.Insert(k, valueOf(k))
			}
		},
		Recover: func(c *core.Context) {
			t, ok := OpenART(c, bugs)
			if !ok {
				return
			}
			for _, k := range keys {
				if v, found := t.Lookup(k); found {
					c.Assert(v == valueOf(k), "P-ART: key %d recovered value %d", k, v)
				}
			}
			t.Check(valueOf)
		},
	}
}

// BwTreeWorkload builds the Figure 13 P-BwTree program. The single root
// PID holds at most 16 distinct keys after consolidation, so larger
// workloads cycle through 14 keys — repeated updates still grow delta
// chains and trigger consolidations.
func BwTreeWorkload(n int, bugs BwTreeBugs) core.Program {
	keys := recipeKeys(n)
	for i := range keys {
		keys[i] = keys[i]%14 + 1
	}
	return core.Program{
		Name: "recipe/P-BwTree",
		Run: func(c *core.Context) {
			t := CreateBwTree(c, bugs)
			for _, k := range keys {
				t.Insert(k, valueOf(k))
			}
		},
		Recover: func(c *core.Context) {
			t, ok := OpenBwTree(c, bugs)
			if !ok {
				return
			}
			for _, k := range keys {
				if v, found := t.Lookup(k); found {
					c.Assert(v == valueOf(k), "P-BwTree: key %d recovered value %d", k, v)
				}
			}
			t.Check(valueOf)
		},
	}
}

// CLHTWorkload builds the Figure 13 P-CLHT program. Recovery performs one
// further insert: post-failure writers are what trip over bucket locks that
// recovered held.
func CLHTWorkload(n int, bugs CLHTBugs) core.Program {
	return CLHTWorkloadBuckets(n, 4, bugs)
}

// CLHTWorkloadBuckets is CLHTWorkload with an explicit table size; the
// Figure 14 workload uses a large table whose initialization dominates the
// eager checker's state count (the paper's P-CLHT row is 1.93e605).
func CLHTWorkloadBuckets(n int, nBuckets uint64, bugs CLHTBugs) core.Program {
	keys := recipeKeys(n)
	return core.Program{
		Name: "recipe/P-CLHT",
		Run: func(c *core.Context) {
			h := CreateCLHT(c, nBuckets, bugs)
			for _, k := range keys {
				h.Insert(k, valueOf(k))
			}
		},
		Recover: func(c *core.Context) {
			h, ok := OpenCLHT(c, bugs)
			if !ok {
				return
			}
			for _, k := range keys {
				if v, found := h.Lookup(k); found {
					c.Assert(v == valueOf(k), "P-CLHT: key %d recovered value %d", k, v)
				}
			}
			// Continue the workload: update the first key in place.
			h.Insert(keys[0], valueOf(keys[0]))
			h.Check(valueOf)
		},
	}
}

// MasstreeWorkload builds the Figure 13 P-Masstree program.
func MasstreeWorkload(n int, bugs MasstreeBugs) core.Program {
	keys := recipeKeys(n)
	return core.Program{
		Name: "recipe/P-Masstree",
		Run: func(c *core.Context) {
			t := CreateMasstree(c, bugs)
			for _, k := range keys {
				t.Insert(k, valueOf(k))
			}
		},
		Recover: func(c *core.Context) {
			t, ok := OpenMasstree(c, bugs)
			if !ok {
				return
			}
			for _, k := range keys {
				if v, found := t.Lookup(k); found {
					c.Assert(v == valueOf(k), "P-Masstree: key %d recovered value %d", k, v)
				}
			}
			t.Check(valueOf)
		},
	}
}

// BugCase is one row of Figure 13 (with the cause column of Figure 15).
type BugCase struct {
	ID        int
	Benchmark string
	// Type is Figure 13's "Type of Bug" column.
	Type string
	// Cause is Figure 15's "Cause of Bug" column.
	Cause string
	// New marks bugs the paper reports as new (starred in Figure 13).
	New bool
	// Program builds the seeded workload.
	Program func() core.Program
	// Expect are the acceptable manifestation types.
	Expect []core.BugType
}

// BugCases returns the RECIPE bug registry reproducing Figures 13 and 15.
func BugCases() []BugCase {
	ill := []core.BugType{core.BugIllegalAccess}
	illOrAssert := []core.BugType{core.BugIllegalAccess, core.BugAssertion}
	loop := []core.BugType{core.BugInfiniteLoop}
	return []BugCase{
		{ID: 1, Benchmark: "CCEH", New: true,
			Type:  "Missing flush in CCEH constructor",
			Cause: "Getting stuck in an infinite loop",
			Program: func() core.Program {
				return CCEHWorkload(4, CCEHBugs{NoSegmentFlush: true})
			},
			Expect: loop},
		{ID: 2, Benchmark: "CCEH", New: true,
			Type:  "Missing flush in CCEH constructor",
			Cause: "Segmentation fault in the program",
			Program: func() core.Program {
				return CCEHWorkload(4, CCEHBugs{NoDirArrayFlush: true})
			},
			Expect: ill},
		{ID: 3, Benchmark: "CCEH", New: true,
			Type:  "Missing flush in CCEH constructor",
			Cause: "Segmentation fault in the program",
			Program: func() core.Program {
				return CCEHWorkload(4, CCEHBugs{NoDirEntryFlush: true})
			},
			Expect: ill},
		{ID: 4, Benchmark: "FAST_FAIR", New: false,
			Type:  "Missing flush in header constructor",
			Cause: "Segmentation fault in the program",
			Program: func() core.Program {
				return FastFairWorkload(10, FFBugs{NoHeaderFlush: true})
			},
			Expect: illOrAssert},
		{ID: 5, Benchmark: "FAST_FAIR", New: false,
			Type:  "Missing flush in entry constructor",
			Cause: "Segmentation fault in the program",
			Program: func() core.Program {
				return FastFairWorkload(6, FFBugs{NoEntryFlush: true})
			},
			Expect: illOrAssert},
		{ID: 6, Benchmark: "FAST_FAIR", New: true,
			Type:  "Missing flush in btree constructor",
			Cause: "Segmentation fault in the program",
			Program: func() core.Program {
				return FastFairWorkload(4, FFBugs{NoRootFlush: true})
			},
			Expect: illOrAssert},
		{ID: 7, Benchmark: "P-ART", New: true,
			Type:  "Use of non-persistent data structure in Epoch",
			Cause: "Segmentation fault in the program",
			Program: func() core.Program {
				return ARTWorkload(4, ARTBugs{VolatileEpoch: true})
			},
			Expect: ill},
		{ID: 8, Benchmark: "P-ART", New: true,
			Type:  "Missing flush in Tree constructor",
			Cause: "Illegal memory access in the program",
			Program: func() core.Program {
				return ARTWorkload(4, ARTBugs{NoRootNodeFlush: true})
			},
			Expect: illOrAssert},
		{ID: 9, Benchmark: "P-ART", New: true,
			Type:  "Use of non-persistent data structure for recovery",
			Cause: "Getting stuck in an infinite loop",
			Program: func() core.Program {
				return ARTWorkload(4, ARTBugs{NoLockReset: true})
			},
			Expect: loop},
		{ID: 10, Benchmark: "P-BwTree", New: true,
			Type:  "GC crash leaves data structure in inconsistent state",
			Cause: "Segmentation fault in the program",
			Program: func() core.Program {
				return BwTreeWorkload(6, BwTreeBugs{GCReversedLink: true})
			},
			Expect: ill},
		{ID: 11, Benchmark: "P-BwTree", New: true,
			Type:  "Missing flush of GC metadata pointer",
			Cause: "Segmentation fault in the program",
			Program: func() core.Program {
				return BwTreeWorkload(3, BwTreeBugs{NoGCPtrFlush: true})
			},
			Expect: ill},
		{ID: 12, Benchmark: "P-BwTree", New: true,
			Type:  "Missing flush of GC metadata",
			Cause: "Segmentation fault in the program",
			Program: func() core.Program {
				return BwTreeWorkload(3, BwTreeBugs{NoGCMetaFlush: true})
			},
			Expect: ill},
		{ID: 13, Benchmark: "P-BwTree", New: true,
			Type:  "Missing flush in AllocationMeta constructor",
			Cause: "Segmentation fault in the program",
			Program: func() core.Program {
				return BwTreeWorkload(3, BwTreeBugs{NoMapMetaFlush: true})
			},
			Expect: illOrAssert},
		{ID: 14, Benchmark: "P-BwTree", New: true,
			Type:  "Missing flush in BwTree constructor",
			Cause: "Segmentation fault in the program",
			Program: func() core.Program {
				return BwTreeWorkload(3, BwTreeBugs{NoRootEntryFlush: true})
			},
			Expect: ill},
		{ID: 15, Benchmark: "P-CLHT", New: false,
			Type:  "Missing flush in clht constructor",
			Cause: "Illegal memory access in the program",
			Program: func() core.Program {
				return CLHTWorkload(4, CLHTBugs{NoRootStructFlush: true})
			},
			Expect: ill},
		{ID: 16, Benchmark: "P-CLHT", New: false,
			Type:  "Missing flush for hashtable object",
			Cause: "Illegal memory access in the program",
			Program: func() core.Program {
				return CLHTWorkload(4, CLHTBugs{NoHTObjectFlush: true})
			},
			Expect: illOrAssert},
		{ID: 17, Benchmark: "P-CLHT", New: false,
			Type:  "Missing flush for hashtable array",
			Cause: "Getting stuck in an infinite loop",
			Program: func() core.Program {
				return CLHTWorkload(4, CLHTBugs{NoLockReset: true})
			},
			Expect: loop},
		{ID: 18, Benchmark: "P-MassTree", New: false,
			Type:  "Flushed referenced object instead of pointer",
			Cause: "Illegal memory access in the program",
			Program: func() core.Program {
				return MasstreeWorkload(10, MasstreeBugs{FlushObjectNotPointer: true})
			},
			Expect: illOrAssert},
	}
}

// FixedPrograms returns the crash-consistent variants of all six RECIPE
// structures, explored clean by the checker. n controls the insert count.
func FixedPrograms(n int) []core.Program {
	return []core.Program{
		CCEHWorkload(n, CCEHBugs{}),
		FastFairWorkload(n, FFBugs{}),
		ARTWorkload(n, ARTBugs{}),
		BwTreeWorkload(n, BwTreeBugs{}),
		CLHTWorkload(n, CLHTBugs{}),
		MasstreeWorkload(n, MasstreeBugs{}),
	}
}

// Update-heavy workloads: insert a small key set once, then rewrite every
// key in place for rounds passes, alternating between two values. In-place
// updates leave the structure's shape and the allocator high-water mark
// untouched, so once the initial values are overwritten the persisted state
// recurs with period two (the state at the j-th failure point of round r is
// canonically equivalent to round r−2's). These are the workloads where the
// fingerprint pruning layer pays off: every failure point past the first
// few rounds lands on a seen state and its whole crash subtree is pruned.
// Recovery accepts any committed value generation per key.

const (
	updValA uint64 = 0xA5A5
	updValB uint64 = 0x5A5A
)

func updValue(round int) uint64 {
	if round%2 == 0 {
		return updValA
	}
	return updValB
}

func updOK(k, v uint64) bool {
	return v == valueOf(k) || v == updValA || v == updValB
}

// CCEHUpdateWorkload builds the CCEH update-heavy program: n inserts, then
// rounds in-place rewrite passes over the same keys.
func CCEHUpdateWorkload(n, rounds int) core.Program {
	keys := recipeKeys(n)
	return core.Program{
		Name: "recipe/CCEH-update",
		Run: func(c *core.Context) {
			h := CreateCCEH(c, CCEHBugs{})
			for _, k := range keys {
				h.Insert(k, valueOf(k))
			}
			for r := 0; r < rounds; r++ {
				v := updValue(r)
				for _, k := range keys {
					h.Insert(k, v)
				}
			}
		},
		Recover: func(c *core.Context) {
			h, ok := OpenCCEH(c)
			if !ok {
				return
			}
			for _, k := range keys {
				if v, found := h.Lookup(k); found {
					c.Assert(updOK(k, v), "CCEH-update: key %d recovered value %d", k, v)
				}
			}
		},
	}
}

// CLHTUpdateWorkload builds the P-CLHT update-heavy program (see
// CCEHUpdateWorkload).
func CLHTUpdateWorkload(n, rounds int) core.Program {
	keys := recipeKeys(n)
	return core.Program{
		Name: "recipe/P-CLHT-update",
		Run: func(c *core.Context) {
			h := CreateCLHT(c, 4, CLHTBugs{})
			for _, k := range keys {
				h.Insert(k, valueOf(k))
			}
			for r := 0; r < rounds; r++ {
				v := updValue(r)
				for _, k := range keys {
					h.Insert(k, v)
				}
			}
		},
		Recover: func(c *core.Context) {
			h, ok := OpenCLHT(c, CLHTBugs{})
			if !ok {
				return
			}
			for _, k := range keys {
				if v, found := h.Lookup(k); found {
					c.Assert(updOK(k, v), "P-CLHT-update: key %d recovered value %d", k, v)
				}
			}
		},
	}
}

// UpdateWorkloads returns the update-heavy programs at the sizes the POR
// benchmark uses (rounds scale with scale; key counts stay small so the
// per-round failure-point count, not the key set, dominates).
func UpdateWorkloads(scale int) []core.Program {
	if scale < 1 {
		scale = 1
	}
	return []core.Program{
		CCEHUpdateWorkload(3, 40*scale),
		CLHTUpdateWorkload(3, 40*scale),
	}
}

// PerfWorkloads returns the fixed variants with the workload sizes used to
// regenerate Figure 14 (scaled by scale; scale 1 is the default table).
func PerfWorkloads(scale int) []core.Program {
	if scale < 1 {
		scale = 1
	}
	return []core.Program{
		CCEHWorkload(36*scale, CCEHBugs{}),           // splits + directory doubling
		FastFairWorkload(18*scale, FFBugs{}),         // leaf and internal splits
		ARTWorkload(12*scale, ARTBugs{}),             // push-down chains
		BwTreeWorkload(12*scale, BwTreeBugs{}),       // several consolidations
		CLHTWorkloadBuckets(8*scale, 64, CLHTBugs{}), // big-table constructor
		MasstreeWorkload(10*scale, MasstreeBugs{}),   // COW splits
	}
}
