package recipe

import "jaaru/internal/core"

// FAST_FAIR analog: a persistent B+tree with sibling pointers (a B-link
// tree). Like FAST_FAIR, structure modifications never need logging: a
// split builds the right node completely, links it through the left
// sibling pointer, prunes the left node with a single bitmap commit store,
// and only then inserts the separator into the parent — lookups that race a
// crash reach the right node through the sibling pointer. The paper found
// three missing-flush constructor bugs (FAST_FAIR-1..3, Figure 13).

const (
	ffSlots    = 8
	ffNodeSize = 192

	// The header occupies the node's first cache line; the key and value
	// arrays each fill their own line, so persisting slot contents cannot
	// incidentally flush the header.
	ffOffLevel    = 0  // 1 = leaf, ≥2 = internal level, 0 = invalid
	ffOffBitmap   = 8  // slot validity commit word
	ffOffHighKey  = 16 // fence: keys ≥ highKey live at the right sibling
	ffOffSibling  = 24
	ffOffLeftmost = 32 // internal: child for keys below every separator
	ffOffKeys     = 64
	ffOffVals     = 128 // leaf: values; internal: child pointers
)

const ffInfinity = ^uint64(0)

// FFBugs selects the seeded FAST_FAIR bugs.
type FFBugs struct {
	// NoHeaderFlush skips persisting split-node headers (FAST_FAIR-1,
	// "Missing flush in header constructor"): the right node's level and
	// leftmost pointer read zero — segmentation fault.
	NoHeaderFlush bool
	// NoEntryFlush skips persisting slot contents before the bitmap
	// commit (FAST_FAIR-2, "Missing flush in entry constructor").
	NoEntryFlush bool
	// NoRootFlush skips persisting the initial root node (FAST_FAIR-3,
	// "Missing flush in btree constructor").
	NoRootFlush bool
}

// FastFair is a handle to the tree; the root pointer lives at the pool
// root.
type FastFair struct {
	c    *core.Context
	root core.Addr
	bugs FFBugs
}

// CreateFastFair builds an empty tree: one leaf as root.
func CreateFastFair(c *core.Context, bugs FFBugs) *FastFair {
	t := &FastFair{c: c, root: c.Root(), bugs: bugs}
	leaf := t.newNode()
	c.Store64(leaf.Add(ffOffLevel), 1)
	c.Store64(leaf.Add(ffOffHighKey), ffInfinity)
	if !bugs.NoRootFlush {
		c.Persist(leaf, ffNodeSize)
	}
	c.StorePtr(t.root, leaf) // commit store
	c.Persist(t.root, 8)
	return t
}

// OpenFastFair binds to a recovered tree.
func OpenFastFair(c *core.Context) (*FastFair, bool) {
	t := &FastFair{c: c, root: c.Root()}
	return t, c.LoadPtr(t.root) != 0
}

// WithContext rebinds the handle to another guest thread's context
// (handles are bound to one thread; see core.Context).
func (t *FastFair) WithContext(c *core.Context) *FastFair {
	return &FastFair{c: c, root: t.root, bugs: t.bugs}
}

// newNode allocates a node and writes its complete (zero) image, like the
// C++ node constructors; flushing is the caller's responsibility.
func (t *FastFair) newNode() core.Addr {
	n := t.c.AllocLine(ffNodeSize)
	for w := uint64(0); w < ffNodeSize/8; w++ {
		t.c.Store64(n.Add(8*w), 0)
	}
	return n
}

func (t *FastFair) level(n core.Addr) uint64   { return t.c.Load64(n.Add(ffOffLevel)) }
func (t *FastFair) bitmap(n core.Addr) uint64  { return t.c.Load64(n.Add(ffOffBitmap)) }
func (t *FastFair) highKey(n core.Addr) uint64 { return t.c.Load64(n.Add(ffOffHighKey)) }
func (t *FastFair) sibling(n core.Addr) core.Addr {
	return t.c.LoadPtr(n.Add(ffOffSibling))
}
func (t *FastFair) key(n core.Addr, i uint64) uint64 { return t.c.Load64(n.Add(ffOffKeys + 8*i)) }
func (t *FastFair) val(n core.Addr, i uint64) uint64 { return t.c.Load64(n.Add(ffOffVals + 8*i)) }

// stepRight follows sibling pointers while the key is at or beyond the
// node's fence.
func (t *FastFair) stepRight(n core.Addr, key uint64) core.Addr {
	for key >= t.highKey(n) {
		sib := t.sibling(n)
		if sib == 0 {
			break
		}
		n = sib
	}
	return n
}

// childFor picks the internal node's child for a key.
func (t *FastFair) childFor(n core.Addr, key uint64) core.Addr {
	bm := t.bitmap(n)
	best := core.Addr(0)
	bestKey := uint64(0)
	found := false
	for i := uint64(0); i < ffSlots; i++ {
		if bm&(1<<i) == 0 {
			continue
		}
		k := t.key(n, i)
		if k <= key && (!found || k > bestKey) {
			found, bestKey, best = true, k, core.Addr(t.val(n, i))
		}
	}
	if !found {
		return t.c.LoadPtr(n.Add(ffOffLeftmost))
	}
	return best
}

// descend walks to the leaf responsible for key, recording the path of
// internal nodes (deepest last).
func (t *FastFair) descend(key uint64) (leaf core.Addr, path []core.Addr) {
	n := t.c.LoadPtr(t.root)
	for {
		n = t.stepRight(n, key)
		if t.level(n) == 1 {
			return n, path
		}
		path = append(path, n)
		n = t.childFor(n, key)
	}
}

// Insert stores a pair.
func (t *FastFair) Insert(key, value uint64) {
	c := t.c
	c.Assert(key != 0 && key != ffInfinity, "FAST_FAIR: reserved key")
	leaf, path := t.descend(key)
	t.insertInto(leaf, path, key, value)
}

func (t *FastFair) insertInto(n core.Addr, path []core.Addr, key, value uint64) {
	c := t.c
	bm := t.bitmap(n)
	// Update in place.
	for i := uint64(0); i < ffSlots; i++ {
		if bm&(1<<i) != 0 && t.key(n, i) == key {
			c.Store64(n.Add(ffOffVals+8*i), value)
			c.Persist(n.Add(ffOffVals+8*i), 8)
			return
		}
	}
	// Free slot: contents first, bitmap commit second.
	for i := uint64(0); i < ffSlots; i++ {
		if bm&(1<<i) != 0 {
			continue
		}
		c.Store64(n.Add(ffOffKeys+8*i), key)
		c.Store64(n.Add(ffOffVals+8*i), value)
		if !t.bugs.NoEntryFlush {
			c.Persist(n.Add(ffOffKeys+8*i), 8)
			c.Persist(n.Add(ffOffVals+8*i), 8)
		}
		c.Store64(n.Add(ffOffBitmap), bm|1<<i) // commit store
		c.Persist(n.Add(ffOffBitmap), 8)
		return
	}
	// Repair first: slots holding keys at or beyond the fence are stale
	// copies from a split whose prune commit was lost to a crash — the
	// authoritative copies live at the right sibling. Revalidating them
	// would resurrect stale values, so prune them instead.
	if clean := t.liveBitmap(n); clean != bm {
		c.Store64(n.Add(ffOffBitmap), clean)
		c.Persist(n.Add(ffOffBitmap), 8)
		t.insertInto(n, path, key, value)
		return
	}
	// Full: split, then retry on the proper side.
	m, right := t.split(n, path)
	target := n
	if key >= m {
		target = right
	}
	t.insertInto(target, path, key, value)
}

// liveBitmap returns n's bitmap restricted to keys below the fence.
func (t *FastFair) liveBitmap(n core.Addr) uint64 {
	bm := t.bitmap(n)
	hi := t.highKey(n)
	var clean uint64
	for i := uint64(0); i < ffSlots; i++ {
		if bm&(1<<i) != 0 && t.key(n, i) < hi {
			clean |= 1 << i
		}
	}
	return clean
}

type ffPair struct{ k, v uint64 }

// split divides the full node n, returning the separator and the new right
// node. The left node keeps operating for keys below the separator; the
// separator is then inserted into the parent (recursively splitting).
func (t *FastFair) split(n core.Addr, path []core.Addr) (uint64, core.Addr) {
	c := t.c
	var pairs []ffPair
	for i := uint64(0); i < ffSlots; i++ {
		pairs = append(pairs, ffPair{t.key(n, i), t.val(n, i)})
	}
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && pairs[j].k < pairs[j-1].k; j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
	mid := len(pairs) / 2
	sep := pairs[mid].k

	level := t.level(n)
	right := t.newNode()
	c.Store64(right.Add(ffOffLevel), level)
	c.Store64(right.Add(ffOffHighKey), t.highKey(n))
	c.StorePtr(right.Add(ffOffSibling), t.sibling(n))
	upper := pairs[mid:]
	var rightBM uint64
	if level > 1 {
		// Internal: the separator's child becomes the right leftmost.
		c.StorePtr(right.Add(ffOffLeftmost), core.Addr(pairs[mid].v))
		upper = pairs[mid+1:]
	}
	for i, pr := range upper {
		c.Store64(right.Add(ffOffKeys+8*uint64(i)), pr.k)
		c.Store64(right.Add(ffOffVals+8*uint64(i)), pr.v)
		rightBM |= 1 << uint64(i)
	}
	c.Store64(right.Add(ffOffBitmap), rightBM)
	if t.bugs.NoHeaderFlush {
		// BUG: only the slot contents are persisted.
		c.Persist(right.Add(ffOffKeys), ffNodeSize-ffOffKeys)
	} else {
		c.Persist(right, ffNodeSize)
	}

	// Link, fence, prune — each step leaves a consistent tree.
	c.StorePtr(n.Add(ffOffSibling), right)
	c.Persist(n.Add(ffOffSibling), 8)
	c.Store64(n.Add(ffOffHighKey), sep)
	c.Persist(n.Add(ffOffHighKey), 8)
	var leftBM uint64
	for i := uint64(0); i < ffSlots; i++ {
		if t.key(n, i) < sep {
			leftBM |= 1 << i
		}
	}
	c.Store64(n.Add(ffOffBitmap), leftBM) // commit store
	c.Persist(n.Add(ffOffBitmap), 8)

	// Separator into the parent.
	if len(path) == 0 {
		nr := t.newNode()
		c.Store64(nr.Add(ffOffLevel), level+1)
		c.Store64(nr.Add(ffOffHighKey), ffInfinity)
		// The leftmost child is the tree's current root: if an earlier
		// root split lost its new-root commit to a crash, the root
		// pointer still designates the leftmost node of this level.
		c.StorePtr(nr.Add(ffOffLeftmost), c.LoadPtr(t.root))
		c.Store64(nr.Add(ffOffKeys), sep)
		c.Store64(nr.Add(ffOffVals), uint64(right))
		c.Store64(nr.Add(ffOffBitmap), 1)
		if !t.bugs.NoHeaderFlush {
			c.Persist(nr, ffNodeSize)
		}
		c.StorePtr(t.root, nr) // commit store
		c.Persist(t.root, 8)
		return sep, right
	}
	parent := path[len(path)-1]
	parent = t.stepRight(parent, sep)
	t.insertInto(parent, path[:len(path)-1], sep, uint64(right))
	return sep, right
}

// Lookup returns the value stored for key.
func (t *FastFair) Lookup(key uint64) (uint64, bool) {
	leaf, _ := t.descend(key)
	bm := t.bitmap(leaf)
	for i := uint64(0); i < ffSlots; i++ {
		if bm&(1<<i) != 0 && t.key(leaf, i) == key {
			return t.val(leaf, i), true
		}
	}
	return 0, false
}

// Scan calls fn for every committed pair with lo ≤ key < hi, in key order
// within each leaf's authoritative range (the leaf chain is ordered by
// fences; slots within a leaf are unsorted, so they are sorted here).
func (t *FastFair) Scan(lo, hi uint64, fn func(k, v uint64)) {
	c := t.c
	leaf, _ := t.descend(lo)
	prevFence := uint64(0)
	for leaf != 0 {
		fence := t.highKey(leaf)
		bm := t.bitmap(leaf)
		var pairs []ffPair
		for i := uint64(0); i < ffSlots; i++ {
			if bm&(1<<i) == 0 {
				continue
			}
			k := t.key(leaf, i)
			if k < prevFence || k >= fence || k < lo || k >= hi {
				continue
			}
			pairs = append(pairs, ffPair{k, t.val(leaf, i)})
		}
		for i := 1; i < len(pairs); i++ {
			for j := i; j > 0 && pairs[j].k < pairs[j-1].k; j-- {
				pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
			}
		}
		for _, pr := range pairs {
			fn(pr.k, pr.v)
		}
		if fence == ffInfinity || fence >= hi {
			return
		}
		prevFence = fence
		leaf = c.LoadPtr(leaf.Add(ffOffSibling))
	}
}

// Check validates levels, fences and leaf contents, returning the number of
// committed keys (walked along the leaf sibling chain).
func (t *FastFair) Check(valueOf func(uint64) uint64) int {
	c := t.c
	root := c.LoadPtr(t.root)
	if root == 0 {
		return 0
	}
	// Descend along leftmost pointers to the first leaf.
	n := root
	steps := 0
	for t.level(n) != 1 {
		lv := t.level(n)
		c.Assert(lv >= 2 && lv < 32, "fast_fair check: node %v has level %d", n, lv)
		next := c.LoadPtr(n.Add(ffOffLeftmost))
		n = next
		steps++
		c.Assert(steps < 64, "fast_fair check: leftmost chain too deep")
	}
	// Walk the leaf chain. A node's authoritative range is
	// [prevHigh, highKey): slots outside it are stale duplicates from
	// splits whose prune commit has not persisted — lookups never reach
	// them (stepRight skips past this node first), so they are skipped,
	// not flagged.
	total := 0
	prevHigh := uint64(0)
	for n != 0 {
		c.Assert(t.level(n) == 1, "fast_fair check: non-leaf %v in leaf chain", n)
		hi := t.highKey(n)
		c.Assert(hi >= prevHigh, "fast_fair check: fence keys decreased (%d after %d)", hi, prevHigh)
		bm := t.bitmap(n)
		for i := uint64(0); i < ffSlots; i++ {
			if bm&(1<<i) == 0 {
				continue
			}
			k := t.key(n, i)
			if k >= hi || k < prevHigh {
				continue // stale pre-split duplicate, unreachable by lookups
			}
			c.Assert(k != 0, "fast_fair check: committed slot with zero key in %v", n)
			v := t.val(n, i)
			c.Assert(v == valueOf(k), "fast_fair check: key %d has value %d", k, v)
			total++
		}
		if hi == ffInfinity {
			// Nodes beyond an infinite fence are unreachable remnants of
			// an in-flight split (the fence-narrowing store did not
			// persist); lookups resolve every key on this side.
			break
		}
		prevHigh = hi
		n = t.sibling(n)
	}
	return total
}
