package recipe

import "jaaru/internal/core"

// P-ART analog: a radix tree with 4-bit span and lazy expansion (leaves are
// installed at the shallowest free slot; colliding leaves push down through
// freshly built internal chains committed with a single pointer store).
// Internal nodes keep their child array behind an indirection, as ART's
// N48/N256 layouts do.
//
// The paper found three P-ART bugs (Figure 13): the epoch/lock bookkeeping
// lived in a volatile tbb vector that recovery dereferences (P-ART-1,
// segfault; P-ART-3, infinite loop) and a missing flush in the Tree
// constructor (P-ART-2, illegal access).

const (
	artSpan     = 4
	artFanout   = 1 << artSpan
	artTopShift = 60

	artTypeLeaf     = 1
	artTypeInternal = 2

	// Internal node: typeWord, childrenPtr → separate child array.
	artNodeSize = 16
	// Leaf: typeWord, key, value.
	artLeafSize = 24

	// Tree metadata in the pool root area.
	artOffRoot  = 0  // root internal node pointer
	artOffLock  = 8  // the tree write lock (shares the metadata line!)
	artOffCount = 16 // persistent size counter (persisted on every insert)
	artOffEpoch = 24 // pointer to the epoch lock-tracking structure
)

// ARTBugs selects the seeded P-ART bugs.
type ARTBugs struct {
	// VolatileEpoch initializes the epoch lock-tracking vector without
	// persisting its contents, as with a DRAM tbb vector (P-ART-1):
	// recovery dereferences its data pointer — segmentation fault.
	VolatileEpoch bool
	// NoRootNodeFlush skips persisting the root node in the Tree
	// constructor (P-ART-2): the children indirection reads null —
	// illegal memory access.
	NoRootNodeFlush bool
	// NoLockReset makes recovery trust the recovered lock word instead of
	// reinitializing it (P-ART-3, "use of non-persistent data structure
	// for recovery"): the unlock never persisted, so recovery spins —
	// infinite loop.
	NoLockReset bool
}

// ART is a handle to the radix tree.
type ART struct {
	c    *core.Context
	meta core.Addr
	bugs ARTBugs
}

// CreateART builds an empty tree.
func CreateART(c *core.Context, bugs ARTBugs) *ART {
	t := &ART{c: c, meta: c.Root(), bugs: bugs}
	root := t.newInternal()
	if bugs.NoRootNodeFlush {
		// BUG: the node (and its children indirection) is never persisted.
	} else {
		t.persistInternal(root)
	}

	// The epoch structure tracks held locks for recovery unlocking. The
	// buggy variant initializes it like a volatile vector: the pointer is
	// persisted (it lives in the flushed metadata line) but the vector's
	// own fields never are.
	if bugs.VolatileEpoch {
		vec := c.AllocLine(16) // {dataPtr, size}
		data := c.AllocLine(8 * 8)
		c.StorePtr(vec, data)
		c.Store64(vec.Add(8), 0)
		// BUG: vec and data are never persisted.
		c.StorePtr(t.meta.Add(artOffEpoch), vec)
	}

	c.StorePtr(t.meta.Add(artOffRoot), root)
	c.Store64(t.meta.Add(artOffLock), 0)
	c.Store64(t.meta.Add(artOffCount), 0)
	c.Persist(t.meta, 32) // commit: the metadata line (root, lock, count, epoch)
	return t
}

// OpenART binds to a recovered tree. The fixed recovery reinitializes the
// lock word (locks are meaningless after a failure); the NoLockReset bug
// instead spins on the recovered value, waiting for an owner that no longer
// exists.
func OpenART(c *core.Context, bugs ARTBugs) (*ART, bool) {
	t := &ART{c: c, meta: c.Root(), bugs: bugs}
	if c.LoadPtr(t.meta.Add(artOffRoot)) == 0 {
		return t, false
	}
	if bugs.VolatileEpoch {
		if vec := c.LoadPtr(t.meta.Add(artOffEpoch)); vec != 0 {
			// Recovery consults the lock-tracking vector to release held
			// locks — but the vector was volatile (P-ART-1): its data
			// pointer never persisted and recovers as null.
			data := c.LoadPtr(vec)
			_ = c.Load64(data) // first tracked-lock record
		}
	}
	if bugs.NoLockReset {
		// BUG: wait for the recorded owner to release the lock (P-ART-3).
		for c.Load64(t.meta.Add(artOffLock)) != 0 {
		}
	} else {
		c.Store64(t.meta.Add(artOffLock), 0)
	}
	return t, true
}

// WithContext rebinds the handle to another guest thread's context
// (handles are bound to one thread; see core.Context).
func (t *ART) WithContext(c *core.Context) *ART {
	return &ART{c: c, meta: t.meta, bugs: t.bugs}
}

func (t *ART) newInternal() core.Addr {
	c := t.c
	n := c.AllocLine(artNodeSize)
	children := c.AllocLine(artFanout * 8)
	for i := uint64(0); i < artFanout; i++ {
		c.StorePtr(children.Add(8*i), 0)
	}
	c.Store64(n, artTypeInternal)
	c.StorePtr(n.Add(8), children)
	return n
}

func (t *ART) persistInternal(n core.Addr) {
	c := t.c
	c.Persist(c.LoadPtr(n.Add(8)), artFanout*8)
	c.Persist(n, artNodeSize)
}

func (t *ART) newLeaf(key, value uint64) core.Addr {
	c := t.c
	n := c.AllocLine(artLeafSize)
	c.Store64(n, artTypeLeaf)
	c.Store64(n.Add(8), key)
	c.Store64(n.Add(16), value)
	c.Persist(n, artLeafSize)
	return n
}

func (t *ART) typeOf(n core.Addr) uint64 { return t.c.Load64(n) }

func (t *ART) childSlot(n core.Addr, idx uint64) core.Addr {
	children := t.c.LoadPtr(n.Add(8))
	return children.Add(8 * idx)
}

func (t *ART) lock() {
	c := t.c
	for !c.CAS64(t.meta.Add(artOffLock), 0, 1) {
	}
}

func (t *ART) unlock() {
	// Plain store, never persisted: lock state is volatile by intent, but
	// the metadata line it shares with the size counter is flushed on
	// every insert, so the held state can become durable.
	t.c.Store64(t.meta.Add(artOffLock), 0)
}

// Insert stores a pair.
func (t *ART) Insert(key, value uint64) {
	c := t.c
	c.Assert(key != 0, "P-ART: key 0 is reserved")
	t.lock()
	node := c.LoadPtr(t.meta.Add(artOffRoot))
	shift := uint64(artTopShift)
	for {
		idx := key >> shift & (artFanout - 1)
		slot := t.childSlot(node, idx)
		child := c.LoadPtr(slot)
		if child == 0 {
			leaf := t.newLeaf(key, value)
			c.StorePtr(slot, leaf) // commit store
			c.Persist(slot, 8)
			break
		}
		switch t.typeOf(child) {
		case artTypeInternal:
			node = child
			shift -= artSpan
			continue
		case artTypeLeaf:
			exKey := c.Load64(child.Add(8))
			if exKey == key {
				c.Store64(child.Add(16), value)
				c.Persist(child.Add(16), 8)
			} else {
				top := t.pushDown(child, exKey, key, value, shift-artSpan)
				c.StorePtr(slot, top) // commit store
				c.Persist(slot, 8)
			}
		default:
			c.Bug("P-ART: node %v has invalid type %d", child, t.typeOf(child))
		}
		break
	}
	// Bump the persistent size counter — this flush is what makes the
	// shared metadata line (including the lock word) durable mid-insert.
	c.Store64(t.meta.Add(artOffCount), c.Load64(t.meta.Add(artOffCount))+1)
	c.Persist(t.meta.Add(artOffCount), 8)
	t.unlock()
}

// pushDown builds the internal chain separating an existing leaf from a new
// key, fully persisted, and returns its top — ready for a single commit
// store.
func (t *ART) pushDown(exLeaf core.Addr, exKey, key, value uint64, shift uint64) core.Addr {
	c := t.c
	top := t.newInternal()
	node := top
	for {
		exIdx := exKey >> shift & (artFanout - 1)
		newIdx := key >> shift & (artFanout - 1)
		if exIdx != newIdx {
			leaf := t.newLeaf(key, value)
			c.StorePtr(t.childSlot(node, exIdx), exLeaf)
			c.StorePtr(t.childSlot(node, newIdx), leaf)
			t.persistInternal(node)
			return top
		}
		child := t.newInternal()
		c.StorePtr(t.childSlot(node, exIdx), child)
		t.persistInternal(node)
		c.Assert(shift > 0, "P-ART: identical keys reached the bottom")
		node = child
		shift -= artSpan
	}
}

// Lookup returns the value stored for key.
func (t *ART) Lookup(key uint64) (uint64, bool) {
	c := t.c
	node := c.LoadPtr(t.meta.Add(artOffRoot))
	shift := uint64(artTopShift)
	for {
		idx := key >> shift & (artFanout - 1)
		child := c.LoadPtr(t.childSlot(node, idx))
		if child == 0 {
			return 0, false
		}
		if t.typeOf(child) == artTypeLeaf {
			if c.Load64(child.Add(8)) == key {
				return c.Load64(child.Add(16)), true
			}
			return 0, false
		}
		node = child
		shift -= artSpan
	}
}

// Check walks the tree, validating node types and leaf placement, and
// returns the leaf count.
func (t *ART) Check(valueOf func(uint64) uint64) int {
	root := t.c.LoadPtr(t.meta.Add(artOffRoot))
	if root == 0 {
		return 0
	}
	return t.checkNode(root, 0, artTopShift, valueOf)
}

func (t *ART) checkNode(n core.Addr, prefix uint64, shift uint64, valueOf func(uint64) uint64) int {
	c := t.c
	typ := t.typeOf(n)
	c.Assert(typ == artTypeInternal, "P-ART check: expected internal node at %v, type %d", n, typ)
	total := 0
	for idx := uint64(0); idx < artFanout; idx++ {
		child := c.LoadPtr(t.childSlot(n, idx))
		if child == 0 {
			continue
		}
		p := prefix | idx<<shift
		switch t.typeOf(child) {
		case artTypeLeaf:
			key := c.Load64(child.Add(8))
			c.Assert(key>>shift == p>>shift,
				"P-ART check: leaf key %#x misplaced under prefix %#x", key, p)
			v := c.Load64(child.Add(16))
			c.Assert(v == valueOf(key), "P-ART check: key %d has value %d", key, v)
			total++
		case artTypeInternal:
			c.Assert(shift >= artSpan, "P-ART check: internal node below leaf level")
			total += t.checkNode(child, p, shift-artSpan, valueOf)
		default:
			c.Assert(false, "P-ART check: node %v has invalid type %d", child, t.typeOf(child))
		}
	}
	return total
}
