package recipe

import "jaaru/internal/core"

// P-BwTree analog: a Bw-tree — nodes are addressed through a mapping table
// of PIDs, updates prepend delta records to a PID's chain with a single
// pointer commit, and long chains are consolidated into fresh base nodes.
// Retired nodes go to an epoch garbage list in persistent memory.
//
// The paper found five P-BwTree bugs (Figure 13): a GC atomicity violation
// (BW-1) and missing flushes of the GC metadata pointer (BW-2), the GC
// metadata itself (BW-3), the AllocationMeta constructor (BW-4) and the
// BwTree constructor (BW-5). All manifest as segmentation faults
// (Figure 15).

const (
	bwTypeBase  = 1
	bwTypeDelta = 2

	// Base node: type, count, gcNext, keys[16], vals[16].
	bwBaseSlots = 16
	bwBaseSize  = 24 + bwBaseSlots*16
	bwOffCount  = 8
	bwOffGCNext = 16
	bwOffKeys   = 24
	bwOffVals   = 24 + bwBaseSlots*8

	// Delta record: type, key, val, next, gcNext.
	bwDeltaSize    = 40
	bwDeltaOffKey  = 8
	bwDeltaOffVal  = 16
	bwDeltaOffNext = 24
	bwDeltaOffGC   = 32

	// Mapping table (the AllocationMeta): capacity, used, entriesPtr.
	bwMapSize       = 24
	bwMapOffCap     = 0
	bwMapOffUsed    = 8
	bwMapOffEntries = 16

	// GC metadata: head (sentinel-terminated), retired count.
	bwGCSize    = 16
	bwGCOffHead = 0
	bwGCOffN    = 8

	// The GC list terminator: distinguishable from both null (which means
	// "pointer never persisted") and real node addresses.
	bwGCSentinel = core.Addr(0x5EA15EA15EA10000)

	// Tree metadata in the pool root area. The two pointers live on
	// separate cache lines so that persisting one cannot incidentally
	// flush the other.
	bwOffMap = 0  // mapping table pointer
	bwOffGC  = 64 // GC metadata pointer

	bwConsolidateAt = 4 // chain length triggering consolidation
	bwRootPID       = 0
)

// BwTreeBugs selects the seeded P-BwTree bugs.
type BwTreeBugs struct {
	// GCReversedLink retires nodes head-first (BW-1): the head commit can
	// persist before the node's own next link, leaving a GC chain that
	// dereferences null — the GC atomicity violation.
	GCReversedLink bool
	// NoGCPtrFlush skips persisting the GC metadata pointer (BW-2).
	NoGCPtrFlush bool
	// NoGCMetaFlush skips persisting the GC metadata contents (BW-3): the
	// head recovers as null instead of the sentinel.
	NoGCMetaFlush bool
	// NoMapMetaFlush skips persisting the mapping table's entries pointer
	// (BW-4, AllocationMeta constructor).
	NoMapMetaFlush bool
	// NoRootEntryFlush skips persisting the root PID's mapping entry
	// (BW-5, BwTree constructor).
	NoRootEntryFlush bool
}

// BwTree is a handle to the tree.
type BwTree struct {
	c    *core.Context
	meta core.Addr
	bugs BwTreeBugs
}

// CreateBwTree builds the mapping table, the GC metadata and an empty root
// base node at PID 0.
func CreateBwTree(c *core.Context, bugs BwTreeBugs) *BwTree {
	t := &BwTree{c: c, meta: c.Root(), bugs: bugs}

	entries := c.AllocLine(8 * 64)
	m := c.AllocLine(bwMapSize)
	c.Store64(m.Add(bwMapOffCap), 64)
	c.Store64(m.Add(bwMapOffUsed), 1) // PID 0: the root
	c.StorePtr(m.Add(bwMapOffEntries), entries)
	if !bugs.NoMapMetaFlush {
		c.Persist(m, bwMapSize)
	}

	root := t.newBase()
	c.Store64(root, bwTypeBase)
	c.Persist(root, bwBaseSize)
	c.StorePtr(entries, root)
	if !bugs.NoRootEntryFlush {
		c.Persist(entries, 8)
	}

	gc := c.AllocLine(bwGCSize)
	c.StorePtr(gc.Add(bwGCOffHead), bwGCSentinel)
	c.Store64(gc.Add(bwGCOffN), 0)
	if !bugs.NoGCMetaFlush {
		c.Persist(gc, bwGCSize)
	}

	// The GC pointer is stored (and, in the fixed variant, persisted)
	// before the map pointer: opening gates on the map pointer, so a
	// recovered pool with a map always has its GC metadata.
	c.StorePtr(t.meta.Add(bwOffGC), gc)
	if !bugs.NoGCPtrFlush {
		c.Persist(t.meta.Add(bwOffGC), 8)
	}
	c.StorePtr(t.meta.Add(bwOffMap), m) // commit store
	c.Persist(t.meta.Add(bwOffMap), 8)
	return t
}

// OpenBwTree binds to a recovered tree.
func OpenBwTree(c *core.Context, bugs BwTreeBugs) (*BwTree, bool) {
	t := &BwTree{c: c, meta: c.Root(), bugs: bugs}
	return t, c.LoadPtr(t.meta.Add(bwOffMap)) != 0
}

// newBase allocates a base node and writes its complete (zero) image.
func (t *BwTree) newBase() core.Addr {
	n := t.c.AllocLine(bwBaseSize)
	for w := uint64(0); w < bwBaseSize/8; w++ {
		t.c.Store64(n.Add(8*w), 0)
	}
	return n
}

// WithContext rebinds the handle to another guest thread's context
// (handles are bound to one thread; see core.Context).
func (t *BwTree) WithContext(c *core.Context) *BwTree {
	return &BwTree{c: c, meta: t.meta, bugs: t.bugs}
}

func (t *BwTree) mapping() core.Addr { return t.c.LoadPtr(t.meta.Add(bwOffMap)) }

func (t *BwTree) entrySlot(pid uint64) core.Addr {
	c := t.c
	m := t.mapping()
	entries := c.LoadPtr(m.Add(bwMapOffEntries))
	return entries.Add(8 * pid)
}

// Insert prepends a delta record to the root PID's chain; long chains are
// consolidated.
func (t *BwTree) Insert(key, value uint64) {
	c := t.c
	c.Assert(key != 0, "P-BwTree: key 0 is reserved")
	slot := t.entrySlot(bwRootPID)
	head := c.LoadPtr(slot)

	d := c.AllocLine(bwDeltaSize)
	c.Store64(d, bwTypeDelta)
	c.Store64(d.Add(bwDeltaOffKey), key)
	c.Store64(d.Add(bwDeltaOffVal), value)
	c.StorePtr(d.Add(bwDeltaOffNext), head)
	c.Persist(d, bwDeltaSize)
	c.StorePtr(slot, d) // commit store
	c.Persist(slot, 8)

	if t.chainLen(d) > bwConsolidateAt {
		t.consolidate()
	}
}

func (t *BwTree) chainLen(n core.Addr) int {
	c := t.c
	length := 0
	for c.Load64(n) == bwTypeDelta {
		length++
		n = c.LoadPtr(n.Add(bwDeltaOffNext))
	}
	return length
}

// consolidate folds the root PID's delta chain into a fresh base node and
// retires the old chain to the GC list.
func (t *BwTree) consolidate() {
	c := t.c
	slot := t.entrySlot(bwRootPID)
	oldHead := c.LoadPtr(slot)

	// Collect the chain's view: newest delta wins, then the base.
	type kv struct{ k, v uint64 }
	var pairs []kv
	seen := make(map[uint64]bool)
	n := oldHead
	for c.Load64(n) == bwTypeDelta {
		k := c.Load64(n.Add(bwDeltaOffKey))
		if !seen[k] {
			seen[k] = true
			pairs = append(pairs, kv{k, c.Load64(n.Add(bwDeltaOffVal))})
		}
		n = c.LoadPtr(n.Add(bwDeltaOffNext))
	}
	base := n
	cnt := c.Load64(base.Add(bwOffCount))
	for i := uint64(0); i < cnt; i++ {
		k := c.Load64(base.Add(bwOffKeys + 8*i))
		if !seen[k] {
			seen[k] = true
			pairs = append(pairs, kv{k, c.Load64(base.Add(bwOffVals + 8*i))})
		}
	}
	c.Assert(len(pairs) <= bwBaseSlots, "P-BwTree: consolidation overflow (%d pairs)", len(pairs))

	nb := t.newBase()
	c.Store64(nb, bwTypeBase)
	c.Store64(nb.Add(bwOffCount), uint64(len(pairs)))
	for i, pr := range pairs {
		c.Store64(nb.Add(bwOffKeys+8*uint64(i)), pr.k)
		c.Store64(nb.Add(bwOffVals+8*uint64(i)), pr.v)
	}
	c.Persist(nb, bwBaseSize)
	c.StorePtr(slot, nb) // commit store
	c.Persist(slot, 8)

	// Retire the old chain (deltas and the old base).
	n = oldHead
	for c.Load64(n) == bwTypeDelta {
		next := c.LoadPtr(n.Add(bwDeltaOffNext))
		t.retire(n, bwDeltaOffGC)
		n = next
	}
	t.retire(n, bwOffGCNext)
}

// retire pushes a node onto the GC list. The fixed order is node.gcNext
// first (persisted), then the head commit store — so the list is always
// walkable.
func (t *BwTree) retire(n core.Addr, gcOff uint64) {
	c := t.c
	gc := c.LoadPtr(t.meta.Add(bwOffGC))
	head := c.LoadPtr(gc.Add(bwGCOffHead))
	if t.bugs.GCReversedLink {
		// BUG (BW-1): the head commit can persist before the node's link.
		c.StorePtr(gc.Add(bwGCOffHead), n)
		c.Persist(gc.Add(bwGCOffHead), 8)
		c.StorePtr(n.Add(gcOff), head)
		c.Persist(n.Add(gcOff), 8)
	} else {
		c.StorePtr(n.Add(gcOff), head)
		c.Persist(n.Add(gcOff), 8)
		c.StorePtr(gc.Add(bwGCOffHead), n) // commit store
		c.Persist(gc.Add(bwGCOffHead), 8)
	}
	c.Store64(gc.Add(bwGCOffN), c.Load64(gc.Add(bwGCOffN))+1)
	c.Persist(gc.Add(bwGCOffN), 8)
}

// Lookup returns the value stored for key (newest delta wins).
func (t *BwTree) Lookup(key uint64) (uint64, bool) {
	c := t.c
	n := c.LoadPtr(t.entrySlot(bwRootPID))
	for c.Load64(n) == bwTypeDelta {
		if c.Load64(n.Add(bwDeltaOffKey)) == key {
			return c.Load64(n.Add(bwDeltaOffVal)), true
		}
		n = c.LoadPtr(n.Add(bwDeltaOffNext))
	}
	cnt := c.Load64(n.Add(bwOffCount))
	for i := uint64(0); i < cnt; i++ {
		if c.Load64(n.Add(bwOffKeys+8*i)) == key {
			return c.Load64(n.Add(bwOffVals + 8*i)), true
		}
	}
	return 0, false
}

// Check validates the mapping table, walks the root chain and the GC list —
// dereferencing them exactly as the recovery epoch manager does — and
// returns the number of live keys.
func (t *BwTree) Check(valueOf func(uint64) uint64) int {
	c := t.c
	m := t.mapping()
	used := c.Load64(m.Add(bwMapOffUsed))
	capacity := c.Load64(m.Add(bwMapOffCap))
	c.Assert(used >= 1 && used <= capacity,
		"P-BwTree check: mapping table used %d of %d", used, capacity)

	// Live chain.
	total := 0
	seen := make(map[uint64]bool)
	n := c.LoadPtr(t.entrySlot(bwRootPID))
	steps := 0
	for c.Load64(n) == bwTypeDelta {
		c.Assert(steps < 1<<12, "P-BwTree check: delta chain cycle")
		steps++
		k := c.Load64(n.Add(bwDeltaOffKey))
		if !seen[k] {
			seen[k] = true
			v := c.Load64(n.Add(bwDeltaOffVal))
			c.Assert(v == valueOf(k), "P-BwTree check: key %d has value %d", k, v)
			total++
		}
		n = c.LoadPtr(n.Add(bwDeltaOffNext))
	}
	c.Assert(c.Load64(n) == bwTypeBase, "P-BwTree check: chain tail %v is not a base node", n)
	cnt := c.Load64(n.Add(bwOffCount))
	c.Assert(cnt <= bwBaseSlots, "P-BwTree check: base count %d corrupt", cnt)
	for i := uint64(0); i < cnt; i++ {
		k := c.Load64(n.Add(bwOffKeys + 8*i))
		if !seen[k] {
			seen[k] = true
			v := c.Load64(n.Add(bwOffVals + 8*i))
			c.Assert(v == valueOf(k), "P-BwTree check: key %d has value %d", k, v)
			total++
		}
	}

	// GC list: the epoch manager walks it on recovery to reclaim retired
	// nodes. A broken link is dereferenced, as the real code would.
	gc := c.LoadPtr(t.meta.Add(bwOffGC))
	cur := c.LoadPtr(gc.Add(bwGCOffHead))
	steps = 0
	for cur != bwGCSentinel {
		c.Assert(steps < 1<<12, "P-BwTree check: GC list cycle")
		steps++
		typ := c.Load64(cur)
		switch typ {
		case bwTypeDelta:
			cur = c.LoadPtr(cur.Add(bwDeltaOffGC))
		case bwTypeBase:
			cur = c.LoadPtr(cur.Add(bwOffGCNext))
		default:
			c.Assert(false, "P-BwTree check: GC node %v has type %d", cur, typ)
		}
	}
	return total
}
