package recipe

import "jaaru/internal/core"

// P-CLHT analog: a cache-line hash table — every bucket is exactly one
// cache line holding a lock word, three (key, value) pairs and an overflow
// chain pointer. Insertion commits by storing the key after its value has
// persisted; the bucket lock word shares the bucket's cache line, so every
// commit flush makes the held lock durable too — which is why recovery must
// reinitialize locks.
//
// The paper found three P-CLHT bugs (Figure 13): missing flushes in the
// clht constructor (CLHT-1) and for the hashtable object (CLHT-2), both
// illegal memory accesses, and a missing flush for the hashtable array
// whose lock words recover held (CLHT-3) — an infinite loop (Figure 15).

const (
	clhtBucketSlots = 3
	clhtBucketSize  = 64

	clhtOffLock = 0
	clhtOffKeys = 8  // 3 × 8
	clhtOffVals = 32 // 3 × 8
	clhtOffNext = 56 // overflow chain

	// clht root object: {htPtr}.
	clhtRootSize = 8
	// hashtable object: {nBuckets, bucketsPtr}.
	clhtHTSize = 16
)

// CLHTBugs selects the seeded P-CLHT bugs.
type CLHTBugs struct {
	// NoRootStructFlush skips persisting the clht root structure
	// (CLHT-1): its hashtable pointer recovers null — illegal access.
	NoRootStructFlush bool
	// NoHTObjectFlush skips persisting the hashtable object (CLHT-2):
	// the bucket-array pointer recovers null — illegal access.
	NoHTObjectFlush bool
	// NoLockReset makes recovery trust the recovered bucket lock words
	// (CLHT-3): commits flushed the whole bucket line, locks included, so
	// a post-failure insert spins forever — infinite loop.
	NoLockReset bool
}

// CLHT is a handle to the hash table.
type CLHT struct {
	c    *core.Context
	meta core.Addr
	bugs CLHTBugs
}

// CreateCLHT builds the table with nBuckets one-line buckets.
func CreateCLHT(c *core.Context, nBuckets uint64, bugs CLHTBugs) *CLHT {
	t := &CLHT{c: c, meta: c.Root(), bugs: bugs}

	// The constructor writes every word of the bucket array (as the C++
	// clht constructor does) before flushing it: the failure point right
	// before this Persist is where an eager checker faces 9^(words/8)
	// post-failure states, while recovery — gated on the root commit —
	// never reads them.
	buckets := c.AllocLine(nBuckets * clhtBucketSize)
	for w := uint64(0); w < nBuckets*clhtBucketSize/8; w++ {
		c.Store64(buckets.Add(8*w), 0)
	}
	c.Persist(buckets, nBuckets*clhtBucketSize)

	ht := c.AllocLine(clhtHTSize)
	c.Store64(ht, nBuckets)
	c.StorePtr(ht.Add(8), buckets)
	if !bugs.NoHTObjectFlush {
		c.Persist(ht, clhtHTSize)
	}

	rootStruct := c.AllocLine(clhtRootSize)
	c.StorePtr(rootStruct, ht)
	if !bugs.NoRootStructFlush {
		c.Persist(rootStruct, clhtRootSize)
	}

	c.StorePtr(t.meta, rootStruct) // commit store
	c.Persist(t.meta, 8)
	return t
}

// WithContext rebinds the table handle to another guest thread's context:
// a handle is bound to one thread, so sharing a CLHT across Spawned threads
// requires each thread to rebind (like acquiring a per-thread descriptor).
func (t *CLHT) WithContext(c *core.Context) *CLHT {
	return &CLHT{c: c, meta: t.meta, bugs: t.bugs}
}

// OpenCLHT binds to a recovered table. The fixed recovery walks the bucket
// array and reinitializes every lock word (the RECIPE fix); the NoLockReset
// bug trusts the recovered, possibly-held locks.
func OpenCLHT(c *core.Context, bugs CLHTBugs) (*CLHT, bool) {
	t := &CLHT{c: c, meta: c.Root(), bugs: bugs}
	rootStruct := c.LoadPtr(t.meta)
	if rootStruct == 0 {
		return t, false
	}
	if !bugs.NoLockReset {
		ht := c.LoadPtr(rootStruct)
		n := c.Load64(ht)
		buckets := c.LoadPtr(ht.Add(8))
		for b := uint64(0); b < n; b++ {
			bucket := buckets.Add(b * clhtBucketSize)
			steps := 0
			for bucket != 0 {
				c.Store64(bucket.Add(clhtOffLock), 0)
				bucket = c.LoadPtr(bucket.Add(clhtOffNext))
				steps++
				c.Assert(steps < 1<<16, "P-CLHT recovery: overflow chain cycle")
			}
		}
	}
	return t, true
}

func (t *CLHT) table() (buckets core.Addr, n uint64) {
	c := t.c
	rootStruct := c.LoadPtr(t.meta)
	ht := c.LoadPtr(rootStruct)
	n = c.Load64(ht)
	buckets = c.LoadPtr(ht.Add(8))
	return buckets, n
}

func (t *CLHT) lockBucket(bucket core.Addr) {
	c := t.c
	// Spin until the bucket lock is free. With NoLockReset, a lock made
	// durable by a commit flush of its own cache line never frees.
	for !c.CAS64(bucket.Add(clhtOffLock), 0, 1) {
	}
}

func (t *CLHT) unlockBucket(bucket core.Addr) {
	// Plain store: lock state is meant to be volatile, but it shares the
	// bucket's cache line with the committed slots.
	t.c.Store64(bucket.Add(clhtOffLock), 0)
}

// Insert stores a pair: value persisted first, key as the commit store.
func (t *CLHT) Insert(key, value uint64) {
	c := t.c
	c.Assert(key != 0, "P-CLHT: key 0 is reserved")
	buckets, n := t.table()
	c.Assert(n != 0, "P-CLHT: hashtable has zero buckets")
	first := buckets.Add(hmix(key) % n * clhtBucketSize)
	t.lockBucket(first)
	defer t.unlockBucket(first)

	// Pass 1 — like the real clht_put: scan the whole chain for the key
	// (update in place), remembering the first free slot and the chain
	// tail. Inserting at an early free slot while the key lives in a later
	// chained bucket would create a duplicate whose stale value resurfaces
	// after a delete.
	var free, tail core.Addr
	for bucket := first; bucket != 0; bucket = c.LoadPtr(bucket.Add(clhtOffNext)) {
		for i := uint64(0); i < clhtBucketSlots; i++ {
			kAddr := bucket.Add(clhtOffKeys + 8*i)
			switch c.Load64(kAddr) {
			case key:
				c.Store64(bucket.Add(clhtOffVals+8*i), value)
				c.Persist(bucket.Add(clhtOffVals+8*i), 8)
				return
			case 0:
				if free == 0 {
					free = kAddr
				}
			}
		}
		tail = bucket
	}

	// Pass 2: commit into the free slot, growing the chain if needed.
	if free == 0 {
		nb := c.AllocLine(clhtBucketSize)
		c.Persist(nb, clhtBucketSize)
		c.StorePtr(tail.Add(clhtOffNext), nb) // commit store for the bucket
		c.Persist(tail.Add(clhtOffNext), 8)
		free = nb.Add(clhtOffKeys)
	}
	valAddr := free.Add(clhtOffVals - clhtOffKeys) // the slot's value word
	c.Store64(valAddr, value)
	c.Persist(valAddr, 8) // flushes the bucket line: lock word included
	c.Store64(free, key)  // commit store
	c.Persist(free, 8)
}

// Delete removes a key from its bucket chain; clearing the key slot is the
// commit store.
func (t *CLHT) Delete(key uint64) bool {
	c := t.c
	buckets, n := t.table()
	c.Assert(n != 0, "P-CLHT: hashtable has zero buckets")
	bucket := buckets.Add(hmix(key) % n * clhtBucketSize)
	first := bucket
	t.lockBucket(first)
	defer t.unlockBucket(first)
	for bucket != 0 {
		for i := uint64(0); i < clhtBucketSlots; i++ {
			kAddr := bucket.Add(clhtOffKeys + 8*i)
			if c.Load64(kAddr) == key {
				c.Store64(kAddr, 0) // commit store
				c.Persist(kAddr, 8)
				return true
			}
		}
		bucket = c.LoadPtr(bucket.Add(clhtOffNext))
	}
	return false
}

func hmix(key uint64) uint64 {
	x := key
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return x
}

// Lookup returns the value stored for key.
func (t *CLHT) Lookup(key uint64) (uint64, bool) {
	c := t.c
	buckets, n := t.table()
	if n == 0 {
		return 0, false
	}
	bucket := buckets.Add(hmix(key) % n * clhtBucketSize)
	for bucket != 0 {
		for i := uint64(0); i < clhtBucketSlots; i++ {
			if c.Load64(bucket.Add(clhtOffKeys+8*i)) == key {
				return c.Load64(bucket.Add(clhtOffVals + 8*i)), true
			}
		}
		bucket = c.LoadPtr(bucket.Add(clhtOffNext))
	}
	return 0, false
}

// Check walks every bucket chain, validating committed pairs and placement,
// and returns the number of committed keys.
func (t *CLHT) Check(valueOf func(uint64) uint64) int {
	c := t.c
	buckets, n := t.table()
	c.Assert(n > 0 && n <= 1<<20, "P-CLHT check: bucket count %d corrupt", n)
	total := 0
	for b := uint64(0); b < n; b++ {
		bucket := buckets.Add(b * clhtBucketSize)
		steps := 0
		for bucket != 0 {
			c.Assert(steps < 1<<16, "P-CLHT check: chain cycle in bucket %d", b)
			steps++
			for i := uint64(0); i < clhtBucketSlots; i++ {
				k := c.Load64(bucket.Add(clhtOffKeys + 8*i))
				if k == 0 {
					continue
				}
				c.Assert(hmix(k)%n == b, "P-CLHT check: key %d in bucket %d", k, b)
				v := c.Load64(bucket.Add(clhtOffVals + 8*i))
				c.Assert(v == valueOf(k), "P-CLHT check: key %d has value %d", k, v)
				total++
			}
			bucket = c.LoadPtr(bucket.Add(clhtOffNext))
		}
	}
	return total
}
