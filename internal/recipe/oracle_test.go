package recipe

import (
	"math/rand"
	"testing"

	"jaaru/internal/core"
)

// Oracle tests: drive each structure with a long randomized operation
// sequence under direct execution and compare every observable against a
// Go map. Catches algorithmic bugs (probe chains, splits, rotations,
// consolidation) that the short crash-consistency workloads would miss.

type kvOps struct {
	insert func(k, v uint64)
	delete func(k uint64) bool // nil if unsupported
	lookup func(k uint64) (uint64, bool)
	check  func(valueOf func(uint64) uint64) int
}

func runOracle(t *testing.T, name string, seed int64, nOps int,
	build func(c *core.Context) kvOps) {
	t.Helper()
	res := core.Execute(name, func(c *core.Context) {
		rng := rand.New(rand.NewSource(seed))
		s := build(c)
		oracle := make(map[uint64]uint64)
		for i := 0; i < nOps; i++ {
			k := uint64(rng.Intn(60) + 1)
			switch op := rng.Intn(10); {
			case op < 6: // insert / update
				v := uint64(rng.Intn(1 << 16))
				s.insert(k, v)
				oracle[k] = v
			case op < 8 && s.delete != nil: // delete
				_, want := oracle[k]
				if got := s.delete(k); got != want {
					t.Errorf("%s seed %d op %d: Delete(%d) = %v, want %v",
						name, seed, i, k, got, want)
				}
				delete(oracle, k)
			default: // lookup
				v, ok := s.lookup(k)
				wv, wok := oracle[k]
				if ok != wok || (ok && v != wv) {
					t.Errorf("%s seed %d op %d: Lookup(%d) = (%d,%v), want (%d,%v)",
						name, seed, i, k, v, ok, wv, wok)
				}
			}
		}
		// Final sweep: every oracle key present with the right value, and
		// the structural check agrees on the population.
		for k, wv := range oracle {
			v, ok := s.lookup(k)
			if !ok || v != wv {
				t.Errorf("%s seed %d final: Lookup(%d) = (%d,%v), want (%d,true)",
					name, seed, k, v, ok, wv)
			}
		}
		if s.check != nil {
			n := s.check(func(k uint64) uint64 { return oracle[k] })
			if n != len(oracle) {
				t.Errorf("%s seed %d: Check counted %d keys, oracle has %d",
					name, seed, n, len(oracle))
			}
		}
	}, core.Options{MaxSteps: 1 << 24})
	if res.Buggy() {
		t.Fatalf("%s seed %d: %v", name, seed, res.Bugs[0])
	}
}

func TestOracleCCEH(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		runOracle(t, "cceh", seed, 400, func(c *core.Context) kvOps {
			h := CreateCCEH(c, CCEHBugs{})
			return kvOps{insert: h.Insert, delete: h.Delete, lookup: h.Lookup, check: h.Check}
		})
	}
}

func TestOracleFastFair(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		runOracle(t, "fastfair", seed, 400, func(c *core.Context) kvOps {
			tr := CreateFastFair(c, FFBugs{})
			return kvOps{insert: tr.Insert, lookup: tr.Lookup, check: tr.Check}
		})
	}
}

func TestOracleART(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		runOracle(t, "part", seed, 400, func(c *core.Context) kvOps {
			tr := CreateART(c, ARTBugs{})
			return kvOps{insert: tr.Insert, lookup: tr.Lookup, check: tr.Check}
		})
	}
}

func TestOracleBwTree(t *testing.T) {
	// The root PID's base node holds 16 keys; the oracle key space must
	// fit after consolidation.
	for seed := int64(0); seed < 4; seed++ {
		res := core.Execute("bwtree-oracle", func(c *core.Context) {
			rng := rand.New(rand.NewSource(seed))
			tr := CreateBwTree(c, BwTreeBugs{})
			oracle := make(map[uint64]uint64)
			for i := 0; i < 200; i++ {
				k := uint64(rng.Intn(14) + 1)
				if rng.Intn(3) < 2 {
					v := uint64(rng.Intn(1 << 16))
					tr.Insert(k, v)
					oracle[k] = v
				} else {
					v, ok := tr.Lookup(k)
					wv, wok := oracle[k]
					if ok != wok || (ok && v != wv) {
						t.Errorf("seed %d op %d: Lookup(%d) = (%d,%v), want (%d,%v)",
							seed, i, k, v, ok, wv, wok)
					}
				}
			}
			n := tr.Check(func(k uint64) uint64 { return oracle[k] })
			if n != len(oracle) {
				t.Errorf("seed %d: Check = %d, oracle %d", seed, n, len(oracle))
			}
		}, core.Options{MaxSteps: 1 << 24})
		if res.Buggy() {
			t.Fatalf("seed %d: %v", seed, res.Bugs[0])
		}
	}
}

func TestOracleCLHT(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		runOracle(t, "clht", seed, 400, func(c *core.Context) kvOps {
			h := CreateCLHT(c, 4, CLHTBugs{})
			return kvOps{insert: h.Insert, delete: h.Delete, lookup: h.Lookup, check: h.Check}
		})
	}
}

func TestOracleMasstree(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		runOracle(t, "masstree", seed, 300, func(c *core.Context) kvOps {
			tr := CreateMasstree(c, MasstreeBugs{})
			return kvOps{insert: tr.Insert, lookup: tr.Lookup, check: tr.Check}
		})
	}
}
