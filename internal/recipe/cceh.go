// Package recipe contains from-scratch Go analogs of the six RECIPE
// persistent-memory index structures the paper evaluates (§5, Figures 13
// and 15): CCEH, FAST_FAIR, P-ART, P-BwTree, P-CLHT and P-Masstree. Each
// structure has a crash-consistent Fixed variant (explored clean by the
// checker, used for the Figure 14 performance table) and seeded Bug knobs
// reproducing the 18 RECIPE bugs — primarily missing flushes in
// constructors, plus the non-persistent-epoch, lock-persistency and GC
// atomicity bugs the paper highlights.
package recipe

import "jaaru/internal/core"

// CCEH: cacheline-conscious extendible hashing. A directory of segment
// pointers indexed by the top globalDepth hash bits; each segment carries
// its local depth and pattern so that readers can detect directory/segment
// mismatches (the in-progress-split protocol). The paper found three
// missing-flush bugs in the CCEH constructor (CCEH-1..3, Figure 13).

const (
	ccehSlots    = 16 // (key, value) pairs per segment
	ccehSegSize  = 16 + ccehSlots*16
	ccehOffDepth = 0 // segment local depth
	ccehOffPat   = 8 // segment pattern (its directory prefix)
	ccehOffPairs = 16

	// Directory object: the globalDepth word has its own cache line; the
	// segment-pointer array starts on the next line (a real CCEH directory
	// spans many lines, which is exactly why its flushes can be missed).
	ccehDirDepth = 0
	ccehDirPtrs  = 64

	// Initial global depth: 16 directory entries over two segments.
	ccehInitDepth = 4
)

// ccehTombstone marks a deleted slot: probes continue past it (unlike an
// empty slot) and inserts may reuse it.
const ccehTombstone = ^uint64(0)

// CCEHBugs selects the seeded CCEH constructor bugs.
type CCEHBugs struct {
	// NoSegmentFlush skips persisting the initial segments' headers
	// (CCEH-1): the recovered pattern disagrees with the directory and
	// the lookup retry loop never terminates — "stuck in an infinite
	// loop" (Figure 15).
	NoSegmentFlush bool
	// NoDirArrayFlush skips persisting the directory's segment pointers
	// (CCEH-2): recovery dereferences a null segment — segmentation
	// fault.
	NoDirArrayFlush bool
	// NoDirEntryFlush skips persisting only the second half of the
	// directory (CCEH-3): keys hashing there dereference a null segment —
	// segmentation fault.
	NoDirEntryFlush bool
}

// CCEH is a handle to the hash table; the directory pointer lives at the
// pool root.
type CCEH struct {
	c    *core.Context
	root core.Addr // holds the directory pointer
	bugs CCEHBugs
}

// CreateCCEH builds the initial table: two segments behind a 16-entry
// directory (global depth 4).
func CreateCCEH(c *core.Context, bugs CCEHBugs) *CCEH {
	h := &CCEH{c: c, root: c.Root(), bugs: bugs}

	seg0 := h.newSegment(1, 0)
	seg1 := h.newSegment(1, 1)
	if !bugs.NoSegmentFlush {
		c.Persist(seg0, ccehSegSize)
		c.Persist(seg1, ccehSegSize)
	}

	size := uint64(1) << ccehInitDepth
	dir := c.AllocLine(ccehDirPtrs + size*8)
	c.Store64(dir.Add(ccehDirDepth), ccehInitDepth)
	for i := uint64(0); i < size; i++ {
		seg := seg0
		if i >= size/2 {
			seg = seg1
		}
		c.StorePtr(dir.Add(ccehDirPtrs+8*i), seg)
	}
	switch {
	case bugs.NoDirArrayFlush:
		// BUG: only the depth word's line is persisted.
		c.Persist(dir.Add(ccehDirDepth), 8)
	case bugs.NoDirEntryFlush:
		// BUG: only the first line of the pointer array is persisted.
		c.Persist(dir, ccehDirPtrs+8)
	default:
		c.Persist(dir, ccehDirPtrs+size*8)
	}

	// Commit store: the root directory pointer.
	c.StorePtr(h.root, dir)
	c.Persist(h.root, 8)
	return h
}

// OpenCCEH binds to a recovered table; it reports ok=false when the root
// pointer never persisted (crash before the constructor's commit).
func OpenCCEH(c *core.Context) (*CCEH, bool) {
	h := &CCEH{c: c, root: c.Root()}
	return h, c.LoadPtr(h.root) != 0
}

// WithContext rebinds the handle to another guest thread's context
// (handles are bound to one thread; see core.Context).
func (h *CCEH) WithContext(c *core.Context) *CCEH {
	return &CCEH{c: c, root: h.root, bugs: h.bugs}
}

// newSegment writes a complete segment image (header and zeroed slots),
// unflushed — flushing is the caller's responsibility.
func (h *CCEH) newSegment(depth, pattern uint64) core.Addr {
	c := h.c
	seg := c.AllocLine(ccehSegSize)
	c.Store64(seg.Add(ccehOffDepth), depth)
	c.Store64(seg.Add(ccehOffPat), pattern)
	for i := uint64(0); i < ccehSlots; i++ {
		c.Store64(seg.Add(ccehOffPairs+i*16), 0)
		c.Store64(seg.Add(ccehOffPairs+i*16+8), 0)
	}
	return seg
}

func ccehHash(key uint64) uint64 {
	x := key * 0x9E3779B97F4A7C15
	x ^= x >> 32
	return x
}

// segment resolves the segment for a key, retrying on directory/segment
// pattern mismatches as the real CCEH lookup does. With segment headers
// lost (CCEH-1), the mismatch never resolves — the infinite loop the paper
// reports.
func (h *CCEH) segment(key uint64) (seg core.Addr, hash uint64) {
	c := h.c
	hash = ccehHash(key)
	for {
		dir := c.LoadPtr(h.root)
		g := c.Load64(dir.Add(ccehDirDepth))
		idx := hash >> (64 - g)
		seg = c.LoadPtr(dir.Add(ccehDirPtrs + 8*idx))
		local := c.Load64(seg.Add(ccehOffDepth))
		pattern := c.Load64(seg.Add(ccehOffPat))
		if local <= g && local > 0 && pattern == idx>>(g-local) {
			return seg, hash
		}
		// Inconsistent view (split in progress): retry from the directory.
	}
}

// Insert stores a pair. The slot protocol is value first (persisted), then
// key as the commit store (persisted). Tombstoned slots are reused; a full
// segment triggers a split.
func (h *CCEH) Insert(key, value uint64) {
	c := h.c
	c.Assert(key != 0 && key != ccehTombstone, "CCEH: reserved key")
	for {
		seg, hash := h.segment(key)
		slotBase := seg.Add(ccehOffPairs)
		start := hash % ccehSlots
		var target core.Addr
	scan:
		for probe := uint64(0); probe < ccehSlots; probe++ {
			slot := slotBase.Add(((start + probe) % ccehSlots) * 16)
			switch k := c.Load64(slot); k {
			case key:
				c.Store64(slot.Add(8), value)
				c.Persist(slot.Add(8), 8)
				return
			case ccehTombstone:
				if target == 0 {
					target = slot
				}
			case 0:
				if target == 0 {
					target = slot
				}
				break scan // the key cannot exist past an empty slot
			}
		}
		if target != 0 {
			c.Store64(target.Add(8), value)
			c.Persist(target.Add(8), 8)
			c.Store64(target, key) // commit store
			c.Persist(target, 8)
			return
		}
		h.split(seg)
	}
}

// split doubles a full segment into two rehashed copies and installs a new
// directory with the redirected entries. The directory swap is a single
// commit store on the root pointer, so a crash anywhere leaves either the
// complete old view or the complete new view — the old segment keeps its
// pairs and the old directory is never modified.
func (h *CCEH) split(seg core.Addr) {
	c := h.c
	dir := c.LoadPtr(h.root)
	g := c.Load64(dir.Add(ccehDirDepth))
	local := c.Load64(seg.Add(ccehOffDepth))
	pattern := c.Load64(seg.Add(ccehOffPat))
	if local == g {
		h.doubleDirectory(dir, g)
		// Re-resolve against the doubled directory.
		dir = c.LoadPtr(h.root)
		g = c.Load64(dir.Add(ccehDirDepth))
	}

	newDepth := local + 1
	s0 := h.newSegment(newDepth, pattern<<1)
	s1 := h.newSegment(newDepth, pattern<<1|1)
	for i := uint64(0); i < ccehSlots; i++ {
		slot := seg.Add(ccehOffPairs + i*16)
		k := c.Load64(slot)
		if k == 0 || k == ccehTombstone {
			continue
		}
		v := c.Load64(slot.Add(8))
		hash := ccehHash(k)
		target := s0
		if hash>>(64-newDepth)&1 == 1 {
			target = s1
		}
		tslot := hash % ccehSlots
		for p := uint64(0); ; p++ {
			c.Assert(p < ccehSlots, "CCEH split: rehashed segment overflow")
			sl := target.Add(ccehOffPairs + (tslot+p)%ccehSlots*16)
			if c.Load64(sl) == 0 {
				c.Store64(sl.Add(8), v)
				c.Store64(sl, k)
				break
			}
		}
	}
	c.Persist(s0, ccehSegSize)
	c.Persist(s1, ccehSegSize)

	// Build the redirected directory and swap it in with one commit store.
	size := uint64(1) << g
	nd := c.AllocLine(ccehDirPtrs + size*8)
	c.Store64(nd.Add(ccehDirDepth), g)
	span := uint64(1) << (g - local)
	first := pattern << (g - local)
	for idx := uint64(0); idx < size; idx++ {
		target := c.LoadPtr(dir.Add(ccehDirPtrs + 8*idx))
		if idx >= first && idx < first+span {
			target = s0
			if idx>>(g-newDepth)&1 == 1 {
				target = s1
			}
		}
		c.StorePtr(nd.Add(ccehDirPtrs+8*idx), target)
	}
	c.Persist(nd, ccehDirPtrs+size*8)
	c.StorePtr(h.root, nd) // commit store
	c.Persist(h.root, 8)
}

// doubleDirectory installs a directory of twice the size; the old directory
// stays valid until the root pointer commit.
func (h *CCEH) doubleDirectory(dir core.Addr, g uint64) {
	c := h.c
	size := uint64(1) << g
	nd := c.AllocLine(ccehDirPtrs + 2*size*8)
	c.Store64(nd.Add(ccehDirDepth), g+1)
	for i := uint64(0); i < size; i++ {
		seg := c.LoadPtr(dir.Add(ccehDirPtrs + 8*i))
		c.StorePtr(nd.Add(ccehDirPtrs+16*i), seg)
		c.StorePtr(nd.Add(ccehDirPtrs+16*i+8), seg)
	}
	c.Persist(nd, ccehDirPtrs+2*size*8)
	c.StorePtr(h.root, nd) // commit store
	c.Persist(h.root, 8)
}

// Delete removes a key; clearing the key slot is the commit store (the
// value slot is left stale, invisible behind the zero key).
func (h *CCEH) Delete(key uint64) bool {
	c := h.c
	seg, hash := h.segment(key)
	slotBase := seg.Add(ccehOffPairs)
	start := hash % ccehSlots
	for probe := uint64(0); probe < ccehSlots; probe++ {
		slot := slotBase.Add(((start + probe) % ccehSlots) * 16)
		k := c.Load64(slot)
		if k == key {
			c.Store64(slot, ccehTombstone) // commit store
			c.Persist(slot, 8)
			return true
		}
		if k == 0 {
			return false
		}
	}
	return false
}

// Lookup returns the value stored for key.
func (h *CCEH) Lookup(key uint64) (uint64, bool) {
	c := h.c
	seg, hash := h.segment(key)
	slotBase := seg.Add(ccehOffPairs)
	start := hash % ccehSlots
	for probe := uint64(0); probe < ccehSlots; probe++ {
		slot := slotBase.Add(((start + probe) % ccehSlots) * 16)
		k := c.Load64(slot)
		if k == key {
			return c.Load64(slot.Add(8)), true
		}
		if k == 0 {
			return 0, false
		}
		// Tombstones and other keys: keep probing.
	}
	return 0, false
}

// Check validates the directory and every reachable segment: patterns match
// directory indices and committed keys carry their committed values.
func (h *CCEH) Check(valueOf func(uint64) uint64) int {
	c := h.c
	dir := c.LoadPtr(h.root)
	if dir == 0 {
		return 0
	}
	g := c.Load64(dir.Add(ccehDirDepth))
	c.Assert(g >= 1 && g <= 20, "CCEH check: global depth %d corrupt", g)
	seen := make(map[core.Addr]bool)
	total := 0
	for idx := uint64(0); idx < 1<<g; idx++ {
		seg := c.LoadPtr(dir.Add(ccehDirPtrs + 8*idx))
		local := c.Load64(seg.Add(ccehOffDepth))
		pattern := c.Load64(seg.Add(ccehOffPat))
		c.Assert(local >= 1 && local <= g, "CCEH check: segment %v local depth %d", seg, local)
		c.Assert(pattern == idx>>(g-local), "CCEH check: segment %v pattern %d at index %d",
			seg, pattern, idx)
		if seen[seg] {
			continue
		}
		seen[seg] = true
		for i := uint64(0); i < ccehSlots; i++ {
			slot := seg.Add(ccehOffPairs + i*16)
			k := c.Load64(slot)
			if k == 0 || k == ccehTombstone {
				continue
			}
			v := c.Load64(slot.Add(8))
			c.Assert(v == valueOf(k), "CCEH check: key %d has value %d", k, v)
			total++
		}
	}
	return total
}
