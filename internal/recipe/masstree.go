package recipe

import "jaaru/internal/core"

// P-Masstree analog: a B+tree whose structure modifications are
// copy-on-write — an insert builds new versions of every node on the
// root-to-leaf path (persisted before linking) and commits with a single
// root-pointer store, so the old tree stays intact across a crash.
//
// The paper's P-MassTree-1 bug (Figure 13) is "Flushed referenced object
// instead of pointer": the code persists the node an entry refers to
// instead of the node holding the new entry, so the freshly copied internal
// node recovers as zeroes and descent dereferences a null child — the
// illegal memory access of Figure 15.

const (
	mtTypeLeaf     = 1
	mtTypeInternal = 2

	mtSlots    = 8
	mtNodeSize = 160

	mtOffType  = 0
	mtOffCount = 8
	mtOffKeys  = 16             // 8 × 8
	mtOffVals  = 16 + mtSlots*8 // leaf values
	mtOffKids  = 16 + mtSlots*8 // internal children[0..count] (count+1 used)
)

// MasstreeBugs selects the seeded P-Masstree bugs.
type MasstreeBugs struct {
	// FlushObjectNotPointer persists the referenced child instead of the
	// freshly built internal node that points to it (P-MassTree-1).
	FlushObjectNotPointer bool
}

// Masstree is a handle to the tree; the root pointer lives at the pool
// root.
type Masstree struct {
	c    *core.Context
	meta core.Addr
	bugs MasstreeBugs
}

// CreateMasstree builds an empty tree (a zero-count leaf).
func CreateMasstree(c *core.Context, bugs MasstreeBugs) *Masstree {
	t := &Masstree{c: c, meta: c.Root(), bugs: bugs}
	leaf := newMTNode(c)
	c.Store64(leaf.Add(mtOffType), mtTypeLeaf)
	c.Persist(leaf, mtNodeSize)
	c.StorePtr(t.meta, leaf) // commit store
	c.Persist(t.meta, 8)
	return t
}

// OpenMasstree binds to a recovered tree.
func OpenMasstree(c *core.Context, bugs MasstreeBugs) (*Masstree, bool) {
	t := &Masstree{c: c, meta: c.Root(), bugs: bugs}
	return t, c.LoadPtr(t.meta) != 0
}

// WithContext rebinds the handle to another guest thread's context
// (handles are bound to one thread; see core.Context).
func (t *Masstree) WithContext(c *core.Context) *Masstree {
	return &Masstree{c: c, meta: t.meta, bugs: t.bugs}
}

// newMTNode allocates a node and writes its complete (zero) image.
func newMTNode(c *core.Context) core.Addr {
	n := c.AllocLine(mtNodeSize)
	for w := uint64(0); w < mtNodeSize/8; w++ {
		c.Store64(n.Add(8*w), 0)
	}
	return n
}

func (t *Masstree) typeOf(n core.Addr) uint64 { return t.c.Load64(n.Add(mtOffType)) }
func (t *Masstree) count(n core.Addr) uint64  { return t.c.Load64(n.Add(mtOffCount)) }
func (t *Masstree) key(n core.Addr, i uint64) uint64 {
	return t.c.Load64(n.Add(mtOffKeys + 8*i))
}

// persistNode persists a freshly built node. With the seeded bug, internal
// nodes persist the child they reference instead of themselves.
func (t *Masstree) persistNode(n core.Addr, referenced core.Addr) {
	c := t.c
	if t.bugs.FlushObjectNotPointer && referenced != 0 {
		// BUG: flushes the referenced object instead of the node holding
		// the pointer (redundantly — the child is already persistent).
		c.Persist(referenced, mtNodeSize)
		return
	}
	c.Persist(n, mtNodeSize)
}

// cowResult carries the replacement node(s) for one level.
type cowResult struct {
	left     core.Addr
	splitKey uint64
	right    core.Addr // 0 when no split
}

// Insert stores a pair: copy-on-write down the path, one root commit.
func (t *Masstree) Insert(key, value uint64) {
	c := t.c
	c.Assert(key != 0, "P-Masstree: key 0 is reserved")
	root := c.LoadPtr(t.meta)
	res := t.cowInsert(root, key, value)
	newRoot := res.left
	if res.right != 0 {
		nr := newMTNode(c)
		c.Store64(nr.Add(mtOffType), mtTypeInternal)
		c.Store64(nr.Add(mtOffCount), 1)
		c.Store64(nr.Add(mtOffKeys), res.splitKey)
		c.StorePtr(nr.Add(mtOffKids), res.left)
		c.StorePtr(nr.Add(mtOffKids+8), res.right)
		t.persistNode(nr, res.left)
		newRoot = nr
	}
	c.StorePtr(t.meta, newRoot) // commit store
	c.Persist(t.meta, 8)
}

func (t *Masstree) cowInsert(n core.Addr, key, value uint64) cowResult {
	c := t.c
	if t.typeOf(n) == mtTypeLeaf {
		return t.cowLeafInsert(n, key, value)
	}

	// Internal: find the child, recurse, then build the copied node.
	cnt := t.count(n)
	idx := cnt
	for i := uint64(0); i < cnt; i++ {
		if key < t.key(n, i) {
			idx = i
			break
		}
	}
	child := c.LoadPtr(n.Add(mtOffKids + 8*idx))
	res := t.cowInsert(child, key, value)

	// Rebuild the separator/child lists with the replacement(s).
	var keys []uint64
	var kids []core.Addr
	for i := uint64(0); i <= cnt; i++ {
		if i < cnt {
			keys = append(keys, t.key(n, i))
		}
		kids = append(kids, c.LoadPtr(n.Add(mtOffKids+8*i)))
	}
	kids[idx] = res.left
	if res.right != 0 {
		keys = append(keys[:idx], append([]uint64{res.splitKey}, keys[idx:]...)...)
		kids = append(kids[:idx+1], append([]core.Addr{res.right}, kids[idx+1:]...)...)
	}

	if uint64(len(keys)) <= mtSlots-1 {
		nn := t.buildInternal(keys, kids, res.left)
		return cowResult{left: nn}
	}
	// Split the internal node: the middle separator moves up.
	mid := len(keys) / 2
	sep := keys[mid]
	left := t.buildInternal(keys[:mid], kids[:mid+1], res.left)
	right := t.buildInternal(keys[mid+1:], kids[mid+1:], res.left)
	return cowResult{left: left, splitKey: sep, right: right}
}

func (t *Masstree) buildInternal(keys []uint64, kids []core.Addr, referenced core.Addr) core.Addr {
	c := t.c
	n := newMTNode(c)
	c.Store64(n.Add(mtOffType), mtTypeInternal)
	c.Store64(n.Add(mtOffCount), uint64(len(keys)))
	for i, k := range keys {
		c.Store64(n.Add(mtOffKeys+8*uint64(i)), k)
	}
	for i, kid := range kids {
		c.StorePtr(n.Add(mtOffKids+8*uint64(i)), kid)
	}
	t.persistNode(n, referenced)
	return n
}

func (t *Masstree) cowLeafInsert(n core.Addr, key, value uint64) cowResult {
	c := t.c
	cnt := t.count(n)
	var keys, vals []uint64
	replaced := false
	for i := uint64(0); i < cnt; i++ {
		k := t.key(n, i)
		v := c.Load64(n.Add(mtOffVals + 8*i))
		if k == key {
			v = value
			replaced = true
		}
		if k > key && !replaced {
			keys = append(keys, key)
			vals = append(vals, value)
			replaced = true
		}
		keys = append(keys, k)
		vals = append(vals, v)
	}
	if !replaced {
		keys = append(keys, key)
		vals = append(vals, value)
	}

	if uint64(len(keys)) <= mtSlots {
		return cowResult{left: t.buildLeaf(keys, vals)}
	}
	mid := len(keys) / 2
	left := t.buildLeaf(keys[:mid], vals[:mid])
	right := t.buildLeaf(keys[mid:], vals[mid:])
	return cowResult{left: left, splitKey: keys[mid], right: right}
}

func (t *Masstree) buildLeaf(keys, vals []uint64) core.Addr {
	c := t.c
	n := newMTNode(c)
	c.Store64(n.Add(mtOffType), mtTypeLeaf)
	c.Store64(n.Add(mtOffCount), uint64(len(keys)))
	for i := range keys {
		c.Store64(n.Add(mtOffKeys+8*uint64(i)), keys[i])
		c.Store64(n.Add(mtOffVals+8*uint64(i)), vals[i])
	}
	c.Persist(n, mtNodeSize)
	return n
}

// Lookup returns the value stored for key.
func (t *Masstree) Lookup(key uint64) (uint64, bool) {
	c := t.c
	n := c.LoadPtr(t.meta)
	for {
		if t.typeOf(n) == mtTypeLeaf {
			cnt := t.count(n)
			for i := uint64(0); i < cnt && i < mtSlots; i++ {
				if t.key(n, i) == key {
					return c.Load64(n.Add(mtOffVals + 8*i)), true
				}
			}
			return 0, false
		}
		cnt := t.count(n)
		idx := cnt
		for i := uint64(0); i < cnt && i < mtSlots; i++ {
			if key < t.key(n, i) {
				idx = i
				break
			}
		}
		n = c.LoadPtr(n.Add(mtOffKids + 8*idx))
	}
}

// Scan calls fn for every pair with lo ≤ key < hi, in key order.
func (t *Masstree) Scan(lo, hi uint64, fn func(k, v uint64)) {
	root := t.c.LoadPtr(t.meta)
	if root != 0 {
		t.scanNode(root, lo, hi, fn)
	}
}

func (t *Masstree) scanNode(n core.Addr, lo, hi uint64, fn func(k, v uint64)) {
	c := t.c
	cnt := t.count(n)
	if t.typeOf(n) == mtTypeLeaf {
		for i := uint64(0); i < cnt && i < mtSlots; i++ {
			k := t.key(n, i)
			if k >= lo && k < hi {
				fn(k, c.Load64(n.Add(mtOffVals+8*i)))
			}
		}
		return
	}
	for i := uint64(0); i <= cnt; i++ {
		// Child i covers [keys[i-1], keys[i]); prune disjoint subtrees.
		if i > 0 && t.key(n, i-1) >= hi {
			return
		}
		if i < cnt && t.key(n, i) <= lo {
			continue
		}
		t.scanNode(c.LoadPtr(n.Add(mtOffKids+8*i)), lo, hi, fn)
	}
}

// Check walks the tree validating sortedness and values, returning the key
// count.
func (t *Masstree) Check(valueOf func(uint64) uint64) int {
	root := t.c.LoadPtr(t.meta)
	if root == 0 {
		return 0
	}
	return t.checkNode(root, 0, ^uint64(0), 0, valueOf)
}

func (t *Masstree) checkNode(n core.Addr, lo, hi uint64, depth int, valueOf func(uint64) uint64) int {
	c := t.c
	c.Assert(depth < 32, "P-Masstree check: depth exceeds 32 (cycle?)")
	typ := t.typeOf(n)
	cnt := t.count(n)
	c.Assert(typ == mtTypeLeaf || typ == mtTypeInternal,
		"P-Masstree check: node %v has type %d", n, typ)
	if typ == mtTypeLeaf {
		c.Assert(cnt <= mtSlots, "P-Masstree check: leaf count %d", cnt)
		total := 0
		prev := lo
		for i := uint64(0); i < cnt; i++ {
			k := t.key(n, i)
			c.Assert(k >= prev && k < hi, "P-Masstree check: leaf key %d out of order", k)
			prev = k + 1
			v := c.Load64(n.Add(mtOffVals + 8*i))
			c.Assert(v == valueOf(k), "P-Masstree check: key %d has value %d", k, v)
			total++
		}
		return total
	}
	c.Assert(cnt >= 1 && cnt < mtSlots, "P-Masstree check: internal count %d", cnt)
	total := 0
	for i := uint64(0); i <= cnt; i++ {
		clo, chi := lo, hi
		if i > 0 {
			clo = t.key(n, i-1)
		}
		if i < cnt {
			chi = t.key(n, i)
		}
		kid := t.c.LoadPtr(n.Add(mtOffKids + 8*i))
		total += t.checkNode(kid, clo, chi, depth+1, valueOf)
	}
	return total
}
