package recipe

import (
	"fmt"
	"testing"

	"jaaru/internal/core"
)

// ---- Direct (no-failure) operational tests ---------------------------------

func direct(t *testing.T, name string, fn func(*core.Context)) {
	t.Helper()
	res := core.Execute(name, fn, core.Options{})
	if res.Buggy() {
		t.Fatalf("%s: %v", name, res.Bugs[0])
	}
}

func TestCCEHOperations(t *testing.T) {
	direct(t, "cceh-ops", func(c *core.Context) {
		h := CreateCCEH(c, CCEHBugs{})
		for i := uint64(1); i <= 80; i++ {
			h.Insert(i, i*2)
		}
		for i := uint64(1); i <= 80; i++ {
			v, ok := h.Lookup(i)
			if !ok || v != i*2 {
				t.Fatalf("Lookup(%d) = %d, %v", i, v, ok)
			}
		}
		if _, ok := h.Lookup(999); ok {
			t.Error("found a key never inserted")
		}
		h.Insert(5, 123)
		if v, _ := h.Lookup(5); v != 123 {
			t.Error("update lost")
		}
		if n := h.Check(func(k uint64) uint64 {
			if k == 5 {
				return 123
			}
			return k * 2
		}); n != 80 {
			t.Errorf("Check counted %d keys, want 80", n)
		}
	})
}

func TestFastFairOperations(t *testing.T) {
	direct(t, "fastfair-ops", func(c *core.Context) {
		tr := CreateFastFair(c, FFBugs{})
		for i := uint64(1); i <= 60; i++ {
			k := i*31%127 + 1
			tr.Insert(k, k+7)
		}
		for i := uint64(1); i <= 60; i++ {
			k := i*31%127 + 1
			v, ok := tr.Lookup(k)
			if !ok || v != k+7 {
				t.Fatalf("Lookup(%d) = %d, %v", k, v, ok)
			}
		}
		if _, ok := tr.Lookup(999); ok {
			t.Error("found a key never inserted")
		}
		if n := tr.Check(func(k uint64) uint64 { return k + 7 }); n != 60 {
			t.Errorf("Check counted %d keys, want 60", n)
		}
	})
}

func TestARTOperations(t *testing.T) {
	direct(t, "art-ops", func(c *core.Context) {
		tr := CreateART(c, ARTBugs{})
		for i := uint64(1); i <= 50; i++ {
			k := i * 0x1111
			tr.Insert(k, k^0xff)
		}
		for i := uint64(1); i <= 50; i++ {
			k := i * 0x1111
			v, ok := tr.Lookup(k)
			if !ok || v != k^0xff {
				t.Fatalf("Lookup(%#x) = %d, %v", k, v, ok)
			}
		}
		if _, ok := tr.Lookup(0x999999); ok {
			t.Error("found a key never inserted")
		}
		if n := tr.Check(func(k uint64) uint64 { return k ^ 0xff }); n != 50 {
			t.Errorf("Check counted %d leaves, want 50", n)
		}
	})
}

func TestBwTreeOperations(t *testing.T) {
	direct(t, "bwtree-ops", func(c *core.Context) {
		tr := CreateBwTree(c, BwTreeBugs{})
		for i := uint64(1); i <= 14; i++ {
			tr.Insert(i, i*3)
		}
		for i := uint64(1); i <= 14; i++ {
			v, ok := tr.Lookup(i)
			if !ok || v != i*3 {
				t.Fatalf("Lookup(%d) = %d, %v", i, v, ok)
			}
		}
		tr.Insert(7, 99)
		if v, _ := tr.Lookup(7); v != 99 {
			t.Error("update lost")
		}
		if n := tr.Check(func(k uint64) uint64 {
			if k == 7 {
				return 99
			}
			return k * 3
		}); n != 14 {
			t.Errorf("Check counted %d keys, want 14", n)
		}
	})
}

func TestCLHTOperations(t *testing.T) {
	direct(t, "clht-ops", func(c *core.Context) {
		h := CreateCLHT(c, 4, CLHTBugs{})
		for i := uint64(1); i <= 30; i++ {
			h.Insert(i, i+100)
		}
		for i := uint64(1); i <= 30; i++ {
			v, ok := h.Lookup(i)
			if !ok || v != i+100 {
				t.Fatalf("Lookup(%d) = %d, %v", i, v, ok)
			}
		}
		if _, ok := h.Lookup(999); ok {
			t.Error("found a key never inserted")
		}
		if n := h.Check(func(k uint64) uint64 { return k + 100 }); n != 30 {
			t.Errorf("Check counted %d keys, want 30", n)
		}
	})
}

func TestMasstreeOperations(t *testing.T) {
	direct(t, "masstree-ops", func(c *core.Context) {
		tr := CreateMasstree(c, MasstreeBugs{})
		for i := uint64(1); i <= 40; i++ {
			k := i*53%101 + 1
			tr.Insert(k, k*9)
		}
		for i := uint64(1); i <= 40; i++ {
			k := i*53%101 + 1
			v, ok := tr.Lookup(k)
			if !ok || v != k*9 {
				t.Fatalf("Lookup(%d) = %d, %v", k, v, ok)
			}
		}
		if _, ok := tr.Lookup(999); ok {
			t.Error("found a key never inserted")
		}
		if n := tr.Check(func(k uint64) uint64 { return k * 9 }); n != 40 {
			t.Errorf("Check counted %d keys, want 40", n)
		}
	})
}

// ---- Crash consistency: fixed variants explore clean ------------------------

func TestRECIPEFixedVariantsExploreClean(t *testing.T) {
	for _, prog := range FixedPrograms(5) {
		prog := prog
		t.Run(prog.Name, func(t *testing.T) {
			t.Parallel()
			res := core.New(prog, core.Options{}).Run()
			if res.Buggy() {
				t.Fatalf("fixed variant buggy: %v\nchoices: %s\ntrace: %v",
					res.Bugs[0], res.Bugs[0].Choices, res.Bugs[0].Trace)
			}
			if !res.Complete {
				t.Fatal("exploration incomplete")
			}
		})
	}
}

// The larger Figure 14 workloads must also explore clean (this is the
// precondition for the performance table: "Providing performance results
// for a model checker requires first fixing the bugs").
func TestRECIPEPerfWorkloadsExploreClean(t *testing.T) {
	if testing.Short() {
		t.Skip("perf workloads take seconds each")
	}
	for _, prog := range PerfWorkloads(1) {
		prog := prog
		t.Run(prog.Name, func(t *testing.T) {
			t.Parallel()
			res := core.New(prog, core.Options{}).Run()
			if res.Buggy() {
				t.Fatalf("perf workload buggy: %v\nchoices: %s",
					res.Bugs[0], res.Bugs[0].Choices)
			}
			if res.FailurePoints < 5 {
				t.Errorf("suspiciously few failure points: %d", res.FailurePoints)
			}
		})
	}
}

// ---- Crash consistency: the 18 seeded bugs are found (Figure 13) ------------

func TestRECIPEBugs(t *testing.T) {
	for _, bc := range BugCases() {
		bc := bc
		t.Run(fmt.Sprintf("%02d-%s", bc.ID, bc.Benchmark), func(t *testing.T) {
			t.Parallel()
			res := core.New(bc.Program(), core.Options{
				FlagMultiRF:    true,
				MaxSteps:       20_000, // tighten the infinite-loop detector
				StopAtFirstBug: true,   // detection is the claim; loop scenarios are costly
			}).Run()
			if !res.Buggy() {
				t.Fatalf("bug %d (%s: %s) not detected", bc.ID, bc.Benchmark, bc.Type)
			}
			ok := false
			for _, b := range res.Bugs {
				for _, want := range bc.Expect {
					if b.Type == want {
						ok = true
					}
				}
			}
			if !ok {
				t.Errorf("bug %d: no manifestation of expected type %v in %v",
					bc.ID, bc.Expect, res.Bugs)
			}
		})
	}
}

func TestRECIPERegistryShape(t *testing.T) {
	cases := BugCases()
	if len(cases) != 18 {
		t.Fatalf("Figure 13 has 18 bugs, registry has %d", len(cases))
	}
	newCount := 0
	perBench := map[string]int{}
	for _, bc := range cases {
		if bc.New {
			newCount++
		}
		perBench[bc.Benchmark]++
	}
	if newCount != 12 {
		t.Errorf("Figure 13 stars 12 new bugs, registry stars %d", newCount)
	}
	want := map[string]int{
		"CCEH": 3, "FAST_FAIR": 3, "P-ART": 3, "P-BwTree": 5, "P-CLHT": 3, "P-MassTree": 1,
	}
	for b, n := range want {
		if perBench[b] != n {
			t.Errorf("%s: %d bugs, want %d", b, perBench[b], n)
		}
	}
}
