// Package profiling is the shared pprof plumbing of the command-line tools:
// a -cpuprofile/-memprofile pair that any perf PR can point at a workload
// without ad-hoc patches.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and returns a stop
// function that ends the CPU profile and writes an allocation profile to
// memPath (if non-empty). Errors are fatal: a requested profile that cannot
// be produced would silently invalidate a measurement session.
func Start(cpuPath, memPath string) (stop func()) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fatal("creating %s: %v", cpuPath, err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal("starting CPU profile: %v", err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fatal("writing %s: %v", cpuPath, err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fatal("creating %s: %v", memPath, err)
			}
			runtime.GC() // materialize the final live set before the heap dump
			err = pprof.Lookup("allocs").WriteTo(f, 0)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fatal("writing %s: %v", memPath, err)
			}
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "profiling: "+format+"\n", args...)
	os.Exit(2)
}
