package pmalloc

import (
	"testing"
	"testing/quick"

	"jaaru/internal/pmem"
)

func TestAllocBasic(t *testing.T) {
	a := New(0x10000, 4096)
	p1, ok := a.Alloc(16, 8)
	if !ok || p1 != 0x10000 {
		t.Fatalf("first alloc = %v, %v", p1, ok)
	}
	p2, ok := a.Alloc(16, 8)
	if !ok || p2 != 0x10010 {
		t.Fatalf("second alloc = %v, %v", p2, ok)
	}
	if !a.InBounds(p1, 32) {
		t.Error("allocated range reported out of bounds")
	}
	if a.InBounds(p2, 17) {
		t.Error("range past high water reported in bounds")
	}
	if a.InBounds(0x0ffff, 1) {
		t.Error("range below base reported in bounds")
	}
}

func TestAllocAlignment(t *testing.T) {
	a := New(0x10000, 4096)
	if _, ok := a.Alloc(3, 0); !ok {
		t.Fatal("alloc failed")
	}
	p, ok := a.Alloc(8, 64)
	if !ok || p.LineOffset() != 0 {
		t.Fatalf("line-aligned alloc = %v", p)
	}
}

func TestAllocZeroSize(t *testing.T) {
	a := New(0x10000, 4096)
	p1, _ := a.Alloc(0, 1)
	p2, _ := a.Alloc(0, 1)
	if p1 == p2 {
		t.Error("zero-size allocations aliased")
	}
}

func TestAllocExhaustion(t *testing.T) {
	a := New(0x10000, 64)
	if _, ok := a.Alloc(64, 1); !ok {
		t.Fatal("exact-fit alloc failed")
	}
	if _, ok := a.Alloc(1, 1); ok {
		t.Fatal("alloc past limit succeeded")
	}
	a.Reset()
	if _, ok := a.Alloc(64, 1); !ok {
		t.Fatal("alloc after reset failed")
	}
}

func TestAllocDeterministic(t *testing.T) {
	run := func() []pmem.Addr {
		a := New(0x10000, 1<<20)
		var out []pmem.Addr
		for i := uint64(1); i < 50; i++ {
			p, _ := a.Alloc(i*3%40+1, 1<<(i%7))
			out = append(out, p)
		}
		return out
	}
	r1, r2 := run(), run()
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("allocation %d differs: %v vs %v", i, r1[i], r2[i])
		}
	}
}

func TestAllocProperty(t *testing.T) {
	// Allocations never overlap and are always aligned.
	f := func(sizes []uint16, alignBits []uint8) bool {
		a := New(0x10000, 1<<24)
		type rng struct{ lo, hi pmem.Addr }
		var prev []rng
		for i, sz := range sizes {
			if i >= len(alignBits) {
				break
			}
			align := uint64(1) << (alignBits[i] % 8)
			p, ok := a.Alloc(uint64(sz), align)
			if !ok {
				return true // pool exhausted is acceptable
			}
			if uint64(p)%align != 0 {
				return false
			}
			size := uint64(sz)
			if size == 0 {
				size = 1
			}
			for _, r := range prev {
				if p < r.hi && p.Add(size) > r.lo {
					return false
				}
			}
			prev = append(prev, rng{p, p.Add(size)})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGrowAndAccessors(t *testing.T) {
	a := New(0x10000, 4096)
	if a.Base() != 0x10000 || a.Limit() != 0x11000 {
		t.Fatalf("Base/Limit = %v/%v", a.Base(), a.Limit())
	}
	a.Grow(0x10100)
	if a.HighWater() != 0x10100 {
		t.Errorf("HighWater after Grow = %v", a.HighWater())
	}
	a.Grow(0x10080) // must not shrink
	if a.HighWater() != 0x10100 {
		t.Errorf("Grow shrank the high water to %v", a.HighWater())
	}
	a.Grow(0x20000) // clamped to the limit
	if a.HighWater() != a.Limit() {
		t.Errorf("Grow past limit = %v", a.HighWater())
	}
	if p, ok := a.Alloc(1, 1); ok {
		t.Errorf("allocation after exhausting Grow succeeded at %v", p)
	}
}
