// Package pmalloc provides the scenario-level persistent-memory allocator
// used by the model checker's guest API. It is a monotonic bump allocator:
// addresses handed out survive simulated power failures (the pool region is
// the same across the executions of a failure scenario) and are never reused
// within a scenario, so post-failure allocations cannot alias pre-failure
// data. The checker resets the allocator between scenarios.
//
// Allocations are zero-initialized, matching the semantics of a freshly
// created, zeroed persistent-memory pool. Persistent allocators with
// recoverable metadata (such as the mini-PMDK heap) are built on top of this
// one inside guest programs, where their metadata is itself subject to
// crash-consistency checking.
package pmalloc

import "jaaru/internal/pmem"

// Allocator is a monotonic bump allocator over [base, base+size).
type Allocator struct {
	base  pmem.Addr
	next  pmem.Addr
	limit pmem.Addr
}

// New returns an allocator over the pool region [base, base+size).
func New(base pmem.Addr, size uint64) *Allocator {
	return &Allocator{base: base, next: base, limit: base.Add(size)}
}

// Alloc reserves size bytes aligned to align (which must be a power of two;
// 0 or 1 mean byte alignment). It reports failure when the pool is
// exhausted. A zero size allocates one byte so that every allocation has a
// distinct address.
func (a *Allocator) Alloc(size, align uint64) (pmem.Addr, bool) {
	if size == 0 {
		size = 1
	}
	if align > 1 {
		mask := pmem.Addr(align - 1)
		a.next = (a.next + mask) &^ mask
	}
	if a.next < a.base || a.next.Add(size) > a.limit || a.next.Add(size) < a.next {
		return 0, false
	}
	addr := a.next
	a.next = a.next.Add(size)
	return addr, true
}

// Reset returns the allocator to its initial state (a fresh scenario).
func (a *Allocator) Reset() { a.next = a.base }

// Grow raises the high-water mark to at least `to` (clamped to the pool
// limit), marking [base, to) allocated. Used to replay an allocation state
// captured from another run.
func (a *Allocator) Grow(to pmem.Addr) {
	if to > a.limit {
		to = a.limit
	}
	if to > a.next {
		a.next = to
	}
}

// Truncate lowers the high-water mark back to `to` (which must lie within
// [base, limit]), releasing everything allocated beyond it. Used by the
// snapshot engine to rewind the allocator to a captured pre-failure state.
func (a *Allocator) Truncate(to pmem.Addr) {
	if to >= a.base && to <= a.limit {
		a.next = to
	}
}

// Base returns the start of the pool region.
func (a *Allocator) Base() pmem.Addr { return a.base }

// Limit returns the exclusive end of the pool region.
func (a *Allocator) Limit() pmem.Addr { return a.limit }

// HighWater returns the exclusive end of the allocated region.
func (a *Allocator) HighWater() pmem.Addr { return a.next }

// InBounds reports whether [addr, addr+size) lies entirely within allocated
// memory.
func (a *Allocator) InBounds(addr pmem.Addr, size uint64) bool {
	return addr >= a.base && addr.Add(size) <= a.next && addr.Add(size) >= addr
}
