package pmdk

import (
	"jaaru/internal/core"
)

// This file defines the checkable workload programs for each PMDK example
// structure and the registry of seeded bugs reproducing Figures 12 and 16.

// workloadKeys is the insertion order used by all PMDK workloads: scrambled
// so trees split and rotate.
var workloadKeys = []uint64{50, 20, 80, 10, 90, 30, 70, 40, 60}

func keysN(n int) []uint64 {
	if n > len(workloadKeys) {
		n = len(workloadKeys)
	}
	return workloadKeys[:n]
}

const workloadHeap = 64 << 10

// checkPrefix validates the committed-prefix property: sequential
// transactional inserts commit in order, so the recovered key set must be a
// prefix of the insertion order, and the structure's total count must equal
// the prefix length.
func checkPrefix(c *core.Context, keys []uint64, total int,
	lookup func(uint64) (uint64, bool)) {
	prefix := 0
	for i, k := range keys {
		v, ok := lookup(k)
		if !ok {
			break
		}
		c.Assert(v == k*10, "recovered value %d for key %d", v, k)
		prefix = i + 1
	}
	for _, k := range keys[prefix:] {
		_, ok := lookup(k)
		c.Assert(!ok, "key %d present but an earlier insert is missing", k)
	}
	c.Assert(total == prefix, "structure holds %d keys, committed prefix is %d", total, prefix)
}

// BTreeWorkload inserts n keys into a B-tree and validates the committed
// prefix on recovery.
func BTreeWorkload(n int, create CreateBugs, bugs BTreeBugs) core.Program {
	keys := keysN(n)
	return core.Program{
		Name: "pmdk/btree",
		Run: func(c *core.Context) {
			p := Create(c, workloadHeap, create)
			t := NewBTree(p, bugs)
			for _, k := range keys {
				t.Insert(k, k*10)
			}
		},
		Recover: func(c *core.Context) {
			p, ok := Open(c)
			if !ok {
				return
			}
			p.TxRecover()
			t := NewBTree(p, BTreeBugs{})
			checkPrefix(c, keys, t.Check(), t.Lookup)
		},
	}
}

// CTreeWorkload inserts n keys into a crit-bit tree and validates the
// committed prefix on recovery.
func CTreeWorkload(n int, bugs CTreeBugs) core.Program {
	keys := keysN(n)
	return core.Program{
		Name: "pmdk/ctree",
		Run: func(c *core.Context) {
			p := Create(c, workloadHeap, CreateBugs{})
			t := NewCTree(p, bugs)
			for _, k := range keys {
				t.Insert(k, k*10)
			}
		},
		Recover: func(c *core.Context) {
			p, ok := Open(c)
			if !ok {
				return
			}
			p.TxRecover()
			t := NewCTree(p, CTreeBugs{})
			checkPrefix(c, keys, t.Check(), t.Lookup)
		},
	}
}

// RBTreeWorkload inserts n keys into a red-black tree and validates the
// committed prefix on recovery.
func RBTreeWorkload(n int, bugs RBTreeBugs) core.Program {
	return RBTreeWorkloadKeys(keysN(n), bugs)
}

// RBTreeWorkloadKeys is RBTreeWorkload with an explicit insertion order
// (ascending keys force rotations on nearly every insert).
func RBTreeWorkloadKeys(keys []uint64, bugs RBTreeBugs) core.Program {
	return core.Program{
		Name: "pmdk/rbtree",
		Run: func(c *core.Context) {
			p := Create(c, workloadHeap, CreateBugs{})
			t := NewRBTree(p, bugs)
			for _, k := range keys {
				t.Insert(k, k*10)
			}
		},
		Recover: func(c *core.Context) {
			p, ok := Open(c)
			if !ok {
				return
			}
			p.TxRecover()
			t := NewRBTree(p, RBTreeBugs{})
			checkPrefix(c, keys, t.Check(), t.Lookup)
		},
	}
}

// HashmapAtomicWorkload inserts n keys, then on recovery validates the
// chains, inserts one more key and validates again — the post-failure
// insert exposes lost allocator metadata (bug #5).
func HashmapAtomicWorkload(n int, bugs HashmapAtomicBugs) core.Program {
	keys := keysN(n)
	const nBuckets = 8
	const extraKey = 1234
	return core.Program{
		Name: "pmdk/hashmap_atomic",
		Run: func(c *core.Context) {
			p := Create(c, workloadHeap, CreateBugs{})
			h := CreateHashmapAtomic(p, nBuckets, bugs)
			for _, k := range keys {
				h.Insert(k, k*10)
			}
		},
		Recover: func(c *core.Context) {
			p, ok := Open(c)
			if !ok {
				return
			}
			h := OpenHashmapAtomic(p, HashmapAtomicBugs{Heap: bugs.Heap})
			if h.dir() == 0 {
				return // crashed before the directory was committed
			}
			h.Check()
			for _, k := range keys {
				if v, found := h.Lookup(k); found {
					c.Assert(v == k*10, "recovered value %d for key %d", v, k)
				}
			}
			// Continue the workload after recovery.
			h.Insert(extraKey, extraKey*10)
			h.Check()
			v, found := h.Lookup(extraKey)
			c.Assert(found && v == extraKey*10, "post-recovery insert lost")
		},
	}
}

// HashmapTXWorkload inserts n keys transactionally and validates chains and
// the persistent count on recovery.
func HashmapTXWorkload(n int, bugs HashmapTXBugs) core.Program {
	keys := keysN(n)
	const nBuckets = 8
	return core.Program{
		Name: "pmdk/hashmap_tx",
		Run: func(c *core.Context) {
			p := Create(c, workloadHeap, CreateBugs{})
			h := CreateHashmapTX(p, nBuckets, bugs)
			for _, k := range keys {
				h.Insert(k, k*10)
			}
		},
		Recover: func(c *core.Context) {
			p, ok := Open(c)
			if !ok {
				return
			}
			p.TxRecover()
			h := OpenHashmapTX(p, HashmapTXBugs{})
			if p.RootObj() == 0 {
				return
			}
			total := h.Check()
			found := 0
			for _, k := range keys {
				if v, okk := h.Lookup(k); okk {
					c.Assert(v == k*10, "recovered value %d for key %d", v, k)
					found++
				}
			}
			c.Assert(found == total, "lookup found %d of %d chained nodes", found, total)
		},
	}
}

// BugCase is one row of Figure 12 (and the matching row of Figure 16).
type BugCase struct {
	ID        int
	Benchmark string
	// Symptom is the paper's symptom column.
	Symptom string
	// New marks bugs the paper reports as new (starred in Figure 12).
	New bool
	// Program builds the seeded workload.
	Program func() core.Program
	// Expect are the acceptable manifestation types.
	Expect []core.BugType
	// Label is the source-location label expected in at least one bug
	// message (empty = any).
	Label string
}

// BugCases returns the PMDK bug registry reproducing Figure 12.
func BugCases() []BugCase {
	return []BugCase{
		{
			ID: 1, Benchmark: "Btree", New: true,
			Symptom: "Illegal memory access at btree_map.c:89",
			Program: func() core.Program {
				return BTreeWorkload(7, CreateBugs{}, BTreeBugs{NoNodeFlush: true})
			},
			Expect: []core.BugType{core.BugIllegalAccess, core.BugAssertion},
			Label:  "btree_map.c:89",
		},
		{
			ID: 2, Benchmark: "Btree", New: false,
			Symptom: "Failed to open pool error",
			Program: func() core.Program {
				return BTreeWorkload(3, CreateBugs{MisorderedHeader: true}, BTreeBugs{})
			},
			Expect: []core.BugType{core.BugExplicit},
			Label:  "Failed to open pool",
		},
		{
			ID: 3, Benchmark: "Hashmap_atomic", New: true,
			Symptom: "Assertion failure at heap.c:533",
			Program: func() core.Program {
				return HashmapAtomicWorkload(5, HashmapAtomicBugs{Heap: HeapBugs{NoHeaderFlush: true}})
			},
			Expect: []core.BugType{core.BugAssertion},
			Label:  "heap.c:533",
		},
		{
			ID: 4, Benchmark: "CTree", New: true,
			Symptom: "Assertion failure at obj.c:1523",
			Program: func() core.Program {
				return CTreeWorkload(6, CTreeBugs{Tx: TxBugs{CountBeforeEntry: true}})
			},
			Expect: []core.BugType{core.BugAssertion, core.BugIllegalAccess},
			Label:  "obj.c:1523",
		},
		{
			ID: 5, Benchmark: "Hashmap_atomic", New: true,
			Symptom: "Assertion failure at pmalloc.c:270",
			Program: func() core.Program {
				return HashmapAtomicWorkload(5, HashmapAtomicBugs{Heap: HeapBugs{NoBumpFlush: true}})
			},
			Expect: []core.BugType{core.BugAssertion},
			Label:  "pmalloc.c:270",
		},
		{
			ID: 6, Benchmark: "Hashmap_tx", New: true,
			Symptom: "Illegal memory access at obj.c:1528",
			Program: func() core.Program {
				return HashmapTXWorkload(5, HashmapTXBugs{Tx: TxBugs{NoEntryFlush: true}})
			},
			Expect: []core.BugType{core.BugIllegalAccess, core.BugAssertion},
			Label:  "",
		},
		{
			ID: 7, Benchmark: "RBTree", New: true,
			Symptom: "Illegal memory access at rbtree_map.c:137",
			Program: func() core.Program {
				// Ascending keys force a rotation on nearly every insert.
				return RBTreeWorkloadKeys([]uint64{1, 2, 3, 4, 5, 6},
					RBTreeBugs{Tx: TxBugs{SkipAdd: true}})
			},
			Expect: []core.BugType{core.BugAssertion, core.BugIllegalAccess},
			Label:  "rbtree_map.c:137",
		},
	}
}

// FixedPrograms returns the crash-consistent variants of the PMDK example
// structures, which the checker must explore without finding bugs.
func FixedPrograms(n int) []core.Program {
	return []core.Program{
		BTreeWorkload(n, CreateBugs{}, BTreeBugs{}),
		CTreeWorkload(n, CTreeBugs{}),
		RBTreeWorkload(n, RBTreeBugs{}),
		HashmapAtomicWorkload(n, HashmapAtomicBugs{}),
		HashmapTXWorkload(n, HashmapTXBugs{}),
		SkiplistWorkload(n, SkiplistBugs{}),
	}
}
