package pmdk

import (
	"strings"
	"testing"

	"jaaru/internal/core"
)

// ---- Direct (no-failure) operational tests ---------------------------------

func direct(t *testing.T, name string, fn func(*core.Context)) {
	t.Helper()
	res := core.Execute(name, fn, core.Options{})
	if res.Buggy() {
		t.Fatalf("%s: %v", name, res.Bugs[0])
	}
}

func TestPoolCreateOpen(t *testing.T) {
	direct(t, "pool", func(c *core.Context) {
		Create(c, 4096, CreateBugs{})
		p, ok := Open(c)
		if !ok {
			t.Error("freshly created pool failed to open")
		}
		if p.RootObj() != 0 {
			t.Error("fresh pool has a root object")
		}
		p.SetRootObj(42)
		if p.RootObj() != 42 {
			t.Error("root object not set")
		}
	})
}

func TestOpenUncreatedPool(t *testing.T) {
	direct(t, "pool-open-empty", func(c *core.Context) {
		if _, ok := Open(c); ok {
			t.Error("uncreated pool opened")
		}
	})
}

func TestHeapAllocAndCheck(t *testing.T) {
	direct(t, "heap", func(c *core.Context) {
		p := Create(c, 4096, CreateBugs{})
		a := p.PAlloc(32, HeapBugs{})
		b := p.PAlloc(16, HeapBugs{})
		if a == b || b < a {
			t.Errorf("allocations overlap: %v %v", a, b)
		}
		if c.Load64(a) != 0 {
			t.Error("allocation not zeroed")
		}
		if !p.HeapContains(a) || !p.HeapContains(b) {
			t.Error("HeapContains wrong")
		}
		p.HeapCheck()
	})
}

func TestTxCommitAndRollback(t *testing.T) {
	direct(t, "tx", func(c *core.Context) {
		p := Create(c, 4096, CreateBugs{})
		obj := p.PAlloc(16, HeapBugs{})
		c.Store64(obj, 7)
		c.Persist(obj, 8)

		tx := p.TxBegin(TxBugs{})
		tx.Add(obj, 8)
		c.Store64(obj, 9)
		tx.Commit()
		if c.Load64(obj) != 9 {
			t.Error("committed value lost")
		}

		// Simulated abort: add, mutate, then roll back via TxRecover.
		tx = p.TxBegin(TxBugs{})
		tx.Add(obj, 8)
		c.Store64(obj, 11)
		p.TxRecover()
		if got := c.Load64(obj); got != 9 {
			t.Errorf("rollback restored %d, want 9", got)
		}
	})
}

func TestBTreeOperations(t *testing.T) {
	direct(t, "btree-ops", func(c *core.Context) {
		p := Create(c, 256<<10, CreateBugs{})
		tr := NewBTree(p, BTreeBugs{})
		// Insert enough keys to force multi-level splits.
		for i := uint64(1); i <= 40; i++ {
			k := (i * 17) % 41
			tr.Insert(k, k*100)
		}
		for i := uint64(1); i <= 40; i++ {
			k := (i * 17) % 41
			v, ok := tr.Lookup(k)
			if !ok || v != k*100 {
				t.Fatalf("Lookup(%d) = %d, %v", k, v, ok)
			}
		}
		if _, ok := tr.Lookup(999); ok {
			t.Error("found a key never inserted")
		}
		if n := tr.Check(); n != 40 {
			t.Errorf("Check counted %d keys, want 40", n)
		}
		// Update in place.
		tr.Insert(17, 4242)
		if v, _ := tr.Lookup(17); v != 4242 {
			t.Error("update lost")
		}
		if n := tr.Check(); n != 40 {
			t.Errorf("update changed key count to %d", n)
		}
	})
}

func TestCTreeOperations(t *testing.T) {
	direct(t, "ctree-ops", func(c *core.Context) {
		p := Create(c, 256<<10, CreateBugs{})
		tr := NewCTree(p, CTreeBugs{})
		for i := uint64(1); i <= 30; i++ {
			k := (i * 29) % 97
			tr.Insert(k, k+1000)
		}
		for i := uint64(1); i <= 30; i++ {
			k := (i * 29) % 97
			v, ok := tr.Lookup(k)
			if !ok || v != k+1000 {
				t.Fatalf("Lookup(%d) = %d, %v", k, v, ok)
			}
		}
		if _, ok := tr.Lookup(98); ok {
			t.Error("found a key never inserted")
		}
		if n := tr.Check(); n != 30 {
			t.Errorf("Check counted %d leaves, want 30", n)
		}
		tr.Insert(29, 7)
		if v, _ := tr.Lookup(29); v != 7 {
			t.Error("update lost")
		}
	})
}

func TestRBTreeOperations(t *testing.T) {
	direct(t, "rbtree-ops", func(c *core.Context) {
		p := Create(c, 256<<10, CreateBugs{})
		tr := NewRBTree(p, RBTreeBugs{})
		for i := uint64(1); i <= 50; i++ {
			tr.Insert(i, i*2) // ascending order exercises rotations heavily
		}
		for i := uint64(1); i <= 50; i++ {
			v, ok := tr.Lookup(i)
			if !ok || v != i*2 {
				t.Fatalf("Lookup(%d) = %d, %v", i, v, ok)
			}
		}
		if n := tr.Check(); n != 50 {
			t.Errorf("Check counted %d nodes, want 50", n)
		}
		tr.Insert(25, 99)
		if v, _ := tr.Lookup(25); v != 99 {
			t.Error("update lost")
		}
	})
}

func TestHashmapAtomicOperations(t *testing.T) {
	direct(t, "hashmap-atomic-ops", func(c *core.Context) {
		p := Create(c, 256<<10, CreateBugs{})
		h := CreateHashmapAtomic(p, 16, HashmapAtomicBugs{})
		for i := uint64(0); i < 40; i++ {
			h.Insert(i*7, i)
		}
		for i := uint64(0); i < 40; i++ {
			v, ok := h.Lookup(i * 7)
			if !ok || v != i {
				t.Fatalf("Lookup(%d) = %d, %v", i*7, v, ok)
			}
		}
		if n := h.Check(); n != 40 {
			t.Errorf("Check counted %d nodes, want 40", n)
		}
	})
}

func TestHashmapTXOperations(t *testing.T) {
	direct(t, "hashmap-tx-ops", func(c *core.Context) {
		p := Create(c, 256<<10, CreateBugs{})
		h := CreateHashmapTX(p, 16, HashmapTXBugs{})
		for i := uint64(0); i < 30; i++ {
			h.Insert(i*13, i)
		}
		for i := uint64(0); i < 30; i++ {
			v, ok := h.Lookup(i * 13)
			if !ok || v != i {
				t.Fatalf("Lookup(%d) = %d, %v", i*13, v, ok)
			}
		}
		if n := h.Check(); n != 30 {
			t.Errorf("Check counted %d nodes, want 30", n)
		}
	})
}

// ---- Crash-consistency: fixed variants must explore clean -------------------

func TestFixedVariantsExploreClean(t *testing.T) {
	for _, prog := range FixedPrograms(5) {
		prog := prog
		t.Run(prog.Name, func(t *testing.T) {
			t.Parallel()
			res := core.New(prog, core.Options{}).Run()
			if res.Buggy() {
				t.Fatalf("fixed variant buggy: %v\nchoices: %s\ntrace tail: %v",
					res.Bugs[0], res.Bugs[0].Choices, res.Bugs[0].Trace)
			}
			if !res.Complete {
				t.Fatal("exploration incomplete")
			}
			if res.FailurePoints == 0 || res.Scenarios < res.FailurePoints {
				t.Errorf("suspicious exploration: %d scenarios, %d failure points",
					res.Scenarios, res.FailurePoints)
			}
		})
	}
}

// ---- Crash-consistency: seeded bugs must be found (Figure 12) ---------------

func TestPMDKBugs(t *testing.T) {
	for _, bc := range BugCases() {
		bc := bc
		t.Run(bc.Benchmark+"-"+bc.Label, func(t *testing.T) {
			t.Parallel()
			res := core.New(bc.Program(), core.Options{FlagMultiRF: true}).Run()
			if !res.Buggy() {
				t.Fatalf("bug #%d (%s) not detected", bc.ID, bc.Symptom)
			}
			typeOK := false
			labelOK := bc.Label == ""
			for _, b := range res.Bugs {
				for _, want := range bc.Expect {
					if b.Type == want {
						typeOK = true
					}
				}
				if bc.Label != "" && strings.Contains(b.Message, bc.Label) {
					labelOK = true
				}
			}
			if !typeOK {
				t.Errorf("bug #%d: no bug of expected type in %v", bc.ID, res.Bugs)
			}
			if !labelOK {
				t.Errorf("bug #%d: no bug mentions %q in %v", bc.ID, bc.Label, res.Bugs)
			}
		})
	}
}

func TestBugRegistryShape(t *testing.T) {
	cases := BugCases()
	if len(cases) != 7 {
		t.Fatalf("Figure 12 has 7 bugs, registry has %d", len(cases))
	}
	newCount := 0
	for _, bc := range cases {
		if bc.New {
			newCount++
		}
	}
	if newCount != 6 {
		t.Errorf("Figure 12 stars 6 new bugs, registry stars %d", newCount)
	}
}

func TestBTreeDelete(t *testing.T) {
	direct(t, "btree-delete", func(c *core.Context) {
		p := Create(c, 256<<10, CreateBugs{})
		tr := NewBTree(p, BTreeBugs{})
		for i := uint64(1); i <= 30; i++ {
			tr.Insert(i, i*100)
		}
		for i := uint64(2); i <= 30; i += 2 {
			if !tr.Delete(i) {
				t.Errorf("Delete(%d) = false", i)
			}
		}
		if tr.Delete(999) || tr.Delete(2) {
			t.Error("deleted a missing key")
		}
		for i := uint64(1); i <= 30; i++ {
			_, ok := tr.Lookup(i)
			if want := i%2 == 1; ok != want {
				t.Errorf("Lookup(%d) = %v, want %v", i, ok, want)
			}
		}
		if n := tr.Check(); n != 15 {
			t.Errorf("Check counted %d live keys, want 15", n)
		}
		// Revive a tombstoned key.
		tr.Insert(2, 42)
		if v, ok := tr.Lookup(2); !ok || v != 42 {
			t.Error("revive after delete failed")
		}
	})
}

// Deletion must be failure-atomic: after a crash the key is either fully
// present with its old value or fully absent.
func TestBTreeDeleteCrashConsistency(t *testing.T) {
	prog := core.Program{
		Name: "btree-delete-crash",
		Run: func(c *core.Context) {
			p := Create(c, workloadHeap, CreateBugs{})
			tr := NewBTree(p, BTreeBugs{})
			tr.Insert(10, 100)
			tr.Insert(20, 200)
			tr.Delete(10)
		},
		Recover: func(c *core.Context) {
			p, ok := Open(c)
			if !ok {
				return
			}
			p.TxRecover()
			tr := NewBTree(p, BTreeBugs{})
			tr.Check()
			if v, found := tr.Lookup(10); found {
				c.Assert(v == 100, "key 10 half-deleted: %d", v)
			}
			if v, found := tr.Lookup(20); found {
				c.Assert(v == 200, "key 20 corrupted: %d", v)
			}
		},
	}
	res := core.New(prog, core.Options{}).Run()
	if res.Buggy() {
		t.Fatalf("bugs: %v", res.Bugs[0])
	}
}

func TestSkiplistOperations(t *testing.T) {
	direct(t, "skiplist-ops", func(c *core.Context) {
		p := Create(c, 256<<10, CreateBugs{})
		s := NewSkiplist(p, SkiplistBugs{})
		for i := uint64(1); i <= 60; i++ {
			k := i*37%127 + 1
			s.Insert(k, k+9)
		}
		for i := uint64(1); i <= 60; i++ {
			k := i*37%127 + 1
			v, ok := s.Lookup(k)
			if !ok || v != k+9 {
				t.Fatalf("Lookup(%d) = %d, %v", k, v, ok)
			}
		}
		if _, ok := s.Lookup(999); ok {
			t.Error("found a key never inserted")
		}
		if n := s.Check(); n != 60 {
			t.Errorf("Check counted %d keys, want 60", n)
		}
		for i := uint64(1); i <= 60; i += 3 {
			k := i*37%127 + 1
			if !s.Delete(k) {
				t.Errorf("Delete(%d) = false", k)
			}
		}
		if s.Delete(999) {
			t.Error("deleted a missing key")
		}
		if n := s.Check(); n != 40 {
			t.Errorf("Check after deletes = %d, want 40", n)
		}
		s.Insert(5, 555)
		if v, _ := s.Lookup(5); v != 555 {
			t.Error("insert after delete failed")
		}
	})
}

func TestOracleSkiplist(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		oracleRun(t, "skiplist", seed, 300, 60, func(c *core.Context) (func(k, v uint64), func(k uint64) bool, func(k uint64) (uint64, bool)) {
			p := Create(c, 8<<20, CreateBugs{})
			s := NewSkiplist(p, SkiplistBugs{})
			return s.Insert, s.Delete, s.Lookup
		})
	}
}

// A crash mid-insert or mid-delete must leave the whole tower linked or
// unlinked — the multi-level link is one transaction.
func TestSkiplistCrashConsistency(t *testing.T) {
	prog := core.Program{
		Name: "skiplist-crash",
		Run: func(c *core.Context) {
			p := Create(c, workloadHeap, CreateBugs{})
			s := NewSkiplist(p, SkiplistBugs{})
			s.Insert(10, 100)
			s.Insert(20, 200)
			s.Delete(10)
			s.Insert(30, 300)
		},
		Recover: func(c *core.Context) {
			p, ok := Open(c)
			if !ok {
				return
			}
			p.TxRecover()
			s := NewSkiplist(p, SkiplistBugs{})
			s.Check()
			for _, k := range []uint64{10, 20, 30} {
				if v, found := s.Lookup(k); found {
					c.Assert(v == k*10, "key %d recovered value %d", k, v)
				}
			}
		},
	}
	res := core.New(prog, core.Options{}).Run()
	if res.Buggy() {
		t.Fatalf("bugs: %v\nchoices: %s", res.Bugs[0], res.Bugs[0].Choices)
	}
	if !res.Complete {
		t.Fatal("exploration incomplete")
	}
}

// The NoNodeFlush knob must be detectable, like the btree's bug #1.
func TestSkiplistNoNodeFlushDetected(t *testing.T) {
	res := core.New(SkiplistWorkload(6, SkiplistBugs{NoNodeFlush: true}),
		core.Options{StopAtFirstBug: true}).Run()
	if !res.Buggy() {
		t.Fatal("unflushed skiplist node not detected")
	}
}
