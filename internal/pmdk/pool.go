// Package pmdk is a from-scratch mini reproduction of the PMDK libpmemobj
// substrate the paper evaluates (§5): a persistent-memory pool with a
// validated header, a persistent heap with recoverable allocation metadata,
// undo- and redo-log transactions, the five example data structures of
// Figure 12 (btree, ctree, rbtree, hashmap_atomic, hashmap_tx), and the
// skiplist_map example from the same suite.
//
// Every component exists in a Fixed variant (crash-consistent, explored
// clean by the checker) and exposes seeded Bug knobs reproducing the seven
// PMDK bugs of Figures 12 and 16. Symptom strings carry the paper's
// source-location labels (e.g. "heap.c:533") so harness output lines up
// with the published tables.
package pmdk

import (
	"jaaru/internal/core"
)

// Pool header layout within the checker's root area.
const (
	offMagic   = 0x00
	offVersion = 0x08
	offRootObj = 0x10 // data structure root pointer
	offArena   = 0x18 // heap arena base address
	offArenaSz = 0x20 // heap arena size
	offBump    = 0x28 // heap bump pointer (persistent allocation metadata)
	offTxCount = 0x40 // undo log entry count (the tx commit store; own line)
	offTxLog   = 0x80 // undo log entries

	poolMagic   = 0xB17EBEEF
	poolVersion = 1
)

// CreateBugs selects seeded pool-creation bugs.
type CreateBugs struct {
	// MisorderedHeader persists the magic before the rest of the header
	// (PMDK bug #2, "Failed to open pool error"): a crash in between
	// leaves a pool that passes the magic check but has a garbage header.
	MisorderedHeader bool
}

// Pool is a handle to the mini-pmemobj pool within a Context's root area.
type Pool struct {
	c    *core.Context
	base core.Addr
}

// Create formats the pool: it allocates the heap arena and persists the
// header. The fixed variant writes the magic last, as a commit store, so a
// half-created pool is detected gracefully by Open.
func Create(c *core.Context, heapSize uint64, bugs CreateBugs) *Pool {
	p := &Pool{c: c, base: c.Root()}
	arena := c.Alloc(heapSize, 64)
	if bugs.MisorderedHeader {
		// BUG: commit store first, body later, nothing flushed in between.
		c.Store64(p.base.Add(offMagic), poolMagic)
		c.Persist(p.base.Add(offMagic), 8)
		c.Store64(p.base.Add(offVersion), poolVersion)
		c.StorePtr(p.base.Add(offArena), arena)
		c.Store64(p.base.Add(offArenaSz), heapSize)
		c.StorePtr(p.base.Add(offBump), arena)
		c.Store64(p.base.Add(offRootObj), 0)
		c.Store64(p.base.Add(offTxCount), 0)
		c.Persist(p.base.Add(offVersion), offTxCount-offVersion+8)
		return p
	}
	c.Store64(p.base.Add(offVersion), poolVersion)
	c.StorePtr(p.base.Add(offArena), arena)
	c.Store64(p.base.Add(offArenaSz), heapSize)
	c.StorePtr(p.base.Add(offBump), arena)
	c.Store64(p.base.Add(offRootObj), 0)
	c.Store64(p.base.Add(offTxCount), 0)
	c.Persist(p.base.Add(offVersion), offTxCount-offVersion+8)
	// Commit store: the magic marks the header complete.
	c.Store64(p.base.Add(offMagic), poolMagic)
	c.Persist(p.base.Add(offMagic), 8)
	return p
}

// Open validates the pool header. ok is false when the pool was never
// (completely) created — callers treat that as an empty pool. A pool whose
// magic persisted without the rest of its header (the misordered-creation
// bug) fails the version check: the PMDK symptom "Failed to open pool
// error".
func Open(c *core.Context) (p *Pool, ok bool) {
	p = &Pool{c: c, base: c.Root()}
	if c.Load64(p.base.Add(offMagic)) != poolMagic {
		return p, false
	}
	if v := c.Load64(p.base.Add(offVersion)); v != poolVersion {
		c.Bug("Failed to open pool error: magic valid but version %d", v)
	}
	if c.LoadPtr(p.base.Add(offArena)) == 0 {
		c.Bug("Failed to open pool error: header has no heap arena")
	}
	return p, true
}

// RootObj returns the persistent root-object pointer.
func (p *Pool) RootObj() core.Addr { return p.c.LoadPtr(p.base.Add(offRootObj)) }

// RootObjAddr returns the address of the root-object pointer itself, for
// transactional updates.
func (p *Pool) RootObjAddr() core.Addr { return p.base.Add(offRootObj) }

// SetRootObj persists the root-object pointer (a commit store).
func (p *Pool) SetRootObj(a core.Addr) {
	p.c.StorePtr(p.base.Add(offRootObj), a)
	p.c.Persist(p.base.Add(offRootObj), 8)
}

// Ctx returns the guest context the pool is bound to.
func (p *Pool) Ctx() *core.Context { return p.c }
