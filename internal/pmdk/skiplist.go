package pmdk

import "jaaru/internal/core"

// Skiplist is the analog of PMDK's skiplist_map example: a skip list whose
// node towers are linked level by level inside one undo transaction. The
// paper's Figure 12 found no skiplist bug, but the program is part of the
// PMDK example suite the evaluation ran over ("All programs in the PMDK
// library have been used"), so the fixed variant belongs in the checked
// set; a NoNodeFlush knob is provided for negative tests.

const (
	slMaxLevel = 4
	slNodeSize = 16 + 8*slMaxLevel // key, val, next[slMaxLevel]

	slOffKey  = 0
	slOffVal  = 8
	slOffNext = 16
)

// SkiplistBugs selects seeded skiplist bugs.
type SkiplistBugs struct {
	// NoNodeFlush skips persisting new nodes before linking them.
	NoNodeFlush bool
	// Tx seeds bugs in the transaction layer.
	Tx TxBugs
	// Heap seeds bugs in the persistent allocator.
	Heap HeapBugs
}

// Skiplist is a handle to the persistent skip list; the head tower is the
// pool's root object.
type Skiplist struct {
	p    *Pool
	bugs SkiplistBugs
	// lcg drives tower heights. Volatile: replays re-run the same insert
	// sequence, so heights are deterministic per scenario.
	lcg uint64
}

// NewSkiplist creates (or rebinds to) the skip list. The head tower is
// created on first use, committed through the root object pointer.
func NewSkiplist(p *Pool, bugs SkiplistBugs) *Skiplist {
	s := &Skiplist{p: p, bugs: bugs, lcg: 0x2545F4914F6CDD1D}
	c := p.c
	if p.RootObj() == 0 {
		head := p.PAlloc(slNodeSize, bugs.Heap)
		c.Persist(head, slNodeSize) // zero tower: every level ends here
		tx := p.TxBegin(bugs.Tx)
		tx.Add(p.RootObjAddr(), 8)
		c.StorePtr(p.RootObjAddr(), head)
		tx.Commit()
	}
	return s
}

func (s *Skiplist) c() *core.Context { return s.p.c }

func (s *Skiplist) head() core.Addr { return s.p.RootObj() }

func (s *Skiplist) next(n core.Addr, lvl int) core.Addr {
	return s.c().LoadPtr(n.Add(slOffNext + 8*uint64(lvl)))
}

// randLevel draws a tower height in [1, slMaxLevel] with p=1/2 decay.
func (s *Skiplist) randLevel() int {
	s.lcg = s.lcg*6364136223846793005 + 1442695040888963407
	lvl := 1
	for x := s.lcg >> 33; lvl < slMaxLevel && x&1 == 1; x >>= 1 {
		lvl++
	}
	return lvl
}

// findPreds locates, per level, the last node with key < target.
func (s *Skiplist) findPreds(key uint64) (preds [slMaxLevel]core.Addr, found core.Addr) {
	c := s.c()
	n := s.head()
	for lvl := slMaxLevel - 1; lvl >= 0; lvl-- {
		for {
			nxt := s.next(n, lvl)
			if nxt == 0 || c.Load64(nxt.Add(slOffKey)) >= key {
				break
			}
			n = nxt
		}
		preds[lvl] = n
	}
	if nxt := s.next(preds[0], 0); nxt != 0 && c.Load64(nxt.Add(slOffKey)) == key {
		found = nxt
	}
	return preds, found
}

// Insert adds or updates a key failure-atomically: the whole tower links in
// one transaction.
func (s *Skiplist) Insert(key, value uint64) {
	c := s.c()
	c.Assert(key != 0, "skiplist_map.c: key 0 is reserved for the head")
	preds, found := s.findPreds(key)
	if found != 0 {
		tx := s.p.TxBegin(s.bugs.Tx)
		tx.Add(found.Add(slOffVal), 8)
		c.Store64(found.Add(slOffVal), value)
		tx.Commit()
		return
	}

	lvl := s.randLevel()
	node := s.p.PAlloc(slNodeSize, s.bugs.Heap)
	c.Store64(node.Add(slOffKey), key)
	c.Store64(node.Add(slOffVal), value)
	for l := 0; l < lvl; l++ {
		c.StorePtr(node.Add(slOffNext+8*uint64(l)), s.next(preds[l], l))
	}
	if !s.bugs.NoNodeFlush {
		c.Persist(node, slNodeSize)
	}
	tx := s.p.TxBegin(s.bugs.Tx)
	for l := 0; l < lvl; l++ {
		link := preds[l].Add(slOffNext + 8*uint64(l))
		tx.AddSkippable(link, 8)
		c.StorePtr(link, node)
	}
	tx.Commit()
}

// Delete unlinks a key's whole tower in one transaction, reporting whether
// it was present.
func (s *Skiplist) Delete(key uint64) bool {
	c := s.c()
	preds, found := s.findPreds(key)
	if found == 0 {
		return false
	}
	tx := s.p.TxBegin(s.bugs.Tx)
	for l := 0; l < slMaxLevel; l++ {
		link := preds[l].Add(slOffNext + 8*uint64(l))
		if c.LoadPtr(link) == found {
			tx.AddSkippable(link, 8)
			c.StorePtr(link, s.next(found, l))
		}
	}
	tx.Commit()
	return true
}

// Lookup returns the value stored for key.
func (s *Skiplist) Lookup(key uint64) (uint64, bool) {
	_, found := s.findPreds(key)
	if found == 0 {
		return 0, false
	}
	return s.c().Load64(found.Add(slOffVal)), true
}

// Check validates the skip list: level 0 is strictly ordered, and every
// higher level is a subsequence of level 0. Returns the key count.
func (s *Skiplist) Check() int {
	c := s.c()
	head := s.head()
	// Level 0: ordered, collect the set.
	onBase := make(map[core.Addr]bool)
	total := 0
	prev := uint64(0)
	steps := 0
	for n := s.next(head, 0); n != 0; n = s.next(n, 0) {
		c.Assert(steps < 1<<16, "skiplist_map.c: level-0 cycle")
		steps++
		k := c.Load64(n.Add(slOffKey))
		c.Assert(k > prev, "skiplist_map.c: keys out of order (%d after %d)", k, prev)
		prev = k
		onBase[n] = true
		total++
	}
	for lvl := 1; lvl < slMaxLevel; lvl++ {
		steps = 0
		prev = 0
		for n := s.next(head, lvl); n != 0; n = s.next(n, lvl) {
			c.Assert(steps < 1<<16, "skiplist_map.c: level-%d cycle", lvl)
			steps++
			c.Assert(onBase[n], "skiplist_map.c: node %v on level %d but not level 0", n, lvl)
			k := c.Load64(n.Add(slOffKey))
			c.Assert(k > prev, "skiplist_map.c: level-%d keys out of order", lvl)
			prev = k
		}
	}
	return total
}

// SkiplistWorkload inserts n keys (with one delete) and validates the
// committed prefix on recovery, like the other transactional PMDK
// workloads.
func SkiplistWorkload(n int, bugs SkiplistBugs) core.Program {
	keys := keysN(n)
	return core.Program{
		Name: "pmdk/skiplist",
		Run: func(c *core.Context) {
			p := Create(c, workloadHeap, CreateBugs{})
			s := NewSkiplist(p, bugs)
			for _, k := range keys {
				s.Insert(k, k*10)
			}
		},
		Recover: func(c *core.Context) {
			p, ok := Open(c)
			if !ok {
				return
			}
			p.TxRecover()
			s := NewSkiplist(p, SkiplistBugs{})
			checkPrefix(c, keys, s.Check(), s.Lookup)
		},
	}
}
