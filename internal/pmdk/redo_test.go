package pmdk

import (
	"fmt"
	"sort"
	"testing"

	"jaaru/internal/core"
)

func TestRedoCommitApplies(t *testing.T) {
	direct(t, "redo-basic", func(c *core.Context) {
		p := Create(c, 4096, CreateBugs{})
		a := p.PAlloc(16, HeapBugs{})
		tx := p.RedoBegin()
		tx.Set(a, 7)
		tx.Set(a.Add(8), 9)
		if c.Load64(a) != 0 {
			t.Error("redo Set wrote through before commit")
		}
		tx.Commit()
		if c.Load64(a) != 7 || c.Load64(a.Add(8)) != 9 {
			t.Error("commit did not apply")
		}
		// The log must be retired.
		tx2 := p.RedoBegin()
		tx2.Set(a, 11)
		tx2.Commit()
		if c.Load64(a) != 11 {
			t.Error("second transaction lost")
		}
	})
}

func TestRedoEmptyCommit(t *testing.T) {
	direct(t, "redo-empty", func(c *core.Context) {
		p := Create(c, 4096, CreateBugs{})
		p.RedoBegin().Commit() // no-op
		p.RedoRecover()        // no-op
	})
}

// The redo transaction must be failure-atomic: a multi-word transfer is
// observed either entirely or not at all in every post-failure state.
func TestRedoFailureAtomicity(t *testing.T) {
	seen := make(map[string]bool)
	prog := core.Program{
		Name: "redo-atomic",
		Run: func(c *core.Context) {
			p := Create(c, 4096, CreateBugs{})
			accounts := p.PAlloc(16, HeapBugs{})
			// Initial balances, persisted.
			tx := p.RedoBegin()
			tx.Set(accounts, 100)
			tx.Set(accounts.Add(8), 100)
			tx.Commit()
			p.SetRootObj(accounts)
			// The checked transfer.
			tx = p.RedoBegin()
			tx.Set(accounts, 60)
			tx.Set(accounts.Add(8), 140)
			tx.Commit()
		},
		Recover: func(c *core.Context) {
			p, ok := Open(c)
			if !ok {
				return
			}
			p.RedoRecover()
			accounts := p.RootObj()
			if accounts == 0 {
				return
			}
			a, b := c.Load64(accounts), c.Load64(accounts.Add(8))
			c.Assert(a+b == 200, "redo tore the transfer: %d + %d", a, b)
			c.Assert((a == 100 && b == 100) || (a == 60 && b == 140),
				"redo mixed transactions: %d/%d", a, b)
			seen[fmt.Sprintf("%d/%d", a, b)] = true
		},
	}
	res := core.New(prog, core.Options{}).Run()
	if res.Buggy() {
		t.Fatalf("bugs: %v\nchoices: %s", res.Bugs[0], res.Bugs[0].Choices)
	}
	var states []string
	for k := range seen {
		states = append(states, k)
	}
	sort.Strings(states)
	if len(states) != 2 {
		t.Fatalf("observed states %v, want both before- and after-transfer", states)
	}
}

// Crashing during the apply phase must be recoverable: the committed log
// replays idempotently under repeated failures.
func TestRedoRecoverIdempotentUnderTwoFailures(t *testing.T) {
	prog := core.Program{
		Name: "redo-two-failures",
		Run: func(c *core.Context) {
			p := Create(c, 4096, CreateBugs{})
			a := p.PAlloc(24, HeapBugs{})
			p.SetRootObj(a)
			tx := p.RedoBegin()
			tx.Set(a, 1)
			tx.Set(a.Add(8), 2)
			tx.Set(a.Add(16), 3)
			tx.Commit()
		},
		Recover: func(c *core.Context) {
			p, ok := Open(c)
			if !ok {
				return
			}
			p.RedoRecover()
			a := p.RootObj()
			if a == 0 {
				return
			}
			v1, v2, v3 := c.Load64(a), c.Load64(a.Add(8)), c.Load64(a.Add(16))
			all := v1 == 1 && v2 == 2 && v3 == 3
			none := v1 == 0 && v2 == 0 && v3 == 0
			c.Assert(all || none, "redo partially applied after recovery: %d %d %d", v1, v2, v3)
		},
	}
	res := core.New(prog, core.Options{MaxFailures: 2}).Run()
	if res.Buggy() {
		t.Fatalf("bugs: %v\nchoices: %s", res.Bugs[0], res.Bugs[0].Choices)
	}
	if !res.Complete {
		t.Fatal("exploration incomplete")
	}
}

// Publishing the count before persisting the entries is the redo-log
// analog of the undo CountBeforeEntry bug: recovery applies garbage
// entries. Simulated by staging through a hand-rolled broken commit.
func TestRedoCountBeforeEntriesBug(t *testing.T) {
	prog := core.Program{
		Name: "redo-buggy",
		Run: func(c *core.Context) {
			p := Create(c, 4096, CreateBugs{})
			a := p.PAlloc(8, HeapBugs{})
			p.SetRootObj(a)
			// Broken commit: count persisted first, entries never.
			entry := c.Root().Add(0x80)
			c.Store64(c.Root().Add(0x40), 1) // offTxCount
			c.Persist(c.Root().Add(0x40), 8)
			c.StorePtr(entry, a)
			c.Store64(entry.Add(8), 42)
		},
		Recover: func(c *core.Context) {
			p, ok := Open(c)
			if !ok {
				return
			}
			p.RedoRecover() // applies a possibly-garbage entry
		},
	}
	res := core.New(prog, core.Options{StopAtFirstBug: true}).Run()
	if !res.Buggy() {
		t.Fatal("count-before-entries not detected")
	}
	if res.Bugs[0].Type != core.BugIllegalAccess {
		t.Errorf("manifestation = %v", res.Bugs[0])
	}
}
