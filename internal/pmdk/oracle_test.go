package pmdk

import (
	"math/rand"
	"testing"

	"jaaru/internal/core"
)

// Oracle tests: long randomized operation sequences against a Go map, in
// direct execution, for each PMDK example structure.

func oracleRun(t *testing.T, name string, seed int64, nOps, keySpace int,
	build func(c *core.Context) (insert func(k, v uint64),
		del func(k uint64) bool,
		lookup func(k uint64) (uint64, bool))) {
	t.Helper()
	res := core.Execute(name, func(c *core.Context) {
		rng := rand.New(rand.NewSource(seed))
		insert, del, lookup := build(c)
		oracle := make(map[uint64]uint64)
		for i := 0; i < nOps; i++ {
			k := uint64(rng.Intn(keySpace) + 1)
			switch op := rng.Intn(10); {
			case op < 6:
				v := uint64(rng.Intn(1 << 16)) // update or insert
				insert(k, v)
				oracle[k] = v
			case op < 8 && del != nil:
				_, want := oracle[k]
				if got := del(k); got != want {
					t.Errorf("%s seed %d op %d: Delete(%d) = %v, want %v",
						name, seed, i, k, got, want)
				}
				delete(oracle, k)
			default:
				v, ok := lookup(k)
				wv, wok := oracle[k]
				if ok != wok || (ok && v != wv) {
					t.Errorf("%s seed %d op %d: Lookup(%d) = (%d,%v), want (%d,%v)",
						name, seed, i, k, v, ok, wv, wok)
				}
			}
		}
		for k, wv := range oracle {
			if v, ok := lookup(k); !ok || v != wv {
				t.Errorf("%s seed %d final: Lookup(%d) = (%d,%v), want (%d,true)",
					name, seed, k, v, ok, wv)
			}
		}
	}, core.Options{MaxSteps: 1 << 26, PoolSize: 64 << 20})
	if res.Buggy() {
		t.Fatalf("%s seed %d: %v", name, seed, res.Bugs[0])
	}
}

func TestOracleBTree(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		oracleRun(t, "btree", seed, 300, 80, func(c *core.Context) (func(k, v uint64), func(k uint64) bool, func(k uint64) (uint64, bool)) {
			p := Create(c, 8<<20, CreateBugs{})
			tr := NewBTree(p, BTreeBugs{})
			return tr.Insert, tr.Delete, tr.Lookup
		})
	}
}

func TestOracleCTree(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		oracleRun(t, "ctree", seed, 300, 80, func(c *core.Context) (func(k, v uint64), func(k uint64) bool, func(k uint64) (uint64, bool)) {
			p := Create(c, 8<<20, CreateBugs{})
			tr := NewCTree(p, CTreeBugs{})
			return tr.Insert, nil, tr.Lookup
		})
	}
}

func TestOracleRBTree(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		oracleRun(t, "rbtree", seed, 300, 80, func(c *core.Context) (func(k, v uint64), func(k uint64) bool, func(k uint64) (uint64, bool)) {
			p := Create(c, 8<<20, CreateBugs{})
			tr := NewRBTree(p, RBTreeBugs{})
			return tr.Insert, nil, tr.Lookup
		})
	}
}

func TestOracleHashmapAtomic(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		oracleRun(t, "hashmap_atomic", seed, 400, 60, func(c *core.Context) (func(k, v uint64), func(k uint64) bool, func(k uint64) (uint64, bool)) {
			p := Create(c, 8<<20, CreateBugs{})
			h := CreateHashmapAtomic(p, 8, HashmapAtomicBugs{})
			return h.Insert, h.Delete, h.Lookup
		})
	}
}

func TestOracleHashmapTX(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		oracleRun(t, "hashmap_tx", seed, 300, 60, func(c *core.Context) (func(k, v uint64), func(k uint64) bool, func(k uint64) (uint64, bool)) {
			p := Create(c, 8<<20, CreateBugs{})
			h := CreateHashmapTX(p, 8, HashmapTXBugs{})
			return h.Insert, nil, h.Lookup
		})
	}
}
