package pmdk

import "jaaru/internal/core"

// Hashmap analogs of PMDK's hashmap_atomic and hashmap_tx examples. Both
// share the layout: a bucket directory in the persistent heap, chains of
// nodes {key, value, next}. hashmap_atomic relies on commit stores
// (prepend + persisted head pointer); hashmap_tx wraps mutations in undo
// transactions.

const (
	hmNodeSize = 24
	hmOffKey   = 0
	hmOffVal   = 8
	hmOffNext  = 16

	// Directory header: nBuckets (8), count (8), then the bucket array.
	hmOffNBuckets = 0
	hmOffCount    = 8
	hmOffBuckets  = 16
)

func hmHash(key, nBuckets uint64) uint64 {
	x := key
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x % nBuckets
}

// HashmapAtomicBugs selects seeded hashmap_atomic bugs.
type HashmapAtomicBugs struct {
	// Heap seeds allocator bugs: NoHeaderFlush is PMDK bug #3
	// ("Assertion failure at heap.c:533"); NoBumpFlush is PMDK bug #5
	// ("Assertion failure at pmalloc.c:270").
	Heap HeapBugs
	// NoNodeFlush skips persisting a node before its bucket head commit
	// store.
	NoNodeFlush bool
	// NoDirFlush skips persisting the bucket directory at creation.
	NoDirFlush bool
}

// HashmapAtomic is the commit-store-based persistent hashmap.
type HashmapAtomic struct {
	p    *Pool
	bugs HashmapAtomicBugs
}

// CreateHashmapAtomic allocates and installs the bucket directory.
func CreateHashmapAtomic(p *Pool, nBuckets uint64, bugs HashmapAtomicBugs) *HashmapAtomic {
	c := p.c
	dir := p.PAlloc(hmOffBuckets+8*nBuckets, bugs.Heap)
	c.Store64(dir.Add(hmOffNBuckets), nBuckets)
	c.Store64(dir.Add(hmOffCount), 0)
	if !bugs.NoDirFlush {
		c.Persist(dir, hmOffBuckets+8*nBuckets)
	}
	p.SetRootObj(dir)
	return &HashmapAtomic{p: p, bugs: bugs}
}

// OpenHashmapAtomic binds to an existing directory.
func OpenHashmapAtomic(p *Pool, bugs HashmapAtomicBugs) *HashmapAtomic {
	return &HashmapAtomic{p: p, bugs: bugs}
}

func (h *HashmapAtomic) dir() core.Addr { return h.p.RootObj() }

// Insert prepends a node to its bucket chain (or updates an existing key
// in place — a duplicate node would resurface with a stale value once the
// newer one is deleted). The bucket head update is the commit store; the
// count is best-effort (recomputed by Check).
func (h *HashmapAtomic) Insert(key, value uint64) {
	c := h.p.c
	dir := h.dir()
	n := c.Load64(dir.Add(hmOffNBuckets))
	c.Assert(n != 0, "hashmap_atomic.c:132: directory has zero buckets")
	bucket := dir.Add(hmOffBuckets + 8*hmHash(key, n))

	for cur := c.LoadPtr(bucket); cur != 0; cur = c.LoadPtr(cur.Add(hmOffNext)) {
		if c.Load64(cur.Add(hmOffKey)) == key {
			c.Store64(cur.Add(hmOffVal), value)
			c.Persist(cur.Add(hmOffVal), 8)
			return
		}
	}

	node := h.p.PAlloc(hmNodeSize, h.bugs.Heap)
	c.Store64(node.Add(hmOffKey), key)
	c.Store64(node.Add(hmOffVal), value)
	c.StorePtr(node.Add(hmOffNext), c.LoadPtr(bucket))
	if !h.bugs.NoNodeFlush {
		c.Persist(node, hmNodeSize)
	}
	c.StorePtr(bucket, node) // commit store
	c.Persist(bucket, 8)

	c.Store64(dir.Add(hmOffCount), c.Load64(dir.Add(hmOffCount))+1)
	c.Persist(dir.Add(hmOffCount), 8)
}

// Delete unlinks a key's node from its chain: the predecessor's next
// pointer (or the bucket head) update is the single commit store, so a
// crash leaves either the old or the new chain. The node itself leaks, as
// in the real hashmap_atomic before its allocator reclaims it.
func (h *HashmapAtomic) Delete(key uint64) bool {
	c := h.p.c
	dir := h.dir()
	n := c.Load64(dir.Add(hmOffNBuckets))
	if n == 0 {
		return false
	}
	link := dir.Add(hmOffBuckets + 8*hmHash(key, n))
	for {
		node := c.LoadPtr(link)
		if node == 0 {
			return false
		}
		if c.Load64(node.Add(hmOffKey)) == key {
			c.StorePtr(link, c.LoadPtr(node.Add(hmOffNext))) // commit store
			c.Persist(link, 8)
			cnt := c.Load64(dir.Add(hmOffCount))
			if cnt > 0 {
				c.Store64(dir.Add(hmOffCount), cnt-1)
				c.Persist(dir.Add(hmOffCount), 8)
			}
			return true
		}
		link = node.Add(hmOffNext)
	}
}

// Lookup returns the value stored for key.
func (h *HashmapAtomic) Lookup(key uint64) (uint64, bool) {
	c := h.p.c
	dir := h.dir()
	n := c.Load64(dir.Add(hmOffNBuckets))
	if n == 0 {
		return 0, false
	}
	node := c.LoadPtr(dir.Add(hmOffBuckets + 8*hmHash(key, n)))
	for node != 0 {
		if c.Load64(node.Add(hmOffKey)) == key {
			return c.Load64(node.Add(hmOffVal)), true
		}
		node = c.LoadPtr(node.Add(hmOffNext))
	}
	return 0, false
}

// Check validates the heap and every chain: nodes must hash to their
// bucket (an overlap caused by lost allocator metadata puts a node in the
// wrong chain — the pmalloc.c:270 manifestation) and chains must be
// acyclic.
func (h *HashmapAtomic) Check() int {
	c := h.p.c
	h.p.HeapCheck()
	dir := h.dir()
	if dir == 0 {
		return 0
	}
	n := c.Load64(dir.Add(hmOffNBuckets))
	c.Assert(n > 0 && n <= 1<<20, "hashmap_atomic.c:132: bucket count %d corrupt", n)
	total := 0
	for b := uint64(0); b < n; b++ {
		node := c.LoadPtr(dir.Add(hmOffBuckets + 8*b))
		steps := 0
		for node != 0 {
			c.Assert(steps < 1<<16, "hashmap_atomic.c:132: chain cycle in bucket %d", b)
			key := c.Load64(node.Add(hmOffKey))
			c.Assert(hmHash(key, n) == b,
				"pmalloc.c:270: node %v with key %d found in bucket %d (heap metadata lost)",
				node, key, b)
			total++
			steps++
			node = c.LoadPtr(node.Add(hmOffNext))
		}
	}
	return total
}

// HashmapTXBugs selects seeded hashmap_tx bugs.
type HashmapTXBugs struct {
	// Tx seeds bugs in the transaction layer: NoEntryFlush is PMDK bug #6
	// ("Illegal memory access at obj.c:1528").
	Tx TxBugs
	// Heap seeds allocator bugs.
	Heap HeapBugs
}

// HashmapTX is the transactional persistent hashmap.
type HashmapTX struct {
	p    *Pool
	bugs HashmapTXBugs
}

// CreateHashmapTX allocates and installs the bucket directory
// transactionally.
func CreateHashmapTX(p *Pool, nBuckets uint64, bugs HashmapTXBugs) *HashmapTX {
	c := p.c
	dir := p.PAlloc(hmOffBuckets+8*nBuckets, bugs.Heap)
	c.Store64(dir.Add(hmOffNBuckets), nBuckets)
	c.Persist(dir, hmOffBuckets+8*nBuckets)
	tx := p.TxBegin(bugs.Tx)
	tx.Add(p.RootObjAddr(), 8)
	c.StorePtr(p.RootObjAddr(), dir)
	tx.Commit()
	return &HashmapTX{p: p, bugs: bugs}
}

// OpenHashmapTX binds to an existing directory.
func OpenHashmapTX(p *Pool, bugs HashmapTXBugs) *HashmapTX {
	return &HashmapTX{p: p, bugs: bugs}
}

// Insert adds a node to its bucket chain under a transaction.
func (h *HashmapTX) Insert(key, value uint64) {
	c := h.p.c
	dir := h.p.RootObj()
	n := c.Load64(dir.Add(hmOffNBuckets))
	c.Assert(n != 0, "hashmap_tx.c:87: directory has zero buckets")
	bucket := dir.Add(hmOffBuckets + 8*hmHash(key, n))

	node := h.p.PAlloc(hmNodeSize, h.bugs.Heap)
	c.Store64(node.Add(hmOffKey), key)
	c.Store64(node.Add(hmOffVal), value)
	c.StorePtr(node.Add(hmOffNext), c.LoadPtr(bucket))
	c.Persist(node, hmNodeSize)

	tx := h.p.TxBegin(h.bugs.Tx)
	tx.Add(bucket, 8)
	c.StorePtr(bucket, node)
	tx.Add(dir.Add(hmOffCount), 8)
	c.Store64(dir.Add(hmOffCount), c.Load64(dir.Add(hmOffCount))+1)
	tx.Commit()
}

// Lookup returns the value stored for key.
func (h *HashmapTX) Lookup(key uint64) (uint64, bool) {
	return (&HashmapAtomic{p: h.p}).Lookup(key)
}

// Check validates every chain and the persistent count.
func (h *HashmapTX) Check() int {
	c := h.p.c
	dir := h.p.RootObj()
	if dir == 0 {
		return 0
	}
	total := (&HashmapAtomic{p: h.p}).Check()
	count := c.Load64(dir.Add(hmOffCount))
	c.Assert(uint64(total) == count,
		"hashmap_tx.c:87: persistent count %d != chained nodes %d", count, total)
	return total
}
