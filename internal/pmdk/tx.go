package pmdk

import "jaaru/internal/core"

// Undo-log transactions, modelled on libpmemobj's tx layer. The protocol:
//
//  1. TxAdd(addr, size): append an undo entry holding the range's current
//     contents, persist the entry, then persist the incremented entry count
//     (the entry's commit store).
//  2. Mutate the added ranges freely with plain stores.
//  3. TxCommit: persist every added range's new contents, then persist an
//     entry count of zero (the transaction's commit store).
//
// Recovery (TxRecover) rolls back: if the entry count is nonzero the
// transaction did not commit, so entries are applied newest-first and the
// count is cleared. Rollback is idempotent, so crashes during recovery are
// harmless.
//
// The log lives inside the pool's root area: entryCount at offTxCount and
// fixed-size entries from offTxLog.

const (
	txEntrySize = 16 + txDataMax // addr (8) + size (8) + data
	txDataMax   = 64
	txMaxEntry  = (core.RootSize - offTxLog) / txEntrySize
)

// TxBugs selects seeded transaction bugs.
type TxBugs struct {
	// NoEntryFlush skips persisting undo entries' contents (while still
	// persisting the entry count) — PMDK bug #6, "Illegal memory access
	// at obj.c:1528": a crash rolls back through a garbage entry address.
	NoEntryFlush bool
	// CountBeforeEntry persists the incremented entry count before the
	// entry's contents — PMDK bug #4, "Assertion failure at obj.c:1523":
	// a crash leaves the count pointing past a garbage entry.
	CountBeforeEntry bool
	// CommitClearsLogFirst clears the entry count before the mutated data
	// is persisted: a crash loses both the undo information and part of
	// the new state (an atomicity violation).
	CommitClearsLogFirst bool
	// SkipAdd omits the undo entry for one of the mutated ranges — the
	// atomicity violation pattern (partially completed updates survive).
	SkipAdd bool
}

// Tx is an open transaction on a pool.
type Tx struct {
	p     *Pool
	bugs  TxBugs
	added []txRange
}

type txRange struct {
	addr core.Addr
	size uint64
}

// TxBegin opens a transaction. The entry count must be zero: recovery runs
// TxRecover before any new transaction starts.
func (p *Pool) TxBegin(bugs TxBugs) *Tx {
	c := p.c
	c.Assert(c.Load64(p.base.Add(offTxCount)) == 0,
		"tx.c:1678: transaction started with a dirty undo log")
	return &Tx{p: p, bugs: bugs}
}

// Add records the current contents of [addr, addr+size) in the undo log so
// the range can be mutated failure-atomically. size is limited to 64 bytes
// per entry; larger ranges are split by the caller.
func (t *Tx) Add(addr core.Addr, size uint64) {
	c := t.p.c
	c.Assert(size > 0 && size <= txDataMax, "obj.c:1523: undo entry size %d invalid", size)
	n := c.Load64(t.p.base.Add(offTxCount))
	c.Assert(n < txMaxEntry, "undo log full (%d entries)", n)
	entry := t.p.base.Add(offTxLog + n*txEntrySize)
	if t.bugs.CountBeforeEntry {
		// BUG: the count is committed before the entry exists.
		c.Store64(t.p.base.Add(offTxCount), n+1)
		c.Persist(t.p.base.Add(offTxCount), 8)
	}
	c.StorePtr(entry, addr)
	c.Store64(entry.Add(8), size)
	for i := uint64(0); i < size; i++ {
		c.Store8(entry.Add(16+i), c.Load8(addr.Add(i)))
	}
	if !t.bugs.NoEntryFlush {
		c.Persist(entry, 16+size)
	}
	if !t.bugs.CountBeforeEntry {
		c.Store64(t.p.base.Add(offTxCount), n+1)
		c.Persist(t.p.base.Add(offTxCount), 8)
	}
	t.added = append(t.added, txRange{addr: addr, size: size})
}

// AddSkippable is Add, except that a transaction seeded with the SkipAdd
// bug silently omits the entry — the atomicity-violation pattern.
func (t *Tx) AddSkippable(addr core.Addr, size uint64) {
	if t.bugs.SkipAdd {
		t.added = append(t.added, txRange{addr: addr, size: size})
		return
	}
	t.Add(addr, size)
}

// Commit makes the transaction's mutations durable: persist the new data,
// then clear the entry count.
func (t *Tx) Commit() {
	c := t.p.c
	if t.bugs.CommitClearsLogFirst {
		// BUG: the commit store precedes the data flushes.
		c.Store64(t.p.base.Add(offTxCount), 0)
		c.Persist(t.p.base.Add(offTxCount), 8)
		for _, r := range t.added {
			c.Persist(r.addr, r.size)
		}
		return
	}
	for _, r := range t.added {
		c.Persist(r.addr, r.size)
	}
	c.Store64(t.p.base.Add(offTxCount), 0)
	c.Persist(t.p.base.Add(offTxCount), 8)
}

// TxRecover rolls back an uncommitted transaction. Called by every
// recovery path before the structure is used.
func (p *Pool) TxRecover() {
	c := p.c
	n := c.Load64(p.base.Add(offTxCount))
	if n == 0 {
		return
	}
	c.Assert(n <= txMaxEntry, "obj.c:1523: undo log count %d corrupt", n)
	for i := n; i > 0; i-- {
		entry := p.base.Add(offTxLog + (i-1)*txEntrySize)
		addr := c.LoadPtr(entry)
		size := c.Load64(entry.Add(8))
		c.Assert(size > 0 && size <= txDataMax,
			"obj.c:1523: undo entry %d has corrupt size %d", i-1, size)
		// A corrupt address is dereferenced just like libpmemobj would —
		// the "Illegal memory access at obj.c:1528" symptom.
		for b := uint64(0); b < size; b++ {
			c.Store8(addr.Add(b), c.Load8(entry.Add(16+b)))
		}
		c.Persist(addr, size)
	}
	c.Store64(p.base.Add(offTxCount), 0)
	c.Persist(p.base.Add(offTxCount), 8)
}
