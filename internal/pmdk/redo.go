package pmdk

import "jaaru/internal/core"

// Redo-log transactions — the second libpmemobj logging strategy. Where
// the undo log captures OLD values before mutation (and rolls back on
// recovery), the redo log stages NEW values away from the data and applies
// them forward:
//
//  1. RedoSet(addr, val): append ⟨addr, newVal⟩ to the log (no data write).
//  2. RedoCommit: persist the staged entries, then persist the entry count
//     (the commit store), then apply the entries to the data in place,
//     persist the data, and clear the count.
//
// Recovery (RedoRecover) rolls FORWARD: a nonzero persisted count means
// the transaction committed, so its entries are (re)applied — application
// is idempotent. A crash before the count persisted leaves the data
// untouched.
//
// The redo log shares the root-area log region with the undo log; a pool
// uses one style at a time (as libpmemobj lanes do).

const redoEntrySize = 16 // addr (8), value (8) — 64-bit granularity

// RedoTx is an open redo transaction.
type RedoTx struct {
	p       *Pool
	staged  []txRange // addresses staged, for the apply pass
	applied bool
}

// RedoBegin opens a redo transaction. Any committed-but-unapplied log must
// have been recovered first.
func (p *Pool) RedoBegin() *RedoTx {
	c := p.c
	c.Assert(c.Load64(p.base.Add(offTxCount)) == 0,
		"redo.c:88: transaction started with a committed, unapplied redo log")
	return &RedoTx{p: p}
}

// Set stages a 64-bit write. The data location is not touched until commit.
func (t *RedoTx) Set(addr core.Addr, val uint64) {
	c := t.p.c
	c.Assert(!t.applied, "redo.c:88: Set after commit")
	n := uint64(len(t.staged))
	c.Assert(n < txMaxEntry, "redo log full (%d entries)", n)
	entry := t.p.base.Add(offTxLog + n*redoEntrySize)
	c.StorePtr(entry, addr)
	c.Store64(entry.Add(8), val)
	t.staged = append(t.staged, txRange{addr: addr, size: 8})
}

// Commit persists the staged entries, publishes them with the count commit
// store, applies them to the data, and retires the log.
func (t *RedoTx) Commit() {
	c := t.p.c
	n := uint64(len(t.staged))
	if n == 0 {
		return
	}
	c.Persist(t.p.base.Add(offTxLog), n*redoEntrySize)
	c.Store64(t.p.base.Add(offTxCount), n) // commit store
	c.Persist(t.p.base.Add(offTxCount), 8)
	t.p.redoApply()
	t.applied = true
}

// redoApply replays the committed log onto the data and clears the count.
// Idempotent: safe to re-run from any crash point.
func (p *Pool) redoApply() {
	c := p.c
	n := c.Load64(p.base.Add(offTxCount))
	for i := uint64(0); i < n; i++ {
		entry := p.base.Add(offTxLog + i*redoEntrySize)
		addr := c.LoadPtr(entry)
		val := c.Load64(entry.Add(8))
		// A garbage address here means the entries were not persisted
		// before the count — dereferenced exactly as libpmemobj would.
		c.Store64(addr, val)
		c.Persist(addr, 8)
	}
	c.Store64(p.base.Add(offTxCount), 0)
	c.Persist(p.base.Add(offTxCount), 8)
}

// RedoRecover rolls a committed redo log forward. Called by recovery paths
// of redo-style pools before the structure is used.
func (p *Pool) RedoRecover() {
	c := p.c
	n := c.Load64(p.base.Add(offTxCount))
	if n == 0 {
		return
	}
	c.Assert(n <= txMaxEntry, "redo.c:88: redo log count %d corrupt", n)
	p.redoApply()
}
