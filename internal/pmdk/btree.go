package pmdk

import "jaaru/internal/core"

// BTree is the analog of PMDK's btree_map example: an order-4 B-tree with
// (key, value) pairs in every node, made failure-atomic with undo-log
// transactions. Figure 12's bug #1 ("Illegal memory access at
// btree_map.c:89") is seeded by NoNodeFlush: a split links a sibling node
// whose contents were never persisted, so post-failure traversal descends
// through a garbage pointer.

const (
	btMaxKeys  = 3
	btNodeSize = 96

	btOffN        = 0
	btOffLeaf     = 8
	btOffKeys     = 16 // 3 × 8
	btOffVals     = 40 // 3 × 8
	btOffChildren = 64 // 4 × 8
)

// BTreeBugs selects seeded btree bugs.
type BTreeBugs struct {
	// NoNodeFlush skips persisting newly created nodes before they are
	// linked into the tree — PMDK bug #1.
	NoNodeFlush bool
	// Tx seeds bugs in the underlying transaction layer.
	Tx TxBugs
	// Heap seeds bugs in the persistent allocator.
	Heap HeapBugs
}

// BTree is a handle to the persistent B-tree rooted at the pool's root
// object.
type BTree struct {
	p    *Pool
	bugs BTreeBugs
}

// NewBTree binds a B-tree handle to a pool.
func NewBTree(p *Pool, bugs BTreeBugs) *BTree { return &BTree{p: p, bugs: bugs} }

func (t *BTree) c() *core.Context { return t.p.c }

func (t *BTree) newNode(leaf bool) core.Addr {
	n := t.p.PAlloc(btNodeSize, t.bugs.Heap)
	if leaf {
		t.c().Store64(n.Add(btOffLeaf), 1)
	}
	return n
}

// persistNew persists a freshly initialized node (before linking). The
// NoNodeFlush bug omits it.
func (t *BTree) persistNew(n core.Addr) {
	if !t.bugs.NoNodeFlush {
		t.c().Persist(n, btNodeSize)
	}
}

func (t *BTree) nKeys(n core.Addr) uint64 { return t.c().Load64(n.Add(btOffN)) }
func (t *BTree) isLeaf(n core.Addr) bool  { return t.c().Load64(n.Add(btOffLeaf)) != 0 }
func (t *BTree) key(n core.Addr, i uint64) uint64 {
	return t.c().Load64(n.Add(btOffKeys + 8*i))
}
func (t *BTree) val(n core.Addr, i uint64) uint64 {
	return t.c().Load64(n.Add(btOffVals + 8*i))
}
func (t *BTree) child(n core.Addr, i uint64) core.Addr {
	return t.c().LoadPtr(n.Add(btOffChildren + 8*i))
}

// txAddNode logs a whole node (two undo entries: the 64-byte limit).
func (t *BTree) txAddNode(tx *Tx, n core.Addr) {
	tx.AddSkippable(n, 64)
	tx.AddSkippable(n.Add(64), btNodeSize-64)
}

// Insert adds or updates a key failure-atomically.
func (t *BTree) Insert(key, value uint64) {
	c := t.c()
	tx := t.p.TxBegin(t.bugs.Tx)
	root := t.p.RootObj()
	if root == 0 {
		leaf := t.newNode(true)
		c.Store64(leaf.Add(btOffKeys), key)
		c.Store64(leaf.Add(btOffVals), value)
		c.Store64(leaf.Add(btOffN), 1)
		t.persistNew(leaf)
		tx.Add(t.p.RootObjAddr(), 8)
		c.StorePtr(t.p.RootObjAddr(), leaf)
		tx.Commit()
		return
	}
	if t.nKeys(root) == btMaxKeys {
		nr := t.newNode(false)
		c.StorePtr(nr.Add(btOffChildren), root)
		t.persistNew(nr)
		t.splitChild(tx, nr, 0)
		tx.Add(t.p.RootObjAddr(), 8)
		c.StorePtr(t.p.RootObjAddr(), nr)
		root = nr
	}
	t.insertNonFull(tx, root, key, value)
	tx.Commit()
}

// splitChild splits the full child at index i of parent, moving the median
// pair up into parent.
func (t *BTree) splitChild(tx *Tx, parent core.Addr, i uint64) {
	c := t.c()
	child := t.child(parent, i)
	leaf := t.isLeaf(child)

	sib := t.newNode(leaf)
	// The right key (index 2) moves to the sibling.
	c.Store64(sib.Add(btOffKeys), t.key(child, 2))
	c.Store64(sib.Add(btOffVals), t.val(child, 2))
	if !leaf {
		c.StorePtr(sib.Add(btOffChildren), t.child(child, 2))
		c.StorePtr(sib.Add(btOffChildren+8), t.child(child, 3))
	}
	c.Store64(sib.Add(btOffN), 1)
	t.persistNew(sib)

	midKey, midVal := t.key(child, 1), t.val(child, 1)

	t.txAddNode(tx, parent)
	n := t.nKeys(parent)
	for j := n; j > i; j-- {
		c.Store64(parent.Add(btOffKeys+8*j), t.key(parent, j-1))
		c.Store64(parent.Add(btOffVals+8*j), t.val(parent, j-1))
	}
	for j := n + 1; j > i+1; j-- {
		c.StorePtr(parent.Add(btOffChildren+8*j), t.child(parent, j-1))
	}
	c.Store64(parent.Add(btOffKeys+8*i), midKey)
	c.Store64(parent.Add(btOffVals+8*i), midVal)
	c.StorePtr(parent.Add(btOffChildren+8*(i+1)), sib)
	c.Store64(parent.Add(btOffN), n+1)

	// Truncate the child to its left key.
	tx.AddSkippable(child.Add(btOffN), 8)
	c.Store64(child.Add(btOffN), 1)
}

func (t *BTree) insertNonFull(tx *Tx, node core.Addr, key, value uint64) {
	c := t.c()
	for {
		n := t.nKeys(node)
		// Existing key anywhere in this node: update in place.
		for i := uint64(0); i < n; i++ {
			if t.key(node, i) == key {
				tx.Add(node.Add(btOffVals+8*i), 8)
				c.Store64(node.Add(btOffVals+8*i), value)
				return
			}
		}
		if t.isLeaf(node) {
			t.txAddNode(tx, node)
			i := n
			for i > 0 && t.key(node, i-1) > key {
				c.Store64(node.Add(btOffKeys+8*i), t.key(node, i-1))
				c.Store64(node.Add(btOffVals+8*i), t.val(node, i-1))
				i--
			}
			c.Store64(node.Add(btOffKeys+8*i), key)
			c.Store64(node.Add(btOffVals+8*i), value)
			c.Store64(node.Add(btOffN), n+1)
			return
		}
		i := uint64(0)
		for i < n && key > t.key(node, i) {
			i++
		}
		childAddr := t.child(node, i)
		if t.nKeys(childAddr) == btMaxKeys {
			t.splitChild(tx, node, i)
			if key == t.key(node, i) {
				tx.Add(node.Add(btOffVals+8*i), 8)
				c.Store64(node.Add(btOffVals+8*i), value)
				return
			}
			if key > t.key(node, i) {
				i++
			}
			childAddr = t.child(node, i)
		}
		node = childAddr
	}
}

// Lookup returns the value stored for key.
func (t *BTree) Lookup(key uint64) (uint64, bool) {
	node := t.p.RootObj()
	for node != 0 {
		n := t.nKeys(node)
		i := uint64(0)
		for i < n && key > t.key(node, i) {
			i++
		}
		if i < n && t.key(node, i) == key {
			v := t.val(node, i)
			if v == btTombstone {
				return 0, false
			}
			return v, true
		}
		if t.isLeaf(node) {
			return 0, false
		}
		node = t.child(node, i)
	}
	return 0, false
}

// Check walks the whole tree validating structural invariants — the
// recovery-time sanity pass. Corrupt nodes manifest as the paper's
// btree_map.c:89 symptoms (assertion or a wild child dereference).
func (t *BTree) Check() int {
	root := t.p.RootObj()
	if root == 0 {
		return 0
	}
	return t.checkNode(root, 0, ^uint64(0), 0)
}

func (t *BTree) checkNode(node core.Addr, lo, hi uint64, depth int) int {
	c := t.c()
	c.Assert(depth < 32, "btree_map.c:89: tree depth exceeds 32 (cycle?)")
	n := t.nKeys(node)
	leafWord := c.Load64(node.Add(btOffLeaf))
	c.Assert(n >= 1 && n <= btMaxKeys, "btree_map.c:89: node %v has %d keys", node, n)
	c.Assert(leafWord <= 1, "btree_map.c:89: node %v has leaf flag %d", node, leafWord)
	count := 0
	prev := lo
	for i := uint64(0); i < n; i++ {
		k := t.key(node, i)
		c.Assert(k >= prev && k < hi, "btree_map.c:89: key %d out of order in node %v", k, node)
		prev = k + 1
		if t.val(node, i) != btTombstone {
			count++
		}
	}
	if leafWord == 0 {
		for i := uint64(0); i <= n; i++ {
			childLo, childHi := lo, hi
			if i > 0 {
				childLo = t.key(node, i-1) + 1
			}
			if i < n {
				childHi = t.key(node, i)
			}
			// A garbage pointer is dereferenced, like btree_map.c:89.
			count += t.checkNode(t.child(node, i), childLo, childHi, depth+1)
		}
	}
	return count
}

// btTombstone marks a deleted value. Deletion is "lazy", as in several PM
// tree designs: the key stays in place and its value slot is overwritten —
// a single logged 8-byte write, trivially failure-atomic — and a later
// Insert of the same key revives it. The sentinel restricts user values to
// anything but ^uint64(0).
const btTombstone = ^uint64(0)

// Delete removes a key failure-atomically, reporting whether it was
// present.
func (t *BTree) Delete(key uint64) bool {
	c := t.c()
	node := t.p.RootObj()
	for node != 0 {
		n := t.nKeys(node)
		i := uint64(0)
		for i < n && key > t.key(node, i) {
			i++
		}
		if i < n && t.key(node, i) == key {
			if t.val(node, i) == btTombstone {
				return false
			}
			tx := t.p.TxBegin(t.bugs.Tx)
			tx.Add(node.Add(btOffVals+8*i), 8)
			c.Store64(node.Add(btOffVals+8*i), btTombstone)
			tx.Commit()
			return true
		}
		if t.isLeaf(node) {
			return false
		}
		node = t.child(node, i)
	}
	return false
}
