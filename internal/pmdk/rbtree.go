package pmdk

import "jaaru/internal/core"

// RBTree is the analog of PMDK's rbtree_map example: a red-black tree with
// parent pointers, made failure-atomic with undo transactions. Figure 12's
// bug #7 ("Illegal memory access at rbtree_map.c:137" / Figure 16's
// "Assertion failure at tx.c:1678") is seeded with Tx.SkipAdd applied to
// the rotation updates: a crash mid-insert leaves a partially persisted
// rotation that the recovery walk rejects.

const (
	rbNodeSize = 48

	rbOffKey    = 0
	rbOffVal    = 8
	rbOffLeft   = 16
	rbOffRight  = 24
	rbOffParent = 32
	rbOffColor  = 40

	rbBlack = 0
	rbRed   = 1
)

// RBTreeBugs selects seeded red-black tree bugs.
type RBTreeBugs struct {
	// Tx seeds transaction bugs; SkipAdd drops the undo entries of
	// rotation pointer updates (bug #7).
	Tx TxBugs
	// Heap seeds allocator bugs.
	Heap HeapBugs
	// NoNodeFlush skips persisting new nodes before linking.
	NoNodeFlush bool
}

// RBTree is a handle to the persistent red-black tree rooted at the pool's
// root object.
type RBTree struct {
	p    *Pool
	bugs RBTreeBugs
}

// NewRBTree binds a red-black tree handle to a pool.
func NewRBTree(p *Pool, bugs RBTreeBugs) *RBTree { return &RBTree{p: p, bugs: bugs} }

func (t *RBTree) c() *core.Context { return t.p.c }

func (t *RBTree) get(n core.Addr, off uint64) uint64    { return t.c().Load64(n.Add(off)) }
func (t *RBTree) ptr(n core.Addr, off uint64) core.Addr { return t.c().LoadPtr(n.Add(off)) }

// set performs a fully logged field update.
func (t *RBTree) set(tx *Tx, n core.Addr, off uint64, v uint64) {
	tx.Add(n.Add(off), 8)
	t.c().Store64(n.Add(off), v)
}

// setRot performs a rotation field update whose undo entry is dropped by
// the SkipAdd bug.
func (t *RBTree) setRot(tx *Tx, n core.Addr, off uint64, v uint64) {
	tx.AddSkippable(n.Add(off), 8)
	t.c().Store64(n.Add(off), v)
}

func (t *RBTree) root() core.Addr { return t.p.RootObj() }

func (t *RBTree) setRootPtr(tx *Tx, n core.Addr) {
	tx.Add(t.p.RootObjAddr(), 8)
	t.c().StorePtr(t.p.RootObjAddr(), n)
}

func (t *RBTree) color(n core.Addr) uint64 {
	if n == 0 {
		return rbBlack
	}
	return t.get(n, rbOffColor)
}

// rotateLeft rotates n's right child above it.
func (t *RBTree) rotateLeft(tx *Tx, n core.Addr) {
	r := t.ptr(n, rbOffRight)
	rl := t.ptr(r, rbOffLeft)
	parent := t.ptr(n, rbOffParent)

	t.setRot(tx, n, rbOffRight, uint64(rl))
	if rl != 0 {
		t.setRot(tx, rl, rbOffParent, uint64(n))
	}
	t.setRot(tx, r, rbOffParent, uint64(parent))
	if parent == 0 {
		t.setRootPtr(tx, r)
	} else if t.ptr(parent, rbOffLeft) == n {
		t.setRot(tx, parent, rbOffLeft, uint64(r))
	} else {
		t.setRot(tx, parent, rbOffRight, uint64(r))
	}
	t.setRot(tx, r, rbOffLeft, uint64(n))
	t.setRot(tx, n, rbOffParent, uint64(r))
}

// rotateRight is the mirror of rotateLeft.
func (t *RBTree) rotateRight(tx *Tx, n core.Addr) {
	l := t.ptr(n, rbOffLeft)
	lr := t.ptr(l, rbOffRight)
	parent := t.ptr(n, rbOffParent)

	t.setRot(tx, n, rbOffLeft, uint64(lr))
	if lr != 0 {
		t.setRot(tx, lr, rbOffParent, uint64(n))
	}
	t.setRot(tx, l, rbOffParent, uint64(parent))
	if parent == 0 {
		t.setRootPtr(tx, l)
	} else if t.ptr(parent, rbOffLeft) == n {
		t.setRot(tx, parent, rbOffLeft, uint64(l))
	} else {
		t.setRot(tx, parent, rbOffRight, uint64(l))
	}
	t.setRot(tx, l, rbOffRight, uint64(n))
	t.setRot(tx, n, rbOffParent, uint64(l))
}

// Insert adds or updates a key failure-atomically.
func (t *RBTree) Insert(key, value uint64) {
	c := t.c()
	tx := t.p.TxBegin(t.bugs.Tx)

	// BST descent.
	var parent core.Addr
	node := t.root()
	for node != 0 {
		k := t.get(node, rbOffKey)
		if k == key {
			t.set(tx, node, rbOffVal, value)
			tx.Commit()
			return
		}
		parent = node
		if key < k {
			node = t.ptr(node, rbOffLeft)
		} else {
			node = t.ptr(node, rbOffRight)
		}
	}

	n := t.p.PAlloc(rbNodeSize, t.bugs.Heap)
	c.Store64(n.Add(rbOffKey), key)
	c.Store64(n.Add(rbOffVal), value)
	c.Store64(n.Add(rbOffParent), uint64(parent))
	c.Store64(n.Add(rbOffColor), rbRed)
	if !t.bugs.NoNodeFlush {
		c.Persist(n, rbNodeSize)
	}

	if parent == 0 {
		t.setRootPtr(tx, n)
	} else if key < t.get(parent, rbOffKey) {
		t.set(tx, parent, rbOffLeft, uint64(n))
	} else {
		t.set(tx, parent, rbOffRight, uint64(n))
	}

	// Fixup.
	z := n
	for {
		p := t.ptr(z, rbOffParent)
		if p == 0 || t.color(p) == rbBlack {
			break
		}
		g := t.ptr(p, rbOffParent)
		if g == 0 {
			break
		}
		if p == t.ptr(g, rbOffLeft) {
			u := t.ptr(g, rbOffRight)
			if t.color(u) == rbRed {
				t.set(tx, p, rbOffColor, rbBlack)
				t.set(tx, u, rbOffColor, rbBlack)
				t.set(tx, g, rbOffColor, rbRed)
				z = g
				continue
			}
			if z == t.ptr(p, rbOffRight) {
				z = p
				t.rotateLeft(tx, z)
				p = t.ptr(z, rbOffParent)
			}
			t.set(tx, p, rbOffColor, rbBlack)
			t.set(tx, g, rbOffColor, rbRed)
			t.rotateRight(tx, g)
		} else {
			u := t.ptr(g, rbOffLeft)
			if t.color(u) == rbRed {
				t.set(tx, p, rbOffColor, rbBlack)
				t.set(tx, u, rbOffColor, rbBlack)
				t.set(tx, g, rbOffColor, rbRed)
				z = g
				continue
			}
			if z == t.ptr(p, rbOffLeft) {
				z = p
				t.rotateRight(tx, z)
				p = t.ptr(z, rbOffParent)
			}
			t.set(tx, p, rbOffColor, rbBlack)
			t.set(tx, g, rbOffColor, rbRed)
			t.rotateLeft(tx, g)
		}
	}
	root := t.root()
	if t.color(root) != rbBlack {
		t.set(tx, root, rbOffColor, rbBlack)
	}
	tx.Commit()
}

// Lookup returns the value stored for key.
func (t *RBTree) Lookup(key uint64) (uint64, bool) {
	node := t.root()
	for node != 0 {
		k := t.get(node, rbOffKey)
		if k == key {
			return t.get(node, rbOffVal), true
		}
		if key < k {
			node = t.ptr(node, rbOffLeft)
		} else {
			node = t.ptr(node, rbOffRight)
		}
	}
	return 0, false
}

// Check validates the red-black invariants (BST order, parent links, no
// red-red edge, equal black heights) and returns the node count.
func (t *RBTree) Check() int {
	root := t.root()
	if root == 0 {
		return 0
	}
	c := t.c()
	c.Assert(t.ptr(root, rbOffParent) == 0, "rbtree_map.c:137: root has a parent")
	c.Assert(t.color(root) == rbBlack, "rbtree_map.c:137: root is red")
	count, _ := t.checkNode(root, 0, ^uint64(0), 0)
	return count
}

func (t *RBTree) checkNode(node core.Addr, lo, hi uint64, depth int) (count, blackHeight int) {
	c := t.c()
	c.Assert(depth < 64, "rbtree_map.c:137: depth exceeds 64 (cycle?)")
	k := t.get(node, rbOffKey)
	c.Assert(k >= lo && k < hi, "rbtree_map.c:137: key %d violates BST order", k)
	col := t.get(node, rbOffColor)
	c.Assert(col == rbRed || col == rbBlack, "rbtree_map.c:137: node %v has color %d", node, col)
	l, r := t.ptr(node, rbOffLeft), t.ptr(node, rbOffRight)
	count, blackHeight = 1, 0
	var lh, rh int
	if l != 0 {
		c.Assert(t.ptr(l, rbOffParent) == node,
			"rbtree_map.c:137: left child of %v has wrong parent", node)
		c.Assert(!(col == rbRed && t.color(l) == rbRed), "rbtree_map.c:137: red-red edge")
		var lc int
		lc, lh = t.checkNode(l, lo, k, depth+1)
		count += lc
	}
	if r != 0 {
		c.Assert(t.ptr(r, rbOffParent) == node,
			"rbtree_map.c:137: right child of %v has wrong parent", node)
		c.Assert(!(col == rbRed && t.color(r) == rbRed), "rbtree_map.c:137: red-red edge")
		var rc int
		rc, rh = t.checkNode(r, k+1, hi, depth+1)
		count += rc
	}
	c.Assert(lh == rh, "rbtree_map.c:137: black height mismatch %d vs %d under %v", lh, rh, node)
	blackHeight = lh
	if col == rbBlack {
		blackHeight++
	}
	return count, blackHeight
}
