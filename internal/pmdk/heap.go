package pmdk

import "jaaru/internal/core"

// The persistent heap: a bump allocator whose metadata (the bump pointer
// and per-object headers) lives in persistent memory and is validated
// during recovery, like PMDK's palloc/heap layer. Crashing between the
// metadata updates of a buggy allocation leaves the heap in a state the
// recovery check rejects — the source of PMDK bugs #3 and #5 (Figure 12).

const (
	objHeaderSize = 16 // size (8) + state (8)

	objStateAllocated = 0xA11C
)

// HeapBugs selects seeded allocator bugs.
type HeapBugs struct {
	// NoHeaderFlush skips persisting the object header before the bump
	// pointer moves past it (PMDK bug #3: "Assertion failure at
	// heap.c:533").
	NoHeaderFlush bool
	// NoBumpFlush skips persisting the bump pointer itself; a later
	// allocation after recovery can overlap a live object (PMDK bug #5:
	// "Assertion failure at pmalloc.c:270").
	NoBumpFlush bool
}

// PAlloc allocates size bytes from the pool's persistent heap and returns
// the payload address. The fixed protocol is: write the object header,
// persist it, then move and persist the bump pointer — so the recovery walk
// always sees a consistent prefix of headers.
func (p *Pool) PAlloc(size uint64, bugs HeapBugs) core.Addr {
	c := p.c
	size = (size + 7) &^ 7
	bump := c.LoadPtr(p.base.Add(offBump))
	arena := c.LoadPtr(p.base.Add(offArena))
	arenaSz := c.Load64(p.base.Add(offArenaSz))
	c.Assert(bump != 0 && bump >= arena, "pmalloc.c:270: bump pointer %v outside arena", bump)
	if bump.Add(objHeaderSize+size) > arena.Add(arenaSz) {
		c.Bug("persistent heap exhausted (%d bytes requested)", size)
	}
	obj := bump
	c.Store64(obj, size)
	c.Store64(obj.Add(8), objStateAllocated)
	if !bugs.NoHeaderFlush {
		c.Persist(obj, objHeaderSize)
	}
	newBump := obj.Add(objHeaderSize + size)
	c.StorePtr(p.base.Add(offBump), newBump)
	if !bugs.NoBumpFlush {
		c.Persist(p.base.Add(offBump), 8)
	}
	// Zero the payload: a crash between the header and bump persists can
	// leave a reserved-but-uncommitted object to be reused after recovery,
	// so fresh allocations must not expose stale contents.
	payload := obj.Add(objHeaderSize)
	for off := uint64(0); off < size; off += 8 {
		c.Store64(payload.Add(off), 0)
	}
	return payload
}

// HeapCheck walks the persistent heap from the arena base to the bump
// pointer, validating every object header — the recovery-time consistency
// check of the heap layer. Its assertion labels match the paper's PMDK
// symptoms.
func (p *Pool) HeapCheck() {
	c := p.c
	arena := c.LoadPtr(p.base.Add(offArena))
	arenaSz := c.Load64(p.base.Add(offArenaSz))
	bump := c.LoadPtr(p.base.Add(offBump))
	c.Assert(bump >= arena && bump <= arena.Add(arenaSz),
		"pmalloc.c:270: recovered bump pointer %v outside arena [%v, %v)",
		bump, arena, arena.Add(arenaSz))
	cur := arena
	for cur < bump {
		size := c.Load64(cur)
		state := c.Load64(cur.Add(8))
		c.Assert(state == objStateAllocated,
			"heap.c:533: object at %v has invalid state %#x", cur, state)
		c.Assert(size > 0 && size%8 == 0 && cur.Add(objHeaderSize+size) <= bump,
			"heap.c:533: object at %v has invalid size %d", cur, size)
		cur = cur.Add(objHeaderSize + size)
	}
}

// HeapContains reports whether a payload address lies within the allocated
// part of the persistent heap.
func (p *Pool) HeapContains(a core.Addr) bool {
	c := p.c
	arena := c.LoadPtr(p.base.Add(offArena))
	bump := c.LoadPtr(p.base.Add(offBump))
	return a >= arena && a < bump
}
