package pmdk

import "jaaru/internal/core"

// CTree is the analog of PMDK's ctree_map example: a crit-bit tree whose
// internal nodes test one bit of the key. Bit indices strictly decrease
// along every path. All mutations are transactional; Figure 12's bug #4
// ("Assertion failure at obj.c:1523") is seeded through the transaction
// layer's CountBeforeEntry knob.

const (
	ctNodeSize = 32

	ctOffKind = 0  // 1 = leaf, 2 = internal
	ctOffA    = 8  // leaf: key;   internal: bit index
	ctOffB    = 16 // leaf: value; internal: child 0
	ctOffC    = 24 // leaf: —;     internal: child 1

	ctLeaf     = 1
	ctInternal = 2
)

// CTreeBugs selects seeded crit-bit tree bugs.
type CTreeBugs struct {
	// NoNodeFlush skips persisting new nodes before linking.
	NoNodeFlush bool
	// Tx seeds bugs in the transaction layer.
	Tx TxBugs
	// Heap seeds bugs in the persistent allocator.
	Heap HeapBugs
}

// CTree is a handle to the persistent crit-bit tree rooted at the pool's
// root object.
type CTree struct {
	p    *Pool
	bugs CTreeBugs
}

// NewCTree binds a crit-bit tree handle to a pool.
func NewCTree(p *Pool, bugs CTreeBugs) *CTree { return &CTree{p: p, bugs: bugs} }

func (t *CTree) c() *core.Context { return t.p.c }

func (t *CTree) newLeaf(key, value uint64) core.Addr {
	c := t.c()
	n := t.p.PAlloc(ctNodeSize, t.bugs.Heap)
	c.Store64(n.Add(ctOffKind), ctLeaf)
	c.Store64(n.Add(ctOffA), key)
	c.Store64(n.Add(ctOffB), value)
	if !t.bugs.NoNodeFlush {
		c.Persist(n, ctNodeSize)
	}
	return n
}

func (t *CTree) kind(n core.Addr) uint64 { return t.c().Load64(n.Add(ctOffKind)) }

// Insert adds or updates a key failure-atomically.
func (t *CTree) Insert(key, value uint64) {
	c := t.c()
	tx := t.p.TxBegin(t.bugs.Tx)
	root := t.p.RootObj()
	if root == 0 {
		leaf := t.newLeaf(key, value)
		tx.Add(t.p.RootObjAddr(), 8)
		c.StorePtr(t.p.RootObjAddr(), leaf)
		tx.Commit()
		return
	}

	// Walk to the leaf this key would reach.
	node := root
	for t.kind(node) == ctInternal {
		bit := c.Load64(node.Add(ctOffA))
		if key>>bit&1 == 0 {
			node = c.LoadPtr(node.Add(ctOffB))
		} else {
			node = c.LoadPtr(node.Add(ctOffC))
		}
	}
	leafKey := c.Load64(node.Add(ctOffA))
	if leafKey == key {
		tx.Add(node.Add(ctOffB), 8)
		c.Store64(node.Add(ctOffB), value)
		tx.Commit()
		return
	}

	// Highest differing bit decides where the new internal node goes.
	diff := uint64(63)
	for (leafKey^key)>>diff&1 == 0 {
		diff--
	}

	newLeaf := t.newLeaf(key, value)
	inner := t.p.PAlloc(ctNodeSize, t.bugs.Heap)
	c.Store64(inner.Add(ctOffKind), ctInternal)
	c.Store64(inner.Add(ctOffA), diff)

	// Descend again to the link where bit indices stop dominating diff.
	linkAddr := t.p.RootObjAddr()
	node = root
	for t.kind(node) == ctInternal && c.Load64(node.Add(ctOffA)) > diff {
		bit := c.Load64(node.Add(ctOffA))
		if key>>bit&1 == 0 {
			linkAddr = node.Add(ctOffB)
		} else {
			linkAddr = node.Add(ctOffC)
		}
		node = c.LoadPtr(linkAddr)
	}
	if key>>diff&1 == 0 {
		c.StorePtr(inner.Add(ctOffB), newLeaf)
		c.StorePtr(inner.Add(ctOffC), node)
	} else {
		c.StorePtr(inner.Add(ctOffB), node)
		c.StorePtr(inner.Add(ctOffC), newLeaf)
	}
	if !t.bugs.NoNodeFlush {
		c.Persist(inner, ctNodeSize)
	}
	tx.AddSkippable(linkAddr, 8)
	c.StorePtr(linkAddr, inner)
	tx.Commit()
}

// Lookup returns the value stored for key.
func (t *CTree) Lookup(key uint64) (uint64, bool) {
	c := t.c()
	node := t.p.RootObj()
	if node == 0 {
		return 0, false
	}
	for t.kind(node) == ctInternal {
		bit := c.Load64(node.Add(ctOffA))
		if key>>bit&1 == 0 {
			node = c.LoadPtr(node.Add(ctOffB))
		} else {
			node = c.LoadPtr(node.Add(ctOffC))
		}
	}
	if c.Load64(node.Add(ctOffA)) == key {
		return c.Load64(node.Add(ctOffB)), true
	}
	return 0, false
}

// Check walks the tree validating crit-bit invariants and returns the leaf
// count.
func (t *CTree) Check() int {
	root := t.p.RootObj()
	if root == 0 {
		return 0
	}
	return t.checkNode(root, 64, 0)
}

func (t *CTree) checkNode(node core.Addr, parentBit uint64, depth int) int {
	c := t.c()
	c.Assert(depth < 70, "ctree_map.c:103: tree depth exceeds key width (cycle?)")
	switch t.kind(node) {
	case ctLeaf:
		return 1
	case ctInternal:
		bit := c.Load64(node.Add(ctOffA))
		c.Assert(bit < parentBit, "ctree_map.c:103: bit index %d under parent bit %d", bit, parentBit)
		l := c.LoadPtr(node.Add(ctOffB))
		r := c.LoadPtr(node.Add(ctOffC))
		c.Assert(l != 0 && r != 0, "ctree_map.c:103: internal node %v has a null child", node)
		return t.checkNode(l, bit, depth+1) + t.checkNode(r, bit, depth+1)
	default:
		c.Assert(false, "ctree_map.c:103: node %v has invalid kind %d", node, t.kind(node))
		return 0
	}
}
