// Package yat reproduces the eager model checking baseline the paper
// compares against (Yat, Lantz et al., USENIX ATC 2014). Yat enumerates, at
// every failure point, every legal post-failure persistent-memory state
// before running recovery — the approach whose state count grows
// exponentially with the number of unflushed stores.
//
// Like the paper (Yat is not publicly available), the state counts of
// Figure 14 are computed analytically: at each failure point the number of
// legal states is the product over dirty cache lines of (stores since the
// line's last flush + 1), and the total is the sum over failure points.
// Unlike the paper, this package also implements a real bounded eager
// explorer used as ground truth: on programs small enough to enumerate, the
// set of post-failure behaviours Jaaru discovers lazily must equal the set
// the eager explorer materializes.
package yat

import (
	"fmt"
	"math"
	"math/big"

	"jaaru/internal/core"
	"jaaru/internal/pmem"
)

// CountResult is the analytic Yat cost of exhaustively checking a program.
type CountResult struct {
	// FailurePoints is the number of failure injection points considered
	// (matching Jaaru's, including the end-of-run point).
	FailurePoints int
	// States is the total number of post-failure states Yat would explore:
	// Σ over failure points of Π over dirty lines of (dirty stores + 1).
	States *big.Int
	// MaxPerPoint is the largest per-point state count.
	MaxPerPoint *big.Int
	// MaxDirtyLines is the largest number of simultaneously dirty lines.
	MaxDirtyLines int
}

// Sci renders the state count in the paper's scientific notation
// (e.g. "1.93e605").
func (r *CountResult) Sci() string { return Sci(r.States) }

// Sci formats a big integer as d.dde±dd (the paper prints e.g. 1.93×10^605).
func Sci(n *big.Int) string {
	if n.Sign() == 0 {
		return "0"
	}
	f := new(big.Float).SetInt(n)
	mant := new(big.Float)
	exp := f.MantExp(mant) // f = mant × 2**exp, mant in [0.5, 1)
	m, _ := mant.Float64()
	l10 := float64(exp)*math.Log10(2) + math.Log10(m)
	e := int(math.Floor(l10))
	lead := math.Pow(10, l10-float64(e))
	if lead >= 9.995 { // rounding pushed the mantissa to 10.0
		lead /= 10
		e++
	}
	return fmt.Sprintf("%.2fe%d", lead, e)
}

// CountStates runs prog's pre-failure execution once and computes the
// number of post-failure states an eager checker must explore.
func CountStates(prog core.Program, opts core.Options) *CountResult {
	res := &CountResult{States: new(big.Int), MaxPerPoint: new(big.Int)}
	opts.MaxScenarios = 1
	ck := core.New(prog, opts)
	ck.Instrument(func(s *core.Snapshot) {
		res.FailurePoints++
		per := big.NewInt(1)
		dirty := s.DirtyLines()
		if len(dirty) > res.MaxDirtyLines {
			res.MaxDirtyLines = len(dirty)
		}
		for _, line := range dirty {
			per.Mul(per, big.NewInt(int64(len(s.Cuts(line)))))
		}
		res.States.Add(res.States, per)
		if per.Cmp(res.MaxPerPoint) > 0 {
			res.MaxPerPoint.Set(per)
		}
	})
	ck.Run()
	return res
}

// EagerResult summarizes a real eager exploration.
type EagerResult struct {
	// FailurePoints is the number of failure points enumerated.
	FailurePoints int
	// Images is the number of concrete post-failure memory images explored
	// (each with one recovery execution) — Yat's execution count.
	Images int
	// Bugs are the distinct bugs found across all recovery executions.
	Bugs []*core.BugReport
}

// ErrTooManyStates reports that the eager state space exceeds the caller's
// budget — the scalability wall the paper describes.
type ErrTooManyStates struct {
	FailurePoint int
	States       *big.Int
	Budget       int
}

func (e *ErrTooManyStates) Error() string {
	return fmt.Sprintf("yat: failure point %d has %s states, budget %d",
		e.FailurePoint, Sci(e.States), e.Budget)
}

// Eager exhaustively enumerates every legal post-failure memory image at
// every failure point of prog and runs prog.Recover on each — the Yat
// strategy. maxImages bounds the total number of recovery executions; the
// enumeration fails with ErrTooManyStates beyond it.
//
// Only single-failure scenarios are enumerated (the recovery itself is run
// without further failure injection), so results are comparable to Jaaru
// runs with MaxFailures == 1.
func Eager(prog core.Program, opts core.Options, maxImages int) (*EagerResult, error) {
	var snaps []*core.Snapshot
	countOpts := opts
	countOpts.MaxScenarios = 1
	ck := core.New(prog, countOpts)
	ck.Instrument(func(s *core.Snapshot) { snaps = append(snaps, s) })
	pre := ck.Run()
	if pre.Buggy() {
		// The pre-failure execution itself is buggy; eager exploration of
		// post-failure states is meaningless.
		return nil, fmt.Errorf("yat: pre-failure execution buggy: %v", pre.Bugs[0])
	}

	res := &EagerResult{FailurePoints: len(snaps)}
	bugKeys := make(map[string]bool)
	for _, s := range snaps {
		if err := enumerate(prog, opts, s, maxImages, res, bugKeys); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func enumerate(prog core.Program, opts core.Options, s *core.Snapshot,
	maxImages int, res *EagerResult, bugKeys map[string]bool) error {

	dirty := s.DirtyLines()
	cuts := make([][]pmem.Seq, len(dirty))
	total := big.NewInt(1)
	for i, line := range dirty {
		cuts[i] = s.Cuts(line)
		total.Mul(total, big.NewInt(int64(len(cuts[i]))))
	}
	if !total.IsInt64() || res.Images+int(total.Int64()) > maxImages {
		return &ErrTooManyStates{FailurePoint: s.FP, States: total, Budget: maxImages}
	}

	// Clean-line (and settled) bytes are fixed across all images.
	baseImage := make(map[pmem.Addr]byte)
	dirtySet := make(map[pmem.Addr]bool, len(dirty))
	for _, l := range dirty {
		dirtySet[l] = true
	}
	for a := range s.Queues {
		if !dirtySet[a.Line()] {
			baseImage[a] = s.ByteAt(a, pmem.SeqInf)
		}
	}

	// Odometer over per-line cut choices.
	idx := make([]int, len(dirty))
	for {
		image := make(map[pmem.Addr]byte, len(s.Queues))
		for a, v := range baseImage {
			image[a] = v
		}
		for i, line := range dirty {
			cut := cuts[i][idx[i]]
			for off := pmem.Addr(0); off < pmem.CacheLineSize; off++ {
				a := line + off
				if _, ok := s.Queues[a]; ok {
					image[a] = s.ByteAt(a, cut)
				}
			}
		}
		res.Images++
		r := core.RunRecoveryOn(prog, opts, image, s.HighWater)
		for _, b := range r.Bugs {
			k := fmt.Sprintf("%d|%s", b.Type, b.Message)
			if !bugKeys[k] {
				bugKeys[k] = true
				res.Bugs = append(res.Bugs, b)
			}
		}

		// Advance the odometer.
		i := 0
		for ; i < len(idx); i++ {
			idx[i]++
			if idx[i] < len(cuts[i]) {
				break
			}
			idx[i] = 0
		}
		if i == len(idx) {
			return nil
		}
	}
}
