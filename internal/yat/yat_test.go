package yat

import (
	"fmt"
	"math/big"
	"math/rand"
	"sort"
	"testing"

	"jaaru/internal/core"
)

func TestSci(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{0, "0"},
		{1, "1.00e0"},
		{9, "9.00e0"},
		{10, "1.00e1"},
		{1234, "1.23e3"},
		{999999, "1.00e6"},
	}
	for _, c := range cases {
		if got := Sci(big.NewInt(c.n)); got != c.want {
			t.Errorf("Sci(%d) = %q, want %q", c.n, got, c.want)
		}
	}
	// 9^16: the paper's intro example (an unflushed array of 128 ints has
	// 9^(n/8) states).
	n := new(big.Int).Exp(big.NewInt(9), big.NewInt(16), nil)
	if got := Sci(n); got != "1.85e15" {
		t.Errorf("Sci(9^16) = %q", got)
	}
}

// The paper's intro example: initialize a cache-line-aligned array of n
// 64-bit integers and crash right before its flushes — the PM has 9^(n/8)
// possible states, which is what Yat must explore. Jaaru explores almost
// none of them when recovery guards with a commit word.
func arrayProgram(n int) core.Program {
	return core.Program{
		Name: fmt.Sprintf("array-%d", n),
		Run: func(c *core.Context) {
			arr := c.AllocLine(uint64(n) * 8)
			for i := 0; i < n; i++ {
				c.Store64(arr.Add(uint64(i)*8), uint64(i)+1)
			}
			c.Clflush(arr, uint64(n)*8) // crash injected right before these
			c.StorePtr(c.Root(), arr)   // commit store
			c.Clflush(c.Root(), 8)
		},
		Recover: func(c *core.Context) {
			arr := c.LoadPtr(c.Root())
			if arr == 0 {
				return
			}
			for i := 0; i < n; i++ {
				v := c.Load64(arr.Add(uint64(i) * 8))
				c.Assert(v == uint64(i)+1, "array slot %d corrupt: %d", i, v)
			}
		},
	}
}

func TestCountStatesArray(t *testing.T) {
	// 128 integers spanning 16 lines: at the failure point right before
	// the array's flushes all 16 lines are dirty with 8 stores each, so
	// Yat's worst failure point has exactly 9^16 states.
	res := CountStates(arrayProgram(128), core.Options{})
	want := new(big.Int).Exp(big.NewInt(9), big.NewInt(16), nil)
	if res.MaxPerPoint.Cmp(want) != 0 {
		t.Errorf("MaxPerPoint = %s, want 9^16 = %s", res.MaxPerPoint, want)
	}
	if res.States.Cmp(want) < 0 {
		t.Errorf("total %s below the worst point %s", res.States, want)
	}
	if res.MaxDirtyLines != 16 {
		t.Errorf("MaxDirtyLines = %d, want 16", res.MaxDirtyLines)
	}
	// Jaaru, by contrast, explores a tiny number of executions thanks to
	// the commit store.
	jr := core.New(arrayProgram(128), core.Options{}).Run()
	if jr.Buggy() {
		t.Fatalf("bugs: %v", jr.Bugs)
	}
	if jr.Executions > 64 {
		t.Errorf("Jaaru explored %d executions; expected a tiny number vs 9^16", jr.Executions)
	}
	if res.FailurePoints == 0 {
		t.Error("no failure points counted")
	}
}

func TestEagerBudget(t *testing.T) {
	_, err := Eager(arrayProgram(128), core.Options{}, 10000)
	if err == nil {
		t.Fatal("eager exploration of 9^16 states fit in a 10k budget")
	}
	if _, ok := err.(*ErrTooManyStates); !ok {
		t.Fatalf("unexpected error type: %v", err)
	}
}

// ---- Jaaru ≡ Yat equivalence ------------------------------------------------

// randomProgram builds a deterministic pseudo-random straight-line PM
// program over a few addresses spanning two cache lines, and a recovery
// that observes every address. Jaaru's lazily explored observation set must
// equal the eager explorer's.
func randomProgram(seed int64, obs func(string)) core.Program {
	const (
		nAddrs = 5
		nOps   = 14
	)
	return core.Program{
		Name: fmt.Sprintf("rand-%d", seed),
		Run: func(c *core.Context) {
			rng := rand.New(rand.NewSource(seed))
			base := c.Root()
			addr := func(i int) core.Addr {
				// Two lines: addresses 0,8,16 on line 0; 64,72 on line 1.
				offs := []uint64{0, 8, 16, 64, 72}
				return base.Add(offs[i%nAddrs])
			}
			val := uint64(1)
			for i := 0; i < nOps; i++ {
				switch rng.Intn(6) {
				case 0, 1, 2:
					c.Store64(addr(rng.Intn(nAddrs)), val)
					val++
				case 3:
					c.Clflush(addr(rng.Intn(nAddrs)), 8)
				case 4:
					c.Clflushopt(addr(rng.Intn(nAddrs)), 8)
				case 5:
					c.Sfence()
				}
			}
		},
		Recover: func(c *core.Context) {
			base := c.Root()
			s := ""
			for _, off := range []uint64{0, 8, 16, 64, 72} {
				s += fmt.Sprintf("%d,", c.Load64(base.Add(off)))
			}
			obs(s)
		},
	}
}

func collectSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func TestJaaruMatchesYatRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		lazy := make(map[string]bool)
		jr := core.New(randomProgram(seed, func(s string) { lazy[s] = true }),
			core.Options{}).Run()
		if jr.Buggy() {
			t.Fatalf("seed %d: unexpected bugs %v", seed, jr.Bugs)
		}

		eager := make(map[string]bool)
		er, err := Eager(randomProgram(seed, func(s string) { eager[s] = true }),
			core.Options{}, 2_000_000)
		if err != nil {
			t.Fatalf("seed %d: eager: %v", seed, err)
		}

		l, e := collectSet(lazy), collectSet(eager)
		if len(l) != len(e) {
			t.Fatalf("seed %d: lazy %d states %v\n eager %d states %v",
				seed, len(l), l, len(e), e)
		}
		for i := range l {
			if l[i] != e[i] {
				t.Fatalf("seed %d: state mismatch\n lazy  %v\n eager %v", seed, l, e)
			}
		}
		if jr.Executions > er.Images+1 {
			t.Errorf("seed %d: Jaaru used %d executions, eager used %d images",
				seed, jr.Executions, er.Images)
		}
	}
}

// Both checkers must agree on bug detection for a program with a missing
// flush.
func TestJaaruMatchesYatBugFinding(t *testing.T) {
	mk := func() core.Program {
		return core.Program{
			Name: "buggy",
			Run: func(c *core.Context) {
				inner := c.AllocLine(8)
				c.Store64(inner, 42)
				// BUG: inner is never flushed.
				c.StorePtr(c.Root(), inner)
				c.Clflush(c.Root(), 8)
			},
			Recover: func(c *core.Context) {
				p := c.LoadPtr(c.Root())
				if p == 0 {
					return
				}
				c.Assert(c.Load64(p) == 42, "inner value lost")
			},
		}
	}
	jr := core.New(mk(), core.Options{}).Run()
	er, err := Eager(mk(), core.Options{}, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !jr.Buggy() {
		t.Error("Jaaru missed the missing-flush bug")
	}
	if len(er.Bugs) == 0 {
		t.Error("eager explorer missed the missing-flush bug")
	}
}

func TestCountStatesCleanProgram(t *testing.T) {
	// A program that flushes immediately after every store: each failure
	// point has exactly one dirty line with one store (the store preceding
	// the flush about to take effect).
	prog := core.Program{
		Name: "clean",
		Run: func(c *core.Context) {
			r := c.Root()
			for i := uint64(0); i < 4; i++ {
				c.Store64(r.Add(i*64), i+1)
				c.Clflush(r.Add(i*64), 8)
			}
		},
		Recover: func(c *core.Context) {},
	}
	res := CountStates(prog, core.Options{})
	if res.FailurePoints != 5 { // 4 pre-flush + end
		t.Errorf("FailurePoints = %d, want 5", res.FailurePoints)
	}
	// Each of the 4 pre-flush points has 2 states (store persisted or
	// not); the end point has 1 dirty... none (all flushed) → 1.
	want := big.NewInt(4*2 + 1)
	if res.States.Cmp(want) != 0 {
		t.Errorf("States = %s, want %s", res.States, want)
	}
}
