package fuzz

import (
	"errors"
	"testing"
)

func TestCrossCheckBasic(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		st, err := CrossCheck(Config{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if st.States == 0 {
			t.Errorf("seed %d: no states observed", seed)
		}
	}
}

func TestCrossCheckMixedSizes(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		if _, err := CrossCheck(Config{Seed: seed, MixedSizes: true, Ops: 12}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestCrossCheckWithRMW(t *testing.T) {
	for seed := int64(200); seed < 210; seed++ {
		if _, err := CrossCheck(Config{Seed: seed, RMW: true, Ops: 12}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestCrossCheckThreeLines(t *testing.T) {
	for seed := int64(300); seed < 306; seed++ {
		if _, err := CrossCheck(Config{Seed: seed, Lines: 3, WordsPerLine: 1, Ops: 10}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestCrossCheckCrossPage spans five cache lines (320 bytes — more than one
// of the paged layout's 256-byte pages), so page-boundary addressing and
// multi-page enumeration are pinned against the eager ground truth.
func TestCrossCheckCrossPage(t *testing.T) {
	for seed := int64(400); seed < 406; seed++ {
		if _, err := CrossCheck(Config{Seed: seed, Lines: 5, WordsPerLine: 1, Ops: 10}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestProgramDeterministic(t *testing.T) {
	run := func() map[string]bool {
		seen := make(map[string]bool)
		st, err := CrossCheck(Config{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		seen["x"] = st.States > 0
		return seen
	}
	_ = run()
	s1, _ := CrossCheck(Config{Seed: 42})
	s2, _ := CrossCheck(Config{Seed: 42})
	if s1 != s2 {
		t.Fatalf("non-deterministic cross-check: %+v vs %+v", s1, s2)
	}
}

func TestMismatchError(t *testing.T) {
	var err error = &Mismatch{Seed: 7, LazyOnly: []string{"a"}}
	var m *Mismatch
	if !errors.As(err, &m) || m.Seed != 7 {
		t.Fatal("Mismatch does not unwrap")
	}
	if err.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Ops == 0 || cfg.Lines == 0 || cfg.WordsPerLine == 0 || cfg.MaxImages == 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if n := len(Config{Lines: 3, WordsPerLine: 2}.withDefaults().offsets()); n != 6 {
		t.Fatalf("offsets = %d, want 6", n)
	}
}
