// Package fuzz generates random persistent-memory programs and
// cross-checks Jaaru's lazy constraint-refinement exploration against the
// eager (Yat-style) ground-truth enumeration: for every generated program,
// the set of post-failure observations discovered lazily must equal the
// set the eager explorer materializes. This operationalizes the paper's §3
// claim that lazy exploration "always exhaustively explores all the
// non-determinism that arises from the persistency of cache lines" — with
// far richer operation coverage than any hand-written test: mixed-size
// stores, clflush/clflushopt/clwb, sfence/mfence, and locked RMWs.
package fuzz

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"jaaru/internal/core"
	"jaaru/internal/yat"
)

// Config shapes the generated programs.
type Config struct {
	// Seed selects the program.
	Seed int64
	// Ops is the pre-failure operation count (default 14).
	Ops int
	// Lines is the number of cache lines the program touches (default 2;
	// the eager state space is exponential in stores per line, so keep
	// this small).
	Lines int
	// WordsPerLine is the number of 8-byte slots used per line (default 2).
	WordsPerLine int
	// MixedSizes enables 1/2/4-byte stores in addition to 8-byte ones.
	MixedSizes bool
	// RMW enables locked CAS/fetch-add operations.
	RMW bool
	// MaxImages bounds the eager enumeration (default 4 << 20).
	MaxImages int
}

func (c Config) withDefaults() Config {
	if c.Ops == 0 {
		c.Ops = 14
	}
	if c.Lines == 0 {
		c.Lines = 2
	}
	if c.WordsPerLine == 0 {
		c.WordsPerLine = 2
	}
	if c.MaxImages == 0 {
		c.MaxImages = 4 << 20
	}
	return c
}

// offsets returns the word-aligned pool offsets the program uses.
func (c Config) offsets() []uint64 {
	var out []uint64
	for l := 0; l < c.Lines; l++ {
		for w := 0; w < c.WordsPerLine; w++ {
			out = append(out, uint64(l)*64+uint64(w)*8)
		}
	}
	return out
}

// Program builds the deterministic random program for cfg. Every explored
// post-failure behaviour is reported through obs as a canonical string.
func Program(cfg Config, obs func(string)) core.Program {
	cfg = cfg.withDefaults()
	offs := cfg.offsets()
	return core.Program{
		Name: fmt.Sprintf("fuzz-%d", cfg.Seed),
		Run: func(c *core.Context) {
			rng := rand.New(rand.NewSource(cfg.Seed))
			base := c.Root()
			val := uint64(0x0101010101010101)
			pick := func() core.Addr { return base.Add(offs[rng.Intn(len(offs))]) }
			for i := 0; i < cfg.Ops; i++ {
				switch op := rng.Intn(12); {
				case op < 4: // plain 64-bit store
					c.Store64(pick(), val)
					val += 0x0101010101010101
				case op < 5 && cfg.MixedSizes:
					a := pick().Add(uint64(rng.Intn(7)))
					switch rng.Intn(3) {
					case 0:
						c.Store8(a, uint8(val))
					case 1:
						c.Store16(a.Line().Add(a.LineOffset()&^1), uint16(val))
					default:
						c.Store32(a.Line().Add(a.LineOffset()&^3), uint32(val))
					}
					val += 0x0101010101010101
				case op < 6:
					c.Clflush(pick(), 8)
				case op < 8:
					c.Clflushopt(pick(), 8)
				case op < 9:
					c.Clwb(pick(), 8)
				case op < 10:
					c.Sfence()
				case op < 11 && cfg.RMW:
					if rng.Intn(2) == 0 {
						c.CAS64(pick(), 0, val)
					} else {
						c.AtomicAdd64(pick(), 1)
					}
					val += 0x0101010101010101
				default:
					c.Mfence()
				}
			}
		},
		Recover: func(c *core.Context) {
			base := c.Root()
			var b strings.Builder
			for _, off := range offs {
				fmt.Fprintf(&b, "%x,", c.Load64(base.Add(off)))
			}
			obs(b.String())
		},
	}
}

// Mismatch describes a divergence between lazy and eager exploration.
type Mismatch struct {
	Seed      int64
	LazyOnly  []string
	EagerOnly []string
}

func (m *Mismatch) Error() string {
	return fmt.Sprintf("fuzz seed %d: lazy-only states %v, eager-only states %v",
		m.Seed, m.LazyOnly, m.EagerOnly)
}

// Stats summarizes one cross-check.
type Stats struct {
	LazyExecutions int
	EagerImages    int
	States         int
}

// CrossCheck explores the cfg program both lazily (Jaaru) and eagerly
// (Yat) and compares the observation sets. A nil error means they are
// identical.
func CrossCheck(cfg Config) (Stats, error) {
	cfg = cfg.withDefaults()
	lazy := make(map[string]bool)
	lres := core.New(Program(cfg, func(s string) { lazy[s] = true }), core.Options{}).Run()
	if lres.Buggy() {
		return Stats{}, fmt.Errorf("fuzz seed %d: lazy run buggy: %v", cfg.Seed, lres.Bugs[0])
	}

	eager := make(map[string]bool)
	eres, err := yat.Eager(Program(cfg, func(s string) { eager[s] = true }),
		core.Options{}, cfg.MaxImages)
	if err != nil {
		return Stats{}, err
	}

	var lazyOnly, eagerOnly []string
	for s := range lazy {
		if !eager[s] {
			lazyOnly = append(lazyOnly, s)
		}
	}
	for s := range eager {
		if !lazy[s] {
			eagerOnly = append(eagerOnly, s)
		}
	}
	sort.Strings(lazyOnly)
	sort.Strings(eagerOnly)
	st := Stats{LazyExecutions: lres.Executions, EagerImages: eres.Images, States: len(lazy)}
	if len(lazyOnly) != 0 || len(eagerOnly) != 0 {
		return st, &Mismatch{Seed: cfg.Seed, LazyOnly: lazyOnly, EagerOnly: eagerOnly}
	}
	return st, nil
}
