package report

import (
	"encoding/json"
	"fmt"
	"strings"

	"jaaru/internal/forensics"
)

// WitnessJSON serializes a structured witness as indented JSON (trailing
// newline included). Struct field order is fixed, so two witnesses with
// equal contents serialize byte-identically — the property the serial vs
// parallel determinism tests pin.
func WitnessJSON(w *forensics.Witness) ([]byte, error) {
	b, err := json.MarshalIndent(w, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WitnessText renders a structured witness as the annotated human-readable
// report jaaru-explain prints: decisions, the TSO-annotated operation trace,
// failure points, per-cache-line persistence timelines, and the read-from
// resolution of every post-failure load.
func WitnessText(w *forensics.Witness) string {
	var b strings.Builder

	fmt.Fprintf(&b, "witness: %s — %s: %s (execution %d)\n",
		w.Program, w.Bug.Type, w.Bug.Message, w.Bug.Execution)
	if w.Bug.Choices == "" {
		fmt.Fprintf(&b, "decisions: (none — the first scenario)\n")
	} else {
		fmt.Fprintf(&b, "decisions: %s\n", w.Bug.Choices)
	}
	if w.Reproduced {
		fmt.Fprintf(&b, "reproduced: yes\n")
	} else {
		fmt.Fprintf(&b, "reproduced: NO — replay diverged; data below is partial\n")
	}
	if m := w.Minimized; m != nil {
		fmt.Fprintf(&b, "minimized: %d -> %d decisions in %d trials\n",
			m.OriginalLen, m.MinimizedLen, m.Trials)
		if m.OriginalChoices != m.MinimizedChoices {
			fmt.Fprintf(&b, "  was: %s\n", orNone(m.OriginalChoices))
			fmt.Fprintf(&b, "  now: %s\n", orNone(m.MinimizedChoices))
		}
	}

	if len(w.Decisions) > 0 {
		fmt.Fprintf(&b, "\n")
		t := New(fmt.Sprintf("recorded decisions (%d)", len(w.Decisions)),
			"#", "kind", "chosen", "at op").AlignRight(0, 2, 3)
		for _, d := range w.Decisions {
			at := "-"
			if d.Op >= 0 {
				at = fmt.Sprintf("%d", d.Op)
			}
			t.Row(d.Index, d.Kind, fmt.Sprintf("%d/%d", d.Chosen, d.Options), at)
		}
		b.WriteString(t.String())
	}

	fmt.Fprintf(&b, "\n")
	t := New(fmt.Sprintf("operation trace (%d operations)", len(w.Ops)),
		"op", "exec", "thread", "operation", "tso transitions").AlignRight(0, 1)
	for _, op := range w.Ops {
		t.Row(op.Index, op.Exec, fmt.Sprintf("T%d", op.Thread),
			opText(op), transitionsText(op.Transitions))
	}
	b.WriteString(t.String())

	if len(w.Failures) > 0 {
		fmt.Fprintf(&b, "\nfailure points:\n")
		for _, f := range w.Failures {
			if f.Point < 0 {
				fmt.Fprintf(&b, "  execution %d ran to completion (end-of-run point, after op %d)\n",
					f.Exec, f.Op)
			} else {
				fmt.Fprintf(&b, "  power failure injected before op %d (failure point %d, execution %d)\n",
					f.Op, f.Point, f.Exec)
			}
		}
	}

	if len(w.Lines) > 0 {
		fmt.Fprintf(&b, "\ncache-line persistence timelines:\n")
		for _, lt := range w.Lines {
			t := New(fmt.Sprintf("exec %d, line 0x%x", lt.Exec, lt.Line),
				"op", "event", "σ", "interval after").AlignRight(0, 2)
			for _, ev := range lt.Events {
				t.Row(ev.Op, ev.Kind, forensics.FormatSeq(ev.Seq),
					intervalText(ev.Begin, ev.End))
			}
			b.WriteString(t.String())
		}
	}

	if len(w.Loads) > 0 {
		fmt.Fprintf(&b, "\npost-failure load resolutions:\n")
		for _, l := range w.Loads {
			fmt.Fprintf(&b, "load of 0x%x at %s (op %d, execution %d, T%d):\n",
				l.Addr, l.Loc, l.Op, l.Exec, l.Thread)
			for i, c := range l.Candidates {
				mark := " "
				if c.Chosen {
					mark = ">"
				}
				src := fmt.Sprintf("exec %d σ=%s val=%#x", c.Exec, forensics.FormatSeq(c.Seq), c.Val)
				if c.Exec < 0 { // pmem.InitialExec: the pool's zeroed initial contents
					src = "initial pool contents (val=0)"
				}
				fmt.Fprintf(&b, "  %s [%d] %s\n        %s\n", mark, i, src, c.Reason)
			}
			for _, s := range l.Refined {
				fmt.Fprintf(&b, "    refine: exec %d line 0x%x %s at σ=%s -> %s\n",
					s.Exec, s.Line, s.Kind, forensics.FormatSeq(s.At),
					intervalText(s.Begin, s.End))
			}
		}
	}
	return b.String()
}

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}

func opText(o forensics.Op) string {
	switch o.Kind {
	case "sfence", "mfence":
		return o.Kind
	case "clflush", "clflushopt":
		return fmt.Sprintf("%s 0x%x", o.Kind, o.Addr)
	default:
		return fmt.Sprintf("%s 0x%x/%d = %#x", o.Kind, o.Addr, o.Size, o.Val)
	}
}

func transitionsText(ts []forensics.Transition) string {
	if len(ts) == 0 {
		return ""
	}
	parts := make([]string, 0, len(ts))
	for _, t := range ts {
		parts = append(parts, fmt.Sprintf("%s@σ%s", t.Phase, forensics.FormatSeq(t.Seq)))
	}
	return strings.Join(parts, " ")
}

func intervalText(begin, end uint64) string {
	return fmt.Sprintf("[%d, %s)", begin, forensics.FormatSeq(end))
}
