package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"jaaru/internal/core"
	"jaaru/internal/forensics"
)

var update = flag.Bool("update", false, "rewrite the witness golden files")

// goldenCase explores a program, builds the witness of its first bug (with
// minimization, so the goldens cover the Minimized block too), and renders
// both forms.
func goldenWitness(t *testing.T, prog core.Program, workers int) *forensics.Witness {
	t.Helper()
	opts := core.Options{FlagMultiRF: true, Workers: workers}
	res := core.New(prog, opts).Run()
	if !res.Buggy() {
		t.Fatalf("%s: no bug found", prog.Name)
	}
	nb, m := core.Minimize(prog, opts, res.Bugs[0])
	w := core.BuildWitness(prog, opts, nb)
	w.Minimized = m
	if !w.Reproduced {
		t.Fatalf("%s: witness replay did not reproduce", prog.Name)
	}
	return w
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with `go test ./internal/report -update`)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden (regenerate with -update if the change is intended)\ngot:\n%s\nwant:\n%s",
			name, got, want)
	}
}

func TestWitnessGoldens(t *testing.T) {
	cases := []struct {
		name string
		prog func() core.Program
	}{
		{"commitstore", goldenCommitstore},
		{"ordered-pair", goldenOrderedPair},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := goldenWitness(t, tc.prog(), 1)

			text := WitnessText(w)
			checkGolden(t, tc.name+".txt", []byte(text))

			data, err := WitnessJSON(w)
			if err != nil {
				t.Fatal(err)
			}
			// Every emitted witness validates against the documented schema.
			if err := forensics.ValidateJSON(data); err != nil {
				t.Fatalf("witness JSON fails its schema: %v", err)
			}
			checkGolden(t, tc.name+".json", data)
		})
	}
}

// The witness JSON is byte-identical whether the bug came out of a serial or
// a 4-worker exploration: the canonical bug representative is the same, and
// the renderer adds nothing nondeterministic.
func TestWitnessJSONSerialParallelByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		prog func() core.Program
	}{
		{"commitstore", goldenCommitstore},
		{"ordered-pair", goldenOrderedPair},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial, err := WitnessJSON(goldenWitness(t, tc.prog(), 1))
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := WitnessJSON(goldenWitness(t, tc.prog(), 4))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(serial, parallel) {
				t.Errorf("serial and workers=4 witness JSON differ:\nserial:\n%s\nparallel:\n%s",
					serial, parallel)
			}
		})
	}
}

// Text rendering of a non-reproduced witness flags the divergence loudly.
func TestWitnessTextNotReproduced(t *testing.T) {
	w := &forensics.Witness{Program: "p", Bug: forensics.Bug{Type: "bug", Message: "m"}}
	out := WitnessText(w)
	if want := "reproduced: NO"; !bytes.Contains([]byte(out), []byte(want)) {
		t.Errorf("text witness missing %q:\n%s", want, out)
	}
}
