package report

// Guest programs for the witness golden-file tests. They live in their own
// file because witnesses embed guest source locations (this file's name and
// line numbers): editing witness_test.go must not shift them. If you edit
// THIS file, regenerate the goldens with `go test ./internal/report -update`.

import "jaaru/internal/core"

// goldenCommitstore is the commit-store litmus with the data flush missing —
// the canonical missing-flush bug (paper Figure 4).
func goldenCommitstore() core.Program {
	return core.Program{
		Name: "commitstore",
		Run: func(c *core.Context) {
			tmp := c.AllocLine(8)
			c.Store64(tmp, 0xDA7A)
			// BUG: tmp is never flushed before the commit store.
			c.StorePtr(c.Root(), tmp)
			c.Clflush(c.Root(), 8)
		},
		Recover: func(c *core.Context) {
			if child := c.LoadPtr(c.Root()); child != 0 {
				c.Assert(c.Load64(child) == 0xDA7A, "committed child lost its data")
			}
		},
	}
}

// goldenOrderedPair is an ordered-pair litmus: a is flushed with clflushopt
// but the sfence that would order it before b's commit is missing, so b can
// persist while a's writeback is still buffered.
func goldenOrderedPair() core.Program {
	return core.Program{
		Name: "ordered-pair",
		Run: func(c *core.Context) {
			a, b := c.Root(), c.Root().Add(64)
			c.Store64(a, 1)
			c.Clflushopt(a, 8)
			// BUG: missing sfence — the clflushopt is not ordered before the
			// commit of b.
			c.Store64(b, 1)
			c.Clflush(b, 8)
		},
		Recover: func(c *core.Context) {
			if c.Load64(c.Root().Add(64)) == 1 {
				c.Assert(c.Load64(c.Root()) == 1, "b persisted before a")
			}
		},
	}
}
