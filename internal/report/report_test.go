package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tbl := New("Title", "Name", "Count")
	tbl.AlignRight(1)
	tbl.Row("alpha", 5)
	tbl.Row("b", 12345)
	tbl.Footnote("note %d", 7)
	out := tbl.String()

	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("rendered %d lines: %q", len(lines), out)
	}
	if lines[0] != "Title" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Name") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Errorf("separator = %q", lines[2])
	}
	if !strings.Contains(lines[3], "alpha") || !strings.HasSuffix(lines[3], "    5") {
		t.Errorf("numeric column not right-aligned: %q", lines[3])
	}
	if lines[5] != "note 7" {
		t.Errorf("footnote = %q", lines[5])
	}
}

func TestTableWideCellsGrowColumns(t *testing.T) {
	tbl := New("", "A", "B")
	tbl.Row("very-long-cell-content", "x")
	out := tbl.String()
	if !strings.Contains(out, "very-long-cell-content") {
		t.Errorf("cell truncated: %q", out)
	}
	// Header row must be padded to the widest cell.
	lines := strings.Split(out, "\n")
	if len(lines[0]) < len("very-long-cell-content") {
		t.Errorf("header not padded: %q", lines[0])
	}
}

func TestTableExtraCellsDoNotPanic(t *testing.T) {
	tbl := New("", "A")
	tbl.Row("x", "overflow-cell")
	if out := tbl.String(); !strings.Contains(out, "overflow-cell") {
		t.Errorf("extra cell dropped: %q", out)
	}
}

func TestKVBlock(t *testing.T) {
	out := KVBlock("observability", []KV{
		{"scenarios", 42},
		{"pre-failure time", "1.5ms"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("rendered %d lines: %q", len(lines), out)
	}
	if lines[0] != "observability" {
		t.Errorf("title = %q", lines[0])
	}
	if !strings.HasSuffix(lines[3], "42") || !strings.HasSuffix(lines[4], "1.5ms") {
		t.Errorf("values not right-aligned:\n%s", out)
	}
}

func TestTableUnicodeWidths(t *testing.T) {
	tbl := New("", "Σ", "n")
	tbl.AlignRight(1)
	tbl.Row("9^16 ≈ 1.85×10¹⁵", 3)
	out := tbl.String()
	if !strings.Contains(out, "≈") {
		t.Errorf("unicode mangled: %q", out)
	}
}
