// Package report renders the experiment harnesses' tables as aligned text,
// in the style of the paper's figures.
package report

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	header  []string
	rows    [][]string
	foot    []string
	numeric map[int]bool
}

// New returns a table with the given column headers.
func New(title string, header ...string) *Table {
	return &Table{Title: title, header: header, numeric: make(map[int]bool)}
}

// AlignRight marks columns (0-indexed) as right-aligned.
func (t *Table) AlignRight(cols ...int) *Table {
	for _, c := range cols {
		t.numeric[c] = true
	}
	return t
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.rows = append(t.rows, row)
}

// Footnote appends a note printed under the table.
func (t *Table) Footnote(format string, args ...any) {
	t.foot = append(t.foot, fmt.Sprintf(format, args...))
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(width) && utf8.RuneCountInString(cell) > width[i] {
				width[i] = utf8.RuneCountInString(cell)
			}
		}
	}
	pad := func(s string, i int) string {
		gap := width[i] - utf8.RuneCountInString(s)
		if gap < 0 {
			gap = 0
		}
		if t.numeric[i] {
			return strings.Repeat(" ", gap) + s
		}
		return s + strings.Repeat(" ", gap)
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(width) {
				parts[i] = pad(c, i)
			} else {
				parts[i] = c
			}
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}

	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	fmt.Fprintln(w, line(t.header))
	fmt.Fprintln(w, strings.Repeat("-", sumWidths(width)))
	for _, row := range t.rows {
		fmt.Fprintln(w, line(row))
	}
	for _, f := range t.foot {
		fmt.Fprintf(w, "%s\n", f)
	}
}

func sumWidths(width []int) int {
	n := 0
	for _, w := range width {
		n += w
	}
	return n + 2*(len(width)-1)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// KV is one row of a key/value block.
type KV struct {
	Key   string
	Value any
}

// KVBlock renders a two-column key/value block with right-aligned values —
// the metrics-block form the CLI front ends print.
func KVBlock(title string, kvs []KV) string {
	t := New(title, "metric", "value").AlignRight(1)
	for _, kv := range kvs {
		t.Row(kv.Key, kv.Value)
	}
	return t.String()
}
