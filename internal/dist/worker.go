package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"jaaru/internal/core"
	"jaaru/internal/obs"
)

// Doer is the transport a Worker speaks through: http.Client satisfies it,
// and the netsim fabric provides a deterministic in-process implementation
// with injected faults.
type Doer interface {
	Do(*http.Request) (*http.Response, error)
}

// WorkerConfig parameterizes a Worker.
type WorkerConfig struct {
	// Name identifies the worker in coordinator accounting/events.
	Name string
	// BaseURL is the coordinator's base URL (e.g. "http://host:8080").
	BaseURL string
	// Client is the transport (default http.DefaultClient).
	Client Doer
	// Resolve materializes job ProgSpecs (required).
	Resolve Resolver
	// MaxRetries bounds transport-level retries per RPC (default 4).
	MaxRetries int
	// Backoff is the base retry/poll delay, doubled per attempt
	// (default 100ms).
	Backoff time.Duration
	// Sleep is the delay hook (default time.Sleep); tests inject a no-op
	// to keep fault-injection runs fast and deterministic.
	Sleep func(time.Duration)
	// CommitEvery bounds scenarios between non-final commits (0: the
	// core.LeaseRunner default). Lower values tighten the re-execution
	// window after a crash at the cost of more RPC traffic.
	CommitEvery int
	// Registry receives worker-local telemetry: lease-claim and commit RPC
	// round-trip latency histograms (obs.TimerLeaseClaim/TimerLeaseCommit).
	// Nil disables collection entirely — the hooks degrade to nil-receiver
	// checks, like every obs hook.
	Registry *obs.Registry
	// Now is the clock RPC latencies are measured against (default
	// time.Now). Tests inject netsim's fake clock, so injected per-hop
	// fabric latency lands in exact histogram buckets.
	Now func() time.Time
}

// Worker claims leases from a coordinator and explores them with
// core.LeaseRunner until the coordinator shuts the fleet down, Drain is
// called, or the transport fails permanently.
type Worker struct {
	cfg      WorkerConfig
	draining atomic.Bool
	// col is the worker's RPC-latency shard of cfg.Registry (nil when no
	// registry is configured; all Observe calls are nil-safe).
	col *obs.Collector

	mu      sync.Mutex
	runners map[string]*jobRunner
}

// jobRunner is the per-job state a worker keeps across leases: the runner
// (whose POR mirror persists, so one lease's pruning helps the next) and
// the cursor into the coordinator's publication log.
type jobRunner struct {
	lr *core.LeaseRunner
	// drained is the local publication-log cursor: entries below it have
	// been shipped to (or came from) the coordinator.
	drained int
	// coordSeen is the cursor into the coordinator's log.
	coordSeen int
}

// NewWorker builds a worker; cfg.Resolve and cfg.BaseURL are required.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Resolve == nil {
		return nil, fmt.Errorf("dist: WorkerConfig.Resolve is required")
	}
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("dist: WorkerConfig.BaseURL is required")
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 4
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Worker{
		cfg:     cfg,
		col:     cfg.Registry.NewShard(), // nil registry -> nil shard
		runners: make(map[string]*jobRunner),
	}, nil
}

// Observability exposes the worker's telemetry registry (nil unless
// WorkerConfig.Registry was set), so the worker binary can serve its own
// /metrics and /v1/status endpoints.
func (w *Worker) Observability() *obs.Registry { return w.cfg.Registry }

// timedPost wraps post, recording the successful round trip's latency into
// timer t. Failed round trips (retries exhausted) are not recorded: the
// histogram measures the cost of RPCs that happened, not the backoff policy.
func (w *Worker) timedPost(t obs.Timer, path string, body, out any, conflict *bool) error {
	if w.col == nil {
		return w.post(path, body, out, conflict)
	}
	t0 := w.cfg.Now()
	err := w.post(path, body, out, conflict)
	if err == nil {
		w.col.Observe(t, w.cfg.Now().Sub(t0).Nanoseconds())
	}
	return err
}

// Drain requests a graceful stop: the current lease is *released* — the
// progress so far is committed and the unexplored residual handed back to
// the coordinator, which requeues it for another claimant immediately, so
// nothing is lost and nothing waits for a lease TTL — and no further leases
// are claimed. Safe to call from a signal handler goroutine.
func (w *Worker) Drain() { w.draining.Store(true) }

// Run is the worker main loop. It returns nil on coordinator-initiated
// shutdown or drain, and an error when the coordinator became unreachable
// (transport retries exhausted).
func (w *Worker) Run() error {
	var lastJob string
	for !w.draining.Load() {
		req := LeaseRequest{Worker: w.cfg.Name}
		if jr := w.runner(lastJob); jr != nil {
			req.JobID = lastJob
			req.PorVersion = jr.coordSeen
		}
		var resp LeaseResponse
		if err := w.timedPost(obs.TimerLeaseClaim, "/v1/lease", &req, &resp, nil); err != nil {
			return fmt.Errorf("lease request: %w", err)
		}
		switch resp.Status {
		case StatusShutdown:
			return nil
		case StatusIdle:
			d := w.cfg.Backoff
			if resp.RetryMs > 0 {
				d = time.Duration(resp.RetryMs) * time.Millisecond
			}
			w.cfg.Sleep(d)
			continue
		case StatusGranted:
		default:
			return fmt.Errorf("lease request: unknown status %q", resp.Status)
		}
		lastJob = resp.Lease.JobID
		if err := w.runLease(resp); err != nil {
			return err
		}
	}
	return nil
}

// runner returns the cached per-job runner (nil when absent).
func (w *Worker) runner(jobID string) *jobRunner {
	if jobID == "" {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.runners[jobID]
}

func (w *Worker) ensureRunner(l *Lease) (*jobRunner, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if jr, ok := w.runners[l.JobID]; ok {
		return jr, nil
	}
	prog, err := w.cfg.Resolve(l.Spec)
	if err != nil {
		return nil, fmt.Errorf("resolve %q: %w", l.Spec.Bench, err)
	}
	lr := core.NewLeaseRunner(prog, l.Opts)
	if w.cfg.CommitEvery > 0 {
		lr.SetCommitEvery(w.cfg.CommitEvery)
	}
	jr := &jobRunner{lr: lr}
	w.runners[l.JobID] = jr
	return jr, nil
}

// errStale marks an abandoned lease (token fenced off after expiry): the
// worker drops the lease and moves on — the coordinator already requeued
// its remainder.
var errStale = fmt.Errorf("lease expired under us")

func (w *Worker) runLease(grant LeaseResponse) error {
	l := grant.Lease
	jr, err := w.ensureRunner(l)
	if err != nil {
		return err
	}
	if err := jr.lr.AbsorbPor(grant.Por); err != nil {
		return fmt.Errorf("absorb por: %w", err)
	}
	jr.coordSeen = grant.PorVersion
	jr.drained = jr.lr.PorVersion()

	sink := &leaseSink{w: w, jr: jr, lease: l, hungry: grant.Hungry}
	var hb *heartbeater
	if l.Opts.HeartbeatMs > 0 {
		hb = startHeartbeat(w, sink, l)
	}
	err = jr.lr.RunLease(l.Claim, sink)
	if hb != nil {
		hb.stop()
	}
	if err == errStale {
		return nil
	}
	if err != nil {
		return fmt.Errorf("lease %s: %w", l.ID, err)
	}
	return nil
}

// leaseSink adapts the commit protocol to core.LeaseSink. Hungry/Stopped
// reflect the latest coordinator response (stale between commits — that is
// the protocol's contract; exactness rests on Commit alone).
type leaseSink struct {
	w     *Worker
	jr    *jobRunner
	lease *Lease

	mu      sync.Mutex // guards hungry/stopped against the heartbeater
	hungry  bool
	stopped bool
	seq     int64
}

func (s *leaseSink) Hungry() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hungry
}

func (s *leaseSink) Stopped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopped
}

// Draining reflects the worker-local graceful stop, distinct from Stopped:
// a drained lease releases its residual back to the coordinator, a stopped
// one discards it (the job is over).
func (s *leaseSink) Draining() bool { return s.w.draining.Load() }

func (s *leaseSink) noteStopped() {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
}

func (s *leaseSink) Commit(splits []core.WireClaim, residual *core.WireClaim, cum *core.WireStats, final bool) error {
	s.seq++
	req := CommitRequest{
		Token:      s.lease.Token,
		Seq:        s.seq,
		Splits:     splits,
		Residual:   residual,
		Cum:        cum,
		Final:      final,
		Por:        s.jr.lr.DrainPor(s.jr.drained),
		PorVersion: s.jr.coordSeen,
	}
	s.jr.drained = s.jr.lr.PorVersion()
	var resp CommitResponse
	stale := false
	err := s.w.timedPost(obs.TimerLeaseCommit, "/v1/leases/"+s.lease.ID+"/commit", &req, &resp, &stale)
	if err != nil {
		return fmt.Errorf("commit: %w", err)
	}
	if stale || resp.Stale {
		return errStale
	}
	s.mu.Lock()
	s.hungry = resp.Hungry
	s.stopped = s.stopped || resp.Stopped
	s.mu.Unlock()
	if err := s.jr.lr.AbsorbPor(resp.Por); err != nil {
		return fmt.Errorf("absorb por: %w", err)
	}
	s.jr.coordSeen = resp.PorVersion
	s.jr.drained = s.jr.lr.PorVersion()
	return nil
}

// heartbeater renews the lease between commits so long scenarios do not
// trip the TTL.
type heartbeater struct {
	done chan struct{}
	wg   sync.WaitGroup
}

func startHeartbeat(w *Worker, s *leaseSink, l *Lease) *heartbeater {
	hb := &heartbeater{done: make(chan struct{})}
	interval := time.Duration(l.Opts.HeartbeatMs) * time.Millisecond
	hb.wg.Add(1)
	go func() {
		defer hb.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hb.done:
				return
			case <-t.C:
			}
			req := HeartbeatRequest{Token: l.Token}
			var resp HeartbeatResponse
			stale := false
			// Heartbeat failures are advisory: the commit path is the
			// authority, and a genuinely dead coordinator fails there with
			// its own bounded retries.
			if err := w.post("/v1/leases/"+l.ID+"/heartbeat", &req, &resp, &stale); err != nil {
				continue
			}
			if resp.Stopped {
				s.noteStopped()
			}
		}
	}()
	return hb
}

func (hb *heartbeater) stop() {
	close(hb.done)
	hb.wg.Wait()
}

// post sends one JSON RPC with bounded retry and exponential backoff on
// transport errors and 5xx responses. A 409 sets *conflict (when provided)
// instead of erroring, so callers can distinguish fenced leases from a
// dead coordinator.
func (w *Worker) post(path string, body, out any, conflict *bool) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	var lastErr error
	backoff := w.cfg.Backoff
	for attempt := 0; attempt <= w.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			w.cfg.Sleep(backoff)
			backoff *= 2
		}
		req, err := http.NewRequest(http.MethodPost, w.cfg.BaseURL+path, bytes.NewReader(payload))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := w.cfg.Client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			return json.Unmarshal(data, out)
		case resp.StatusCode == http.StatusConflict && conflict != nil:
			*conflict = true
			return json.Unmarshal(data, out)
		case resp.StatusCode >= 500:
			lastErr = fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
			continue
		default:
			var e errorResponse
			_ = json.Unmarshal(data, &e)
			return fmt.Errorf("%s: HTTP %d: %s", path, resp.StatusCode, e.Error)
		}
	}
	return fmt.Errorf("%s: retries exhausted: %w", path, lastErr)
}
