package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"jaaru/internal/core"
	"jaaru/internal/obs"
)

// Doer is the transport a Worker speaks through: http.Client satisfies it,
// and the netsim fabric provides a deterministic in-process implementation
// with injected faults.
type Doer interface {
	Do(*http.Request) (*http.Response, error)
}

// Worker codec modes (WorkerConfig.Codec).
const (
	// CodecAuto starts in JSON, advertises v2 via Accept, and upgrades the
	// moment the coordinator answers in v2.
	CodecAuto = ""
	// CodecV1 pins the frozen JSON codec (never advertises v2).
	CodecV1 = "v1"
	// CodecV2 starts in binary v2 immediately; a coordinator that rejects
	// the frame with a JSON error downgrades the worker to v1 transparently.
	CodecV2 = "v2"
)

// WorkerConfig parameterizes a Worker.
type WorkerConfig struct {
	// Name identifies the worker in coordinator accounting/events.
	Name string
	// BaseURL is the coordinator's base URL (e.g. "http://host:8080").
	BaseURL string
	// Client is the transport (default http.DefaultClient).
	Client Doer
	// Resolve materializes job ProgSpecs (required).
	Resolve Resolver
	// MaxRetries bounds transport-level retries per RPC (default 4).
	MaxRetries int
	// Backoff is the base retry/poll delay, doubled per attempt
	// (default 100ms).
	Backoff time.Duration
	// Sleep is the delay hook (default time.Sleep); tests inject a no-op
	// to keep fault-injection runs fast and deterministic.
	Sleep func(time.Duration)
	// CommitEvery bounds scenarios between non-final commits. 0 adapts the
	// cadence per lease to the observed scenario rate (~50ms of exploration
	// per commit, clamped to [16,512]); a positive value pins it. Lower
	// values tighten the re-execution window after a crash at the cost of
	// more RPC traffic.
	CommitEvery int
	// Codec selects the wire codec: CodecAuto (negotiate, the default),
	// CodecV1, or CodecV2.
	Codec string
	// Registry receives worker-local telemetry: lease-claim and commit RPC
	// round-trip latency histograms (obs.TimerLeaseClaim/TimerLeaseCommit)
	// and wire-byte counts. Nil disables collection entirely — the hooks
	// degrade to nil-receiver checks, like every obs hook.
	Registry *obs.Registry
	// Now is the clock RPC latencies are measured against (default
	// time.Now). Tests inject netsim's fake clock, so injected per-hop
	// fabric latency lands in exact histogram buckets.
	Now func() time.Time
}

// Worker claims leases from a coordinator and explores them with
// core.LeaseRunner until the coordinator shuts the fleet down, Drain is
// called, or the transport fails permanently.
type Worker struct {
	cfg      WorkerConfig
	draining atomic.Bool
	// useV2 is the current send codec. It flips up when an auto-mode worker
	// sees a v2 response, and down when a v2 frame bounces off a v1
	// coordinator (transparent fallback).
	useV2 atomic.Bool
	// col is the worker's RPC-latency shard of cfg.Registry (nil when no
	// registry is configured; all Observe calls are nil-safe).
	col *obs.Collector

	mu      sync.Mutex
	runners map[string]*jobRunner
}

// jobRunner is the per-job state a worker keeps across leases: the runner
// (whose POR mirror persists, so one lease's pruning helps the next) and
// the cursor into the coordinator's publication log.
type jobRunner struct {
	lr *core.LeaseRunner
	// drained is the local publication-log cursor: entries below it have
	// been shipped to (or came from) the coordinator.
	drained int
	// coordSeen is the cursor into the coordinator's log.
	coordSeen int
	// rate is the observed scenarios/sec over this job's previous leases
	// (0 until a lease ran under a real clock); it drives the adaptive
	// commit cadence when WorkerConfig.CommitEvery is 0.
	rate float64
}

// NewWorker builds a worker; cfg.Resolve and cfg.BaseURL are required.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Resolve == nil {
		return nil, fmt.Errorf("dist: WorkerConfig.Resolve is required")
	}
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("dist: WorkerConfig.BaseURL is required")
	}
	switch cfg.Codec {
	case CodecAuto, CodecV1, CodecV2:
	default:
		return nil, fmt.Errorf("dist: unknown codec %q", cfg.Codec)
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 4
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	w := &Worker{
		cfg:     cfg,
		col:     cfg.Registry.NewShard(), // nil registry -> nil shard
		runners: make(map[string]*jobRunner),
	}
	w.useV2.Store(cfg.Codec == CodecV2)
	return w, nil
}

// Observability exposes the worker's telemetry registry (nil unless
// WorkerConfig.Registry was set), so the worker binary can serve its own
// /metrics and /v1/status endpoints.
func (w *Worker) Observability() *obs.Registry { return w.cfg.Registry }

// timedPost wraps post, recording the successful round trip's latency into
// timer t. Failed round trips (retries exhausted) are not recorded: the
// histogram measures the cost of RPCs that happened, not the backoff policy.
func (w *Worker) timedPost(t obs.Timer, path string, body, out any, conflict *bool) error {
	if w.col == nil {
		return w.post(path, body, out, conflict)
	}
	t0 := w.cfg.Now()
	err := w.post(path, body, out, conflict)
	if err == nil {
		w.col.Observe(t, w.cfg.Now().Sub(t0).Nanoseconds())
	}
	return err
}

// Drain requests a graceful stop: the current lease is *released* — the
// progress so far is committed and the unexplored residuals handed back to
// the coordinator, which requeues them for another claimant immediately, so
// nothing is lost and nothing waits for a lease TTL — and no further leases
// are claimed. Safe to call from a signal handler goroutine.
func (w *Worker) Drain() { w.draining.Store(true) }

// Run is the worker main loop. It returns nil on coordinator-initiated
// shutdown or drain, and an error when the coordinator became unreachable
// (transport retries exhausted).
func (w *Worker) Run() error {
	var lastJob string
	for !w.draining.Load() {
		req := LeaseRequest{Worker: w.cfg.Name}
		if jr := w.runner(lastJob); jr != nil {
			req.JobID = lastJob
			req.PorVersion = jr.coordSeen
		}
		var resp LeaseResponse
		if err := w.timedPost(obs.TimerLeaseClaim, "/v1/lease", &req, &resp, nil); err != nil {
			return fmt.Errorf("lease request: %w", err)
		}
		switch resp.Status {
		case StatusShutdown:
			return nil
		case StatusIdle:
			d := w.cfg.Backoff
			if resp.RetryMs > 0 {
				d = time.Duration(resp.RetryMs) * time.Millisecond
			}
			w.cfg.Sleep(d)
			continue
		case StatusGranted:
		default:
			return fmt.Errorf("lease request: unknown status %q", resp.Status)
		}
		lastJob = resp.Lease.JobID
		if err := w.runLease(resp); err != nil {
			return err
		}
	}
	return nil
}

// runner returns the cached per-job runner (nil when absent).
func (w *Worker) runner(jobID string) *jobRunner {
	if jobID == "" {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.runners[jobID]
}

func (w *Worker) ensureRunner(l *Lease) (*jobRunner, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if jr, ok := w.runners[l.JobID]; ok {
		return jr, nil
	}
	prog, err := w.cfg.Resolve(l.Spec)
	if err != nil {
		return nil, fmt.Errorf("resolve %q: %w", l.Spec.Bench, err)
	}
	lr := core.NewLeaseRunner(prog, l.Opts)
	if w.cfg.CommitEvery > 0 {
		lr.SetCommitEvery(w.cfg.CommitEvery)
	}
	jr := &jobRunner{lr: lr}
	w.runners[l.JobID] = jr
	return jr, nil
}

// commitEveryFor maps an observed scenario rate to a commit cadence: about
// 50ms of exploration per commit, clamped to [16,512]. A zero rate (first
// lease, or a fake test clock) takes the deterministic default 32. Leases
// that expire (ttlMs > 0) cap the budget at ttlMs/8: commits renew the
// deadline, the rate was observed under the contention of an earlier lease,
// and a cadence near the TTL lets an oversubscribed host expire a live
// worker's lease between renewals.
func commitEveryFor(rate float64, ttlMs int) int {
	if rate <= 0 {
		return 32
	}
	budget := 0.050
	if ttlMs > 0 {
		budget = min(budget, float64(ttlMs)/8000)
	}
	return min(max(int(rate*budget), 16), 512)
}

// errStale marks an abandoned lease (token fenced off after expiry): the
// worker drops the lease and moves on — the coordinator already requeued
// its remainder.
var errStale = fmt.Errorf("lease expired under us")

func (w *Worker) runLease(grant LeaseResponse) error {
	l := grant.Lease
	jr, err := w.ensureRunner(l)
	if err != nil {
		return err
	}
	if err := jr.lr.AbsorbPor(grant.Por); err != nil {
		return fmt.Errorf("absorb por: %w", err)
	}
	jr.coordSeen = grant.PorVersion
	jr.drained = jr.lr.PorVersion()
	if w.cfg.CommitEvery == 0 {
		jr.lr.SetCommitEvery(commitEveryFor(jr.rate, l.TTLMs))
	}

	sink := &leaseSink{w: w, jr: jr, lease: l, hungry: grant.Hungry}
	var hb *heartbeater
	if l.Opts.HeartbeatMs > 0 {
		hb = startHeartbeat(w, sink, l)
	}
	t0 := w.cfg.Now()
	err = jr.lr.RunLease(l.Claims, sink)
	if hb != nil {
		hb.stop()
	}
	// RunLease always joins the pipelined commit before returning, so the
	// sink is quiescent here; fold this lease's observed rate into the
	// job's estimate for the next lease's commit cadence.
	if elapsed := w.cfg.Now().Sub(t0).Seconds(); elapsed > 0 && sink.scenarios > 0 {
		jr.rate = float64(sink.scenarios) / elapsed
	}
	if err == errStale {
		return nil
	}
	if err != nil {
		return fmt.Errorf("lease %s: %w", l.ID, err)
	}
	return nil
}

// leaseSink adapts the commit protocol to core.LeaseSink. Hungry/Stopped
// reflect the latest coordinator response (stale between commits — that is
// the protocol's contract; exactness rests on Commit alone).
//
// Non-final commits are pipelined: Commit builds the request synchronously
// (sequence number, POR drain, cursors) and ships it on a background
// goroutine, so the engine explores the next scenarios while the ack is in
// flight. The next Commit joins the in-flight send first — commits stay
// strictly seq-ordered on the wire, and a stale/stopped ack surfaces one
// commit late, which the protocol already tolerates (the coordinator
// absorbs deltas seq-gated, and stop signals are cooperative).
type leaseSink struct {
	w     *Worker
	jr    *jobRunner
	lease *Lease

	mu      sync.Mutex // guards hungry/stopped against the heartbeater and sender
	hungry  bool
	stopped bool

	// Engine-goroutine-only state (Commit is never called concurrently).
	seq       int64
	inflight  chan error // pending pipelined commit (nil: none)
	scenarios int        // sum of committed delta scenarios, for the rate estimate
}

func (s *leaseSink) Hungry() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hungry
}

func (s *leaseSink) Stopped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopped
}

// Draining reflects the worker-local graceful stop, distinct from Stopped:
// a drained lease releases its residuals back to the coordinator, a stopped
// one discards them (the job is over).
func (s *leaseSink) Draining() bool { return s.w.draining.Load() }

func (s *leaseSink) noteStopped() {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
}

// join waits out the pipelined commit, if any, and surfaces its error.
func (s *leaseSink) join() error {
	if s.inflight == nil {
		return nil
	}
	err := <-s.inflight
	s.inflight = nil
	return err
}

func (s *leaseSink) Commit(splits []core.WireClaim, residuals []core.WireClaim, delta *core.WireStats, final bool) error {
	if err := s.join(); err != nil {
		return err
	}
	s.seq++
	req := &CommitRequest{
		Token:      s.lease.Token,
		Seq:        s.seq,
		Splits:     splits,
		Residuals:  residuals,
		Delta:      delta,
		Final:      final,
		Por:        s.jr.lr.DrainPor(s.jr.drained),
		PorVersion: s.jr.coordSeen,
	}
	s.jr.drained = s.jr.lr.PorVersion()
	if delta != nil {
		s.scenarios += delta.Scenarios
	}
	if len(splits) > 0 {
		// The hungry hint is stale until this commit's ack lands (one commit
		// late under pipelining). Clear it optimistically so the engine does
		// not donate — and flush-commit — on every scenario in between; the
		// ack recomputes hunger after the coordinator absorbed these splits.
		s.mu.Lock()
		s.hungry = false
		s.mu.Unlock()
	}
	if final {
		// The final ack is the worker's proof the lease retired; never
		// pipeline it.
		return s.send(req)
	}
	ch := make(chan error, 1)
	s.inflight = ch
	go func() { ch <- s.send(req) }()
	return nil
}

// send ships one commit and folds the ack into the sink. It runs on the
// engine goroutine for final commits and on the pipeline goroutine
// otherwise; the POR mirror it feeds (AbsorbPor) is internally locked, and
// the jr cursors are only read again after join(), which the channel
// orders.
func (s *leaseSink) send(req *CommitRequest) error {
	var resp CommitResponse
	stale := false
	err := s.w.timedPost(obs.TimerLeaseCommit, "/v1/leases/"+s.lease.ID+"/commit", req, &resp, &stale)
	if err != nil {
		return fmt.Errorf("commit: %w", err)
	}
	if stale || resp.Stale {
		return errStale
	}
	s.mu.Lock()
	s.hungry = resp.Hungry
	s.stopped = s.stopped || resp.Stopped
	s.mu.Unlock()
	if err := s.jr.lr.AbsorbPor(resp.Por); err != nil {
		return fmt.Errorf("absorb por: %w", err)
	}
	s.jr.coordSeen = resp.PorVersion
	s.jr.drained = s.jr.lr.PorVersion()
	return nil
}

// heartbeater renews the lease between commits so long scenarios do not
// trip the TTL.
type heartbeater struct {
	done chan struct{}
	wg   sync.WaitGroup
}

func startHeartbeat(w *Worker, s *leaseSink, l *Lease) *heartbeater {
	hb := &heartbeater{done: make(chan struct{})}
	interval := time.Duration(l.Opts.HeartbeatMs) * time.Millisecond
	hb.wg.Add(1)
	go func() {
		defer hb.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hb.done:
				return
			case <-t.C:
			}
			req := HeartbeatRequest{Token: l.Token}
			var resp HeartbeatResponse
			stale := false
			// Heartbeat failures are advisory: the commit path is the
			// authority, and a genuinely dead coordinator fails there with
			// its own bounded retries.
			if err := w.post("/v1/leases/"+l.ID+"/heartbeat", &req, &resp, &stale); err != nil {
				continue
			}
			if resp.Stopped {
				s.noteStopped()
			}
		}
	}()
	return hb
}

func (hb *heartbeater) stop() {
	close(hb.done)
	hb.wg.Wait()
}

// encodeBody serializes one protocol envelope with the chosen codec.
func encodeBody(body any, v2 bool) ([]byte, error) {
	if v2 {
		return encodeWire2(nil, body)
	}
	return json.Marshal(body)
}

// decodeBody parses one protocol envelope by the codec the response
// declared.
func decodeBody(data []byte, out any, v2 bool) error {
	if v2 {
		return decodeWire2(data, out)
	}
	return json.Unmarshal(data, out)
}

// post sends one RPC with bounded retry and exponential backoff on
// transport errors and 5xx responses. A 409 sets *conflict (when provided)
// instead of erroring, so callers can distinguish fenced leases from a
// dead coordinator.
//
// Codec negotiation happens here. The request goes out in the worker's
// current codec; JSON requests advertise v2 via Accept unless the codec is
// pinned to v1. A v2 response upgrades the worker; a non-2xx/409 JSON
// answer to a v2 frame means the coordinator cannot parse binary (version
// skew), so the worker downgrades and resends the same message once —
// transparent fallback, no work lost.
func (w *Worker) post(path string, body, out any, conflict *bool) error {
	v2 := w.useV2.Load()
	payload, err := encodeBody(body, v2)
	if err != nil {
		return err
	}
	var lastErr error
	downgraded := false
	backoff := w.cfg.Backoff
	for attempt := 0; attempt <= w.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			w.cfg.Sleep(backoff)
			backoff *= 2
		}
		req, err := http.NewRequest(http.MethodPost, w.cfg.BaseURL+path, bytes.NewReader(payload))
		if err != nil {
			return err
		}
		if v2 {
			req.Header.Set("Content-Type", ContentTypeWireV2)
		} else {
			req.Header.Set("Content-Type", ContentTypeJSON)
			if w.cfg.Codec != CodecV1 {
				req.Header.Set("Accept", ContentTypeWireV2)
			}
		}
		resp, err := w.cfg.Client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		w.cfg.Registry.NoteBytes(int64(len(payload)), int64(len(data)))
		respV2 := resp.Header.Get("Content-Type") == ContentTypeWireV2
		if respV2 && w.cfg.Codec != CodecV1 {
			w.useV2.Store(true)
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			return decodeBody(data, out, respV2)
		case resp.StatusCode == http.StatusConflict && conflict != nil:
			*conflict = true
			return decodeBody(data, out, respV2)
		case resp.StatusCode >= 500:
			lastErr = fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
			continue
		case v2 && !respV2 && !downgraded:
			downgraded = true
			v2 = false
			w.useV2.Store(false)
			if payload, err = encodeBody(body, false); err != nil {
				return err
			}
			attempt-- // the fallback resend is not a retry
			continue
		default:
			var e errorResponse
			_ = json.Unmarshal(data, &e)
			return fmt.Errorf("%s: HTTP %d: %s", path, resp.StatusCode, e.Error)
		}
	}
	return fmt.Errorf("%s: retries exhausted: %w", path, lastErr)
}
