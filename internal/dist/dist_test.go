package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"jaaru/internal/core"
	"jaaru/internal/netsim"
)

// ---- test workloads ---------------------------------------------------------

// distTreeProgram is a quiet workload with real width at several depths:
// four independently flushed lines, two stores each, giving a few dozen
// scenarios with multi-candidate loads.
func distTreeProgram() core.Program {
	return core.Program{
		Name: "dist-tree",
		Run: func(c *core.Context) {
			r := c.Root()
			for i := uint64(0); i < 4; i++ {
				c.Store64(r.Add(i*8), i+1)
				c.Store64(r.Add(i*8), i+100)
				c.Clflush(r.Add(i*8), 8)
			}
		},
		Recover: func(c *core.Context) {
			r := c.Root()
			for i := uint64(0); i < 4; i++ {
				_ = c.Load64(r.Add(i * 8))
			}
		},
	}
}

// distBuggyProgram is the tree workload with recovery invariants that fire
// in several of its reachable crash states: a torn first line (only the
// first of its two stores persisted) and recovery observing line 1's final
// value while line 2 is still empty. Two distinct bugs, one with Count > 1.
func distBuggyProgram() core.Program {
	return core.Program{
		Name: "dist-bugs",
		Run: func(c *core.Context) {
			r := c.Root()
			for i := uint64(0); i < 4; i++ {
				c.Store64(r.Add(i*64), i+1)
				c.Store64(r.Add(i*64), i+101)
				c.Clflush(r.Add(i*64), 8)
			}
		},
		Recover: func(c *core.Context) {
			r := c.Root()
			var v [4]uint64
			for i := uint64(0); i < 4; i++ {
				v[i] = c.Load64(r.Add(i * 64))
			}
			if v[0] == 1 {
				c.Bug("line 0 recovered its torn intermediate value")
			}
			if v[1] == 102 && v[2] == 0 {
				c.Bug("line 1 complete while line 2 empty")
			}
		},
	}
}

func testResolver(spec ProgSpec) (core.Program, error) {
	switch spec.Bench {
	case "tree":
		return distTreeProgram(), nil
	case "bugs":
		return distBuggyProgram(), nil
	}
	return core.Program{}, fmt.Errorf("unknown bench %q", spec.Bench)
}

// ---- harness ----------------------------------------------------------------

type harness struct {
	t      *testing.T
	coord  *Coordinator
	fabric *netsim.Fabric
	clock  *netsim.Clock
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	clock := netsim.NewClock()
	coord, err := NewCoordinator(Config{
		Resolve:          testResolver,
		Now:              clock.Now,
		ShutdownWhenDone: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	fabric := netsim.NewFabric(coord)
	fabric.SetClock(clock)
	return &harness{t: t, coord: coord, fabric: fabric, clock: clock}
}

// rpc drives the job API through the fabric, as an external client would.
func (h *harness) rpc(method, path string, body, out any) int {
	h.t.Helper()
	var payload []byte
	if body != nil {
		var err error
		payload, err = json.Marshal(body)
		if err != nil {
			h.t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, "http://coordinator"+path, bytes.NewReader(payload))
	if err != nil {
		h.t.Fatal(err)
	}
	resp, err := h.fabric.Client("client").Do(req)
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			h.t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func (h *harness) submit(bench string, opts core.Options) string {
	h.t.Helper()
	var resp JobResponse
	code := h.rpc("POST", "/v1/jobs", JobRequest{Spec: ProgSpec{Bench: bench}, Opts: opts}, &resp)
	if code != http.StatusOK {
		h.t.Fatalf("submit: HTTP %d", code)
	}
	return resp.ID
}

func (h *harness) result(id string) *core.Result {
	h.t.Helper()
	var st JobStatus
	code := h.rpc("GET", "/v1/jobs/"+id, nil, &st)
	if code != http.StatusOK {
		h.t.Fatalf("job status: HTTP %d", code)
	}
	if st.State != JobDone {
		h.t.Fatalf("job %s not done (state %q)", id, st.State)
	}
	return st.Result
}

func (h *harness) worker(name string, commitEvery int) *Worker {
	h.t.Helper()
	w, err := NewWorker(WorkerConfig{
		Name:        name,
		BaseURL:     "http://coordinator",
		Client:      h.fabric.Client(name),
		Resolve:     testResolver,
		MaxRetries:  2,
		Backoff:     time.Microsecond,
		Sleep:       func(time.Duration) {}, // deterministic, no real waiting
		CommitEvery: commitEvery,
	})
	if err != nil {
		h.t.Fatal(err)
	}
	return w
}

// runWorkers runs the named workers concurrently until each exits, and
// reports their errors.
func runWorkers(ws ...*Worker) []error {
	errs := make([]error, len(ws))
	var wg sync.WaitGroup
	for i, w := range ws {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = w.Run()
		}()
	}
	wg.Wait()
	return errs
}

// assertSameResult is the distributed-equivalence gate: everything except
// wall-clock Duration and the partition-local BugReport.Scenario index must
// be identical to the serial reference (the same standard the in-process
// parallel suite enforces; Scenario is a worker-local discovery index even
// under Workers>1).
func assertSameResult(t *testing.T, label string, serial, got *core.Result) {
	t.Helper()
	if got.Program != serial.Program {
		t.Errorf("%s: Program = %q, serial %q", label, got.Program, serial.Program)
	}
	if got.Scenarios != serial.Scenarios {
		t.Errorf("%s: Scenarios = %d, serial %d", label, got.Scenarios, serial.Scenarios)
	}
	if got.Executions != serial.Executions {
		t.Errorf("%s: Executions = %d, serial %d", label, got.Executions, serial.Executions)
	}
	if got.FailurePoints != serial.FailurePoints {
		t.Errorf("%s: FailurePoints = %d, serial %d", label, got.FailurePoints, serial.FailurePoints)
	}
	if got.Steps != serial.Steps {
		t.Errorf("%s: Steps = %d, serial %d", label, got.Steps, serial.Steps)
	}
	if got.RFChoicePoints != serial.RFChoicePoints {
		t.Errorf("%s: RFChoicePoints = %d, serial %d", label, got.RFChoicePoints, serial.RFChoicePoints)
	}
	if got.FailDecisionPoints != serial.FailDecisionPoints {
		t.Errorf("%s: FailDecisionPoints = %d, serial %d", label, got.FailDecisionPoints, serial.FailDecisionPoints)
	}
	if got.MaxRFCandidates != serial.MaxRFCandidates {
		t.Errorf("%s: MaxRFCandidates = %d, serial %d", label, got.MaxRFCandidates, serial.MaxRFCandidates)
	}
	if got.Complete != serial.Complete {
		t.Errorf("%s: Complete = %v, serial %v", label, got.Complete, serial.Complete)
	}
	if len(got.Bugs) != len(serial.Bugs) {
		t.Fatalf("%s: %d bugs, serial %d", label, len(got.Bugs), len(serial.Bugs))
	}
	for i := range serial.Bugs {
		s, g := serial.Bugs[i], got.Bugs[i]
		if g.Type != s.Type || g.Message != s.Message || g.Execution != s.Execution ||
			g.Count != s.Count || g.Choices != s.Choices {
			t.Errorf("%s: bug %d differs:\nserial: %v (count %d, choices %q)\ngot:    %v (count %d, choices %q)",
				label, i, s, s.Count, s.Choices, g, g.Count, g.Choices)
		}
		if !reflect.DeepEqual(s.Trace, g.Trace) {
			t.Errorf("%s: bug %d trace differs (%d ops vs %d)", label, i, len(s.Trace), len(g.Trace))
		}
	}
	if !reflect.DeepEqual(derefMultiRF(serial.MultiRF), derefMultiRF(got.MultiRF)) {
		t.Errorf("%s: MultiRF differs:\nserial: %v\ngot:    %v", label, serial.MultiRF, got.MultiRF)
	}
	if !reflect.DeepEqual(derefPerf(serial.PerfIssues), derefPerf(got.PerfIssues)) {
		t.Errorf("%s: PerfIssues differ:\nserial: %v\ngot:    %v", label, serial.PerfIssues, got.PerfIssues)
	}
	if (serial.Metrics == nil) != (got.Metrics == nil) {
		t.Fatalf("%s: metrics presence differs", label)
	}
	if serial.Metrics != nil {
		sc, gc := serial.Metrics.Canonical(), got.Metrics.Canonical()
		if sc != gc {
			t.Errorf("%s: canonical metrics differ:\nserial: %+v\ngot:    %+v", label, sc, gc)
		}
	}
}

func derefMultiRF(ms []*core.MultiRF) []core.MultiRF {
	out := make([]core.MultiRF, len(ms))
	for i, m := range ms {
		out[i] = *m
	}
	return out
}

func derefPerf(ps []*core.PerfIssue) []core.PerfIssue {
	out := make([]core.PerfIssue, len(ps))
	for i, p := range ps {
		out[i] = *p
	}
	return out
}

func distOpts() core.Options {
	return core.Options{
		Observe:        true,
		FlagMultiRF:    true,
		FlagPerfIssues: true,
		LeaseTTLMs:     60000,
		HeartbeatMs:    -1, // commits renew; keeps the tests clock-driven
	}
}

func serialReference(t *testing.T, bench string, opts core.Options) *core.Result {
	t.Helper()
	prog, err := testResolver(ProgSpec{Bench: bench})
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 1
	return core.New(prog, opts).Run()
}

// ---- tests ------------------------------------------------------------------

// TestDistributedMatchesSerial: a healthy 3-worker fleet over the fabric
// merges to the serial reference exactly.
func TestDistributedMatchesSerial(t *testing.T) {
	for _, bench := range []string{"tree", "bugs"} {
		t.Run(bench, func(t *testing.T) {
			serial := serialReference(t, bench, distOpts())
			h := newHarness(t)
			id := h.submit(bench, distOpts())
			errs := runWorkers(h.worker("w1", 4), h.worker("w2", 4), h.worker("w3", 4))
			for i, err := range errs {
				if err != nil {
					t.Fatalf("worker %d: %v", i+1, err)
				}
			}
			assertSameResult(t, bench, serial, h.result(id))
		})
	}
}

// TestDistributedWorkerKilledMidLease is the robustness acceptance gate:
// worker w3 claims the root lease, commits a few scenarios, and dies. After
// its TTL expires the residual subtree is requeued and re-executed by the
// surviving workers; the merged result must still be bit-identical to the
// serial reference.
func TestDistributedWorkerKilledMidLease(t *testing.T) {
	for _, bench := range []string{"tree", "bugs"} {
		t.Run(bench, func(t *testing.T) {
			serial := serialReference(t, bench, distOpts())
			h := newHarness(t)
			id := h.submit(bench, distOpts())

			// w3 claims the root (the whole tree), commits after every
			// scenario, and is killed after 4 successful requests: one lease
			// grant plus three non-final commits.
			w3 := h.worker("w3", 1)
			h.fabric.KillAfter("w3", 4)
			if err := w3.Run(); err == nil {
				t.Fatal("killed worker exited cleanly; expected transport failure")
			}

			// Nothing is claimable until the dead worker's lease expires.
			h.clock.Advance(61 * time.Second)

			errs := runWorkers(h.worker("w1", 4), h.worker("w2", 4))
			for i, err := range errs {
				if err != nil {
					t.Fatalf("worker %d: %v", i+1, err)
				}
			}
			res := h.result(id)
			assertSameResult(t, bench, serial, res)
			if res.Metrics.LeaseRequeues < 1 {
				t.Errorf("LeaseRequeues = %d, want >= 1 (the killed worker's subtree)", res.Metrics.LeaseRequeues)
			}
			if res.Metrics.LeasesExpired < 1 {
				t.Errorf("LeasesExpired = %d, want >= 1", res.Metrics.LeasesExpired)
			}
		})
	}
}

// TestChoiceSnapshotEquivalenceKilledWorker crosses the choice-point
// snapshot stack with distribution and fault injection: the serial reference
// runs with the stack disabled (pure replay semantics), the fleet runs with
// it enabled, the root-lease worker is killed mid-lease so its residual is
// requeued after TTL expiry — and the merged result must still be
// bit-identical, canonical metrics included.
func TestChoiceSnapshotEquivalenceKilledWorker(t *testing.T) {
	for _, bench := range []string{"tree", "bugs"} {
		t.Run(bench, func(t *testing.T) {
			refOpts := distOpts()
			refOpts.ChoiceSnapshots = -1
			serial := serialReference(t, bench, refOpts)

			onOpts := distOpts()
			onOpts.ChoiceSnapshots = 1
			h := newHarness(t)
			id := h.submit(bench, onOpts)

			w3 := h.worker("w3", 1)
			h.fabric.KillAfter("w3", 4)
			if err := w3.Run(); err == nil {
				t.Fatal("killed worker exited cleanly; expected transport failure")
			}
			h.clock.Advance(61 * time.Second)

			errs := runWorkers(h.worker("w1", 4), h.worker("w2", 4))
			for i, err := range errs {
				if err != nil {
					t.Fatalf("worker %d: %v", i+1, err)
				}
			}
			res := h.result(id)
			assertSameResult(t, bench, serial, res)
			if res.Metrics.LeaseRequeues < 1 {
				t.Errorf("LeaseRequeues = %d, want >= 1 (the killed worker's subtree)", res.Metrics.LeaseRequeues)
			}
		})
	}
}

// commitReplyDropper drops the replies of the first n commit requests after
// the coordinator has applied them, forcing the worker to redeliver the same
// sequence numbers. (The fabric's positional DropReplies would also drop
// lease grants, which models a different fault.)
type commitReplyDropper struct {
	inner Doer
	drops int
}

func (d *commitReplyDropper) Do(req *http.Request) (*http.Response, error) {
	resp, err := d.inner.Do(req)
	if err != nil {
		return nil, err
	}
	if d.drops > 0 && strings.HasSuffix(req.URL.Path, "/commit") {
		d.drops--
		resp.Body.Close()
		return nil, fmt.Errorf("netsim: commit reply dropped")
	}
	return resp, nil
}

// TestDistributedDuplicateCommits: dropped commit replies force the worker
// to redeliver commits; the coordinator's sequence-number dedupe must keep
// the merged result exact.
func TestDistributedDuplicateCommits(t *testing.T) {
	serial := serialReference(t, "bugs", distOpts())
	h := newHarness(t)
	id := h.submit("bugs", distOpts())
	w, err := NewWorker(WorkerConfig{
		Name:        "w1",
		BaseURL:     "http://coordinator",
		Client:      &commitReplyDropper{inner: h.fabric.Client("w1"), drops: 2},
		Resolve:     testResolver,
		MaxRetries:  2,
		Backoff:     time.Microsecond,
		Sleep:       func(time.Duration) {},
		CommitEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "duplicate-commits", serial, h.result(id))
}

// TestDistributedTransientOutage: a transient transport failure is retried
// with backoff and the run completes exactly.
func TestDistributedTransientOutage(t *testing.T) {
	serial := serialReference(t, "tree", distOpts())
	h := newHarness(t)
	id := h.submit("tree", distOpts())
	w := h.worker("w1", 2)
	h.fabric.FailNext("w1", 2) // both retried within MaxRetries
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "transient-outage", serial, h.result(id))
}

// TestDistributedStopAtFirstBug: the cooperative stop truncates the run and
// still reports the bug.
func TestDistributedStopAtFirstBug(t *testing.T) {
	opts := distOpts()
	opts.StopAtFirstBug = true
	h := newHarness(t)
	id := h.submit("bugs", opts)
	errs := runWorkers(h.worker("w1", 1), h.worker("w2", 1))
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i+1, err)
		}
	}
	res := h.result(id)
	if !res.Buggy() {
		t.Fatal("no bug reported")
	}
	if res.Complete {
		t.Error("StopAtFirstBug run reported complete")
	}
}

// TestDistributedDrain: a drained worker retires its lease gracefully; a
// second worker finishes the job and the merge stays exact.
func TestDistributedDrain(t *testing.T) {
	serial := serialReference(t, "tree", distOpts())
	h := newHarness(t)
	id := h.submit("tree", distOpts())

	// The draining worker stops before claiming anything (Drain before Run):
	// the degenerate case must be clean too.
	w0 := h.worker("w0", 1)
	w0.Drain()
	if err := w0.Run(); err != nil {
		t.Fatal(err)
	}

	if err := h.worker("w1", 4).Run(); err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "drain", serial, h.result(id))
}

// drainAfterCommits triggers the worker's own Drain after the n-th
// successful commit round-trip, so the drain lands mid-lease with
// unexplored work remaining.
type drainAfterCommits struct {
	inner Doer
	drain func()
	left  int
}

func (d *drainAfterCommits) Do(req *http.Request) (*http.Response, error) {
	resp, err := d.inner.Do(req)
	if err == nil && strings.HasSuffix(req.URL.Path, "/commit") {
		if d.left--; d.left == 0 {
			d.drain()
		}
	}
	return resp, err
}

// TestDistributedDrainMidLease: a worker drained mid-lease must *release*
// its lease — commit the progress so far and hand the unexplored remainder
// back for immediate requeue (no TTL expiry involved) — so a second worker
// can finish the job and the merge stays bit-identical to serial.
func TestDistributedDrainMidLease(t *testing.T) {
	for _, bench := range []string{"tree", "bugs"} {
		t.Run(bench, func(t *testing.T) {
			serial := serialReference(t, bench, distOpts())
			h := newHarness(t)
			id := h.submit(bench, distOpts())

			// w1 claims the root, commits every scenario, and receives the
			// drain signal after its second commit — mid-lease, with most of
			// the subtree still unexplored. (Commits are pipelined: the drain
			// flag set during commit N's round trip is observed by the engine
			// no later than commit N+1's join, so triggering on the second
			// commit guarantees the release fires before the tiny
			// split-shrunk claim runs out.)
			trigger := &drainAfterCommits{inner: h.fabric.Client("w1"), left: 2}
			w1, err := NewWorker(WorkerConfig{
				Name:        "w1",
				BaseURL:     "http://coordinator",
				Client:      trigger,
				Resolve:     testResolver,
				MaxRetries:  2,
				Backoff:     time.Microsecond,
				Sleep:       func(time.Duration) {},
				CommitEvery: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			trigger.drain = w1.Drain
			if err := w1.Run(); err != nil {
				t.Fatal(err)
			}

			// The release must leave the job running with the remainder
			// queued — not spuriously "done" with scenarios missing.
			var st JobStatus
			if code := h.rpc("GET", "/v1/jobs/"+id, nil, &st); code != http.StatusOK {
				t.Fatalf("job status: HTTP %d", code)
			}
			if st.State != JobRunning {
				t.Fatalf("job after mid-lease drain: state %q, want %q (residual requeued)", st.State, JobRunning)
			}

			if err := h.worker("w2", 4).Run(); err != nil {
				t.Fatal(err)
			}
			res := h.result(id)
			assertSameResult(t, bench, serial, res)
			if res.Metrics.LeasesReleased < 1 {
				t.Errorf("LeasesReleased = %d, want >= 1", res.Metrics.LeasesReleased)
			}
			if res.Metrics.LeaseRequeues < 1 {
				t.Errorf("LeaseRequeues = %d, want >= 1 (the drained worker's remainder)", res.Metrics.LeaseRequeues)
			}
			if res.Metrics.LeasesExpired != 0 {
				t.Errorf("LeasesExpired = %d, want 0 (release must not ride on TTL expiry)", res.Metrics.LeasesExpired)
			}
		})
	}
}

// TestCommitRejectsMalformedPayloads: a version-skewed or buggy worker's
// commit must be rejected atomically with 400 — malformed delta stats would
// otherwise corrupt the merge the moment they were absorbed, and a
// malformed split or residual would be granted verbatim to a future worker
// and crash-loop the fleet. The lease survives to accept a corrected commit.
func TestCommitRejectsMalformedPayloads(t *testing.T) {
	h := newHarness(t)
	h.submit("tree", distOpts())
	var grant LeaseResponse
	if code := h.rpc("POST", "/v1/lease", LeaseRequest{Worker: "w1"}, &grant); code != http.StatusOK || grant.Status != StatusGranted {
		t.Fatalf("lease: HTTP %d status %q", code, grant.Status)
	}
	lease := grant.Lease
	badPoint := core.WirePoint{Kind: "coin", N: 2, Idx: 0}
	cases := []struct {
		name string
		req  CommitRequest
	}{
		{"bad bug replay in delta", CommitRequest{Token: lease.Token, Seq: 1, Final: true,
			Delta: &core.WireStats{Bugs: []core.WireBug{{Message: "x", Replay: []core.WirePoint{badPoint}}}}}},
		{"bad obs counters in delta", CommitRequest{Token: lease.Token, Seq: 1, Final: true,
			Delta: &core.WireStats{Obs: &core.WireObs{Counters: []int64{1}}}}},
		{"negative scenarios in delta", CommitRequest{Token: lease.Token, Seq: 1, Final: true,
			Delta: &core.WireStats{Scenarios: -3}}},
		{"bad split", CommitRequest{Token: lease.Token, Seq: 1, Residuals: []core.WireClaim{{}},
			Delta:  &core.WireStats{},
			Splits: []core.WireClaim{{Points: []core.WirePoint{badPoint}}}}},
		{"bad residual", CommitRequest{Token: lease.Token, Seq: 1, Delta: &core.WireStats{},
			Residuals: []core.WireClaim{{Points: []core.WirePoint{{Kind: "rf", N: 2, Idx: 5}}}}}},
	}
	for _, tc := range cases {
		var resp CommitResponse
		if code := h.rpc("POST", "/v1/leases/"+lease.ID+"/commit", tc.req, &resp); code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", tc.name, code)
		}
	}
	// The rejected commits must not have consumed the sequence number or
	// killed the lease: a well-formed final commit still lands.
	var resp CommitResponse
	if code := h.rpc("POST", "/v1/leases/"+lease.ID+"/commit", CommitRequest{
		Token: lease.Token, Seq: 1, Final: true, Delta: &core.WireStats{},
	}, &resp); code != http.StatusOK {
		t.Errorf("valid commit after rejections: HTTP %d, want 200", code)
	}
}

// TestNegativePorVersionClamped: a negative publication-log cursor in a
// lease or commit request must be clamped (replaying the whole log), not
// slice-panic the handler.
func TestNegativePorVersionClamped(t *testing.T) {
	h := newHarness(t)
	id := h.submit("tree", distOpts())
	var grant LeaseResponse
	code := h.rpc("POST", "/v1/lease", LeaseRequest{Worker: "w1", JobID: id, PorVersion: -7}, &grant)
	if code != http.StatusOK || grant.Status != StatusGranted {
		t.Fatalf("lease with negative cursor: HTTP %d status %q", code, grant.Status)
	}
	var resp CommitResponse
	code = h.rpc("POST", "/v1/leases/"+grant.Lease.ID+"/commit", CommitRequest{
		Token: grant.Lease.Token, Seq: 1, Residuals: []core.WireClaim{{}},
		Delta: &core.WireStats{}, PorVersion: -7,
	}, &resp)
	if code != http.StatusOK {
		t.Fatalf("commit with negative cursor: HTTP %d", code)
	}
}

// TestCoordinatorRejectsStaleCommit: a zombie worker whose lease expired
// must be fenced with 409 so it cannot double-commit against the requeued
// residual.
func TestCoordinatorRejectsStaleCommit(t *testing.T) {
	h := newHarness(t)
	h.submit("tree", distOpts())
	var grant LeaseResponse
	code := h.rpc("POST", "/v1/lease", LeaseRequest{Worker: "w1"}, &grant)
	if code != http.StatusOK || grant.Status != StatusGranted {
		t.Fatalf("lease: HTTP %d status %q", code, grant.Status)
	}
	h.clock.Advance(61 * time.Second)
	// The sweep runs on the next request; the zombie's token is then dead.
	var resp CommitResponse
	code = h.rpc("POST", "/v1/leases/"+grant.Lease.ID+"/commit", CommitRequest{
		Token: grant.Lease.Token, Seq: 1, Final: true, Delta: &core.WireStats{},
	}, &resp)
	if code != http.StatusConflict {
		t.Fatalf("stale commit: HTTP %d, want 409", code)
	}
}

// TestJobAPIErrors: unknown bench and unknown job surface as client errors.
func TestJobAPIErrors(t *testing.T) {
	h := newHarness(t)
	code := h.rpc("POST", "/v1/jobs", JobRequest{Spec: ProgSpec{Bench: "nope"}}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("unknown bench: HTTP %d, want 400", code)
	}
	code = h.rpc("GET", "/v1/jobs/jX", nil, nil)
	if code != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d, want 404", code)
	}
}
