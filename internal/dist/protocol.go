// Package dist distributes Jaaru's state-space exploration across
// processes: a coordinator (jaaru-server) owns the global branch frontier,
// the shared caps, and the POR seen-set publication log, and workers
// (jaaru-worker) claim batches of choice-prefix leases over HTTP, explore
// them with the ordinary core.Checker via core.LeaseRunner, and stream
// back donated splits plus order-insensitive stat deltas.
//
// The protocol is built so that worker death is a non-event for
// correctness:
//
//   - Commits carry deltas, gated by sequence number. Every commit carries
//     the lease's WireStats growth since the previous commit, numbered by a
//     per-lease Seq that increases by exactly 1 per commit. The coordinator
//     absorbs a delta into the merged result if and only if Seq advances
//     its per-lease high-water mark; a retried or duplicated commit is
//     acknowledged without being re-absorbed, so delivery retries are
//     idempotent even though the payload is incremental.
//   - Every non-final commit carries the residual claims: the exact
//     unexplored remainder of the lease batch at that commit. When a
//     lease's TTL expires the coordinator requeues the last residuals —
//     work since the last commit was never committed, so re-executing it on
//     another worker neither loses nor double-counts anything.
//   - Lease tokens fence zombies: a commit bearing a stale token is
//     rejected, so a worker that outlives its own lease expiry cannot race
//     the residuals' new claimant.
//   - A draining worker (SIGTERM) releases its lease: its last commit is
//     final but carries the unexplored residuals, which the coordinator
//     requeues immediately — graceful shutdown loses nothing and never
//     waits for (or depends on) a TTL expiry.
//
// A complete distributed run therefore merges to a Result bit-identical to
// the serial reference, by the same argument as the in-process parallel
// driver (order-insensitive merge + canonical sorts) — including runs where
// workers were killed mid-lease.
//
// Two wire codecs coexist on the same endpoints. v1 is the frozen JSON
// encoding; v2 is a length-prefixed binary encoding (core.WireEncoder)
// that the worker advertises via an Accept header and the coordinator
// answers in kind, so mixed fleets interoperate: every message has the
// same meaning under either codec and the negotiation is per-request.
package dist

import (
	"jaaru/internal/core"
)

// ProgSpec names a guest workload in wire form. The coordinator and the
// workers resolve it independently through a Resolver (the binaries use
// internal/benchlist), so guest code never crosses the wire.
type ProgSpec struct {
	Bench string `json:"bench"`
	N     int    `json:"n,omitempty"`
	Buggy bool   `json:"buggy,omitempty"`
}

// Resolver materializes a guest program from its wire spec.
type Resolver func(ProgSpec) (core.Program, error)

// JobRequest submits a workload: POST /v1/jobs.
type JobRequest struct {
	Spec ProgSpec     `json:"spec"`
	Opts core.Options `json:"opts"`
}

// JobResponse acknowledges a submitted job.
type JobResponse struct {
	ID string `json:"id"`
}

// Job states reported by GET /v1/jobs/{id}.
const (
	JobRunning = "running"
	JobDone    = "done"
)

// JobStatus is the poll response: GET /v1/jobs/{id}. Result is set once
// State is JobDone; bug witnesses are reachable through Result.Bugs.
type JobStatus struct {
	ID     string       `json:"id"`
	State  string       `json:"state"`
	Result *core.Result `json:"result,omitempty"`
}

// Lease-request outcomes.
const (
	// StatusGranted carries a lease in LeaseResponse.Lease.
	StatusGranted = "granted"
	// StatusIdle means no claimable work right now; poll again after
	// LeaseResponse.RetryMs.
	StatusIdle = "idle"
	// StatusShutdown tells the worker to exit: every submitted job is done
	// and the coordinator was configured to release its fleet.
	StatusShutdown = "shutdown"
)

// LeaseRequest asks for work: POST /v1/lease. PorVersion is the worker's
// cursor into the named job's POR publication log (0 when the worker has
// not seen the job before); the response ships the entries the worker is
// missing.
type LeaseRequest struct {
	Worker     string `json:"worker"`
	JobID      string `json:"job_id,omitempty"`
	PorVersion int    `json:"por_version,omitempty"`
}

// Lease describes one granted unit of work: a batch of frontier claims the
// worker runs sequentially on one checker. Batching is the coordinator's
// adaptive-lease-sizing lever — cheap scenarios get bigger batches so the
// RPC count per scenario stays bounded.
type Lease struct {
	ID     string           `json:"id"`
	Token  string           `json:"token"`
	JobID  string           `json:"job_id"`
	Spec   ProgSpec         `json:"spec"`
	Opts   core.Options     `json:"opts"`
	Claims []core.WireClaim `json:"claims"`
	// TTLMs echoes the job's lease TTL (-1: leases never expire).
	TTLMs int `json:"ttl_ms"`
}

// LeaseResponse answers a lease request.
type LeaseResponse struct {
	Status  string `json:"status"`
	RetryMs int    `json:"retry_ms,omitempty"`
	Lease   *Lease `json:"lease,omitempty"`
	// Hungry reports whether the coordinator's queue is low (donate splits).
	Hungry bool `json:"hungry,omitempty"`
	// Por / PorVersion ship the publication-log entries the worker's cursor
	// was missing, and the new cursor.
	Por        []core.WirePorEntry `json:"por,omitempty"`
	PorVersion int                 `json:"por_version,omitempty"`
}

// CommitRequest publishes lease progress: POST /v1/leases/{id}/commit.
// Seq starts at 1 and increases by 1 per commit of the lease; the
// coordinator ignores (but acknowledges) sequence numbers it has already
// applied, making delivery retries safe.
type CommitRequest struct {
	Token string `json:"token"`
	Seq   int64  `json:"seq"`
	// Splits are donated branch prefixes (frozen claims) for the frontier.
	Splits []core.WireClaim `json:"splits,omitempty"`
	// Residuals are the unexplored remainder of the lease batch as of this
	// commit. Required on non-final commits (the in-progress claim's frozen
	// snapshot plus any batch claims not yet started). On a final commit an
	// empty list means the batch is fully explored; a non-empty one
	// *releases* the lease (a draining worker handing back its remainder for
	// immediate requeue).
	Residuals []core.WireClaim `json:"residuals,omitempty"`
	// Delta is the lease's stats growth since its previous commit (the full
	// stats on Seq 1). The coordinator absorbs it only when Seq advances.
	Delta *core.WireStats `json:"delta"`
	// Final retires the lease: its batch is fully explored (or abandoned
	// after an engine error, marked by Delta.Truncated), or — with residuals
	// attached — released by a draining worker.
	Final bool `json:"final,omitempty"`
	// Por / PorVersion ship newly published local POR entries and the
	// worker's cursor into the coordinator log.
	Por        []core.WirePorEntry `json:"por,omitempty"`
	PorVersion int                 `json:"por_version,omitempty"`
}

// CommitResponse acknowledges a commit.
type CommitResponse struct {
	// Stale reports a dead token: the lease expired (or was never granted)
	// and the worker must abandon it without retrying.
	Stale bool `json:"stale,omitempty"`
	// Stopped tells the worker a global cap ended the job: finish with a
	// final commit instead of exploring further.
	Stopped bool `json:"stopped,omitempty"`
	Hungry  bool `json:"hungry,omitempty"`
	// Por / PorVersion ship coordinator-log entries the worker was missing
	// (excluding the ones this very commit contributed).
	Por        []core.WirePorEntry `json:"por,omitempty"`
	PorVersion int                 `json:"por_version,omitempty"`
}

// HeartbeatRequest renews a lease between commits:
// POST /v1/leases/{id}/heartbeat.
type HeartbeatRequest struct {
	Token string `json:"token"`
}

// HeartbeatResponse acknowledges a heartbeat.
type HeartbeatResponse struct {
	Stale   bool `json:"stale,omitempty"`
	Stopped bool `json:"stopped,omitempty"`
}

// errorResponse is the JSON body of non-2xx replies. Errors are always
// JSON regardless of the negotiated codec, so a v1 peer can always read a
// v2-capable peer's rejection.
type errorResponse struct {
	Error string `json:"error"`
}

// Wire codec content types. v1 (JSON) is the default and the fallback; v2
// is the binary framing from codec.go. The worker advertises v2 support
// with "Accept: application/x-jaaru-wire2" on JSON requests; once the
// coordinator answers in v2 the worker switches its requests over.
const (
	ContentTypeJSON   = "application/json"
	ContentTypeWireV2 = "application/x-jaaru-wire2"
)
