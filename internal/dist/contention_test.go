package dist

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"jaaru/internal/netsim"
)

// mutexProbeWriter is an http.ResponseWriter that asserts the coordinator
// mutex is NOT held whenever the handler writes the response. Holding c.mu
// across encode/write was the coordinator's worst hot-path contention point:
// every commit serialized behind whichever response was being marshalled.
// This is the regression gate for the marshal-outside-mutex invariant.
type mutexProbeWriter struct {
	t    *testing.T
	c    *Coordinator
	rec  *httptest.ResponseRecorder
	path string
}

func (w *mutexProbeWriter) Header() http.Header { return w.rec.Header() }

func (w *mutexProbeWriter) WriteHeader(code int) {
	w.probe("WriteHeader")
	w.rec.WriteHeader(code)
}

func (w *mutexProbeWriter) Write(b []byte) (int, error) {
	w.probe("Write")
	return w.rec.Write(b)
}

// probe fails the test when c.mu is locked at write time. The probing
// conversation is strictly sequential, so a failed TryLock can only mean the
// handler itself still holds the mutex.
func (w *mutexProbeWriter) probe(op string) {
	w.t.Helper()
	if w.c.mu.TryLock() {
		w.c.mu.Unlock()
		return
	}
	w.t.Errorf("%s: coordinator mutex held during response %s", w.path, op)
}

// probeTransport is a Doer that serves requests straight into the
// coordinator through a mutexProbeWriter.
type probeTransport struct {
	t *testing.T
	c *Coordinator
}

func (p *probeTransport) Do(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	p.c.ServeHTTP(&mutexProbeWriter{t: p.t, c: p.c, rec: rec, path: req.URL.Path}, req)
	return rec.Result(), nil
}

func (p *probeTransport) post(path string, body, out any) {
	p.t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		p.t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPost, "http://coordinator"+path, bytes.NewReader(payload))
	resp, _ := p.Do(req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		p.t.Fatalf("POST %s: HTTP %d", path, resp.StatusCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			p.t.Fatal(err)
		}
	}
}

func (p *probeTransport) get(path string) {
	p.t.Helper()
	req, _ := http.NewRequest(http.MethodGet, "http://coordinator"+path, nil)
	resp, _ := p.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		p.t.Fatalf("GET %s: HTTP %d", path, resp.StatusCode)
	}
}

// TestCoordinatorEncodesOutsideMutex runs a complete lease conversation —
// submit, lease grants, pipelined commits, heartbeat, status polls, metrics
// scrape — through a writer that fails the moment any response is encoded or
// written while c.mu is held, under both wire codecs.
func TestCoordinatorEncodesOutsideMutex(t *testing.T) {
	for _, codec := range []string{CodecV1, CodecAuto} {
		t.Run("codec="+codec, func(t *testing.T) {
			clock := netsim.NewClock()
			coord, err := NewCoordinator(Config{
				Resolve:          testResolver,
				Now:              clock.Now,
				ShutdownWhenDone: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			probe := &probeTransport{t: t, c: coord}

			var jr JobResponse
			probe.post("/v1/jobs", JobRequest{Spec: ProgSpec{Bench: "bugs"}, Opts: distOpts()}, &jr)

			w, err := NewWorker(WorkerConfig{
				Name:        "w1",
				BaseURL:     "http://coordinator",
				Client:      probe,
				Resolve:     testResolver,
				MaxRetries:  2,
				Backoff:     time.Microsecond,
				Sleep:       func(time.Duration) {},
				CommitEvery: 1, // maximize commit traffic through the probe
				Codec:       codec,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Heartbeats renew through their own handler; exercise it with a
			// live token by heartbeating an unknown lease (the 409 conflict
			// path writes a response too).
			hbReq, _ := json.Marshal(HeartbeatRequest{Token: "bogus"})
			r, _ := http.NewRequest(http.MethodPost, "http://coordinator/v1/leases/l1/heartbeat", bytes.NewReader(hbReq))
			resp, _ := probe.Do(r)
			resp.Body.Close()

			if err := w.Run(); err != nil {
				t.Fatal(err)
			}
			probe.get("/v1/jobs/" + jr.ID)
			probe.get("/v1/status")
			probe.get("/metrics")
		})
	}
}
