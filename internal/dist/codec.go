package dist

import (
	"encoding/json"
	"fmt"

	"jaaru/internal/core"
)

// Wire codec v2 framing for the lease-protocol messages. A frame is a
// 2-byte magic ("J2"), a one-byte message kind, then the message fields in
// the fixed order below, encoded with core.WireEncoder. Only the hot-path
// messages (lease, commit, heartbeat) have v2 frames; job submission,
// status polls, and every error body stay JSON so operators and v1 peers
// can always read them.
//
// core.Options travels as an embedded JSON blob inside the lease frame: it
// is a cold, evolving configuration struct that crosses the wire once per
// lease, so freezing its field order into the binary layout would buy
// nothing and cost a cross-version compatibility hazard.

const (
	wire2Magic0 = 'J'
	wire2Magic1 = '2'
)

// Frame kinds. The request/response pairing is implicit in the HTTP
// exchange; the kind byte exists so a frame decoded against the wrong
// endpoint fails loudly instead of misparsing.
const (
	frameLeaseRequest byte = iota + 1
	frameLeaseResponse
	frameCommitRequest
	frameCommitResponse
	frameHeartbeatRequest
	frameHeartbeatResponse
)

// encodeWire2 serializes one protocol envelope into a v2 frame appended to
// buf (from a pool; nil is fine). Unsupported envelope types report an
// error so call sites fall back to JSON explicitly, never silently.
func encodeWire2(buf []byte, v any) ([]byte, error) {
	e := core.NewWireEncoder(buf)
	e.Byte(wire2Magic0)
	e.Byte(wire2Magic1)
	switch m := v.(type) {
	case *LeaseRequest:
		e.Byte(frameLeaseRequest)
		e.String(m.Worker)
		e.String(m.JobID)
		e.Int(m.PorVersion)
	case *LeaseResponse:
		e.Byte(frameLeaseResponse)
		e.String(m.Status)
		e.Int(m.RetryMs)
		if m.Lease == nil {
			e.Bool(false)
		} else {
			e.Bool(true)
			l := m.Lease
			e.String(l.ID)
			e.String(l.Token)
			e.String(l.JobID)
			e.String(l.Spec.Bench)
			e.Int(l.Spec.N)
			e.Bool(l.Spec.Buggy)
			opts, err := json.Marshal(l.Opts)
			if err != nil {
				return nil, fmt.Errorf("encode lease opts: %v", err)
			}
			e.Blob(opts)
			e.Claims(l.Claims)
			e.Int(l.TTLMs)
		}
		e.Bool(m.Hungry)
		e.PorEntries(m.Por)
		e.Int(m.PorVersion)
	case *CommitRequest:
		e.Byte(frameCommitRequest)
		e.String(m.Token)
		e.Varint(m.Seq)
		e.Claims(m.Splits)
		e.Claims(m.Residuals)
		e.Stats(m.Delta)
		e.Bool(m.Final)
		e.PorEntries(m.Por)
		e.Int(m.PorVersion)
	case *CommitResponse:
		e.Byte(frameCommitResponse)
		e.Bool(m.Stale)
		e.Bool(m.Stopped)
		e.Bool(m.Hungry)
		e.PorEntries(m.Por)
		e.Int(m.PorVersion)
	case *HeartbeatRequest:
		e.Byte(frameHeartbeatRequest)
		e.String(m.Token)
	case *HeartbeatResponse:
		e.Byte(frameHeartbeatResponse)
		e.Bool(m.Stale)
		e.Bool(m.Stopped)
	default:
		return nil, fmt.Errorf("wire2: no frame for %T", v)
	}
	return e.Bytes(), nil
}

// decodeWire2 parses a v2 frame into the envelope v points at, verifying
// the magic, the kind byte, and full consumption.
func decodeWire2(data []byte, v any) error {
	d := core.NewWireDecoder(data)
	if d.Byte() != wire2Magic0 || d.Byte() != wire2Magic1 {
		return fmt.Errorf("wire2: bad magic")
	}
	kind := d.Byte()
	want := func(k byte) error {
		if kind != k {
			return fmt.Errorf("wire2: frame kind %d, want %d", kind, k)
		}
		return nil
	}
	switch m := v.(type) {
	case *LeaseRequest:
		if err := want(frameLeaseRequest); err != nil {
			return err
		}
		m.Worker = d.String()
		m.JobID = d.String()
		m.PorVersion = d.Int()
	case *LeaseResponse:
		if err := want(frameLeaseResponse); err != nil {
			return err
		}
		m.Status = d.String()
		m.RetryMs = d.Int()
		if d.Bool() {
			l := &Lease{
				ID:    d.String(),
				Token: d.String(),
				JobID: d.String(),
				Spec: ProgSpec{
					Bench: d.String(),
					N:     d.Int(),
					Buggy: d.Bool(),
				},
			}
			if opts := d.Blob(); d.Err() == nil && opts != nil {
				if err := json.Unmarshal(opts, &l.Opts); err != nil {
					return fmt.Errorf("wire2: lease opts: %v", err)
				}
			}
			l.Claims = d.Claims()
			l.TTLMs = d.Int()
			m.Lease = l
		}
		m.Hungry = d.Bool()
		m.Por = d.PorEntries()
		m.PorVersion = d.Int()
	case *CommitRequest:
		if err := want(frameCommitRequest); err != nil {
			return err
		}
		m.Token = d.String()
		m.Seq = d.Varint()
		m.Splits = d.Claims()
		m.Residuals = d.Claims()
		m.Delta = d.Stats()
		m.Final = d.Bool()
		m.Por = d.PorEntries()
		m.PorVersion = d.Int()
	case *CommitResponse:
		if err := want(frameCommitResponse); err != nil {
			return err
		}
		m.Stale = d.Bool()
		m.Stopped = d.Bool()
		m.Hungry = d.Bool()
		m.Por = d.PorEntries()
		m.PorVersion = d.Int()
	case *HeartbeatRequest:
		if err := want(frameHeartbeatRequest); err != nil {
			return err
		}
		m.Token = d.String()
	case *HeartbeatResponse:
		if err := want(frameHeartbeatResponse); err != nil {
			return err
		}
		m.Stale = d.Bool()
		m.Stopped = d.Bool()
	default:
		return fmt.Errorf("wire2: no frame for %T", v)
	}
	return d.Done()
}
