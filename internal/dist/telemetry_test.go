package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"jaaru/internal/core"
	"jaaru/internal/obs"
	"jaaru/internal/telemetry"
)

// scrape fetches one coordinator endpoint through the fabric and returns the
// raw body (unlike harness.rpc, which decodes JSON).
func (h *harness) scrape(path string) string {
	h.t.Helper()
	req, err := http.NewRequest(http.MethodGet, "http://coordinator"+path, nil)
	if err != nil {
		h.t.Fatal(err)
	}
	resp, err := h.fabric.Client("client").Do(req)
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		h.t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		h.t.Fatalf("GET %s: HTTP %d: %s", path, resp.StatusCode, body)
	}
	return string(body)
}

func (h *harness) status() telemetry.Status {
	h.t.Helper()
	var st telemetry.Status
	if err := json.Unmarshal([]byte(h.scrape("/v1/status")), &st); err != nil {
		h.t.Fatalf("decode /v1/status: %v", err)
	}
	return st
}

// TestWorkerRPCLatencyHistogram: with a deterministic per-hop fabric delay
// and the fake clock driving the worker's RPC timing, every successful
// lease-claim and commit round trip costs exactly 2x the hop latency — so
// the worker's RPC histograms must put every observation in the single exact
// bucket for that duration. This is the injectable-latency acceptance test:
// it proves the timing path measures the transport, not scheduling noise.
func TestWorkerRPCLatencyHistogram(t *testing.T) {
	const hop = 5 * time.Millisecond
	h := newHarness(t)
	h.submit("tree", distOpts())
	h.fabric.SetLatency("w1", hop)

	reg := obs.NewRegistry(nil)
	w, err := NewWorker(WorkerConfig{
		Name:        "w1",
		BaseURL:     "http://coordinator",
		Client:      h.fabric.Client("w1"),
		Resolve:     testResolver,
		MaxRetries:  2,
		Backoff:     time.Microsecond,
		Sleep:       func(time.Duration) {},
		CommitEvery: 2,
		Registry:    reg,
		Now:         h.clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if w.Observability() != reg {
		t.Fatal("Observability() did not return the configured registry")
	}

	roundTrip := (2 * hop).Nanoseconds()
	wantBucket := obs.HistBucketIndex(roundTrip)
	hists := reg.Histograms()
	for _, timer := range []obs.Timer{obs.TimerLeaseClaim, obs.TimerLeaseCommit} {
		s := hists[timer]
		if s.Count == 0 {
			t.Fatalf("%s: no observations recorded", timer)
		}
		if s.Sum != s.Count*roundTrip {
			t.Errorf("%s: sum = %d, want %d x %dns", timer, s.Sum, s.Count, roundTrip)
		}
		for i, n := range s.Counts {
			if n != 0 && i != wantBucket {
				t.Errorf("%s: %d observations in bucket %d, want all %d in bucket %d",
					timer, n, i, s.Count, wantBucket)
			}
		}
		if wantBucket >= len(s.Counts) || s.Counts[wantBucket] != s.Count {
			t.Errorf("%s: exact bucket %d holds %v/%d observations",
				timer, wantBucket, bucketCount(s, wantBucket), s.Count)
		}
	}
	// Untimed phases must not leak into the worker-local registry: it holds
	// RPC latency only (exploration histograms travel in the commits).
	if n := hists[obs.TimerPreFailure].Count; n != 0 {
		t.Errorf("pre_failure observations in worker RPC registry: %d", n)
	}
}

func bucketCount(s obs.HistSnapshot, i int) int64 {
	if i < 0 || i >= len(s.Counts) {
		return 0
	}
	return s.Counts[i]
}

// probeSink drives a real lease through the commit protocol and runs a probe
// callback after the first non-final commit — while the lease is active and
// the job is demonstrably mid-run.
type probeSink struct {
	h      *harness
	lease  *Lease
	seq    int64
	probed bool
	probe  func()
}

func (s *probeSink) Hungry() bool   { return false }
func (s *probeSink) Stopped() bool  { return false }
func (s *probeSink) Draining() bool { return false }

func (s *probeSink) Commit(splits []core.WireClaim, residuals []core.WireClaim, delta *core.WireStats, final bool) error {
	s.seq++
	var resp CommitResponse
	code := s.h.rpc("POST", "/v1/leases/"+s.lease.ID+"/commit", CommitRequest{
		Token: s.lease.Token, Seq: s.seq,
		Splits: splits, Residuals: residuals, Delta: delta, Final: final,
	}, &resp)
	if code != http.StatusOK {
		return fmt.Errorf("commit: HTTP %d", code)
	}
	if !final && !s.probed {
		s.probed = true
		s.probe()
	}
	return nil
}

// TestCoordinatorTelemetryMidRun is the curl-level acceptance test: while a
// lease is active (between two commits of a live run), GET /v1/status must
// report the job running with current scenario counts, a positive rate, an
// ETA, and phase-latency quantiles from the lease's last commit — and GET
// /metrics must serve parseable exposition carrying the same live counters.
// The telemetry reads must not perturb the run: the final merged result is
// still bit-identical to the serial reference.
func TestCoordinatorTelemetryMidRun(t *testing.T) {
	serial := serialReference(t, "tree", distOpts())
	h := newHarness(t)
	// Every RPC advances the fake clock by 2ms, so rates and ETAs are
	// positive and deterministic.
	h.fabric.SetLatency("client", time.Millisecond)
	id := h.submit("tree", distOpts())

	var grant LeaseResponse
	if code := h.rpc("POST", "/v1/lease", LeaseRequest{Worker: "w1"}, &grant); code != http.StatusOK || grant.Status != StatusGranted {
		t.Fatalf("lease: HTTP %d status %q", code, grant.Status)
	}
	prog, err := testResolver(grant.Lease.Spec)
	if err != nil {
		t.Fatal(err)
	}
	lr := core.NewLeaseRunner(prog, grant.Lease.Opts)
	lr.SetCommitEvery(2)

	probed := false
	sink := &probeSink{h: h, lease: grant.Lease}
	sink.probe = func() {
		probed = true
		st := h.status()
		if st.Service != "jaaru-coordinator" || st.UptimeSec <= 0 {
			t.Errorf("status envelope = %q / %vs", st.Service, st.UptimeSec)
		}
		if len(st.Jobs) != 1 {
			t.Fatalf("status has %d jobs, want 1", len(st.Jobs))
		}
		js := st.Jobs[0]
		if js.ID != id || js.State != "running" {
			t.Errorf("mid-run job = %q state %q, want %q running", js.ID, js.State, id)
		}
		if js.Scenarios <= 0 || js.Scenarios >= int64(serial.Scenarios) {
			t.Errorf("mid-run scenarios = %d, want in (0, %d)", js.Scenarios, serial.Scenarios)
		}
		if js.ActiveLeases != 1 || js.Workers != 1 {
			t.Errorf("mid-run leases/workers = %d/%d, want 1/1", js.ActiveLeases, js.Workers)
		}
		if js.Goal <= 0 || js.Rate <= 0 || js.ETASec <= 0 {
			t.Errorf("mid-run goal/rate/eta = %d/%v/%v, want all positive", js.Goal, js.Rate, js.ETASec)
		}
		q, ok := js.Latency["pre_failure"]
		if !ok || q.Count <= 0 || q.P50Ns < 0 || q.MaxNs < q.P50Ns {
			t.Errorf("mid-run pre_failure quantiles = %+v (present %v)", q, ok)
		}

		// The same live view must be served as valid Prometheus exposition.
		samples, err := telemetry.ParseExposition(bytes.NewReader([]byte(h.scrape("/metrics"))))
		if err != nil {
			t.Fatalf("mid-run /metrics does not parse: %v", err)
		}
		var scen float64
		histBuckets := 0
		for _, s := range samples {
			if s.Name == "jaaru_scenarios" && s.Labels["job"] == id {
				scen = s.Value
			}
			if s.Name == "jaaru_phase_latency_ns_bucket" && s.Labels["timer"] == "pre_failure" {
				histBuckets++
			}
		}
		if int64(scen) != js.Scenarios {
			t.Errorf("/metrics scenarios = %v, /v1/status says %d", scen, js.Scenarios)
		}
		if histBuckets == 0 {
			t.Error("/metrics has no pre_failure latency buckets mid-run")
		}
	}

	if err := lr.RunLease(grant.Lease.Claims, sink); err != nil {
		t.Fatal(err)
	}
	if !probed {
		t.Fatal("probe never fired: lease finished without a non-final commit")
	}

	assertSameResult(t, "mid-run-telemetry", serial, h.result(id))
	st := h.status()
	if len(st.Jobs) != 1 || st.Jobs[0].State != "done" {
		t.Fatalf("post-run status = %+v, want one done job", st.Jobs)
	}
	if st.Jobs[0].Scenarios != int64(serial.Scenarios) {
		t.Errorf("post-run scenarios = %d, serial %d", st.Jobs[0].Scenarios, serial.Scenarios)
	}
	if st.Jobs[0].FrontierLen != 0 || st.Jobs[0].ActiveLeases != 0 {
		t.Errorf("post-run frontier/leases = %d/%d, want 0/0",
			st.Jobs[0].FrontierLen, st.Jobs[0].ActiveLeases)
	}
}

// TestScrapeSmoke boots the coordinator on a real ephemeral TCP port, runs a
// job through a worker over real HTTP, and validates a real scrape of
// /metrics and /v1/status — the end-to-end path a Prometheus server and
// jaaru-top exercise in production. make scrape-smoke runs exactly this test.
func TestScrapeSmoke(t *testing.T) {
	coord, err := NewCoordinator(Config{Resolve: testResolver, ShutdownWhenDone: true})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback listener available: %v", err)
	}
	srv := &http.Server{Handler: coord}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	body, err := json.Marshal(JobRequest{Spec: ProgSpec{Bench: "bugs"}, Opts: distOpts()})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var jr JobResponse
	err = json.NewDecoder(resp.Body).Decode(&jr)
	resp.Body.Close()
	if err != nil || jr.ID == "" {
		t.Fatalf("submit over TCP: id %q err %v", jr.ID, err)
	}

	w, err := NewWorker(WorkerConfig{
		Name:        "w1",
		BaseURL:     base,
		Resolve:     testResolver,
		Backoff:     time.Millisecond,
		CommitEvery: 4,
		Registry:    obs.NewRegistry(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: HTTP %d err %v", path, resp.StatusCode, err)
		}
		return b
	}

	samples, err := telemetry.ParseExposition(bytes.NewReader(get("/metrics")))
	if err != nil {
		t.Fatalf("/metrics scrape does not parse: %v", err)
	}
	found := false
	for _, s := range samples {
		if s.Name == "jaaru_scenarios" && s.Labels["job"] == jr.ID && s.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no positive jaaru_scenarios{job=%q} sample in %d samples", jr.ID, len(samples))
	}

	var st telemetry.Status
	if err := json.Unmarshal(get("/v1/status"), &st); err != nil {
		t.Fatalf("decode /v1/status: %v", err)
	}
	if len(st.Jobs) != 1 || st.Jobs[0].State != "done" || st.Jobs[0].Bugs == 0 {
		t.Fatalf("status over TCP = %+v, want one done buggy job", st.Jobs)
	}
	// The worker's own registry recorded the real round trips.
	if w.Observability().Histograms()[obs.TimerLeaseClaim].Count == 0 {
		t.Error("worker recorded no lease_claim round trips over real HTTP")
	}
}
