package dist

import (
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"jaaru/internal/core"
	"jaaru/internal/netsim"
)

// ---- frame round trips ------------------------------------------------------

func testClaims() []core.WireClaim {
	return []core.WireClaim{
		{
			Points: []core.WirePoint{
				{Kind: "fail", N: 4, Idx: 1},
				{Kind: "rf", N: 3, Idx: 2},
				{Kind: "evict", N: 2, Idx: 0},
			},
			Limits: []int{3, 3, 1},
			Memos:  []*core.WireMemo{{FP: 0xdeadbeef, Steps: 42, Vec: []int64{1, 0, 7}}, nil, nil},
		},
		{
			// A frozen donated split: same prefix as above (exercises the
			// codec's prefix interning), no limits, no memos.
			Points: []core.WirePoint{
				{Kind: "fail", N: 4, Idx: 1},
				{Kind: "rf", N: 3, Idx: 0},
			},
		},
	}
}

func testPorEntries() []core.WirePorEntry {
	return []core.WirePorEntry{
		{FP: 0x1234, Delta: core.WirePorDelta{
			Scenarios: 5, Execs: 7, Steps: 99, MaxRF: 2, MaxRel: 1,
			NewPoints: [3]int{1, 2, 0}, Replayed: 3, Fresh: 2,
			Bugs: []core.WirePorBug{{
				Type: 1, Message: "torn line", Exec: 4, Count: 2, Rel: "0,1",
				Suffix: []core.WirePoint{{Kind: "rf", N: 2, Idx: 1}},
			}},
		}},
		{FP: 0x5678, Delta: core.WirePorDelta{Scenarios: 1, Execs: 1, Steps: 8, Fresh: 1}},
	}
}

// TestWire2FrameRoundTrip drives every protocol envelope through the v2
// framing and back, expecting exact structural equality.
func TestWire2FrameRoundTrip(t *testing.T) {
	delta := &core.WireStats{
		Scenarios: 9, ExecsPost: 8, FpointsPre: 7, Steps: 1234, MaxRF: 3,
		NewPoints: [3]int{2, 1, 0},
	}
	envelopes := []any{
		&LeaseRequest{Worker: "w1", JobID: "j1", PorVersion: 5},
		&LeaseResponse{
			Status: StatusGranted,
			Lease: &Lease{
				ID: "l1", Token: "tok-1", JobID: "j1",
				Spec:   ProgSpec{Bench: "tree", N: 6, Buggy: true},
				Opts:   distOpts(),
				Claims: testClaims(),
				TTLMs:  60000,
			},
			Hungry: true, Por: testPorEntries(), PorVersion: 2,
		},
		&LeaseResponse{Status: StatusIdle, RetryMs: 250},
		&LeaseResponse{Status: StatusShutdown},
		&CommitRequest{
			Token: "tok-1", Seq: 3,
			Splits:    testClaims()[1:],
			Residuals: testClaims()[:1],
			Delta:     delta, Final: true,
			Por: testPorEntries(), PorVersion: 4,
		},
		&CommitRequest{Token: "tok-2", Seq: 1, Delta: &core.WireStats{}},
		&CommitResponse{Stale: true, Stopped: true, Hungry: true, Por: testPorEntries()[:1], PorVersion: 9},
		&CommitResponse{},
		&HeartbeatRequest{Token: "tok-1"},
		&HeartbeatResponse{Stale: true, Stopped: true},
	}
	for _, env := range envelopes {
		frame, err := encodeWire2(nil, env)
		if err != nil {
			t.Fatalf("%T: encode: %v", env, err)
		}
		got := reflect.New(reflect.TypeOf(env).Elem()).Interface()
		if err := decodeWire2(frame, got); err != nil {
			t.Fatalf("%T: decode: %v", env, err)
		}
		if !reflect.DeepEqual(env, got) {
			t.Errorf("%T: round trip differs:\nin:  %+v\nout: %+v", env, env, got)
		}
	}
}

// TestWire2FrameErrors: corrupt frames fail loudly, never misparse.
func TestWire2FrameErrors(t *testing.T) {
	frame, err := encodeWire2(nil, &HeartbeatRequest{Token: "tok"})
	if err != nil {
		t.Fatal(err)
	}

	// Wrong envelope type for the frame's kind byte.
	if err := decodeWire2(frame, &CommitRequest{}); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Errorf("kind mismatch: err = %v, want frame-kind error", err)
	}
	// Bad magic.
	bad := append([]byte{}, frame...)
	bad[0] = 'X'
	if err := decodeWire2(bad, &HeartbeatRequest{}); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: err = %v, want magic error", err)
	}
	// Trailing garbage after a complete frame.
	if err := decodeWire2(append(append([]byte{}, frame...), 0x00), &HeartbeatRequest{}); err == nil {
		t.Error("trailing byte accepted")
	}
	// Truncations anywhere in the frame must error, not panic.
	for cut := 0; cut < len(frame); cut++ {
		if err := decodeWire2(frame[:cut], &HeartbeatRequest{}); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Types without a v2 frame are refused on both sides.
	if _, err := encodeWire2(nil, &JobRequest{}); err == nil {
		t.Error("encodeWire2 accepted an unframed type")
	}
	if err := decodeWire2(frame, &JobRequest{}); err == nil {
		t.Error("decodeWire2 accepted an unframed type")
	}
}

// ---- negotiation ------------------------------------------------------------

// exchange records one observed RPC: the request's codec headers and the
// response's content type, for successful round trips only.
type exchange struct {
	path      string
	reqCT     string
	reqAccept string
	respCT    string
	status    int
}

// recordingDoer wraps a fabric client and records every exchange's codec
// headers, so negotiation tests can assert the wire-level handshake rather
// than just the end state.
type recordingDoer struct {
	inner Doer

	mu  sync.Mutex
	log []exchange
}

func (r *recordingDoer) Do(req *http.Request) (*http.Response, error) {
	resp, err := r.inner.Do(req)
	if err != nil {
		return resp, err
	}
	r.mu.Lock()
	r.log = append(r.log, exchange{
		path:      req.URL.Path,
		reqCT:     req.Header.Get("Content-Type"),
		reqAccept: req.Header.Get("Accept"),
		respCT:    resp.Header.Get("Content-Type"),
		status:    resp.StatusCode,
	})
	r.mu.Unlock()
	return resp, nil
}

func (r *recordingDoer) exchanges() []exchange {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]exchange(nil), r.log...)
}

// newHarnessCfg is newHarness with coordinator knobs (codec, lease sizing)
// under test control. Resolve/Now/ShutdownWhenDone are filled in.
func newHarnessCfg(t *testing.T, cfg Config) *harness {
	t.Helper()
	clock := netsim.NewClock()
	cfg.Resolve = testResolver
	cfg.Now = clock.Now
	cfg.ShutdownWhenDone = true
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fabric := netsim.NewFabric(coord)
	fabric.SetClock(clock)
	return &harness{t: t, coord: coord, fabric: fabric, clock: clock}
}

// workerCfg builds a worker over the harness fabric with full WorkerConfig
// control (codec pinning, wrapped clients); unset transport knobs get the
// deterministic test defaults.
func (h *harness) workerCfg(cfg WorkerConfig) *Worker {
	h.t.Helper()
	cfg.BaseURL = "http://coordinator"
	if cfg.Client == nil {
		cfg.Client = h.fabric.Client(cfg.Name)
	}
	cfg.Resolve = testResolver
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 2
	}
	if cfg.Backoff == 0 {
		cfg.Backoff = time.Microsecond
	}
	if cfg.Sleep == nil {
		cfg.Sleep = func(time.Duration) {}
	}
	w, err := NewWorker(cfg)
	if err != nil {
		h.t.Fatal(err)
	}
	return w
}

// TestCodecAutoUpgrade: an auto-codec worker's first request is JSON
// advertising v2 via Accept; the coordinator answers v2 and every subsequent
// request rides the binary codec. The merged result is still exact.
func TestCodecAutoUpgrade(t *testing.T) {
	serial := serialReference(t, "bugs", distOpts())
	h := newHarness(t)
	id := h.submit("bugs", distOpts())

	rec := &recordingDoer{inner: h.fabric.Client("w1")}
	w := h.workerCfg(WorkerConfig{Name: "w1", Client: rec, CommitEvery: 2})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "auto-upgrade", serial, h.result(id))

	log := rec.exchanges()
	if len(log) < 3 {
		t.Fatalf("only %d exchanges recorded", len(log))
	}
	first := log[0]
	if first.reqCT != ContentTypeJSON || first.reqAccept != ContentTypeWireV2 {
		t.Errorf("first request: CT %q Accept %q, want JSON advertising v2", first.reqCT, first.reqAccept)
	}
	if first.respCT != ContentTypeWireV2 {
		t.Errorf("first response: CT %q, want v2 (upgrade)", first.respCT)
	}
	for i, x := range log[1:] {
		if x.reqCT != ContentTypeWireV2 {
			t.Errorf("exchange %d after upgrade: request CT %q, want v2 (%s)", i+1, x.reqCT, x.path)
		}
		if x.status == http.StatusOK && x.respCT != ContentTypeWireV2 {
			t.Errorf("exchange %d after upgrade: response CT %q, want v2 (%s)", i+1, x.respCT, x.path)
		}
	}
}

// TestCodecV1Pinned: a -codec v1 worker never advertises v2 and the whole
// conversation stays JSON.
func TestCodecV1Pinned(t *testing.T) {
	serial := serialReference(t, "tree", distOpts())
	h := newHarness(t)
	id := h.submit("tree", distOpts())

	rec := &recordingDoer{inner: h.fabric.Client("w1")}
	w := h.workerCfg(WorkerConfig{Name: "w1", Client: rec, CommitEvery: 2, Codec: CodecV1})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "v1-pinned", serial, h.result(id))

	for i, x := range rec.exchanges() {
		if x.reqCT != ContentTypeJSON || x.reqAccept != "" {
			t.Errorf("exchange %d: request CT %q Accept %q, want plain JSON", i, x.reqCT, x.reqAccept)
		}
		if x.respCT == ContentTypeWireV2 {
			t.Errorf("exchange %d: coordinator answered v2 to a v1-pinned worker (%s)", i, x.path)
		}
	}
}

// TestCodecDisabledCoordinator: -disable-wire-v2 keeps every response JSON;
// an auto worker therefore never upgrades, and the run stays exact.
func TestCodecDisabledCoordinator(t *testing.T) {
	serial := serialReference(t, "bugs", distOpts())
	h := newHarnessCfg(t, Config{DisableWireV2: true})
	id := h.submit("bugs", distOpts())

	rec := &recordingDoer{inner: h.fabric.Client("w1")}
	w := h.workerCfg(WorkerConfig{Name: "w1", Client: rec, CommitEvery: 2})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "v2-disabled", serial, h.result(id))

	for i, x := range rec.exchanges() {
		if x.reqCT != ContentTypeJSON {
			t.Errorf("exchange %d: request CT %q, want JSON (no upgrade offered)", i, x.reqCT)
		}
		if x.respCT == ContentTypeWireV2 {
			t.Errorf("exchange %d: response CT v2 despite DisableWireV2 (%s)", i, x.path)
		}
	}
}

// v1Coordinator simulates an old coordinator build in front of the real one:
// binary frames bounce with the JSON 400 a v1 json.Unmarshal failure
// produces, and the Accept header is ignored (stripped) the way a build
// that predates it would.
type v1Coordinator struct {
	inner http.Handler

	mu       sync.Mutex
	rejected int
}

func (v *v1Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get("Content-Type") == ContentTypeWireV2 {
		v.mu.Lock()
		v.rejected++
		v.mu.Unlock()
		w.Header().Set("Content-Type", ContentTypeJSON)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(errorResponse{Error: "invalid character 'J' looking for beginning of value"})
		return
	}
	r.Header.Del("Accept")
	v.inner.ServeHTTP(w, r)
}

// TestCodecV2DowngradeAgainstV1Coordinator: a -codec v2 worker whose first
// binary frame bounces off a v1 coordinator downgrades to JSON transparently
// — one resend, no lost work, exact merge.
func TestCodecV2DowngradeAgainstV1Coordinator(t *testing.T) {
	serial := serialReference(t, "bugs", distOpts())

	clock := netsim.NewClock()
	coord, err := NewCoordinator(Config{Resolve: testResolver, Now: clock.Now, ShutdownWhenDone: true})
	if err != nil {
		t.Fatal(err)
	}
	v1 := &v1Coordinator{inner: coord}
	fabric := netsim.NewFabric(v1)
	fabric.SetClock(clock)
	h := &harness{t: t, coord: coord, fabric: fabric, clock: clock}

	id := h.submit("bugs", distOpts())
	rec := &recordingDoer{inner: fabric.Client("w1")}
	w := h.workerCfg(WorkerConfig{Name: "w1", Client: rec, CommitEvery: 2, Codec: CodecV2})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "v2-downgrade", serial, h.result(id))

	if v1.rejected != 1 {
		t.Errorf("coordinator rejected %d binary frames, want exactly 1 (downgrade sticks)", v1.rejected)
	}
	log := rec.exchanges()
	if len(log) < 3 {
		t.Fatalf("only %d exchanges recorded", len(log))
	}
	if log[0].reqCT != ContentTypeWireV2 || log[0].status != http.StatusBadRequest {
		t.Errorf("first exchange: CT %q status %d, want a bounced v2 frame", log[0].reqCT, log[0].status)
	}
	if log[1].reqCT != ContentTypeJSON || log[1].path != log[0].path {
		t.Errorf("second exchange: CT %q path %q, want the same message resent as JSON on %q",
			log[1].reqCT, log[1].path, log[0].path)
	}
	for i, x := range log[1:] {
		if x.reqCT != ContentTypeJSON {
			t.Errorf("exchange %d after downgrade: request CT %q, want JSON", i+1, x.reqCT)
		}
	}
}

// TestCodecMixedFleet is the version-skew acceptance gate: pinned-v1,
// pinned-v2, and auto workers share one job; the v2 worker holding the root
// lease is killed mid-lease and its subtree re-executed by the mixed
// survivors after TTL expiry. The merge must stay bit-identical to serial.
func TestCodecMixedFleet(t *testing.T) {
	for _, bench := range []string{"tree", "bugs"} {
		t.Run(bench, func(t *testing.T) {
			serial := serialReference(t, bench, distOpts())
			h := newHarness(t)
			id := h.submit(bench, distOpts())

			// The victim speaks binary from the first frame and dies after 4
			// successful requests: one lease grant plus three commits.
			w3 := h.workerCfg(WorkerConfig{Name: "w3", CommitEvery: 1, Codec: CodecV2})
			h.fabric.KillAfter("w3", 4)
			if err := w3.Run(); err == nil {
				t.Fatal("killed worker exited cleanly; expected transport failure")
			}
			h.clock.Advance(61 * time.Second)

			errs := runWorkers(
				h.workerCfg(WorkerConfig{Name: "w1", CommitEvery: 2, Codec: CodecV1}),
				h.workerCfg(WorkerConfig{Name: "w2", CommitEvery: 2, Codec: CodecAuto}),
			)
			for i, err := range errs {
				if err != nil {
					t.Fatalf("worker %d: %v", i+1, err)
				}
			}
			res := h.result(id)
			assertSameResult(t, bench, serial, res)
			if res.Metrics.LeasesExpired < 1 {
				t.Errorf("LeasesExpired = %d, want >= 1", res.Metrics.LeasesExpired)
			}
			if res.Metrics.LeaseRequeues < 1 {
				t.Errorf("LeaseRequeues = %d, want >= 1 (the killed v2 worker's subtree)", res.Metrics.LeaseRequeues)
			}
		})
	}
}

// TestCodecV2KilledWorkerDuplicateCommits crosses the binary codec with the
// redelivery fault: dropped commit acks force a pinned-v2 worker to resend
// the same sequence numbers as binary frames, and the seq-gated absorption
// must keep the merge exact.
func TestCodecV2DuplicateCommits(t *testing.T) {
	serial := serialReference(t, "bugs", distOpts())
	h := newHarness(t)
	id := h.submit("bugs", distOpts())
	w := h.workerCfg(WorkerConfig{
		Name:        "w1",
		Client:      &commitReplyDropper{inner: h.fabric.Client("w1"), drops: 2},
		CommitEvery: 1,
		Codec:       CodecV2,
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "v2-duplicate-commits", serial, h.result(id))
}
