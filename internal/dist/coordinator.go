package dist

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"jaaru/internal/core"
	"jaaru/internal/obs"
	"jaaru/internal/telemetry"
)

// Config parameterizes a Coordinator.
type Config struct {
	// Resolve materializes submitted ProgSpecs (required).
	Resolve Resolver
	// LowMark is the queue length below which the coordinator asks workers
	// to donate splits; 0 means 2× the number of distinct workers seen
	// (mirroring the in-process frontier's 2×Workers watermark).
	LowMark int
	// Now is the clock leases are measured against (default time.Now).
	// Tests inject a fake clock to drive TTL expiry deterministically.
	Now func() time.Time
	// ShutdownWhenDone releases the fleet: once at least one job was
	// submitted and every job is done, lease requests answer
	// StatusShutdown instead of StatusIdle. Used by the in-process test
	// harness and batch runs; a long-running service leaves it false.
	ShutdownWhenDone bool
	// RetryMs is the poll-again hint on idle lease responses (default 200).
	RetryMs int
}

// lease is one granted unit of work.
type lease struct {
	id    string
	token string
	job   *job
	// claim is the unexplored remainder this lease is responsible for: the
	// granted claim before the first commit, the latest residual after.
	// It is exactly what expiry requeues.
	claim core.WireClaim
	// cum is the latest committed cumulative stats (nil before the first
	// commit). It is folded into the job exactly once, when the lease
	// retires — by final commit or by expiry.
	cum *core.WireStats
	seq int64
	// deadline is the expiry instant, zero when the job's TTL is disabled.
	deadline time.Time
}

// job is one submitted workload and everything needed to merge its result.
type job struct {
	id   string
	spec ProgSpec
	opts core.Options
	acc  *core.MergeAcc

	queued  []core.WireClaim
	leases  map[string]*lease
	workers map[string]struct{}

	stopped bool // a cap fired: wind down cooperatively
	capHit  bool

	// start is the submission instant (cfg.Now), the baseline the live
	// scenarios/sec rate and ETA are measured against.
	start time.Time

	retiredScen  int                 // scenarios in absorbed (retired) stats
	retiredExecs int                 // post-failure executions in retired stats
	bugKeys      map[string]struct{} // distinct canonical bug keys seen

	porLog   []core.WirePorEntry
	porIndex map[uint64]struct{}

	result *core.Result
}

func (j *job) reg() *obs.Registry { return j.acc.Observability() }

func (j *job) done() bool { return j.result != nil }

// scenarioTotal is the global scenario count the caps are enforced against:
// retired stats plus the latest cumulative commit of every active lease.
func (j *job) scenarioTotal() int {
	n := j.retiredScen
	for _, l := range j.leases {
		if l.cum != nil {
			n += l.cum.Scenarios
		}
	}
	return n
}

// Coordinator owns the global frontier, caps, and POR publication log of
// every submitted job, and serves the lease protocol over HTTP. All methods
// are safe for concurrent use; it implements http.Handler.
type Coordinator struct {
	cfg Config
	mux *http.ServeMux

	start time.Time

	mu        sync.Mutex
	jobs      map[string]*job
	order     []string
	workers   map[string]struct{}
	submitted bool
	nextJob   int
	nextLease int
	nextToken int
}

// NewCoordinator builds a coordinator; cfg.Resolve is required.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.Resolve == nil {
		return nil, fmt.Errorf("dist: Config.Resolve is required")
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.RetryMs <= 0 {
		cfg.RetryMs = 200
	}
	c := &Coordinator{
		cfg:     cfg,
		start:   cfg.Now(),
		jobs:    make(map[string]*job),
		workers: make(map[string]struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleJobStatus)
	mux.HandleFunc("POST /v1/lease", c.handleLease)
	mux.HandleFunc("POST /v1/leases/{id}/commit", c.handleCommit)
	mux.HandleFunc("POST /v1/leases/{id}/heartbeat", c.handleHeartbeat)
	mux.Handle("GET /metrics", telemetry.MetricsHandler(c.telemetrySeries))
	mux.Handle("GET /v1/status", telemetry.StatusHandler(c.status))
	c.mux = mux
	return c, nil
}

func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mux.ServeHTTP(w, r)
}

// ---- job lifecycle ----------------------------------------------------------

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := readJSON(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	prog, err := c.cfg.Resolve(req.Spec)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	acc := core.NewMergeAcc(prog, req.Opts)
	c.mu.Lock()
	c.nextJob++
	j := &job{
		id:       fmt.Sprintf("j%d", c.nextJob),
		spec:     req.Spec,
		opts:     acc.Options(),
		acc:      acc,
		start:    c.cfg.Now(),
		queued:   []core.WireClaim{{}}, // the root prefix: the whole tree
		leases:   make(map[string]*lease),
		workers:  make(map[string]struct{}),
		bugKeys:  make(map[string]struct{}),
		porIndex: make(map[uint64]struct{}),
	}
	c.jobs[j.id] = j
	c.order = append(c.order, j.id)
	c.submitted = true
	j.reg().NoteRPC()
	j.reg().SetGoal(int64(j.opts.MaxScenarios))
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, JobResponse{ID: j.id})
}

func (c *Coordinator) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	c.sweepLocked()
	j, ok := c.jobs[r.PathValue("id")]
	var st JobStatus
	if ok {
		j.reg().NoteRPC()
		st = JobStatus{ID: j.id, State: JobRunning}
		if j.done() {
			st.State = JobDone
			st.Result = j.result
		}
	}
	c.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{"no such job"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// ---- lease protocol ---------------------------------------------------------

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := readJSON(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	if req.Worker != "" {
		c.workers[req.Worker] = struct{}{}
	}
	for _, id := range c.order {
		j := c.jobs[id]
		if j.done() || j.stopped || len(j.queued) == 0 {
			continue
		}
		// LIFO, like the in-process frontier: deepest prefixes first keeps
		// claims near the workers' warm subtrees.
		claim := j.queued[len(j.queued)-1]
		j.queued = j.queued[:len(j.queued)-1]
		c.nextLease++
		c.nextToken++
		l := &lease{
			// Tokens fence stale workers from expired leases; they are not
			// an authentication mechanism (see docs/ALGORITHM.md).
			id:    fmt.Sprintf("l%d", c.nextLease),
			token: fmt.Sprintf("t%d", c.nextToken),
			job:   j,
			claim: claim,
		}
		ttl := j.opts.LeaseTTLMs
		if ttl > 0 {
			l.deadline = c.cfg.Now().Add(time.Duration(ttl) * time.Millisecond)
		}
		j.leases[l.id] = l
		if req.Worker != "" {
			j.workers[req.Worker] = struct{}{}
		}
		j.reg().NoteRPC()
		j.reg().NoteLease()
		j.reg().NoteClaim(len(j.queued))
		resp := LeaseResponse{
			Status: StatusGranted,
			Lease: &Lease{
				ID:    l.id,
				Token: l.token,
				JobID: j.id,
				Spec:  j.spec,
				Opts:  j.opts,
				Claim: claim,
				TTLMs: ttl,
			},
			Hungry:     c.hungryLocked(j),
			PorVersion: len(j.porLog),
		}
		// Ship the publication-log suffix the worker is missing. The cursor
		// only applies when the worker guessed the job it would be assigned;
		// otherwise it replays the log from the start (absorb is idempotent).
		from := 0
		if req.JobID == j.id {
			// Clamp both ends: a negative cursor (malformed request) must
			// not slice-panic, it just replays the whole log.
			from = min(max(0, req.PorVersion), len(j.porLog))
		}
		resp.Por = append([]core.WirePorEntry(nil), j.porLog[from:]...)
		writeJSON(w, http.StatusOK, resp)
		return
	}
	if c.cfg.ShutdownWhenDone && c.submitted && c.allDoneLocked() {
		writeJSON(w, http.StatusOK, LeaseResponse{Status: StatusShutdown})
		return
	}
	writeJSON(w, http.StatusOK, LeaseResponse{Status: StatusIdle, RetryMs: c.cfg.RetryMs})
}

func (c *Coordinator) handleCommit(w http.ResponseWriter, r *http.Request) {
	var req CommitRequest
	if err := readJSON(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	l := c.findLeaseLocked(r.PathValue("id"), req.Token)
	if l == nil {
		// Expired (or never granted): the residual is already requeued, and
		// everything since the worker's last applied commit will be
		// re-executed by the next claimant — the worker must abandon.
		writeJSON(w, http.StatusConflict, CommitResponse{Stale: true})
		return
	}
	j := l.job
	j.reg().NoteRPC()
	if req.Seq <= l.seq {
		// Duplicate delivery of an applied commit (retry after a lost
		// response): acknowledge without re-applying anything.
		writeJSON(w, http.StatusOK, c.commitAckLocked(j, req.PorVersion, len(j.porLog)))
		return
	}
	if req.Cum == nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"commit without cumulative stats"})
		return
	}
	if !req.Final && req.Residual == nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"non-final commit without residual"})
		return
	}
	// Validate the whole payload before mutating any state, so a malformed
	// commit (version-skewed or buggy worker) is rejected atomically: the
	// cum is what sweepLocked/retireLeaseLocked later absorb without an
	// error path, and the claims are granted verbatim to future workers —
	// a bad one accepted here would crash-loop every claimant.
	if err := req.Cum.Validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf("cum: %v", err)})
		return
	}
	if req.Residual != nil {
		if err := req.Residual.Validate(); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf("residual: %v", err)})
			return
		}
	}
	for i := range req.Splits {
		if err := req.Splits[i].Validate(); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf("split %d: %v", i, err)})
			return
		}
	}
	// Ingest POR entries before snapshotting the response window, so the
	// reply's Por slice excludes this commit's own contributions.
	logBefore := len(j.porLog)
	for i := range req.Por {
		e := req.Por[i]
		if _, seen := j.porIndex[e.FP]; seen {
			continue
		}
		if err := core.AbsorbPorEntry(&e); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
			return
		}
		j.porIndex[e.FP] = struct{}{}
		j.porLog = append(j.porLog, e)
	}
	l.seq = req.Seq
	l.cum = req.Cum
	if len(req.Splits) > 0 && !j.stopped {
		// Splits and the residual travel in one atomic commit, so the
		// donated subtrees are accounted exactly once: the residual's
		// limits were already lowered past them by splitOff.
		j.queued = append(j.queued, req.Splits...)
		j.reg().NotePush(len(req.Splits), len(j.queued))
		j.reg().NoteDonation(len(req.Splits))
	}
	if req.Final {
		if req.Residual != nil {
			// Final commit with a residual: the lease is *released* (worker
			// drain), not complete. Requeue the remainder exactly as TTL
			// expiry would — immediately, so nothing waits for (or depends
			// on) an expiry that may never come when TTLs are disabled.
			requeued := false
			if !j.stopped {
				j.queued = append(j.queued, *req.Residual)
				j.reg().NotePush(1, len(j.queued))
				requeued = true
			}
			j.reg().NoteLeaseReleased(requeued)
			j.reg().Emit("lease_released", "lease", l.id, "requeued", requeued)
		}
		c.retireLeaseLocked(l)
	} else {
		l.claim = *req.Residual
		if ttl := j.opts.LeaseTTLMs; ttl > 0 {
			l.deadline = c.cfg.Now().Add(time.Duration(ttl) * time.Millisecond)
		}
	}
	// Cooperative caps, on the same thresholds the in-process sharedCaps
	// enforces. Bug keys dedupe canonically before any cap accounting, so
	// the same bug reported by two workers in one stop window counts once.
	for _, key := range req.Cum.BugKeys() {
		if _, ok := j.bugKeys[key]; ok {
			continue
		}
		j.bugKeys[key] = struct{}{}
		if j.opts.StopAtFirstBug || len(j.bugKeys) >= j.opts.MaxBugs {
			c.stopJobLocked(j)
		}
	}
	if j.scenarioTotal() >= j.opts.MaxScenarios {
		c.stopJobLocked(j)
	}
	c.maybeFinishLocked(j)
	writeJSON(w, http.StatusOK, c.commitAckLocked(j, req.PorVersion, logBefore))
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := readJSON(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	l := c.findLeaseLocked(r.PathValue("id"), req.Token)
	if l == nil {
		writeJSON(w, http.StatusConflict, HeartbeatResponse{Stale: true})
		return
	}
	l.job.reg().NoteRPC()
	if ttl := l.job.opts.LeaseTTLMs; ttl > 0 {
		l.deadline = c.cfg.Now().Add(time.Duration(ttl) * time.Millisecond)
	}
	writeJSON(w, http.StatusOK, HeartbeatResponse{Stopped: l.job.stopped})
}

// ---- internals --------------------------------------------------------------

func (c *Coordinator) findLeaseLocked(id, token string) *lease {
	for _, j := range c.jobs {
		if l, ok := j.leases[id]; ok && l.token == token {
			return l
		}
	}
	return nil
}

func (c *Coordinator) commitAckLocked(j *job, porFrom, porTo int) CommitResponse {
	porFrom = min(max(0, porFrom), porTo)
	return CommitResponse{
		Stopped:    j.stopped,
		Hungry:     c.hungryLocked(j),
		Por:        append([]core.WirePorEntry(nil), j.porLog[porFrom:porTo]...),
		PorVersion: len(j.porLog),
	}
}

func (c *Coordinator) hungryLocked(j *job) bool {
	if j.stopped || j.done() {
		return false
	}
	lowMark := c.cfg.LowMark
	if lowMark <= 0 {
		lowMark = 2 * max(1, len(c.workers))
	}
	return len(j.queued) < lowMark
}

// sweepLocked expires overdue leases: the last committed cumulative stats
// are kept (retired) and the last residual requeued, so the subtree the
// dead worker still owned is re-executed exactly once by a future claimant.
func (c *Coordinator) sweepLocked() {
	now := c.cfg.Now()
	for _, id := range c.order {
		j := c.jobs[id]
		if j.done() {
			continue
		}
		for lid, l := range j.leases {
			if l.deadline.IsZero() || !now.After(l.deadline) {
				continue
			}
			if l.cum != nil {
				j.retiredScen += l.cum.Scenarios
				j.retiredExecs += l.cum.ExecsPost
				// Absorb errors cannot happen here: handleCommit ran
				// WireStats.Validate on this cum at ingest, which covers
				// every Absorb error path (malformed payloads got 400).
				_ = j.acc.Absorb(l.cum)
			}
			delete(j.leases, lid)
			requeued := false
			if !j.stopped {
				j.queued = append(j.queued, l.claim)
				requeued = true
			}
			j.reg().NoteLeaseExpired(requeued)
			j.reg().Emit("lease_expired", "lease", lid, "requeued", requeued)
		}
		c.maybeFinishLocked(j)
	}
}

func (c *Coordinator) stopJobLocked(j *job) {
	if !j.stopped {
		j.stopped = true
		j.capHit = true
	}
}

func (c *Coordinator) retireLeaseLocked(l *lease) {
	j := l.job
	if l.cum != nil {
		j.retiredScen += l.cum.Scenarios
		j.retiredExecs += l.cum.ExecsPost
		// Validated at commit ingest (see sweepLocked); cannot error.
		_ = j.acc.Absorb(l.cum)
	}
	delete(j.leases, l.id)
}

// maybeFinishLocked builds the merged result once the job's frontier has
// drained: no queued claims and no active leases (a stopped job finishes as
// soon as its in-flight leases retire; its queued claims are discarded, the
// cap already marked the exploration incomplete).
func (c *Coordinator) maybeFinishLocked(j *job) {
	if j.done() || len(j.leases) != 0 {
		return
	}
	if !j.stopped && len(j.queued) != 0 {
		return
	}
	j.queued = nil
	j.acc.SetWorkers(len(j.workers))
	j.result = j.acc.BuildResult(!j.capHit)
}

func (c *Coordinator) allDoneLocked() bool {
	for _, j := range c.jobs {
		if !j.done() {
			return false
		}
	}
	return true
}

// ---- telemetry --------------------------------------------------------------

// jobViewLocked builds the live telemetry view of one job: the merged
// (retired) registry snapshot overlaid with every active lease's latest
// cumulative commit, so a scrape mid-run sees current progress, not just
// progress as of the last lease retire. The overlay is read-only — the
// authoritative fold (MergeAcc.Absorb) still happens exactly once per lease,
// at retire — and histogram/timing data stays outside the canonical result
// by construction (see obs.Timer).
func (c *Coordinator) jobViewLocked(j *job) (obs.Metrics, obs.HistVec, telemetry.JobStatus) {
	reg := j.reg()
	m := reg.Snapshot()
	hv := reg.Histograms()
	scen := int64(j.retiredScen)
	execs := int64(j.retiredExecs)
	for _, l := range j.leases {
		if l.cum == nil {
			continue
		}
		scen += int64(l.cum.Scenarios)
		execs += int64(l.cum.ExecsPost)
		if l.cum.Obs != nil {
			cv, lh := core.DecodeWireObs(l.cum.Obs)
			m = m.AddVec(cv)
			hv = hv.Merge(lh)
		}
	}

	state := "running"
	switch {
	case j.done():
		state = "done"
	case j.stopped:
		state = "stopping"
	}
	elapsed := c.cfg.Now().Sub(j.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(scen) / elapsed
	}
	goal := int64(j.opts.MaxScenarios)
	st := telemetry.JobStatus{
		ID:           j.id,
		Bench:        j.spec.Bench,
		State:        state,
		Scenarios:    scen,
		Goal:         goal,
		Rate:         rate,
		ETASec:       telemetry.ETASec(scen, goal, rate),
		FrontierLen:  int64(len(j.queued)),
		MaxDepth:     m.MaxChoiceDepth,
		ActiveLeases: len(j.leases),
		Workers:      int64(len(j.workers)),
		Bugs:         len(j.bugKeys),
		Latency:      telemetry.LatencyMap(hv),
	}
	if execs > 0 {
		st.Executions = execs + 1 // the shared pre-failure execution
	}
	return m, hv, st
}

// telemetrySeries is the GET /metrics source: one labeled series per job, in
// submission order.
func (c *Coordinator) telemetrySeries() []telemetry.Series {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	out := make([]telemetry.Series, 0, len(c.order))
	for _, id := range c.order {
		m, hv, _ := c.jobViewLocked(c.jobs[id])
		out = append(out, telemetry.Series{
			Labels:  []telemetry.Label{{Name: "job", Value: id}},
			Metrics: m,
			Hists:   hv,
		})
	}
	return out
}

// status is the GET /v1/status source: one JobStatus row per job.
func (c *Coordinator) status() telemetry.Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	st := telemetry.Status{
		Service:   "jaaru-coordinator",
		UptimeSec: c.cfg.Now().Sub(c.start).Seconds(),
	}
	for _, id := range c.order {
		_, _, js := c.jobViewLocked(c.jobs[id])
		st.Jobs = append(st.Jobs, js)
	}
	return st
}

// ---- http plumbing ----------------------------------------------------------

const maxBodyBytes = 64 << 20

func readJSON(r *http.Request, v any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		return fmt.Errorf("read body: %v", err)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("decode body: %v", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encode response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(buf)
}
