package dist

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"jaaru/internal/core"
	"jaaru/internal/obs"
	"jaaru/internal/telemetry"
)

// Config parameterizes a Coordinator.
type Config struct {
	// Resolve materializes submitted ProgSpecs (required).
	Resolve Resolver
	// LowMark is the queue length below which the coordinator asks workers
	// to donate splits; 0 means the queue must feed every currently starving
	// worker (one whose latest lease poll found nothing). A fixed watermark
	// keeps a busy fleet permanently "hungry" on small frontiers, and every
	// hungry scenario costs a donation commit — starvation is the signal
	// that actually means a worker is idle.
	LowMark int
	// Now is the clock leases are measured against (default time.Now).
	// Tests inject a fake clock to drive TTL expiry deterministically.
	Now func() time.Time
	// ShutdownWhenDone releases the fleet: once at least one job was
	// submitted and every job is done, lease requests answer
	// StatusShutdown instead of StatusIdle. Used by the in-process test
	// harness and batch runs; a long-running service leaves it false.
	ShutdownWhenDone bool
	// RetryMs is the poll-again hint on idle lease responses (default 200).
	RetryMs int
	// TargetLeaseScenarios sizes lease batches adaptively: the coordinator
	// grants enough claims per lease that, at the observed scenarios-per-
	// claim rate, one lease covers about this many scenarios (default 32).
	TargetLeaseScenarios int
	// MaxLeaseBatch caps the claims granted per lease regardless of the
	// observed rate (default 16), bounding the work lost to a worker death.
	MaxLeaseBatch int
	// DisableWireV2 pins the coordinator to JSON responses even for workers
	// that advertise codec v2 (mixed-fleet rollbacks and the v1-coordinator
	// interop tests).
	DisableWireV2 bool
}

// lease is one granted unit of work.
type lease struct {
	id    string
	token string
	job   *job
	// claims is the unexplored remainder this lease is responsible for: the
	// granted batch before the first commit, the latest residuals after.
	// It is exactly what expiry requeues. Committed deltas were absorbed as
	// they arrived (seq-gated), so expiry has no stats to fold.
	claims []core.WireClaim
	seq    int64
	// deadline is the expiry instant, zero when the job's TTL is disabled.
	deadline time.Time
}

// job is one submitted workload and everything needed to merge its result.
type job struct {
	id   string
	spec ProgSpec
	opts core.Options
	acc  *core.MergeAcc

	queued  []core.WireClaim
	leases  map[string]*lease
	workers map[string]struct{}

	stopped bool // a cap fired: wind down cooperatively
	capHit  bool

	// start is the submission instant (cfg.Now), the baseline the live
	// scenarios/sec rate and ETA are measured against.
	start time.Time

	absorbedScen  int                 // scenarios in absorbed delta commits
	absorbedExecs int                 // post-failure executions, same source
	claimsGranted int                 // claims handed out, for batch sizing
	bugKeys       map[string]struct{} // distinct canonical bug keys seen

	porLog   []core.WirePorEntry
	porIndex map[uint64]struct{}

	result *core.Result
}

func (j *job) reg() *obs.Registry { return j.acc.Observability() }

func (j *job) done() bool { return j.result != nil }

// Coordinator owns the global frontier, caps, and POR publication log of
// every submitted job, and serves the lease protocol over HTTP. All methods
// are safe for concurrent use; it implements http.Handler.
type Coordinator struct {
	cfg Config
	mux *http.ServeMux

	start time.Time

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string
	workers map[string]struct{}
	// starving holds workers whose latest lease poll found nothing; a grant
	// removes them. It is the default hunger signal: donations are solicited
	// only while the queue cannot feed every idle worker, so a busy fleet on
	// a small frontier is not milked for a split on every scenario.
	starving  map[string]struct{}
	submitted bool
	nextJob   int
	nextLease int
	nextToken int
}

// NewCoordinator builds a coordinator; cfg.Resolve is required.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.Resolve == nil {
		return nil, fmt.Errorf("dist: Config.Resolve is required")
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.RetryMs <= 0 {
		cfg.RetryMs = 200
	}
	if cfg.TargetLeaseScenarios <= 0 {
		cfg.TargetLeaseScenarios = 32
	}
	if cfg.MaxLeaseBatch <= 0 {
		cfg.MaxLeaseBatch = 16
	}
	c := &Coordinator{
		cfg:      cfg,
		start:    cfg.Now(),
		jobs:     make(map[string]*job),
		workers:  make(map[string]struct{}),
		starving: make(map[string]struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleJobStatus)
	mux.HandleFunc("POST /v1/lease", c.handleLease)
	mux.HandleFunc("POST /v1/leases/{id}/commit", c.handleCommit)
	mux.HandleFunc("POST /v1/leases/{id}/heartbeat", c.handleHeartbeat)
	mux.Handle("GET /metrics", telemetry.MetricsHandler(c.telemetrySeries))
	mux.Handle("GET /v1/status", telemetry.StatusHandler(c.status))
	c.mux = mux
	return c, nil
}

func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mux.ServeHTTP(w, r)
}

// ---- job lifecycle ----------------------------------------------------------

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := readJSON(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	prog, err := c.cfg.Resolve(req.Spec)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	acc := core.NewMergeAcc(prog, req.Opts)
	c.mu.Lock()
	c.nextJob++
	j := &job{
		id:       fmt.Sprintf("j%d", c.nextJob),
		spec:     req.Spec,
		opts:     acc.Options(),
		acc:      acc,
		start:    c.cfg.Now(),
		queued:   []core.WireClaim{{}}, // the root prefix: the whole tree
		leases:   make(map[string]*lease),
		workers:  make(map[string]struct{}),
		bugKeys:  make(map[string]struct{}),
		porIndex: make(map[uint64]struct{}),
	}
	c.jobs[j.id] = j
	c.order = append(c.order, j.id)
	c.submitted = true
	j.reg().NoteRPC()
	j.reg().SetGoal(int64(j.opts.MaxScenarios))
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, JobResponse{ID: j.id})
}

func (c *Coordinator) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	c.sweepLocked()
	j, ok := c.jobs[r.PathValue("id")]
	var st JobStatus
	if ok {
		j.reg().NoteRPC()
		st = JobStatus{ID: j.id, State: JobRunning}
		if j.done() {
			st.State = JobDone
			st.Result = j.result
		}
	}
	c.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{"no such job"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// ---- lease protocol ---------------------------------------------------------

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	v2 := c.wantsV2(r)
	var req LeaseRequest
	rx, err := readRequest(r, &req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	c.mu.Lock()
	c.sweepLocked()
	if req.Worker != "" {
		c.workers[req.Worker] = struct{}{}
	}
	for _, id := range c.order {
		j := c.jobs[id]
		if j.done() || j.stopped || len(j.queued) == 0 {
			continue
		}
		// LIFO, like the in-process frontier: deepest prefixes first keeps
		// claims near the workers' warm subtrees. The batch size adapts to
		// the observed scenarios-per-claim rate (batchSizeLocked).
		k := c.batchSizeLocked(j)
		claims := make([]core.WireClaim, k)
		for i := range claims {
			claims[i] = j.queued[len(j.queued)-1]
			j.queued = j.queued[:len(j.queued)-1]
			j.reg().NoteClaim(len(j.queued))
		}
		j.claimsGranted += k
		c.nextLease++
		c.nextToken++
		l := &lease{
			// Tokens fence stale workers from expired leases; they are not
			// an authentication mechanism (see docs/ALGORITHM.md).
			id:     fmt.Sprintf("l%d", c.nextLease),
			token:  fmt.Sprintf("t%d", c.nextToken),
			job:    j,
			claims: claims,
		}
		ttl := j.opts.LeaseTTLMs
		if ttl > 0 {
			l.deadline = c.cfg.Now().Add(time.Duration(ttl) * time.Millisecond)
		}
		j.leases[l.id] = l
		if req.Worker != "" {
			j.workers[req.Worker] = struct{}{}
			delete(c.starving, req.Worker)
		}
		reg := j.reg()
		reg.NoteRPC()
		reg.NoteLease()
		resp := LeaseResponse{
			Status: StatusGranted,
			Lease: &Lease{
				ID:     l.id,
				Token:  l.token,
				JobID:  j.id,
				Spec:   j.spec,
				Opts:   j.opts,
				Claims: claims,
				TTLMs:  ttl,
			},
			Hungry:     c.hungryLocked(j),
			PorVersion: len(j.porLog),
		}
		// Ship the publication-log suffix the worker is missing. The cursor
		// only applies when the worker guessed the job it would be assigned;
		// otherwise it replays the log from the start (absorb is idempotent).
		from := 0
		if req.JobID == j.id {
			// Clamp both ends: a negative cursor (malformed request) must
			// not slice-panic, it just replays the whole log.
			from = min(max(0, req.PorVersion), len(j.porLog))
		}
		resp.Por = append([]core.WirePorEntry(nil), j.porLog[from:]...)
		c.mu.Unlock()
		writeResp(w, http.StatusOK, &resp, v2, reg, rx)
		return
	}
	shutdown := c.cfg.ShutdownWhenDone && c.submitted && c.allDoneLocked()
	if req.Worker != "" && !shutdown {
		c.starving[req.Worker] = struct{}{}
	}
	c.mu.Unlock()
	if shutdown {
		writeResp(w, http.StatusOK, &LeaseResponse{Status: StatusShutdown}, v2, nil, rx)
		return
	}
	writeResp(w, http.StatusOK, &LeaseResponse{Status: StatusIdle, RetryMs: c.cfg.RetryMs}, v2, nil, rx)
}

// batchSizeLocked sizes one lease grant: enough claims that, at the job's
// observed scenarios-per-claim rate, the lease covers about
// TargetLeaseScenarios scenarios before its final commit. Purely
// counter-based (no clocks), so runs are reproducible.
func (c *Coordinator) batchSizeLocked(j *job) int {
	perClaim := 1
	if j.claimsGranted > 0 {
		perClaim = max(1, j.absorbedScen/j.claimsGranted)
	}
	k := max(1, c.cfg.TargetLeaseScenarios/perClaim)
	return min(k, c.cfg.MaxLeaseBatch, len(j.queued))
}

func (c *Coordinator) handleCommit(w http.ResponseWriter, r *http.Request) {
	v2 := c.wantsV2(r)
	var req CommitRequest
	rx, err := readRequest(r, &req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	c.mu.Lock()
	c.sweepLocked()
	l := c.findLeaseLocked(r.PathValue("id"), req.Token)
	if l == nil {
		// Expired (or never granted): the residuals are already requeued,
		// and everything since the worker's last applied commit will be
		// re-executed by the next claimant — the worker must abandon.
		c.mu.Unlock()
		writeResp(w, http.StatusConflict, &CommitResponse{Stale: true}, v2, nil, rx)
		return
	}
	j := l.job
	reg := j.reg()
	reg.NoteRPC()
	if req.Seq <= l.seq {
		// Duplicate delivery of an applied commit (retry after a lost
		// response): acknowledge without re-absorbing anything. This gate is
		// what keeps the incremental payloads idempotent.
		ack := c.commitAckLocked(j, req.PorVersion, len(j.porLog))
		c.mu.Unlock()
		writeResp(w, http.StatusOK, &ack, v2, reg, rx)
		return
	}
	// Validate the whole payload before mutating any state, so a malformed
	// commit (version-skewed or buggy worker) is rejected atomically: the
	// delta feeds MergeAcc.Absorb below without an error path, and the
	// claims are granted verbatim to future workers — a bad one accepted
	// here would crash-loop every claimant. Rejections are always JSON so a
	// version-skewed peer can read them.
	fail := func(code int, msg string) {
		c.mu.Unlock()
		writeJSON(w, code, errorResponse{msg})
	}
	if req.Delta == nil {
		fail(http.StatusBadRequest, "commit without delta stats")
		return
	}
	if !req.Final && len(req.Residuals) == 0 {
		fail(http.StatusBadRequest, "non-final commit without residuals")
		return
	}
	if err := req.Delta.Validate(); err != nil {
		fail(http.StatusBadRequest, fmt.Sprintf("delta: %v", err))
		return
	}
	for i := range req.Residuals {
		if err := req.Residuals[i].Validate(); err != nil {
			fail(http.StatusBadRequest, fmt.Sprintf("residual %d: %v", i, err))
			return
		}
	}
	for i := range req.Splits {
		if err := req.Splits[i].Validate(); err != nil {
			fail(http.StatusBadRequest, fmt.Sprintf("split %d: %v", i, err))
			return
		}
	}
	// Ingest POR entries before snapshotting the response window, so the
	// reply's Por slice excludes this commit's own contributions.
	logBefore := len(j.porLog)
	for i := range req.Por {
		e := req.Por[i]
		if _, seen := j.porIndex[e.FP]; seen {
			continue
		}
		if err := core.AbsorbPorEntry(&e); err != nil {
			fail(http.StatusBadRequest, err.Error())
			return
		}
		j.porIndex[e.FP] = struct{}{}
		j.porLog = append(j.porLog, e)
	}
	l.seq = req.Seq
	// Absorb the delta immediately: with seq-gated deltas there is nothing
	// to fold at retire or expiry, and the live telemetry view is simply
	// the registry (no per-lease overlay).
	j.absorbedScen += req.Delta.Scenarios
	j.absorbedExecs += req.Delta.ExecsPost
	// Absorb errors cannot happen here: Validate above covers every Absorb
	// error path (malformed payloads got 400 before any mutation).
	_ = j.acc.Absorb(req.Delta)
	reg.NoteCommitBatch(int64(req.Delta.Scenarios))
	if len(req.Splits) > 0 && !j.stopped {
		// Splits and the residuals travel in one atomic commit, so the
		// donated subtrees are accounted exactly once: the residuals'
		// limits were already lowered past them by splitOff.
		j.queued = append(j.queued, req.Splits...)
		reg.NotePush(len(req.Splits), len(j.queued))
		reg.NoteDonation(len(req.Splits))
	}
	if req.Final {
		if len(req.Residuals) > 0 {
			// Final commit with residuals: the lease is *released* (worker
			// drain), not complete. Requeue the remainder exactly as TTL
			// expiry would — immediately, so nothing waits for (or depends
			// on) an expiry that may never come when TTLs are disabled.
			requeued := false
			if !j.stopped {
				j.queued = append(j.queued, req.Residuals...)
				reg.NotePush(len(req.Residuals), len(j.queued))
				requeued = true
			}
			reg.NoteLeaseReleased(requeued)
			reg.Emit("lease_released", "lease", l.id, "requeued", requeued)
		}
		delete(j.leases, l.id)
	} else {
		l.claims = req.Residuals
		if ttl := j.opts.LeaseTTLMs; ttl > 0 {
			l.deadline = c.cfg.Now().Add(time.Duration(ttl) * time.Millisecond)
		}
	}
	// Cooperative caps, on the same thresholds the in-process sharedCaps
	// enforces. Bug keys dedupe canonically before any cap accounting, so
	// the same bug reported by two workers in one stop window counts once.
	// A delta carries a bug exactly when its count grew, which includes
	// every first sighting.
	for _, key := range req.Delta.BugKeys() {
		if _, ok := j.bugKeys[key]; ok {
			continue
		}
		j.bugKeys[key] = struct{}{}
		if j.opts.StopAtFirstBug || len(j.bugKeys) >= j.opts.MaxBugs {
			c.stopJobLocked(j)
		}
	}
	if j.absorbedScen >= j.opts.MaxScenarios {
		c.stopJobLocked(j)
	}
	c.maybeFinishLocked(j)
	ack := c.commitAckLocked(j, req.PorVersion, logBefore)
	c.mu.Unlock()
	writeResp(w, http.StatusOK, &ack, v2, reg, rx)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	v2 := c.wantsV2(r)
	var req HeartbeatRequest
	rx, err := readRequest(r, &req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	c.mu.Lock()
	c.sweepLocked()
	l := c.findLeaseLocked(r.PathValue("id"), req.Token)
	if l == nil {
		c.mu.Unlock()
		writeResp(w, http.StatusConflict, &HeartbeatResponse{Stale: true}, v2, nil, rx)
		return
	}
	reg := l.job.reg()
	reg.NoteRPC()
	if ttl := l.job.opts.LeaseTTLMs; ttl > 0 {
		l.deadline = c.cfg.Now().Add(time.Duration(ttl) * time.Millisecond)
	}
	stopped := l.job.stopped
	c.mu.Unlock()
	writeResp(w, http.StatusOK, &HeartbeatResponse{Stopped: stopped}, v2, reg, rx)
}

// ---- internals --------------------------------------------------------------

func (c *Coordinator) findLeaseLocked(id, token string) *lease {
	for _, j := range c.jobs {
		if l, ok := j.leases[id]; ok && l.token == token {
			return l
		}
	}
	return nil
}

func (c *Coordinator) commitAckLocked(j *job, porFrom, porTo int) CommitResponse {
	porFrom = min(max(0, porFrom), porTo)
	return CommitResponse{
		Stopped:    j.stopped,
		Hungry:     c.hungryLocked(j),
		Por:        append([]core.WirePorEntry(nil), j.porLog[porFrom:porTo]...),
		PorVersion: len(j.porLog),
	}
}

func (c *Coordinator) hungryLocked(j *job) bool {
	if j.stopped || j.done() {
		return false
	}
	if c.cfg.LowMark > 0 {
		return len(j.queued) < c.cfg.LowMark
	}
	// Default: hungry only while the queue cannot feed every worker whose
	// latest poll came up empty. Each donation costs the donor a flush
	// commit, so hunger must mean real starvation, not a watermark.
	return len(j.queued) < len(c.starving)
}

// sweepLocked expires overdue leases: everything the dead worker committed
// was already absorbed (seq-gated deltas), so expiry just requeues the last
// residuals — the subtree the worker still owned is re-executed exactly
// once by a future claimant.
func (c *Coordinator) sweepLocked() {
	now := c.cfg.Now()
	for _, id := range c.order {
		j := c.jobs[id]
		if j.done() {
			continue
		}
		for lid, l := range j.leases {
			if l.deadline.IsZero() || !now.After(l.deadline) {
				continue
			}
			delete(j.leases, lid)
			requeued := false
			if !j.stopped {
				j.queued = append(j.queued, l.claims...)
				requeued = true
			}
			j.reg().NoteLeaseExpired(requeued)
			j.reg().Emit("lease_expired", "lease", lid, "requeued", requeued)
		}
		c.maybeFinishLocked(j)
	}
}

func (c *Coordinator) stopJobLocked(j *job) {
	if !j.stopped {
		j.stopped = true
		j.capHit = true
	}
}

// maybeFinishLocked builds the merged result once the job's frontier has
// drained: no queued claims and no active leases (a stopped job finishes as
// soon as its in-flight leases retire; its queued claims are discarded, the
// cap already marked the exploration incomplete).
func (c *Coordinator) maybeFinishLocked(j *job) {
	if j.done() || len(j.leases) != 0 {
		return
	}
	if !j.stopped && len(j.queued) != 0 {
		return
	}
	j.queued = nil
	j.acc.SetWorkers(len(j.workers))
	j.result = j.acc.BuildResult(!j.capHit)
}

func (c *Coordinator) allDoneLocked() bool {
	for _, j := range c.jobs {
		if !j.done() {
			return false
		}
	}
	return true
}

// ---- telemetry --------------------------------------------------------------

// jobViewLocked builds the live telemetry view of one job. Deltas are
// absorbed into the merge accumulator the moment they commit, so the
// registry snapshot *is* the live view — no per-lease overlay — and
// histogram/timing data stays outside the canonical result by construction
// (see obs.Timer).
func (c *Coordinator) jobViewLocked(j *job) (obs.Metrics, obs.HistVec, telemetry.JobStatus) {
	reg := j.reg()
	m := reg.Snapshot()
	hv := reg.Histograms()
	scen := int64(j.absorbedScen)
	execs := int64(j.absorbedExecs)

	state := "running"
	switch {
	case j.done():
		state = "done"
	case j.stopped:
		state = "stopping"
	}
	elapsed := c.cfg.Now().Sub(j.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(scen) / elapsed
	}
	goal := int64(j.opts.MaxScenarios)
	st := telemetry.JobStatus{
		ID:           j.id,
		Bench:        j.spec.Bench,
		State:        state,
		Scenarios:    scen,
		Goal:         goal,
		Rate:         rate,
		ETASec:       telemetry.ETASec(scen, goal, rate),
		FrontierLen:  int64(len(j.queued)),
		MaxDepth:     m.MaxChoiceDepth,
		ActiveLeases: len(j.leases),
		Workers:      int64(len(j.workers)),
		Bugs:         len(j.bugKeys),
		Latency:      telemetry.LatencyMap(hv),
		BytesTx:      m.BytesTx,
		BytesRx:      m.BytesRx,
		CommitBatch:  m.CommitBatchSize,
	}
	if execs > 0 {
		st.Executions = execs + 1 // the shared pre-failure execution
	}
	return m, hv, st
}

// telemetrySeries is the GET /metrics source: one labeled series per job, in
// submission order.
func (c *Coordinator) telemetrySeries() []telemetry.Series {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	out := make([]telemetry.Series, 0, len(c.order))
	for _, id := range c.order {
		m, hv, _ := c.jobViewLocked(c.jobs[id])
		out = append(out, telemetry.Series{
			Labels:  []telemetry.Label{{Name: "job", Value: id}},
			Metrics: m,
			Hists:   hv,
		})
	}
	return out
}

// status is the GET /v1/status source: one JobStatus row per job.
func (c *Coordinator) status() telemetry.Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	st := telemetry.Status{
		Service:   "jaaru-coordinator",
		UptimeSec: c.cfg.Now().Sub(c.start).Seconds(),
	}
	for _, id := range c.order {
		_, _, js := c.jobViewLocked(c.jobs[id])
		st.Jobs = append(st.Jobs, js)
	}
	return st
}

// ---- http plumbing ----------------------------------------------------------

const maxBodyBytes = 64 << 20

// wantsV2 reports whether the peer sent codec v2 or advertised it via
// Accept, and the coordinator is willing to answer in v2. Negotiation is
// per-request: a mixed fleet has v1 and v2 exchanges interleaved on the
// same endpoints.
func (c *Coordinator) wantsV2(r *http.Request) bool {
	if c.cfg.DisableWireV2 {
		return false
	}
	if r.Header.Get("Content-Type") == ContentTypeWireV2 {
		return true
	}
	for _, v := range r.Header.Values("Accept") {
		if strings.Contains(v, ContentTypeWireV2) {
			return true
		}
	}
	return false
}

// readRequest decodes the request body by its declared codec and returns
// the body size for wire accounting.
func readRequest(r *http.Request, v any) (int, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		return 0, fmt.Errorf("read body: %v", err)
	}
	if r.Header.Get("Content-Type") == ContentTypeWireV2 {
		return len(body), decodeWire2(body, v)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return len(body), fmt.Errorf("decode body: %v", err)
	}
	return len(body), nil
}

func readJSON(r *http.Request, v any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		return fmt.Errorf("read body: %v", err)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("decode body: %v", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encode response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", ContentTypeJSON)
	w.WriteHeader(code)
	w.Write(buf)
}

// wire2Pool recycles encode buffers across lease/commit/heartbeat
// responses; the lease hot path allocates nothing per response beyond what
// the message itself forces.
var wire2Pool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4096); return &b },
}

// writeResp encodes v with the negotiated codec and writes it. Call sites
// invoke it strictly OUTSIDE the coordinator mutex — encoding under c.mu is
// the contention bug the regression test in coordinator_lock_test.go pins.
// reg, when non-nil, accumulates the exchange's wire bytes (tx=response,
// rx=request) into the job's registry.
func writeResp(w http.ResponseWriter, code int, v any, v2 bool, reg *obs.Registry, rx int) {
	if v2 {
		bp := wire2Pool.Get().(*[]byte)
		enc, err := encodeWire2(*bp, v)
		if err == nil {
			w.Header().Set("Content-Type", ContentTypeWireV2)
			w.WriteHeader(code)
			w.Write(enc)
			reg.NoteBytes(int64(len(enc)), int64(rx))
			*bp = enc[:0]
			wire2Pool.Put(bp)
			return
		}
		wire2Pool.Put(bp)
		// No v2 frame for this type: fall back to JSON below.
	}
	buf, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encode response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", ContentTypeJSON)
	w.WriteHeader(code)
	w.Write(buf)
	reg.NoteBytes(int64(len(buf)), int64(rx))
}
