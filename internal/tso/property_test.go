package tso

import (
	"math/rand"
	"testing"
	"testing/quick"

	"jaaru/internal/pmem"
)

// Property tests over random operation sequences: whatever order entries
// are pushed and drained, the operational simulator must uphold the
// invariants Table 1 and §2 promise.

func randomEntries(rng *rand.Rand, n int) []Entry {
	lines := []pmem.Addr{0x1000, 0x1040, 0x1080}
	out := make([]Entry, n)
	for i := range out {
		line := lines[rng.Intn(len(lines))]
		switch rng.Intn(5) {
		case 0, 1:
			out[i] = Entry{Kind: Store, Addr: line.Add(uint64(rng.Intn(7)) * 8),
				Size: 8, Val: uint64(i + 1)}
		case 2:
			out[i] = Entry{Kind: CLFlush, Addr: line}
		case 3:
			out[i] = Entry{Kind: CLFlushOpt, Addr: line}
		default:
			out[i] = Entry{Kind: SFence}
		}
	}
	return out
}

// Stores to the cache receive strictly increasing sequence numbers, in
// push (program) order — the TSO total store order.
func TestPropertyStoreOrderPreserved(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		st := newFake()
		ts := NewThreadState(0)
		entries := randomEntries(rng, int(nOps%40)+1)
		var pushed []pmem.Addr
		for _, e := range entries {
			ts.Push(st, e)
			if e.Kind == Store {
				pushed = append(pushed, e.Addr)
			}
			if rng.Intn(3) == 0 && ts.SBLen() > 0 {
				ts.EvictOldest(st)
			}
		}
		ts.Mfence(st)
		// Every pushed store reached the cache, and per-address queues are
		// in increasing sequence order.
		for _, a := range pushed {
			if _, ok := st.exec.Newest(a); !ok {
				return false
			}
		}
		for _, a := range st.exec.TouchedAddrs() {
			q := st.exec.Queue(a)
			for i := 1; i < len(q); i++ {
				if q[i].Seq <= q[i-1].Seq {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// After Mfence, both buffers are empty and every line flushed by a
// clflush/clflushopt that was pushed after that line's last store has a
// writeback bound covering the store.
func TestPropertyMfenceQuiesces(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		st := newFake()
		ts := NewThreadState(0)
		type lastState struct {
			storeIdx int // index of last store to the line, -1 none
			flushIdx int // index of last flush covering the line, -1 none
		}
		lines := make(map[pmem.Addr]*lastState)
		look := func(line pmem.Addr) *lastState {
			if lines[line] == nil {
				lines[line] = &lastState{storeIdx: -1, flushIdx: -1}
			}
			return lines[line]
		}
		entries := randomEntries(rng, int(nOps%40)+1)
		for i, e := range entries {
			ts.Push(st, e)
			switch e.Kind {
			case Store:
				look(e.Addr.Line()).storeIdx = i
			case CLFlush, CLFlushOpt:
				look(e.Addr.Line()).flushIdx = i
			}
		}
		ts.Mfence(st)
		if ts.SBLen() != 0 || ts.FBLen() != 0 {
			return false
		}
		for line, stt := range lines {
			if stt.flushIdx > stt.storeIdx && stt.storeIdx >= 0 {
				// The line's last store precedes a flush of that line:
				// the writeback bound must cover the store.
				newest, _ := newestOnLine(st.exec, line)
				if st.exec.CacheLine(line).Begin < newest {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func newestOnLine(e *pmem.Execution, line pmem.Addr) (pmem.Seq, bool) {
	var newest pmem.Seq
	found := false
	for off := pmem.Addr(0); off < pmem.CacheLineSize; off++ {
		if bs, ok := e.Newest(line + off); ok && bs.Seq > newest {
			newest, found = bs.Seq, true
		}
	}
	return newest, found
}

// Store-buffer bypassing always returns the newest pushed value for an
// address, regardless of partial eviction.
func TestPropertyBypassNewest(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		st := newFake()
		ts := NewThreadState(0)
		newest := make(map[pmem.Addr]uint64)
		for i := 0; i < int(nOps%50)+1; i++ {
			a := pmem.Addr(0x1000 + uint64(rng.Intn(4))*8)
			v := uint64(i + 1)
			ts.Push(st, Entry{Kind: Store, Addr: a, Size: 8, Val: v})
			newest[a] = v
			if rng.Intn(4) == 0 && ts.SBLen() > 0 {
				ts.EvictOldest(st)
			}
			// Bypass (or cache, if fully evicted) must see the newest value.
			for b, want := range newest {
				var got uint64
				for i := 0; i < 8; i++ {
					if byt, ok := ts.Lookup(b.Add(uint64(i))); ok {
						got |= uint64(byt) << (8 * uint(i))
					} else if bs, ok2 := st.exec.Newest(b.Add(uint64(i))); ok2 {
						got |= uint64(bs.Val) << (8 * uint(i))
					}
				}
				if got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
