// Package tso simulates the x86-TSO storage system of Figure 1 of the Jaaru
// paper: each thread has a store buffer holding store, clflush, clflushopt
// and sfence operations that have not yet taken effect in the cache, and a
// flush buffer implementing the reordering freedom of clflushopt (Table 1).
//
// The two-phase execution model of §4 is split between this package and the
// model checker: Exec_* (Figure 7) corresponds to Push/Mfence here, and
// Evict_SB / Evict_FB (Figure 8) to EvictOldest/DrainFlushBuffer, which apply
// their effects through the Storage interface implemented by the checker.
package tso

import (
	"fmt"

	"jaaru/internal/obs"
	"jaaru/internal/pmem"
)

// EntryKind identifies the kind of an operation buffered in a store buffer.
type EntryKind int

const (
	// Store is a data store of 1–8 bytes.
	Store EntryKind = iota
	// CLFlush is the strongly ordered cache line flush instruction.
	CLFlush
	// CLFlushOpt is the optimized flush (clflushopt / clwb — the paper
	// treats clwb identically, §2).
	CLFlushOpt
	// SFence is the store fence instruction.
	SFence
)

func (k EntryKind) String() string {
	switch k {
	case Store:
		return "store"
	case CLFlush:
		return "clflush"
	case CLFlushOpt:
		return "clflushopt"
	case SFence:
		return "sfence"
	default:
		return fmt.Sprintf("EntryKind(%d)", int(k))
	}
}

// Entry is one buffered operation.
type Entry struct {
	Kind EntryKind
	Addr pmem.Addr // store: first byte; flushes: any byte of the line
	Size int       // store: 1, 2, 4 or 8; flushes: 0
	Val  uint64    // store: little-endian value
	Seq  pmem.Seq  // clflushopt: σcurr at the moment the instruction executed
	Loc  string    // guest source location (set only when perf detection is on)
	Op   int       // issuing operation index (set only by the forensics recorder)
}

// Probe observes TSO state transitions — entries leaving the store buffer
// and buffered writebacks taking effect — for the bug-forensics witness
// recorder (internal/forensics). It follows the obs.Collector nil-receiver
// discipline: a nil *Probe (the default) makes every hook a single nil
// check, so disabled forensics stays on the zero-overhead path measured by
// BenchmarkObservability.
type Probe struct {
	// OnEvict fires when an entry leaves the store buffer. s is the sequence
	// at which the entry took effect: for stores and clflushes the σ of the
	// cache effect, for a clflushopt the ordering bound its flush-buffer
	// entry carries, for an sfence the fence's σ (fired before the flush
	// buffer drains, so the writebacks it orders follow it).
	OnEvict func(e Entry, s pmem.Seq)
	// OnWriteback fires after a buffered clflushopt writeback is applied to
	// the cache line, with the issuing operation index op.
	OnWriteback func(line pmem.Addr, s pmem.Seq, op int)
}

func (p *Probe) evict(e Entry, s pmem.Seq) {
	if p == nil || p.OnEvict == nil {
		return
	}
	p.OnEvict(e, s)
}

func (p *Probe) writeback(line pmem.Addr, s pmem.Seq, op int) {
	if p == nil || p.OnWriteback == nil {
		return
	}
	p.OnWriteback(line, s, op)
}

// Covers reports whether a store entry writes byte address a.
func (e Entry) Covers(a pmem.Addr) bool {
	return e.Kind == Store && a >= e.Addr && a < e.Addr+pmem.Addr(e.Size)
}

// ByteAt returns the byte the store entry writes to address a.
func (e Entry) ByteAt(a pmem.Addr) byte {
	return byte(e.Val >> (8 * uint64(a-e.Addr)))
}

// Storage abstracts the cache and persistent-memory state the buffers evict
// into; it is implemented by the model checker. Sequence numbers are drawn
// from a single global counter so that all stores form a total order.
type Storage interface {
	// NextSeq increments and returns the global sequence counter σcurr.
	NextSeq() pmem.Seq
	// CurSeq returns σcurr without incrementing (used to stamp clflushopt
	// entries at execution time, Figure 7 line 6).
	CurSeq() pmem.Seq
	// ApplyStore writes the store's bytes to the cache at sequence s.
	ApplyStore(addr pmem.Addr, size int, val uint64, s pmem.Seq)
	// ApplyCLFlush records that the line containing addr was flushed at
	// sequence s (raises the line's writeback interval lower bound).
	ApplyCLFlush(addr pmem.Addr, s pmem.Seq)
	// ApplyWriteback records a clflushopt writeback with ordering bound s
	// (raises the line's lower bound to at least s).
	ApplyWriteback(addr pmem.Addr, s pmem.Seq)
	// BeforeFlushEffect is invoked immediately before a flush takes effect
	// in persistent storage — the model checker's failure-injection points
	// and performance-issue detection. It may panic to simulate a power
	// failure. loc is the issuing instruction's guest location, when known.
	BeforeFlushEffect(kind EntryKind, addr pmem.Addr, loc string)
	// SFenceEffect is invoked when an sfence takes effect, with the number
	// of clflushopt writebacks it is about to order (performance-issue
	// detection: zero means the fence ordered nothing).
	SFenceEffect(pendingWritebacks int, loc string)
}

// ThreadState is the per-thread buffering state: the store buffer Sτ, the
// flush buffer Fτ, the timestamp tτ of the most recent sfence, and the
// timestamps tτ,cl of the most recent store or clflush per cache line.
type ThreadState struct {
	// sb is the store buffer: live entries are sb[sbHead:]. Eviction
	// advances sbHead instead of reslicing the front away, so the backing
	// array (and its capacity) survives for the next pushes; Push compacts
	// or rewinds the dead prefix before growing.
	sb       []Entry
	sbHead   int
	fb       []fbEntry
	tSfence  pmem.Seq
	tLine    map[pmem.Addr]pmem.Seq
	capacity int // drain threshold; 0 means unbounded

	// col is the checker's observability shard (nil when disabled: every
	// hook below is then a nil check).
	col *obs.Collector
	// probe is the forensics transition probe (nil outside witness replays).
	probe *Probe
}

type fbEntry struct {
	line pmem.Addr
	seq  pmem.Seq
	loc  string
	op   int // issuing operation index (forensics recorder only)
}

// NewThreadState returns an empty thread state. capacity bounds the store
// buffer: pushing beyond it evicts the oldest entry first (real store
// buffers are finite); 0 means unbounded.
func NewThreadState(capacity int) *ThreadState {
	return &ThreadState{tLine: make(map[pmem.Addr]pmem.Seq), capacity: capacity}
}

// SetObserver attaches the checker's metrics shard; the default (nil)
// keeps the zero-overhead path. Buffer occupancy high-water marks and
// eviction/writeback counts are recorded against it.
func (t *ThreadState) SetObserver(col *obs.Collector) { t.col = col }

// SetProbe attaches the forensics transition probe; the default (nil) keeps
// the zero-overhead path.
func (t *ThreadState) SetProbe(p *Probe) { t.probe = p }

// Reset clears all volatile state (used when a failure wipes the machine).
func (t *ThreadState) Reset() {
	t.sb = t.sb[:0]
	t.sbHead = 0
	t.fb = t.fb[:0]
	t.tSfence = 0
	clear(t.tLine)
}

// SBLen reports the number of buffered store-buffer entries.
func (t *ThreadState) SBLen() int { return len(t.sb) - t.sbHead }

// FBLen reports the number of buffered flush-buffer entries.
func (t *ThreadState) FBLen() int { return len(t.fb) }

// Snapshot is a deep copy of one thread's buffering state, captured by
// CaptureInto and reapplied by RestoreFrom. The checker's choice-point
// snapshot stack stores one per guest thread; the backing slices are reused
// across captures so a warmed capture/restore cycle allocates nothing.
type Snapshot struct {
	sb      []Entry
	fb      []fbEntry
	tSfence pmem.Seq
	// tLine is captured as parallel key/value slices; RestoreFrom rebuilds
	// the map, so the (nondeterministic) capture iteration order is
	// irrelevant to the restored state.
	lineK []pmem.Addr
	lineV []pmem.Seq
}

// CaptureInto records t's complete buffering state into s, reusing s's
// backing storage.
func (t *ThreadState) CaptureInto(s *Snapshot) {
	s.sb = append(s.sb[:0], t.sb[t.sbHead:]...)
	s.fb = append(s.fb[:0], t.fb...)
	s.tSfence = t.tSfence
	s.lineK = s.lineK[:0]
	s.lineV = s.lineV[:0]
	for k, v := range t.tLine {
		s.lineK = append(s.lineK, k)
		s.lineV = append(s.lineV, v)
	}
}

// RestoreFrom rewinds t to exactly the state s captured.
func (t *ThreadState) RestoreFrom(s *Snapshot) {
	t.sb = append(t.sb[:0], s.sb...)
	t.sbHead = 0
	t.fb = append(t.fb[:0], s.fb...)
	t.tSfence = s.tSfence
	clear(t.tLine)
	for i, k := range s.lineK {
		t.tLine[k] = s.lineV[i]
	}
}

// Push inserts an operation into the store buffer (Figure 7: Exec_Store,
// Exec_CLFLUSH, Exec_CLFLUSHOPT, Exec_SFENCE). For clflushopt the entry is
// stamped with σcurr at execution time. If the buffer is at capacity the
// oldest entry is evicted into st first.
func (t *ThreadState) Push(st Storage, e Entry) {
	if e.Kind == CLFlushOpt {
		e.Seq = st.CurSeq()
	}
	if t.capacity > 0 {
		for t.SBLen() >= t.capacity {
			t.EvictOldest(st)
		}
	}
	if t.sbHead > 0 {
		if t.sbHead == len(t.sb) {
			t.sb = t.sb[:0]
			t.sbHead = 0
		} else if len(t.sb) == cap(t.sb) {
			// Shift the live window to the front instead of growing the
			// backing array past the steady-state occupancy.
			n := copy(t.sb, t.sb[t.sbHead:])
			t.sb = t.sb[:n]
			t.sbHead = 0
		}
	}
	t.sb = append(t.sb, e)
	t.col.NotePeak(obs.PeakSB, int64(t.SBLen()))
}

// Lookup implements store-buffer bypassing: it scans the buffer from newest
// to oldest for a store covering byte address a and returns its byte.
func (t *ThreadState) Lookup(a pmem.Addr) (byte, bool) {
	for i := len(t.sb) - 1; i >= t.sbHead; i-- {
		if t.sb[i].Covers(a) {
			return t.sb[i].ByteAt(a), true
		}
	}
	return 0, false
}

// EvictOldest removes the oldest store-buffer entry and applies its effect
// (Figure 8, the four Evict_SB cases). It reports the evicted entry.
func (t *ThreadState) EvictOldest(st Storage) Entry {
	e := t.sb[t.sbHead]
	t.sb[t.sbHead] = Entry{} // release the Loc string
	t.sbHead++
	t.col.Inc(obs.SBEvictions)
	switch e.Kind {
	case Store:
		s := st.NextSeq()
		st.ApplyStore(e.Addr, e.Size, e.Val, s)
		t.tLine[e.Addr.Line()] = s
		t.probe.evict(e, s)
	case CLFlush:
		st.BeforeFlushEffect(CLFlush, e.Addr, e.Loc)
		s := st.NextSeq()
		st.ApplyCLFlush(e.Addr, s)
		t.tLine[e.Addr.Line()] = s
		t.probe.evict(e, s)
	case CLFlushOpt:
		// Reordering with earlier operations: the writeback is ordered
		// after the max of (σ at execution, last store/clflush to the same
		// line by this thread, last sfence by this thread).
		s := e.Seq
		if ls := t.tLine[e.Addr.Line()]; ls > s {
			s = ls
		}
		if t.tSfence > s {
			s = t.tSfence
		}
		t.fb = append(t.fb, fbEntry{line: e.Addr.Line(), seq: s, loc: e.Loc, op: e.Op})
		t.col.NotePeak(obs.PeakFB, int64(len(t.fb)))
		t.probe.evict(e, s)
	case SFence:
		st.SFenceEffect(len(t.fb), e.Loc)
		s := st.NextSeq()
		t.probe.evict(e, s)
		t.DrainFlushBuffer(st)
		t.tSfence = s
	}
	return e
}

// DrainSB evicts every store-buffer entry in order.
func (t *ThreadState) DrainSB(st Storage) {
	for t.SBLen() > 0 {
		t.EvictOldest(st)
	}
}

// DrainFlushBuffer applies every pending clflushopt writeback (Figure 8,
// Evict_FB), as happens when an sfence, mfence or locked RMW instruction
// takes effect.
func (t *ThreadState) DrainFlushBuffer(st Storage) {
	for _, fe := range t.fb {
		st.BeforeFlushEffect(CLFlushOpt, fe.line, fe.loc)
		st.ApplyWriteback(fe.line, fe.seq)
		// Counted after the effect: BeforeFlushEffect may panic to inject
		// a failure, and a writeback cut off by the crash never applied.
		t.col.Inc(obs.FBWritebacks)
		t.probe.writeback(fe.line, fe.seq, fe.op)
	}
	t.fb = t.fb[:0]
}

// Mfence implements Exec_MFENCE (Figure 7): evict all store-buffer entries,
// then flush the flush buffer. Locked RMW instructions use the same
// semantics.
func (t *ThreadState) Mfence(st Storage) {
	t.DrainSB(st)
	t.DrainFlushBuffer(st)
}
