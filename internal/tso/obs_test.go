package tso

import (
	"testing"

	"jaaru/internal/obs"
)

// The buffer observer hooks: store-buffer occupancy high-water marks,
// eviction counts, flush-buffer occupancy and writeback counts — and the
// nil default stays a no-op (every other test in this package runs without
// an observer).
func TestObserverCountsBufferActivity(t *testing.T) {
	st := newFake()
	reg := obs.NewRegistry(nil)
	ts := NewThreadState(0)
	ts.SetObserver(reg.NewShard())

	// Three stores buffered: SB occupancy peaks at 3.
	ts.Push(st, store(0x1000, 8, 1))
	ts.Push(st, store(0x1040, 8, 2))
	ts.Push(st, store(0x1080, 8, 3))
	// Two clflushopt entries: once evicted they move to the flush buffer.
	ts.Push(st, Entry{Kind: CLFlushOpt, Addr: 0x1000})
	ts.Push(st, Entry{Kind: CLFlushOpt, Addr: 0x1040})
	ts.Push(st, Entry{Kind: SFence})
	ts.Mfence(st)

	m := reg.Snapshot()
	if m.MaxSBOccupancy != 6 {
		t.Errorf("MaxSBOccupancy = %d, want 6", m.MaxSBOccupancy)
	}
	if m.SBEvictions != 6 {
		t.Errorf("SBEvictions = %d, want 6", m.SBEvictions)
	}
	if m.MaxFBOccupancy != 2 {
		t.Errorf("MaxFBOccupancy = %d, want 2", m.MaxFBOccupancy)
	}
	// The sfence drains both clflushopt writebacks.
	if m.FBWritebacks != 2 {
		t.Errorf("FBWritebacks = %d, want 2", m.FBWritebacks)
	}
}

// A crash injected mid-drain must not count the cut-off writeback.
func TestObserverWritebackCountStopsAtCrash(t *testing.T) {
	st := newFake()
	st.failAt = 2 // second BeforeFlushEffect panics
	reg := obs.NewRegistry(nil)
	ts := NewThreadState(0)
	ts.SetObserver(reg.NewShard())

	ts.Push(st, store(0x1000, 8, 1))
	ts.Push(st, Entry{Kind: CLFlushOpt, Addr: 0x1000})
	ts.Push(st, Entry{Kind: CLFlushOpt, Addr: 0x1040})
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("expected injected crash")
			}
		}()
		ts.Mfence(st)
	}()

	if m := reg.Snapshot(); m.FBWritebacks != 1 {
		t.Errorf("FBWritebacks = %d, want 1 (second writeback crashed)", m.FBWritebacks)
	}
}
