package tso

import (
	"testing"

	"jaaru/internal/pmem"
)

// fakeStorage records effects in pmem structures, like the checker does.
type fakeStorage struct {
	seq    pmem.Seq
	exec   *pmem.Execution
	hooks  []string
	failAt int // panic on the n-th BeforeFlushEffect (1-based); 0 = never
	calls  int
}

type fakeCrash struct{}

func newFake() *fakeStorage {
	return &fakeStorage{exec: pmem.NewExecution(0)}
}

func (f *fakeStorage) NextSeq() pmem.Seq { f.seq++; return f.seq }
func (f *fakeStorage) CurSeq() pmem.Seq  { return f.seq }

func (f *fakeStorage) ApplyStore(addr pmem.Addr, size int, val uint64, s pmem.Seq) {
	for i := 0; i < size; i++ {
		f.exec.Append(addr+pmem.Addr(i), byte(val>>(8*uint(i))), s)
	}
}

func (f *fakeStorage) ApplyCLFlush(addr pmem.Addr, s pmem.Seq) {
	f.exec.RaiseLineBegin(addr, s)
}

func (f *fakeStorage) ApplyWriteback(addr pmem.Addr, s pmem.Seq) {
	f.exec.RaiseLineBegin(addr, s)
}

func (f *fakeStorage) SFenceEffect(pending int, loc string) {}

func (f *fakeStorage) BeforeFlushEffect(kind EntryKind, addr pmem.Addr, loc string) {
	f.calls++
	f.hooks = append(f.hooks, kind.String())
	if f.failAt != 0 && f.calls == f.failAt {
		panic(fakeCrash{})
	}
}

func store(a pmem.Addr, size int, v uint64) Entry {
	return Entry{Kind: Store, Addr: a, Size: size, Val: v}
}

func TestStoreBufferBypass(t *testing.T) {
	st := newFake()
	ts := NewThreadState(0)
	ts.Push(st, store(0x1000, 8, 0x0807060504030201))
	for i := 0; i < 8; i++ {
		v, ok := ts.Lookup(0x1000 + pmem.Addr(i))
		if !ok || v != byte(i+1) {
			t.Fatalf("byte %d: got %v %v", i, v, ok)
		}
	}
	// Newest store wins.
	ts.Push(st, store(0x1002, 1, 0xaa))
	if v, _ := ts.Lookup(0x1002); v != 0xaa {
		t.Errorf("bypass did not return newest store: %#x", v)
	}
	if v, _ := ts.Lookup(0x1001); v != 0x02 {
		t.Errorf("unrelated byte clobbered: %#x", v)
	}
	if _, ok := ts.Lookup(0x2000); ok {
		t.Error("lookup of unbuffered address succeeded")
	}
}

func TestEvictOrderIsFIFO(t *testing.T) {
	st := newFake()
	ts := NewThreadState(0)
	ts.Push(st, store(0x1000, 1, 1))
	ts.Push(st, store(0x1000, 1, 2))
	ts.Push(st, store(0x1000, 1, 3))
	ts.DrainSB(st)
	q := st.exec.Queue(0x1000)
	if len(q) != 3 || q[0].Val != 1 || q[1].Val != 2 || q[2].Val != 3 {
		t.Fatalf("cache order = %v", q)
	}
	if q[0].Seq >= q[1].Seq || q[1].Seq >= q[2].Seq {
		t.Fatalf("sequence numbers not increasing: %v", q)
	}
}

func TestCLFlushTakesEffectInOrder(t *testing.T) {
	st := newFake()
	ts := NewThreadState(0)
	ts.Push(st, store(0x1000, 8, 7))
	ts.Push(st, Entry{Kind: CLFlush, Addr: 0x1000})
	ts.Push(st, store(0x1008, 8, 9))
	ts.DrainSB(st)
	iv := st.exec.CacheLine(0x1000)
	s1, _ := st.exec.Newest(0x1000)
	s2, _ := st.exec.Newest(0x1008)
	if !(s1.Seq < iv.Begin && iv.Begin < s2.Seq) {
		t.Fatalf("clflush not ordered between stores: store1=%v flush=%v store2=%v",
			s1.Seq, iv.Begin, s2.Seq)
	}
	if len(st.hooks) != 1 || st.hooks[0] != "clflush" {
		t.Errorf("failure hooks = %v", st.hooks)
	}
}

// clflushopt is buffered in the flush buffer and takes effect only at a
// fence; before the fence, the line's writeback interval stays unbounded.
func TestCLFlushOptWaitsForFence(t *testing.T) {
	st := newFake()
	ts := NewThreadState(0)
	ts.Push(st, store(0x1000, 8, 7))
	ts.Push(st, Entry{Kind: CLFlushOpt, Addr: 0x1000})
	ts.DrainSB(st)
	if st.exec.CacheLine(0x1000).Begin != 0 {
		t.Fatal("clflushopt took effect without a fence")
	}
	if ts.FBLen() != 1 {
		t.Fatalf("flush buffer length = %d", ts.FBLen())
	}
	ts.Push(st, Entry{Kind: SFence})
	ts.DrainSB(st)
	if ts.FBLen() != 0 {
		t.Fatal("sfence did not drain the flush buffer")
	}
	storeSeq, _ := st.exec.Newest(0x1000)
	if got := st.exec.CacheLine(0x1000).Begin; got < storeSeq.Seq {
		t.Fatalf("writeback bound %v precedes the store %v", got, storeSeq.Seq)
	}
}

// Table 1: clflushopt is ordered after an earlier store to the SAME line
// (CL), even if the clflushopt instruction executed before the store was
// evicted — the writeback bound must cover the store.
func TestCLFlushOptSameLineOrdering(t *testing.T) {
	st := newFake()
	ts := NewThreadState(0)
	ts.Push(st, store(0x1000, 8, 7))
	ts.Push(st, Entry{Kind: CLFlushOpt, Addr: 0x1000})
	ts.Push(st, Entry{Kind: SFence})
	ts.DrainSB(st)
	storeSeq, _ := st.exec.Newest(0x1000)
	if got := st.exec.CacheLine(0x1000).Begin; got < storeSeq.Seq {
		t.Fatalf("same-line store not covered: begin=%v store=%v", got, storeSeq.Seq)
	}
}

// Table 1: clflushopt may be reordered across stores to OTHER lines — a
// store evicted after the clflushopt executed, on a different line, is not
// covered by the writeback bound.
func TestCLFlushOptOtherLineReordering(t *testing.T) {
	st := newFake()
	ts := NewThreadState(0)
	ts.Push(st, Entry{Kind: CLFlushOpt, Addr: 0x1000}) // flush line A first
	ts.Push(st, store(0x1000, 8, 7))                   // then store to line A
	ts.Push(st, Entry{Kind: SFence})
	ts.DrainSB(st)
	storeSeq, _ := st.exec.Newest(0x1000)
	if got := st.exec.CacheLine(0x1000).Begin; got >= storeSeq.Seq {
		t.Fatalf("clflushopt issued before the store must not cover it: begin=%v store=%v",
			got, storeSeq.Seq)
	}
}

// An sfence between a clflushopt and a later clflushopt execution point
// orders the writeback after the fence.
func TestSFenceOrdersLaterCLFlushOpt(t *testing.T) {
	st := newFake()
	ts := NewThreadState(0)
	ts.Push(st, Entry{Kind: SFence})
	ts.Push(st, Entry{Kind: CLFlushOpt, Addr: 0x1000})
	ts.Push(st, Entry{Kind: SFence})
	ts.DrainSB(st)
	if got := st.exec.CacheLine(0x1000).Begin; got == 0 {
		t.Fatal("clflushopt after sfence not ordered after it")
	}
}

func TestMfenceDrainsBoth(t *testing.T) {
	st := newFake()
	ts := NewThreadState(0)
	ts.Push(st, store(0x1000, 8, 7))
	ts.Push(st, Entry{Kind: CLFlushOpt, Addr: 0x1000})
	ts.Mfence(st)
	if ts.SBLen() != 0 || ts.FBLen() != 0 {
		t.Fatalf("mfence left SB=%d FB=%d", ts.SBLen(), ts.FBLen())
	}
	if st.exec.CacheLine(0x1000).Begin == 0 {
		t.Fatal("mfence did not apply the pending writeback")
	}
}

func TestResetClearsEverything(t *testing.T) {
	st := newFake()
	ts := NewThreadState(0)
	ts.Push(st, store(0x1000, 8, 7))
	ts.Push(st, Entry{Kind: CLFlushOpt, Addr: 0x1000})
	ts.EvictOldest(st)
	ts.EvictOldest(st)
	ts.Reset()
	if ts.SBLen() != 0 || ts.FBLen() != 0 {
		t.Fatal("reset left buffered entries")
	}
	// After reset, a new clflushopt must not be ordered by stale timestamps.
	ts.Push(st, Entry{Kind: CLFlushOpt, Addr: 0x1000})
	ts.Push(st, Entry{Kind: SFence})
	old := st.exec.CacheLine(0x1000).Begin
	ts.DrainSB(st)
	if got := st.exec.CacheLine(0x1000).Begin; got < old {
		t.Fatal("writeback bound went backward")
	}
}

func TestCapacityForcesEviction(t *testing.T) {
	st := newFake()
	ts := NewThreadState(2)
	ts.Push(st, store(0x1000, 1, 1))
	ts.Push(st, store(0x1001, 1, 2))
	ts.Push(st, store(0x1002, 1, 3)) // must evict the first
	if ts.SBLen() != 2 {
		t.Fatalf("SB length = %d, want 2", ts.SBLen())
	}
	if _, ok := st.exec.Newest(0x1000); !ok {
		t.Fatal("oldest store was not evicted to the cache")
	}
}

func TestFailureHookCanAbort(t *testing.T) {
	st := newFake()
	st.failAt = 1
	ts := NewThreadState(0)
	ts.Push(st, store(0x1000, 8, 7))
	ts.Push(st, Entry{Kind: CLFlush, Addr: 0x1000})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected crash panic")
		}
		if st.exec.CacheLine(0x1000).Begin != 0 {
			t.Fatal("flush effect applied despite failure before it")
		}
	}()
	ts.DrainSB(st)
}

func TestTable1Shape(t *testing.T) {
	// Spot-check the cells quoted in the paper's prose.
	checks := []struct {
		earlier, later Instr
		want           Order
	}{
		{InstrWrite, InstrRead, Reorderable}, // store buffering
		{InstrCLFlushOpt, InstrWrite, Reorderable},
		{InstrCLFlushOpt, InstrCLFlushOpt, Reorderable},
		{InstrCLFlushOpt, InstrCLFlush, SameLine},
		{InstrCLFlushOpt, InstrMFence, Ordered},
		{InstrCLFlushOpt, InstrRMW, Ordered},
		{InstrCLFlushOpt, InstrSFence, Ordered},
		{InstrWrite, InstrCLFlushOpt, SameLine},
		{InstrCLFlush, InstrCLFlushOpt, SameLine},
		{InstrCLFlush, InstrWrite, Ordered},
		{InstrRead, InstrCLFlush, Ordered},
		{InstrMFence, InstrRead, Ordered},
		{InstrSFence, InstrRead, Reorderable},
		{InstrRMW, InstrRead, Ordered},
	}
	for _, c := range checks {
		if got := Reordering(c.earlier, c.later); got != c.want {
			t.Errorf("Reordering(%v, %v) = %v, want %v", c.earlier, c.later, got, c.want)
		}
	}
	if n := len(Instrs()); n != 7 {
		t.Errorf("Instrs() = %d entries, want 7", n)
	}
}

func TestEntryKindStrings(t *testing.T) {
	for _, k := range []EntryKind{Store, CLFlush, CLFlushOpt, SFence} {
		if k.String() == "" || k.String()[0] == 'E' {
			t.Errorf("EntryKind %d has no name: %q", k, k.String())
		}
	}
	if EntryKind(99).String() != "EntryKind(99)" {
		t.Error("unknown kind fallback broken")
	}
}

func TestOrderAndInstrStrings(t *testing.T) {
	if Ordered.String() != "✓" || Reorderable.String() != "✗" || SameLine.String() != "CL" {
		t.Error("Order strings wrong")
	}
	if Order(9).String() != "?" {
		t.Error("unknown Order fallback broken")
	}
	for _, in := range Instrs() {
		if in.String() == "?" {
			t.Errorf("instr %d unnamed", in)
		}
	}
	if Instr(99).String() != "?" {
		t.Error("unknown Instr fallback broken")
	}
}

func TestEntryCoversAndByteAt(t *testing.T) {
	e := Entry{Kind: Store, Addr: 0x100, Size: 4, Val: 0x04030201}
	if !e.Covers(0x100) || !e.Covers(0x103) || e.Covers(0x104) || e.Covers(0xff) {
		t.Error("Covers wrong")
	}
	for i := 0; i < 4; i++ {
		if got := e.ByteAt(0x100 + pmem.Addr(i)); got != byte(i+1) {
			t.Errorf("ByteAt(+%d) = %d", i, got)
		}
	}
	if (Entry{Kind: CLFlush, Addr: 0x100}).Covers(0x100) {
		t.Error("flush entries must not cover bytes")
	}
}
