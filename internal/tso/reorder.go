package tso

// This file encodes Table 1 of the paper — the reordering constraints of the
// Px86sim model (Raad et al.) — as queryable data. The simulator in buffer.go
// implements these constraints operationally; the litmus test suite checks
// the two agree.

// Instr enumerates the instruction classes of Table 1.
type Instr int

const (
	InstrRead Instr = iota
	InstrWrite
	InstrRMW
	InstrMFence
	InstrSFence
	InstrCLFlushOpt
	InstrCLFlush
	numInstr
)

func (i Instr) String() string {
	switch i {
	case InstrRead:
		return "Read"
	case InstrWrite:
		return "Write"
	case InstrRMW:
		return "RMW"
	case InstrMFence:
		return "mfence"
	case InstrSFence:
		return "sfence"
	case InstrCLFlushOpt:
		return "clflushopt"
	case InstrCLFlush:
		return "clflush"
	default:
		return "?"
	}
}

// Order is one cell of Table 1.
type Order int

const (
	// Ordered (✓): the program order between the two instructions is
	// always preserved.
	Ordered Order = iota
	// Reorderable (✗): the two instructions may be reordered.
	Reorderable
	// SameLine (CL): the order is preserved only if both instructions
	// operate on the same cache line.
	SameLine
)

func (o Order) String() string {
	switch o {
	case Ordered:
		return "✓"
	case Reorderable:
		return "✗"
	case SameLine:
		return "CL"
	default:
		return "?"
	}
}

// table1[earlier][later] is the constraint between an instruction earlier in
// program order and one later in program order, exactly as printed in the
// paper's Table 1.
var table1 = [numInstr][numInstr]Order{
	//                     Re           Wr           RMW        mfence     sfence     clflushopt   clflush
	InstrRead:       {Ordered, Ordered, Ordered, Ordered, Ordered, Ordered, Ordered},
	InstrWrite:      {Reorderable, Ordered, Ordered, Ordered, Ordered, SameLine, Ordered},
	InstrRMW:        {Ordered, Ordered, Ordered, Ordered, Ordered, Ordered, Ordered},
	InstrMFence:     {Ordered, Ordered, Ordered, Ordered, Ordered, Ordered, Ordered},
	InstrSFence:     {Reorderable, Ordered, Ordered, Ordered, Ordered, Ordered, Ordered},
	InstrCLFlushOpt: {Reorderable, Reorderable, Ordered, Ordered, Ordered, Reorderable, SameLine},
	InstrCLFlush:    {Reorderable, Ordered, Ordered, Ordered, Ordered, SameLine, Ordered},
}

// Reordering returns the Table 1 constraint between an instruction earlier
// in program order and one later in program order.
func Reordering(earlier, later Instr) Order { return table1[earlier][later] }

// Instrs lists the instruction classes in Table 1's order.
func Instrs() []Instr {
	out := make([]Instr, numInstr)
	for i := range out {
		out[i] = Instr(i)
	}
	return out
}
