package tso

import (
	"fmt"
	"reflect"
	"testing"

	"jaaru/internal/pmem"
)

// The forensics probe: every store-buffer eviction and flush-buffer
// writeback is reported with its sequence number and the Op stamp of the
// issuing operation — and the nil default stays a no-op (every other test
// in this package runs without a probe).
func TestProbeReportsEvictionsAndWritebacks(t *testing.T) {
	st := newFake()
	ts := NewThreadState(0)
	var got []string
	ts.SetProbe(&Probe{
		OnEvict: func(e Entry, s pmem.Seq) {
			got = append(got, fmt.Sprintf("evict %v op%d σ%d", e.Kind, e.Op, s))
		},
		OnWriteback: func(line pmem.Addr, s pmem.Seq, op int) {
			got = append(got, fmt.Sprintf("wb %v op%d σ%d", line, op, s))
		},
	})

	ts.Push(st, Entry{Kind: Store, Addr: 0x1000, Size: 8, Val: 7, Op: 10})
	ts.Push(st, Entry{Kind: CLFlushOpt, Addr: 0x1000, Op: 11})
	ts.Push(st, Entry{Kind: SFence, Op: 12})
	ts.Mfence(st)

	// The store evicts at σ1; the clflushopt moves to the flush buffer with
	// its ordering bound — the flushed line's store σ1, no fresh sequence
	// number; the sfence reports at σ2 and then drains the flush buffer,
	// delivering the deferred writeback attributed to op 11.
	want := []string{
		"evict store op10 σ1",
		"evict clflushopt op11 σ1",
		"evict sfence op12 σ2",
		"wb 0x1000 op11 σ1",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("probe events:\n got %q\nwant %q", got, want)
	}
}

// An explicit clflush reports its eviction directly (no flush-buffer pass).
func TestProbeCLFlushEvictsInline(t *testing.T) {
	st := newFake()
	ts := NewThreadState(0)
	var kinds []EntryKind
	ts.SetProbe(&Probe{OnEvict: func(e Entry, s pmem.Seq) { kinds = append(kinds, e.Kind) }})

	ts.Push(st, Entry{Kind: Store, Addr: 0x1000, Size: 1, Val: 1, Op: 1})
	ts.Push(st, Entry{Kind: CLFlush, Addr: 0x1000, Op: 2})
	ts.Mfence(st)

	if len(kinds) != 2 || kinds[0] != Store || kinds[1] != CLFlush {
		t.Errorf("evict kinds = %v, want [store clflush]", kinds)
	}
}
