package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram is a fixed-layout, log-bucketed latency histogram in the HDR
// style: values below 2^histSubBits land in exact identity buckets, and every
// larger power-of-two octave is split into 2^histSubBits sub-buckets, giving
// a constant relative error of at most 1/2^histSubBits (6.25%) across the
// whole int64 range. The bucket layout is a pure function of the value — no
// configuration, no rescaling — so two histograms recorded on different
// workers (or different machines) merge by bucket-wise addition, which is
// associative and commutative by construction. That determinism is what lets
// the distributed coordinator fold worker-shipped histograms in any arrival
// order and still expose one canonical distribution.
//
// All mutation is atomic: the owning worker writes, Snapshot reads
// concurrently — the same single-writer / concurrent-reader contract the
// Collector counters use. The zero value is ready to use.
type Histogram struct {
	counts [NumHistBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
}

// histSubBits is the sub-bucket resolution: 16 sub-buckets per octave.
const histSubBits = 4

// NumHistBuckets is the total bucket count of the fixed layout: 2^histSubBits
// identity buckets plus 16 sub-buckets for each of the 60 remaining octaves
// of an int64.
const NumHistBuckets = (1 << histSubBits) + (63-histSubBits)*(1<<histSubBits)

// HistBucketIndex maps a value to its bucket. Negative values clamp to
// bucket 0 (timing can produce 0ns on coarse clocks, never negatives, but the
// wire path must not be able to index out of range).
func HistBucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < 1<<histSubBits {
		return int(u)
	}
	e := bits.Len64(u) - 1 // 2^e <= u < 2^(e+1), e >= histSubBits
	sub := int(u>>(uint(e)-histSubBits)) - (1 << histSubBits)
	return (1 << histSubBits) + (e-histSubBits)*(1<<histSubBits) + sub
}

// HistBucketUpper returns the largest value that maps to bucket i — the
// inclusive upper bound used as the bucket's reported quantile value and as
// the Prometheus `le` label.
func HistBucketUpper(i int) int64 {
	if i < 1<<histSubBits {
		return int64(i)
	}
	b := i - 1<<histSubBits
	e := b>>histSubBits + histSubBits
	sub := b & (1<<histSubBits - 1)
	shift := uint(e) - histSubBits
	hi := (uint64(sub) + 1<<histSubBits + 1) << shift
	if hi == 0 || hi-1 > math.MaxInt64 { // top octave overflows: clamp
		return math.MaxInt64
	}
	return int64(hi - 1)
}

// Observe records one value. Safe for concurrent use.
func (h *Histogram) Observe(v int64) {
	h.counts[HistBucketIndex(v)].Add(1)
	h.count.Add(1)
	if v > 0 {
		h.sum.Add(v)
	}
}

// Snapshot reads a plain, mergeable copy of the histogram. The bucket slice
// is trimmed to the highest populated bucket (usually a few dozen entries of
// the 976-bucket layout), so snapshots are cheap to ship and to hold.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	if s.Count == 0 {
		return s
	}
	top := -1
	var buf [NumHistBuckets]int64
	for i := range h.counts {
		if n := h.counts[i].Load(); n != 0 {
			buf[i] = n
			top = i
		}
	}
	s.Counts = append([]int64(nil), buf[:top+1]...)
	return s
}

// AddSnapshot folds a snapshot into the live histogram bucket-wise — the
// merge the distributed coordinator applies when a worker ships its shard.
func (h *Histogram) AddSnapshot(s HistSnapshot) {
	if h == nil {
		return
	}
	for i, n := range s.Counts {
		if n != 0 && i < NumHistBuckets {
			h.counts[i].Add(n)
		}
	}
	h.count.Add(s.Count)
	h.sum.Add(s.Sum)
}

// HistSnapshot is a plain (non-atomic) copy of one histogram: the trimmed
// dense bucket vector plus the exact observation count and sum. Merging is
// bucket-wise addition — associative and commutative, so any merge tree over
// any partition of the observations yields the identical snapshot (see
// TestHistogramMergeProperty).
type HistSnapshot struct {
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Counts []int64 `json:"counts,omitempty"`
}

// Merge returns the bucket-wise sum of h and o without mutating either.
func (h HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	n := len(h.Counts)
	if len(o.Counts) > n {
		n = len(o.Counts)
	}
	out := HistSnapshot{Count: h.Count + o.Count, Sum: h.Sum + o.Sum}
	if n == 0 {
		return out
	}
	out.Counts = make([]int64, n)
	copy(out.Counts, h.Counts)
	for i, v := range o.Counts {
		out.Counts[i] += v
	}
	return out
}

// Quantile returns the value at quantile q (0 < q <= 1) — the inclusive
// upper bound of the bucket containing the q-th observation, i.e. an
// overestimate by at most the bucket's relative width. Returns 0 for an
// empty histogram.
func (h HistSnapshot) Quantile(q float64) int64 {
	if h.Count <= 0 || len(h.Counts) == 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.Count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range h.Counts {
		cum += n
		if cum >= target {
			return HistBucketUpper(i)
		}
	}
	return HistBucketUpper(len(h.Counts) - 1)
}

// Mean returns the exact mean of the recorded values (the sum is tracked
// exactly, outside the bucket quantization). 0 for an empty histogram.
func (h HistSnapshot) Mean() int64 {
	if h.Count <= 0 {
		return 0
	}
	return h.Sum / h.Count
}
