package obs

import (
	"bytes"
	"strings"
	"testing"
)

// ReadTrace round-trips the JSONL stream emit produces: event names, the
// monotone timestamp, and every typed field.
func TestReadTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r := NewRegistry(&buf)
	r.Emit("run_start", "program", "p", "workers", 2)
	r.Emit("bug", "type", "assertion failure", "message", "m", "choices", "fail@0")
	r.Emit("run_end", "complete", true)

	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("decoded %d events, want 3", len(events))
	}
	if events[0].Ev != "run_start" || events[1].Ev != "bug" || events[2].Ev != "run_end" {
		t.Errorf("event names = %s %s %s", events[0].Ev, events[1].Ev, events[2].Ev)
	}
	if events[0].Str("program") != "p" {
		t.Errorf("program = %q, want p", events[0].Str("program"))
	}
	if w, ok := events[0].Fields["workers"].(float64); !ok || w != 2 {
		t.Errorf("workers = %v, want 2", events[0].Fields["workers"])
	}
	if events[1].Str("message") != "m" || events[1].Str("choices") != "fail@0" {
		t.Errorf("bug fields = %v", events[1].Fields)
	}
	if c, ok := events[2].Fields["complete"].(bool); !ok || !c {
		t.Errorf("complete = %v, want true", events[2].Fields["complete"])
	}
	for i := 1; i < len(events); i++ {
		if events[i].TimeUs < events[i-1].TimeUs {
			t.Errorf("timestamps not monotone: %d then %d", events[i-1].TimeUs, events[i].TimeUs)
		}
	}
}

// A malformed line fails with its line number instead of silently
// truncating the decoded stream.
func TestReadTraceMalformedLine(t *testing.T) {
	in := `{"t_us":1,"ev":"a"}
{"t_us":2,"ev":
`
	_, err := ReadTrace(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v, want line-2 parse error", err)
	}
}
