package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// eventWriter serializes events to an io.Writer as JSONL: one object per
// line, {"t_us":<since start>,"ev":"<name>",...key/value pairs}. Lines are
// hand-assembled into a reused buffer under the lock — no maps, no
// reflection — so the enabled path stays cheap and the disabled path is
// the registry's nil check. The first write error is retained (Registry.Err)
// and later events are counted but dropped.
type eventWriter struct {
	mu    sync.Mutex
	w     io.Writer
	buf   []byte
	start time.Time
	count atomic.Int64
	err   error
}

func (e *eventWriter) emit(ev string, kv []any) {
	e.mu.Lock()
	defer e.mu.Unlock()
	b := append(e.buf[:0], `{"t_us":`...)
	b = strconv.AppendInt(b, time.Since(e.start).Microseconds(), 10)
	b = append(b, `,"ev":`...)
	b = strconv.AppendQuote(b, ev)
	for i := 0; i+1 < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		b = append(b, ',')
		b = strconv.AppendQuote(b, key)
		b = append(b, ':')
		switch v := kv[i+1].(type) {
		case int:
			b = strconv.AppendInt(b, int64(v), 10)
		case int64:
			b = strconv.AppendInt(b, v, 10)
		case uint64:
			b = strconv.AppendUint(b, v, 10)
		case bool:
			b = strconv.AppendBool(b, v)
		case string:
			b = strconv.AppendQuote(b, v)
		default:
			b = strconv.AppendQuote(b, fmt.Sprint(v))
		}
	}
	b = append(b, '}', '\n')
	e.buf = b
	e.count.Add(1)
	if e.err == nil {
		if _, err := e.w.Write(b); err != nil {
			e.err = err
		}
	}
}
