package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// Nil receivers are the disabled fast path: every hook must be a no-op.
func TestNilSafety(t *testing.T) {
	var c *Collector
	c.Add(Steps, 5)
	c.Inc(Scenarios)
	c.NotePeak(PeakSB, 9)

	var r *Registry
	if got := r.NewShard(); got != nil {
		t.Fatalf("nil registry NewShard = %v, want nil", got)
	}
	r.SetGoal(10)
	r.SetWorkers(4)
	r.NotePush(1, 2)
	r.NoteClaim(1)
	r.NoteDonation(3)
	r.Emit("ev", "k", 1)
	if err := r.Err(); err != nil {
		t.Fatalf("nil registry Err = %v", err)
	}
	if m := r.Snapshot(); m != (Metrics{}) {
		t.Fatalf("nil registry Snapshot = %+v, want zero", m)
	}
	if s := r.Progress(); s != "" {
		t.Fatalf("nil registry Progress = %q, want empty", s)
	}
}

// Shards sum; peaks take the max; driver counters ride along.
func TestSnapshotMergesShards(t *testing.T) {
	r := NewRegistry(nil)
	a, b := r.NewShard(), r.NewShard()
	a.Add(Scenarios, 3)
	b.Add(Scenarios, 4)
	a.Inc(ExecutionsPost)
	b.Add(ExecutionsPost, 2)
	a.NotePeak(PeakRFCandidates, 5)
	b.NotePeak(PeakRFCandidates, 9)
	b.NotePeak(PeakRFCandidates, 2) // lower: must not regress the max
	r.SetWorkers(2)
	r.NotePush(3, 3)
	r.NoteClaim(2)
	r.NoteDonation(2)

	m := r.Snapshot()
	if m.Scenarios != 7 || m.ExecutionsPost != 3 || m.Executions != 4 {
		t.Fatalf("sums wrong: %+v", m)
	}
	if m.MaxRFCandidates != 9 {
		t.Fatalf("MaxRFCandidates = %d, want 9", m.MaxRFCandidates)
	}
	if m.Workers != 2 || m.FrontierPushed != 3 || m.FrontierClaimed != 1 ||
		m.Donations != 2 || m.MaxFrontierLen != 3 {
		t.Fatalf("driver counters wrong: %+v", m)
	}
}

func TestCanonicalZeroesRunDependentFields(t *testing.T) {
	m := Metrics{
		Scenarios: 10, Executions: 11, ExecutionsPost: 10, Steps: 99,
		PreFailureNs: 1, PostFailureNs: 2, ReplayNs: 3,
		LoadRefinements: 4, RFCandidates: 8, MaxRFCandidates: 2,
		FrontierPushed: 5, FrontierClaimed: 5, Donations: 4,
		MaxFrontierLen: 3, Workers: 4, Events: 17,
	}
	c := m.Canonical()
	if c.PreFailureNs != 0 || c.PostFailureNs != 0 || c.ReplayNs != 0 ||
		c.FrontierPushed != 0 || c.FrontierClaimed != 0 || c.Donations != 0 ||
		c.MaxFrontierLen != 0 || c.Workers != 0 || c.Events != 0 {
		t.Fatalf("run-dependent fields not zeroed: %+v", c)
	}
	if c.Scenarios != 10 || c.Steps != 99 || c.LoadRefinements != 4 ||
		c.RFCandidates != 8 || c.MaxRFCandidates != 2 {
		t.Fatalf("partition-independent fields altered: %+v", c)
	}
}

// Every emitted line must be valid JSON with the common envelope fields,
// and concurrent emitters must not interleave lines.
func TestEventWriterJSONL(t *testing.T) {
	var buf bytes.Buffer
	r := NewRegistry(&buf)
	r.Emit("run_start", "program", "p", "workers", 2)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				r.Emit("scenario_end", "worker", w, "scenario", i, "ok", true)
			}
		}(w)
	}
	wg.Wait()
	if err := r.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}

	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 101 {
		t.Fatalf("got %d lines, want 101", len(lines))
	}
	for i, ln := range lines {
		var ev struct {
			TUs *int64 `json:"t_us"`
			Ev  string `json:"ev"`
		}
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, ln)
		}
		if ev.TUs == nil || ev.Ev == "" {
			t.Fatalf("line %d missing envelope: %s", i, ln)
		}
	}
	if m := r.Snapshot(); m.Events != 101 {
		t.Fatalf("Events = %d, want 101", m.Events)
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	return 0, errors.New("disk full")
}

// A failing sink must not break the run: the first error is retained,
// later events are dropped (one failed write only), and counting continues.
func TestEventWriterRetainsFirstError(t *testing.T) {
	fw := &failWriter{}
	r := NewRegistry(fw)
	r.Emit("a")
	r.Emit("b")
	if err := r.Err(); err == nil {
		t.Fatal("Err = nil, want disk full")
	}
	if fw.n != 1 {
		t.Fatalf("writes after error: %d, want 1", fw.n)
	}
	if m := r.Snapshot(); m.Events != 2 {
		t.Fatalf("Events = %d, want 2", m.Events)
	}
}

func TestProgressMentionsGoal(t *testing.T) {
	r := NewRegistry(nil)
	s := r.NewShard()
	s.Add(Scenarios, 5)
	r.SetGoal(1000)
	out := r.Progress()
	if !strings.Contains(out, "5 scenarios") || !strings.Contains(out, "MaxScenarios") {
		t.Fatalf("Progress = %q", out)
	}
}

// FormatProgress is pinned with fixed inputs: percent-of-goal, rate, and ETA
// must all appear (and degrade gracefully without a goal or elapsed time).
func TestFormatProgress(t *testing.T) {
	m := Metrics{Scenarios: 250, Executions: 501}
	got := FormatProgress(m, 7, 1000, 10*time.Second)
	want := "250 scenarios (25%, 25/s), 501 executions, frontier 7, <=30s to MaxScenarios"
	if got != want {
		t.Errorf("with goal:\ngot  %q\nwant %q", got, want)
	}

	got = FormatProgress(m, 7, 0, 10*time.Second)
	want = "250 scenarios (25/s), 501 executions, frontier 7"
	if got != want {
		t.Errorf("no goal:\ngot  %q\nwant %q", got, want)
	}

	// At or past the goal the ETA clause drops.
	got = FormatProgress(Metrics{Scenarios: 1000, Executions: 2001}, 0, 1000, 4*time.Second)
	want = "1000 scenarios (100%, 250/s), 2001 executions, frontier 0"
	if got != want {
		t.Errorf("at goal:\ngot  %q\nwant %q", got, want)
	}

	// Zero elapsed: no rate, no ETA division.
	got = FormatProgress(m, 0, 1000, 0)
	want = "250 scenarios (25%, 0/s), 501 executions, frontier 0"
	if got != want {
		t.Errorf("zero elapsed:\ngot  %q\nwant %q", got, want)
	}
}

// Exhaustiveness gate (reflection): Metrics must stay a flat struct of int64
// fields — that is what makes two snapshots comparable with == in every
// equivalence suite — and every wall-clock field (json tag ending "_ns")
// must be zeroed by Canonical. A future timing counter that is added to
// Metrics without a Canonical entry fails here, not in a flaky determinism
// suite three layers up.
func TestCanonicalZeroesEveryTimingCounter(t *testing.T) {
	typ := reflect.TypeOf(Metrics{})
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if f.Type.Kind() != reflect.Int64 {
			t.Errorf("Metrics.%s is %s; histograms and other non-int64 state must live outside Metrics", f.Name, f.Type)
			continue
		}
		tag, _, _ := strings.Cut(f.Tag.Get("json"), ",")
		if tag == "" {
			t.Errorf("Metrics.%s has no json tag", f.Name)
		}
		// Wall-clock timings and the wire-level data-plane accounting both
		// depend on run conditions, never on the exploration result, so
		// Canonical must zero every one of them.
		if !strings.HasSuffix(tag, "_ns") &&
			!strings.HasPrefix(tag, "bytes_") && tag != "commit_batch_size" {
			continue
		}
		var m Metrics
		reflect.ValueOf(&m).Elem().Field(i).SetInt(12345)
		if got := m.Canonical(); got != (Metrics{}) {
			t.Errorf("Canonical leaves run-dependent field %s visible: %+v", f.Name, got)
		}
	}
}

// The same gate at the counter layer: feeding 1 into any "_ns" counter (via
// a real shard) must not change the canonical snapshot, and every counter
// must have an exposition name.
func TestCanonicalZeroesEveryTimingCounterViaShard(t *testing.T) {
	baseline := (&Registry{}).Snapshot().Canonical()
	seen := map[string]bool{}
	for k := Counter(0); int(k) < NumCounters; k++ {
		name := k.String()
		if name == "" || strings.HasPrefix(name, "counter(") {
			t.Errorf("counter %d has no exposition name", k)
		}
		if seen[name] {
			t.Errorf("duplicate counter name %q", name)
		}
		seen[name] = true
		if !strings.HasSuffix(name, "_ns") {
			continue
		}
		r := NewRegistry(nil)
		r.NewShard().Add(k, 1)
		if got := r.Snapshot().Canonical(); got != baseline {
			t.Errorf("counter %s leaks into Canonical: %+v", name, got)
		}
	}
	for tm := Timer(0); int(tm) < NumTimers; tm++ {
		if name := tm.String(); name == "" || strings.HasPrefix(name, "timer(") {
			t.Errorf("timer %d has no exposition name", tm)
		}
	}
	// Timer histograms live entirely outside Metrics: observing must not
	// change any snapshot at all, canonical or not.
	r := NewRegistry(nil)
	r.NewShard().Observe(TimerPreFailure, 123456)
	if got, want := r.Snapshot(), (&Registry{}).Snapshot(); got != want {
		t.Errorf("histogram observation leaked into Metrics: %+v", got)
	}
	if h := r.Histograms()[TimerPreFailure]; h.Count != 1 {
		t.Errorf("histogram lost the observation: %+v", h)
	}
}

// Registry.Histograms merges shards bucket-wise, and the collector hooks are
// nil-safe like every other hook.
func TestRegistryHistograms(t *testing.T) {
	var nc *Collector
	nc.Observe(TimerReplay, 5)
	if s := nc.HistSnapshots(); s[TimerReplay].Count != 0 {
		t.Fatalf("nil collector HistSnapshots = %+v", s)
	}
	nc.AddHist(TimerReplay, HistSnapshot{Count: 1})
	var nr *Registry
	if v := nr.Histograms(); v[TimerReplay].Count != 0 {
		t.Fatalf("nil registry Histograms = %+v", v)
	}
	if nr.Goal() != 0 || nr.FrontierLen() != 0 || nr.Uptime() != 0 {
		t.Fatal("nil registry accessors not zero")
	}

	r := NewRegistry(nil)
	a, b := r.NewShard(), r.NewShard()
	a.Observe(TimerLeaseClaim, 100)
	a.Observe(TimerLeaseClaim, 200)
	b.Observe(TimerLeaseClaim, 300)
	b.Observe(TimerFingerprint, 50)
	v := r.Histograms()
	if v[TimerLeaseClaim].Count != 3 || v[TimerLeaseClaim].Sum != 600 {
		t.Fatalf("lease_claim merge = %+v", v[TimerLeaseClaim])
	}
	if v[TimerFingerprint].Count != 1 {
		t.Fatalf("fingerprint merge = %+v", v[TimerFingerprint])
	}
}
