package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

// Nil receivers are the disabled fast path: every hook must be a no-op.
func TestNilSafety(t *testing.T) {
	var c *Collector
	c.Add(Steps, 5)
	c.Inc(Scenarios)
	c.NotePeak(PeakSB, 9)

	var r *Registry
	if got := r.NewShard(); got != nil {
		t.Fatalf("nil registry NewShard = %v, want nil", got)
	}
	r.SetGoal(10)
	r.SetWorkers(4)
	r.NotePush(1, 2)
	r.NoteClaim(1)
	r.NoteDonation(3)
	r.Emit("ev", "k", 1)
	if err := r.Err(); err != nil {
		t.Fatalf("nil registry Err = %v", err)
	}
	if m := r.Snapshot(); m != (Metrics{}) {
		t.Fatalf("nil registry Snapshot = %+v, want zero", m)
	}
	if s := r.Progress(); s != "" {
		t.Fatalf("nil registry Progress = %q, want empty", s)
	}
}

// Shards sum; peaks take the max; driver counters ride along.
func TestSnapshotMergesShards(t *testing.T) {
	r := NewRegistry(nil)
	a, b := r.NewShard(), r.NewShard()
	a.Add(Scenarios, 3)
	b.Add(Scenarios, 4)
	a.Inc(ExecutionsPost)
	b.Add(ExecutionsPost, 2)
	a.NotePeak(PeakRFCandidates, 5)
	b.NotePeak(PeakRFCandidates, 9)
	b.NotePeak(PeakRFCandidates, 2) // lower: must not regress the max
	r.SetWorkers(2)
	r.NotePush(3, 3)
	r.NoteClaim(2)
	r.NoteDonation(2)

	m := r.Snapshot()
	if m.Scenarios != 7 || m.ExecutionsPost != 3 || m.Executions != 4 {
		t.Fatalf("sums wrong: %+v", m)
	}
	if m.MaxRFCandidates != 9 {
		t.Fatalf("MaxRFCandidates = %d, want 9", m.MaxRFCandidates)
	}
	if m.Workers != 2 || m.FrontierPushed != 3 || m.FrontierClaimed != 1 ||
		m.Donations != 2 || m.MaxFrontierLen != 3 {
		t.Fatalf("driver counters wrong: %+v", m)
	}
}

func TestCanonicalZeroesRunDependentFields(t *testing.T) {
	m := Metrics{
		Scenarios: 10, Executions: 11, ExecutionsPost: 10, Steps: 99,
		PreFailureNs: 1, PostFailureNs: 2, ReplayNs: 3,
		LoadRefinements: 4, RFCandidates: 8, MaxRFCandidates: 2,
		FrontierPushed: 5, FrontierClaimed: 5, Donations: 4,
		MaxFrontierLen: 3, Workers: 4, Events: 17,
	}
	c := m.Canonical()
	if c.PreFailureNs != 0 || c.PostFailureNs != 0 || c.ReplayNs != 0 ||
		c.FrontierPushed != 0 || c.FrontierClaimed != 0 || c.Donations != 0 ||
		c.MaxFrontierLen != 0 || c.Workers != 0 || c.Events != 0 {
		t.Fatalf("run-dependent fields not zeroed: %+v", c)
	}
	if c.Scenarios != 10 || c.Steps != 99 || c.LoadRefinements != 4 ||
		c.RFCandidates != 8 || c.MaxRFCandidates != 2 {
		t.Fatalf("partition-independent fields altered: %+v", c)
	}
}

// Every emitted line must be valid JSON with the common envelope fields,
// and concurrent emitters must not interleave lines.
func TestEventWriterJSONL(t *testing.T) {
	var buf bytes.Buffer
	r := NewRegistry(&buf)
	r.Emit("run_start", "program", "p", "workers", 2)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				r.Emit("scenario_end", "worker", w, "scenario", i, "ok", true)
			}
		}(w)
	}
	wg.Wait()
	if err := r.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}

	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 101 {
		t.Fatalf("got %d lines, want 101", len(lines))
	}
	for i, ln := range lines {
		var ev struct {
			TUs *int64 `json:"t_us"`
			Ev  string `json:"ev"`
		}
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, ln)
		}
		if ev.TUs == nil || ev.Ev == "" {
			t.Fatalf("line %d missing envelope: %s", i, ln)
		}
	}
	if m := r.Snapshot(); m.Events != 101 {
		t.Fatalf("Events = %d, want 101", m.Events)
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	return 0, errors.New("disk full")
}

// A failing sink must not break the run: the first error is retained,
// later events are dropped (one failed write only), and counting continues.
func TestEventWriterRetainsFirstError(t *testing.T) {
	fw := &failWriter{}
	r := NewRegistry(fw)
	r.Emit("a")
	r.Emit("b")
	if err := r.Err(); err == nil {
		t.Fatal("Err = nil, want disk full")
	}
	if fw.n != 1 {
		t.Fatalf("writes after error: %d, want 1", fw.n)
	}
	if m := r.Snapshot(); m.Events != 2 {
		t.Fatalf("Events = %d, want 2", m.Events)
	}
}

func TestProgressMentionsGoal(t *testing.T) {
	r := NewRegistry(nil)
	s := r.NewShard()
	s.Add(Scenarios, 5)
	r.SetGoal(1000)
	out := r.Progress()
	if !strings.Contains(out, "5 scenarios") || !strings.Contains(out, "MaxScenarios") {
		t.Fatalf("Progress = %q", out)
	}
}
