package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// TraceEvent is one decoded line of a JSONL event trace (the stream written
// through Options.EventTrace). Fields holds every key except the two fixed
// ones; numeric values decode as float64, JSON's default.
type TraceEvent struct {
	TimeUs int64
	Ev     string
	Fields map[string]any
}

// Str returns the field value as a string, or "" when absent or not a
// string — the common accessor for event fields like "message" or "choices".
func (e TraceEvent) Str(key string) string {
	s, _ := e.Fields[key].(string)
	return s
}

// ReadTrace decodes a JSONL event trace back into structured events, for
// tools that post-process a recorded run (jaaru-explain -from-trace). Blank
// lines are skipped; a malformed line fails with its line number, since a
// trace cut off mid-write is worth diagnosing rather than silently
// truncating.
func ReadTrace(r io.Reader) ([]TraceEvent, error) {
	var out []TraceEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", lineNo, err)
		}
		ev := TraceEvent{Fields: m}
		if t, ok := m["t_us"].(float64); ok {
			ev.TimeUs = int64(t)
		}
		ev.Ev, _ = m["ev"].(string)
		delete(m, "t_us")
		delete(m, "ev")
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace line %d: %w", lineNo, err)
	}
	return out, nil
}
