package obs

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// Every value must land in exactly one bucket whose bounds contain it, and
// bucket upper bounds must be strictly increasing — the invariants both the
// quantile walk and the Prometheus `le` exposition rely on.
func TestHistBucketLayout(t *testing.T) {
	prev := int64(-1)
	for i := 0; i < NumHistBuckets; i++ {
		ub := HistBucketUpper(i)
		if ub <= prev {
			t.Fatalf("bucket %d upper %d not above previous %d", i, ub, prev)
		}
		if got := HistBucketIndex(ub); got != i {
			t.Fatalf("upper bound %d of bucket %d maps to bucket %d", ub, i, got)
		}
		prev = ub
	}
	if HistBucketUpper(NumHistBuckets-1) != math.MaxInt64 {
		t.Fatalf("last bucket upper = %d, want MaxInt64", HistBucketUpper(NumHistBuckets-1))
	}

	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {15, 15},
		{16, 16}, {17, 17}, {31, 31}, // first split octave still exact
		{32, 32}, {33, 32}, {34, 33}, // width-2 buckets
		{math.MaxInt64, NumHistBuckets - 1},
	}
	for _, tc := range cases {
		if got := HistBucketIndex(tc.v); got != tc.want {
			t.Errorf("HistBucketIndex(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}

	// Relative error bound: a bucket's width is at most 1/16 of its lower
	// bound, so the reported upper bound overestimates by <= 6.25% + 1.
	for _, v := range []int64{100, 1000, 12345, 1 << 20, 987654321, 1 << 40} {
		ub := HistBucketUpper(HistBucketIndex(v))
		if ub < v {
			t.Fatalf("upper bound %d below value %d", ub, v)
		}
		if float64(ub-v) > float64(v)/16+1 {
			t.Errorf("bucket error for %d: upper %d exceeds 6.25%% bound", v, ub)
		}
	}
}

// Histogram merge must be associative and commutative: any merge tree over
// any partition of the observations yields the identical snapshot. This is
// the acceptance-criteria property that makes worker-shipped histograms
// arrival-order independent.
func TestHistogramMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	randomSnap := func() HistSnapshot {
		var h Histogram
		n := rng.Intn(200)
		for i := 0; i < n; i++ {
			// Mix magnitudes so buckets across many octaves are hit.
			h.Observe(rng.Int63n(1 << uint(1+rng.Intn(40))))
		}
		return h.Snapshot()
	}
	for iter := 0; iter < 200; iter++ {
		a, b, c := randomSnap(), randomSnap(), randomSnap()
		ab := a.Merge(b)
		if ba := b.Merge(a); !histEqual(ab, ba) {
			t.Fatalf("iter %d: merge not commutative:\na+b=%+v\nb+a=%+v", iter, ab, ba)
		}
		left := ab.Merge(c)
		right := a.Merge(b.Merge(c))
		if !histEqual(left, right) {
			t.Fatalf("iter %d: merge not associative:\n(a+b)+c=%+v\na+(b+c)=%+v", iter, left, right)
		}
		zero := HistSnapshot{}
		if got := a.Merge(zero); !histEqual(got, a) {
			t.Fatalf("iter %d: zero not identity: %+v vs %+v", iter, got, a)
		}
	}
}

// histEqual compares snapshots up to trailing-zero bucket padding (Merge
// allocates max-length vectors; Snapshot trims).
func histEqual(a, b HistSnapshot) bool {
	if a.Count != b.Count || a.Sum != b.Sum {
		return false
	}
	trim := func(v []int64) []int64 {
		for len(v) > 0 && v[len(v)-1] == 0 {
			v = v[:len(v)-1]
		}
		return v
	}
	x, y := trim(a.Counts), trim(b.Counts)
	if len(x) == 0 && len(y) == 0 {
		return true
	}
	return reflect.DeepEqual(x, y)
}

// A one-shot merge of per-worker histograms must equal a single histogram
// that saw every observation — the distributed-fold correctness property.
func TestHistogramShardMergeEqualsWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var whole Histogram
	shards := make([]Histogram, 4)
	for i := 0; i < 5000; i++ {
		v := rng.Int63n(1 << 30)
		whole.Observe(v)
		shards[rng.Intn(len(shards))].Observe(v)
	}
	var merged HistSnapshot
	for i := range shards {
		merged = merged.Merge(shards[i].Snapshot())
	}
	if !histEqual(merged, whole.Snapshot()) {
		t.Fatal("merged shard snapshots differ from the whole-stream histogram")
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Sum != 1000*1001/2 {
		t.Fatalf("count/sum = %d/%d", s.Count, s.Sum)
	}
	for _, tc := range []struct{ q, exact float64 }{
		{0.5, 500}, {0.9, 900}, {0.99, 990}, {1.0, 1000},
	} {
		got := float64(s.Quantile(tc.q))
		if got < tc.exact || got > tc.exact*1.07+1 {
			t.Errorf("Quantile(%v) = %v, want within bucket error of %v", tc.q, got, tc.exact)
		}
	}
	if got := (HistSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %d, want 0", got)
	}
	if m := s.Mean(); m != 500 {
		t.Errorf("Mean = %d, want 500", m)
	}
}

// AddSnapshot (the wire-fold path into a live histogram) must agree with the
// pure Merge, and ignore out-of-range buckets from malformed senders.
func TestHistogramAddSnapshot(t *testing.T) {
	var a, b Histogram
	for i := int64(0); i < 300; i++ {
		a.Observe(i * 7)
		b.Observe(i * 13)
	}
	want := a.Snapshot().Merge(b.Snapshot())
	a.AddSnapshot(b.Snapshot())
	if !histEqual(a.Snapshot(), want) {
		t.Fatal("AddSnapshot differs from Merge")
	}

	var h Histogram
	h.AddSnapshot(HistSnapshot{Count: 1, Sum: 5, Counts: make([]int64, NumHistBuckets+10)})
	if got := h.Snapshot(); got.Count != 1 {
		t.Fatalf("oversized snapshot not folded: %+v", got)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) * 31)
	}
}
