// Package obs is the checker's observability layer: a lock-free metrics
// registry and a structured JSONL event trace.
//
// The registry mirrors the checker's own stats design (see
// internal/core/parallel.go): every worker owns a private Collector shard
// of atomic counters — no cross-worker contention on the hot paths — and a
// Snapshot merges the shards with order-insensitive operations only (sums
// and maxima), so the aggregated counters are independent of how the state
// space was partitioned. The counters that describe the exploration itself
// (scenarios, executions, load refinements, choice-stack activity, buffer
// traffic) are therefore bit-identical between a serial run and a full
// parallel run of the same program; Metrics.Canonical isolates exactly
// that comparable subset.
//
// When observability is disabled every hook degrades to a nil-receiver
// check: the Collector methods are nil-safe and small enough to inline, so
// a checker built without Options.Observe pays no measurable cost (see
// BenchmarkObservability at the repository root).
package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter indexes the summed exploration counters of a Collector shard.
type Counter int

const (
	// Scenarios counts failure scenarios started.
	Scenarios Counter = iota
	// ExecutionsPost counts post-failure (recovery) executions.
	ExecutionsPost
	// Steps counts guest operations simulated.
	Steps
	// PreFailureNs / PostFailureNs / ReplayNs partition segment wall-clock
	// time by phase. Under parallel exploration worker segments overlap,
	// so these accumulate CPU-style (summed across workers).
	PreFailureNs
	PostFailureNs
	ReplayNs
	// LoadSBHits counts load bytes satisfied by store-buffer bypassing.
	LoadSBHits
	// LoadCacheHits counts load bytes satisfied by the current execution's
	// cache without consulting pre-failure candidates.
	LoadCacheHits
	// LoadRefinements counts load bytes resolved through the constraint
	// refinement path (pre-failure candidate enumeration).
	LoadRefinements
	// RFCandidates sums the candidate-set sizes those refinements saw.
	RFCandidates
	// ChoicesReplayed / ChoicesFresh split chooser consultations into
	// replayed prefix decisions and newly discovered choice points.
	ChoicesReplayed
	ChoicesFresh
	// SBEvictions counts store-buffer entries evicted into the cache.
	SBEvictions
	// FBWritebacks counts flush-buffer (clflushopt) writebacks applied.
	FBWritebacks
	// SnapshotCaptures / SnapshotRestores count snapshot-engine activity:
	// pre-failure states captured at eligible failure points, and scenarios
	// that resumed from a captured state instead of re-running the guest.
	// SnapshotRestoreNs is the wall-clock time spent restoring.
	SnapshotCaptures
	SnapshotRestores
	SnapshotRestoreNs
	// RFElisions counts multi-candidate load bytes resolved without a
	// choice point because every candidate carried the same value (the
	// partial-order-reduction commutativity rule). Partition-independent:
	// elision is a deterministic property of the candidate set.
	RFElisions
	// ScenariosPruned counts scenarios skipped by post-failure state
	// fingerprinting (the K-1 remaining scenarios of each recovery subtree
	// a fingerprint hit proved equivalent to an explored one).
	// FingerprintHits / FingerprintMisses count seen-set consultations.
	// All three depend on visit order and are zeroed by Canonical.
	ScenariosPruned
	FingerprintHits
	FingerprintMisses
	// ChoicesRestored counts the subset of ChoicesReplayed decisions that
	// were satisfied by a snapshot restore (failure-point or choice-point)
	// instead of live re-execution. Restores still accumulate into
	// ChoicesReplayed — the partition-independent total — so this counter
	// splits, never changes, that total: the Metrics report shows
	// choices_replayed minus choices_restored as the live replay count.
	ChoicesRestored
	// ChoiceSnapCaptures / ChoiceRestores count choice-point snapshot-stack
	// activity: post-failure choice points captured along the DFS path, and
	// scenarios that resumed from one (restoring O(delta) state and
	// fast-forwarding the recovery segment) instead of replaying the whole
	// post-failure prefix. ChoiceRestoreNs is the wall-clock time spent in
	// those restores; ReplayStepsSaved sums the guest steps the skipped
	// prefixes would have re-executed.
	ChoiceSnapCaptures
	ChoiceRestores
	ChoiceRestoreNs
	ReplayStepsSaved
	// RefinementsSkipped counts post-failure load bytes whose Figure-10
	// interval refinement was skipped because the chosen line's refinement
	// epoch was unchanged since an identical refinement of the same
	// interval (the walk is idempotent, so repeating it is pure cost).
	RefinementsSkipped
	// ReplaySteps counts guest steps physically executed while the chooser
	// was still replaying a recorded decision prefix (cursor behind the
	// vector) — the cost the snapshot engines exist to avoid. Fast-forwarded
	// operations skip step accounting entirely, so a restored prefix
	// contributes nothing here. Engine-dependent; zeroed by Canonical.
	ReplaySteps

	numCounters
)

// NumCounters is the exported width of the counter space, for wire
// validation and exhaustiveness tests.
const NumCounters = int(numCounters)

// counterNames maps each Counter to its snake_case wire/exposition name —
// the same vocabulary the Metrics JSON tags use. A counter whose name ends
// in "_ns" is wall-clock and therefore non-canonical by convention;
// TestCanonicalZeroesEveryTimingCounter enforces that convention by
// reflection, so a future timing counter cannot silently leak into the
// determinism gates.
var counterNames = [numCounters]string{
	Scenarios:          "scenarios",
	ExecutionsPost:     "executions_post",
	Steps:              "steps",
	PreFailureNs:       "pre_failure_ns",
	PostFailureNs:      "post_failure_ns",
	ReplayNs:           "replay_ns",
	LoadSBHits:         "load_sb_hits",
	LoadCacheHits:      "load_cache_hits",
	LoadRefinements:    "load_refinements",
	RFCandidates:       "rf_candidates",
	ChoicesReplayed:    "choices_replayed",
	ChoicesFresh:       "choices_fresh",
	SBEvictions:        "sb_evictions",
	FBWritebacks:       "fb_writebacks",
	SnapshotCaptures:   "snapshot_captures",
	SnapshotRestores:   "snapshot_restores",
	SnapshotRestoreNs:  "snapshot_restore_ns",
	RFElisions:         "rf_elisions",
	ScenariosPruned:    "scenarios_pruned",
	FingerprintHits:    "fingerprint_hits",
	FingerprintMisses:  "fingerprint_misses",
	ChoicesRestored:    "choices_restored",
	ChoiceSnapCaptures: "choice_snap_captures",
	ChoiceRestores:     "choice_restores",
	ChoiceRestoreNs:    "choice_restore_ns",
	ReplayStepsSaved:   "replay_steps_saved",
	RefinementsSkipped: "refinements_skipped",
	ReplaySteps:        "replay_steps",
}

// String returns the counter's snake_case exposition name.
func (c Counter) String() string {
	if c < 0 || c >= numCounters {
		return fmt.Sprintf("counter(%d)", int(c))
	}
	return counterNames[c]
}

// Peak indexes the high-water marks of a Collector shard (merged by max).
type Peak int

const (
	// PeakRFCandidates is the largest candidate set any load byte saw.
	PeakRFCandidates Peak = iota
	// PeakChoiceDepth is the deepest choice stack any scenario built.
	PeakChoiceDepth
	// PeakSB / PeakFB are the store- and flush-buffer occupancy high-water
	// marks across all guest threads.
	PeakSB
	PeakFB
	// PeakSnapshotBytes is the high-water estimate of memory retained by
	// the snapshot engine's journaled state (shared store queues + undo
	// journal), per worker, merged by max.
	PeakSnapshotBytes

	numPeaks
)

// Timer indexes the per-phase latency histograms of a Collector shard. Each
// timer is one Histogram (histogram.go): the checker records individual
// phase durations in nanoseconds alongside the summed *Ns counters above, so
// the exposition layer can serve latency distributions and quantiles, not
// just totals. All timing data is wall-clock and therefore non-canonical:
// histograms live outside Metrics and outside CounterVec, so they can never
// enter the bit-identical equivalence comparisons or the snapshot/POR delta
// machinery.
type Timer int

const (
	// TimerPreFailure / TimerPostFailure / TimerReplay are per-segment guest
	// execution latencies, split by the same phase rule as the *Ns counters.
	TimerPreFailure Timer = iota
	TimerPostFailure
	TimerReplay
	// TimerSnapshotRestore / TimerChoiceRestore are per-restore latencies of
	// the failure-point snapshot engine and the choice-point snapshot stack.
	TimerSnapshotRestore
	TimerChoiceRestore
	// TimerFingerprint is the per-call latency of the POR crash-state
	// fingerprint walk.
	TimerFingerprint
	// TimerRefinement is the per-load-byte latency of the constraint
	// refinement path (candidate choice plus the Figure-10 interval walk).
	TimerRefinement
	// TimerLeaseClaim / TimerLeaseCommit are distributed-worker RPC
	// round-trip latencies against the coordinator.
	TimerLeaseClaim
	TimerLeaseCommit

	numTimers
)

// NumTimers is the exported width of the timer space, for wire validation.
const NumTimers = int(numTimers)

var timerNames = [numTimers]string{
	TimerPreFailure:      "pre_failure",
	TimerPostFailure:     "post_failure",
	TimerReplay:          "replay",
	TimerSnapshotRestore: "snapshot_restore",
	TimerChoiceRestore:   "choice_restore",
	TimerFingerprint:     "fingerprint",
	TimerRefinement:      "refinement",
	TimerLeaseClaim:      "lease_claim",
	TimerLeaseCommit:     "lease_commit",
}

// String returns the timer's snake_case exposition name.
func (t Timer) String() string {
	if t < 0 || t >= numTimers {
		return fmt.Sprintf("timer(%d)", int(t))
	}
	return timerNames[t]
}

// HistVec is one merged snapshot of every timer histogram, indexed by Timer.
type HistVec [NumTimers]HistSnapshot

// Merge returns the timer-wise merge of v and o.
func (v HistVec) Merge(o HistVec) HistVec {
	var out HistVec
	for t := range out {
		out[t] = v[t].Merge(o[t])
	}
	return out
}

// Collector is one worker's private metrics shard. All methods are safe on
// a nil receiver — the disabled fast path is a single nil check — and safe
// for the single-writer / concurrent-reader pattern the registry uses (the
// owning worker writes, Snapshot reads concurrently via atomics).
type Collector struct {
	counts [numCounters]atomic.Int64
	peaks  [numPeaks]atomic.Int64
	hists  [numTimers]Histogram
}

// Add accumulates n into counter k.
func (c *Collector) Add(k Counter, n int64) {
	if c == nil {
		return
	}
	c.counts[k].Add(n)
}

// Inc accumulates 1 into counter k.
func (c *Collector) Inc(k Counter) {
	if c == nil {
		return
	}
	c.counts[k].Add(1)
}

// NotePeak raises high-water mark p to v if v is larger. The wrapper stays
// small enough to inline so the disabled (nil) path is branch-and-return.
func (c *Collector) NotePeak(p Peak, v int64) {
	if c == nil {
		return
	}
	c.raisePeak(p, v)
}

// Observe records one duration (nanoseconds) into timer t's histogram.
func (c *Collector) Observe(t Timer, ns int64) {
	if c == nil {
		return
	}
	c.hists[t].Observe(ns)
}

// HistSnapshot reads one timer's histogram (zero value on nil).
func (c *Collector) HistSnapshot(t Timer) HistSnapshot {
	if c == nil {
		return HistSnapshot{}
	}
	return c.hists[t].Snapshot()
}

// HistSnapshots reads every timer histogram (zero value on nil).
func (c *Collector) HistSnapshots() HistVec {
	var v HistVec
	if c == nil {
		return v
	}
	for t := range v {
		v[t] = c.hists[t].Snapshot()
	}
	return v
}

// AddHist folds a wire-shipped histogram snapshot into timer t — the merge
// the distributed coordinator applies when absorbing a retired lease's shard.
func (c *Collector) AddHist(t Timer, s HistSnapshot) {
	if c == nil || t < 0 || t >= numTimers {
		return
	}
	c.hists[t].AddSnapshot(s)
}

// CounterVec is a plain (non-atomic) snapshot of one Collector's summed
// counters. The snapshot engine uses it for delta accounting: the counters
// a scenario accumulated up to a capture point are stored with the snapshot
// and re-applied when a later scenario restores that state instead of
// re-executing the guest, keeping the merged Metrics bit-identical to a
// full-replay run.
type CounterVec [numCounters]int64

// Counters reads the collector's current counter values (zero on nil).
func (c *Collector) Counters() CounterVec {
	var v CounterVec
	if c == nil {
		return v
	}
	for k := range v {
		v[k] = c.counts[k].Load()
	}
	return v
}

// Diff returns v - base, element-wise.
func (v CounterVec) Diff(base CounterVec) CounterVec {
	for k := range v {
		v[k] -= base[k]
	}
	return v
}

// Clear zeroes the given counters in place.
func (v *CounterVec) Clear(ks ...Counter) {
	for _, k := range ks {
		v[k] = 0
	}
}

// AddCounters accumulates a whole vector into the collector (no-op on nil).
func (c *Collector) AddCounters(v CounterVec) {
	if c == nil {
		return
	}
	for k, n := range v {
		if n != 0 {
			c.counts[k].Add(n)
		}
	}
}

// PeakValues reads the collector's peak high-water marks as a dense slice
// (index = Peak) for wire serialization; nil on a nil collector.
func (c *Collector) PeakValues() []int64 {
	if c == nil {
		return nil
	}
	out := make([]int64, numPeaks)
	for p := range out {
		out[p] = c.peaks[p].Load()
	}
	return out
}

// RaisePeaks folds wire peak values into the collector by max (the same
// merge rule Snapshot applies across shards). Extra values are ignored so
// older senders stay compatible.
func (c *Collector) RaisePeaks(vals []int64) {
	if c == nil {
		return
	}
	for p, v := range vals {
		if p >= int(numPeaks) {
			break
		}
		if v > 0 {
			c.raisePeak(Peak(p), v)
		}
	}
}

func (c *Collector) raisePeak(p Peak, v int64) {
	g := &c.peaks[p]
	for {
		cur := g.Load()
		if v <= cur || g.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Registry aggregates the Collector shards of one exploration plus the
// driver-level signals that have no per-worker home: frontier traffic,
// worker count, and the optional event stream. All methods are nil-safe.
type Registry struct {
	mu     sync.Mutex
	shards []*Collector
	events *eventWriter
	start  time.Time

	goal    atomic.Int64 // MaxScenarios, for progress ETA
	workers atomic.Int64

	frontierLen     atomic.Int64 // live queue length (gauge)
	frontierPeak    atomic.Int64
	frontierPushed  atomic.Int64
	frontierClaimed atomic.Int64
	donations       atomic.Int64

	// Distributed-exploration traffic (internal/dist coordinator).
	leasesGranted  atomic.Int64
	leasesExpired  atomic.Int64
	leasesReleased atomic.Int64
	leaseRequeues  atomic.Int64
	rpcs           atomic.Int64

	// Wire-level data-plane accounting (internal/dist, either side).
	bytesTx         atomic.Int64
	bytesRx         atomic.Int64
	commitBatches   atomic.Int64
	commitScenarios atomic.Int64
}

// NewRegistry returns a registry; a non-nil events writer receives the
// JSONL event stream (one object per line, serialized by an internal lock).
func NewRegistry(events io.Writer) *Registry {
	r := &Registry{start: time.Now()}
	if events != nil {
		r.events = &eventWriter{w: events, start: r.start}
	}
	return r
}

// NewShard registers and returns a fresh Collector for one worker.
func (r *Registry) NewShard() *Collector {
	if r == nil {
		return nil
	}
	c := &Collector{}
	r.mu.Lock()
	r.shards = append(r.shards, c)
	r.mu.Unlock()
	return c
}

// SetGoal records the scenario cap used for progress ETA.
func (r *Registry) SetGoal(n int64) {
	if r != nil {
		r.goal.Store(n)
	}
}

// SetWorkers records the worker count of the exploration.
func (r *Registry) SetWorkers(n int) {
	if r != nil {
		r.workers.Store(int64(n))
	}
}

// NotePush records n branches published to the frontier, which now holds
// depth items.
func (r *Registry) NotePush(n, depth int) {
	if r == nil {
		return
	}
	r.frontierPushed.Add(int64(n))
	r.frontierLen.Store(int64(depth))
	for {
		cur := r.frontierPeak.Load()
		if int64(depth) <= cur || r.frontierPeak.CompareAndSwap(cur, int64(depth)) {
			break
		}
	}
}

// NoteClaim records one branch claimed from the frontier, leaving depth
// items queued.
func (r *Registry) NoteClaim(depth int) {
	if r == nil {
		return
	}
	r.frontierClaimed.Add(1)
	r.frontierLen.Store(int64(depth))
}

// NoteDonation records n branches donated by a worker (work-stealing).
func (r *Registry) NoteDonation(n int) {
	if r != nil {
		r.donations.Add(int64(n))
	}
}

// NoteLease records one lease granted to a distributed worker.
func (r *Registry) NoteLease() {
	if r != nil {
		r.leasesGranted.Add(1)
	}
}

// NoteLeaseExpired records an expired lease whose residual subtree was
// requeued (requeued=true) or discarded because it was already complete.
func (r *Registry) NoteLeaseExpired(requeued bool) {
	if r == nil {
		return
	}
	r.leasesExpired.Add(1)
	if requeued {
		r.leaseRequeues.Add(1)
	}
}

// NoteLeaseReleased records a lease relinquished mid-subtree by a draining
// worker, whose residual was requeued (requeued=false when the job had
// already stopped and the residual was discarded).
func (r *Registry) NoteLeaseReleased(requeued bool) {
	if r == nil {
		return
	}
	r.leasesReleased.Add(1)
	if requeued {
		r.leaseRequeues.Add(1)
	}
}

// NoteRPC records one coordinator RPC handled.
func (r *Registry) NoteRPC() {
	if r != nil {
		r.rpcs.Add(1)
	}
}

// NoteBytes records wire traffic: tx bytes sent and rx bytes received on
// the distributed data plane (request plus response bodies, as counted by
// the transport in use — the netsim fabric in-process, the HTTP client on a
// real network).
func (r *Registry) NoteBytes(tx, rx int64) {
	if r == nil {
		return
	}
	if tx > 0 {
		r.bytesTx.Add(tx)
	}
	if rx > 0 {
		r.bytesRx.Add(rx)
	}
}

// NoteCommitBatch records one absorbed delta commit covering n scenarios;
// Snapshot reports the running average as CommitBatchSize.
func (r *Registry) NoteCommitBatch(n int64) {
	if r == nil {
		return
	}
	r.commitBatches.Add(1)
	r.commitScenarios.Add(n)
}

// Emit appends one event to the JSONL stream, if one is attached. kv is a
// flat key/value list; values may be ints, bools, or strings.
func (r *Registry) Emit(ev string, kv ...any) {
	if r == nil || r.events == nil {
		return
	}
	r.events.emit(ev, kv)
}

// Err reports the first error the event stream's writer returned, if any.
func (r *Registry) Err() error {
	if r == nil || r.events == nil {
		return nil
	}
	r.events.mu.Lock()
	defer r.events.mu.Unlock()
	return r.events.err
}

// Snapshot merges every shard into a Metrics value. It is safe to call
// while workers are still running (live progress); counters are then a
// consistent-enough in-flight view, exact once the run has finished.
func (r *Registry) Snapshot() Metrics {
	var m Metrics
	if r == nil {
		return m
	}
	r.mu.Lock()
	shards := append([]*Collector(nil), r.shards...)
	r.mu.Unlock()
	var counts CounterVec
	var peaks [numPeaks]int64
	for _, s := range shards {
		for k := range counts {
			counts[k] += s.counts[k].Load()
		}
		for p := range peaks {
			if v := s.peaks[p].Load(); v > peaks[p] {
				peaks[p] = v
			}
		}
	}
	m = m.AddVec(counts)
	m.MaxSnapshotBytes = peaks[PeakSnapshotBytes]
	m.MaxRFCandidates = peaks[PeakRFCandidates]
	m.MaxChoiceDepth = peaks[PeakChoiceDepth]
	m.MaxSBOccupancy = peaks[PeakSB]
	m.MaxFBOccupancy = peaks[PeakFB]
	m.FrontierPushed = r.frontierPushed.Load()
	m.FrontierClaimed = r.frontierClaimed.Load()
	m.Donations = r.donations.Load()
	m.MaxFrontierLen = r.frontierPeak.Load()
	m.Workers = r.workers.Load()
	m.LeasesGranted = r.leasesGranted.Load()
	m.LeasesExpired = r.leasesExpired.Load()
	m.LeasesReleased = r.leasesReleased.Load()
	m.LeaseRequeues = r.leaseRequeues.Load()
	m.RPCs = r.rpcs.Load()
	m.BytesTx = r.bytesTx.Load()
	m.BytesRx = r.bytesRx.Load()
	if batches := r.commitBatches.Load(); batches > 0 {
		m.CommitBatchSize = r.commitScenarios.Load() / batches
	}
	if r.events != nil {
		m.Events = r.events.count.Load()
	}
	return m
}

// Histograms merges every shard's timer histograms — the latency-
// distribution counterpart of Snapshot. Like Snapshot it is safe to call
// mid-run; the bucket-wise merge is order-insensitive, so a mid-run view is
// a consistent partial distribution and the final view is exact.
func (r *Registry) Histograms() HistVec {
	var v HistVec
	if r == nil {
		return v
	}
	r.mu.Lock()
	shards := append([]*Collector(nil), r.shards...)
	r.mu.Unlock()
	for _, s := range shards {
		v = v.Merge(s.HistSnapshots())
	}
	return v
}

// Uptime reports time elapsed since the registry was created (zero on nil).
func (r *Registry) Uptime() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.start)
}

// Goal reports the scenario cap recorded by SetGoal (0 when unset or nil).
func (r *Registry) Goal() int64 {
	if r == nil {
		return 0
	}
	return r.goal.Load()
}

// FrontierLen reports the live frontier queue length gauge.
func (r *Registry) FrontierLen() int64 {
	if r == nil {
		return 0
	}
	return r.frontierLen.Load()
}

// Progress renders a one-line live status: scenarios explored, percent of
// goal, rate, executions, frontier depth, and — when a MaxScenarios goal is
// set — the ETA to that cap (an upper bound: full explorations finish
// earlier).
func (r *Registry) Progress() string {
	if r == nil {
		return ""
	}
	return FormatProgress(r.Snapshot(), r.frontierLen.Load(), r.goal.Load(),
		time.Since(r.start))
}

// FormatProgress is the pure formatting core of Progress, split out so the
// rendering is testable with fixed inputs. goal <= 0 means no scenario cap
// was set; elapsed <= 0 suppresses the rate and ETA.
func FormatProgress(m Metrics, frontier, goal int64, elapsed time.Duration) string {
	rate := 0.0
	if sec := elapsed.Seconds(); sec > 0 {
		rate = float64(m.Scenarios) / sec
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d scenarios", m.Scenarios)
	if goal > 0 {
		fmt.Fprintf(&b, " (%d%%, %.0f/s)", m.Scenarios*100/goal, rate)
	} else {
		fmt.Fprintf(&b, " (%.0f/s)", rate)
	}
	fmt.Fprintf(&b, ", %d executions, frontier %d", m.Executions, frontier)
	if goal > 0 && rate > 0 && m.Scenarios < goal {
		eta := time.Duration(float64(goal-m.Scenarios) / rate * float64(time.Second))
		fmt.Fprintf(&b, ", <=%s to MaxScenarios", eta.Round(time.Second))
	}
	return b.String()
}

// Metrics is one merged snapshot of the registry. All fields are plain
// integers, so two snapshots compare with ==.
type Metrics struct {
	// Exploration totals (partition-independent).
	Scenarios      int64 `json:"scenarios"`
	Executions     int64 `json:"executions"`
	ExecutionsPost int64 `json:"executions_post"`
	Steps          int64 `json:"steps"`

	// Phase timings, nanoseconds summed over segments (CPU-style under
	// parallel exploration, where worker segments overlap).
	PreFailureNs  int64 `json:"pre_failure_ns"`
	PostFailureNs int64 `json:"post_failure_ns"`
	ReplayNs      int64 `json:"replay_ns"`

	// Load path (partition-independent).
	LoadSBHits      int64 `json:"load_sb_hits"`
	LoadCacheHits   int64 `json:"load_cache_hits"`
	LoadRefinements int64 `json:"load_refinements"`
	RFCandidates    int64 `json:"rf_candidates"`
	MaxRFCandidates int64 `json:"max_rf_candidates"`

	// Choice stack. ChoicesReplayed here is the *live* replay count;
	// ChoicesRestored is the decisions satisfied by snapshot restores
	// (failure-point or choice-point). Their sum is partition-independent;
	// the split depends on the snapshot engines and is re-folded by
	// Canonical.
	ChoicesReplayed int64 `json:"choices_replayed"`
	ChoicesRestored int64 `json:"choices_restored,omitempty"`
	ChoicesFresh    int64 `json:"choices_fresh"`
	MaxChoiceDepth  int64 `json:"max_choice_depth"`

	// Store/flush buffer traffic (partition-independent).
	SBEvictions    int64 `json:"sb_evictions"`
	FBWritebacks   int64 `json:"fb_writebacks"`
	MaxSBOccupancy int64 `json:"max_sb_occupancy"`
	MaxFBOccupancy int64 `json:"max_fb_occupancy"`

	// Snapshot engine (depends on Options.Snapshots and on how scenarios
	// were partitioned; zeroed by Canonical).
	SnapshotCaptures  int64 `json:"snapshot_captures,omitempty"`
	SnapshotRestores  int64 `json:"snapshot_restores,omitempty"`
	SnapshotRestoreNs int64 `json:"snapshot_restore_ns,omitempty"`
	MaxSnapshotBytes  int64 `json:"max_snapshot_bytes,omitempty"`

	// Choice-point snapshot stack (depends on Options.ChoiceSnapshots and
	// on partitioning; zeroed by Canonical). RefinementsSkipped is likewise
	// non-canonical: restores change which loads execute live.
	ChoiceSnapCaptures int64 `json:"choice_snap_captures,omitempty"`
	ChoiceRestores     int64 `json:"choice_restores,omitempty"`
	ChoiceRestoreNs    int64 `json:"choice_restore_ns,omitempty"`
	ReplayStepsSaved   int64 `json:"replay_steps_saved,omitempty"`
	RefinementsSkipped int64 `json:"refinements_skipped,omitempty"`
	// ReplaySteps is the physical cost of replay: guest steps executed while
	// the chooser was still consuming a recorded prefix. The full-replay
	// engine re-runs every prefix, the failure-point engine re-runs recovery
	// prefixes, the choice-point stack fast-forwards them (ffwd operations
	// skip step accounting), so this is the counter BENCH_replay.json's
	// step-reduction column is built from.
	ReplaySteps int64 `json:"replay_steps,omitempty"`

	// Partial-order reduction. RFElisions is a deterministic property of
	// the candidate sets and stays canonical; the fingerprint seen-set
	// counters depend on which worker visited an equivalence class first
	// and are zeroed by Canonical.
	RFElisions        int64 `json:"rf_elisions,omitempty"`
	ScenariosPruned   int64 `json:"scenarios_pruned,omitempty"`
	FingerprintHits   int64 `json:"fingerprint_hits,omitempty"`
	FingerprintMisses int64 `json:"fingerprint_misses,omitempty"`

	// Parallel driver (depends on scheduling; zeroed by Canonical).
	FrontierPushed  int64 `json:"frontier_pushed,omitempty"`
	FrontierClaimed int64 `json:"frontier_claimed,omitempty"`
	Donations       int64 `json:"donations,omitempty"`
	MaxFrontierLen  int64 `json:"max_frontier_len,omitempty"`
	Workers         int64 `json:"workers,omitempty"`

	// Distributed exploration (coordinator-side; depends on fleet timing
	// and fault injection, zeroed by Canonical).
	LeasesGranted  int64 `json:"leases_granted,omitempty"`
	LeasesExpired  int64 `json:"leases_expired,omitempty"`
	LeasesReleased int64 `json:"leases_released,omitempty"`
	LeaseRequeues  int64 `json:"lease_requeues,omitempty"`
	RPCs           int64 `json:"rpcs,omitempty"`

	// Wire-level data plane (depends on codec, batching, and fleet timing;
	// zeroed by Canonical). CommitBatchSize is the average scenarios carried
	// per absorbed delta commit.
	BytesTx         int64 `json:"bytes_tx,omitempty"`
	BytesRx         int64 `json:"bytes_rx,omitempty"`
	CommitBatchSize int64 `json:"commit_batch_size,omitempty"`

	// Events emitted to the JSONL stream, if one was attached.
	Events int64 `json:"events,omitempty"`
}

// AddVec folds a raw counter vector into the snapshot, applying the same
// reporting rules as Registry.Snapshot: restore-satisfied decisions are
// reported separately from live replays (internally restores accumulate into
// ChoicesReplayed — the partition-independent total — and the split happens
// here, at the reporting edge), and Executions is recomputed as
// ExecutionsPost plus the shared pre-failure execution.
func (m Metrics) AddVec(v CounterVec) Metrics {
	m.Scenarios += v[Scenarios]
	m.ExecutionsPost += v[ExecutionsPost]
	m.Executions = m.ExecutionsPost + 1 // the shared pre-failure execution
	m.Steps += v[Steps]
	m.PreFailureNs += v[PreFailureNs]
	m.PostFailureNs += v[PostFailureNs]
	m.ReplayNs += v[ReplayNs]
	m.LoadSBHits += v[LoadSBHits]
	m.LoadCacheHits += v[LoadCacheHits]
	m.LoadRefinements += v[LoadRefinements]
	m.RFCandidates += v[RFCandidates]
	m.ChoicesReplayed += v[ChoicesReplayed] - v[ChoicesRestored]
	m.ChoicesRestored += v[ChoicesRestored]
	m.ChoicesFresh += v[ChoicesFresh]
	m.SBEvictions += v[SBEvictions]
	m.FBWritebacks += v[FBWritebacks]
	m.SnapshotCaptures += v[SnapshotCaptures]
	m.SnapshotRestores += v[SnapshotRestores]
	m.SnapshotRestoreNs += v[SnapshotRestoreNs]
	m.RFElisions += v[RFElisions]
	m.ScenariosPruned += v[ScenariosPruned]
	m.FingerprintHits += v[FingerprintHits]
	m.FingerprintMisses += v[FingerprintMisses]
	m.ChoiceSnapCaptures += v[ChoiceSnapCaptures]
	m.ChoiceRestores += v[ChoiceRestores]
	m.ChoiceRestoreNs += v[ChoiceRestoreNs]
	m.ReplayStepsSaved += v[ReplayStepsSaved]
	m.RefinementsSkipped += v[RefinementsSkipped]
	m.ReplaySteps += v[ReplaySteps]
	return m
}

// Canonical returns a copy with the fields that legitimately differ from
// run to run zeroed — wall-clock phase timings and the driver-dependent
// frontier/worker/event accounting — leaving exactly the counters that
// must be identical between a serial exploration and a full parallel
// exploration of the same program.
func (m Metrics) Canonical() Metrics {
	m.PreFailureNs, m.PostFailureNs, m.ReplayNs = 0, 0, 0
	m.FrontierPushed, m.FrontierClaimed, m.Donations = 0, 0, 0
	m.MaxFrontierLen, m.Workers, m.Events = 0, 0, 0
	m.SnapshotCaptures, m.SnapshotRestores = 0, 0
	m.SnapshotRestoreNs, m.MaxSnapshotBytes = 0, 0
	// Fold restore-satisfied decisions back into the replay total: the sum
	// is what is partition- and engine-independent.
	m.ChoicesReplayed += m.ChoicesRestored
	m.ChoicesRestored = 0
	m.ChoiceSnapCaptures, m.ChoiceRestores, m.ChoiceRestoreNs = 0, 0, 0
	m.ReplayStepsSaved, m.RefinementsSkipped, m.ReplaySteps = 0, 0, 0
	m.ScenariosPruned, m.FingerprintHits, m.FingerprintMisses = 0, 0, 0
	m.LeasesGranted, m.LeasesExpired, m.LeasesReleased = 0, 0, 0
	m.LeaseRequeues, m.RPCs = 0, 0
	m.BytesTx, m.BytesRx, m.CommitBatchSize = 0, 0, 0
	return m
}
