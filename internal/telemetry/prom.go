package telemetry

import (
	"fmt"
	"io"
	"reflect"
	"strings"
	"sync"

	"jaaru/internal/obs"
)

// Label is one Prometheus label pair.
type Label struct{ Name, Value string }

// Series is one labeled metrics source: a merged obs snapshot plus its timer
// histograms. The coordinator passes one Series per job (label job="...");
// the standalone checker and the worker pass exactly one, unlabeled.
type Series struct {
	Labels  []Label
	Metrics obs.Metrics
	Hists   obs.HistVec
}

// metricFields is the scalar family list, derived once from the Metrics
// struct's json tags so the exposition vocabulary can never drift from the
// JSON report vocabulary.
var metricFields = sync.OnceValue(func() []struct {
	name  string
	index int
} {
	typ := reflect.TypeOf(obs.Metrics{})
	out := make([]struct {
		name  string
		index int
	}, 0, typ.NumField())
	for i := 0; i < typ.NumField(); i++ {
		tag, _, _ := strings.Cut(typ.Field(i).Tag.Get("json"), ",")
		if tag == "" || tag == "-" {
			continue
		}
		out = append(out, struct {
			name  string
			index int
		}{"jaaru_" + tag, i})
	}
	return out
})

// histFamily is the one histogram family: per-phase latency distributions,
// distinguished by the timer label.
const histFamily = "jaaru_phase_latency_ns"

// WriteMetrics renders the series in Prometheus text exposition format
// (version 0.0.4): every scalar Metrics field becomes a gauge family named
// jaaru_<json_tag> with one sample per series, and every populated timer
// histogram becomes labeled samples of the jaaru_phase_latency_ns histogram
// family. Only populated buckets are emitted (cumulative counts stay exact;
// sparse `le` sets are valid exposition), so a scrape is a few KB, not the
// full 976-bucket layout.
func WriteMetrics(w io.Writer, series ...Series) error {
	for _, f := range metricFields() {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", f.name); err != nil {
			return err
		}
		for si := range series {
			v := reflect.ValueOf(series[si].Metrics).Field(f.index).Int()
			if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(series[si].Labels, "", 0), v); err != nil {
				return err
			}
		}
	}

	any := false
	for si := range series {
		for t := range series[si].Hists {
			if series[si].Hists[t].Count > 0 {
				any = true
			}
		}
	}
	if !any {
		return nil
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", histFamily); err != nil {
		return err
	}
	for si := range series {
		s := &series[si]
		for t := range s.Hists {
			h := s.Hists[t]
			if h.Count == 0 {
				continue
			}
			timer := obs.Timer(t).String()
			var cum int64
			for i, n := range h.Counts {
				if n == 0 {
					continue
				}
				cum += n
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", histFamily,
					labelString(s.Labels, timer, obs.HistBucketUpper(i)), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", histFamily,
				labelString(s.Labels, timer, -1), h.Count); err != nil {
				return err
			}
			base := labelString(append(append([]Label(nil), s.Labels...),
				Label{"timer", timer}), "", 0)
			if _, err := fmt.Fprintf(w, "%s_sum%s %d\n%s_count%s %d\n",
				histFamily, base, h.Sum, histFamily, base, h.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// labelString renders a label set. A non-empty timer adds timer="..." and an
// le label: le >= 0 renders the bound, le < 0 renders +Inf.
func labelString(labels []Label, timer string, le int64) string {
	var parts []string
	for _, l := range labels {
		// %q escaping (backslash, quote, newline) matches the exposition
		// format's label escaping rules.
		parts = append(parts, fmt.Sprintf("%s=%q", l.Name, l.Value))
	}
	if timer != "" {
		parts = append(parts, fmt.Sprintf("timer=%q", timer))
		if le >= 0 {
			parts = append(parts, fmt.Sprintf("le=%q", fmt.Sprint(le)))
		} else {
			parts = append(parts, `le="+Inf"`)
		}
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}
