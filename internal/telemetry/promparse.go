package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition sample.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParseExposition parses and validates a Prometheus text-format (0.0.4)
// scrape body. It is deliberately small — the subset WriteMetrics emits and
// real Prometheus servers require — but strict within that subset:
//
//   - sample lines must be `name[{label="value",...}] value`
//   - metric and label names must match the Prometheus grammar
//   - a family's `# TYPE` line must precede its samples and appear once
//   - duplicate samples (same name + label set) are rejected
//   - every histogram family is checked for coherence: per label set, `le`
//     bounds strictly increase, bucket counts are cumulative, the `+Inf`
//     bucket exists and equals `_count`, and `_sum` is present
//
// The scrape smoke tests use it to prove /metrics emits what a real scraper
// could ingest.
func ParseExposition(r io.Reader) ([]Sample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var samples []Sample
	types := map[string]string{}    // family -> type
	familySeen := map[string]bool{} // family has emitted samples
	sampleSeen := map[string]bool{} // name + rendered labels
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				if len(fields) < 3 || !validMetricName(fields[2]) {
					return nil, fmt.Errorf("line %d: malformed %s comment: %s", lineNo, fields[1], line)
				}
				if fields[1] == "TYPE" {
					if len(fields) != 4 {
						return nil, fmt.Errorf("line %d: TYPE needs exactly one type: %s", lineNo, line)
					}
					switch fields[3] {
					case "counter", "gauge", "histogram", "summary", "untyped":
					default:
						return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
					}
					if _, dup := types[fields[2]]; dup {
						return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, fields[2])
					}
					if familySeen[fields[2]] {
						return nil, fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, fields[2])
					}
					types[fields[2]] = fields[3]
				}
			}
			continue // other comments are ignored per the format
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		key := s.Name + renderLabels(s.Labels)
		if sampleSeen[key] {
			return nil, fmt.Errorf("line %d: duplicate sample %s", lineNo, key)
		}
		sampleSeen[key] = true
		familySeen[familyOf(s.Name, types)] = true
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := validateHistograms(samples, types); err != nil {
		return nil, err
	}
	return samples, nil
}

// familyOf maps a sample name to its TYPE family: histogram samples carry
// _bucket/_sum/_count suffixes on the family name.
func familyOf(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

func parseSampleLine(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	brace := strings.IndexByte(rest, '{')
	var nameEnd int
	if brace >= 0 {
		nameEnd = brace
	} else if sp := strings.IndexAny(rest, " \t"); sp >= 0 {
		nameEnd = sp
	} else {
		return s, fmt.Errorf("no value: %s", line)
	}
	s.Name = rest[:nameEnd]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[nameEnd:]
	if brace >= 0 {
		end := strings.IndexByte(rest, '}')
		if end < 0 {
			return s, fmt.Errorf("unterminated label set: %s", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return s, fmt.Errorf("want value [timestamp], got %q", rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string, into map[string]string) error {
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return fmt.Errorf("label without '=': %q", body)
		}
		name := strings.TrimSpace(body[:eq])
		if !validLabelName(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		rest := body[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("unquoted label value after %s", name)
		}
		// Scan the quoted value honoring backslash escapes.
		i := 1
		var val strings.Builder
		for {
			if i >= len(rest) {
				return fmt.Errorf("unterminated label value for %s", name)
			}
			c := rest[i]
			if c == '"' {
				break
			}
			if c == '\\' {
				i++
				if i >= len(rest) {
					return fmt.Errorf("dangling escape in label %s", name)
				}
				switch rest[i] {
				case '\\', '"':
					val.WriteByte(rest[i])
				case 'n':
					val.WriteByte('\n')
				default:
					return fmt.Errorf("bad escape \\%c in label %s", rest[i], name)
				}
			} else {
				val.WriteByte(c)
			}
			i++
		}
		if _, dup := into[name]; dup {
			return fmt.Errorf("duplicate label %s", name)
		}
		into[name] = val.String()
		body = strings.TrimPrefix(strings.TrimSpace(rest[i+1:]), ",")
		body = strings.TrimSpace(body)
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, c := range s {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// renderLabels produces a canonical string form of a label set (sorted), for
// dedup keys and histogram grouping.
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

type histGroup struct {
	les       []float64
	cumCounts []float64
	hasSum    bool
	count     float64
	hasCount  bool
}

func validateHistograms(samples []Sample, types map[string]string) error {
	groups := map[string]*histGroup{}
	group := func(family string, labels map[string]string) *histGroup {
		rest := make(map[string]string, len(labels))
		for k, v := range labels {
			if k != "le" {
				rest[k] = v
			}
		}
		key := family + renderLabels(rest)
		g, ok := groups[key]
		if !ok {
			g = &histGroup{}
			groups[key] = g
		}
		return g
	}
	for _, s := range samples {
		family := familyOf(s.Name, types)
		if types[family] != "histogram" {
			continue
		}
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			leStr, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("histogram bucket %s without le label", s.Name)
			}
			le := math.Inf(1)
			if leStr != "+Inf" {
				v, err := strconv.ParseFloat(leStr, 64)
				if err != nil {
					return fmt.Errorf("histogram %s: bad le %q", family, leStr)
				}
				le = v
			}
			g := group(family, s.Labels)
			g.les = append(g.les, le)
			g.cumCounts = append(g.cumCounts, s.Value)
		case strings.HasSuffix(s.Name, "_sum"):
			group(family, s.Labels).hasSum = true
		case strings.HasSuffix(s.Name, "_count"):
			g := group(family, s.Labels)
			g.hasCount = true
			g.count = s.Value
		}
	}
	for key, g := range groups {
		if !g.hasSum || !g.hasCount {
			return fmt.Errorf("histogram %s: missing _sum or _count", key)
		}
		if len(g.les) == 0 || !math.IsInf(g.les[len(g.les)-1], 1) {
			return fmt.Errorf("histogram %s: missing +Inf bucket", key)
		}
		for i := 1; i < len(g.les); i++ {
			if g.les[i] <= g.les[i-1] {
				return fmt.Errorf("histogram %s: le bounds not increasing", key)
			}
			if g.cumCounts[i] < g.cumCounts[i-1] {
				return fmt.Errorf("histogram %s: bucket counts not cumulative", key)
			}
		}
		if g.cumCounts[len(g.cumCounts)-1] != g.count {
			return fmt.Errorf("histogram %s: +Inf bucket %v != count %v",
				key, g.cumCounts[len(g.cumCounts)-1], g.count)
		}
	}
	return nil
}
