package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"jaaru/internal/obs"
)

func sampleHists() obs.HistVec {
	r := obs.NewRegistry(nil)
	c := r.NewShard()
	for i := int64(1); i <= 100; i++ {
		c.Observe(obs.TimerPreFailure, i*1000)
	}
	c.Observe(obs.TimerLeaseClaim, 2_000_000)
	return r.Histograms()
}

// The writer's output must round-trip through the strict parser, carry every
// Metrics field as a jaaru_-prefixed family, and emit coherent histograms.
func TestWriteMetricsRoundTrip(t *testing.T) {
	m := obs.Metrics{Scenarios: 42, Executions: 85, Steps: 9000, PreFailureNs: 123}
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, Series{Metrics: m, Hists: sampleHists()}); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseExposition(&buf)
	if err != nil {
		t.Fatalf("parse own output: %v\n%s", err, buf.String())
	}
	byName := map[string]float64{}
	for _, s := range samples {
		if len(s.Labels) == 0 {
			byName[s.Name] = s.Value
		}
	}
	if byName["jaaru_scenarios"] != 42 || byName["jaaru_steps"] != 9000 ||
		byName["jaaru_pre_failure_ns"] != 123 {
		t.Fatalf("scalar families wrong: %v", byName)
	}

	var bucketSamples, sum, count int
	for _, s := range samples {
		if s.Labels["timer"] != "pre_failure" {
			continue
		}
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			bucketSamples++
		case strings.HasSuffix(s.Name, "_sum"):
			sum++
			if s.Value != 100*101/2*1000 {
				t.Errorf("histogram sum = %v", s.Value)
			}
		case strings.HasSuffix(s.Name, "_count"):
			count++
			if s.Value != 100 {
				t.Errorf("histogram count = %v", s.Value)
			}
		}
	}
	if bucketSamples == 0 || sum != 1 || count != 1 {
		t.Fatalf("histogram exposition incomplete: %d buckets, %d sum, %d count",
			bucketSamples, sum, count)
	}
}

// Per-job labels: families must appear once with one sample per series, so a
// multi-job coordinator scrape stays valid exposition.
func TestWriteMetricsMultiSeries(t *testing.T) {
	var buf bytes.Buffer
	err := WriteMetrics(&buf,
		Series{Labels: []Label{{"job", "j1"}}, Metrics: obs.Metrics{Scenarios: 1}},
		Series{Labels: []Label{{"job", "j2"}}, Metrics: obs.Metrics{Scenarios: 2}},
	)
	if err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	samples, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	got := map[string]float64{}
	for _, s := range samples {
		if s.Name == "jaaru_scenarios" {
			got[s.Labels["job"]] = s.Value
		}
	}
	if got["j1"] != 1 || got["j2"] != 2 {
		t.Fatalf("per-job samples wrong: %v", got)
	}
	if n := strings.Count(text, "# TYPE jaaru_scenarios "); n != 1 {
		t.Fatalf("TYPE line emitted %d times, want 1", n)
	}
}

func TestParserRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad name":            "0bad 1\n",
		"no value":            "jaaru_x\n",
		"bad value":           "jaaru_x hello\n",
		"unterminated labels": "jaaru_x{a=\"1\" 1\n",
		"unquoted label":      "jaaru_x{a=1} 1\n",
		"duplicate sample":    "jaaru_x 1\njaaru_x 2\n",
		"duplicate TYPE":      "# TYPE jaaru_x gauge\n# TYPE jaaru_x gauge\njaaru_x 1\n",
		"unknown type":        "# TYPE jaaru_x widget\njaaru_x 1\n",
		"TYPE after samples":  "jaaru_x 1\n# TYPE jaaru_x gauge\n",
		"hist no +Inf":        "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"hist count mismatch": "# TYPE h histogram\nh_bucket{le=\"1\"} 1\n" +
			"h_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 2\n",
		"hist not cumulative": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\n" +
			"h_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"hist missing sum": "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
	}
	for name, body := range cases {
		if _, err := ParseExposition(strings.NewReader(body)); err == nil {
			t.Errorf("%s: accepted:\n%s", name, body)
		}
	}

	good := "# HELP jaaru_x help text here\n# TYPE jaaru_x gauge\n" +
		"jaaru_x{a=\"v\\\"q\\\\z\",b=\"2\"} 3.5 1700000000\n"
	samples, err := ParseExposition(strings.NewReader(good))
	if err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
	if len(samples) != 1 || samples[0].Labels["a"] != `v"q\z` {
		t.Fatalf("parsed = %+v", samples)
	}
}

func TestQuantilesAndETA(t *testing.T) {
	v := sampleHists()
	lat := LatencyMap(v)
	q, ok := lat["pre_failure"]
	if !ok {
		t.Fatal("pre_failure missing from latency map")
	}
	if q.Count != 100 || q.MeanNs != 50500 {
		t.Fatalf("count/mean = %d/%d", q.Count, q.MeanNs)
	}
	if q.P50Ns < 50000 || float64(q.P50Ns) > 50000*1.07 {
		t.Fatalf("p50 = %d", q.P50Ns)
	}
	if q.MaxNs < 100000 {
		t.Fatalf("max = %d", q.MaxNs)
	}
	if _, ok := lat["post_failure"]; ok {
		t.Fatal("empty timer leaked into latency map")
	}

	if eta := ETASec(50, 100, 25); eta != 2 {
		t.Fatalf("ETASec = %v, want 2", eta)
	}
	for _, bad := range []float64{ETASec(100, 100, 25), ETASec(50, 0, 25), ETASec(50, 100, 0)} {
		if bad != 0 {
			t.Fatalf("ETASec should be 0 when unknown, got %v", bad)
		}
	}
}
