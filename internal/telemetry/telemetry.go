// Package telemetry is the fleet-exposition layer on top of internal/obs:
// it renders merged Metrics snapshots and timer histograms as
// Prometheus-text-format scrape responses (prom.go), serves the JSON
// /v1/status fleet view (status types below), and carries the small
// exposition parser the scrape tests validate responses with (promparse.go).
//
// The layer is strictly read-only over obs: nothing here feeds back into the
// checker, and nothing here touches Metrics.Canonical — timing data stays
// non-canonical by construction, because histograms never enter Metrics at
// all (see obs.Timer).
package telemetry

import (
	"encoding/json"
	"net/http"

	"jaaru/internal/obs"
)

// Status is the JSON body of GET /v1/status: one service-level envelope plus
// a row per job (the standalone checker and the worker expose exactly one
// row; the coordinator exposes one per submitted job).
type Status struct {
	Service   string      `json:"service"`
	UptimeSec float64     `json:"uptime_sec"`
	Jobs      []JobStatus `json:"jobs,omitempty"`
}

// JobStatus is the live per-job progress view. Scenario counts are exact as
// of the last absorbed delta commit (the coordinator absorbs commits the
// moment they arrive); rate and ETA are derived from them.
type JobStatus struct {
	ID    string `json:"id"`
	Bench string `json:"bench,omitempty"`
	State string `json:"state"`

	Scenarios  int64   `json:"scenarios"`
	Executions int64   `json:"executions,omitempty"`
	Goal       int64   `json:"goal,omitempty"`
	Rate       float64 `json:"scenarios_per_sec"`
	// ETASec estimates seconds to the MaxScenarios goal at the current rate
	// (an upper bound: full explorations finish earlier). Omitted when no
	// goal is set, the rate is zero, or the goal is already reached.
	ETASec float64 `json:"eta_sec,omitempty"`

	FrontierLen  int64 `json:"frontier_len"`
	MaxDepth     int64 `json:"max_choice_depth,omitempty"`
	ActiveLeases int   `json:"active_leases,omitempty"`
	Workers      int64 `json:"workers,omitempty"`
	Bugs         int   `json:"bugs,omitempty"`

	// Wire-level data plane (zero for in-process runs): bytes sent/received
	// on the lease protocol and the average scenarios per absorbed delta
	// commit.
	BytesTx     int64 `json:"bytes_tx,omitempty"`
	BytesRx     int64 `json:"bytes_rx,omitempty"`
	CommitBatch int64 `json:"commit_batch_size,omitempty"`

	// Latency maps timer name -> quantiles of that phase's histogram, for
	// every timer that has recorded at least one observation.
	Latency map[string]Quantiles `json:"latency,omitempty"`
}

// Quantiles summarizes one latency histogram in nanoseconds. Quantile values
// are bucket upper bounds: overestimates by at most the bucket's 6.25%
// relative width.
type Quantiles struct {
	Count  int64 `json:"count"`
	MeanNs int64 `json:"mean_ns"`
	P50Ns  int64 `json:"p50_ns"`
	P90Ns  int64 `json:"p90_ns"`
	P99Ns  int64 `json:"p99_ns"`
	MaxNs  int64 `json:"max_ns"`
}

// QuantilesFrom summarizes one histogram snapshot.
func QuantilesFrom(h obs.HistSnapshot) Quantiles {
	return Quantiles{
		Count:  h.Count,
		MeanNs: h.Mean(),
		P50Ns:  h.Quantile(0.50),
		P90Ns:  h.Quantile(0.90),
		P99Ns:  h.Quantile(0.99),
		MaxNs:  h.Quantile(1),
	}
}

// LatencyMap summarizes every populated timer histogram, keyed by timer
// name; nil when no timer has data.
func LatencyMap(v obs.HistVec) map[string]Quantiles {
	var out map[string]Quantiles
	for t := range v {
		if v[t].Count == 0 {
			continue
		}
		if out == nil {
			out = make(map[string]Quantiles)
		}
		out[obs.Timer(t).String()] = QuantilesFrom(v[t])
	}
	return out
}

// ETASec derives the eta_sec field: seconds until scenarios reaches goal at
// rate, or 0 (omitted) when unknown.
func ETASec(scenarios, goal int64, rate float64) float64 {
	if goal <= 0 || rate <= 0 || scenarios >= goal {
		return 0
	}
	return float64(goal-scenarios) / rate
}

// RegistryJob summarizes one live registry as a single status row — the
// /v1/status shape of the standalone checker, whose whole exploration is one
// registry (the coordinator builds richer rows from per-job lease state).
func RegistryJob(id string, reg *obs.Registry) JobStatus {
	m := reg.Snapshot()
	elapsed := reg.Uptime().Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(m.Scenarios) / elapsed
	}
	goal := reg.Goal()
	return JobStatus{
		ID:          id,
		State:       "running",
		Scenarios:   m.Scenarios,
		Executions:  m.Executions,
		Goal:        goal,
		Rate:        rate,
		ETASec:      ETASec(m.Scenarios, goal, rate),
		FrontierLen: reg.FrontierLen(),
		MaxDepth:    m.MaxChoiceDepth,
		Workers:     m.Workers,
		Latency:     LatencyMap(reg.Histograms()),
	}
}

// RegistryMux builds the standard single-registry exposition mux: the
// GET /metrics and GET /v1/status endpoints of a service whose telemetry
// lives in one obs.Registry — the standalone checker and the worker. jobs,
// when non-nil, supplies the status rows at serve time.
func RegistryMux(service string, reg *obs.Registry, jobs func() []JobStatus) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", MetricsHandler(func() []Series {
		return []Series{{Metrics: reg.Snapshot(), Hists: reg.Histograms()}}
	}))
	mux.Handle("GET /v1/status", StatusHandler(func() Status {
		st := Status{Service: service, UptimeSec: reg.Uptime().Seconds()}
		if jobs != nil {
			st.Jobs = jobs()
		}
		return st
	}))
	return mux
}

// StatusHandler serves fn's Status as JSON — the GET /v1/status endpoint.
func StatusHandler(fn func() Status) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(fn())
	})
}

// MetricsHandler serves fn's series in Prometheus text format — the
// GET /metrics endpoint.
func MetricsHandler(fn func() []Series) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteMetrics(w, fn()...)
	})
}
