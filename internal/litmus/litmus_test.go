package litmus

import (
	"sort"
	"testing"

	"jaaru/internal/core"
	"jaaru/internal/yat"
)

func TestLitmusSuite(t *testing.T) {
	for _, tst := range Tests() {
		t.Run(tst.Name, func(t *testing.T) {
			got, res := Run(tst)
			if res.Buggy() {
				t.Fatalf("unexpected bugs: %v", res.Bugs)
			}
			if !res.Complete {
				t.Fatal("exploration incomplete")
			}
			want := append([]string(nil), tst.Want...)
			sort.Strings(want)
			if len(got) != len(want) {
				t.Fatalf("%s\n got  %v\n want %v", tst.Doc, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s\n got  %v\n want %v", tst.Doc, got, want)
				}
			}
		})
	}
}

// Every single-threaded litmus test's behaviour set must also match the
// eager (Yat) exploration exactly.
func TestLitmusAgainstEager(t *testing.T) {
	for _, tst := range Tests() {
		if tst.SkipEager {
			continue
		}
		t.Run(tst.Name, func(t *testing.T) {
			seen := make(map[string]bool)
			_, err := yat.Eager(tst.Prog(func(s string) { seen[s] = true }),
				tst.Opts, 1_000_000)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]string, 0, len(seen))
			for k := range seen {
				got = append(got, k)
			}
			sort.Strings(got)
			want := append([]string(nil), tst.Want...)
			sort.Strings(want)
			if len(got) != len(want) {
				t.Fatalf("eager mismatch\n got  %v\n want %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("eager mismatch\n got  %v\n want %v", got, want)
				}
			}
		})
	}
}

// The suite must stay in sync with the Table 1 data: count the cells each
// litmus test claims to exercise to ensure the suite is non-trivial.
func TestSuiteCoverage(t *testing.T) {
	tests := Tests()
	if len(tests) < 10 {
		t.Fatalf("litmus suite shrank to %d tests", len(tests))
	}
	names := make(map[string]bool)
	for _, tst := range tests {
		if names[tst.Name] {
			t.Errorf("duplicate test name %q", tst.Name)
		}
		names[tst.Name] = true
		if tst.Doc == "" || len(tst.Want) == 0 {
			t.Errorf("test %q missing doc or expectations", tst.Name)
		}
	}
	_ = core.Options{}
}
