// Package litmus contains small programs with exactly known sets of
// post-failure behaviours, validating the operational simulator in
// internal/tso against the reordering constraints of the paper's Table 1
// (the Px86sim model). Each test lists the exact set of recovery
// observations that must be explored — no more (soundness of the
// constraints) and no fewer (exhaustiveness of the exploration).
package litmus

import (
	"fmt"
	"sort"

	"jaaru/internal/core"
)

// Test is one litmus program and its expected behaviour set.
type Test struct {
	Name string
	// Doc names the Table 1 cells or §2 prose the test exercises.
	Doc string
	// Prog builds the program; obs receives one observation string per
	// explored post-failure behaviour (or per pre-failure run for
	// run-phase tests).
	Prog func(obs func(string)) core.Program
	// Want is the exact expected observation set, sorted.
	Want []string
	// Opts configures the checker (zero value = defaults).
	Opts core.Options
	// SkipEager excludes the test from eager cross-checking (run-phase
	// observations or non-default eviction).
	SkipEager bool
}

// Run explores the test's program and returns the sorted set of distinct
// observations along with the checker result.
func Run(tst Test) ([]string, *core.Result) {
	seen := make(map[string]bool)
	res := core.New(tst.Prog(func(s string) { seen[s] = true }), tst.Opts).Run()
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, res
}

// Tests returns the litmus suite.
func Tests() []Test {
	return []Test{
		{
			Name: "clflush-ordered-with-stores",
			Doc:  "Table 1: Write→clflush ✓ and clflush→Write ✓ — clflush enters the store buffer like a store",
			Prog: func(obs func(string)) core.Program {
				return core.Program{
					Name: "clflush-ordered",
					Run: func(c *core.Context) {
						x, y := c.Root(), c.Root().Add(64)
						c.Store64(x, 1)
						c.Clflush(x, 8)
						c.Store64(y, 1)
						c.Clflush(y, 8)
					},
					Recover: func(c *core.Context) {
						obs(fmt.Sprintf("x=%d y=%d", c.Load64(c.Root()), c.Load64(c.Root().Add(64))))
					},
				}
			},
			// y=1 without x=1 is impossible: the second flush cannot pass
			// the first store.
			Want: []string{"x=0 y=0", "x=1 y=0", "x=1 y=1"},
		},
		{
			Name: "clflushopt-reorders-across-other-line-store",
			Doc:  "Table 1: clflushopt→Write ✗ and Write→clflushopt CL — a later clflush to another line can take effect while the clflushopt writeback is still pending",
			Prog: func(obs func(string)) core.Program {
				return core.Program{
					Name: "clflushopt-reorder",
					Run: func(c *core.Context) {
						x, y := c.Root(), c.Root().Add(64)
						c.Store64(x, 1)
						c.Clflushopt(x, 8)
						c.Store64(y, 1)
						c.Clflush(y, 8)
					},
					Recover: func(c *core.Context) {
						obs(fmt.Sprintf("x=%d y=%d", c.Load64(c.Root()), c.Load64(c.Root().Add(64))))
					},
				}
			},
			// x=0 y=1 IS reachable: clflush(y) persisted y while the
			// clflushopt(x) writeback waited for a fence that never came.
			Want: []string{"x=0 y=0", "x=0 y=1", "x=1 y=0", "x=1 y=1"},
		},
		{
			Name: "sfence-orders-clflushopt",
			Doc:  "Table 1: clflushopt→sfence ✓ and sfence→Write ✓ — after an sfence the writeback precedes later flushes",
			Prog: func(obs func(string)) core.Program {
				return core.Program{
					Name: "sfence-orders",
					Run: func(c *core.Context) {
						x, y := c.Root(), c.Root().Add(64)
						c.Store64(x, 1)
						c.Clflushopt(x, 8)
						c.Sfence()
						c.Store64(y, 1)
						c.Clflush(y, 8)
					},
					Recover: func(c *core.Context) {
						obs(fmt.Sprintf("x=%d y=%d", c.Load64(c.Root()), c.Load64(c.Root().Add(64))))
					},
				}
			},
			// x=0 y=1 is now forbidden.
			Want: []string{"x=0 y=0", "x=1 y=0", "x=1 y=1"},
		},
		{
			Name: "mfence-orders-clflushopt",
			Doc:  "Table 1: clflushopt→mfence ✓",
			Prog: func(obs func(string)) core.Program {
				return core.Program{
					Name: "mfence-orders",
					Run: func(c *core.Context) {
						x, y := c.Root(), c.Root().Add(64)
						c.Store64(x, 1)
						c.Clflushopt(x, 8)
						c.Mfence()
						c.Store64(y, 1)
						c.Clflush(y, 8)
					},
					Recover: func(c *core.Context) {
						obs(fmt.Sprintf("x=%d y=%d", c.Load64(c.Root()), c.Load64(c.Root().Add(64))))
					},
				}
			},
			Want: []string{"x=0 y=0", "x=1 y=0", "x=1 y=1"},
		},
		{
			Name: "rmw-orders-clflushopt",
			Doc:  "Table 1: clflushopt→RMW ✓ — locked RMW has fence semantics (§4)",
			Prog: func(obs func(string)) core.Program {
				return core.Program{
					Name: "rmw-orders",
					Run: func(c *core.Context) {
						x, y := c.Root(), c.Root().Add(64)
						c.Store64(x, 1)
						c.Clflushopt(x, 8)
						c.AtomicAdd64(c.Root().Add(128), 1)
						c.Store64(y, 1)
						c.Clflush(y, 8)
					},
					Recover: func(c *core.Context) {
						obs(fmt.Sprintf("x=%d y=%d", c.Load64(c.Root()), c.Load64(c.Root().Add(64))))
					},
				}
			},
			Want: []string{"x=0 y=0", "x=1 y=0", "x=1 y=1"},
		},
		{
			Name: "clflushopt-covers-same-line-stores",
			Doc:  "Table 1: Write→clflushopt CL — a clflushopt is ordered after earlier stores to its own line",
			Prog: func(obs func(string)) core.Program {
				return core.Program{
					Name: "clflushopt-same-line",
					Run: func(c *core.Context) {
						a, b := c.Root(), c.Root().Add(8) // same line
						c.Store64(a, 1)
						c.Store64(b, 1)
						c.Clflushopt(a, 8)
						c.Sfence()
					},
					Recover: func(c *core.Context) {
						obs(fmt.Sprintf("a=%d b=%d", c.Load64(c.Root()), c.Load64(c.Root().Add(8))))
					},
				}
			},
			// Once the fence passes, both same-line stores are persistent.
			// Before it, the cut respects store order: b=1 without a=1 is
			// impossible.
			Want: []string{"a=0 b=0", "a=1 b=0", "a=1 b=1"},
		},
		{
			Name: "clwb-identical-to-clflushopt",
			Doc:  "§2: clwb is semantically identical to clflushopt",
			Prog: func(obs func(string)) core.Program {
				return core.Program{
					Name: "clwb",
					Run: func(c *core.Context) {
						x, y := c.Root(), c.Root().Add(64)
						c.Store64(x, 1)
						c.Clwb(x, 8)
						c.Store64(y, 1)
						c.Clflush(y, 8)
					},
					Recover: func(c *core.Context) {
						obs(fmt.Sprintf("x=%d y=%d", c.Load64(c.Root()), c.Load64(c.Root().Add(64))))
					},
				}
			},
			Want: []string{"x=0 y=0", "x=0 y=1", "x=1 y=0", "x=1 y=1"},
		},
		{
			Name: "persist-idiom",
			Doc:  "clwb+sfence (Persist) makes a range durable before the next store",
			Prog: func(obs func(string)) core.Program {
				return core.Program{
					Name: "persist",
					Run: func(c *core.Context) {
						x, y := c.Root(), c.Root().Add(64)
						c.Store64(x, 1)
						c.Persist(x, 8)
						c.Store64(y, 1)
						c.Persist(y, 8)
					},
					Recover: func(c *core.Context) {
						obs(fmt.Sprintf("x=%d y=%d", c.Load64(c.Root()), c.Load64(c.Root().Add(64))))
					},
				}
			},
			Want: []string{"x=0 y=0", "x=1 y=0", "x=1 y=1"},
		},
		{
			Name: "same-line-store-order",
			Doc:  "stores to one line persist in store order (the Figure 2 shape)",
			Prog: func(obs func(string)) core.Program {
				return core.Program{
					Name: "same-line-order",
					Run: func(c *core.Context) {
						a, b := c.Root(), c.Root().Add(8)
						c.Store64(a, 1)
						c.Store64(b, 2)
						c.Store64(a, 3)
						c.Clflush(a, 8)
					},
					Recover: func(c *core.Context) {
						obs(fmt.Sprintf("a=%d b=%d", c.Load64(c.Root()), c.Load64(c.Root().Add(8))))
					},
				}
			},
			// Cuts of (a=1, b=2, a=3): (0,0) (1,0) (1,2) (3,2).
			Want: []string{"a=0 b=0", "a=1 b=0", "a=1 b=2", "a=3 b=2"},
		},
		{
			Name: "cross-line-independence",
			Doc:  "lines persist independently: without flushes, every combination of two lines' contents is reachable",
			Prog: func(obs func(string)) core.Program {
				return core.Program{
					Name: "cross-line",
					Run: func(c *core.Context) {
						c.Store64(c.Root(), 1)
						c.Store64(c.Root().Add(64), 1)
						// A store on a third line makes the end-of-run
						// failure point eligible without constraining the
						// first two lines.
						c.Store64(c.Root().Add(128), 1)
						c.Clflush(c.Root().Add(128), 8)
					},
					Recover: func(c *core.Context) {
						obs(fmt.Sprintf("a=%d b=%d", c.Load64(c.Root()), c.Load64(c.Root().Add(64))))
					},
				}
			},
			Want: []string{"a=0 b=0", "a=0 b=1", "a=1 b=0", "a=1 b=1"},
		},
		{
			Name: "cas-as-commit-store",
			Doc:  "a locked CAS serves as a commit store: its fence semantics order the prior clflushopt writeback",
			Prog: func(obs func(string)) core.Program {
				return core.Program{
					Name: "cas-commit",
					Run: func(c *core.Context) {
						data := c.Root().Add(64)
						c.Store64(data, 7)
						c.Clflushopt(data, 8)
						// The CAS both fences the writeback and publishes.
						c.CAS64(c.Root(), 0, 1)
						c.Clflush(c.Root(), 8)
					},
					Recover: func(c *core.Context) {
						committed := c.Load64(c.Root())
						data := c.Load64(c.Root().Add(64))
						obs(fmt.Sprintf("committed=%d data=%d", committed, data))
					},
				}
			},
			// committed=1 with data=0 is impossible: the RMW drained the
			// flush buffer before its own store took effect.
			Want: []string{"committed=0 data=0", "committed=0 data=7", "committed=1 data=7"},
		},
		{
			Name: "overwrite-before-flush",
			Doc:  "only the flushed-or-later values survive: an overwritten, never-flushed value is unreachable",
			Prog: func(obs func(string)) core.Program {
				return core.Program{
					Name: "overwrite",
					Run: func(c *core.Context) {
						x := c.Root()
						c.Store64(x, 1) // overwritten before any flush
						c.Store64(x, 2)
						c.Clflush(x, 8)
						c.Store64(x, 3)
					},
					Recover: func(c *core.Context) {
						obs(fmt.Sprintf("x=%d", c.Load64(c.Root())))
					},
				}
			},
			// x=1 appears only for the failure point before the clflush;
			// after it, the writeback covers x=2 and x=1 is gone forever.
			Want: []string{"x=0", "x=1", "x=2", "x=3"},
		},
		{
			Name: "store-buffering",
			Doc:  "Table 1: Write→Read ✗ — the classic SB litmus test under delayed eviction",
			Prog: func(obs func(string)) core.Program {
				return core.Program{
					Name: "sb",
					Run: func(c *core.Context) {
						x := c.Alloc(8, 64)
						y := c.Alloc(8, 64)
						var r1, r2 uint64
						h1 := c.Spawn(func(c *core.Context) {
							c.Store64(x, 1)
							r1 = c.Load64(y)
						})
						h2 := c.Spawn(func(c *core.Context) {
							c.Store64(y, 1)
							r2 = c.Load64(x)
						})
						h1.Join(c)
						h2.Join(c)
						obs(fmt.Sprintf("r1=%d r2=%d", r1, r2))
					},
				}
			},
			Want:      []string{"r1=0 r2=0"},
			Opts:      core.Options{Eviction: core.EvictAtFences},
			SkipEager: true,
		},
		{
			Name: "store-buffer-bypass",
			Doc:  "§2: a core observes its own buffered stores (bypassing)",
			Prog: func(obs func(string)) core.Program {
				return core.Program{
					Name: "bypass",
					Run: func(c *core.Context) {
						x := c.Alloc(8, 64)
						c.Store64(x, 7)
						obs(fmt.Sprintf("r=%d", c.Load64(x)))
					},
				}
			},
			Want:      []string{"r=7"},
			Opts:      core.Options{Eviction: core.EvictAtFences},
			SkipEager: true,
		},
		{
			Name: "mfence-makes-stores-visible",
			Doc:  "Table 1: mfence→Read ✓ — after mfence another thread observes the store",
			Prog: func(obs func(string)) core.Program {
				return core.Program{
					Name: "mfence-visible",
					Run: func(c *core.Context) {
						x := c.Alloc(8, 64)
						done := c.Alloc(8, 64)
						h := c.Spawn(func(c *core.Context) {
							c.Store64(x, 1)
							c.Mfence()
							c.Store64(done, 1)
							c.Mfence()
						})
						// Spin until the flag is visible, then x must be too.
						for c.Load64(done) == 0 {
						}
						obs(fmt.Sprintf("x=%d", c.Load64(x)))
						h.Join(c)
					},
				}
			},
			Want:      []string{"x=1"},
			Opts:      core.Options{Eviction: core.EvictAtFences},
			SkipEager: true,
		},
	}
}
