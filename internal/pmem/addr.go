// Package pmem models the persistent-memory substrate used by the Jaaru
// model checker: a byte-addressable address space divided into 64-byte cache
// lines, per-byte store queues recording every value ever written to the
// cache together with a global sequence number, and per-cache-line intervals
// bounding the time at which each line was most recently written back to
// persistent storage.
//
// The notation follows Section 4 of the paper: an execution e has a map
// e.queue(addr) from addresses to sequences of ⟨val, σ⟩ tuples and a map
// e.getcacheline(addr) from addresses to the interval in which the line was
// most recently flushed. A failure scenario is a stack of executions.
package pmem

import "fmt"

// CacheLineSize is the size of a cache line in bytes. Flush instructions
// (clflush, clflushopt, clwb) operate at this granularity.
const CacheLineSize = 64

// Addr is a byte address in the simulated persistent memory pool.
// Address 0 is reserved as the null address.
type Addr uint64

// Line returns the base address of the cache line containing a.
func (a Addr) Line() Addr { return a &^ (CacheLineSize - 1) }

// LineOffset returns the offset of a within its cache line.
func (a Addr) LineOffset() uint64 { return uint64(a) & (CacheLineSize - 1) }

// Add returns the address n bytes past a.
func (a Addr) Add(n uint64) Addr { return a + Addr(n) }

func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

// Lines calls fn once for each cache line overlapped by [a, a+size).
// A zero size touches no lines.
func Lines(a Addr, size uint64, fn func(line Addr)) {
	if size == 0 {
		return
	}
	first := a.Line()
	last := (a + Addr(size) - 1).Line()
	for l := first; ; l += CacheLineSize {
		fn(l)
		if l == last {
			return
		}
	}
}

// LineCount reports how many cache lines [a, a+size) overlaps.
func LineCount(a Addr, size uint64) int {
	n := 0
	Lines(a, size, func(Addr) { n++ })
	return n
}

// Seq is a global sequence number σ assigned to stores, clflush and sfence
// instructions in the order they take effect in the cache. Sequence numbers
// define the total store order of x86-TSO; they are never reset within a
// failure scenario, so numbers are comparable across executions.
type Seq uint64

// SeqInf is the upper bound used for intervals that are unbounded on the
// right ("the line may have been written back at any later time").
const SeqInf = ^Seq(0)

func (s Seq) String() string {
	if s == SeqInf {
		return "∞"
	}
	return fmt.Sprintf("%d", uint64(s))
}
