package pmem

import "slices"

// ByteStore is one entry of a per-byte store queue: the value written to the
// cache at sequence number Seq. Multi-byte stores enqueue one ByteStore per
// byte, all sharing the same sequence number ("mixed size accesses", §4).
type ByteStore struct {
	Val byte
	Seq Seq
}

// Execution records everything one execution of a failure scenario wrote to
// the cache: per-byte store queues in cache order, and per-cache-line
// intervals bounding the most recent writeback to persistent memory.
//
// Execution 0 is the pre-failure execution; each injected failure pushes a
// fresh execution onto the scenario's Stack.
type Execution struct {
	// ID is the index of this execution in its Stack.
	ID int

	queues map[Addr][]ByteStore
	lines  map[Addr]*Interval

	// EvictedStores counts store entries that took effect in the cache
	// during this execution (used for failure-point eligibility and for
	// the Yat state-count accounting).
	EvictedStores int

	// appendLog records the byte address of every Append while the owning
	// stack journals (logAppends), so a Rewind can truncate the append-only
	// queues back to a marked length (see journal.go).
	appendLog  []Addr
	logAppends bool
}

// NewExecution returns an empty execution record with the given stack index.
func NewExecution(id int) *Execution {
	return &Execution{
		ID:     id,
		queues: make(map[Addr][]ByteStore),
		lines:  make(map[Addr]*Interval),
	}
}

// Append records that value v was written to byte address a at sequence s.
// Sequence numbers must be appended in increasing order.
func (e *Execution) Append(a Addr, v byte, s Seq) {
	e.queues[a] = append(e.queues[a], ByteStore{Val: v, Seq: s})
	if e.logAppends {
		e.appendLog = append(e.appendLog, a)
	}
}

// truncateAppends pops appends beyond the first n, newest-first, restoring
// the queues (and the per-byte EvictedStores accounting) to their state when
// the append log held n entries.
func (e *Execution) truncateAppends(n int) {
	for i := len(e.appendLog) - 1; i >= n; i-- {
		a := e.appendLog[i]
		q := e.queues[a]
		e.queues[a] = q[:len(q)-1]
		e.EvictedStores--
	}
	e.appendLog = e.appendLog[:n]
}

// Queue returns the store queue for byte address a, oldest first.
func (e *Execution) Queue(a Addr) []ByteStore { return e.queues[a] }

// Newest returns the most recent store to byte address a in this execution.
func (e *Execution) Newest(a Addr) (ByteStore, bool) {
	q := e.queues[a]
	if len(q) == 0 {
		return ByteStore{}, false
	}
	return q[len(q)-1], true
}

// First returns the oldest store to byte address a in this execution.
func (e *Execution) First(a Addr) (ByteStore, bool) {
	q := e.queues[a]
	if len(q) == 0 {
		return ByteStore{}, false
	}
	return q[0], true
}

// CacheLine returns the writeback interval for the line containing a,
// creating the unconstrained interval [0, ∞) on first use. This is the
// paper's e.getcacheline(addr).
func (e *Execution) CacheLine(a Addr) *Interval {
	line := a.Line()
	iv, ok := e.lines[line]
	if !ok {
		iv = &Interval{Begin: 0, End: SeqInf}
		e.lines[line] = iv
	}
	return iv
}

// LineKnown reports whether a writeback interval has been materialized for
// the line containing a (i.e. the line was flushed or refined).
func (e *Execution) LineKnown(a Addr) bool {
	_, ok := e.lines[a.Line()]
	return ok
}

// Candidates computes, for a post-failure load of byte address a, the set of
// stores from this execution the load may read from, following lines 8–13 of
// the ReadPreFailure algorithm (Figure 9):
//
//	set = { ⟨val, σ⟩ | σ < cl.End ∧ (σ ≤ cl.Begin ⇒ no later store σ' ≤ cl.Begin) }
//
// i.e. every store inside the writeback window (cl.Begin, cl.End) plus the
// newest store at or before cl.Begin (which is the value guaranteed persisted
// by the last flush). settled reports whether a store with σ ≤ cl.Begin
// exists; if not, the line's pre-execution contents may have survived and the
// caller must recurse into the previous execution.
//
// Candidates are returned newest-first so that exploration visits the most
// recently written value first (matching the commit-store discussion in §3.2,
// where the first execution explored reads the commit store's value).
func (e *Execution) Candidates(a Addr) (set []ByteStore, settled bool) {
	cl := e.CacheLine(a)
	q := e.queues[a]
	for i := len(q) - 1; i >= 0; i-- {
		bs := q[i]
		if bs.Seq >= cl.End {
			continue
		}
		set = append(set, bs)
		if bs.Seq <= cl.Begin {
			// Newest store at or before Begin: guaranteed persisted;
			// earlier stores (and earlier executions) are unreachable.
			return set, true
		}
	}
	return set, false
}

// appendCandidates is Candidates appending tagged entries into a reused
// buffer (the allocation-free path used by the checker's load handling).
func (e *Execution) appendCandidates(a Addr, out []Candidate) ([]Candidate, bool) {
	cl := e.CacheLine(a)
	q := e.queues[a]
	for i := len(q) - 1; i >= 0; i-- {
		bs := q[i]
		if bs.Seq >= cl.End {
			continue
		}
		out = append(out, Candidate{Exec: e.ID, ByteStore: bs})
		if bs.Seq <= cl.Begin {
			return out, true
		}
	}
	return out, false
}

// DirtyStores reports how many stores to the line containing a happened after
// the line's current lower writeback bound — the number of distinct
// post-failure states an eager checker such as Yat must consider for this
// line is DirtyStores+1. Counting walks every byte of the line.
func (e *Execution) DirtyStores(line Addr) int {
	cl := e.CacheLine(line)
	n := 0
	for off := Addr(0); off < CacheLineSize; off++ {
		for _, bs := range e.queues[line+off] {
			if bs.Seq > cl.Begin {
				n++
			}
		}
	}
	return n
}

// DirtyLines returns, in sorted order, the base addresses of all lines that
// have at least one store after their lower writeback bound.
func (e *Execution) DirtyLines() []Addr {
	seen := make(map[Addr]bool)
	var out []Addr
	for a, q := range e.queues {
		line := a.Line()
		if seen[line] {
			continue
		}
		cl := e.CacheLine(line)
		for _, bs := range q {
			if bs.Seq > cl.Begin {
				seen[line] = true
				out = append(out, line)
				break
			}
		}
	}
	sortAddrs(out)
	return out
}

// TouchedLines returns, in sorted order, the base addresses of all lines
// written during this execution.
func (e *Execution) TouchedLines() []Addr {
	seen := make(map[Addr]bool)
	var out []Addr
	for a := range e.queues {
		line := a.Line()
		if !seen[line] {
			seen[line] = true
			out = append(out, line)
		}
	}
	sortAddrs(out)
	return out
}

// TouchedAddrs returns every byte address written during this execution, in
// sorted order.
func (e *Execution) TouchedAddrs() []Addr {
	out := make([]Addr, 0, len(e.queues))
	for a := range e.queues {
		out = append(out, a)
	}
	sortAddrs(out)
	return out
}

func sortAddrs(s []Addr) { slices.Sort(s) }
