package pmem

import "slices"

// ByteStore is one entry of a per-byte store queue: the value written to the
// cache at sequence number Seq. Multi-byte stores enqueue one ByteStore per
// byte, all sharing the same sequence number ("mixed size accesses", §4).
type ByteStore struct {
	Val byte
	Seq Seq
}

// Execution records everything one execution of a failure scenario wrote to
// the cache: per-byte store queues in cache order, and per-cache-line
// intervals bounding the most recent writeback to persistent memory — both
// held in the paged, arena-backed layout of page.go.
//
// Execution 0 is the pre-failure execution; each injected failure pushes a
// fresh execution onto the scenario's Stack.
type Execution struct {
	// ID is the index of this execution in its Stack.
	ID int

	// pages maps page id (addr >> pageShift) to its dense headers; lastID /
	// lastPage are a one-entry cache that short-circuits the lookup for the
	// common run of accesses within one page.
	pages    map[Addr]*page
	lastID   Addr
	lastPage *page

	// arena holds every store appended during this execution, in append
	// (= sequence) order. Page headers chain into it with 1-based indices.
	arena []node

	// EvictedStores counts store entries that took effect in the cache
	// during this execution (used for failure-point eligibility and for
	// the Yat state-count accounting).
	EvictedStores int

	// fpSeqs is the per-line relevant-sequence scratch buffer of
	// lineFingerprint, reused across calls.
	fpSeqs []Seq

	pool *Pool
}

// NewExecution returns an empty execution record with the given stack index,
// backed by a private pool (tests and standalone use; checker executions are
// drawn from a shared pool via Stack).
func NewExecution(id int) *Execution {
	return NewPool().getExec(id)
}

// pageFor returns the page covering a, or nil if no byte of it was touched.
func (e *Execution) pageFor(a Addr) *page {
	id := a >> pageShift
	if e.lastPage != nil && e.lastID == id {
		return e.lastPage
	}
	pg := e.pages[id]
	if pg != nil {
		e.lastID, e.lastPage = id, pg
	}
	return pg
}

// ensurePage returns the page covering a, creating it from the pool on first
// touch.
func (e *Execution) ensurePage(a Addr) *page {
	id := a >> pageShift
	if e.lastPage != nil && e.lastID == id {
		return e.lastPage
	}
	pg, ok := e.pages[id]
	if !ok {
		pg = e.pool.getPage()
		e.pages[id] = pg
	}
	e.lastID, e.lastPage = id, pg
	return pg
}

// peekLine returns the line record for the line containing a without
// materializing anything, or nil if the page is untouched. A record with
// known == false must be read as the vacuous interval [0, ∞).
func (e *Execution) peekLine(a Addr) *lineRec {
	pg := e.pageFor(a)
	if pg == nil {
		return nil
	}
	return &pg.lines[lineIndex(a)]
}

// ensureLine returns the line record for the line containing a, materializing
// the unconstrained interval [0, ∞) on first use.
func (e *Execution) ensureLine(a Addr) *lineRec {
	pg := e.ensurePage(a)
	lr := &pg.lines[lineIndex(a)]
	if !lr.known {
		lr.known = true
		lr.iv = Interval{Begin: 0, End: SeqInf}
	}
	return lr
}

// Append records that value v was written to byte address a at sequence s.
// Sequence numbers must be appended in increasing order.
func (e *Execution) Append(a Addr, v byte, s Seq) {
	pg := e.ensurePage(a)
	sl := &pg.slots[a&pageMask]
	lr := &pg.lines[lineIndex(a)]
	idx := int32(len(e.arena) + 1)
	e.arena = append(e.arena, node{seq: s, addr: a, prev: sl.tail, linePrev: lr.tail, val: v})
	sl.tail = idx
	if sl.head == 0 {
		sl.head = idx
	}
	lr.tail = idx
	lr.fpOK = false
	// Sequence numbers only grow, so a fresh store is always past the line's
	// lower writeback bound.
	lr.dirty++
}

// truncateArena pops appends beyond the first n, newest-first, unlinking each
// from its page headers and restoring the per-line dirty-store and
// EvictedStores accounting — the undo path of a journal Rewind.
func (e *Execution) truncateArena(n int) {
	for i := len(e.arena); i > n; i-- {
		nd := &e.arena[i-1]
		pg := e.pageFor(nd.addr)
		sl := &pg.slots[nd.addr&pageMask]
		sl.tail = nd.prev
		if nd.prev == 0 {
			sl.head = 0
		}
		lr := &pg.lines[lineIndex(nd.addr)]
		lr.tail = nd.linePrev
		lr.fpOK = false
		if nd.seq > lr.iv.Begin {
			lr.dirty--
		}
		e.EvictedStores--
	}
	e.arena = e.arena[:n]
}

// recountDirty recomputes a line's dirty-store count after its lower
// writeback bound moved: the line chain is in append order, so the walk
// stops at the first store at or before the bound. Cost is proportional to
// the stores still past the bound.
func (e *Execution) recountDirty(lr *lineRec) {
	n := int32(0)
	for i := lr.tail; i != 0; {
		nd := &e.arena[i-1]
		if nd.seq <= lr.iv.Begin {
			break
		}
		n++
		i = nd.linePrev
	}
	lr.dirty = n
}

// Queue returns the store queue for byte address a, oldest first. It
// materializes a fresh slice — cold-path use only (snapshots, tests); the
// hot path walks the arena chains directly.
func (e *Execution) Queue(a Addr) []ByteStore {
	pg := e.pageFor(a)
	if pg == nil {
		return nil
	}
	n := 0
	for i := pg.slots[a&pageMask].tail; i != 0; i = e.arena[i-1].prev {
		n++
	}
	if n == 0 {
		return nil
	}
	out := make([]ByteStore, n)
	for i := pg.slots[a&pageMask].tail; i != 0; {
		nd := &e.arena[i-1]
		n--
		out[n] = ByteStore{Val: nd.val, Seq: nd.seq}
		i = nd.prev
	}
	return out
}

// Newest returns the most recent store to byte address a in this execution.
func (e *Execution) Newest(a Addr) (ByteStore, bool) {
	pg := e.pageFor(a)
	if pg == nil {
		return ByteStore{}, false
	}
	i := pg.slots[a&pageMask].tail
	if i == 0 {
		return ByteStore{}, false
	}
	nd := &e.arena[i-1]
	return ByteStore{Val: nd.val, Seq: nd.seq}, true
}

// First returns the oldest store to byte address a in this execution.
func (e *Execution) First(a Addr) (ByteStore, bool) {
	pg := e.pageFor(a)
	if pg == nil {
		return ByteStore{}, false
	}
	i := pg.slots[a&pageMask].head
	if i == 0 {
		return ByteStore{}, false
	}
	nd := &e.arena[i-1]
	return ByteStore{Val: nd.val, Seq: nd.seq}, true
}

// nextSeqAfter returns the sequence of the oldest store to a strictly after
// `after`, or SeqInf if none — the upper refinement bound of DoRead. The
// byte chain is newest-first with strictly decreasing sequences, so the walk
// stops at the first store at or before `after`.
func (e *Execution) nextSeqAfter(a Addr, after Seq) Seq {
	pg := e.pageFor(a)
	if pg == nil {
		return SeqInf
	}
	next := SeqInf
	for i := pg.slots[a&pageMask].tail; i != 0; {
		nd := &e.arena[i-1]
		if nd.seq <= after {
			break
		}
		next = nd.seq
		i = nd.prev
	}
	return next
}

// CacheLine returns the writeback interval for the line containing a,
// creating the unconstrained interval [0, ∞) on first use. This is the
// paper's e.getcacheline(addr). The returned pointer is stable for the
// execution's lifetime; mutate it only through Stack (FlushLine / DoRead)
// or RaiseLineBegin — direct mutation bypasses the dirty-store accounting.
func (e *Execution) CacheLine(a Addr) *Interval {
	return &e.ensureLine(a).iv
}

// RaiseLineBegin raises the line's most-recent-writeback lower bound to at
// least v, keeping the dirty-store accounting consistent. It is the
// unjournaled, untraced form of Stack.FlushLine for direct storage setup
// (eager recovery images, tests).
func (e *Execution) RaiseLineBegin(a Addr, v Seq) {
	lr := e.ensureLine(a)
	if v <= lr.iv.Begin {
		return
	}
	lr.iv.Begin = v
	lr.fpOK = false
	e.recountDirty(lr)
}

// LineKnown reports whether a writeback interval has been materialized for
// the line containing a (i.e. the line was flushed or refined).
func (e *Execution) LineKnown(a Addr) bool {
	lr := e.peekLine(a)
	return lr != nil && lr.known
}

// Candidates computes, for a post-failure load of byte address a, the set of
// stores from this execution the load may read from, following lines 8–13 of
// the ReadPreFailure algorithm (Figure 9):
//
//	set = { ⟨val, σ⟩ | σ < cl.End ∧ (σ ≤ cl.Begin ⇒ no later store σ' ≤ cl.Begin) }
//
// i.e. every store inside the writeback window (cl.Begin, cl.End) plus the
// newest store at or before cl.Begin (which is the value guaranteed persisted
// by the last flush). settled reports whether a store with σ ≤ cl.Begin
// exists; if not, the line's pre-execution contents may have survived and the
// caller must recurse into the previous execution.
//
// Candidates are returned newest-first so that exploration visits the most
// recently written value first (matching the commit-store discussion in §3.2,
// where the first execution explored reads the commit store's value).
//
// It is a thin allocating wrapper over appendCandidates, the one
// candidate-enumeration implementation.
func (e *Execution) Candidates(a Addr) (set []ByteStore, settled bool) {
	tagged, settled := e.appendCandidates(a, nil)
	if len(tagged) == 0 {
		return nil, settled
	}
	set = make([]ByteStore, len(tagged))
	for i, c := range tagged {
		set[i] = c.ByteStore
	}
	return set, settled
}

// appendCandidates is the candidate enumeration of Figure 9 lines 8–13,
// appending tagged entries into a reused buffer (the allocation-free path
// used by the checker's load handling). An unmaterialized line reads as the
// vacuous [0, ∞); enumeration never materializes state.
func (e *Execution) appendCandidates(a Addr, out []Candidate) ([]Candidate, bool) {
	pg := e.pageFor(a)
	if pg == nil {
		return out, false
	}
	begin, end := Seq(0), SeqInf
	if lr := &pg.lines[lineIndex(a)]; lr.known {
		begin, end = lr.iv.Begin, lr.iv.End
	}
	for i := pg.slots[a&pageMask].tail; i != 0; {
		nd := &e.arena[i-1]
		i = nd.prev
		if nd.seq >= end {
			continue
		}
		out = append(out, Candidate{Exec: e.ID, ByteStore: ByteStore{Val: nd.val, Seq: nd.seq}})
		if nd.seq <= begin {
			// Newest store at or before Begin: guaranteed persisted;
			// earlier stores (and earlier executions) are unreachable.
			return out, true
		}
	}
	return out, false
}

// ForEachStoreNewest calls fn for every store to byte address a, newest
// first, until fn returns false — iteration without materializing a queue
// slice (the forensics recorder's enumeration form).
func (e *Execution) ForEachStoreNewest(a Addr, fn func(ByteStore) bool) {
	pg := e.pageFor(a)
	if pg == nil {
		return
	}
	for i := pg.slots[a&pageMask].tail; i != 0; {
		nd := &e.arena[i-1]
		i = nd.prev
		if !fn(ByteStore{Val: nd.val, Seq: nd.seq}) {
			return
		}
	}
}

// DirtyStores reports how many stores to the line containing a happened after
// the line's current lower writeback bound — the number of distinct
// post-failure states an eager checker such as Yat must consider for this
// line is DirtyStores+1. The count is maintained incrementally on
// append/flush, so this is O(1).
func (e *Execution) DirtyStores(line Addr) int {
	lr := e.peekLine(line)
	if lr == nil {
		return 0
	}
	return int(lr.dirty)
}

// DirtyLines returns, in sorted order, the base addresses of all lines that
// have at least one store after their lower writeback bound.
func (e *Execution) DirtyLines() []Addr {
	var out []Addr
	for id, pg := range e.pages {
		base := id << pageShift
		for li := range pg.lines {
			if pg.lines[li].dirty > 0 {
				out = append(out, base+Addr(li*CacheLineSize))
			}
		}
	}
	sortAddrs(out)
	return out
}

// TouchedLines returns, in sorted order, the base addresses of all lines
// written during this execution.
func (e *Execution) TouchedLines() []Addr {
	var out []Addr
	for id, pg := range e.pages {
		base := id << pageShift
		for li := range pg.lines {
			if pg.lines[li].tail != 0 {
				out = append(out, base+Addr(li*CacheLineSize))
			}
		}
	}
	sortAddrs(out)
	return out
}

// TouchedAddrs returns every byte address written during this execution, in
// sorted order.
func (e *Execution) TouchedAddrs() []Addr {
	var out []Addr
	for id, pg := range e.pages {
		base := id << pageShift
		for si := range pg.slots {
			if pg.slots[si].tail != 0 {
				out = append(out, base+Addr(si))
			}
		}
	}
	sortAddrs(out)
	return out
}

func sortAddrs(s []Addr) { slices.Sort(s) }
