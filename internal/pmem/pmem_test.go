package pmem

import (
	"testing"
	"testing/quick"
)

func TestLineOf(t *testing.T) {
	cases := []struct {
		a    Addr
		line Addr
		off  uint64
	}{
		{0, 0, 0},
		{1, 0, 1},
		{63, 0, 63},
		{64, 64, 0},
		{65, 64, 1},
		{0x1000, 0x1000, 0},
		{0x1033, 0x1000, 0x33},
	}
	for _, c := range cases {
		if got := c.a.Line(); got != c.line {
			t.Errorf("Line(%v) = %v, want %v", c.a, got, c.line)
		}
		if got := c.a.LineOffset(); got != c.off {
			t.Errorf("LineOffset(%v) = %v, want %v", c.a, got, c.off)
		}
	}
}

func TestLinesIteration(t *testing.T) {
	collect := func(a Addr, size uint64) []Addr {
		var out []Addr
		Lines(a, size, func(l Addr) { out = append(out, l) })
		return out
	}
	if got := collect(0, 0); len(got) != 0 {
		t.Errorf("zero size touched %v", got)
	}
	if got := collect(10, 8); len(got) != 1 || got[0] != 0 {
		t.Errorf("within one line: %v", got)
	}
	if got := collect(60, 8); len(got) != 2 || got[0] != 0 || got[1] != 64 {
		t.Errorf("straddling: %v", got)
	}
	if got := collect(64, 129); len(got) != 3 {
		t.Errorf("three lines: %v", got)
	}
	if n := LineCount(60, 8); n != 2 {
		t.Errorf("LineCount = %d, want 2", n)
	}
}

func TestLinesProperty(t *testing.T) {
	// Every byte of [a, a+size) is covered by exactly one reported line.
	f := func(a16 uint16, size8 uint8) bool {
		a, size := Addr(a16), uint64(size8)
		lines := make(map[Addr]bool)
		Lines(a, size, func(l Addr) {
			if l.LineOffset() != 0 || lines[l] {
				return
			}
			lines[l] = true
		})
		for i := uint64(0); i < size; i++ {
			if !lines[(a + Addr(i)).Line()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInterval(t *testing.T) {
	iv := NewInterval()
	if iv.Begin != 0 || iv.End != SeqInf {
		t.Fatalf("fresh interval = %v", iv)
	}
	iv.RaiseBegin(10)
	iv.RaiseBegin(5) // must not lower
	if iv.Begin != 10 {
		t.Errorf("Begin = %v, want 10", iv.Begin)
	}
	iv.LowerEnd(100)
	iv.LowerEnd(200) // must not raise
	if iv.End != 100 {
		t.Errorf("End = %v, want 100", iv.End)
	}
	if !iv.Contains(10) || !iv.Contains(99) || iv.Contains(100) || iv.Contains(9) {
		t.Errorf("Contains wrong for %v", iv)
	}
	if iv.Empty() {
		t.Errorf("interval %v reported empty", iv)
	}
	iv.LowerEnd(10)
	if !iv.Empty() {
		t.Errorf("interval %v should be empty", iv)
	}
}

func TestExecutionQueues(t *testing.T) {
	e := NewExecution(0)
	const a = Addr(0x1000)
	if _, ok := e.Newest(a); ok {
		t.Fatal("empty queue reported a newest store")
	}
	e.Append(a, 1, 1)
	e.Append(a, 2, 5)
	e.Append(a, 3, 9)
	if bs, ok := e.Newest(a); !ok || bs.Val != 3 || bs.Seq != 9 {
		t.Errorf("Newest = %v, %v", bs, ok)
	}
	if bs, ok := e.First(a); !ok || bs.Val != 1 || bs.Seq != 1 {
		t.Errorf("First = %v, %v", bs, ok)
	}
	if q := e.Queue(a); len(q) != 3 {
		t.Errorf("queue length %d", len(q))
	}
}

// Figure 2 of the paper: y=1; x=2; clflush; y=3; x=4; y=5; x=6 with x and y
// on the same cache line. Post-failure, x may be 2, 4, or 6.
func figure2() (*Stack, Addr, Addr) {
	s := NewStack()
	e := s.Top()
	const x, y = Addr(0x1000), Addr(0x1008)
	e.Append(y, 1, 1) // y=1
	e.Append(x, 2, 2) // x=2
	e.RaiseLineBegin(x, 3)
	e.Append(y, 3, 4) // y=3
	e.Append(x, 4, 5) // x=4
	e.Append(y, 5, 6) // y=5
	e.Append(x, 6, 7) // x=6
	s.Push()          // power failure
	return s, x, y
}

func vals(cs []Candidate) []byte {
	out := make([]byte, len(cs))
	for i, c := range cs {
		out[i] = c.Val
	}
	return out
}

func TestFigure2ReadSet(t *testing.T) {
	s, x, _ := figure2()
	cands := s.ReadPreFailure(x)
	got := vals(cands)
	want := []byte{6, 4, 2} // newest first
	if len(got) != len(want) {
		t.Fatalf("x candidates = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("x candidates = %v, want %v", got, want)
		}
	}
	// The x=2 candidate settles the search (σ=2 ≤ Begin=3), so the initial
	// zero must not appear.
	for _, c := range cands {
		if c.Exec == InitialExec {
			t.Error("initial-memory candidate leaked past the clflush")
		}
	}
}

// Figure 3: after the recovery execution reads x=4, the writeback interval
// refines to [σ(x=4), σ(x=6)) and y may only be 3 or 5.
func TestFigure3Refinement(t *testing.T) {
	s, x, y := figure2()
	cands := s.ReadPreFailure(x)
	var chosen Candidate
	found := false
	for _, c := range cands {
		if c.Val == 4 {
			chosen, found = c, true
		}
	}
	if !found {
		t.Fatal("x=4 not offered")
	}
	s.DoRead(x, chosen)
	iv := s.At(0).CacheLine(x)
	if iv.Begin != 5 || iv.End != 7 {
		t.Fatalf("refined interval = %v, want [5, 7)", *iv)
	}
	yv := vals(s.ReadPreFailure(y))
	if len(yv) != 2 || yv[0] != 5 || yv[1] != 3 {
		t.Fatalf("y candidates after refinement = %v, want [5 3]", yv)
	}
}

// Reading x=6 (the newest store) proves the line was flushed after every
// store to y, so y must be 5.
func TestFigure2NewestRefinement(t *testing.T) {
	s, x, y := figure2()
	cands := s.ReadPreFailure(x)
	s.DoRead(x, cands[0]) // x=6
	yv := vals(s.ReadPreFailure(y))
	if len(yv) != 1 || yv[0] != 5 {
		t.Fatalf("y candidates = %v, want [5]", yv)
	}
}

// Reading x=2 (the flush-guaranteed store) bounds the writeback before x=4,
// so y may be 1 or 3.
func TestFigure2OldestRefinement(t *testing.T) {
	s, x, y := figure2()
	cands := s.ReadPreFailure(x)
	s.DoRead(x, cands[len(cands)-1]) // x=2
	yv := vals(s.ReadPreFailure(y))
	if len(yv) != 2 || yv[0] != 3 || yv[1] != 1 {
		t.Fatalf("y candidates = %v, want [3 1]", yv)
	}
}

func TestUnflushedLineFallsToInitial(t *testing.T) {
	s := NewStack()
	const a = Addr(0x2000)
	s.Top().Append(a, 7, 1)
	s.Push()
	cands := s.ReadPreFailure(a)
	if len(cands) != 2 {
		t.Fatalf("candidates = %v", cands)
	}
	if cands[0].Val != 7 || cands[1].Exec != InitialExec || cands[1].Val != 0 {
		t.Fatalf("candidates = %v, want store then initial zero", cands)
	}
}

func TestNeverWrittenReadsInitialZero(t *testing.T) {
	s := NewStack()
	s.Push()
	cands := s.ReadPreFailure(Addr(0x3000))
	if len(cands) != 1 || cands[0].Exec != InitialExec {
		t.Fatalf("candidates = %v", cands)
	}
}

// Two failures: a store in execution 1 that was never flushed can disappear,
// exposing execution 0's flushed value — and reading execution 0's value
// refines execution 1's interval to before its first store.
func TestMultiExecutionRefinement(t *testing.T) {
	s := NewStack()
	const a = Addr(0x4000)
	e0 := s.Top()
	e0.Append(a, 1, 1)
	e0.RaiseLineBegin(a, 2)
	e1 := s.Push()
	e1.Append(a, 9, 3)
	s.Push()
	cands := s.ReadPreFailure(a)
	if len(cands) != 2 || cands[0].Val != 9 || cands[1].Val != 1 {
		t.Fatalf("candidates = %v", cands)
	}
	s.DoRead(a, cands[1]) // read execution 0's value
	if end := e1.CacheLine(a).End; end != 3 {
		t.Errorf("execution 1 interval End = %v, want 3", end)
	}
	// A second read of the same byte must now offer only value 1.
	cands = s.ReadPreFailure(a)
	if len(cands) != 1 || cands[0].Val != 1 {
		t.Fatalf("candidates after refinement = %v", cands)
	}
}

func TestDirtyStores(t *testing.T) {
	e := NewExecution(0)
	const a = Addr(0x1000)
	e.Append(a, 1, 1)
	e.Append(a+8, 2, 2)
	e.Append(a+8, 3, 3)
	if n := e.DirtyStores(a.Line()); n != 3 {
		t.Errorf("DirtyStores = %d, want 3", n)
	}
	e.RaiseLineBegin(a, 2)
	if n := e.DirtyStores(a.Line()); n != 1 {
		t.Errorf("DirtyStores after flush = %d, want 1", n)
	}
	lines := e.DirtyLines()
	if len(lines) != 1 || lines[0] != a.Line() {
		t.Errorf("DirtyLines = %v", lines)
	}
	e.RaiseLineBegin(a, 3)
	if lines := e.DirtyLines(); len(lines) != 0 {
		t.Errorf("DirtyLines after full flush = %v", lines)
	}
}

func TestTouched(t *testing.T) {
	e := NewExecution(0)
	e.Append(0x1040, 1, 1)
	e.Append(0x1000, 2, 2)
	e.Append(0x1001, 3, 3)
	addrs := e.TouchedAddrs()
	if len(addrs) != 3 || addrs[0] != 0x1000 || addrs[1] != 0x1001 || addrs[2] != 0x1040 {
		t.Errorf("TouchedAddrs = %v", addrs)
	}
	lines := e.TouchedLines()
	if len(lines) != 2 || lines[0] != 0x1000 || lines[1] != 0x1040 {
		t.Errorf("TouchedLines = %v", lines)
	}
}

// Property: every candidate returned by ReadPreFailure is consistent with
// the line's interval, and DoRead never produces an empty interval.
func TestCandidateConsistencyProperty(t *testing.T) {
	f := func(ops []uint8, flushAt uint8) bool {
		s := NewStack()
		e := s.Top()
		const a = Addr(0x1000)
		seq := Seq(1)
		for i, v := range ops {
			if i > 8 {
				break
			}
			e.Append(a, v, seq)
			seq++
			if uint8(i) == flushAt%8 {
				e.RaiseLineBegin(a, seq)
				seq++
			}
		}
		s.Push()
		for _, c := range s.ReadPreFailure(a) {
			if c.Exec == InitialExec {
				continue
			}
			cl := s.At(c.Exec).CacheLine(a)
			if c.Seq >= cl.End {
				return false
			}
		}
		cands := s.ReadPreFailure(a)
		if len(cands) == 0 {
			return false
		}
		s.DoRead(a, cands[len(cands)-1])
		return !e.CacheLine(a).Empty() || len(e.Queue(a)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStringers(t *testing.T) {
	if got := Addr(0x1040).String(); got != "0x1040" {
		t.Errorf("Addr.String = %q", got)
	}
	if got := Seq(7).String(); got != "7" {
		t.Errorf("Seq.String = %q", got)
	}
	if got := SeqInf.String(); got != "∞" {
		t.Errorf("SeqInf.String = %q", got)
	}
	iv := Interval{Begin: 3, End: SeqInf}
	if got := iv.String(); got != "[3, ∞)" {
		t.Errorf("Interval.String = %q", got)
	}
}

func TestAddrAdd(t *testing.T) {
	if Addr(0x10).Add(0x30) != 0x40 {
		t.Error("Addr.Add broken")
	}
}

func TestStackPrevAndDepth(t *testing.T) {
	s := NewStack()
	if s.Depth() != 1 || s.Prev(s.Top()) != nil {
		t.Fatal("fresh stack shape wrong")
	}
	e0 := s.Top()
	e1 := s.Push()
	if s.Depth() != 2 || s.Prev(e1) != e0 || s.Top() != e1 {
		t.Fatal("push/prev wrong")
	}
}

func TestLineKnown(t *testing.T) {
	e := NewExecution(0)
	if e.LineKnown(0x1000) {
		t.Fatal("untouched line known")
	}
	e.CacheLine(0x1008)
	if !e.LineKnown(0x1000) {
		t.Fatal("line not known after CacheLine (same line)")
	}
}

// Candidates (the documented reference form) must agree with the
// allocation-free appendCandidates used on the hot path.
func TestCandidatesAgreesWithAppend(t *testing.T) {
	s, x, y := figure2()
	for _, a := range []Addr{x, y} {
		e := s.At(0)
		ref, settledRef := e.Candidates(a)
		fast, settledFast := e.appendCandidates(a, nil)
		if settledRef != settledFast || len(ref) != len(fast) {
			t.Fatalf("forms disagree: %v/%v vs %v/%v", ref, settledRef, fast, settledFast)
		}
		for i := range ref {
			if ref[i] != fast[i].ByteStore || fast[i].Exec != e.ID {
				t.Fatalf("entry %d: %v vs %v", i, ref[i], fast[i])
			}
		}
	}
}

// DoRead with a current-execution candidate is a no-op (nothing to refine).
func TestDoReadCurrentExecutionNoop(t *testing.T) {
	s := NewStack()
	const a = Addr(0x1000)
	s.Top().Append(a, 5, 1)
	before := *s.Top().CacheLine(a)
	s.DoRead(a, Candidate{Exec: s.Top().ID, ByteStore: ByteStore{Val: 5, Seq: 1}})
	if *s.Top().CacheLine(a) != before {
		t.Fatal("DoRead refined the current execution")
	}
}
