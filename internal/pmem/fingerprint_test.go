package pmem

import "testing"

// fp is shorthand for a stack's canonical fingerprint from the seed.
func fp(s *Stack) uint64 { return s.Fingerprint(FingerprintSeed) }

func TestFingerprintSeqShiftInvariance(t *testing.T) {
	// Absolute sequence numbers must not matter: two states whose relevant
	// sequences are order-isomorphic fingerprint identically. Same store
	// values, same flush position relative to the stores, wildly different
	// absolute seqs.
	build := func(seqs [3]Seq) *Stack {
		const a = Addr(0x100)
		s := NewStack()
		e := s.Top()
		e.Append(a, 0x11, seqs[0])
		s.FlushLine(a, seqs[1])
		e.Append(a, 0x22, seqs[2])
		return s
	}
	lo := build([3]Seq{1, 2, 3})
	hi := build([3]Seq{100, 2000, 30000})
	if fp(lo) != fp(hi) {
		t.Errorf("shifted seqs changed the fingerprint: %#x vs %#x", fp(lo), fp(hi))
	}

	// Interval bounds are ranked too: End lowered anywhere strictly between
	// the same two stores is the same reachable state.
	mid := func(end Seq) *Stack {
		const a = Addr(0x40)
		s := NewStack()
		e := s.Top()
		e.Append(a, 0x11, 2)
		e.Append(a, 0x22, 6)
		s.lowerEnd(RefineLower, e, a, end)
		return s
	}
	if fp(mid(4)) != fp(mid(5)) {
		t.Errorf("equivalent End bounds (both between the stores) fingerprint differently")
	}
}

func TestFingerprintBoundaryDistinct(t *testing.T) {
	// Moving a bound across a store changes the reachable candidate set and
	// must change the fingerprint, even though the touched lines (and almost
	// all ranks) are identical.
	withEnd := func(end Seq) *Stack {
		const a = Addr(0x40)
		s := NewStack()
		e := s.Top()
		e.Append(a, 0x11, 2)
		e.Append(a, 0x22, 6)
		if end != SeqInf {
			s.lowerEnd(RefineLower, e, a, end)
		}
		return s
	}
	if fp(withEnd(6)) == fp(withEnd(7)) {
		t.Errorf("End=6 excludes the seq-6 store, End=7 includes it; fingerprints collide")
	}
	if fp(withEnd(2)) == fp(withEnd(3)) {
		t.Errorf("End=2 excludes both stores, End=3 keeps the first; fingerprints collide")
	}

	// Settled vs merely-reachable oldest store: Begin at the store's seq
	// guarantees it persisted; Begin just below leaves the pre-store value
	// reachable too.
	withBegin := func(begin Seq) *Stack {
		const a = Addr(0x80)
		s := NewStack()
		e := s.Top()
		e.Append(a, 0x33, 5)
		s.FlushLine(a, begin)
		return s
	}
	if fp(withBegin(5)) == fp(withBegin(4)) {
		t.Errorf("settled and unsettled states fingerprint identically")
	}
}

func TestFingerprintValueAndLineSensitivity(t *testing.T) {
	one := func(a Addr, val byte) *Stack {
		s := NewStack()
		s.Top().Append(a, val, 1)
		return s
	}
	if fp(one(0x100, 0xAA)) == fp(one(0x100, 0xAB)) {
		t.Errorf("store value not reflected in the fingerprint")
	}

	// Per-line hashes are combined by XOR; the absolute line address inside
	// each hash is what keeps swapped line contents distinct.
	pair := func(v0, v1 byte) *Stack {
		s := NewStack()
		e := s.Top()
		e.Append(0x000, v0, 1)
		e.Append(0x040, v1, 2)
		return s
	}
	if fp(pair(0xAA, 0xBB)) == fp(pair(0xBB, 0xAA)) {
		t.Errorf("swapping two lines' contents did not change the fingerprint")
	}
	// ...while touching the same lines in a different order must not matter
	// (XOR combination is what makes map iteration order irrelevant).
	rev := NewStack()
	e := rev.Top()
	e.Append(0x040, 0xBB, 2)
	e.Append(0x000, 0xAA, 1)
	if fp(pair(0xAA, 0xBB)) != fp(rev) {
		t.Errorf("line touch order changed the fingerprint")
	}
}

// buildRefined constructs the canonical multi-execution state: a pre-failure
// execution with two stores and a flush, a failure, and one post-failure
// refinement read of the older store.
func buildRefined(a Addr) *Stack {
	s := NewStack()
	e := s.Top()
	e.Append(a, 0x11, 1)
	s.FlushLine(a, 2)
	e.Append(a, 0x22, 3)
	s.Push()
	cands := s.ReadPreFailure(a)
	s.DoRead(a, cands[len(cands)-1])
	return s
}

func TestFingerprintCacheCoherence(t *testing.T) {
	// The cached per-line hashes must be invalidated by every mutation path:
	// a stack mutated after being fingerprinted must equal a freshly built
	// stack with the same history.
	const a = Addr(0x100)
	mutated := NewStack()
	e := mutated.Top()
	e.Append(a, 0x11, 1)
	_ = fp(mutated) // populate caches
	mutated.FlushLine(a, 2)
	_ = fp(mutated)
	e.Append(a, 0x22, 3)
	_ = fp(mutated)
	mutated.Push()
	cands := mutated.ReadPreFailure(a)
	mutated.DoRead(a, cands[len(cands)-1]) // raiseBegin + lowerEnd in place
	got := fp(mutated)

	fresh := buildRefined(a)
	if want := fp(fresh); got != want {
		t.Errorf("mutated stack fingerprint %#x, fresh equivalent %#x", got, want)
	}
}

func TestFingerprintRewindRestores(t *testing.T) {
	// A journal rewind must restore the exact pre-mark fingerprint even when
	// the mutations in between were fingerprinted (cached).
	const a = Addr(0x40)
	s := NewStack()
	s.EnableJournal()
	e := s.Top()
	e.Append(a, 0x11, 1)
	s.FlushLine(a, 2)
	e.Append(a, 0x22, 3)
	before := fp(s)
	m := s.Mark()

	e.Append(a, 0x33, 4)
	s.Push()
	cands := s.ReadPreFailure(a)
	s.DoRead(a, cands[len(cands)-1])
	if fp(s) == before {
		t.Fatalf("mutations did not change the fingerprint")
	}

	s.Rewind(m)
	if got := fp(s); got != before {
		t.Errorf("fingerprint after rewind = %#x, want %#x", got, before)
	}
}
