package pmem

import "fmt"

// Interval bounds the time at which a cache line was most recently written
// back to persistent memory within one execution. The line's last writeback
// happened at some σ with Begin ≤ σ < End (Begin inclusive because a clflush
// at σ pins the last writeback to be no earlier than σ; End exclusive because
// observing a load that returns the value of store σ_k proves the writeback
// happened before the next store σ_{k+1}).
//
// A fresh line starts with the vacuous interval [0, ∞): it may have been
// written back at any time, or never (equivalent to "written back at time 0",
// before any store of this execution).
type Interval struct {
	Begin Seq // lower bound: set by clflush / clflushopt writeback effects
	End   Seq // exclusive upper bound: refined by post-failure observations
}

// NewInterval returns the unconstrained interval [0, ∞).
func NewInterval() Interval { return Interval{Begin: 0, End: SeqInf} }

// RaiseBegin raises the lower bound to at least s (a flush effect at s).
func (iv *Interval) RaiseBegin(s Seq) {
	if s > iv.Begin {
		iv.Begin = s
	}
}

// LowerEnd lowers the exclusive upper bound to at most s (a refinement from
// an observed load).
func (iv *Interval) LowerEnd(s Seq) {
	if s < iv.End {
		iv.End = s
	}
}

// Contains reports whether σ lies within [Begin, End).
func (iv Interval) Contains(s Seq) bool { return s >= iv.Begin && s < iv.End }

// Empty reports whether the interval has become contradictory. A correct
// exploration never produces an empty interval: refinements are only applied
// for read-from choices that BuildMayReadFrom computed as consistent.
func (iv Interval) Empty() bool { return iv.End <= iv.Begin }

func (iv Interval) String() string {
	return fmt.Sprintf("[%v, %v)", iv.Begin, iv.End)
}
