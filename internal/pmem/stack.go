package pmem

// Stack is the sequence of executions comprising one failure scenario
// (the paper's exec). Execution 0 is the pre-failure execution; each
// injected failure pushes a fresh execution.
type Stack struct {
	execs []*Execution

	// pool supplies executions (and their pages) for Push and receives them
	// back on Recycle; see page.go.
	pool *Pool

	// journaling, when set, records undo information for every interval
	// mutation so the stack can be rewound to a captured Mark — the
	// substrate of the snapshot engine (see journal.go). Store appends need
	// no extra log: the per-execution arena is the append log.
	journaling bool
	ivlog      []ivUndo

	// rewindScratch is the reused buffer Rewind collects surviving refined
	// lines into before recounting their dirty stores.
	rewindScratch []ivUndo

	// refEpoch versions the inputs of the DoRead refinement walk: it is
	// bumped by every effective interval mutation, every Push (the walk's
	// execution range changes), and every Rewind. A lineRec memo stamped
	// with the current epoch proves a repeated refinement of the same
	// ⟨addr, seq⟩ would be a no-op. Starts at 1 so zeroed pooled pages
	// (refEpoch 0) never match.
	refEpoch uint64

	// tracer, when non-nil, receives every effective interval mutation with
	// its provenance — the forensics hook behind per-cache-line persistence
	// timelines. Nil (the default) keeps the zero-overhead path.
	tracer func(IntervalEvent)
}

// IntervalEventKind distinguishes the provenance of an interval mutation.
type IntervalEventKind int

const (
	// FlushRaise is a flush effect on the top execution (clflush or a
	// buffered clflushopt writeback) raising the line's lower bound.
	FlushRaise IntervalEventKind = iota
	// RefineRaise / RefineLower are post-failure constraint refinements
	// (Figure 10, UpdateRanges) narrowing a pre-failure line's interval
	// after an observed load.
	RefineRaise
	RefineLower
)

// IntervalEvent describes one effective mutation of a cache line's
// most-recent-writeback interval: which execution's line moved, the sequence
// bound applied, and the interval before and after.
type IntervalEvent struct {
	Kind   IntervalEventKind
	Exec   int
	Line   Addr
	At     Seq
	Before Interval
	After  Interval
}

// SetIntervalTracer installs (or, with nil, removes) the interval-provenance
// hook. Only effective mutations are reported — a flush or refinement that
// does not move a bound is silent, matching the undo journal's notion of an
// effective mutation.
func (s *Stack) SetIntervalTracer(fn func(IntervalEvent)) { s.tracer = fn }

// NewStack returns a stack containing only the pre-failure execution, backed
// by a private pool (tests and standalone use; the checker recycles stacks
// through a shared per-worker pool via Pool.Recycle).
func NewStack() *Stack {
	return NewPool().NewStack()
}

// Top returns the current (most recent) execution.
func (s *Stack) Top() *Execution { return s.execs[len(s.execs)-1] }

// Prev returns the execution immediately preceding e, or nil if e is the
// oldest execution.
func (s *Stack) Prev(e *Execution) *Execution {
	if e.ID == 0 {
		return nil
	}
	return s.execs[e.ID-1]
}

// Push starts a new execution (a failure occurred) and returns it.
func (s *Stack) Push() *Execution {
	e := s.pool.getExec(len(s.execs))
	s.execs = append(s.execs, e)
	// The refinement walk ranges over execs below the top; a new top
	// extends that range, so prior walk memos no longer cover it.
	s.refEpoch++
	return e
}

// Depth reports how many executions the scenario contains so far.
func (s *Stack) Depth() int { return len(s.execs) }

// At returns the execution with stack index id.
func (s *Stack) At(id int) *Execution { return s.execs[id] }

// Candidate is one store a post-failure load may read from: the execution
// that performed it, and the ⟨val, σ⟩ tuple. Exec == -1 denotes the initial
// contents of the pool (zero) from before the first execution.
type Candidate struct {
	Exec int
	ByteStore
}

// InitialExec is the pseudo execution ID of the pool's initial (zeroed)
// contents.
const InitialExec = -1

// ReadPreFailure computes the set of stores from executions preceding the
// current one that a load of byte address a may read from (Figure 9,
// ReadPreFailure). It walks the stack from the execution below the top
// downward, collecting each execution's candidates, and stops at the first
// execution with a store guaranteed persisted (σ ≤ cl.Begin). If no
// execution settles the search, the pool's initial zero byte is appended as
// a final candidate.
//
// Candidates are ordered newest execution first, and newest store first
// within an execution.
func (s *Stack) ReadPreFailure(a Addr) []Candidate {
	return s.ReadPreFailureInto(a, nil)
}

// ReadPreFailureInto is ReadPreFailure appending into a caller-provided
// buffer (typically a reused scratch slice) to avoid per-load allocation.
func (s *Stack) ReadPreFailureInto(a Addr, out []Candidate) []Candidate {
	for id := s.Top().ID - 1; id >= 0; id-- {
		e := s.execs[id]
		var settled bool
		out, settled = e.appendCandidates(a, out)
		if settled {
			return out
		}
	}
	return append(out, Candidate{Exec: InitialExec, ByteStore: ByteStore{Val: 0, Seq: 0}})
}

// DoRead refines the most-recent-writeback intervals of previous executions
// after the model checker selects candidate c for a load of byte address a
// (Figure 10, DoRead / UpdateRanges). If the chosen store is from the current
// execution there is nothing to refine.
//
// skipped reports that the whole refinement walk was proven redundant by the
// epoch memo and elided: a previous DoRead chose the same ⟨addr, seq⟩ of the
// same execution, and since then no interval moved, no execution was pushed,
// and no rewind happened (refEpoch unchanged) — so every execution the walk
// would visit is frozen below the top and the idempotent refinement would
// move nothing. Update-heavy recovery code re-reading the same recovered
// word makes this the common case.
func (s *Stack) DoRead(a Addr, c Candidate) (skipped bool) {
	top := s.Top()
	if c.Exec == top.ID {
		return false
	}
	// The memo lives on the chosen execution's slot for byte a (InitialExec
	// candidates memoize on execution 0; their Seq 0 cannot collide with a
	// real exec-0 store, whose Seq is >= 1).
	memoExec := c.Exec
	if memoExec < 0 {
		memoExec = 0
	}
	sl := &s.execs[memoExec].ensurePage(a).slots[a&pageMask]
	if sl.refEpoch == s.refEpoch && sl.refSeq == c.Seq {
		return true
	}
	s.updateRanges(top.ID-1, a, c)
	// Stamp with the post-walk epoch: the walk's own effective mutations
	// bumped it, and repeating the walk now would be ineffective.
	sl.refSeq, sl.refEpoch = c.Seq, s.refEpoch
	return false
}

// updateRanges walks the executions from execID down to the chosen one
// (Figure 10, UpdateRanges — the paper's recursion expressed as a loop).
func (s *Stack) updateRanges(execID int, a Addr, c Candidate) {
	for ; execID >= 0; execID-- {
		ec := s.execs[execID]
		if c.Exec != execID {
			// The load read from an earlier execution, so execution ec cannot
			// have written this line back after its first store to a (otherwise
			// the load would have observed ec's value or a later one).
			if first, ok := ec.First(a); ok {
				s.lowerEnd(RefineLower, ec, a, first.Seq)
			}
			continue
		}
		// The load read store ⟨val, σ⟩ of execution ec: the line was written
		// back at or after σ and before the next store to a.
		s.raiseBegin(RefineRaise, ec, a, c.Seq)
		s.lowerEnd(RefineLower, ec, a, ec.nextSeqAfter(a, c.Seq))
		return
	}
}
