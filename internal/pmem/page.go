package pmem

// Paged memory layout — the hot-path storage behind Execution.
//
// The maps-of-slices layout this replaces paid a Go map lookup per *byte*
// for every store, load, flush, and refinement, and allocated fresh maps
// (plus one queue slice per touched byte) for every execution of every
// scenario. The paper's evaluation (§5.3) credits Jaaru's speed to doing
// almost no work per operation, so the bookkeeping is restructured around
// three dense pieces:
//
//   - Pages: the address space is divided into fixed-size pages
//     (addr>>pageShift selects the page, addr&pageMask the slot). A page
//     holds a dense per-byte queue header (slot) for each of its bytes and
//     a per-cache-line interval record (lineRec) for each of its lines, so
//     one map lookup — usually short-circuited by a one-entry page cache —
//     covers pageSize bytes instead of one.
//   - Arena: every ByteStore appended during an execution lands in a single
//     per-execution arena slice. Queue headers hold 1-based chain indices
//     into the arena (0 = empty, so a zeroed page is a valid empty page):
//     slot.tail links newest-first through node.prev, and lineRec.tail
//     links the whole line's stores newest-first through node.linePrev.
//     The arena doubles as the append log the undo journal used to keep
//     separately — node.addr locates the headers to unlink on truncation.
//   - Pool: pages, Executions, and Stacks are recycled across the millions
//     of scenario replays a run performs instead of reallocated. Releasing
//     an execution returns only its touched pages (zeroed, so reuse starts
//     from a valid empty state), keeping reset cost proportional to what
//     the execution actually touched.

const (
	pageShift = 8
	// pageSize is the number of byte slots per page (256 bytes = 4 cache
	// lines): small enough that sparse workloads don't pay for empty slots,
	// large enough that a data structure node and its neighbours share one
	// page-cache hit.
	pageSize     = 1 << pageShift
	pageMask     = pageSize - 1
	linesPerPage = pageSize / CacheLineSize
)

// node is one arena entry: a ByteStore plus the chain links and the byte
// address that let a rewind unlink it from its page headers.
type node struct {
	seq      Seq
	addr     Addr
	prev     int32 // previous store to the same byte (1-based arena index, 0 = none)
	linePrev int32 // previous store to the same cache line
	val      byte
}

// slot is the per-byte queue header: 1-based arena indices of the oldest and
// newest store to the byte (0 = no stores), plus the refinement memo —
// refSeq/refEpoch record the last completed DoRead walk that chose this
// byte's store at refSeq, so a repeat of the identical choice while the
// stack's refinement epoch is unchanged is skipped as a proven no-op (see
// Stack.DoRead). refEpoch == 0 (pooled pages come back zeroed) never
// matches a live epoch, which starts at 1.
type slot struct {
	head, tail int32
	refSeq     Seq
	refEpoch   uint64
}

// lineRec is the per-cache-line record: the most-recent-writeback interval
// (valid once known — the line was flushed or refined), the newest store to
// the line, and the incrementally maintained count of stores past the
// interval's lower bound (see recountDirty).
type lineRec struct {
	iv    Interval
	known bool
	// fpOK marks fp as the line's valid cached canonical fingerprint (see
	// fingerprint.go); every mutation of the line's stores or interval
	// clears it, and pooled pages come back zeroed.
	fpOK  bool
	dirty int32 // stores to the line with seq > iv.Begin
	tail  int32 // newest store to the line (1-based arena index, 0 = none)
	fp    uint64
}

// page holds the dense headers for pageSize consecutive bytes.
type page struct {
	slots [pageSize]slot
	lines [linesPerPage]lineRec
}

// lineIndex returns the index of a's cache line within its page.
func lineIndex(a Addr) int { return int(a&pageMask) / CacheLineSize }

// Pool recycles the scenario-state a checker would otherwise reallocate per
// execution: pages, Executions, and (via Recycle) whole Stacks. A Pool is
// single-owner — one per checker worker — so it needs no locking.
type Pool struct {
	pages []*page
	execs []*Execution
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// NewStack returns a stack containing only the pre-failure execution, drawing
// its state from the pool.
func (p *Pool) NewStack() *Stack {
	s := &Stack{pool: p, refEpoch: 1}
	s.execs = append(s.execs, p.getExec(0))
	return s
}

// Recycle releases every execution of s back to the pool and returns a stack
// equivalent to a fresh NewStack (journal off, tracer removed), reusing s's
// slices. A nil s yields a new stack, so `s = pool.Recycle(s)` is the
// per-scenario reset idiom.
func (p *Pool) Recycle(s *Stack) *Stack {
	if s == nil {
		return p.NewStack()
	}
	for i := len(s.execs) - 1; i >= 0; i-- {
		p.putExec(s.execs[i])
		s.execs[i] = nil
	}
	s.execs = append(s.execs[:0], p.getExec(0))
	s.ivlog = s.ivlog[:0]
	s.journaling = false
	s.tracer = nil
	// Restart the refinement-memo epoch: released pages are zeroed, so any
	// page surviving in a *different* stack carries refEpoch values from its
	// old life — but pools are single-owner and stacks draw pages only from
	// their own pool, so epoch 1 with zeroed pages is a clean slate.
	s.refEpoch = 1
	return s
}

// getExec returns a reset execution with the given stack index.
func (p *Pool) getExec(id int) *Execution {
	if n := len(p.execs); n > 0 {
		e := p.execs[n-1]
		p.execs[n-1] = nil
		p.execs = p.execs[:n-1]
		e.ID = id
		return e
	}
	return &Execution{ID: id, pages: make(map[Addr]*page), pool: p}
}

// putExec returns an execution to the pool: its touched pages are zeroed and
// recycled, its arena emptied (capacity retained).
func (p *Pool) putExec(e *Execution) {
	for _, pg := range e.pages {
		*pg = page{}
		p.pages = append(p.pages, pg)
	}
	clear(e.pages)
	e.arena = e.arena[:0]
	e.EvictedStores = 0
	e.lastPage = nil
	p.execs = append(p.execs, e)
}

// getPage returns an empty page.
func (p *Pool) getPage() *page {
	if n := len(p.pages); n > 0 {
		pg := p.pages[n-1]
		p.pages[n-1] = nil
		p.pages = p.pages[:n-1]
		return pg
	}
	return new(page)
}
