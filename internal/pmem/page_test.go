package pmem

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// ---- Reference model -------------------------------------------------------
//
// modelStack mirrors Stack/Execution semantics with the naive maps-of-slices
// layout the paged arena replaced. The fuzz driver below runs both against
// the same operation sequence and requires identical observable state after
// every step — the correctness pin for the paged addressing, the incremental
// dirty counters, and the arena-based journal rewind.

type modelExec struct {
	id     int
	queues map[Addr][]ByteStore
	iv     map[Addr]Interval
	known  map[Addr]bool
}

func newModelExec(id int) *modelExec {
	return &modelExec{
		id:     id,
		queues: make(map[Addr][]ByteStore),
		iv:     make(map[Addr]Interval),
		known:  make(map[Addr]bool),
	}
}

func (m *modelExec) clone() *modelExec {
	c := newModelExec(m.id)
	for a, q := range m.queues {
		c.queues[a] = append([]ByteStore(nil), q...)
	}
	for a, iv := range m.iv {
		c.iv[a] = iv
	}
	for a, k := range m.known {
		c.known[a] = k
	}
	return c
}

func (m *modelExec) bounds(line Addr) (Seq, Seq) {
	if !m.known[line] {
		return 0, SeqInf
	}
	iv := m.iv[line]
	return iv.Begin, iv.End
}

func (m *modelExec) raiseBegin(a Addr, v Seq) bool {
	line := a.Line()
	begin, end := m.bounds(line)
	if v <= begin {
		return false
	}
	m.known[line] = true
	m.iv[line] = Interval{Begin: v, End: end}
	return true
}

func (m *modelExec) lowerEnd(a Addr, v Seq) bool {
	line := a.Line()
	begin, end := m.bounds(line)
	if v >= end {
		return false
	}
	m.known[line] = true
	m.iv[line] = Interval{Begin: begin, End: v}
	return true
}

func (m *modelExec) dirtyStores(line Addr) int {
	begin, _ := m.bounds(line)
	n := 0
	for a, q := range m.queues {
		if a.Line() != line {
			continue
		}
		for _, bs := range q {
			if bs.Seq > begin {
				n++
			}
		}
	}
	return n
}

func (m *modelExec) candidates(a Addr, out []Candidate) ([]Candidate, bool) {
	begin, end := m.bounds(a.Line())
	q := m.queues[a]
	for i := len(q) - 1; i >= 0; i-- {
		bs := q[i]
		if bs.Seq >= end {
			continue
		}
		out = append(out, Candidate{Exec: m.id, ByteStore: bs})
		if bs.Seq <= begin {
			return out, true
		}
	}
	return out, false
}

type modelStack struct {
	execs []*modelExec
}

func (m *modelStack) top() *modelExec { return m.execs[len(m.execs)-1] }

func (m *modelStack) clone() *modelStack {
	c := &modelStack{}
	for _, e := range m.execs {
		c.execs = append(c.execs, e.clone())
	}
	return c
}

func (m *modelStack) readPreFailure(a Addr) []Candidate {
	var out []Candidate
	for id := m.top().id - 1; id >= 0; id-- {
		var settled bool
		out, settled = m.execs[id].candidates(a, out)
		if settled {
			return out
		}
	}
	return append(out, Candidate{Exec: InitialExec})
}

func (m *modelStack) doRead(a Addr, c Candidate) {
	if c.Exec == m.top().id {
		return
	}
	for id := m.top().id - 1; id >= 0; id-- {
		ec := m.execs[id]
		if c.Exec != id {
			if q := ec.queues[a]; len(q) > 0 {
				ec.lowerEnd(a, q[0].Seq)
			}
			continue
		}
		ec.raiseBegin(a, c.Seq)
		next := SeqInf
		for _, bs := range ec.queues[a] {
			if bs.Seq > c.Seq {
				next = bs.Seq
				break
			}
		}
		ec.lowerEnd(a, next)
		return
	}
}

// ---- Cross-check driver ----------------------------------------------------

// modelAddrs spans three pages (0, 1 and 3) with several byte offsets per
// line, so page-boundary arithmetic and the one-entry page cache are
// exercised alongside intra-line behaviour.
func modelAddrs() []Addr {
	lines := []Addr{0x0, 0x40, 0x100, 0x1c0, 0x300}
	offs := []Addr{0, 1, 63}
	var out []Addr
	for _, l := range lines {
		for _, o := range offs {
			out = append(out, l+o)
		}
	}
	return out
}

// checkSame compares every observable of the real stack against the model.
func checkSame(t *testing.T, step int, s *Stack, m *modelStack) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("step %d: %s", step, fmt.Sprintf(format, args...))
	}
	if s.Depth() != len(m.execs) {
		fail("depth = %d, want %d", s.Depth(), len(m.execs))
	}
	addrs := modelAddrs()
	for id := 0; id < s.Depth(); id++ {
		e, me := s.At(id), m.execs[id]
		lines := map[Addr]bool{}
		for _, a := range addrs {
			lines[a.Line()] = true
			if got, want := e.Queue(a), me.queues[a]; !reflect.DeepEqual(got, want) && (len(got) != 0 || len(want) != 0) {
				fail("exec %d queue %v = %v, want %v", id, a, got, want)
			}
			gotC, gotS := e.Candidates(a)
			wantC, wantS := me.candidates(a, nil)
			wantB := make([]ByteStore, 0, len(wantC))
			for _, c := range wantC {
				wantB = append(wantB, c.ByteStore)
			}
			if gotS != wantS || !reflect.DeepEqual(gotC, wantC2bs(wantB)) {
				fail("exec %d candidates %v = %v/%v, want %v/%v", id, a, gotC, gotS, wantB, wantS)
			}
		}
		for line := range lines {
			switch {
			case me.known[line]:
				if !e.LineKnown(line) {
					fail("exec %d line %v unknown, model knows %+v", id, line, me.iv[line])
				}
				if got, want := *e.CacheLine(line), me.iv[line]; got != want {
					fail("exec %d interval %v = %+v, want %+v", id, line, got, want)
				}
			case e.LineKnown(line):
				// A rewind restores intervals but does not un-materialize
				// lines first touched after the mark; they must read as the
				// vacuous [0, ∞), which the model treats as unknown.
				if got := *e.CacheLine(line); got != (Interval{Begin: 0, End: SeqInf}) {
					fail("exec %d residual line %v = %+v, want vacuous", id, line, got)
				}
			}
			if got, want := e.DirtyStores(line), me.dirtyStores(line); got != want {
				fail("exec %d DirtyStores %v = %d, want %d", id, line, got, want)
			}
		}
		if got, want := e.DirtyLines(), modelDirtyLines(me); !sameAddrs(got, want) {
			fail("exec %d DirtyLines = %v, want %v", id, got, want)
		}
		if got, want := e.TouchedAddrs(), modelTouchedAddrs(me); !sameAddrs(got, want) {
			fail("exec %d TouchedAddrs = %v, want %v", id, got, want)
		}
	}
	for _, a := range addrs {
		got := s.ReadPreFailure(a)
		want := m.readPreFailure(a)
		if !reflect.DeepEqual(got, want) {
			fail("ReadPreFailure %v = %v, want %v", a, got, want)
		}
	}
}

func wantC2bs(b []ByteStore) []ByteStore {
	if len(b) == 0 {
		return nil
	}
	return b
}

func modelDirtyLines(m *modelExec) []Addr {
	seen := map[Addr]bool{}
	var out []Addr
	for a := range m.queues {
		line := a.Line()
		if !seen[line] && m.dirtyStores(line) > 0 {
			seen[line] = true
			out = append(out, line)
		}
	}
	sortAddrs(out)
	return out
}

func modelTouchedAddrs(m *modelExec) []Addr {
	var out []Addr
	for a, q := range m.queues {
		if len(q) > 0 {
			out = append(out, a)
		}
	}
	sortAddrs(out)
	return out
}

func sameAddrs(a, b []Addr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPagedMatchesMapModel fuzzes the paged arena layout against the
// reference map model: random appends, flushes, failures, refining reads,
// and journal mark/rewind cycles, with every observable compared after each
// operation. The real stack is recycled through one shared pool across
// seeds, so pooled-state reuse is cross-checked continuously.
func TestPagedMatchesMapModel(t *testing.T) {
	pool := NewPool()
	var s *Stack
	for seed := int64(0); seed < 25; seed++ {
		s = pool.Recycle(s)
		s.EnableJournal()
		m := &modelStack{execs: []*modelExec{newModelExec(0)}}
		rng := rand.New(rand.NewSource(seed))
		addrs := modelAddrs()
		seq := Seq(0)
		nextSeq := func() Seq { seq++; return seq }
		type savedMark struct {
			mark  Mark
			model *modelStack
			seq   Seq
		}
		var marks []savedMark

		for step := 0; step < 160; step++ {
			a := addrs[rng.Intn(len(addrs))]
			switch op := rng.Intn(100); {
			case op < 40: // store
				v, sq := byte(rng.Intn(256)), nextSeq()
				s.Top().Append(a, v, sq)
				s.Top().EvictedStores++
				m.top().queues[a] = append(m.top().queues[a], ByteStore{Val: v, Seq: sq})
			case op < 55: // flush
				at := nextSeq()
				s.FlushLine(a, at)
				m.top().raiseBegin(a, at)
			case op < 75: // post-failure load: pick the same candidate in both
				if s.Depth() < 2 {
					continue
				}
				cands := s.ReadPreFailure(a)
				c := cands[rng.Intn(len(cands))]
				s.DoRead(a, c)
				m.doRead(a, c)
			case op < 85: // failure
				if s.Depth() >= 4 {
					continue
				}
				s.Push()
				m.execs = append(m.execs, newModelExec(len(m.execs)))
			case op < 93: // snapshot mark
				marks = append(marks, savedMark{mark: s.Mark(), model: m.clone(), seq: seq})
			default: // rewind to a random outstanding mark
				if len(marks) == 0 {
					continue
				}
				i := rng.Intn(len(marks))
				s.Rewind(marks[i].mark)
				m = marks[i].model.clone()
				seq = marks[i].seq
				marks = marks[:i+1]
			}
			checkSame(t, step, s, m)
		}
	}
}

// ---- Pool reuse ------------------------------------------------------------

// buildScenario drives a fixed mixed workload on s: pre-failure stores and
// flushes across two pages, a failure, and a refining read.
func buildScenario(s *Stack) {
	e := s.Top()
	for i := 0; i < 10; i++ {
		a := Addr(0x40*i) % 0x280
		e.Append(a, byte(i), Seq(i+1))
		e.EvictedStores++
	}
	s.FlushLine(0x80, 20)
	s.FlushLine(0x240, 21)
	s.Push()
	cands := s.ReadPreFailure(0x80)
	s.DoRead(0x80, cands[len(cands)-1])
}

// scenarioFingerprint captures every observable of the scenario state.
func scenarioFingerprint(s *Stack) string {
	out := ""
	for id := 0; id < s.Depth(); id++ {
		e := s.At(id)
		out += fmt.Sprintf("exec %d evicted %d touched %v lines %v dirty %v\n",
			id, e.EvictedStores, e.TouchedAddrs(), e.TouchedLines(), e.DirtyLines())
		for _, a := range e.TouchedAddrs() {
			out += fmt.Sprintf("  q %v = %v\n", a, e.Queue(a))
		}
		for _, line := range e.TouchedLines() {
			if e.LineKnown(line) {
				out += fmt.Sprintf("  iv %v = %+v dirty %d\n", line, *e.CacheLine(line), e.DirtyStores(line))
			}
		}
	}
	for _, a := range []Addr{0x80, 0x81, 0x240, 0x500} {
		out += fmt.Sprintf("rpf %v = %v\n", a, s.ReadPreFailure(a))
	}
	return out
}

// TestPoolRecycleIndistinguishable pins the scenario-reuse contract: a
// recycled stack replaying a scenario is observably identical to a fresh
// stack running it — queues, intervals, dirty counts, journal marks, and
// retained-bytes accounting included.
func TestPoolRecycleIndistinguishable(t *testing.T) {
	fresh := NewStack()
	fresh.EnableJournal()
	freshMark := fresh.Mark()
	buildScenario(fresh)
	want := scenarioFingerprint(fresh)

	pool := NewPool()
	var s *Stack
	for round := 0; round < 3; round++ {
		s = pool.Recycle(s)
		if s.Journaling() {
			t.Fatal("recycled stack still journaling")
		}
		if got := s.RetainedBytes(); got != 0 {
			t.Fatalf("round %d: recycled stack retains %d bytes", round, got)
		}
		s.EnableJournal()
		if got := s.Mark(); got != freshMark {
			t.Fatalf("round %d: initial mark = %+v, want %+v", round, got, freshMark)
		}
		buildScenario(s)
		if got := scenarioFingerprint(s); got != want {
			t.Fatalf("round %d: recycled scenario diverges from fresh:\ngot:\n%s\nwant:\n%s", round, got, want)
		}
	}
}

// ---- Allocation gates ------------------------------------------------------

// TestStackOpsAllocFree is the pmem-level allocation-regression gate: on a
// warmed, pooled stack, the full hot-path cycle — mark, append, flush,
// refine, rewind — performs zero heap allocations.
func TestStackOpsAllocFree(t *testing.T) {
	pool := NewPool()
	s := pool.NewStack()
	s.EnableJournal()
	seq := Seq(0)
	var scratch []Candidate
	cycle := func() {
		m := s.Mark()
		for i := 0; i < 16; i++ {
			seq++
			s.Top().Append(Addr(0x40*i)%0x280, byte(i), seq)
		}
		seq++
		s.FlushLine(0x80, seq)
		s.Push()
		scratch = s.ReadPreFailureInto(0x80, scratch[:0])
		s.DoRead(0x80, scratch[len(scratch)-1])
		s.Rewind(m)
	}
	// Warm: grow the arena, page table, journal and candidate scratch to
	// steady-state capacity.
	for i := 0; i < 64; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Errorf("warmed mark/append/flush/refine/rewind cycle allocates %.1f times per run, want 0", allocs)
	}
}
