package pmem

import "testing"

// journalStack builds a journaling stack whose pre-failure execution wrote
// two values to address a (seq 1 and 3) and flushed the line at seq 2: the
// canonical refinable state — one store guaranteed persisted, one in flight.
func journalStack(a Addr) *Stack {
	s := NewStack()
	s.EnableJournal()
	e := s.Top()
	e.Append(a, 0x11, 1)
	e.EvictedStores++
	s.FlushLine(a, 2)
	e.Append(a, 0x22, 3)
	e.EvictedStores++
	return s
}

func candSeqs(cands []Candidate) []Seq {
	out := make([]Seq, len(cands))
	for i, c := range cands {
		out[i] = c.Seq
	}
	return out
}

func TestJournalRefineThenRewind(t *testing.T) {
	const a = Addr(0x100)
	s := journalStack(a)
	pre := s.Top().CacheLine(a)
	preIV := *pre
	m := s.Mark()

	// A failure, then post-failure refinement: the load reads the seq-1
	// store, so the line cannot have been written back at or after seq 3
	// (lowerEnd) and was written back at or after seq 1 (raiseBegin).
	s.Push()
	cands := s.ReadPreFailure(a)
	if len(cands) != 2 {
		t.Fatalf("candidates = %v, want both stores", candSeqs(cands))
	}
	s.DoRead(a, cands[1]) // the older store, seq 1
	if got := *pre; got == preIV {
		t.Fatal("refinement did not mutate the interval")
	}
	if pre.End != 3 {
		t.Errorf("refined End = %v, want 3", pre.End)
	}

	s.Rewind(m)
	if got := *pre; got != preIV {
		t.Errorf("interval after rewind = %+v, want %+v", got, preIV)
	}
	if s.Depth() != 1 {
		t.Errorf("depth after rewind = %d, want 1", s.Depth())
	}

	// The restored scenario must re-enumerate the original candidate set.
	s.Push()
	again := s.ReadPreFailure(a)
	if len(again) != len(cands) {
		t.Errorf("candidates after rewind = %v, want %v", candSeqs(again), candSeqs(cands))
	}
}

func TestJournalRewindRepeatable(t *testing.T) {
	// The same mark restores the same state arbitrarily many times, with a
	// different refinement each round — the DFS restore pattern.
	const a = Addr(0x40)
	s := journalStack(a)
	iv := s.Top().CacheLine(a)
	want := *iv
	m := s.Mark()
	for round := 0; round < 3; round++ {
		s.Push()
		cands := s.ReadPreFailure(a)
		s.DoRead(a, cands[round%len(cands)])
		s.Rewind(m)
		if got := *iv; got != want {
			t.Fatalf("round %d: interval = %+v, want %+v", round, got, want)
		}
	}
}

func TestJournalAppendTruncation(t *testing.T) {
	const a, b = Addr(0x80), Addr(0x81)
	s := journalStack(a)
	top := s.Top()
	m := s.Mark()

	// Appends after the mark, both to a marked queue and to a fresh one.
	top.Append(a, 0x33, 4)
	top.EvictedStores++
	top.Append(b, 0x44, 5)
	top.EvictedStores++
	if got, _ := top.Newest(a); got.Seq != 4 {
		t.Fatalf("Newest(a) = %+v before rewind", got)
	}

	s.Rewind(m)
	if got, ok := top.Newest(a); !ok || got.Seq != 3 || got.Val != 0x22 {
		t.Errorf("Newest(a) after rewind = %+v, %v; want seq 3", got, ok)
	}
	if _, ok := top.Newest(b); ok {
		t.Error("store to b survived the rewind")
	}
	if top.EvictedStores != 2 {
		t.Errorf("EvictedStores = %d after rewind, want 2", top.EvictedStores)
	}
}

func TestJournalRewindPopsExecutions(t *testing.T) {
	const a = Addr(0x200)
	s := journalStack(a)
	m := s.Mark()
	for i := 0; i < 3; i++ {
		e := s.Push()
		e.Append(a, byte(i), Seq(10+i))
		cands := s.ReadPreFailure(a)
		s.DoRead(a, cands[0])
	}
	if s.Depth() != 4 {
		t.Fatalf("depth = %d before rewind", s.Depth())
	}
	s.Rewind(m)
	if s.Depth() != 1 || s.Top().ID != 0 {
		t.Errorf("depth = %d, top ID = %d after rewind", s.Depth(), s.Top().ID)
	}
}

func TestJournalVacuousLineNeutral(t *testing.T) {
	// A line first materialized after the mark stays in the map after a
	// rewind, holding the unconstrained [0, ∞): candidate enumeration must
	// not distinguish it from a line never materialized.
	const a = Addr(0x300)
	s := journalStack(a)
	const other = Addr(0x340) // different cache line, one pre-failure store
	s.Top().Append(other, 0x55, 4)
	s.Top().EvictedStores++
	m := s.Mark()

	s.Push()
	cands := s.ReadPreFailure(other)
	want := candSeqs(cands)
	s.DoRead(other, cands[0]) // materializes + refines other's line
	s.Rewind(m)

	if !s.Top().LineKnown(other) {
		t.Skip("line was not retained — nothing to check")
	}
	if iv := s.Top().CacheLine(other); *iv != (Interval{Begin: 0, End: SeqInf}) {
		t.Fatalf("rewound line interval = %+v, want vacuous", *iv)
	}
	s.Push()
	if got := candSeqs(s.ReadPreFailure(other)); len(got) != len(want) {
		t.Errorf("candidates with vacuous line = %v, want %v", got, want)
	}
}

func TestRetainedBytesTracksJournal(t *testing.T) {
	const a = Addr(0x400)
	s := NewStack()
	if s.RetainedBytes() != 0 {
		t.Error("unjournaled stack retains bytes")
	}
	s.EnableJournal()
	base := s.RetainedBytes()
	m := s.Mark()
	for i := 0; i < 8; i++ {
		s.Top().Append(a+Addr(i), byte(i), Seq(i+1))
	}
	s.FlushLine(a, 4)
	s.Push()
	s.DoRead(a, s.ReadPreFailure(a)[0])
	grown := s.RetainedBytes()
	if grown <= base {
		t.Errorf("RetainedBytes = %d after writes, want > %d", grown, base)
	}
	s.Rewind(m)
	if got := s.RetainedBytes(); got != base {
		t.Errorf("RetainedBytes = %d after rewind, want %d", got, base)
	}
}
