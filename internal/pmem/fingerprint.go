package pmem

import "slices"

// Canonical fingerprinting of post-failure persisted state.
//
// Two failure points are equivalent — their recovery subtrees explore the
// identical set of behaviours — when recovery faces the same reachable state:
// for every byte, the same sequence of reachable candidate values, under
// interval constraints that refine the same way. Absolute sequence numbers do
// not matter for that: the candidate enumeration (Figure 9) and the
// constraint refinement (Figure 10) only ever compare sequence numbers that
// are either reachable store sequences or the line's own interval bounds, and
// never compare sequences across cache lines. Fingerprint therefore hashes,
// per execution and per touched line, the *rank* of each relevant sequence
// within the line's own relevant set {Begin, End} ∪ {reachable store seqs} —
// an order-isomorphism-invariant encoding — together with the store values
// and the absolute byte addresses. Unreachable stores (at or beyond the
// line's End, or older than a settled store) are excluded: they can never be
// enumerated as candidates, and every refinement bound derived from them is
// provably a no-op (an execution whose stores all lie at or beyond End
// contributes no candidates, so its First-store lowerEnd never fires with an
// effective bound; stores older than a settled store are shadowed by it).
//
// Each touched line is hashed independently (FNV-1a over a canonical byte
// stream: absolute line address, bound ranks, bytes in address order,
// candidates newest-first) and the per-line hashes are combined by XOR —
// commutative, so the result is fully deterministic regardless of page-map
// iteration order or of the choice prefix that produced the state. The
// line hashes are cached in the line records and invalidated on every
// store append, interval mutation, and journal rewind, making a fingerprint
// O(lines changed since the last fingerprint) instead of O(lines touched):
// consecutive failure points differ in a handful of lines, and a snapshot
// restore rewinds only its delta, so almost all line hashes survive from
// scenario to scenario.

const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// FingerprintSeed is the canonical initial hash state.
const FingerprintSeed = uint64(fnvOffset64)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

func fnvU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v>>(8*uint(i))))
	}
	return h
}

// Fingerprint folds a canonical hash of the scenario's persisted state into
// h: every execution currently on the stack, bottom-up. At a failure point
// the top execution's cache is part of the state recovery will read from, so
// all executions participate.
func (s *Stack) Fingerprint(h uint64) uint64 {
	for _, e := range s.execs {
		h = e.fingerprint(h)
	}
	return h
}

// fingerprint folds this execution's reachable persisted state into h:
// the XOR of every touched line's (cached) canonical hash, plus the line
// count.
func (e *Execution) fingerprint(h uint64) uint64 {
	h = fnvU64(h, uint64(e.ID)+1)
	var acc, lines uint64
	for id, pg := range e.pages {
		base := id << pageShift
		for li := range pg.lines {
			lr := &pg.lines[li]
			if lr.tail == 0 {
				continue
			}
			if !lr.fpOK {
				lr.fp = e.lineFingerprint(pg, base+Addr(li*CacheLineSize), lr)
				lr.fpOK = true
			}
			acc ^= lr.fp
			lines++
		}
	}
	h = fnvU64(h, lines)
	return fnvU64(h, acc)
}

// lineFingerprint computes one line's self-contained canonical hash. It
// depends only on the line's own stores and interval (ranks never compare
// sequences across lines), so the result is cacheable until either mutates.
func (e *Execution) lineFingerprint(pg *page, line Addr, lr *lineRec) uint64 {
	begin, end := Seq(0), SeqInf
	if lr.known {
		begin, end = lr.iv.Begin, lr.iv.End
	}
	// Pass 1: collect the line's relevant sequences — the interval
	// bounds plus every reachable store — and rank them.
	seqs := append(e.fpSeqs[:0], begin, end)
	for off := Addr(0); off < CacheLineSize; off++ {
		a := line + off
		for i := pg.slots[a&pageMask].tail; i != 0; {
			nd := &e.arena[i-1]
			i = nd.prev
			if nd.seq >= end {
				continue
			}
			seqs = append(seqs, nd.seq)
			if nd.seq <= begin {
				break // settled: older stores are unreachable
			}
		}
	}
	slices.Sort(seqs)
	seqs = slices.Compact(seqs)
	e.fpSeqs = seqs
	rank := func(v Seq) uint64 {
		i, _ := slices.BinarySearch(seqs, v)
		return uint64(i)
	}
	// Pass 2: hash the line — absolute address, bound ranks, then each
	// byte's reachable candidates newest-first as (value, rank) pairs
	// with a settled/open terminator.
	h := uint64(fnvOffset64)
	h = fnvU64(h, uint64(line))
	h = fnvU64(h, rank(begin))
	h = fnvU64(h, rank(end))
	for off := Addr(0); off < CacheLineSize; off++ {
		a := line + off
		tail := pg.slots[a&pageMask].tail
		if tail == 0 {
			continue
		}
		h = fnvU64(h, uint64(off)+1)
		settled := false
		for i := tail; i != 0; {
			nd := &e.arena[i-1]
			i = nd.prev
			if nd.seq >= end {
				continue
			}
			h = fnvByte(h, nd.val)
			h = fnvU64(h, rank(nd.seq))
			if nd.seq <= begin {
				settled = true
				break
			}
		}
		if settled {
			h = fnvByte(h, 1)
		} else {
			h = fnvByte(h, 0)
		}
	}
	return h
}
