package pmem

// Undo journaling for the snapshot engine (see internal/core/snapshot.go).
//
// The paper's Jaaru amortizes the shared pre-failure execution with fork():
// every failure scenario resumes from a cheap process snapshot instead of
// re-running the program. Our deterministic-replay substitution gets the
// same amortization by making the scenario Stack rewindable:
//
//   - Per-byte store queues are append-only, so a snapshot shares them by
//     reference and records only their lengths. An append log (one Addr per
//     appended byte, kept per execution while journaling) makes truncation
//     back to a recorded length O(appends undone).
//   - Per-cache-line intervals are NOT append-only: post-failure constraint
//     refinement (DoRead/updateRanges) raises Begin and lowers End of
//     pre-failure lines in place. Every effective interval mutation is
//     therefore recorded in an undo journal holding the pre-mutation value,
//     and a rewind plays the journal backwards.
//   - Executions pushed after a snapshot are simply popped; their queues and
//     intervals die with them (interval undo entries referencing them are
//     applied before the pop, while the pointers are still live — harmless).
//
// Lazily materialized cache lines (CacheLine creating the vacuous [0, ∞))
// are deliberately not journaled: a rewind restores any refined line to its
// recorded bounds, and a line materialized after the mark merely remains in
// the map with its vacuous interval, which is semantically identical to an
// unmaterialized line for candidate enumeration.

// ivUndo is one undo-journal entry: the interval's value before a mutation.
type ivUndo struct {
	iv  *Interval
	old Interval
}

// journal accumulates undoable interval mutations of one Stack.
type journal struct {
	ivlog []ivUndo
}

// Mark identifies a rewindable point in a journaled Stack's history.
type Mark struct {
	// Depth is the number of executions on the stack.
	Depth int
	// TopAppends is the append-log length of the then-top execution. Only
	// the top execution receives appends, so deeper marks never need it.
	TopAppends int
	// Intervals is the interval undo-journal length.
	Intervals int
}

// EnableJournal switches the stack into journaling mode: subsequent store
// appends and interval mutations become rewindable via Mark/Rewind. It must
// be called before any mutation that a later Rewind is expected to undo
// (in practice: right after NewStack).
func (s *Stack) EnableJournal() {
	if s.j != nil {
		return
	}
	s.j = &journal{}
	for _, e := range s.execs {
		e.logAppends = true
	}
}

// Journaling reports whether the stack records undo information.
func (s *Stack) Journaling() bool { return s.j != nil }

// Mark captures the current rewind point. The stack must be journaling.
func (s *Stack) Mark() Mark {
	return Mark{
		Depth:      len(s.execs),
		TopAppends: len(s.Top().appendLog),
		Intervals:  len(s.j.ivlog),
	}
}

// Rewind restores the stack to the state captured by m: interval mutations
// performed since the mark are undone newest-first, executions pushed since
// are popped, and stores appended to the then-top execution since are
// truncated away.
func (s *Stack) Rewind(m Mark) {
	log := s.j.ivlog
	for i := len(log) - 1; i >= m.Intervals; i-- {
		*log[i].iv = log[i].old
	}
	s.j.ivlog = log[:m.Intervals]
	for i := m.Depth; i < len(s.execs); i++ {
		s.execs[i] = nil
	}
	s.execs = s.execs[:m.Depth]
	s.execs[m.Depth-1].truncateAppends(m.TopAppends)
}

// FlushLine applies a flush effect (clflush or a buffered writeback) to the
// top execution's line containing a, journaled: the line's most-recent-
// writeback lower bound is raised to at least `at`.
func (s *Stack) FlushLine(a Addr, at Seq) {
	top := s.Top()
	s.raiseBegin(FlushRaise, top.ID, a.Line(), top.CacheLine(a), at)
}

// raiseBegin / lowerEnd are the journaled forms of Interval.RaiseBegin and
// Interval.LowerEnd: effective mutations record the pre-mutation value and
// carry their provenance (kind, execution, line) to the interval tracer.
func (s *Stack) raiseBegin(kind IntervalEventKind, exec int, line Addr, iv *Interval, v Seq) {
	if v <= iv.Begin {
		return
	}
	if s.j != nil {
		s.j.ivlog = append(s.j.ivlog, ivUndo{iv: iv, old: *iv})
	}
	before := *iv
	iv.Begin = v
	if s.tracer != nil {
		s.tracer(IntervalEvent{
			Kind: kind, Exec: exec, Line: line, At: v, Before: before, After: *iv})
	}
}

func (s *Stack) lowerEnd(kind IntervalEventKind, exec int, line Addr, iv *Interval, v Seq) {
	if v >= iv.End {
		return
	}
	if s.j != nil {
		s.j.ivlog = append(s.j.ivlog, ivUndo{iv: iv, old: *iv})
	}
	before := *iv
	iv.End = v
	if s.tracer != nil {
		s.tracer(IntervalEvent{
			Kind: kind, Exec: exec, Line: line, At: v, Before: before, After: *iv})
	}
}

// RetainedBytes estimates the memory retained by the journaled state a
// snapshot shares: live store-queue entries plus undo-journal entries
// (both ~24 bytes each including slice overhead). Cheap: O(stack depth).
func (s *Stack) RetainedBytes() int64 {
	if s.j == nil {
		return 0
	}
	var entries int64
	for _, e := range s.execs {
		entries += int64(len(e.appendLog))
	}
	return (entries + int64(len(s.j.ivlog))) * 24
}
