package pmem

// Undo journaling for the snapshot engine (see internal/core/snapshot.go).
//
// The paper's Jaaru amortizes the shared pre-failure execution with fork():
// every failure scenario resumes from a cheap process snapshot instead of
// re-running the program. Our deterministic-replay substitution gets the
// same amortization by making the scenario Stack rewindable:
//
//   - Per-byte store queues are append-only and live in one per-execution
//     arena (page.go), so a snapshot shares them by reference and records
//     only the arena length. Each arena node carries its byte address, so
//     truncation back to a recorded length unlinks the popped stores from
//     their page headers in O(appends undone) — the arena doubles as the
//     append log a journal would otherwise keep separately.
//   - Per-cache-line intervals are NOT append-only: post-failure constraint
//     refinement (DoRead/updateRanges) raises Begin and lowers End of
//     pre-failure lines in place. Every effective interval mutation is
//     therefore recorded in an undo journal holding the pre-mutation value,
//     and a rewind plays the journal backwards. Because the per-line
//     dirty-store counter depends on Begin, a rewind recounts the dirty
//     stores of every surviving line whose interval it restored (after the
//     arena truncation, so the count sees the final store chain).
//   - Executions pushed after a snapshot are simply popped back to the pool;
//     their stores and intervals die with them (interval undo entries
//     referencing them are applied before the pool zeroes their pages, while
//     the pointers are still live — harmless).
//
// Lazily materialized cache lines (CacheLine creating the vacuous [0, ∞))
// are deliberately not journaled: a rewind restores any refined line to its
// recorded bounds, and a line materialized after the mark merely remains
// known with its vacuous interval, which is semantically identical to an
// unknown line for candidate enumeration.

// ivUndo is one undo-journal entry: the line record's interval value before
// a mutation, plus the owning execution (to recount dirty stores on rewind
// and to skip records of popped executions).
type ivUndo struct {
	e   *Execution
	rec *lineRec
	old Interval
}

// Mark identifies a rewindable point in a journaled Stack's history.
type Mark struct {
	// Depth is the number of executions on the stack.
	Depth int
	// TopAppends is the arena length of the then-top execution. Only the
	// top execution receives appends, so deeper marks never need it.
	TopAppends int
	// Intervals is the interval undo-journal length.
	Intervals int
}

// EnableJournal switches the stack into journaling mode: subsequent store
// appends and interval mutations become rewindable via Mark/Rewind. It must
// be called before any mutation that a later Rewind is expected to undo
// (in practice: right after NewStack).
func (s *Stack) EnableJournal() { s.journaling = true }

// Journaling reports whether the stack records undo information.
func (s *Stack) Journaling() bool { return s.journaling }

// Mark captures the current rewind point. The stack must be journaling.
func (s *Stack) Mark() Mark {
	return Mark{
		Depth:      len(s.execs),
		TopAppends: len(s.Top().arena),
		Intervals:  len(s.ivlog),
	}
}

// Rewind restores the stack to the state captured by m: interval mutations
// performed since the mark are undone newest-first, executions pushed since
// are popped back to the pool, stores appended to the then-top execution
// since are truncated away, and the dirty-store counters of the surviving
// restored lines are recomputed last (recounting is idempotent and must see
// the post-truncation store chains).
func (s *Stack) Rewind(m Mark) {
	surviving := s.rewindScratch[:0]
	for i := len(s.ivlog) - 1; i >= m.Intervals; i-- {
		u := s.ivlog[i]
		u.rec.iv = u.old
		u.rec.fpOK = false
		if u.e.ID < m.Depth {
			surviving = append(surviving, u)
		}
	}
	s.ivlog = s.ivlog[:m.Intervals]
	for i := len(s.execs) - 1; i >= m.Depth; i-- {
		s.pool.putExec(s.execs[i])
		s.execs[i] = nil
	}
	s.execs = s.execs[:m.Depth]
	s.execs[m.Depth-1].truncateArena(m.TopAppends)
	for _, u := range surviving {
		u.e.recountDirty(u.rec)
	}
	s.rewindScratch = surviving[:0]
	// Intervals (and possibly the execution range) moved: refinement memos
	// recorded against the pre-rewind state must stop matching.
	s.refEpoch++
}

// FlushLine applies a flush effect (clflush or a buffered writeback) to the
// top execution's line containing a, journaled: the line's most-recent-
// writeback lower bound is raised to at least `at`.
func (s *Stack) FlushLine(a Addr, at Seq) {
	s.raiseBegin(FlushRaise, s.Top(), a, at)
}

// raiseBegin / lowerEnd are the journaled, dirty-count-maintaining forms of
// Interval.RaiseBegin and Interval.LowerEnd: effective mutations record the
// pre-mutation value and carry their provenance (kind, execution, line) to
// the interval tracer. An unknown line reads as the vacuous [0, ∞) and is
// materialized only by an effective mutation.
func (s *Stack) raiseBegin(kind IntervalEventKind, e *Execution, a Addr, v Seq) {
	lr := e.peekLine(a)
	if lr != nil && lr.known {
		if v <= lr.iv.Begin {
			return
		}
	} else {
		if v == 0 {
			return
		}
		lr = e.ensureLine(a)
	}
	if s.journaling {
		s.ivlog = append(s.ivlog, ivUndo{e: e, rec: lr, old: lr.iv})
	}
	s.refEpoch++
	before := lr.iv
	lr.iv.Begin = v
	lr.fpOK = false
	e.recountDirty(lr)
	if s.tracer != nil {
		s.tracer(IntervalEvent{
			Kind: kind, Exec: e.ID, Line: a.Line(), At: v, Before: before, After: lr.iv})
	}
}

func (s *Stack) lowerEnd(kind IntervalEventKind, e *Execution, a Addr, v Seq) {
	lr := e.peekLine(a)
	if lr != nil && lr.known {
		if v >= lr.iv.End {
			return
		}
	} else {
		if v == SeqInf {
			return
		}
		lr = e.ensureLine(a)
	}
	if s.journaling {
		s.ivlog = append(s.ivlog, ivUndo{e: e, rec: lr, old: lr.iv})
	}
	s.refEpoch++
	before := lr.iv
	lr.iv.End = v
	lr.fpOK = false
	if s.tracer != nil {
		s.tracer(IntervalEvent{
			Kind: kind, Exec: e.ID, Line: a.Line(), At: v, Before: before, After: lr.iv})
	}
}

// RetainedBytes estimates the memory retained by the journaled state a
// snapshot shares: live arena store entries plus undo-journal entries
// (both ~24 bytes each). Cheap: O(stack depth).
func (s *Stack) RetainedBytes() int64 {
	if !s.journaling {
		return 0
	}
	var entries int64
	for _, e := range s.execs {
		entries += int64(len(e.arena))
	}
	return (entries + int64(len(s.ivlog))) * 24
}
