package pmem

import (
	"fmt"
	"reflect"
	"testing"
)

// The interval tracer: every effective interval mutation — flush raises and
// the DoRead refinements of Figure 10 — is reported with its provenance and
// the before/after interval; ineffective mutations stay silent, and the nil
// default is a no-op (every other test in this package runs untraced).
func TestIntervalTracerReportsEffectiveMutations(t *testing.T) {
	s := NewStack()
	var got []string
	s.SetIntervalTracer(func(ev IntervalEvent) {
		got = append(got, fmt.Sprintf("%d exec%d %v [%d,%v)->[%d,%v) at %d",
			ev.Kind, ev.Exec, ev.Line,
			ev.Before.Begin, ev.Before.End, ev.After.Begin, ev.After.End, ev.At))
	})

	// Pre-failure: two stores to one line, a flush, then a failure.
	e0 := s.Top()
	e0.Append(0x1000, 1, 3)
	e0.Append(0x1040, 9, 4) // second line, first store at σ4
	s.FlushLine(0x1000, 5)  // raise Begin to 5
	s.FlushLine(0x1000, 2)  // ineffective: Begin already 5
	s.Push()

	// Post-failure: reading the flushed line's store refines exec 0 — Begin
	// raised to the chosen σ3 is ineffective (already 5), End lowered to ∞
	// is ineffective too; reading the *unflushed* line from the initial pool
	// lowers exec 0's End for that line to its first store σ4.
	s.DoRead(0x1000, Candidate{Exec: 0, ByteStore: ByteStore{Val: 1, Seq: 3}})
	s.DoRead(0x1040, Candidate{Exec: InitialExec})

	want := []string{
		fmt.Sprintf("%d exec0 %v [0,∞)->[5,∞) at 5", FlushRaise, Addr(0x1000)),
		fmt.Sprintf("%d exec0 %v [0,∞)->[0,4) at 4", RefineLower, Addr(0x1040)),
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tracer events:\n got %q\nwant %q", got, want)
	}
}

// Refinements driven by reading a store inside the writeback window raise
// Begin and lower End on the source execution (Figure 10, source branch).
func TestIntervalTracerSourceExecRefinement(t *testing.T) {
	s := NewStack()
	e0 := s.Top()
	e0.Append(0x2000, 1, 3)
	e0.Append(0x2000, 2, 7) // next store to the same byte at σ7
	s.Push()

	var kinds []IntervalEventKind
	var ats []Seq
	s.SetIntervalTracer(func(ev IntervalEvent) {
		kinds = append(kinds, ev.Kind)
		ats = append(ats, ev.At)
	})
	// Read the older store ⟨1, σ3⟩: Begin rises to 3, End drops to the next
	// store's σ7.
	s.DoRead(0x2000, Candidate{Exec: 0, ByteStore: ByteStore{Val: 1, Seq: 3}})

	wantKinds := []IntervalEventKind{RefineRaise, RefineLower}
	wantAts := []Seq{3, 7}
	if !reflect.DeepEqual(kinds, wantKinds) || !reflect.DeepEqual(ats, wantAts) {
		t.Errorf("got kinds %v at %v, want %v at %v", kinds, ats, wantKinds, wantAts)
	}
}
