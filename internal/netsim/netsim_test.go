package netsim

import (
	"testing"

	"jaaru/internal/core"
)

func trace1() Trace {
	return Trace{
		{Op: OpSet, Key: 1, Val: 10},
		{Op: OpSet, Key: 2, Val: 20},
		{Op: OpAdd, Key: 1, Val: 5},
		{Op: OpGet, Key: 2},
		{Op: OpDel, Key: 2},
		{Op: OpAdd, Key: 3, Val: 7},
		{Op: OpSet, Key: 1, Val: 99},
	}
}

func TestConnReplay(t *testing.T) {
	tr := trace1()
	conn := NewConn(tr, 2)
	req, seq, ok := conn.Recv()
	if !ok || seq != 2 || req.Op != OpAdd {
		t.Fatalf("Recv = %v %d %v", req, seq, ok)
	}
	n := 1
	for {
		if _, _, ok := conn.Recv(); !ok {
			break
		}
		n++
	}
	if n != len(tr)-2 {
		t.Errorf("replayed %d requests, want %d", n, len(tr)-2)
	}
	conn.Send(Response{OK: true, Val: 7})
	if r := conn.Responses(); len(r) != 1 || r[0].Val != 7 {
		t.Errorf("responses = %v", r)
	}
}

func TestTraceExpected(t *testing.T) {
	tr := trace1()
	full := tr.Expected(uint64(len(tr)))
	if full[1] != 99 || full[3] != 7 {
		t.Errorf("Expected(full) = %v", full)
	}
	if _, ok := full[2]; ok {
		t.Error("deleted key survived in Expected")
	}
	mid := tr.Expected(3)
	if mid[1] != 15 || mid[2] != 20 {
		t.Errorf("Expected(3) = %v", mid)
	}
	if len(tr.Expected(0)) != 0 {
		t.Error("Expected(0) not empty")
	}
}

func TestServerDirect(t *testing.T) {
	res := core.Execute("kvserver-direct", func(c *core.Context) {
		tr := trace1()
		s := StartServer(c, 4, ServerBugs{})
		conn := NewConn(tr, 0)
		s.Serve(conn)
		s.CheckAgainst(tr.Expected(uint64(len(tr))))
		// GET responses reflect the state at their position in the trace.
		resp := conn.Responses()
		if len(resp) != len(tr) {
			t.Fatalf("%d responses for %d requests", len(resp), len(tr))
		}
		if !resp[3].OK || resp[3].Val != 20 {
			t.Errorf("GET 2 response = %+v", resp[3])
		}
	}, core.Options{})
	if res.Buggy() {
		t.Fatalf("bugs: %v", res.Bugs[0])
	}
}

// The exactly-once server must survive a failure at every point of the
// trace: the recovered store matches the applied prefix, and resuming the
// replay converges to the full trace — including the non-idempotent ADDs.
func TestServerExactlyOnceUnderFailures(t *testing.T) {
	res := core.New(Program("kvserver", trace1(), ServerBugs{}), core.Options{}).Run()
	if res.Buggy() {
		t.Fatalf("bugs: %v\nchoices: %s", res.Bugs[0], res.Bugs[0].Choices)
	}
	if !res.Complete {
		t.Fatal("exploration incomplete")
	}
	if res.FailurePoints < 10 {
		t.Errorf("only %d failure points", res.FailurePoints)
	}
}

// With the applied counter committed outside the mutation's transaction, a
// crash between the two replays a request — the ADDs make it visible.
func TestServerSeqOutsideTxBug(t *testing.T) {
	res := core.New(Program("kvserver-buggy", trace1(), ServerBugs{SeqOutsideTx: true}),
		core.Options{StopAtFirstBug: true}).Run()
	if !res.Buggy() {
		t.Fatal("split-transaction replay bug not detected")
	}
	if res.Bugs[0].Type != core.BugAssertion {
		t.Errorf("manifestation = %v", res.Bugs[0])
	}
}

// Multi-failure: the server must stay exactly-once across repeated crashes
// (a failure during the recovery replay itself).
func TestServerExactlyOnceTwoFailures(t *testing.T) {
	short := Trace{
		{Op: OpAdd, Key: 1, Val: 1},
		{Op: OpAdd, Key: 1, Val: 2},
		{Op: OpAdd, Key: 1, Val: 4},
	}
	res := core.New(Program("kvserver-2f", short, ServerBugs{}),
		core.Options{MaxFailures: 2}).Run()
	if res.Buggy() {
		t.Fatalf("bugs: %v\nchoices: %s", res.Bugs[0], res.Bugs[0].Choices)
	}
	if !res.Complete {
		t.Fatal("exploration incomplete")
	}
}

func TestMergeTraces(t *testing.T) {
	a := Trace{{Op: OpSet, Key: 1, Val: 1}, {Op: OpSet, Key: 1, Val: 2}}
	b := Trace{{Op: OpSet, Key: 2, Val: 9}}
	m := Merge(a, b)
	if len(m) != 3 || m[0].Key != 1 || m[1].Key != 2 || m[2].Val != 2 {
		t.Fatalf("Merge = %v", m)
	}
	if len(Merge()) != 0 {
		t.Error("empty merge not empty")
	}
}

// A two-client session, merged and checked under failures.
func TestServerTwoClientsUnderFailures(t *testing.T) {
	client1 := Trace{
		{Op: OpSet, Key: 1, Val: 100},
		{Op: OpAdd, Key: 1, Val: 11},
	}
	client2 := Trace{
		{Op: OpSet, Key: 2, Val: 200},
		{Op: OpDel, Key: 1},
	}
	res := core.New(Program("kvserver-2c", Merge(client1, client2), ServerBugs{}),
		core.Options{}).Run()
	if res.Buggy() {
		t.Fatalf("bugs: %v", res.Bugs[0])
	}
	if !res.Complete {
		t.Fatal("exploration incomplete")
	}
}
