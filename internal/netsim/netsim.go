// Package netsim is a deterministic network substrate for model checking
// server programs. The paper's key limitation (§5) is that programs such as
// Redis and Memcached "interact with the outside world and [their]
// non-determinism from the network would require deterministic replay for a
// model checker to work"; it suggests integrating "with existing
// record-and-replay debugging frameworks to lift this limitation". This
// package is that integration in miniature: client interactions are
// recorded as a Trace, and a Conn replays them to the guest server
// identically in every explored execution, so the only nondeterminism left
// is the persistency nondeterminism Jaaru explores.
package netsim

import "fmt"

// Op is a client request operation.
type Op int

const (
	// OpSet stores a key.
	OpSet Op = iota
	// OpGet reads a key.
	OpGet
	// OpDel removes a key.
	OpDel
	// OpAdd increments a key's value (non-idempotent: the operation that
	// exposes missing exactly-once bookkeeping across failures).
	OpAdd
)

func (o Op) String() string {
	switch o {
	case OpSet:
		return "SET"
	case OpGet:
		return "GET"
	case OpDel:
		return "DEL"
	case OpAdd:
		return "ADD"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Request is one recorded client request.
type Request struct {
	Op  Op
	Key uint64
	Val uint64
}

func (r Request) String() string {
	switch r.Op {
	case OpSet:
		return fmt.Sprintf("%v %d=%d", r.Op, r.Key, r.Val)
	case OpAdd:
		return fmt.Sprintf("%v %d+=%d", r.Op, r.Key, r.Val)
	default:
		return fmt.Sprintf("%v %d", r.Op, r.Key)
	}
}

// Response is the server's answer to one request.
type Response struct {
	OK  bool
	Val uint64
}

// Trace is a recorded client session.
type Trace []Request

// Conn replays a Trace to a guest server, one request per Recv, starting
// at a given sequence number — the replay side of record-and-replay. The
// response log is volatile, like a socket buffer: it does not survive a
// simulated power failure.
type Conn struct {
	trace     Trace
	next      int
	responses []Response
}

// NewConn opens a replay connection delivering trace[from:].
func NewConn(trace Trace, from uint64) *Conn {
	n := int(from)
	if n > len(trace) {
		n = len(trace)
	}
	return &Conn{trace: trace, next: n}
}

// Recv delivers the next recorded request; ok is false at end of trace.
// Seq is the request's position in the full trace, used by exactly-once
// servers to deduplicate replayed requests across failures.
func (c *Conn) Recv() (req Request, seq uint64, ok bool) {
	if c.next >= len(c.trace) {
		return Request{}, 0, false
	}
	req = c.trace[c.next]
	seq = uint64(c.next)
	c.next++
	return req, seq, true
}

// Send records a response (volatile).
func (c *Conn) Send(r Response) { c.responses = append(c.responses, r) }

// Responses returns the responses sent so far on this connection.
func (c *Conn) Responses() []Response { return c.responses }

// Merge interleaves several recorded client sessions round-robin into the
// single total order the server observed — the record side of checking a
// multi-client server: the merged trace replays identically in every
// explored execution.
func Merge(traces ...Trace) Trace {
	var out Trace
	idx := make([]int, len(traces))
	for {
		progress := false
		for i, tr := range traces {
			if idx[i] < len(tr) {
				out = append(out, tr[idx[i]])
				idx[i]++
				progress = true
			}
		}
		if !progress {
			return out
		}
	}
}

// Expected computes the key-value map a correct server holds after
// applying exactly trace[:n].
func (t Trace) Expected(n uint64) map[uint64]uint64 {
	m := make(map[uint64]uint64)
	for i, r := range t {
		if uint64(i) >= n {
			break
		}
		switch r.Op {
		case OpSet:
			m[r.Key] = r.Val
		case OpDel:
			delete(m, r.Key)
		case OpAdd:
			m[r.Key] += r.Val
		}
	}
	return m
}
