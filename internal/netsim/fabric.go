package netsim

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"
)

// Fabric is the distributed-exploration analog of this package's recorded
// client traces: a deterministic in-process HTTP transport. Worker peers
// talk to an http.Handler (the dist coordinator) through per-peer clients
// whose faults — transient failures, dropped replies, partitions, and
// permanent kills — are injected by the test instead of arising from a real
// network, so the whole coordinator/worker path runs reproducibly inside
// go test.
//
// Every request is served synchronously on the caller's goroutine via an
// httptest recorder; there are no real sockets, timers, or buffers, so the
// only nondeterminism left in a fabric-backed distributed run is goroutine
// scheduling — which the dist protocol's order-insensitive merge absorbs.
type Fabric struct {
	handler http.Handler

	mu    sync.Mutex
	peers map[string]*peerState
	clock *Clock
}

type peerState struct {
	// requests counts attempts by this peer, including faulted ones.
	requests int
	// killAfter kills the peer permanently after that many successful
	// requests (0: never).
	killAfter int
	dead      bool
	// failNext fails the next n requests before they reach the handler
	// (transient outage; the peer recovers afterwards).
	failNext int
	// dropNext lets the next n requests reach the handler but drops the
	// responses (exercises retry idempotency on the receiver).
	dropNext int
	// partitioned fails every request until healed.
	partitioned bool
	// latency is the injected one-way hop delay: the fabric clock advances
	// by latency before the handler runs (request hop) and again after it
	// returns (reply hop), so a successful round trip costs exactly
	// 2*latency on the fake timeline. Requires a clock via SetClock.
	latency time.Duration
	// bytesTx counts request-body bytes the peer put on the wire (requests
	// that reached the handler; faulted-in-transit requests never left).
	// bytesRx counts response-body bytes delivered back (dropped replies
	// are not delivered, so they don't count).
	bytesTx int64
	bytesRx int64
}

// NewFabric wraps a handler (typically a dist.Coordinator) in a
// deterministic transport.
func NewFabric(h http.Handler) *Fabric {
	return &Fabric{handler: h, peers: make(map[string]*peerState)}
}

func (f *Fabric) peer(name string) *peerState {
	p, ok := f.peers[name]
	if !ok {
		p = &peerState{}
		f.peers[name] = p
	}
	return p
}

// KillAfter kills peer permanently after its next n successful requests —
// the "worker dies mid-lease" fault. n = 0 kills immediately.
func (f *Fabric) KillAfter(peer string, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p := f.peer(peer)
	if n <= 0 {
		p.dead = true
		return
	}
	p.killAfter = p.requests + n
}

// FailNext makes peer's next n requests fail in transit (before reaching
// the handler); the peer recovers afterwards.
func (f *Fabric) FailNext(peer string, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.peer(peer).failNext = n
}

// DropReplies lets peer's next n requests reach the handler but loses the
// responses — the fault that forces duplicate commit deliveries.
func (f *Fabric) DropReplies(peer string, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.peer(peer).dropNext = n
}

// SetClock installs the fake clock that per-hop latency advances. The same
// clock should drive the coordinator's and workers' Now, so injected network
// delay is visible to lease TTLs and to RPC round-trip timing.
func (f *Fabric) SetClock(c *Clock) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.clock = c
}

// SetLatency injects a deterministic one-way hop delay for peer: every
// successful request advances the fabric clock by d on the way in and d on
// the way out (dropped replies still pay both hops — the handler ran and the
// reply was lost in transit; transit failures pay none). A zero d removes
// the delay. No-op timing-wise until SetClock installs a clock.
func (f *Fabric) SetLatency(peer string, d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.peer(peer).latency = d
}

// Partition isolates (or heals) a peer.
func (f *Fabric) Partition(peer string, isolated bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.peer(peer).partitioned = isolated
}

// Requests reports how many requests the peer has attempted.
func (f *Fabric) Requests(peer string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.peer(peer).requests
}

// Bytes reports the peer's wire-byte totals: request-body bytes sent toward
// the handler and response-body bytes delivered back. Both counts are exact
// and deterministic — the fabric measures the serialized bodies on each hop,
// so codec-level size changes (JSON vs binary) are directly observable in
// tests and benchmarks.
func (f *Fabric) Bytes(peer string) (tx, rx int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p := f.peer(peer)
	return p.bytesTx, p.bytesRx
}

// TotalBytes sums both directions across every peer — the whole fleet's wire
// traffic.
func (f *Fabric) TotalBytes() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var total int64
	for _, p := range f.peers {
		total += p.bytesTx + p.bytesRx
	}
	return total
}

// Client returns the transport for one named peer. It satisfies the dist
// package's Doer interface.
func (f *Fabric) Client(peer string) *FabricClient {
	return &FabricClient{fabric: f, peer: peer}
}

// FabricClient is one peer's view of the fabric.
type FabricClient struct {
	fabric *Fabric
	peer   string
}

// Do serves the request through the fabric, applying the peer's injected
// faults.
func (c *FabricClient) Do(req *http.Request) (*http.Response, error) {
	f := c.fabric
	f.mu.Lock()
	p := f.peer(c.peer)
	p.requests++
	switch {
	case p.dead:
		f.mu.Unlock()
		return nil, fmt.Errorf("netsim: peer %s is dead", c.peer)
	case p.partitioned:
		f.mu.Unlock()
		return nil, fmt.Errorf("netsim: peer %s is partitioned", c.peer)
	case p.failNext > 0:
		p.failNext--
		f.mu.Unlock()
		return nil, fmt.Errorf("netsim: injected transit failure for %s", c.peer)
	}
	drop := false
	if p.dropNext > 0 {
		p.dropNext--
		drop = true
	}
	if p.killAfter > 0 && p.requests >= p.killAfter {
		p.dead = true
	}
	clock, latency := f.clock, p.latency
	f.mu.Unlock()

	// Measure the request body on its way in (the handler consumes the
	// original reader, so rewrap a copy).
	var reqBytes int64
	if req.Body != nil {
		data, err := io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("netsim: read request body for %s: %w", c.peer, err)
		}
		reqBytes = int64(len(data))
		req.Body = io.NopCloser(bytes.NewReader(data))
	}

	if clock != nil {
		clock.Advance(latency) // request hop
	}
	rec := httptest.NewRecorder()
	f.handler.ServeHTTP(rec, req)
	if clock != nil {
		clock.Advance(latency) // reply hop (paid even when the reply drops)
	}

	f.mu.Lock()
	p.bytesTx += reqBytes
	if !drop {
		p.bytesRx += int64(rec.Body.Len())
	}
	f.mu.Unlock()

	if drop {
		return nil, fmt.Errorf("netsim: reply dropped for %s", c.peer)
	}
	return rec.Result(), nil
}
