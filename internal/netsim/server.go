package netsim

import (
	"jaaru/internal/core"
	"jaaru/internal/pmdk"
)

// KVServer is a persistent-memory key-value server — a Memcached-style
// program of the kind the paper could not check without deterministic
// replay. Every mutation commits together with the request's sequence
// number in one undo transaction, so replaying the recorded trace after a
// failure is exactly-once: recovery reads the applied counter and resumes
// from the first unapplied request.
//
// The seeded bug (SeqOutsideTx) updates the counter in a separate
// transaction after the mutation — a crash in between replays the request,
// which the non-idempotent ADD operation turns into a visible corruption.

const (
	kvStateSize   = 16 // applied (8), dir ptr (8)
	kvNodeSize    = 24 // key, val, next
	kvDirSize     = 8  // nBuckets, then the bucket array
	kvNodeOffKey  = 0
	kvNodeOffVal  = 8
	kvNodeOffNext = 16
)

// ServerBugs selects seeded server bugs.
type ServerBugs struct {
	// SeqOutsideTx commits the applied-sequence update in its own
	// transaction after the mutation's: a crash between the two replays
	// the request on recovery.
	SeqOutsideTx bool
}

// KVServer is bound to one guest context and one pool.
type KVServer struct {
	c        *core.Context
	p        *pmdk.Pool
	state    core.Addr
	dir      core.Addr
	nBuckets uint64
	bugs     ServerBugs
}

// StartServer creates the pool and the server state.
func StartServer(c *core.Context, nBuckets uint64, bugs ServerBugs) *KVServer {
	p := pmdk.Create(c, 4<<20, pmdk.CreateBugs{})
	dir := p.PAlloc(kvDirSize+8*nBuckets, pmdk.HeapBugs{})
	c.Store64(dir, nBuckets)
	c.Persist(dir, kvDirSize+8*nBuckets)
	state := p.PAlloc(kvStateSize, pmdk.HeapBugs{})
	c.Store64(state, 0) // applied = 0
	c.StorePtr(state.Add(8), dir)
	c.Persist(state, kvStateSize)
	p.SetRootObj(state) // commit store
	return &KVServer{c: c, p: p, state: state, dir: dir, nBuckets: nBuckets, bugs: bugs}
}

// RecoverServer re-opens the pool after a failure; ok is false when the
// server never finished starting.
func RecoverServer(c *core.Context, bugs ServerBugs) (*KVServer, bool) {
	p, ok := pmdk.Open(c)
	if !ok {
		return nil, false
	}
	p.TxRecover()
	state := p.RootObj()
	if state == 0 {
		return nil, false
	}
	dir := c.LoadPtr(state.Add(8))
	return &KVServer{
		c: c, p: p, state: state, dir: dir,
		nBuckets: c.Load64(dir), bugs: bugs,
	}, true
}

// Applied returns the sequence number of the first unapplied request.
func (s *KVServer) Applied() uint64 { return s.c.Load64(s.state) }

func (s *KVServer) bucket(key uint64) core.Addr {
	h := key * 0x9E3779B97F4A7C15 >> 32
	return s.dir.Add(kvDirSize + 8*(h%s.nBuckets))
}

// find returns the link holding the node for key (or the chain tail link).
func (s *KVServer) find(key uint64) (link core.Addr, node core.Addr) {
	c := s.c
	link = s.bucket(key)
	for {
		node = c.LoadPtr(link)
		if node == 0 || c.Load64(node.Add(kvNodeOffKey)) == key {
			return link, node
		}
		link = node.Add(kvNodeOffNext)
	}
}

// bumpApplied logs and advances the applied counter within tx.
func (s *KVServer) bumpApplied(tx *pmdk.Tx, seq uint64) {
	tx.Add(s.state, 8)
	s.c.Store64(s.state, seq+1)
}

// Serve drains the connection, applying each request exactly once.
func (s *KVServer) Serve(conn *Conn) {
	c := s.c
	for {
		req, seq, ok := conn.Recv()
		if !ok {
			return
		}
		c.Assert(seq == s.Applied(), "server resumed at seq %d, applied is %d", seq, s.Applied())
		switch req.Op {
		case OpGet:
			_, node := s.find(req.Key)
			tx := s.p.TxBegin(pmdk.TxBugs{})
			s.bumpApplied(tx, seq)
			tx.Commit()
			if node == 0 {
				conn.Send(Response{OK: false})
			} else {
				conn.Send(Response{OK: true, Val: c.Load64(node.Add(kvNodeOffVal))})
			}
		case OpSet:
			s.mutate(seq, req.Key, func(tx *pmdk.Tx, valAddr core.Addr) {
				c.Store64(valAddr, req.Val)
			})
			conn.Send(Response{OK: true})
		case OpAdd:
			s.mutate(seq, req.Key, func(tx *pmdk.Tx, valAddr core.Addr) {
				c.Store64(valAddr, c.Load64(valAddr)+req.Val)
			})
			conn.Send(Response{OK: true})
		case OpDel:
			link, node := s.find(req.Key)
			tx := s.p.TxBegin(pmdk.TxBugs{})
			if node != 0 {
				tx.Add(link, 8)
				c.StorePtr(link, c.LoadPtr(node.Add(kvNodeOffNext)))
			}
			if s.bugs.SeqOutsideTx {
				tx.Commit()
				s.commitSeqSeparately(seq)
			} else {
				s.bumpApplied(tx, seq)
				tx.Commit()
			}
			conn.Send(Response{OK: node != 0})
		}
	}
}

// mutate applies an update to key's value slot (creating the node if
// needed) atomically with the applied counter — unless the seeded bug
// splits them.
func (s *KVServer) mutate(seq, key uint64, apply func(tx *pmdk.Tx, valAddr core.Addr)) {
	c := s.c
	link, node := s.find(key)
	tx := s.p.TxBegin(pmdk.TxBugs{})
	if node == 0 {
		node = s.p.PAlloc(kvNodeSize, pmdk.HeapBugs{})
		c.Store64(node.Add(kvNodeOffKey), key)
		c.Persist(node, kvNodeSize)
		tx.Add(link, 8)
		c.StorePtr(link, node)
	}
	tx.Add(node.Add(kvNodeOffVal), 8)
	apply(tx, node.Add(kvNodeOffVal))
	if s.bugs.SeqOutsideTx {
		tx.Commit()
		s.commitSeqSeparately(seq)
		return
	}
	s.bumpApplied(tx, seq)
	tx.Commit()
}

// commitSeqSeparately is the seeded bug: the applied counter commits in its
// own later transaction.
func (s *KVServer) commitSeqSeparately(seq uint64) {
	tx := s.p.TxBegin(pmdk.TxBugs{})
	s.bumpApplied(tx, seq)
	tx.Commit()
}

// CheckAgainst asserts the store's contents equal the expected map.
func (s *KVServer) CheckAgainst(want map[uint64]uint64) {
	c := s.c
	total := 0
	for b := uint64(0); b < s.nBuckets; b++ {
		node := c.LoadPtr(s.dir.Add(kvDirSize + 8*b))
		steps := 0
		for node != 0 {
			c.Assert(steps < 1<<12, "kvserver: chain cycle in bucket %d", b)
			steps++
			k := c.Load64(node.Add(kvNodeOffKey))
			v := c.Load64(node.Add(kvNodeOffVal))
			wv, ok := want[k]
			c.Assert(ok, "kvserver: key %d should not exist", k)
			c.Assert(v == wv, "kvserver: key %d has value %d, want %d", k, v, wv)
			total++
			node = c.LoadPtr(node.Add(kvNodeOffNext))
		}
	}
	c.Assert(total == len(want), "kvserver: %d keys stored, want %d", total, len(want))
}

// Program builds a checkable server program: the pre-failure execution
// starts the server and serves the trace; recovery resumes serving the
// unapplied suffix and validates the final store against the trace's
// expected contents.
func Program(name string, trace Trace, bugs ServerBugs) core.Program {
	return core.Program{
		Name: name,
		Run: func(c *core.Context) {
			s := StartServer(c, 4, bugs)
			conn := NewConn(trace, 0)
			s.Serve(conn)
			s.CheckAgainst(trace.Expected(uint64(len(trace))))
		},
		Recover: func(c *core.Context) {
			s, ok := RecoverServer(c, bugs)
			if !ok {
				return
			}
			applied := s.Applied()
			c.Assert(applied <= uint64(len(trace)), "applied %d beyond trace", applied)
			// The store must reflect exactly the applied prefix...
			s.CheckAgainst(trace.Expected(applied))
			// ...and resuming the replay must converge to the full trace.
			s.Serve(NewConn(trace, applied))
			s.CheckAgainst(trace.Expected(uint64(len(trace))))
		},
	}
}
