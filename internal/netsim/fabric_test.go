package netsim

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"
)

// echoHandler replies with a fixed-size body and drains the request, like a
// real coordinator endpoint would.
func echoHandler(replySize int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Write(bytes.Repeat([]byte("r"), replySize))
	})
}

func post(t *testing.T, c *FabricClient, body string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, "http://coordinator/x", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return c.Do(req)
}

// TestFabricByteAccounting: the fabric measures serialized bodies per hop —
// request bytes when the request reaches the handler, response bytes when
// the reply is delivered — so wire-codec size changes are directly
// observable in deterministic tests.
func TestFabricByteAccounting(t *testing.T) {
	f := NewFabric(echoHandler(40))
	w1 := f.Client("w1")

	// Two successful exchanges: 10+20 bytes out, 2*40 back.
	for _, body := range []string{strings.Repeat("a", 10), strings.Repeat("b", 20)} {
		resp, err := post(t, w1, body)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if tx, rx := f.Bytes("w1"); tx != 30 || rx != 80 {
		t.Errorf("after 2 exchanges: tx/rx = %d/%d, want 30/80", tx, rx)
	}

	// A dropped reply still counts the request hop (the handler ran) but not
	// the reply (never delivered).
	f.DropReplies("w1", 1)
	if _, err := post(t, w1, strings.Repeat("c", 5)); err == nil {
		t.Fatal("dropped reply did not error")
	}
	if tx, rx := f.Bytes("w1"); tx != 35 || rx != 80 {
		t.Errorf("after drop: tx/rx = %d/%d, want 35/80", tx, rx)
	}

	// A transit failure counts neither hop: the request never left.
	f.FailNext("w1", 1)
	if _, err := post(t, w1, strings.Repeat("d", 100)); err == nil {
		t.Fatal("transit failure did not error")
	}
	if tx, rx := f.Bytes("w1"); tx != 35 || rx != 80 {
		t.Errorf("after transit failure: tx/rx = %d/%d, want 35/80", tx, rx)
	}

	// Per-peer isolation and the fleet-wide total.
	w2 := f.Client("w2")
	resp, err := post(t, w2, strings.Repeat("e", 7))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if tx, rx := f.Bytes("w2"); tx != 7 || rx != 40 {
		t.Errorf("w2 tx/rx = %d/%d, want 7/40", tx, rx)
	}
	if total := f.TotalBytes(); total != 35+80+7+40 {
		t.Errorf("TotalBytes = %d, want %d", total, 35+80+7+40)
	}
}
