package netsim

import (
	"sync"
	"time"
)

// Clock is the package's deterministic fake clock: a mutex-protected instant
// advanced only by explicit Advance calls (never by wall time), so fabric
// tests can drive lease TTL expiry, heartbeat windows, and injected RPC
// latency with exact, race-free arithmetic. Pass Now as the coordinator's
// Config.Now and the worker's WorkerConfig.Now, and install the clock on the
// Fabric with SetClock so per-hop latency (SetLatency) advances the same
// timeline the protocol reads.
type Clock struct {
	mu sync.Mutex
	t  time.Time
}

// NewClock returns a clock pinned to a fixed, arbitrary epoch. The absolute
// value is irrelevant — only differences matter to the protocols under test —
// but keeping it constant makes logged timestamps reproducible.
func NewClock() *Clock {
	return &Clock{t: time.Unix(1_700_000_000, 0)}
}

// Now reads the current instant.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d (negative d is ignored).
func (c *Clock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}
