package benchlist

import (
	"fmt"
	"testing"

	"jaaru/internal/core"
	"jaaru/internal/litmus"
	"jaaru/internal/pmdk"
	"jaaru/internal/recipe"
)

// assertChoiceSnapEquivalent is the bit-identity gate for the choice-point
// snapshot stack: the exploration-level Result fields, the canonical
// observability counters, and the canonical bug order (type, message, count,
// choice vector, in sequence) must all match the replay reference exactly.
func assertChoiceSnapEquivalent(t *testing.T, label string, ref, got *core.Result) {
	t.Helper()
	if got.Scenarios != ref.Scenarios {
		t.Errorf("%s: Scenarios = %d, ref %d", label, got.Scenarios, ref.Scenarios)
	}
	if got.Executions != ref.Executions {
		t.Errorf("%s: Executions = %d, ref %d", label, got.Executions, ref.Executions)
	}
	if got.FailurePoints != ref.FailurePoints {
		t.Errorf("%s: FailurePoints = %d, ref %d", label, got.FailurePoints, ref.FailurePoints)
	}
	if got.Steps != ref.Steps {
		t.Errorf("%s: Steps = %d, ref %d", label, got.Steps, ref.Steps)
	}
	if got.RFChoicePoints != ref.RFChoicePoints {
		t.Errorf("%s: RFChoicePoints = %d, ref %d", label, got.RFChoicePoints, ref.RFChoicePoints)
	}
	if got.FailDecisionPoints != ref.FailDecisionPoints {
		t.Errorf("%s: FailDecisionPoints = %d, ref %d", label, got.FailDecisionPoints, ref.FailDecisionPoints)
	}
	if got.MaxRFCandidates != ref.MaxRFCandidates {
		t.Errorf("%s: MaxRFCandidates = %d, ref %d", label, got.MaxRFCandidates, ref.MaxRFCandidates)
	}
	if got.Complete != ref.Complete {
		t.Errorf("%s: Complete = %v, ref %v", label, got.Complete, ref.Complete)
	}
	if len(got.Bugs) != len(ref.Bugs) {
		t.Fatalf("%s: %d bugs, ref %d", label, len(got.Bugs), len(ref.Bugs))
	}
	for i := range ref.Bugs {
		r, g := ref.Bugs[i], got.Bugs[i]
		if g.Type != r.Type || g.Message != r.Message || g.Count != r.Count || g.Choices != r.Choices {
			t.Errorf("%s: bug %d out of canonical order:\nref: %v (count %d, choices %q)\ngot: %v (count %d, choices %q)",
				label, i, r, r.Count, r.Choices, g, g.Count, g.Choices)
		}
	}
	if (ref.Metrics == nil) != (got.Metrics == nil) {
		t.Fatalf("%s: metrics presence differs", label)
	}
	if ref.Metrics != nil {
		rc, gc := ref.Metrics.Canonical(), got.Metrics.Canonical()
		if rc != gc {
			t.Errorf("%s: canonical metrics differ:\nref: %+v\ngot: %+v", label, rc, gc)
		}
	}
}

// choiceSnapCases is the cross-layer sweep set: the paper's running example
// shapes (commitstore, clean and buggy, plus a two-failure variant), the
// RECIPE structures in insert and update form, and the transactional PMDK
// structures — each built fresh per run.
func choiceSnapCases() []struct {
	name  string
	build func() core.Program
	opts  core.Options
} {
	commitstore := Find("commitstore")
	return []struct {
		name  string
		build func() core.Program
		opts  core.Options
	}{
		{"commitstore", func() core.Program { return commitstore.Build(0, false) }, core.Options{}},
		{"commitstore-buggy", func() core.Program { return commitstore.Build(0, true) }, core.Options{}},
		{"commitstore-2failures", func() core.Program { return commitstore.Build(0, false) },
			core.Options{MaxFailures: 2}},
		{"cceh", func() core.Program { return recipe.CCEHWorkload(3, recipe.CCEHBugs{}) }, core.Options{}},
		{"clht", func() core.Program { return recipe.CLHTWorkload(2, recipe.CLHTBugs{}) }, core.Options{}},
		{"fastfair-buggy", func() core.Program {
			return recipe.FastFairWorkload(3, recipe.FFBugs{NoHeaderFlush: true})
		}, core.Options{}},
		{"cceh-update", func() core.Program { return recipe.CCEHUpdateWorkload(3, 6) }, core.Options{}},
		{"btree", func() core.Program {
			return pmdk.BTreeWorkload(4, pmdk.CreateBugs{}, pmdk.BTreeBugs{})
		}, core.Options{}},
		{"hashmap_tx-buggy", func() core.Program {
			return pmdk.HashmapTXWorkload(3, pmdk.HashmapTXBugs{Tx: pmdk.TxBugs{NoEntryFlush: true}})
		}, core.Options{}},
	}
}

// TestChoiceSnapshotEquivalenceWorkloads sweeps the RECIPE/PMDK/example
// workloads across {choice snapshots on, off} x {POR on, off} x
// {1, 4 workers}: every configuration with the stack enabled must produce a
// bit-identical exploration to the replay reference of the same
// (POR, workers=1) cell.
func TestChoiceSnapshotEquivalenceWorkloads(t *testing.T) {
	for _, tc := range choiceSnapCases() {
		for _, por := range []int{1, -1} {
			base := tc.opts
			base.POR = por
			base.Observe = true

			refOpts := base
			refOpts.ChoiceSnapshots = -1
			ref := core.New(tc.build(), refOpts).Run()

			for _, workers := range []int{1, 4} {
				onOpts := base
				onOpts.ChoiceSnapshots = 1
				onOpts.Workers = workers
				label := fmt.Sprintf("%s por=%d workers=%d", tc.name, por, workers)
				got := core.New(tc.build(), onOpts).Run()
				assertChoiceSnapEquivalent(t, label, ref, got)
			}
		}
	}
}

// TestChoiceSnapshotEquivalenceLitmus runs the litmus suite with the stack
// off and on: the observation sets (the litmus contract itself) and the
// exploration results must be identical.
func TestChoiceSnapshotEquivalenceLitmus(t *testing.T) {
	for _, tst := range litmus.Tests() {
		off := tst
		off.Opts.ChoiceSnapshots = -1
		off.Opts.Observe = true
		obsOff, resOff := litmus.Run(off)

		on := tst
		on.Opts.ChoiceSnapshots = 1
		on.Opts.Observe = true
		obsOn, resOn := litmus.Run(on)

		if len(obsOff) != len(obsOn) {
			t.Errorf("%s: observation sets differ: off %v, on %v", tst.Name, obsOff, obsOn)
			continue
		}
		for i := range obsOff {
			if obsOff[i] != obsOn[i] {
				t.Errorf("%s: observation sets differ: off %v, on %v", tst.Name, obsOff, obsOn)
				break
			}
		}
		assertChoiceSnapEquivalent(t, tst.Name, resOff, resOn)
	}
}
