// Package benchlist is the shared registry of runnable benchmarks: the
// paper's running examples, the six RECIPE structures, the five PMDK
// examples, and the networked PM server. The jaaru, jaaru-explain and
// jaaru-perf front ends all select workloads from this one list, so a
// benchmark name means the same program everywhere.
package benchlist

import (
	"fmt"
	"sort"

	"jaaru/internal/core"
	"jaaru/internal/netsim"
	"jaaru/internal/pmdk"
	"jaaru/internal/recipe"
)

// Benchmark is one selectable workload.
type Benchmark struct {
	Name string
	Doc  string
	// Build constructs the program for workload size n; buggy selects the
	// seeded-bug variant.
	Build func(n int, buggy bool) core.Program
}

// All returns the registry in a stable order (by name).
func All() []Benchmark {
	bms := []Benchmark{
		{"figure2", "the paper's Figure 2/3 running example", func(int, bool) core.Program {
			return core.Program{
				Name: "figure2",
				Run: func(c *core.Context) {
					x, y := c.Root(), c.Root().Add(8)
					c.Store64(y, 1)
					c.Store64(x, 2)
					c.Clflush(x, 8)
					c.Store64(y, 3)
					c.Store64(x, 4)
					c.Store64(y, 5)
					c.Store64(x, 6)
				},
				Recover: func(c *core.Context) {
					x := c.Load64(c.Root())
					y := c.Load64(c.Root().Add(8))
					fmt.Printf("  post-failure state: x=%d y=%d\n", x, y)
				},
			}
		}},
		{"figure4", "the paper's Figure 4 commit-store example", func(int, bool) core.Program {
			return core.Program{
				Name: "figure4",
				Run: func(c *core.Context) {
					tmp := c.AllocLine(8)
					c.Store64(tmp, 0xD0D0)
					c.Clflush(tmp, 8)
					c.StorePtr(c.Root(), tmp)
					c.Clflush(c.Root(), 8)
				},
				Recover: func(c *core.Context) {
					child := c.LoadPtr(c.Root())
					if child != 0 {
						fmt.Printf("  readChild: data=%#x\n", c.Load64(child))
					} else {
						fmt.Println("  readChild: null (not committed)")
					}
				},
			}
		}},
		{"commitstore", "examples/commitstore: Figure 4 with (-buggy: without) the data flush", func(_ int, buggy bool) core.Program {
			return core.Program{
				Name: "commitstore",
				Run: func(c *core.Context) {
					tmp := c.AllocLine(8)
					c.Store64(tmp, 0xDA7A)
					if !buggy {
						c.Clflush(tmp, 8)
					}
					c.StorePtr(c.Root(), tmp)
					c.Clflush(c.Root(), 8)
				},
				Recover: func(c *core.Context) {
					if child := c.LoadPtr(c.Root()); child != 0 {
						c.Assert(c.Load64(child) == 0xDA7A, "committed child lost its data")
					}
				},
			}
		}},
		{"cceh", "RECIPE CCEH (extendible hashing)", func(n int, buggy bool) core.Program {
			return recipe.CCEHWorkload(n, recipe.CCEHBugs{NoSegmentFlush: buggy})
		}},
		// The update-heavy variants rewrite the same slots in place for 2n
		// rounds: the recurring crash states exercise POR's fingerprint sweep
		// and the choice-point snapshot stack. No seeded-bug variant exists,
		// so -buggy is ignored.
		{"cceh-update", "RECIPE CCEH update-heavy (in-place slot rewrites)", func(n int, _ bool) core.Program {
			return recipe.CCEHUpdateWorkload(3, 2*n)
		}},
		{"clht-update", "RECIPE P-CLHT update-heavy (in-place slot rewrites)", func(n int, _ bool) core.Program {
			return recipe.CLHTUpdateWorkload(3, 2*n)
		}},
		{"fastfair", "RECIPE FAST_FAIR (B-link tree)", func(n int, buggy bool) core.Program {
			return recipe.FastFairWorkload(n, recipe.FFBugs{NoHeaderFlush: buggy})
		}},
		{"part", "RECIPE P-ART (radix tree)", func(n int, buggy bool) core.Program {
			return recipe.ARTWorkload(n, recipe.ARTBugs{NoRootNodeFlush: buggy})
		}},
		{"bwtree", "RECIPE P-BwTree (delta chains + GC)", func(n int, buggy bool) core.Program {
			return recipe.BwTreeWorkload(n, recipe.BwTreeBugs{GCReversedLink: buggy})
		}},
		{"clht", "RECIPE P-CLHT (cache-line hash table)", func(n int, buggy bool) core.Program {
			return recipe.CLHTWorkload(n, recipe.CLHTBugs{NoLockReset: buggy})
		}},
		{"masstree", "RECIPE P-Masstree (COW B+tree)", func(n int, buggy bool) core.Program {
			return recipe.MasstreeWorkload(n, recipe.MasstreeBugs{FlushObjectNotPointer: buggy})
		}},
		{"btree", "PMDK btree_map (transactional B-tree)", func(n int, buggy bool) core.Program {
			return pmdk.BTreeWorkload(n, pmdk.CreateBugs{}, pmdk.BTreeBugs{NoNodeFlush: buggy})
		}},
		{"ctree", "PMDK ctree_map (crit-bit tree)", func(n int, buggy bool) core.Program {
			return pmdk.CTreeWorkload(n, pmdk.CTreeBugs{Tx: pmdk.TxBugs{CountBeforeEntry: buggy}})
		}},
		{"rbtree", "PMDK rbtree_map (red-black tree)", func(n int, buggy bool) core.Program {
			return pmdk.RBTreeWorkload(n, pmdk.RBTreeBugs{Tx: pmdk.TxBugs{SkipAdd: buggy}})
		}},
		{"hashmap_atomic", "PMDK hashmap_atomic", func(n int, buggy bool) core.Program {
			return pmdk.HashmapAtomicWorkload(n,
				pmdk.HashmapAtomicBugs{Heap: pmdk.HeapBugs{NoHeaderFlush: buggy}})
		}},
		{"hashmap_tx", "PMDK hashmap_tx (transactional)", func(n int, buggy bool) core.Program {
			return pmdk.HashmapTXWorkload(n,
				pmdk.HashmapTXBugs{Tx: pmdk.TxBugs{NoEntryFlush: buggy}})
		}},
		{"pmserver", "exactly-once PM key-value server over a replayed client trace", func(n int, buggy bool) core.Program {
			trace := netsim.Trace{}
			for i := 0; i < n; i++ {
				trace = append(trace,
					netsim.Request{Op: netsim.OpSet, Key: uint64(i%3 + 1), Val: uint64(i * 10)},
					netsim.Request{Op: netsim.OpAdd, Key: uint64(i%3 + 1), Val: 1})
			}
			return netsim.Program("pmserver", trace, netsim.ServerBugs{SeqOutsideTx: buggy})
		}},
	}
	sort.Slice(bms, func(i, j int) bool { return bms[i].Name < bms[j].Name })
	return bms
}

// Find returns the named benchmark, or nil.
func Find(name string) *Benchmark {
	bms := All()
	for i := range bms {
		if bms[i].Name == name {
			return &bms[i]
		}
	}
	return nil
}
