package core

import (
	"strings"
	"testing"
)

func TestPerfRedundantFlushDetected(t *testing.T) {
	prog := Program{
		Name: "double-flush",
		Run: func(c *Context) {
			r := c.Root()
			c.Store64(r, 1)
			c.Clflush(r, 8)
			c.Clflush(r, 8) // redundant: nothing stored since the first
		},
		Recover: func(c *Context) { _ = c.Load64(c.Root()) },
	}
	res := New(prog, Options{FlagPerfIssues: true}).Run()
	if res.Buggy() {
		t.Fatalf("bugs: %v", res.Bugs)
	}
	found := false
	for _, p := range res.PerfIssues {
		if p.Kind == PerfRedundantFlush {
			found = true
			if !strings.Contains(p.Loc, "perf_test.go") {
				t.Errorf("issue location %q is not in guest code", p.Loc)
			}
		}
	}
	if !found {
		t.Errorf("redundant flush not flagged: %v", res.PerfIssues)
	}
}

func TestPerfFlushOfUntouchedLine(t *testing.T) {
	prog := Program{
		Name: "flush-untouched",
		Run: func(c *Context) {
			r := c.Root()
			c.Store64(r, 1)
			c.Clflush(r, 8)
			c.Clflushopt(r.Add(512), 8) // line never written
			c.Sfence()
		},
		Recover: func(c *Context) {},
	}
	res := New(prog, Options{FlagPerfIssues: true}).Run()
	found := false
	for _, p := range res.PerfIssues {
		if p.Kind == PerfRedundantFlush {
			found = true
		}
	}
	if !found {
		t.Errorf("flush of an untouched line not flagged: %v", res.PerfIssues)
	}
}

func TestPerfRedundantFenceDetected(t *testing.T) {
	prog := Program{
		Name: "useless-fence",
		Run: func(c *Context) {
			r := c.Root()
			c.Store64(r, 1)
			c.Sfence() // no pending clflushopt: orders nothing on TSO
			c.Clflush(r, 8)
		},
		Recover: func(c *Context) {},
	}
	res := New(prog, Options{FlagPerfIssues: true}).Run()
	found := false
	for _, p := range res.PerfIssues {
		if p.Kind == PerfRedundantFence {
			found = true
		}
	}
	if !found {
		t.Errorf("redundant sfence not flagged: %v", res.PerfIssues)
	}
}

func TestPerfCleanProgramHasNoIssues(t *testing.T) {
	prog := Program{
		Name: "clean-perf",
		Run: func(c *Context) {
			r := c.Root()
			c.Store64(r, 1)
			c.Clflushopt(r, 8)
			c.Sfence()
			c.Store64(r.Add(64), 2)
			c.Clflush(r.Add(64), 8)
		},
		Recover: func(c *Context) {},
	}
	res := New(prog, Options{FlagPerfIssues: true}).Run()
	if len(res.PerfIssues) != 0 {
		t.Errorf("clean program flagged: %v", res.PerfIssues)
	}
}

func TestPerfDetectionOffByDefault(t *testing.T) {
	prog := Program{
		Name: "perf-off",
		Run: func(c *Context) {
			r := c.Root()
			c.Store64(r, 1)
			c.Clflush(r, 8)
			c.Clflush(r, 8)
		},
		Recover: func(c *Context) {},
	}
	res := New(prog, Options{}).Run()
	if len(res.PerfIssues) != 0 {
		t.Errorf("perf issues recorded without the flag: %v", res.PerfIssues)
	}
}

func TestPerfIssueStringFormats(t *testing.T) {
	p := &PerfIssue{Kind: PerfRedundantFlush, Loc: "x.go:1", Line: 0x1000, Count: 3}
	if s := p.String(); !strings.Contains(s, "redundant flush") || !strings.Contains(s, "3×") {
		t.Errorf("flush string: %q", s)
	}
	p = &PerfIssue{Kind: PerfRedundantFence, Loc: "y.go:2", Count: 1}
	if s := p.String(); !strings.Contains(s, "redundant fence") {
		t.Errorf("fence string: %q", s)
	}
	if PerfIssueKind(99).String() == "" {
		t.Error("unknown kind renders empty")
	}
}

// The mini-PMDK transaction commit persists each added range once; the
// whole tx layer must be perf-clean... and a doubled Persist in guest code
// must be visible through real workloads too.
func TestPerfIssuesThroughWorkload(t *testing.T) {
	prog := Program{
		Name: "workload-redundant",
		Run: func(c *Context) {
			n := c.AllocLine(64)
			for i := uint64(0); i < 8; i++ {
				c.Store64(n.Add(8*i), i)
			}
			c.Persist(n, 64)
			c.Persist(n, 64) // belt and braces — flagged
			c.StorePtr(c.Root(), n)
			c.Persist(c.Root(), 8)
		},
		Recover: func(c *Context) {
			if p := c.LoadPtr(c.Root()); p != 0 {
				_ = c.Load64(p)
			}
		},
	}
	res := New(prog, Options{FlagPerfIssues: true}).Run()
	if res.Buggy() {
		t.Fatalf("bugs: %v", res.Bugs)
	}
	flush := 0
	for _, p := range res.PerfIssues {
		if p.Kind == PerfRedundantFlush {
			flush++
		}
	}
	if flush == 0 {
		t.Errorf("double Persist not flagged: %v", res.PerfIssues)
	}
}
