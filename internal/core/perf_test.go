package core

import (
	"strings"
	"testing"
)

func TestPerfRedundantFlushDetected(t *testing.T) {
	prog := Program{
		Name: "double-flush",
		Run: func(c *Context) {
			r := c.Root()
			c.Store64(r, 1)
			c.Clflush(r, 8)
			c.Clflush(r, 8) // redundant: nothing stored since the first
		},
		Recover: func(c *Context) { _ = c.Load64(c.Root()) },
	}
	res := New(prog, Options{FlagPerfIssues: true}).Run()
	if res.Buggy() {
		t.Fatalf("bugs: %v", res.Bugs)
	}
	found := false
	for _, p := range res.PerfIssues {
		if p.Kind == PerfRedundantFlush {
			found = true
			if !strings.Contains(p.Loc, "perf_test.go") {
				t.Errorf("issue location %q is not in guest code", p.Loc)
			}
		}
	}
	if !found {
		t.Errorf("redundant flush not flagged: %v", res.PerfIssues)
	}
}

func TestPerfFlushOfUntouchedLine(t *testing.T) {
	prog := Program{
		Name: "flush-untouched",
		Run: func(c *Context) {
			r := c.Root()
			c.Store64(r, 1)
			c.Clflush(r, 8)
			c.Clflushopt(r.Add(512), 8) // line never written
			c.Sfence()
		},
		Recover: func(c *Context) {},
	}
	res := New(prog, Options{FlagPerfIssues: true}).Run()
	found := false
	for _, p := range res.PerfIssues {
		if p.Kind == PerfRedundantFlush {
			found = true
		}
	}
	if !found {
		t.Errorf("flush of an untouched line not flagged: %v", res.PerfIssues)
	}
}

func TestPerfRedundantFenceDetected(t *testing.T) {
	prog := Program{
		Name: "useless-fence",
		Run: func(c *Context) {
			r := c.Root()
			c.Store64(r, 1)
			c.Sfence() // no pending clflushopt: orders nothing on TSO
			c.Clflush(r, 8)
		},
		Recover: func(c *Context) {},
	}
	res := New(prog, Options{FlagPerfIssues: true}).Run()
	found := false
	for _, p := range res.PerfIssues {
		if p.Kind == PerfRedundantFence {
			found = true
		}
	}
	if !found {
		t.Errorf("redundant sfence not flagged: %v", res.PerfIssues)
	}
}

func TestPerfCleanProgramHasNoIssues(t *testing.T) {
	prog := Program{
		Name: "clean-perf",
		Run: func(c *Context) {
			r := c.Root()
			c.Store64(r, 1)
			c.Clflushopt(r, 8)
			c.Sfence()
			c.Store64(r.Add(64), 2)
			c.Clflush(r.Add(64), 8)
		},
		Recover: func(c *Context) {},
	}
	res := New(prog, Options{FlagPerfIssues: true}).Run()
	if len(res.PerfIssues) != 0 {
		t.Errorf("clean program flagged: %v", res.PerfIssues)
	}
}

func TestPerfDetectionOffByDefault(t *testing.T) {
	prog := Program{
		Name: "perf-off",
		Run: func(c *Context) {
			r := c.Root()
			c.Store64(r, 1)
			c.Clflush(r, 8)
			c.Clflush(r, 8)
		},
		Recover: func(c *Context) {},
	}
	res := New(prog, Options{}).Run()
	if len(res.PerfIssues) != 0 {
		t.Errorf("perf issues recorded without the flag: %v", res.PerfIssues)
	}
}

func TestPerfIssueStringFormats(t *testing.T) {
	p := &PerfIssue{Kind: PerfRedundantFlush, Loc: "x.go:1", Line: 0x1000, Count: 3}
	if s := p.String(); !strings.Contains(s, "redundant flush") || !strings.Contains(s, "3×") {
		t.Errorf("flush string: %q", s)
	}
	p = &PerfIssue{Kind: PerfRedundantFence, Loc: "y.go:2", Count: 1}
	if s := p.String(); !strings.Contains(s, "redundant fence") {
		t.Errorf("fence string: %q", s)
	}
	if PerfIssueKind(99).String() == "" {
		t.Error("unknown kind renders empty")
	}
}

// The mini-PMDK transaction commit persists each added range once; the
// whole tx layer must be perf-clean... and a doubled Persist in guest code
// must be visible through real workloads too.
func TestPerfIssuesThroughWorkload(t *testing.T) {
	prog := Program{
		Name: "workload-redundant",
		Run: func(c *Context) {
			n := c.AllocLine(64)
			for i := uint64(0); i < 8; i++ {
				c.Store64(n.Add(8*i), i)
			}
			c.Persist(n, 64)
			c.Persist(n, 64) // belt and braces — flagged
			c.StorePtr(c.Root(), n)
			c.Persist(c.Root(), 8)
		},
		Recover: func(c *Context) {
			if p := c.LoadPtr(c.Root()); p != 0 {
				_ = c.Load64(p)
			}
		},
	}
	res := New(prog, Options{FlagPerfIssues: true}).Run()
	if res.Buggy() {
		t.Fatalf("bugs: %v", res.Bugs)
	}
	flush := 0
	for _, p := range res.PerfIssues {
		if p.Kind == PerfRedundantFlush {
			flush++
		}
	}
	if flush == 0 {
		t.Errorf("double Persist not flagged: %v", res.PerfIssues)
	}
}

// PerfIssue merging must be partition-independent: under Workers>1 the
// per-location Count totals and the canonical example Line must match the
// serial run exactly. The guest flushes the same source location against
// several cache lines in descending order, so a first-seen representative
// would report the highest line serially and an arbitrary one in parallel.
func TestParallelPerfIssuesMatchSerial(t *testing.T) {
	prog := Program{
		Name: "perf-partition",
		Run: func(c *Context) {
			r := c.Root()
			for i := uint64(3); i > 0; i-- { // descending: lines 128, 64, 0
				line := r.Add((i - 1) * 64)
				c.Store64(line, i)
				c.Clflush(line, 8)
				c.Clflush(line, 8) // redundant, same source location each time
			}
			c.Sfence() // redundant: empty flush buffer
		},
		Recover: func(c *Context) {
			r := c.Root()
			for i := uint64(0); i < 3; i++ {
				_ = c.Load64(r.Add(i * 64))
			}
		},
	}
	serial := New(prog, Options{FlagPerfIssues: true}).Run()
	if serial.Buggy() {
		t.Fatalf("bugs: %v", serial.Bugs)
	}
	if len(serial.PerfIssues) == 0 {
		t.Fatal("no perf issues flagged")
	}
	// The serial representative must already be canonical: the smallest
	// line, although the largest was seen first.
	for _, p := range serial.PerfIssues {
		if p.Kind == PerfRedundantFlush && p.Line != PoolBase.Line() {
			t.Errorf("serial representative line = %v, want the smallest %v",
				p.Line, PoolBase.Line())
		}
	}
	par := New(prog, Options{FlagPerfIssues: true, Workers: 4}).Run()
	if len(par.PerfIssues) != len(serial.PerfIssues) {
		t.Fatalf("parallel found %d issues, serial %d:\n%v\n%v",
			len(par.PerfIssues), len(serial.PerfIssues), par.PerfIssues, serial.PerfIssues)
	}
	for i := range serial.PerfIssues {
		s, p := serial.PerfIssues[i], par.PerfIssues[i]
		if s.Kind != p.Kind || s.Loc != p.Loc || s.Line != p.Line || s.Count != p.Count {
			t.Errorf("issue %d diverges:\nserial:   %+v\nparallel: %+v", i, s, p)
		}
	}
}
