package core

import (
	"fmt"
	"runtime"
	"strings"

	"jaaru/internal/pmem"
	"jaaru/internal/tso"
)

// Addr is a guest address in the simulated persistent-memory pool.
type Addr = pmem.Addr

// Context is the interface guest programs use to interact with simulated
// persistent memory. All operations follow x86 semantics under the Px86sim
// persistency model: stores and flushes are buffered per thread, loads
// bypass through the store buffer, and flush instructions constrain when
// cache lines reach persistent storage.
//
// A Context is bound to one guest thread and must only be used from that
// thread's function: data structure handles that capture a Context must be
// rebound before use on a Spawned thread (sharing one Context across
// threads confuses the deterministic scheduler and deadlocks the turn
// handoff).
type Context struct {
	ck *Checker
	th *thread
}

// op is the per-operation prologue: step accounting and infinite-loop
// detection. A crashed machine executes nothing: deferred guest functions
// (an unlock, say) run while the crash panic unwinds the guest stack, and
// without this gate their operations would take effect and be counted after
// the power failure. Reading crashed without the scheduler lock is safe:
// every goroutine reaching here last acquired the lock at its turn handoff,
// after any crash initiation it could observe.
func (c *Context) op() {
	ck := c.ck
	if ck.sched.crashed {
		panic(crashSignal{})
	}
	ck.steps++
	ck.totalSteps++
	if ck.chooser.cursor < len(ck.chooser.points) {
		ck.replaySteps++
	}
	if ck.wrec != nil {
		// Operation numbering for the forensics recorder: counted here, not
		// derived from the traced-op list, so untraced operations (Spawn,
		// Join, a CAS that did not write) keep indices stable.
		ck.wrec.opSeq++
	}
	if ck.steps > ck.opts.MaxSteps {
		panic(guestFault{typ: BugInfiniteLoop,
			msg: fmt.Sprintf("step budget of %d exceeded at %s", ck.opts.MaxSteps, guestLocation())})
	}
}

// yield is the per-operation epilogue: it hands the turn to the next guest
// thread. Yielding after the operation's effect (not before) keeps each
// operation atomic with respect to the deterministic round-robin schedule —
// a suspended thread never has a half-issued operation.
func (c *Context) yield() { c.ck.sched.yield(c.th) }

// checkRange faults with an illegal-memory-access bug unless [a, a+size) is
// inside allocated pool memory.
func (c *Context) checkRange(a Addr, size uint64, what string) {
	if c.ck.alloc.InBounds(a, size) {
		return
	}
	var why string
	switch {
	case a == 0:
		why = "null pointer dereference"
	case a < PoolBase:
		why = "address below pool"
	default:
		why = "address outside allocated pool memory"
	}
	panic(guestFault{typ: BugIllegalAccess,
		msg: fmt.Sprintf("illegal %s of %d bytes at %v (%s) at %s", what, size, a, why, guestLocation())})
}

func (c *Context) evictionPolicy() {
	switch c.ck.opts.Eviction {
	case EvictEager:
		c.th.ts.DrainSB(c.ck)
	case EvictAtFences:
		// Capacity-based eviction happens inside Push.
	case EvictRandom:
		n := c.ck.rng.Intn(c.th.ts.SBLen() + 1)
		for i := 0; i < n; i++ {
			c.th.ts.EvictOldest(c.ck)
		}
	case EvictExplore:
		// Figure 11, lines 4–8: eviction is itself a nondeterministic
		// choice the checker enumerates.
		for c.th.ts.SBLen() > 0 {
			evict := c.ck.chooser.choose(chooseEvict, 2) == 1
			c.ck.wrecDecision()
			if !evict {
				break
			}
			c.th.ts.EvictOldest(c.ck)
		}
	}
}

// ---- Memory allocation -----------------------------------------------------

// Alloc reserves size bytes of zero-initialized pool memory with the given
// alignment (power of two; 0 for byte alignment). Addresses are stable
// across the failures of a scenario and never reused, so recovery code can
// follow pointers persisted before a failure.
func (c *Context) Alloc(size, align uint64) Addr {
	if c.ck.ffwd.active {
		// Fast-forward replay: the allocator was truncated to the capture
		// high-water mark, which already covers this allocation — feed the
		// recorded address instead of re-advancing (snapshot.go).
		a := c.ck.ffwdAlloc()
		c.yield()
		return a
	}
	c.op()
	a, ok := c.ck.alloc.Alloc(size, align)
	if !ok {
		panic(guestFault{typ: BugExplicit,
			msg: fmt.Sprintf("pool exhausted allocating %d bytes at %s", size, guestLocation())})
	}
	c.ck.noteSegEvent(evAlloc, a)
	c.ck.traceOp(c.th.id, "alloc", a, int(size), 0)
	c.yield()
	return a
}

// AllocLine is Alloc with cache-line alignment — the common idiom for PM
// data structure nodes.
func (c *Context) AllocLine(size uint64) Addr { return c.Alloc(size, pmem.CacheLineSize) }

// Root returns the base of the root area: RootSize bytes at the start of
// the pool, always allocated, through which recovery code reaches all
// persistent state.
func (c *Context) Root() Addr { return PoolBase }

// PoolLimit returns the exclusive upper bound of currently allocated pool
// memory.
func (c *Context) PoolLimit() Addr {
	if c.ck.ffwd.active {
		// Fast-forward replay: the live allocator already reflects the whole
		// prefix, so the momentary value the guest observed is fed back.
		return c.ck.ffwdLimit()
	}
	a := c.ck.alloc.HighWater()
	c.ck.noteSegEvent(evLimit, a)
	return a
}

// ---- Stores ----------------------------------------------------------------

func (c *Context) store(a Addr, size int, v uint64) {
	if c.ck.ffwd.active {
		// Fast-forward replay: the store's effect is part of the captured
		// state installed at arrival; only the scheduler turn is taken so
		// the interleaving replays exactly (snapshot.go).
		c.yield()
		return
	}
	c.op()
	c.checkRange(a, uint64(size), "store")
	c.ck.traceOp(c.th.id, "store", a, size, v)
	c.th.ts.Push(c.ck, tso.Entry{Kind: tso.Store, Addr: a, Size: size, Val: v, Op: c.ck.wrecOp()})
	c.evictionPolicy()
	c.yield()
}

// Store8 writes one byte.
func (c *Context) Store8(a Addr, v uint8) { c.store(a, 1, uint64(v)) }

// Store16 writes a 16-bit value (little-endian).
func (c *Context) Store16(a Addr, v uint16) { c.store(a, 2, uint64(v)) }

// Store32 writes a 32-bit value (little-endian).
func (c *Context) Store32(a Addr, v uint32) { c.store(a, 4, uint64(v)) }

// Store64 writes a 64-bit value (little-endian).
func (c *Context) Store64(a Addr, v uint64) { c.store(a, 8, v) }

// StorePtr writes a pool address as a 64-bit value.
func (c *Context) StorePtr(a Addr, p Addr) { c.store(a, 8, uint64(p)) }

// StoreBytes writes a byte slice with byte stores.
func (c *Context) StoreBytes(a Addr, b []byte) {
	for i, v := range b {
		c.Store8(a.Add(uint64(i)), v)
	}
}

// Memset writes n copies of v starting at a.
func (c *Context) Memset(a Addr, v byte, n uint64) {
	for i := uint64(0); i < n; i++ {
		c.Store8(a.Add(i), v)
	}
}

// ---- Loads -----------------------------------------------------------------

func (c *Context) load(a Addr, size int) uint64 {
	ck := c.ck
	if ck.ffwd.active {
		// Fast-forward replay: whole operations are fed from the segment's
		// value log. The capture point is the leading byte of a load; when
		// the cursor reaches it, ffwdLoad installs the arrival state and
		// resolves that operation live, and the trace entry plus the whole
		// suffix of the segment execute normally. A load fed pre-arrival
		// skips its step/trace accounting — both are covered by the restored
		// deltas — but still takes its scheduler turn.
		v, live := ck.ffwdLoad(c.th, a, size)
		if live {
			ck.traceOp(c.th.id, "load", a, size, v)
		}
		c.yield()
		return v
	}
	c.op()
	c.checkRange(a, uint64(size), "load")
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(ck.loadByte(c.th, a+Addr(i), i == 0)) << (8 * uint(i))
	}
	ck.noteSegLoad(a, size, v)
	ck.traceOp(c.th.id, "load", a, size, v)
	c.yield()
	return v
}

// Load8 reads one byte.
func (c *Context) Load8(a Addr) uint8 { return uint8(c.load(a, 1)) }

// Load16 reads a 16-bit value.
func (c *Context) Load16(a Addr) uint16 { return uint16(c.load(a, 2)) }

// Load32 reads a 32-bit value.
func (c *Context) Load32(a Addr) uint32 { return uint32(c.load(a, 4)) }

// Load64 reads a 64-bit value.
func (c *Context) Load64(a Addr) uint64 { return c.load(a, 8) }

// LoadPtr reads a pool address stored with StorePtr.
func (c *Context) LoadPtr(a Addr) Addr { return Addr(c.load(a, 8)) }

// LoadBytes reads n bytes starting at a.
func (c *Context) LoadBytes(a Addr, n uint64) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = c.Load8(a.Add(uint64(i)))
	}
	return out
}

// ---- Flushes and fences ------------------------------------------------------

// Clflush issues a clflush for every cache line of [a, a+size): strongly
// ordered with stores (it enters the store buffer like a store).
func (c *Context) Clflush(a Addr, size uint64) {
	if c.ck.ffwd.active {
		pmem.Lines(a, size, func(line Addr) { c.yield() })
		return
	}
	loc := c.perfLoc()
	pmem.Lines(a, size, func(line Addr) {
		c.op()
		c.ck.traceOp(c.th.id, "clflush", line, pmem.CacheLineSize, 0)
		c.th.ts.Push(c.ck, tso.Entry{Kind: tso.CLFlush, Addr: line, Loc: loc, Op: c.ck.wrecOp()})
		c.evictionPolicy()
		c.yield()
	})
}

// Clflushopt issues a clflushopt for every cache line of [a, a+size):
// weakly ordered, taking effect at the next sfence/mfence/locked RMW.
func (c *Context) Clflushopt(a Addr, size uint64) {
	if c.ck.ffwd.active {
		pmem.Lines(a, size, func(line Addr) { c.yield() })
		return
	}
	loc := c.perfLoc()
	pmem.Lines(a, size, func(line Addr) {
		c.op()
		c.ck.traceOp(c.th.id, "clflushopt", line, pmem.CacheLineSize, 0)
		c.th.ts.Push(c.ck, tso.Entry{Kind: tso.CLFlushOpt, Addr: line, Loc: loc, Op: c.ck.wrecOp()})
		c.evictionPolicy()
		c.yield()
	})
}

// Clwb is semantically identical to Clflushopt in the Px86sim model (§2).
func (c *Context) Clwb(a Addr, size uint64) { c.Clflushopt(a, size) }

// Sfence issues a store fence, ordering prior clflushopt writebacks.
func (c *Context) Sfence() {
	if c.ck.ffwd.active {
		c.yield()
		return
	}
	c.op()
	c.ck.traceOp(c.th.id, "sfence", 0, 0, 0)
	c.th.ts.Push(c.ck, tso.Entry{Kind: tso.SFence, Loc: c.perfLoc(), Op: c.ck.wrecOp()})
	c.evictionPolicy()
	c.yield()
}

// perfLoc captures the guest location of a flush/fence for the
// performance-issue detector; it is skipped (empty) unless enabled.
func (c *Context) perfLoc() string {
	if !c.ck.opts.FlagPerfIssues {
		return ""
	}
	return guestLocation()
}

// Mfence issues a full memory fence: drains the store buffer and applies
// pending clflushopt writebacks.
func (c *Context) Mfence() {
	if c.ck.ffwd.active {
		c.yield()
		return
	}
	c.op()
	c.ck.traceOp(c.th.id, "mfence", 0, 0, 0)
	c.th.ts.Mfence(c.ck)
	c.yield()
}

// Persist is the common persistence idiom: clwb each line of the range,
// then sfence.
func (c *Context) Persist(a Addr, size uint64) {
	c.Clflushopt(a, size)
	c.Sfence()
}

// ---- Locked RMW operations ---------------------------------------------------

// rmw executes fn atomically with full fence semantics: locked RMW
// instructions behave as mfence; load; store; mfence (§4).
func (c *Context) rmw(a Addr, size int, fn func(old uint64) (uint64, bool)) uint64 {
	ck := c.ck
	if ck.ffwd.active {
		// Fast-forward replay. The leading Mfence's effect is already part
		// of the captured state (the capture point, if inside this rmw, came
		// after it), so it is skipped. An arrival at the rmw's read resumes
		// live: the write and trailing fence execute for real. A pure
		// fast-forwarded rmw still calls fn — guest closures may carry
		// host-side state — but discards the write.
		old, live := ck.ffwdLoad(c.th, a, size)
		if live {
			if nv, write := fn(old); write {
				ck.traceOp(c.th.id, "rmw", a, size, nv)
				c.th.ts.Push(ck, tso.Entry{Kind: tso.Store, Addr: a, Size: size, Val: nv, Op: ck.wrecOp()})
			}
			c.th.ts.Mfence(ck)
			c.yield()
			return old
		}
		fn(old)
		c.yield()
		return old
	}
	c.op()
	c.checkRange(a, uint64(size), "rmw")
	c.th.ts.Mfence(c.ck)
	var old uint64
	for i := 0; i < size; i++ {
		old |= uint64(c.ck.loadByte(c.th, a+Addr(i), i == 0)) << (8 * uint(i))
	}
	c.ck.noteSegLoad(a, size, old)
	if nv, write := fn(old); write {
		c.ck.traceOp(c.th.id, "rmw", a, size, nv)
		c.th.ts.Push(c.ck, tso.Entry{Kind: tso.Store, Addr: a, Size: size, Val: nv, Op: c.ck.wrecOp()})
	}
	c.th.ts.Mfence(c.ck)
	c.yield()
	return old
}

// CAS64 performs a locked compare-and-swap on a 64-bit location, reporting
// whether the swap happened.
func (c *Context) CAS64(a Addr, old, new uint64) bool {
	got := c.rmw(a, 8, func(cur uint64) (uint64, bool) { return new, cur == old })
	return got == old
}

// AtomicAdd64 performs a locked fetch-and-add, returning the previous value.
func (c *Context) AtomicAdd64(a Addr, delta uint64) uint64 {
	return c.rmw(a, 8, func(cur uint64) (uint64, bool) { return cur + delta, true })
}

// AtomicExchange64 performs a locked exchange, returning the previous value.
func (c *Context) AtomicExchange64(a Addr, v uint64) uint64 {
	return c.rmw(a, 8, func(uint64) (uint64, bool) { return v, true })
}

// ---- Threads -----------------------------------------------------------------

// ThreadHandle identifies a spawned guest thread.
type ThreadHandle struct {
	ck *Checker
	t  *thread
}

// Spawn starts fn on a new guest thread. Threads are interleaved
// deterministically (round-robin, one operation per turn); Jaaru controls
// but does not exhaustively explore schedules.
func (c *Context) Spawn(fn func(*Context)) *ThreadHandle {
	if !c.ck.ffwd.active {
		// Spawns replay for real during fast-forward (the thread structure
		// must exist for the arrival's TSO restore); only the step accounting
		// is covered by the restored deltas.
		c.op()
	}
	ck := c.ck
	t := ck.sched.spawn(ck.opts.SBCapacity)
	go func() {
		defer ck.sched.childExited()
		defer func() {
			switch r := recover().(type) {
			case nil:
			case crashSignal:
				ck.sched.mu.Lock()
				t.done = true
				ck.sched.mu.Unlock()
			case guestFault:
				ck.sched.mu.Lock()
				t.done = true
				ck.sched.mu.Unlock()
				ck.sched.recordFault(r)
			default:
				ck.sched.mu.Lock()
				t.done = true
				ck.sched.mu.Unlock()
				ck.sched.recordUnexpected(r)
			}
		}()
		ck.sched.waitTurn(t)
		fn(&Context{ck: ck, th: t})
		ck.sched.finish(t)
	}()
	c.yield()
	return &ThreadHandle{ck: ck, t: t}
}

// Join blocks until the spawned thread completes. Like pthread_join, it is
// a synchronization point: the joined thread's store buffer has drained by
// the time Join returns (its flush buffer has not — clflushopt writebacks
// still require a fence).
func (h *ThreadHandle) Join(c *Context) {
	if c.ck.ffwd.active {
		// The join's synchronization replays for real (it orders the
		// deterministic schedule); the drain is skipped — fast-forwarded
		// store buffers are empty until the arrival installs them.
		c.ck.sched.join(c.th, h.t)
		c.yield()
		return
	}
	c.op()
	c.ck.sched.join(c.th, h.t)
	h.t.ts.DrainSB(c.ck)
	c.yield()
}

// ---- Program status and assertions --------------------------------------------

// InRecovery reports whether this execution follows at least one failure.
func (c *Context) InRecovery() bool { return c.ck.stack.Top().ID > 0 }

// Execution returns the index of the current execution within the failure
// scenario (0 = pre-failure).
func (c *Context) Execution() int { return c.ck.stack.Top().ID }

// Assert checks a program invariant; failure is a bug with the guest's
// source location (the analog of a C assert aborting the process).
func (c *Context) Assert(cond bool, format string, args ...any) {
	if cond {
		return
	}
	panic(guestFault{typ: BugAssertion,
		msg: fmt.Sprintf(format, args...) + " at " + guestLocation()})
}

// Bug reports an unconditional bug manifestation.
func (c *Context) Bug(format string, args ...any) {
	panic(guestFault{typ: BugExplicit,
		msg: fmt.Sprintf(format, args...) + " at " + guestLocation()})
}

// Fnv64 computes the FNV-1a hash of [a, a+size) by loading each byte —
// support for checksum-based recovery (§4): every byte read participates in
// constraint refinement, so checksum validation explores exactly the
// reachable checksum values.
func (c *Context) Fnv64(a Addr, size uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := uint64(0); i < size; i++ {
		h ^= uint64(c.Load8(a.Add(i)))
		h *= prime64
	}
	return h
}

// ---- Source locations -----------------------------------------------------------

// guestLocation returns the innermost non-checker frame of the caller,
// formatted as "file.go:123".
func guestLocation() string {
	var pcs [16]uintptr
	n := runtime.Callers(2, pcs[:])
	frames := runtime.CallersFrames(pcs[:n])
	for {
		f, more := frames.Next()
		if f.File == "" {
			break
		}
		if !strings.Contains(f.File, "internal/core") || strings.HasSuffix(f.File, "_test.go") {
			return fmt.Sprintf("%s:%d", shortFile(f.File), f.Line)
		}
		if !more {
			break
		}
	}
	return "unknown"
}

func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
