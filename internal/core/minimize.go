package core

// Witness minimization: greedy delta debugging (ddmin) over a bug's recorded
// choice vector. The exploration's replay prefix is often much longer than
// the decisions that actually matter — evictions and read-from picks that the
// bug does not depend on. Minimize searches for a locally-minimal
// subsequence of the prefix that still reproduces the same bug key, giving
// the developer the shortest decision sequence to reason about.

import "jaaru/internal/forensics"

// minimizeMaxTrials bounds the number of replay trials one Minimize call may
// spend. Each trial is a full scenario re-execution; 512 is far above what
// ddmin needs on the bundled workloads (tens of trials) but keeps a
// pathological guest from running unbounded.
const minimizeMaxTrials = 512

// Minimize runs greedy delta debugging over b's recorded choice prefix and
// returns a copy of the report whose replay vector is locally minimal — no
// single recorded decision can be dropped without losing the bug — together
// with the minimization statistics. The returned report reproduces a bug
// with the same (type, message) key as b and its prefix is never longer than
// the original (ddmin only removes decisions). prog and opts must match the
// exploration that produced b.
func Minimize(prog Program, opts Options, b *BugReport) (*BugReport, *forensics.Minimization) {
	key := b.key()
	cur := append([]choicePoint(nil), b.replay...)
	trials := 0

	// Classic ddmin: remove progressively finer chunks; on success restart
	// coarse, on a full failed sweep double the granularity.
	n := 2
	for len(cur) > 0 && trials < minimizeMaxTrials {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		for start := 0; start < len(cur) && trials < minimizeMaxTrials; start += chunk {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			cand := make([]choicePoint, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			trials++
			if minimizeTrial(prog, opts, cand, key) {
				cur = cand
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if chunk <= 1 {
				break // locally minimal: no single decision is removable
			}
			n *= 2
			if n > len(cur) {
				n = len(cur)
			}
		}
	}

	min := &forensics.Minimization{
		OriginalLen:      len(b.replay),
		MinimizedLen:     len(cur),
		Trials:           trials,
		OriginalChoices:  b.Choices,
		MinimizedChoices: describeChoices(cur),
	}
	nb := *b
	nb.replay = cur
	nb.Choices = min.MinimizedChoices
	return &nb, min
}

// minimizeTrial reports whether replaying the candidate prefix still
// manifests a bug with the given key. A nondeterministic-replay panic —
// the candidate's decisions no longer line up with the choice points the
// guest presents — counts as not reproducing; any other panic propagates.
func minimizeTrial(prog Program, opts Options, prefix []choicePoint, key string) (ok bool) {
	o := opts.withDefaults()
	o.TraceLen = -1 // no trace needed, only the bug key
	o.MaxScenarios = 1
	o.Snapshots = -1
	c := New(prog, o)
	c.replaySegment = true
	c.chooser.seed(prefix)
	c.scenarios = 1
	defer func() {
		switch r := recover().(type) {
		case nil:
		case engineError:
			ok = false
		default:
			panic(r)
		}
	}()
	c.runScenario()
	_, ok = c.bugIndex[key]
	return ok
}
