package core

import (
	"fmt"

	"jaaru/internal/pmem"
	"jaaru/internal/tso"
)

// Performance-bug detection — the extension the paper names in §5.1
// ("Jaaru could be extended to find performance bugs such as redundant
// cache flushes and fences", the class Pmemcheck and Agamotto report).
// Enabled with Options.FlagPerfIssues; detection is per flush/fence
// *effect*, deduplicated by guest source location.

// PerfIssueKind classifies detected performance issues.
type PerfIssueKind int

const (
	// PerfRedundantFlush is a clflush/clflushopt whose cache line has no
	// stores since its last writeback: the flush does no persistency work.
	PerfRedundantFlush PerfIssueKind = iota
	// PerfRedundantFence is an sfence that drains an empty flush buffer:
	// on x86-TSO it orders nothing that was not already ordered.
	PerfRedundantFence
)

func (k PerfIssueKind) String() string {
	switch k {
	case PerfRedundantFlush:
		return "redundant flush"
	case PerfRedundantFence:
		return "redundant fence"
	default:
		return fmt.Sprintf("PerfIssueKind(%d)", int(k))
	}
}

// PerfIssue is one deduplicated performance finding.
type PerfIssue struct {
	Kind PerfIssueKind
	// Loc is the guest source location of the flush/fence instruction.
	Loc string
	// Line is an example cache line affected (flushes only): the smallest
	// line observed at this location — a canonical representative, so the
	// report does not depend on discovery order (serial or partitioned
	// across workers).
	Line pmem.Addr
	// Count is the number of dynamic occurrences across all scenarios.
	Count int
}

func (p *PerfIssue) String() string {
	if p.Kind == PerfRedundantFlush {
		return fmt.Sprintf("%v at %s (line %v, %d×)", p.Kind, p.Loc, p.Line, p.Count)
	}
	return fmt.Sprintf("%v at %s (%d×)", p.Kind, p.Loc, p.Count)
}

// notePerfFlush is called from the storage hooks right before a flush
// effect applies: the flush is redundant when every store to the line is
// already at or before the line's current writeback lower bound.
func (c *Checker) notePerfFlush(addr pmem.Addr, loc string) {
	if !c.opts.FlagPerfIssues {
		return
	}
	e := c.stack.Top()
	line := addr.Line()
	last := c.lastStore[line]
	if last == 0 {
		// No store to this line in this execution at all.
		c.recordPerfIssue(PerfRedundantFlush, loc, line)
		return
	}
	if e.LineKnown(line) && last <= e.CacheLine(line).Begin {
		c.recordPerfIssue(PerfRedundantFlush, loc, line)
	}
}

// notePerfFence is called when an sfence takes effect with an empty flush
// buffer.
func (c *Checker) notePerfFence(loc string) {
	if !c.opts.FlagPerfIssues {
		return
	}
	c.recordPerfIssue(PerfRedundantFence, loc, 0)
}

// perfKey is the dedup key of a perf finding: kind + guest location.
func perfKey(kind PerfIssueKind, loc string) string {
	return fmt.Sprintf("%d|%s", kind, loc)
}

func (c *Checker) recordPerfIssue(kind PerfIssueKind, loc string, line pmem.Addr) {
	key := perfKey(kind, loc)
	if p, ok := c.perfIssues[key]; ok {
		p.Count++
		// Keep the canonical (smallest) example line, the same rule the
		// parallel merge uses — first-seen would depend on exploration
		// order and diverge between serial and partitioned runs.
		if line < p.Line {
			p.Line = line
		}
	} else {
		c.perfIssues[key] = &PerfIssue{Kind: kind, Loc: loc, Line: line, Count: 1}
	}
	if c.snapActive {
		c.notePerfDelta(key, kind, loc, line)
	}
}

// perfStorage wraps the Checker's tso.Storage implementation; it exists
// only to document that perf detection hooks into the same effect points
// as failure injection.
var _ tso.Storage = (*Checker)(nil)
