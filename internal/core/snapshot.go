package core

import (
	"strings"
	"time"

	"jaaru/internal/obs"
	"jaaru/internal/pmem"
)

// Pre-failure snapshot engine — the deterministic-replay equivalent of the
// paper's fork()-based restart strategy (§4, "Evaluating executions").
//
// The paper's Jaaru forks the checked process at every failure point, so
// the expensive pre-failure execution runs once and each failure scenario
// resumes from a cheap process snapshot. Our replay-based engine instead
// re-ran the guest Run function for every scenario; for CCEH that made the
// byte-identical pre-failure prefix ~half of total wall time. This file
// closes the gap:
//
//   - During any full scenario run, captureSnap records the checker state
//     at each eligible failure point (and at the mandatory end-of-run
//     failure): the global sequence counter, fpCount, the allocator
//     high-water mark, the trace ring, and a pmem.Mark into the journaled
//     execution stack (store queues shared by reference + recorded length;
//     intervals via the undo journal — refinement mutates them in place,
//     so restoring needs undo, not sharing).
//   - A scenario whose recorded choice prefix crashes at a captured point
//     (fail@k taken, or the end-of-run failure) restores the snapshot and
//     jumps straight into the recovery loop of runScenario, never invoking
//     c.prog.Run again. The same machinery applies at recovery-segment
//     failure points, so multi-failure scenarios amortize their recovery
//     prefixes too.
//   - Snapshots are kept as a stack keyed by the choice prefix they were
//     captured under, paralleling the chooser's depth-first backtracking:
//     usableSnapshot drops entries whose prefix the current scenario no
//     longer replays, and restoring an entry invalidates (prunes) every
//     deeper one, since the rewind reclaims their journaled state.
//   - Each parallel worker owns a private snapshot cache over its private
//     stack. A claimed branch prefix that extends the prefix of a surviving
//     snapshot reuses it; otherwise the first scenario of the claim is a
//     full run that recaptures from scratch.
//
// Exactness: results with the engine on must be bit-identical to the
// full-replay path, including the canonical observability counters. The
// guest-visible state (queues, intervals, allocator, seq, trace) is restored
// exactly; the exploration-level counters a skipped prefix would have
// accumulated (steps, load-path counters, executions, per-scenario
// perf-issue and multi-rf manifestations) are captured as deltas against the
// scenario baseline and re-applied on restore. Counters whose value differs
// between a replayed and a fresh traversal of the same prefix
// (ChoicesReplayed) are computed analytically; phase timings are wall-clock
// and excluded from the canonical comparison anyway.

// snapKind distinguishes the two capture sites.
type snapKind uint8

const (
	// fpSnap is captured in BeforeFlushEffect, immediately before the
	// fail/continue choice of an eligible failure point: restoring it
	// resumes as if that choice selected "fail".
	fpSnap snapKind = iota
	// endSnap is captured after the pre-failure execution completed,
	// immediately before the mandatory end-of-run failure.
	endSnap
)

// snapEntry is one captured scenario state.
type snapEntry struct {
	kind snapKind
	// depth is the chooser cursor at capture; prefix is a copy of
	// points[:depth] — the decisions that deterministically lead here.
	depth  int
	prefix []choicePoint

	// Guest-visible state.
	mark    pmem.Mark
	seq     pmem.Seq
	fpCount int
	preDone bool
	high    pmem.Addr // allocator high-water mark
	trace   []TraceOp // nil when tracing is disabled

	// Exploration-level deltas accumulated by the capture scenario up to
	// this point (relative to its scenario baseline), re-applied when a
	// scenario restores this entry instead of re-running the prefix.
	vec        obs.CounterVec
	stepsDelta int64
	perf       map[string]*PerfIssue
	multi      map[string]*MultiRF
}

// snapEligible reports whether the snapshot engine can run for this checker
// at all. RandomScheduler and EvictRandom draw from an rng that is re-seeded
// per scenario and advanced by every operation — a skipped prefix would
// leave it in the wrong state — and instrumented (Yat), observed, or
// replayed runs must see every guest operation.
func (c *Checker) snapEligible() bool {
	return c.opts.Snapshots > 0 &&
		c.opts.MaxFailures > 0 &&
		c.prog.Recover != nil &&
		!c.opts.RandomScheduler &&
		c.opts.Eviction != EvictRandom &&
		c.snapshot == nil &&
		len(c.observers) == 0 &&
		!c.replaySegment
}

// beginSnapScenario latches eligibility and records the scenario baseline
// the capture deltas are measured against. Called at the top of runScenario,
// before any restore re-applies prefix contributions.
func (c *Checker) beginSnapScenario() {
	c.snapActive = c.snapEligible()
	if !c.snapActive {
		return
	}
	c.snapBase = c.col.Counters()
	c.snapBaseSteps = c.totalSteps
	if c.scenPerf == nil {
		c.scenPerf = make(map[string]*PerfIssue)
		c.scenMulti = make(map[string]*MultiRF)
	} else {
		clear(c.scenPerf)
		clear(c.scenMulti)
	}
}

// dropSnaps releases every snapshot (a fresh full run re-captures from
// scratch, and an engine panic leaves the journaled stack untrustworthy).
func (c *Checker) dropSnaps() {
	for i := range c.snaps {
		c.snaps[i] = nil
	}
	c.snaps = c.snaps[:0]
}

// usableSnapshot returns the deepest snapshot the current scenario can
// resume from, pruning entries captured under prefixes the chooser has
// backtracked away from. Snapshot prefixes are nested (each extends the one
// below), so stale entries are always the deepest and are dropped as they
// are found; a valid entry is usable if it is an endSnap (recovery re-runs
// from the completed pre-failure state) or an fpSnap whose failure decision
// the scenario records as taken. Deeper valid-but-unusable entries (e.g. a
// recovery failure point this scenario does not crash at) stay cached; they
// are pruned by restoreSnapshot only if a shallower entry is restored,
// because the rewind reclaims their journaled state.
func (c *Checker) usableSnapshot() *snapEntry {
	if !c.snapActive {
		return nil
	}
	pts := c.chooser.points
	for i := len(c.snaps) - 1; i >= 0; i-- {
		s := c.snaps[i]
		if s.depth > len(pts) || !prefixEqual(s.prefix, pts[:s.depth]) {
			c.snaps[i] = nil
			c.snaps = c.snaps[:i]
			continue
		}
		usable := s.kind == endSnap ||
			(s.depth < len(pts) &&
				pts[s.depth].kind == chooseFail && pts[s.depth].idx == 1)
		if usable {
			for j := i + 1; j < len(c.snaps); j++ {
				c.snaps[j] = nil
			}
			c.snaps = c.snaps[:i+1]
			return s
		}
	}
	return nil
}

func prefixEqual(a, b []choicePoint) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// captureSnap records the current scenario state if the engine is active
// and no snapshot exists at this depth yet (a restored prefix re-passes the
// shallower capture sites with the condition already satisfied).
func (c *Checker) captureSnap(kind snapKind) {
	if !c.snapActive {
		return
	}
	depth := c.chooser.cursor
	if n := len(c.snaps); n > 0 && depth <= c.snaps[n-1].depth {
		return
	}
	s := &snapEntry{
		kind:       kind,
		depth:      depth,
		prefix:     append([]choicePoint(nil), c.chooser.points[:depth]...),
		mark:       c.stack.Mark(),
		seq:        c.seq,
		fpCount:    c.fpCount,
		preDone:    c.preDone,
		high:       c.alloc.HighWater(),
		stepsDelta: c.totalSteps - c.snapBaseSteps,
	}
	if c.trace != nil {
		s.trace = c.trace.snapshot()
	}
	if c.col != nil {
		vec := c.col.Counters().Diff(c.snapBase)
		// Excluded from the replayed delta: per-scenario bookkeeping the
		// restore path accounts for itself (Scenarios is counted per
		// scenario regardless; Steps covers the in-flight segment via
		// stepsDelta; ChoicesReplayed is the skipped-prefix length, which
		// differs from what the capture run recorded as fresh), wall-clock
		// phase timings, and the engine's own counters.
		vec.Clear(obs.Scenarios, obs.Steps,
			obs.PreFailureNs, obs.PostFailureNs, obs.ReplayNs,
			obs.ChoicesReplayed, obs.ChoicesFresh,
			obs.SnapshotCaptures, obs.SnapshotRestores, obs.SnapshotRestoreNs,
			obs.ScenariosPruned, obs.FingerprintHits, obs.FingerprintMisses)
		s.vec = vec
	}
	if len(c.scenPerf) > 0 {
		s.perf = make(map[string]*PerfIssue, len(c.scenPerf))
		for k, p := range c.scenPerf {
			cp := *p
			s.perf[k] = &cp
		}
	}
	if len(c.scenMulti) > 0 {
		s.multi = make(map[string]*MultiRF, len(c.scenMulti))
		for k, m := range c.scenMulti {
			cm := *m
			s.multi[k] = &cm
		}
	}
	c.snaps = append(c.snaps, s)
	c.col.Inc(obs.SnapshotCaptures)
	c.col.NotePeak(obs.PeakSnapshotBytes, c.stack.RetainedBytes())
}

// restoreSnapshot rewinds the checker to a captured state and re-applies the
// exploration-level deltas the skipped prefix would have accumulated. It
// reports whether the scenario resumes crashed (fpSnap: the failure decision
// at s.depth is taken) or at the completed pre-failure execution (endSnap).
func (c *Checker) restoreSnapshot(s *snapEntry) (crashed bool) {
	var t0 time.Time
	if c.col != nil {
		t0 = time.Now()
	}
	c.stack.Rewind(s.mark)
	c.seq = s.seq
	c.fpCount = s.fpCount
	c.preDone = s.preDone
	c.alloc.Truncate(s.high)
	if c.trace != nil {
		c.trace.restore(s.trace)
	}
	cursor := s.depth
	if s.kind == fpSnap {
		cursor++ // the skipped prefix consumed the fail decision too
	}
	c.chooser.cursor = cursor
	c.totalSteps += s.stepsDelta
	c.execsPost += s.mark.Depth - 1
	c.bugEndedSegment = false
	for k, p := range s.perf {
		c.applyPerfDelta(k, p)
	}
	for k, m := range s.multi {
		cm := *m
		c.stats.mergeMultiRF(k, &cm)
		live := cm
		c.scenMulti[k] = &live
	}
	if c.col != nil {
		c.col.AddCounters(s.vec)
		c.col.Add(obs.Steps, s.stepsDelta)
		c.col.Add(obs.ChoicesReplayed, int64(cursor))
		c.col.Inc(obs.SnapshotRestores)
		c.col.Add(obs.SnapshotRestoreNs, time.Since(t0).Nanoseconds())
	}
	return s.kind == fpSnap
}

// applyPerfDelta merges one captured perf-issue delta into the live stats
// and the current scenario's delta, with the canonical count-sum /
// smallest-line rule every other merge path uses.
func (c *Checker) applyPerfDelta(key string, p *PerfIssue) {
	if ex, ok := c.perfIssues[key]; ok {
		ex.Count += p.Count
		if p.Line < ex.Line {
			ex.Line = p.Line
		}
	} else {
		cp := *p
		c.perfIssues[key] = &cp
	}
	live := *p
	c.scenPerf[key] = &live
}

// notePerfDelta mirrors recordPerfIssue into the scenario delta while the
// engine is active, so a snapshot captured later in this scenario can replay
// the prefix's manifestations.
func (c *Checker) notePerfDelta(key string, kind PerfIssueKind, loc string, line pmem.Addr) {
	if p, ok := c.scenPerf[key]; ok {
		p.Count++
		if line < p.Line {
			p.Line = line
		}
		return
	}
	c.scenPerf[key] = &PerfIssue{Kind: kind, Loc: loc, Line: line, Count: 1}
}

// noteMultiDelta mirrors flagMultiRF into the scenario delta. vals is nil
// when the caller short-circuited formatting because the manifestation
// cannot become the global representative — in that case it cannot become
// the merged representative either (the global maximum only grows), so the
// delta only needs the count and candidate maximum.
func (c *Checker) noteMultiDelta(key string, a pmem.Addr, n int, vals []string) {
	d, ok := c.scenMulti[key]
	if !ok {
		d = &MultiRF{Loc: key, Addr: a, Values: vals}
		c.scenMulti[key] = d
	} else if vals != nil && n >= d.Candidates {
		if n > d.Candidates || d.Values == nil ||
			strings.Join(vals, ",") < strings.Join(d.Values, ",") {
			d.Values = vals
			d.Addr = a
		}
	}
	if n > d.Candidates {
		d.Candidates = n
	}
	d.Count++
}
