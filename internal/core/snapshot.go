package core

import (
	"fmt"
	"math"
	"strings"
	"time"

	"jaaru/internal/obs"
	"jaaru/internal/pmem"
	"jaaru/internal/tso"
)

// Pre-failure snapshot engine — the deterministic-replay equivalent of the
// paper's fork()-based restart strategy (§4, "Evaluating executions").
//
// The paper's Jaaru forks the checked process at every failure point, so
// the expensive pre-failure execution runs once and each failure scenario
// resumes from a cheap process snapshot. Our replay-based engine instead
// re-ran the guest Run function for every scenario; for CCEH that made the
// byte-identical pre-failure prefix ~half of total wall time. This file
// closes the gap:
//
//   - During any full scenario run, captureSnap records the checker state
//     at each eligible failure point (and at the mandatory end-of-run
//     failure): the global sequence counter, fpCount, the allocator
//     high-water mark, the trace ring, and a pmem.Mark into the journaled
//     execution stack (store queues shared by reference + recorded length;
//     intervals via the undo journal — refinement mutates them in place,
//     so restoring needs undo, not sharing).
//   - A scenario whose recorded choice prefix crashes at a captured point
//     (fail@k taken, or the end-of-run failure) restores the snapshot and
//     jumps straight into the recovery loop of runScenario, never invoking
//     c.prog.Run again. The same machinery applies at recovery-segment
//     failure points, so multi-failure scenarios amortize their recovery
//     prefixes too.
//   - Snapshots are kept as a stack keyed by the choice prefix they were
//     captured under, paralleling the chooser's depth-first backtracking:
//     usableSnapshot drops entries whose prefix the current scenario no
//     longer replays, and restoring an entry invalidates (prunes) every
//     deeper one, since the rewind reclaims their journaled state.
//   - Each parallel worker owns a private snapshot cache over its private
//     stack. A claimed branch prefix that extends the prefix of a surviving
//     snapshot reuses it; otherwise the first scenario of the claim is a
//     full run that recaptures from scratch.
//
// Exactness: results with the engine on must be bit-identical to the
// full-replay path, including the canonical observability counters. The
// guest-visible state (queues, intervals, allocator, seq, trace) is restored
// exactly; the exploration-level counters a skipped prefix would have
// accumulated (steps, load-path counters, executions, per-scenario
// perf-issue and multi-rf manifestations) are captured as deltas against the
// scenario baseline and re-applied on restore. Counters whose value differs
// between a replayed and a fresh traversal of the same prefix
// (ChoicesReplayed) are computed analytically; phase timings are wall-clock
// and excluded from the canonical comparison anyway.

// Choice-point snapshot stack (Options.ChoiceSnapshots). The engine above
// amortizes the *pre-failure* prefix, but a sibling scenario still replayed
// the whole post-failure recovery prefix through the chooser — on CCEH that
// left choices_replayed ≈ 41× choices_fresh. The choiceSnap kind below closes
// the other half of the paper's fork() design: a snapshot is captured at
// every post-failure read-from choice point along the current DFS path, so
// advancing to the next sibling pops to the deepest shared prefix and
// restores O(state touched since that choice).
//
// A guest Go function cannot resume mid-call the way a forked process can,
// so a choiceSnap restore is a two-part move:
//
//   - The simulator state (pmem stack, seq, allocator, trace ring, TSO
//     buffers, scheduler scalars) is rewound exactly, as for fpSnap.
//   - The in-flight recovery segment is re-entered from its start in
//     *fast-forward* mode (ffwdState): every operation skips its effects and
//     its step accounting, loads are fed from a per-execution value log
//     (segLogs) recorded by the capture pass, and threads still take their
//     scheduler turns so the interleaving replays deterministically. At the
//     captured choice point — the arrival, identified by the log cursor
//     reaching the capture's log length — execution switches to live: the
//     per-thread TSO snapshots and segment scalars are installed and the
//     flipped sibling decision is consumed as an ordinary replayed choose().
//
// The fast-forward pass touches no counters and no simulator state, so the
// bit-identical accounting argument of the header comment carries over: the
// restore applies the captured deltas analytically and the live suffix
// accounts for itself. Any divergence between the log and the replayed
// operation stream panics with engineError — the same nondeterminism
// backstop the chooser itself provides.

// snapKind distinguishes the three capture sites.
type snapKind uint8

const (
	// fpSnap is captured in BeforeFlushEffect, immediately before the
	// fail/continue choice of an eligible failure point: restoring it
	// resumes as if that choice selected "fail".
	fpSnap snapKind = iota
	// endSnap is captured after the pre-failure execution completed,
	// immediately before the mandatory end-of-run failure.
	endSnap
	// choiceSnap is captured in resolveByte, immediately before a
	// post-failure multi-candidate read-from choice is consumed: restoring
	// it resumes mid-recovery-segment at that choice via fast-forward
	// replay (see the header comment above).
	choiceSnap
)

// segEventKind labels one recorded event of a post-failure segment's value
// log — everything a fast-forward replay must feed to the guest instead of
// recomputing.
type segEventKind uint8

const (
	// evLoad is one resolved load or RMW-read value (any path: store-buffer
	// hit, cache hit, or refinement), recorded whole-operation: logging once
	// per operation instead of once per byte keeps the always-on recording
	// tax on live post-failure execution small.
	evLoad segEventKind = iota
	// evAlloc is an Alloc result address (the allocator is truncated to the
	// capture high-water at restore, so fast-forwarded Allocs must not
	// re-advance it).
	evAlloc
	// evLimit is a PoolLimit result (the live allocator already reflects
	// the whole prefix during fast-forward, so the momentary value is fed).
	evLimit
)

// segEvent is one value-log entry.
type segEvent struct {
	addr pmem.Addr // evLoad: operation address; evAlloc/evLimit: result address
	val  uint64    // evLoad: the resolved value, little-endian over size bytes
	kind segEventKind
	size uint8 // evLoad: operation width in bytes
}

// ffwdState is the in-flight fast-forward replay of a restored choiceSnap.
type ffwdState struct {
	active bool
	log    []segEvent // the segment's value log, [0:target) pre-arrival
	cursor int
	target int
	snap   *snapEntry
}

// snapEntry is one captured scenario state.
type snapEntry struct {
	kind snapKind
	// depth is the chooser cursor at capture; prefix is a copy of
	// points[:depth] — the decisions that deterministically lead here.
	depth  int
	prefix []choicePoint

	// Guest-visible state.
	mark    pmem.Mark
	seq     pmem.Seq
	fpCount int
	preDone bool
	high    pmem.Addr // allocator high-water mark
	trace   []TraceOp // nil when tracing is disabled

	// Exploration-level deltas accumulated by the capture scenario up to
	// this point (relative to its scenario baseline), re-applied when a
	// scenario restores this entry instead of re-running the prefix.
	vec        obs.CounterVec
	stepsDelta int64
	perf       map[string]*PerfIssue
	multi      map[string]*MultiRF

	// choiceSnap-only fields: the mid-segment scalars and per-thread TSO
	// state the fast-forward arrival installs, plus the coordinates of the
	// capture within the segment's value log.
	segSteps  int            // c.steps at capture (ops of the in-flight segment)
	segDirty  bool           // c.dirty at capture
	execID    int            // stack index of the in-flight execution
	logTarget int            // len(segLogs[execID-1]) at capture — the arrival cursor
	tso       []tso.Snapshot // per-thread buffering state, scheduler order
	// lastStore copy (FlagPerfIssues only), as parallel slices so a warmed
	// capture allocates nothing.
	lsK []pmem.Addr
	lsV []pmem.Seq
}

// snapEligible reports whether the snapshot engine can run for this checker
// at all. RandomScheduler and EvictRandom draw from an rng that is re-seeded
// per scenario and advanced by every operation — a skipped prefix would
// leave it in the wrong state — and instrumented (Yat), observed, or
// replayed runs must see every guest operation.
func (c *Checker) snapEligible() bool {
	return c.opts.Snapshots > 0 &&
		c.opts.MaxFailures > 0 &&
		c.prog.Recover != nil &&
		!c.opts.RandomScheduler &&
		c.opts.Eviction != EvictRandom &&
		c.snapshot == nil &&
		len(c.observers) == 0 &&
		!c.replaySegment
}

// beginSnapScenario latches eligibility and records the scenario baseline
// the capture deltas are measured against. Called at the top of runScenario,
// before any restore re-applies prefix contributions.
func (c *Checker) beginSnapScenario() {
	c.segLog = nil // re-armed by pushExecution / restoreChoiceSnap
	c.snapActive = c.snapEligible()
	// The choice-point stack rides on the same eligibility gates (it shares
	// the journaled pmem stack and the delta accounting) plus its own flag;
	// the witness recorder must observe every operation, so it disables the
	// fast-forward path outright.
	c.chsnapActive = c.snapActive && c.opts.ChoiceSnapshots > 0 && c.wrec == nil
	if !c.snapActive {
		return
	}
	c.snapBase = c.col.Counters()
	c.snapBaseSteps = c.totalSteps
	if c.scenPerf == nil {
		c.scenPerf = make(map[string]*PerfIssue)
		c.scenMulti = make(map[string]*MultiRF)
	} else {
		clear(c.scenPerf)
		clear(c.scenMulti)
	}
}

// dropSnaps releases every snapshot (a fresh full run re-captures from
// scratch, and an engine panic leaves the journaled stack untrustworthy).
func (c *Checker) dropSnaps() {
	for i := range c.snaps {
		c.putSnapEntry(c.snaps[i])
		c.snaps[i] = nil
	}
	c.snaps = c.snaps[:0]
}

// getSnapEntry draws a snapshot entry from the free list (or allocates one).
// Pooled entries keep their backing slices, so a warmed capture/restore
// cycle — the steady state of sibling exploration — allocates nothing.
func (c *Checker) getSnapEntry() *snapEntry {
	if n := len(c.snapFree); n > 0 {
		s := c.snapFree[n-1]
		c.snapFree[n-1] = nil
		c.snapFree = c.snapFree[:n-1]
		return s
	}
	return &snapEntry{}
}

// putSnapEntry returns a pruned or dropped entry to the free list. Slices
// are retained for reuse; the maps are released (they are allocated only
// under FlagPerfIssues/FlagMultiRF, off the alloc-gated hot path).
func (c *Checker) putSnapEntry(s *snapEntry) {
	s.perf, s.multi = nil, nil
	c.snapFree = append(c.snapFree, s)
}

// usableSnapshot returns the deepest snapshot the current scenario can
// resume from, pruning entries captured under prefixes the chooser has
// backtracked away from. Snapshot prefixes are nested (each extends the one
// below), so stale entries are always the deepest and are dropped as they
// are found; a valid entry is usable if it is an endSnap (recovery re-runs
// from the completed pre-failure state) or an fpSnap whose failure decision
// the scenario records as taken. Deeper valid-but-unusable entries (e.g. a
// recovery failure point this scenario does not crash at) stay cached; they
// are pruned by restoreSnapshot only if a shallower entry is restored,
// because the rewind reclaims their journaled state.
func (c *Checker) usableSnapshot() *snapEntry {
	if !c.snapActive {
		return nil
	}
	pts := c.chooser.points
	// Entries at depth <= chooser.stable still prefix-match by construction
	// (advance only flips the deepest surviving index; see chooser.stable),
	// so only deeper entries need the O(depth) comparison — and those are
	// exactly the ones the flip invalidated, which fail fast.
	stable := c.chooser.stable
	c.chooser.stable = math.MaxInt
	for i := len(c.snaps) - 1; i >= 0; i-- {
		s := c.snaps[i]
		if s.depth > stable &&
			(s.depth > len(pts) || !prefixEqual(s.prefix, pts[:s.depth])) {
			c.putSnapEntry(s)
			c.snaps[i] = nil
			c.snaps = c.snaps[:i]
			continue
		}
		var usable bool
		switch s.kind {
		case endSnap:
			usable = true
		case fpSnap:
			usable = s.depth < len(pts) &&
				pts[s.depth].kind == chooseFail && pts[s.depth].idx == 1
		case choiceSnap:
			// Any scenario whose recorded vector extends this prefix can
			// resume here: the arrival consumes points[s.depth] — flipped by
			// advance, or unchanged with the flip somewhere deeper, in which
			// case the live suffix simply replays the remaining recorded
			// decisions. (advance's deepest modified index is >= s.depth
			// whenever the prefix still matches, so the suffix replay always
			// reaches the divergence.)
			usable = s.depth < len(pts)
		}
		if usable {
			for j := i + 1; j < len(c.snaps); j++ {
				c.putSnapEntry(c.snaps[j])
				c.snaps[j] = nil
			}
			c.snaps = c.snaps[:i+1]
			return s
		}
	}
	return nil
}

// chsnapExciseBelow drops every snapshot whose prefix takes, at point i, a
// branch porPruneSweep just excised from the schedule (ch.limit[i] clamped
// to 1). Snapshot prefixes are nested and captured along the live path —
// which stays on the clamped point's un-flipped branch — so this is a
// defensive no-op in practice, but the invariant that no surviving entry
// hangs off unreachable work is cheap to enforce and load-bearing for the
// restore path's correctness argument.
func (c *Checker) chsnapExciseBelow(i int) {
	for j := len(c.snaps) - 1; j >= 0; j-- {
		s := c.snaps[j]
		if s.depth <= i || s.prefix[i] == c.chooser.points[i] {
			// Nested prefixes: once one entry covering point i matches the
			// live decision, every shallower one does too.
			return
		}
		c.putSnapEntry(s)
		c.snaps[j] = nil
		c.snaps = c.snaps[:j]
	}
}

func prefixEqual(a, b []choicePoint) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// captureSnap records the current scenario state if the engine is active
// and no snapshot exists at this depth yet (a restored prefix re-passes the
// shallower capture sites with the condition already satisfied).
func (c *Checker) captureSnap(kind snapKind) {
	if !c.snapActive {
		return
	}
	depth := c.chooser.cursor
	if n := len(c.snaps); n > 0 && depth <= c.snaps[n-1].depth {
		return
	}
	s := c.getSnapEntry()
	s.kind = kind
	s.depth = depth
	s.prefix = append(s.prefix[:0], c.chooser.points[:depth]...)
	s.mark = c.stack.Mark()
	s.seq = c.seq
	s.fpCount = c.fpCount
	s.preDone = c.preDone
	s.high = c.alloc.HighWater()
	s.stepsDelta = c.totalSteps - c.snapBaseSteps
	s.trace = s.trace[:0]
	if c.trace != nil {
		s.trace = c.trace.snapshotInto(s.trace)
	}
	if c.col != nil {
		vec := c.col.Counters().Diff(c.snapBase)
		// Excluded from the replayed delta: per-scenario bookkeeping the
		// restore path accounts for itself (Scenarios is counted per
		// scenario regardless; Steps covers the in-flight segment via
		// stepsDelta; ChoicesReplayed is the skipped-prefix length, which
		// differs from what the capture run recorded as fresh), wall-clock
		// phase timings, and the engine's own counters — both the failure-
		// point engine's and the choice-point stack's.
		vec.Clear(obs.Scenarios, obs.Steps,
			obs.PreFailureNs, obs.PostFailureNs, obs.ReplayNs,
			obs.ChoicesReplayed, obs.ChoicesFresh,
			obs.SnapshotCaptures, obs.SnapshotRestores, obs.SnapshotRestoreNs,
			obs.ScenariosPruned, obs.FingerprintHits, obs.FingerprintMisses,
			obs.ChoicesRestored, obs.ChoiceSnapCaptures, obs.ChoiceRestores,
			obs.ChoiceRestoreNs, obs.ReplayStepsSaved, obs.RefinementsSkipped,
			obs.ReplaySteps)
		s.vec = vec
	} else {
		s.vec = obs.CounterVec{}
	}
	if len(c.scenPerf) > 0 {
		s.perf = make(map[string]*PerfIssue, len(c.scenPerf))
		for k, p := range c.scenPerf {
			cp := *p
			s.perf[k] = &cp
		}
	}
	if len(c.scenMulti) > 0 {
		s.multi = make(map[string]*MultiRF, len(c.scenMulti))
		for k, m := range c.scenMulti {
			cm := *m
			s.multi[k] = &cm
		}
	}
	c.snaps = append(c.snaps, s)
	c.col.Inc(obs.SnapshotCaptures)
	c.col.NotePeak(obs.PeakSnapshotBytes, c.stack.RetainedBytes())
}

// restoreSnapshot rewinds the checker to a captured state and re-applies the
// exploration-level deltas the skipped prefix would have accumulated. It
// reports whether the scenario resumes crashed (fpSnap: the failure decision
// at s.depth is taken) or at the completed pre-failure execution (endSnap).
func (c *Checker) restoreSnapshot(s *snapEntry) (crashed bool) {
	var t0 time.Time
	if c.col != nil {
		t0 = time.Now()
	}
	c.stack.Rewind(s.mark)
	// The rewound execution's guest segment is never resumed (fpSnap restores
	// re-inject the failure at the fail point; endSnap restores re-run nothing)
	// so no value-log events can arrive before pushExecution re-arms this.
	c.segLog = nil
	c.seq = s.seq
	c.fpCount = s.fpCount
	c.preDone = s.preDone
	c.alloc.Truncate(s.high)
	if c.trace != nil {
		c.trace.restore(s.trace)
	}
	cursor := s.depth
	if s.kind == fpSnap {
		cursor++ // the skipped prefix consumed the fail decision too
	}
	c.chooser.cursor = cursor
	c.totalSteps += s.stepsDelta
	c.execsPost += s.mark.Depth - 1
	c.bugEndedSegment = false
	for k, p := range s.perf {
		c.applyPerfDelta(k, p)
	}
	for k, m := range s.multi {
		cm := *m
		c.stats.mergeMultiRF(k, &cm)
		live := cm
		c.scenMulti[k] = &live
	}
	if c.col != nil {
		c.col.AddCounters(s.vec)
		c.col.Add(obs.Steps, s.stepsDelta)
		c.col.Add(obs.ChoicesReplayed, int64(cursor))
		// Satisfied by restore, not by re-execution: reported separately as
		// choices_restored (and folded back for the canonical comparison).
		c.col.Add(obs.ChoicesRestored, int64(cursor))
		c.col.Inc(obs.SnapshotRestores)
		ns := time.Since(t0).Nanoseconds()
		c.col.Add(obs.SnapshotRestoreNs, ns)
		c.col.Observe(obs.TimerSnapshotRestore, ns)
	}
	return s.kind == fpSnap
}

// captureChoiceSnap records the in-flight recovery-segment state immediately
// before a post-failure multi-candidate read-from choice is consumed. Called
// from resolveByte after candidate enumeration (and the POR elision check)
// but before any load-path accounting, so the arrival byte's own counters are
// charged exactly once — live, by the resuming scenario.
func (c *Checker) captureChoiceSnap() {
	if !c.chsnapActive || c.stack.Top().ID == 0 {
		// Pre-failure loads replay from fpSnap/endSnap entries; the stack
		// only amortizes post-failure choices.
		return
	}
	depth := c.chooser.cursor
	if n := len(c.snaps); n > 0 && depth <= c.snaps[n-1].depth {
		return
	}
	s := c.getSnapEntry()
	s.kind = choiceSnap
	s.depth = depth
	s.prefix = append(s.prefix[:0], c.chooser.points[:depth]...)
	s.mark = c.stack.Mark()
	s.seq = c.seq
	s.fpCount = c.fpCount
	s.preDone = c.preDone
	s.high = c.alloc.HighWater()
	s.stepsDelta = c.totalSteps - c.snapBaseSteps
	s.segSteps = c.steps
	s.segDirty = c.dirty
	s.execID = c.stack.Top().ID
	s.logTarget = len(c.segLogs[s.execID-1])
	s.trace = s.trace[:0]
	if c.trace != nil {
		s.trace = c.trace.snapshotInto(s.trace)
	}
	// Per-thread TSO buffering state in scheduler order. The capturing
	// thread holds the turn, so parked threads' states are quiescent; the
	// scheduler lock pins the thread list (Spawn appends under it). Growth
	// extends into spare capacity without `append` over live elements, which
	// would zero their pooled backing slices.
	c.sched.mu.Lock()
	threads := append(c.thScratch[:0], c.sched.threads...)
	c.sched.mu.Unlock()
	c.thScratch = threads
	for cap(s.tso) < len(threads) {
		s.tso = append(s.tso[:cap(s.tso)], tso.Snapshot{})
	}
	s.tso = s.tso[:len(threads)]
	for i, t := range threads {
		t.ts.CaptureInto(&s.tso[i])
	}
	s.lsK, s.lsV = s.lsK[:0], s.lsV[:0]
	if c.opts.FlagPerfIssues {
		for a, seq := range c.lastStore {
			s.lsK = append(s.lsK, a)
			s.lsV = append(s.lsV, seq)
		}
	}
	if c.col != nil {
		vec := c.col.Counters().Diff(c.snapBase)
		vec.Clear(obs.Scenarios, obs.Steps,
			obs.PreFailureNs, obs.PostFailureNs, obs.ReplayNs,
			obs.ChoicesReplayed, obs.ChoicesFresh,
			obs.SnapshotCaptures, obs.SnapshotRestores, obs.SnapshotRestoreNs,
			obs.ScenariosPruned, obs.FingerprintHits, obs.FingerprintMisses,
			obs.ChoicesRestored, obs.ChoiceSnapCaptures, obs.ChoiceRestores,
			obs.ChoiceRestoreNs, obs.ReplayStepsSaved, obs.RefinementsSkipped,
			obs.ReplaySteps)
		s.vec = vec
	} else {
		s.vec = obs.CounterVec{}
	}
	s.perf, s.multi = nil, nil
	if len(c.scenPerf) > 0 {
		s.perf = make(map[string]*PerfIssue, len(c.scenPerf))
		for k, p := range c.scenPerf {
			cp := *p
			s.perf[k] = &cp
		}
	}
	if len(c.scenMulti) > 0 {
		s.multi = make(map[string]*MultiRF, len(c.scenMulti))
		for k, m := range c.scenMulti {
			cm := *m
			s.multi[k] = &cm
		}
	}
	c.snaps = append(c.snaps, s)
	c.col.Inc(obs.ChoiceSnapCaptures)
	c.col.NotePeak(obs.PeakSnapshotBytes, c.stack.RetainedBytes())
}

// restoreChoiceSnap rewinds the checker to a captured choice point and
// re-enters the in-flight recovery segment in fast-forward mode (see the
// header comment). It reports whether the resumed segment crashed at a
// further failure point, exactly as a live runSegment call would.
func (c *Checker) restoreChoiceSnap(s *snapEntry) (crashed bool) {
	var t0 time.Time
	if c.col != nil {
		t0 = time.Now()
	}
	c.stack.Rewind(s.mark)
	c.seq = s.seq
	c.fpCount = s.fpCount
	c.preDone = s.preDone
	c.alloc.Truncate(s.high)
	if c.trace != nil {
		c.trace.restore(s.trace)
	}
	if c.opts.FlagPerfIssues {
		clear(c.lastStore)
		for i, a := range s.lsK {
			c.lastStore[a] = s.lsV[i]
		}
	}
	// The arrival consumes points[s.depth] as an ordinary replayed choose()
	// — validating kind and arity against the recorded vector — so the
	// cursor is set to the choice point itself, not past it.
	c.chooser.cursor = s.depth
	c.totalSteps += s.stepsDelta
	c.execsPost += s.mark.Depth - 1
	c.bugEndedSegment = false
	for k, p := range s.perf {
		c.applyPerfDelta(k, p)
	}
	for k, m := range s.multi {
		cm := *m
		c.stats.mergeMultiRF(k, &cm)
		live := cm
		c.scenMulti[k] = &live
	}
	if c.col != nil {
		c.col.AddCounters(s.vec)
		// stepsDelta counts the whole skipped prefix including the captured
		// segment's first segSteps ops; those segSteps re-run in fast-forward
		// and are re-added by the segment-end accounting, so the restore
		// contributes the difference.
		c.col.Add(obs.Steps, s.stepsDelta-int64(s.segSteps))
		c.col.Add(obs.ChoicesReplayed, int64(s.depth))
		c.col.Add(obs.ChoicesRestored, int64(s.depth))
		c.col.Inc(obs.ChoiceRestores)
		c.col.Add(obs.ReplayStepsSaved, s.stepsDelta-int64(s.segSteps))
		ns := time.Since(t0).Nanoseconds()
		c.col.Add(obs.ChoiceRestoreNs, ns)
		c.col.Observe(obs.TimerChoiceRestore, ns)
	}
	// Truncate the segment's value log to the capture point: the resumed
	// live suffix appends its own events from here, and any deeper captures
	// recorded by the previous sibling are dead.
	c.segLogs[s.execID-1] = c.segLogs[s.execID-1][:s.logTarget]
	c.segLog = &c.segLogs[s.execID-1]
	c.ffwd = ffwdState{
		active: true,
		log:    c.segLogs[s.execID-1],
		target: s.logTarget,
		snap:   s,
	}
	return c.runSegment(c.prog.Recover)
}

// ffwdArrive switches the fast-forward replay to live execution: the
// captured segment scalars and per-thread TSO states are installed and the
// pending operation (the load whose resolveByte call captured the snapshot)
// proceeds normally.
func (c *Checker) ffwdArrive() {
	s := c.ffwd.snap
	c.steps = s.segSteps
	c.dirty = s.segDirty
	c.sched.mu.Lock()
	threads := append(c.thScratch[:0], c.sched.threads...)
	c.sched.mu.Unlock()
	c.thScratch = threads
	if len(threads) != len(s.tso) {
		panic(engineError{fmt.Sprintf(
			"choice-snapshot fast-forward diverged: %d threads at arrival, captured %d",
			len(threads), len(s.tso))})
	}
	for i, t := range threads {
		t.ts.RestoreFrom(&s.tso[i])
	}
	c.ffwd = ffwdState{}
}

// ffwdLoad feeds one whole load (or RMW read) during fast-forward. live
// reports that the cursor reached the capture point: the arrival was
// installed and the operation — whose first byte hosts the captured choice —
// was resolved live, re-logging itself into the truncated value log.
func (c *Checker) ffwdLoad(t *thread, a pmem.Addr, size int) (v uint64, live bool) {
	f := &c.ffwd
	if f.cursor >= f.target {
		c.ffwdArrive()
		for i := 0; i < size; i++ {
			v |= uint64(c.loadByte(t, a+pmem.Addr(i), i == 0)) << (8 * uint(i))
		}
		c.noteSegLoad(a, size, v)
		return v, true
	}
	ev := f.log[f.cursor]
	if ev.kind != evLoad || ev.addr != a || int(ev.size) != size {
		panic(engineError{fmt.Sprintf(
			"choice-snapshot fast-forward diverged: log[%d] = {kind %d, addr %#x, size %d}, replay loads %#x/%d",
			f.cursor, ev.kind, ev.addr, ev.size, a, size)})
	}
	f.cursor++
	return ev.val, false
}

// ffwdAlloc feeds one Alloc result during fast-forward. The allocator was
// truncated to the capture high-water mark, which already covers every
// pre-arrival allocation, so the replayed Alloc must not re-advance it.
func (c *Checker) ffwdAlloc() pmem.Addr {
	f := &c.ffwd
	if f.cursor >= f.target {
		// The capture site is always a load byte; running out of log inside
		// any other operation means the replay diverged.
		panic(engineError{"choice-snapshot fast-forward diverged: log exhausted at Alloc"})
	}
	ev := f.log[f.cursor]
	if ev.kind != evAlloc {
		panic(engineError{fmt.Sprintf(
			"choice-snapshot fast-forward diverged: log[%d] kind %d, replay allocates",
			f.cursor, ev.kind)})
	}
	f.cursor++
	return ev.addr
}

// ffwdLimit feeds one PoolLimit result during fast-forward (the live
// allocator already reflects the whole prefix, so the momentary high-water
// value the guest observed must be fed from the log).
func (c *Checker) ffwdLimit() pmem.Addr {
	f := &c.ffwd
	if f.cursor >= f.target {
		panic(engineError{"choice-snapshot fast-forward diverged: log exhausted at PoolLimit"})
	}
	ev := f.log[f.cursor]
	if ev.kind != evLimit {
		panic(engineError{fmt.Sprintf(
			"choice-snapshot fast-forward diverged: log[%d] kind %d, replay reads pool limit",
			f.cursor, ev.kind)})
	}
	f.cursor++
	return ev.addr
}

// noteSegEvent appends one value-log event for the in-flight post-failure
// segment. segLog is non-nil exactly when the choice-point stack is live for
// this scenario and execution is past the first failure (pre-failure segments
// never host a choiceSnap); the boundary sites — beginSnapScenario,
// pushExecution, restoreSnapshot, restoreChoiceSnap — maintain it, keeping
// this per-byte hot path to a single pointer check.
func (c *Checker) noteSegEvent(kind segEventKind, a pmem.Addr) {
	if c.segLog == nil {
		return
	}
	*c.segLog = append(*c.segLog, segEvent{addr: a, kind: kind})
}

// noteSegLoad records one completed load (or RMW read) into the in-flight
// segment's value log — the whole-operation form of noteSegEvent.
func (c *Checker) noteSegLoad(a pmem.Addr, size int, v uint64) {
	if c.segLog == nil {
		return
	}
	*c.segLog = append(*c.segLog, segEvent{addr: a, val: v, kind: evLoad, size: uint8(size)})
}

// applyPerfDelta merges one captured perf-issue delta into the live stats
// and the current scenario's delta, with the canonical count-sum /
// smallest-line rule every other merge path uses.
func (c *Checker) applyPerfDelta(key string, p *PerfIssue) {
	if ex, ok := c.perfIssues[key]; ok {
		ex.Count += p.Count
		if p.Line < ex.Line {
			ex.Line = p.Line
		}
	} else {
		cp := *p
		c.perfIssues[key] = &cp
	}
	live := *p
	c.scenPerf[key] = &live
}

// notePerfDelta mirrors recordPerfIssue into the scenario delta while the
// engine is active, so a snapshot captured later in this scenario can replay
// the prefix's manifestations.
func (c *Checker) notePerfDelta(key string, kind PerfIssueKind, loc string, line pmem.Addr) {
	if p, ok := c.scenPerf[key]; ok {
		p.Count++
		if line < p.Line {
			p.Line = line
		}
		return
	}
	c.scenPerf[key] = &PerfIssue{Kind: kind, Loc: loc, Line: line, Count: 1}
}

// noteMultiDelta mirrors flagMultiRF into the scenario delta. vals is nil
// when the caller short-circuited formatting because the manifestation
// cannot become the global representative — in that case it cannot become
// the merged representative either (the global maximum only grows), so the
// delta only needs the count and candidate maximum.
func (c *Checker) noteMultiDelta(key string, a pmem.Addr, n int, vals []string) {
	d, ok := c.scenMulti[key]
	if !ok {
		d = &MultiRF{Loc: key, Addr: a, Values: vals}
		c.scenMulti[key] = d
	} else if vals != nil && n >= d.Candidates {
		if n > d.Candidates || d.Values == nil ||
			strings.Join(vals, ",") < strings.Join(d.Values, ",") {
			d.Values = vals
			d.Addr = a
		}
	}
	if n > d.Candidates {
		d.Candidates = n
	}
	d.Count++
}
