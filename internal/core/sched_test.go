package core

import (
	"fmt"
	"testing"
)

// A classic lost update: two threads read-modify-write a shared counter
// with plain (non-locked) operations. The deterministic round-robin
// schedule interleaves the loads and exposes it; the random scheduler must
// find both outcomes across seeds — the paper's concurrency-fuzzing use
// case (§4, Discussion).
func racyCounter(result *uint64) Program {
	return Program{
		Name: "racy-counter",
		Run: func(c *Context) {
			ctr := c.Alloc(8, 8)
			start := c.Alloc(8, 8)
			worker := func(c *Context) {
				for c.Load64(start) == 0 {
				}
				v := c.Load64(ctr)
				c.Store64(ctr, v+1)
			}
			h1 := c.Spawn(worker)
			h2 := c.Spawn(worker)
			c.Store64(start, 1) // release both workers in lockstep
			h1.Join(c)
			h2.Join(c)
			*result = c.Load64(ctr)
		},
	}
}

func TestRoundRobinExposesLostUpdate(t *testing.T) {
	var got uint64
	res := New(racyCounter(&got), Options{}).Run()
	if res.Buggy() {
		t.Fatalf("bugs: %v", res.Bugs)
	}
	if got != 1 {
		t.Errorf("round-robin interleaving produced %d, want the lost update (1)", got)
	}
}

func TestRandomSchedulerFindsBothOutcomes(t *testing.T) {
	outcomes := make(map[uint64]bool)
	for seed := int64(0); seed < 20; seed++ {
		var got uint64
		res := New(racyCounter(&got), Options{
			RandomScheduler: true,
			Seed:            seed,
		}).Run()
		if res.Buggy() {
			t.Fatalf("seed %d: bugs: %v", seed, res.Bugs)
		}
		outcomes[got] = true
	}
	if !outcomes[1] || !outcomes[2] {
		t.Errorf("20 seeds explored outcomes %v, want both 1 (lost update) and 2", outcomes)
	}
}

func TestRandomSchedulerDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) uint64 {
		var got uint64
		res := New(racyCounter(&got), Options{RandomScheduler: true, Seed: seed}).Run()
		if res.Buggy() {
			t.Fatalf("bugs: %v", res.Bugs)
		}
		return got
	}
	for seed := int64(0); seed < 5; seed++ {
		if a, b := run(seed), run(seed); a != b {
			t.Errorf("seed %d: outcomes %d vs %d", seed, a, b)
		}
	}
}

// The fix: a locked RMW makes the counter correct under every schedule.
func TestLockedRMWFixesRace(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		prog := Program{
			Name: "atomic-counter",
			Run: func(c *Context) {
				ctr := c.Alloc(8, 8)
				h1 := c.Spawn(func(c *Context) { c.AtomicAdd64(ctr, 1) })
				h2 := c.Spawn(func(c *Context) { c.AtomicAdd64(ctr, 1) })
				h1.Join(c)
				h2.Join(c)
				c.Assert(c.Load64(ctr) == 2, "atomic counter lost an update: %d", c.Load64(ctr))
			},
		}
		res := New(prog, Options{RandomScheduler: true, Seed: seed}).Run()
		if res.Buggy() {
			t.Fatalf("seed %d: %v", seed, res.Bugs)
		}
	}
}

// Crash consistency under concurrency: two threads insert into disjoint
// slots with per-slot commit stores; every post-failure state must be a
// valid mix of committed slots under both schedulers.
func TestConcurrentCommitStores(t *testing.T) {
	for _, random := range []bool{false, true} {
		name := fmt.Sprintf("random=%v", random)
		t.Run(name, func(t *testing.T) {
			prog := Program{
				Name: "concurrent-commits",
				Run: func(c *Context) {
					a := c.Alloc(128, 64)
					worker := func(off uint64) func(*Context) {
						return func(c *Context) {
							c.Store64(a.Add(off+8), 0xDA7A) // data
							c.Persist(a.Add(off+8), 8)
							c.Store64(a.Add(off), 1) // commit
							c.Persist(a.Add(off), 8)
						}
					}
					h1 := c.Spawn(worker(0))
					h2 := c.Spawn(worker(64))
					h1.Join(c)
					h2.Join(c)
					c.StorePtr(c.Root(), a)
					c.Persist(c.Root(), 8)
				},
				Recover: func(c *Context) {
					a := c.LoadPtr(c.Root())
					if a == 0 {
						// The base was published only at the end; probe the
						// well-known offset like the worker threads would.
						a = c.Root().Add(RootSize)
					}
					for _, off := range []uint64{0, 64} {
						if c.Load64(a.Add(off)) == 1 {
							c.Assert(c.Load64(a.Add(off+8)) == 0xDA7A,
								"slot %d committed without its data", off)
						}
					}
				},
			}
			res := New(prog, Options{RandomScheduler: random, Seed: 7}).Run()
			if res.Buggy() {
				t.Fatalf("bugs: %v (choices %s)", res.Bugs[0], res.Bugs[0].Choices)
			}
			if res.Scenarios < 3 {
				t.Errorf("only %d scenarios explored", res.Scenarios)
			}
		})
	}
}

// Sharing one Context across Spawned threads is a guest error; the
// scheduler must diagnose it instead of deadlocking.
func TestSharedContextDiagnosed(t *testing.T) {
	res := Execute("shared-context", func(c *Context) {
		a := c.Alloc(8, 8)
		h := c.Spawn(func(*Context) {
			c.Store64(a, 1) // WRONG: the parent's Context, not this thread's
			c.Store64(a, 2)
			c.Store64(a, 3)
		})
		c.Store64(a, 9)
		c.Store64(a, 10)
		h.Join(c)
	}, Options{})
	if !res.Buggy() {
		t.Fatal("shared-Context misuse not diagnosed")
	}
	if res.Bugs[0].Type != BugExplicit {
		t.Errorf("manifestation = %v", res.Bugs[0])
	}
}
