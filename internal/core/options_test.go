package core

import (
	"fmt"
	"reflect"
	"testing"
)

// withDefaults must be idempotent: worker clones (parallel.go) and the
// Replay/FormatWitness re-runs normalize an already normalized Options, and
// a second pass flipping a disabled feature back to its default was the bug
// this locks out (a disabled TraceLen collapsed to 0, which the next pass
// read as "use the default 64"; same for MaxFailures).
func TestWithDefaultsIdempotent(t *testing.T) {
	cases := []Options{
		{},
		{TraceLen: -1},
		{TraceLen: -7},
		{TraceLen: 1},
		{TraceLen: 64},
		{MaxFailures: -1},
		{MaxFailures: -3},
		{MaxFailures: 2},
		{Workers: -1},
		{TraceLen: -1, MaxFailures: -1, Workers: 4},
		{Snapshots: -1},
		{Snapshots: -2},
		{Snapshots: 1},
		{ChoiceSnapshots: -1},
		{ChoiceSnapshots: -2},
		{ChoiceSnapshots: 1},
		{Snapshots: -1, ChoiceSnapshots: 1},
	}
	for _, o := range cases {
		once := o.withDefaults()
		twice := once.withDefaults()
		if once != twice {
			t.Errorf("withDefaults not idempotent for %+v:\n once: %+v\ntwice: %+v",
				o, once, twice)
		}
	}
	if n := (Options{TraceLen: -1}).withDefaults().TraceLen; n != -1 {
		t.Errorf("disabled TraceLen normalized to %d, want the sentinel -1", n)
	}
	if n := (Options{MaxFailures: -1}).withDefaults().MaxFailures; n != -1 {
		t.Errorf("disabled MaxFailures normalized to %d, want the sentinel -1", n)
	}
	if n := (Options{}).withDefaults().Snapshots; n != 1 {
		t.Errorf("default Snapshots normalized to %d, want 1 (enabled)", n)
	}
	if n := (Options{Snapshots: -5}).withDefaults().Snapshots; n != -1 {
		t.Errorf("disabled Snapshots normalized to %d, want the sentinel -1", n)
	}
	if n := (Options{}).withDefaults().ChoiceSnapshots; n != 1 {
		t.Errorf("default ChoiceSnapshots normalized to %d, want 1 (enabled)", n)
	}
	if n := (Options{ChoiceSnapshots: -5}).withDefaults().ChoiceSnapshots; n != -1 {
		t.Errorf("disabled ChoiceSnapshots normalized to %d, want the sentinel -1", n)
	}
	if n := (Options{LeaseTTLMs: -9}).withDefaults().LeaseTTLMs; n != -1 {
		t.Errorf("disabled LeaseTTLMs normalized to %d, want the sentinel -1", n)
	}
	if n := (Options{HeartbeatMs: -9}).withDefaults().HeartbeatMs; n != -1 {
		t.Errorf("disabled HeartbeatMs normalized to %d, want the sentinel -1", n)
	}
}

// TestWithDefaultsIdempotentEveryField sweeps every Options field by
// reflection — zero, default-ish, and the negative sentinel probes for
// numeric fields — so a newly added field (the lease TTL and heartbeat
// interval were the latest) cannot ship a non-idempotent normalization
// unnoticed: the hand-maintained case list above can lag the struct, this
// sweep cannot.
func TestWithDefaultsIdempotentEveryField(t *testing.T) {
	typ := reflect.TypeOf(Options{})
	check := func(label string, o Options) {
		t.Helper()
		once := o.withDefaults()
		twice := once.withDefaults()
		if once != twice {
			t.Errorf("%s: withDefaults not idempotent:\n once: %+v\ntwice: %+v", label, once, twice)
		}
	}
	for i := 0; i < typ.NumField(); i++ {
		field := typ.Field(i)
		probes := []reflect.Value{}
		switch field.Type.Kind() {
		case reflect.Int, reflect.Int64:
			for _, v := range []int64{0, 1, 2, -1, -7} {
				probes = append(probes, reflect.ValueOf(v).Convert(field.Type))
			}
		case reflect.Uint64:
			for _, v := range []uint64{0, 1, RootSize, 1 << 24} {
				probes = append(probes, reflect.ValueOf(v).Convert(field.Type))
			}
		case reflect.Bool:
			probes = append(probes, reflect.ValueOf(true), reflect.ValueOf(false))
		case reflect.String:
			probes = append(probes, reflect.ValueOf(""), reflect.ValueOf("http://localhost:1"))
		case reflect.Interface:
			continue // EventTrace: not normalized, not comparable via !=
		default:
			t.Fatalf("Options.%s has kind %v: teach this sweep how to probe it", field.Name, field.Type.Kind())
		}
		for _, p := range probes {
			var o Options
			reflect.ValueOf(&o).Elem().Field(i).Set(p)
			check(fmt.Sprintf("%s=%v", field.Name, p.Interface()), o)
		}
	}
}

// TraceLen semantics across serial, parallel, and replay paths:
// negative disables bug traces, 0 defaults to 64, positive bounds the ring —
// and worker clones must inherit the same semantics, while Replay always
// returns a full trace regardless (tracing forced on is its contract).
func TestTraceLenSemantics(t *testing.T) {
	for _, tl := range []int{-1, 0, 1, 64} {
		for _, workers := range []int{1, 4} {
			label := fmt.Sprintf("TraceLen=%d workers=%d", tl, workers)
			res := New(buggyReplayProgram(), Options{TraceLen: tl, Workers: workers}).Run()
			if !res.Buggy() {
				t.Fatalf("%s: no bug found", label)
			}
			got := len(res.Bugs[0].Trace)
			switch {
			case tl < 0:
				if got != 0 {
					t.Errorf("%s: disabled tracing produced a %d-op trace", label, got)
				}
			case tl == 0:
				if got == 0 || got > 64 {
					t.Errorf("%s: default tracing trace length = %d, want 1..64", label, got)
				}
			default:
				if got == 0 || got > tl {
					t.Errorf("%s: trace length = %d, want 1..%d", label, got, tl)
				}
			}
			// Replay of the found bug always yields the full trace.
			trace := Replay(buggyReplayProgram(), Options{TraceLen: tl}, res.Bugs[0])
			if len(trace) == 0 {
				t.Errorf("%s: Replay returned an empty trace", label)
			}
		}
	}
}

// A worker clone of a no-failure-injection exploration must keep injection
// disabled (MaxFailures sentinel survives the clone's re-normalization),
// so serial and parallel direct executions agree.
func TestParallelPreservesDisabledFailureInjection(t *testing.T) {
	prog := Program{
		Name: "direct",
		Run: func(c *Context) {
			r := c.Root()
			c.Store64(r, 1)
			c.Clflush(r, 8)
			c.Store64(r.Add(64), 2)
			c.Clflush(r.Add(64), 8)
		},
		Recover: func(c *Context) { _ = c.Load64(c.Root()) },
	}
	serial := New(prog, Options{MaxFailures: -1}).Run()
	if serial.Executions != 1 || serial.Scenarios != 1 {
		t.Fatalf("serial direct execution explored %d executions / %d scenarios",
			serial.Executions, serial.Scenarios)
	}
	par := New(prog, Options{MaxFailures: -1, Workers: 4}).Run()
	assertSameExploration(t, "direct workers=4", serial, par)
}
