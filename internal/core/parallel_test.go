package core

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func timeNowForTest() time.Time { return time.Now() }

// ---- chooser splitting -------------------------------------------------------

// TestSplitOffPartitionsTree drives one chooser over a fixed shape while
// repeatedly splitting off siblings, then explores every donated branch
// with a second chooser: together they must cover the full tree exactly
// once.
func TestSplitOffPartitionsTree(t *testing.T) {
	shape := []int{2, 3, 2} // 12 leaves
	visit := func(ch *chooser) [3]int {
		ch.begin()
		var leaf [3]int
		for i, n := range shape {
			leaf[i] = ch.choose(chooseReadFrom, n)
		}
		return leaf
	}

	seen := make(map[[3]int]int)
	var donated []branch

	main := &chooser{}
	main.seed(nil)
	for {
		seen[visit(main)]++
		donated = append(donated, main.splitOff()...)
		if !main.advance() {
			break
		}
	}
	for len(donated) > 0 {
		br := donated[0]
		donated = donated[1:]
		w := &chooser{}
		w.seed(br.points)
		for {
			seen[visit(w)]++
			donated = append(donated, w.splitOff()...)
			if !w.advance() {
				break
			}
		}
	}

	if len(seen) != 12 {
		t.Fatalf("covered %d leaves, want 12", len(seen))
	}
	for leaf, n := range seen {
		if n != 1 {
			t.Errorf("leaf %v visited %d times", leaf, n)
		}
	}
}

// TestSplitOffNothingToDonate: a chooser at its last branch has no work to
// give away.
func TestSplitOffNothingToDonate(t *testing.T) {
	ch := &chooser{}
	ch.seed([]choicePoint{{kind: chooseFail, n: 2, idx: 1}})
	if bs := ch.splitOff(); bs != nil {
		t.Fatalf("splitOff on a frozen prefix donated %v", bs)
	}
}

// ---- frontier ---------------------------------------------------------------

func TestFrontierDrainsAndReleases(t *testing.T) {
	f := newFrontier(4, nil)
	f.push([]branch{{}})
	br, ok := f.pop()
	if !ok || br.points != nil {
		t.Fatalf("pop = %v, %v", br, ok)
	}
	// The single claim is outstanding: a concurrent popper must block
	// until finish drops pending to zero, then give up.
	released := make(chan bool)
	go func() {
		_, ok := f.pop()
		released <- ok
	}()
	f.finish()
	if got := <-released; got {
		t.Fatal("pop returned a branch from a drained frontier")
	}
}

// ---- parallel equivalence (in-package: exact choice-point accounting) --------

func parallelTreeProgram() Program {
	// Several failure points and multi-candidate loads: a tree with real
	// width at several depths.
	return Program{
		Name: "parallel-tree",
		Run: func(c *Context) {
			r := c.Root()
			for i := uint64(0); i < 4; i++ {
				c.Store64(r.Add(i*8), i+1)
				c.Store64(r.Add(i*8), i+100)
				c.Clflush(r.Add(i*8), 8)
			}
		},
		Recover: func(c *Context) {
			r := c.Root()
			for i := uint64(0); i < 4; i++ {
				_ = c.Load64(r.Add(i * 8))
			}
		},
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	serial := New(parallelTreeProgram(), Options{}).Run()
	for _, workers := range []int{2, 4, 7} {
		par := New(parallelTreeProgram(), Options{Workers: workers}).Run()
		assertSameExploration(t, fmt.Sprintf("workers=%d", workers), serial, par)
	}
}

func TestParallelMatchesSerialWithBugs(t *testing.T) {
	prog := Program{
		Name: "parallel-bugs",
		Run: func(c *Context) {
			r := c.Root()
			c.Store64(r, 7)
			c.Clflush(r, 8)
			c.Store64(r.Add(64), 9)
			c.Clflush(r.Add(64), 8)
		},
		Recover: func(c *Context) {
			r := c.Root()
			a, b := c.Load64(r), c.Load64(r.Add(64))
			c.Assert(b == 0 || a == 7, "second line persisted before first: a=%d b=%d", a, b)
			if a == 7 && b == 9 {
				c.Bug("both lines persisted")
			}
		},
	}
	serial := New(prog, Options{}).Run()
	if !serial.Buggy() {
		t.Fatal("program expected to be buggy")
	}
	par := New(prog, Options{Workers: 4}).Run()
	assertSameExploration(t, "workers=4", serial, par)
	for i := range serial.Bugs {
		s, p := serial.Bugs[i], par.Bugs[i]
		if s.Type != p.Type || s.Message != p.Message || s.Count != p.Count || s.Choices != p.Choices {
			t.Errorf("bug %d differs:\nserial: %v (%s)\nparallel: %v (%s)",
				i, s, s.Choices, p, p.Choices)
		}
	}
}

func assertSameExploration(t *testing.T, label string, serial, par *Result) {
	t.Helper()
	if par.Scenarios != serial.Scenarios {
		t.Errorf("%s: Scenarios = %d, serial %d", label, par.Scenarios, serial.Scenarios)
	}
	if par.Executions != serial.Executions {
		t.Errorf("%s: Executions = %d, serial %d", label, par.Executions, serial.Executions)
	}
	if par.FailurePoints != serial.FailurePoints {
		t.Errorf("%s: FailurePoints = %d, serial %d", label, par.FailurePoints, serial.FailurePoints)
	}
	if par.Steps != serial.Steps {
		t.Errorf("%s: Steps = %d, serial %d", label, par.Steps, serial.Steps)
	}
	if par.RFChoicePoints != serial.RFChoicePoints {
		t.Errorf("%s: RFChoicePoints = %d, serial %d", label, par.RFChoicePoints, serial.RFChoicePoints)
	}
	if par.FailDecisionPoints != serial.FailDecisionPoints {
		t.Errorf("%s: FailDecisionPoints = %d, serial %d", label, par.FailDecisionPoints, serial.FailDecisionPoints)
	}
	if par.MaxRFCandidates != serial.MaxRFCandidates {
		t.Errorf("%s: MaxRFCandidates = %d, serial %d", label, par.MaxRFCandidates, serial.MaxRFCandidates)
	}
	if par.Complete != serial.Complete {
		t.Errorf("%s: Complete = %v, serial %v", label, par.Complete, serial.Complete)
	}
	if len(par.Bugs) != len(serial.Bugs) {
		t.Errorf("%s: %d bugs, serial %d", label, len(par.Bugs), len(serial.Bugs))
	}
}

// TestParallelScenarioCap: the global admission counter must stop the
// whole fleet at exactly MaxScenarios.
func TestParallelScenarioCap(t *testing.T) {
	res := New(parallelTreeProgram(), Options{Workers: 4, MaxScenarios: 5}).Run()
	if res.Scenarios != 5 {
		t.Errorf("Scenarios = %d, want the cap 5", res.Scenarios)
	}
	if res.Complete {
		t.Error("capped exploration reported complete")
	}
}

// TestParallelStopAtFirstBug: the stop is cooperative, but exploration must
// terminate early and report at least the bug.
func TestParallelStopAtFirstBug(t *testing.T) {
	prog := Program{
		Name: "stop-first",
		Run: func(c *Context) {
			r := c.Root()
			for i := uint64(0); i < 12; i++ {
				c.Store64(r.Add(i*64), i+1)
				c.Clflush(r.Add(i*64), 8)
			}
		},
		Recover: func(c *Context) {
			if c.Load64(c.Root()) == 0 {
				c.Bug("first line unpersisted")
			}
		},
	}
	res := New(prog, Options{Workers: 4, StopAtFirstBug: true}).Run()
	if !res.Buggy() {
		t.Fatal("no bug found")
	}
	if res.Complete {
		t.Error("StopAtFirstBug exploration reported complete")
	}
}

// TestParallelEngineBugGuard: replaying a claimed prefix against a program
// whose choice shape does not match (the signature of a nondeterministic
// guest) raises an internal engine panic. A worker must convert it into a
// reported BugEngine carrying the offending prefix and mark its stats
// truncated, instead of crashing the whole exploration.
func TestParallelEngineBugGuard(t *testing.T) {
	c := New(parallelTreeProgram(), Options{})
	f := newFrontier(0, nil) // never hungry: no donations from this claim
	caps := newSharedCaps(c.opts, f)
	// The program's first choice point is fail/2; this prefix claims to
	// have recorded rf/7 there.
	br := branch{points: []choicePoint{{kind: chooseReadFrom, n: 7, idx: 3}}}
	c.exploreBranch(br, f, caps)

	if len(c.bugs) != 1 || c.bugs[0].Type != BugEngine {
		t.Fatalf("bugs = %v, want one BugEngine", c.bugs)
	}
	if got := c.bugs[0].Choices; got != describeChoices(br.points) {
		t.Errorf("engine bug Choices = %q, want the claimed prefix", got)
	}
	if !c.truncated {
		t.Error("abandoned subtree did not mark the stats truncated")
	}
	// The truncation must surface as an incomplete Result after a merge.
	agg := New(parallelTreeProgram(), Options{})
	agg.stats.merge(&c.stats)
	if res := agg.buildResult(timeNowForTest(), true); res.Complete {
		t.Error("merged result with a truncated worker reported complete")
	}
}

// TestWorkersDefaultsToSerial: Workers 0/1 take the serial path and negative
// resolves to GOMAXPROCS.
func TestWorkersDefaultsToSerial(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Workers != 1 {
		t.Errorf("default Workers = %d, want 1", o.Workers)
	}
	o = Options{Workers: -1}.withDefaults()
	if o.Workers < 1 {
		t.Errorf("Workers(-1) resolved to %d", o.Workers)
	}
	res := New(parallelTreeProgram(), Options{Workers: -1}).Run()
	if !res.Complete {
		t.Error("GOMAXPROCS exploration incomplete")
	}
}

// ---- distributed-era regression tests ----------------------------------------

// TestParallelSmallTreeManyWorkers: many more workers than scenarios. The
// frontier's refill path (pop's hungry/lowMark interplay) must not stall
// when the tree is exhausted before most workers ever receive a branch: pop
// blocks only while claims are outstanding (pending > 0) and every consumer
// is released by the final finish broadcast. Regression test for the
// small-tree liveness audit documented on frontier.pop.
func TestParallelSmallTreeManyWorkers(t *testing.T) {
	prog := Program{
		Name: "litmus-tiny",
		Run: func(c *Context) {
			r := c.Root()
			c.Store64(r, 1)
			c.Clflush(r, 8)
		},
		Recover: func(c *Context) { _ = c.Load64(c.Root()) },
	}
	serial := New(prog, Options{}).Run()
	if serial.Scenarios > 4 {
		t.Fatalf("litmus workload grew to %d scenarios; this test needs workers >> scenarios", serial.Scenarios)
	}
	// The stall this guards against was timing-dependent: iterate to give
	// the 8-worker pool many chances to race pop/finish/stop.
	for i := 0; i < 50; i++ {
		par := New(prog, Options{Workers: 8}).Run()
		assertSameExploration(t, fmt.Sprintf("iter %d", i), serial, par)
	}
}

// TestSharedCapsConcurrentSameBug: the same canonical bug key reported
// concurrently by many workers counts once — toward MaxBugs and toward the
// StopAtFirstBug trigger — because noteBug dedupes by key before any cap
// accounting. Run under -race: this is the contract documented on noteBug
// and mirrored by the distributed coordinator's commit handler.
func TestSharedCapsConcurrentSameBug(t *testing.T) {
	caps := newSharedCaps(Options{StopAtFirstBug: true}.withDefaults(), newFrontier(0, nil))
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				caps.noteBug("assert:same-key")
			}
		}()
	}
	wg.Wait()
	if n := len(caps.keys); n != 1 {
		t.Errorf("concurrent same-key reports left %d keys, want 1", n)
	}
	if !caps.stopped.Load() {
		t.Error("StopAtFirstBug did not request a stop")
	}

	// Duplicates must not inflate the MaxBugs count either: 16×200 reports
	// of one key stay one bug, below a cap of 2; the second distinct key
	// reaches it.
	caps = newSharedCaps(Options{MaxBugs: 2}.withDefaults(), newFrontier(0, nil))
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				caps.noteBug("assert:first")
			}
		}()
	}
	wg.Wait()
	if caps.stopped.Load() {
		t.Fatal("duplicate bug keys counted toward MaxBugs")
	}
	caps.noteBug("assert:second")
	if !caps.stopped.Load() {
		t.Error("MaxBugs = 2 did not stop at the second distinct bug")
	}
}
