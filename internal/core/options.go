// Package core implements the Jaaru model checking algorithm (§4 of the
// paper): guest programs issue stores, loads, cache flushes and fences
// against a simulated persistent-memory pool; the checker injects power
// failures immediately before flush operations and lazily explores, via
// constraint refinement over per-cache-line writeback intervals, every
// distinct assignment of pre-failure stores to post-failure loads.
package core

import (
	"io"
	"runtime"

	"jaaru/internal/pmem"
)

// EvictionPolicy controls when store-buffer entries drain to the cache. The
// paper's artifact notes this nondeterminism is not explored exhaustively;
// the policy is fixed per checker run and deterministic under replay.
type EvictionPolicy int

const (
	// EvictEager drains the store buffer after every operation: stores
	// take effect in the cache immediately. This is the default — the
	// persistency nondeterminism (which cache lines reached persistent
	// memory) is still explored in full.
	EvictEager EvictionPolicy = iota
	// EvictAtFences drains the store buffer only at fences, locked RMW
	// instructions, or when the buffer reaches SBCapacity. This exposes
	// TSO store-buffering behaviours (a thread's stores invisible to
	// others) in addition to persistency nondeterminism.
	EvictAtFences
	// EvictRandom drains a pseudo-random number of entries after each
	// operation, seeded by Options.Seed; deterministic under replay.
	EvictRandom
	// EvictExplore makes store-buffer eviction a model-checking choice
	// point, exactly as in the paper's Explore algorithm (Figure 11,
	// lines 4–8: "choose to evict"). Every TSO-visible buffering
	// behaviour is then explored exhaustively — at a cost exponential in
	// program length, so this policy is intended for litmus-scale
	// programs.
	EvictExplore
)

// Options configures a Checker. The zero value is usable: defaults are
// filled in by New.
type Options struct {
	// PoolSize is the size in bytes of the simulated persistent-memory
	// pool (default 16 MiB). The first RootSize bytes form the root area
	// returned by Context.Root.
	PoolSize uint64

	// MaxFailures bounds the number of power failures per scenario — the
	// depth of the execution stack minus one (default 1: a pre-failure
	// and one post-failure execution, as in the paper's experiments).
	// A negative value disables failure injection entirely (direct
	// execution; normalized to the sentinel -1); a nil Program.Recover
	// does the same.
	MaxFailures int

	// MaxSteps bounds the operations of a single execution; exceeding it
	// reports a BugInfiniteLoop (the paper's "stuck in an infinite loop"
	// symptom). Default 1 << 20.
	MaxSteps int

	// MaxScenarios caps exploration (default 1 << 20 scenarios).
	MaxScenarios int

	// Eviction selects the store-buffer drain policy.
	Eviction EvictionPolicy

	// SBCapacity bounds the store buffer under EvictAtFences (default 64
	// entries; 0 keeps the default).
	SBCapacity int

	// Seed seeds EvictRandom and the random scheduler.
	Seed int64

	// RandomScheduler interleaves guest threads with a schedule drawn from
	// Seed instead of round-robin — the paper's proposed use of Jaaru as a
	// concurrency-bug fuzzer (§4, Discussion). Deterministic per seed.
	RandomScheduler bool

	// FlagMultiRF enables the paper's debugging support: every load that
	// may read from more than one store is recorded with its candidate
	// stores (§4, "Debugging support").
	FlagMultiRF bool

	// FlagPerfIssues enables performance-bug detection — the extension
	// the paper proposes in §5.1: redundant cache-line flushes (the line
	// had nothing unflushed) and redundant sfences (an empty flush
	// buffer), the issue classes Pmemcheck and Agamotto report.
	FlagPerfIssues bool

	// TraceLen keeps a ring buffer of the last TraceLen operations per
	// scenario for bug reports (default 64; negative disables tracing and
	// is normalized to the sentinel -1). Replay and FormatWitness always
	// force tracing on for the one scenario they re-run — producing the
	// trace is their purpose — regardless of this setting.
	TraceLen int

	// StopAtFirstBug aborts exploration at the first bug found. Under
	// parallel exploration the stop is cooperative: scenarios already in
	// flight on other workers finish, so the result may carry more than
	// one bug.
	StopAtFirstBug bool

	// MaxBugs caps distinct recorded bugs (default 64).
	MaxBugs int

	// Workers is the number of goroutines exploring the choice tree
	// (default 1: the serial reference semantics). A negative value means
	// GOMAXPROCS. Workers > 1 partitions the tree across private worker
	// checkers via a shared branch frontier and merges their findings
	// deterministically: on a full exploration the result (bug set,
	// scenario/execution/failure-point counts, candidate statistics) is
	// identical to a serial run. Explorations truncated by MaxScenarios,
	// MaxBugs, or StopAtFirstBug stop at the same global caps but may
	// select a different (still truncated) subset of scenarios than the
	// serial order would.
	Workers int

	// Snapshots controls the pre-failure snapshot engine (snapshot.go):
	// the checker captures the scenario state at each eligible failure
	// point during a full run, and a later scenario whose choice prefix
	// crashes at a captured point restores the snapshot instead of
	// re-executing the guest from scratch — the deterministic-replay
	// equivalent of the paper's fork()-based restart strategy. On by
	// default (0 is normalized to 1); a negative value disables the engine
	// (normalized to the sentinel -1: every scenario re-runs the guest).
	// Results are bit-identical either way, including the canonical
	// observability counters; the engine is automatically bypassed for the
	// configurations it cannot replay exactly (RandomScheduler,
	// EvictRandom, instrumented or replayed runs).
	Snapshots int

	// ChoiceSnapshots controls the choice-point snapshot stack
	// (snapshot.go): in addition to the per-failure-point snapshots above,
	// the checker captures an incremental snapshot at each post-failure
	// read-from choice point along the current DFS path, so advancing to
	// the next sibling of a deep choice restores O(state touched since
	// that choice) instead of replaying the whole post-failure prefix. On
	// by default (0 is normalized to 1); a negative value disables the
	// stack (normalized to the sentinel -1: sibling scenarios replay their
	// prefix through the chooser as before). Results are bit-identical
	// either way, including the canonical observability counters; the
	// split between replayed and restored choices is reported through the
	// non-canonical choices_restored metric. The stack rides on the same
	// eligibility gates as Snapshots and is inert when Snapshots < 0.
	ChoiceSnapshots int

	// POR controls the persistency-aware partial-order-reduction layer
	// (por.go): single-valued read-from elision collapses choice points
	// whose candidate stores all carry the same value (no subsequent load
	// can observe which store was read, so the sibling branches commute),
	// and post-failure state fingerprinting skips the recovery subtree of
	// a failure point whose canonical persisted state has already been
	// explored, re-applying the recorded subtree statistics instead. On by
	// default (0 is normalized to 1); a negative value disables both
	// mechanisms (normalized to the sentinel -1: every equivalent scenario
	// is explored explicitly). The reachable-behaviour set and the bug set
	// are identical either way; scenario counts with POR on are smaller.
	// Fingerprinting is automatically bypassed for configurations it
	// cannot replay exactly (MaxFailures != 1, RandomScheduler,
	// EvictRandom, instrumented or replayed runs); elision stays active
	// under witness replay so recorded choice vectors keep their shape.
	POR int

	// LeaseTTLMs is the distributed-exploration lease time-to-live in
	// milliseconds (internal/dist): a worker that neither commits nor
	// heartbeats within the TTL is presumed dead and its uncommitted
	// subtree is requeued. Default 30000; a negative value disables expiry
	// (normalized to the sentinel -1: leases never time out — useful for
	// deterministic tests and debugging stopped workers).
	LeaseTTLMs int

	// HeartbeatMs is the interval at which a distributed worker renews its
	// lease between commits (internal/dist). Default 2000; a negative value
	// disables heartbeats (normalized to the sentinel -1: only commits
	// renew the lease).
	HeartbeatMs int

	// CoordinatorURL is the base URL of the jaaru-server coordinator a
	// jaaru-worker process reports to. Empty (the zero value is its own
	// sentinel) means no coordinator: exploration runs in-process.
	CoordinatorURL string

	// Observe enables the observability layer: per-worker lock-free metric
	// shards (internal/obs) aggregated into Result.Metrics. Off by default;
	// when off every instrumentation hook is a nil check.
	Observe bool

	// EventTrace, when non-nil, receives a structured JSONL event stream
	// (run/scenario/frontier/bug events) during exploration; setting it
	// implies Observe. Writes are serialized by the registry, so any
	// io.Writer works.
	EventTrace io.Writer
}

// RootSize is the size of the root area at the start of the pool, always
// addressable and reachable by recovery code via Context.Root.
const RootSize = 4096

// PoolBase is the base address of the simulated pool. It is nonzero so that
// address 0 acts as a null pointer.
const PoolBase = pmem.Addr(0x1000_0000)

func (o Options) withDefaults() Options {
	if o.PoolSize == 0 {
		o.PoolSize = 16 << 20
	}
	if o.PoolSize < RootSize {
		o.PoolSize = RootSize
	}
	// Normalization is idempotent: "disabled" keeps the distinct sentinel
	// -1 rather than collapsing onto the zero value, so re-normalizing an
	// already normalized Options (worker clones in parallel.go, the
	// Replay/FormatWitness re-runs) cannot flip a disabled feature back to
	// its default. See TestWithDefaultsIdempotent.
	if o.MaxFailures == 0 {
		o.MaxFailures = 1
	}
	if o.MaxFailures < 0 {
		o.MaxFailures = -1
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 1 << 20
	}
	if o.MaxScenarios == 0 {
		o.MaxScenarios = 1 << 20
	}
	if o.SBCapacity == 0 {
		o.SBCapacity = 64
	}
	if o.TraceLen == 0 {
		o.TraceLen = 64
	}
	if o.TraceLen < 0 {
		o.TraceLen = -1
	}
	if o.MaxBugs == 0 {
		o.MaxBugs = 64
	}
	if o.Snapshots == 0 {
		o.Snapshots = 1
	}
	if o.Snapshots < 0 {
		o.Snapshots = -1
	}
	if o.ChoiceSnapshots == 0 {
		o.ChoiceSnapshots = 1
	}
	if o.ChoiceSnapshots < 0 {
		o.ChoiceSnapshots = -1
	}
	if o.POR == 0 {
		o.POR = 1
	}
	if o.POR < 0 {
		o.POR = -1
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	if o.Workers < 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.LeaseTTLMs == 0 {
		o.LeaseTTLMs = 30000
	}
	if o.LeaseTTLMs < 0 {
		o.LeaseTTLMs = -1
	}
	if o.HeartbeatMs == 0 {
		o.HeartbeatMs = 2000
	}
	if o.HeartbeatMs < 0 {
		o.HeartbeatMs = -1
	}
	return o
}

// Program is a guest program checked by Jaaru. Run is the pre-failure
// execution; Recover is executed after each injected failure (and again
// after failures injected into recovery, up to MaxFailures). A nil Recover
// disables failure injection: the program is executed once, directly.
type Program struct {
	Name    string
	Run     func(*Context)
	Recover func(*Context)
}
