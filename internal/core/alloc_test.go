package core

import "testing"

// Allocation-regression gates for the paged memory layout: the simulator's
// per-operation hot path and the per-scenario reset must stay allocation-free
// once the pooled state is warmed, or throughput regresses across the
// millions of replays an exploration performs.

// allocGateChecker builds a warmed checker with a live main thread whose
// Context can issue guest operations directly.
func allocGateChecker() (*Checker, *Context) {
	c := New(Program{Name: "alloc-gate", Run: func(*Context) {}}, Options{})
	c.resetScenario()
	main := c.sched.reset(c.opts.SBCapacity, nil)
	return c, &Context{ck: c, th: main}
}

// TestSteadyStateOpAllocations pins Store64 / Load64 / Clflush at zero heap
// allocations per operation on a warmed scenario.
func TestSteadyStateOpAllocations(t *testing.T) {
	_, ctx := allocGateChecker()
	a := ctx.Root()
	b := a.Add(64)
	// Warm: grow the store-queue arena, page table, and TSO buffers to
	// steady-state capacity (with headroom past the next arena doubling).
	for i := 0; i < 2500; i++ {
		ctx.Store64(a, uint64(i))
		ctx.Store64(b, uint64(i))
		_ = ctx.Load64(a)
		ctx.Clflush(a, 8)
	}

	if n := testing.AllocsPerRun(200, func() { ctx.Store64(a, 7) }); n != 0 {
		t.Errorf("Store64 allocates %.3f times per op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { _ = ctx.Load64(a) }); n != 0 {
		t.Errorf("Load64 allocates %.3f times per op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { ctx.Clflush(b, 8) }); n != 0 {
		t.Errorf("Clflush allocates %.3f times per op, want 0", n)
	}
}

// TestScenarioResetAllocations pins the per-scenario reset cycle — recycle
// the stack through the pool, reset the scheduler's main thread, replay a
// small execution — at zero heap allocations once warmed.
func TestScenarioResetAllocations(t *testing.T) {
	c, ctx := allocGateChecker()
	scenario := func() {
		c.resetScenario()
		ctx.th = c.sched.reset(c.opts.SBCapacity, nil)
		a := ctx.Root()
		for i := 0; i < 32; i++ {
			ctx.Store64(a.Add(uint64(i%4)*8), uint64(i))
		}
		ctx.Clflush(a, 8)
		_ = ctx.Load64(a)
	}
	for i := 0; i < 32; i++ {
		scenario()
	}
	if n := testing.AllocsPerRun(100, scenario); n != 0 {
		t.Errorf("scenario reset cycle allocates %.3f times per run, want 0", n)
	}
}
