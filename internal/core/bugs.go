package core

import (
	"fmt"
	"strings"

	"jaaru/internal/forensics"
	"jaaru/internal/pmem"
)

// BugType classifies the visible manifestations Jaaru detects (§5.1: "Bugs
// that Jaaru can identify must have some visible manifestation — either a
// crash, e.g., segmentation fault, or an assertion failure").
type BugType int

const (
	// BugAssertion is a failed Context.Assert — the program's own sanity
	// check fired.
	BugAssertion BugType = iota
	// BugIllegalAccess is a load or store outside allocated pool memory —
	// the analog of a segmentation fault.
	BugIllegalAccess
	// BugInfiniteLoop is an execution exceeding the step budget — the
	// paper's "getting stuck in an infinite loop" symptom.
	BugInfiniteLoop
	// BugExplicit is an unconditional Context.Bug report.
	BugExplicit
	// BugEngine is an internal checker invariant violation surfaced as a
	// report instead of a crash — raised when a parallel worker hits a
	// nondeterministic-replay (or similar engine) panic while exploring a
	// claimed branch prefix. The report's Choices carry the offending
	// prefix. Guest programs whose choice shape depends on state outside
	// the simulated pool (globals, host randomness) trigger this.
	BugEngine
)

func (t BugType) String() string {
	switch t {
	case BugAssertion:
		return "assertion failure"
	case BugIllegalAccess:
		return "illegal memory access"
	case BugInfiniteLoop:
		return "infinite loop"
	case BugExplicit:
		return "bug"
	case BugEngine:
		return "engine error"
	default:
		return fmt.Sprintf("BugType(%d)", int(t))
	}
}

// BugReport describes one distinct bug manifestation discovered during
// exploration. Distinctness is keyed on (type, message): the paper groups
// failure injection points leading to the same symptom as one bug.
type BugReport struct {
	Type    BugType
	Message string
	// Execution is the index in the failure scenario (0 = pre-failure) of
	// the execution in which the bug manifested.
	Execution int
	// Scenario is the index of the first scenario exhibiting the bug.
	Scenario int
	// Count is the number of scenarios exhibiting this (type, message).
	Count int
	// Trace holds the last operations before the manifestation, if
	// tracing is enabled.
	Trace []TraceOp
	// Choices describes the nondeterministic decisions of the scenario
	// (failure points taken and read-from selections), sufficient to
	// replay the buggy execution.
	Choices string

	// replay is the recorded choice vector used by Checker.Replay.
	replay []choicePoint

	// prog/opts identify the exploration that produced this report; stamped
	// by buildResult so Witness and Minimize can replay without the caller
	// re-supplying them.
	prog *Program
	opts *Options
}

func (b *BugReport) String() string {
	return fmt.Sprintf("%v: %s (execution %d, first scenario %d, seen %d×)",
		b.Type, b.Message, b.Execution, b.Scenario, b.Count)
}

func (b *BugReport) key() string { return fmt.Sprintf("%d|%s", b.Type, b.Message) }

// Witness replays this bug's scenario with the forensics hooks armed and
// returns the structured witness (see BuildWitness). It errors only when the
// report did not come out of a Result (hand-built reports carry no
// program/options reference).
func (b *BugReport) Witness() (*forensics.Witness, error) {
	if b.prog == nil || b.opts == nil {
		return nil, fmt.Errorf("bug report carries no exploration reference; use BuildWitness")
	}
	return BuildWitness(*b.prog, *b.opts, b), nil
}

// Minimize runs delta debugging over this bug's choice prefix (see the
// package-level Minimize). Same precondition as Witness.
func (b *BugReport) Minimize() (*BugReport, *forensics.Minimization, error) {
	if b.prog == nil || b.opts == nil {
		return nil, nil, fmt.Errorf("bug report carries no exploration reference; use Minimize")
	}
	nb, m := Minimize(*b.prog, *b.opts, b)
	return nb, m, nil
}

// MultiRF records a load that could read from more than one pre-failure
// store — the paper's debugging support for locating missing flushes: "a
// missing flush instruction effectively increases the number of pre-failure
// stores that a post-failure load may read from."
type MultiRF struct {
	// Loc is the guest source location of the load.
	Loc string
	// Addr is the first byte address with multiple candidates.
	Addr pmem.Addr
	// Candidates is the maximum number of candidate stores observed.
	Candidates int
	// Values are example candidate values (exec, σ, val) formatted for
	// display.
	Values []string
	// Count is the number of loads flagged at this location.
	Count int
}

func (m *MultiRF) String() string {
	return fmt.Sprintf("load at %s of %v may read %d stores: %s (seen %d×)",
		m.Loc, m.Addr, m.Candidates, strings.Join(m.Values, ", "), m.Count)
}

// guestFault is the panic payload used to unwind a guest execution when it
// hits a bug; the engine converts it into a BugReport.
type guestFault struct {
	typ BugType
	msg string
}

// crashSignal is the panic payload that unwinds guest executions when a
// power failure is injected.
type crashSignal struct{}

// engineError is the panic payload for internal invariant violations (e.g.
// nondeterministic replay). These are never expected and indicate a checker
// bug, so they propagate to the caller.
type engineError struct{ msg string }

func (e engineError) Error() string { return "jaaru internal error: " + e.msg }
