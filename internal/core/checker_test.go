package core

import (
	"fmt"
	"sort"
	"testing"
)

// obsSet collects recovery observations across scenarios.
type obsSet struct {
	m []string
}

func (o *obsSet) add(format string, args ...any) { o.m = append(o.m, fmt.Sprintf(format, args...)) }

func (o *obsSet) set() []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range o.m {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFigure2And3 checks the paper's running example end to end: the
// program y=1; x=2; clflush; y=3; x=4; y=5; x=6 with x and y on one cache
// line must expose exactly the post-failure states corresponding to the
// prefix cuts of the store order, bounded below by the clflush.
func TestFigure2And3(t *testing.T) {
	obs := &obsSet{}
	prog := Program{
		Name: "figure2",
		Run: func(c *Context) {
			base := c.Root()
			x, y := base, base.Add(8)
			c.Store64(y, 1)
			c.Store64(x, 2)
			c.Clflush(x, 8)
			c.Store64(y, 3)
			c.Store64(x, 4)
			c.Store64(y, 5)
			c.Store64(x, 6)
		},
		Recover: func(c *Context) {
			base := c.Root()
			x := c.Load64(base)
			y := c.Load64(base.Add(8))
			obs.add("x=%d y=%d", x, y)
		},
	}
	res := New(prog, Options{}).Run()
	want := []string{
		"x=0 y=0", "x=0 y=1",
		"x=2 y=1", "x=2 y=3",
		"x=4 y=3", "x=4 y=5",
		"x=6 y=5",
	}
	if got := obs.set(); !sameStrings(got, want) {
		t.Errorf("observed states = %v, want %v", got, want)
	}
	if !res.Complete {
		t.Error("exploration reported incomplete")
	}
	if res.Buggy() {
		t.Errorf("unexpected bugs: %v", res.Bugs)
	}
	// One mid-run failure point (before the clflush) plus the end.
	if res.FailurePoints != 2 {
		t.Errorf("FailurePoints = %d, want 2", res.FailurePoints)
	}
	if res.Scenarios != 8 {
		t.Errorf("Scenarios = %d, want 8", res.Scenarios)
	}
	if res.Executions != res.Scenarios+1 {
		t.Errorf("Executions = %d, want %d", res.Executions, res.Scenarios+1)
	}
}

// addChild/readChild of Figure 4: the commit-store pattern yields exactly
// 1 + 2 + 1 post-failure executions across the three failure points.
func figure4Program(obs *obsSet) Program {
	const dataVal = 0xd0d0
	return Program{
		Name: "figure4",
		Run: func(c *Context) {
			root := c.Root() // holds ptr->child
			tmp := c.AllocLine(8)
			c.Store64(tmp, dataVal) // tmp->data = data
			c.Clflush(tmp, 8)
			c.StorePtr(root, tmp) // commit store: ptr->child = tmp
			c.Clflush(root, 8)
		},
		Recover: func(c *Context) {
			root := c.Root()
			child := c.LoadPtr(root)
			if child != 0 {
				obs.add("data=%#x", c.Load64(child))
			} else {
				obs.add("null")
			}
		},
	}
}

func TestFigure4CommitStore(t *testing.T) {
	obs := &obsSet{}
	res := New(figure4Program(obs), Options{}).Run()
	if res.Buggy() {
		t.Fatalf("unexpected bugs: %v", res.Bugs)
	}
	if res.FailurePoints != 3 {
		t.Errorf("FailurePoints = %d, want 3", res.FailurePoints)
	}
	if res.Scenarios != 4 {
		t.Errorf("Scenarios = %d, want 4 (1+2+1 per failure point)", res.Scenarios)
	}
	want := []string{"data=0xd0d0", "null"}
	if got := obs.set(); !sameStrings(got, want) {
		t.Errorf("observations = %v, want %v", got, want)
	}
	// The commit store guarantees the data field is never read while
	// unflushed, so no multi-rf loads beyond the commit load itself.
}

// Without the commit-store check, recovery reads the data field directly;
// with the data flush missing this is a detectable crash (reading a stale
// pointer) — the situation §3.2 describes.
func TestMissingFlushDetected(t *testing.T) {
	prog := Program{
		Name: "missing-flush",
		Run: func(c *Context) {
			root := c.Root()
			tmp := c.AllocLine(16)
			inner := c.AllocLine(8)
			c.Store64(inner, 42)
			c.Clflush(inner, 8)
			c.StorePtr(tmp, inner)
			// BUG: tmp (holding the pointer) is never flushed.
			c.StorePtr(root, tmp)
			c.Clflush(root, 8)
		},
		Recover: func(c *Context) {
			root := c.Root()
			node := c.LoadPtr(root)
			if node == 0 {
				return
			}
			inner := c.LoadPtr(node)
			// Recovery trusts the commit store and dereferences without a
			// null check — crashes when the inner pointer did not persist.
			c.Assert(c.Load64(inner) == 42, "lost the inner value")
		},
	}
	res := New(prog, Options{FlagMultiRF: true}).Run()
	if !res.Buggy() {
		t.Fatal("missing flush not detected")
	}
	found := false
	for _, b := range res.Bugs {
		if b.Type == BugIllegalAccess {
			found = true
		}
	}
	if !found {
		t.Errorf("expected an illegal access, got %v", res.Bugs)
	}
	if len(res.MultiRF) == 0 {
		t.Error("debugging support did not flag the multi-rf load")
	}
}

// The fixed version of the same program must explore cleanly.
func TestFixedFlushClean(t *testing.T) {
	prog := Program{
		Name: "fixed-flush",
		Run: func(c *Context) {
			root := c.Root()
			tmp := c.AllocLine(16)
			inner := c.AllocLine(8)
			c.Store64(inner, 42)
			c.Clflush(inner, 8)
			c.StorePtr(tmp, inner)
			c.Clflush(tmp, 8)
			c.StorePtr(root, tmp)
			c.Clflush(root, 8)
		},
		Recover: func(c *Context) {
			root := c.Root()
			node := c.LoadPtr(root)
			if node == 0 {
				return
			}
			inner := c.LoadPtr(node)
			if inner == 0 {
				return
			}
			c.Assert(c.Load64(inner) == 42, "lost the inner value")
		},
	}
	res := New(prog, Options{}).Run()
	if res.Buggy() {
		t.Fatalf("fixed program reported bugs: %v", res.Bugs)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (*Result, []string) {
		obs := &obsSet{}
		res := New(figure4Program(obs), Options{}).Run()
		return res, obs.m
	}
	r1, o1 := run()
	r2, o2 := run()
	if r1.Scenarios != r2.Scenarios || r1.Executions != r2.Executions {
		t.Fatalf("nondeterministic exploration: %+v vs %+v", r1, r2)
	}
	if !sameStrings(o1, o2) {
		t.Fatalf("nondeterministic observations: %v vs %v", o1, o2)
	}
}

func TestExecuteDirect(t *testing.T) {
	ran := false
	res := Execute("direct", func(c *Context) {
		a := c.Alloc(64, 8)
		c.Store64(a, 7)
		if got := c.Load64(a); got != 7 {
			t.Errorf("Load64 = %d", got)
		}
		ran = true
	}, Options{})
	if !ran || res.Scenarios != 1 || res.Buggy() {
		t.Fatalf("direct execution: ran=%v res=%+v", ran, res)
	}
}

func TestIllegalAccessNull(t *testing.T) {
	res := Execute("null", func(c *Context) {
		c.Load64(0)
	}, Options{})
	if !res.Buggy() || res.Bugs[0].Type != BugIllegalAccess {
		t.Fatalf("null load: %+v", res.Bugs)
	}
}

func TestIllegalAccessWild(t *testing.T) {
	res := Execute("wild", func(c *Context) {
		c.Store64(c.PoolLimit().Add(1024), 1)
	}, Options{})
	if !res.Buggy() || res.Bugs[0].Type != BugIllegalAccess {
		t.Fatalf("wild store: %+v", res.Bugs)
	}
}

func TestInfiniteLoopDetection(t *testing.T) {
	res := Execute("loop", func(c *Context) {
		a := c.Alloc(8, 8)
		for c.Load64(a) == 0 {
		}
	}, Options{MaxSteps: 1000})
	if !res.Buggy() || res.Bugs[0].Type != BugInfiniteLoop {
		t.Fatalf("infinite loop: %+v", res.Bugs)
	}
}

func TestAssertionBug(t *testing.T) {
	res := Execute("assert", func(c *Context) {
		c.Assert(1 == 2, "math broke: %d", 42)
	}, Options{})
	if !res.Buggy() || res.Bugs[0].Type != BugAssertion {
		t.Fatalf("assert: %+v", res.Bugs)
	}
	if res.Bugs[0].Message == "" {
		t.Error("empty bug message")
	}
}

// Bugs with the same type and message are grouped, as in the paper's
// Figure 12 ("to be conservative we report each such group of bugs as one
// bug").
func TestBugDeduplication(t *testing.T) {
	prog := Program{
		Name: "dedupe",
		Run: func(c *Context) {
			r := c.Root()
			c.Store64(r, 1)
			c.Clflush(r, 8)
			c.Store64(r, 2)
			c.Clflush(r, 8)
			c.Store64(r, 3)
			c.Clflush(r, 8)
		},
		Recover: func(c *Context) {
			c.Bug("always broken")
		},
	}
	res := New(prog, Options{}).Run()
	if len(res.Bugs) != 1 {
		t.Fatalf("bugs = %v, want one deduplicated entry", res.Bugs)
	}
	if res.Bugs[0].Count < 2 {
		t.Errorf("bug count = %d, want several scenarios", res.Bugs[0].Count)
	}
}

func TestStopAtFirstBug(t *testing.T) {
	calls := 0
	prog := Program{
		Name: "stopfirst",
		Run: func(c *Context) {
			r := c.Root()
			for i := 0; i < 10; i++ {
				c.Store64(r.Add(uint64(i)*8), uint64(i))
				c.Clflush(r.Add(uint64(i)*8), 8)
			}
		},
		Recover: func(c *Context) {
			calls++
			c.Bug("boom")
		},
	}
	res := New(prog, Options{StopAtFirstBug: true}).Run()
	if !res.Buggy() || calls != 1 {
		t.Fatalf("StopAtFirstBug: calls=%d res=%+v", calls, res)
	}
	if res.Complete {
		t.Error("truncated exploration reported complete")
	}
}

// Figure 4 with failure injection enabled in recovery (MaxFailures=2): the
// scenario space grows but observations stay the same.
func TestMultiFailureDepth(t *testing.T) {
	obs := &obsSet{}
	res := New(figure4Program(obs), Options{MaxFailures: 2}).Run()
	if res.Buggy() {
		t.Fatalf("bugs: %v", res.Bugs)
	}
	single := New(figure4Program(&obsSet{}), Options{MaxFailures: 1}).Run()
	if res.Scenarios < single.Scenarios {
		t.Errorf("depth-2 scenarios (%d) < depth-1 scenarios (%d)",
			res.Scenarios, single.Scenarios)
	}
	want := []string{"data=0xd0d0", "null"}
	if got := obs.set(); !sameStrings(got, want) {
		t.Errorf("observations = %v, want %v", got, want)
	}
}

// A recovery that rewrites state and can itself crash: after writing and
// flushing a repair marker, a second failure and recovery must see either
// the original commit or the repair, never garbage.
func TestRecoveryFailureRecovery(t *testing.T) {
	obs := &obsSet{}
	prog := Program{
		Name: "recovery-crash",
		Run: func(c *Context) {
			r := c.Root()
			c.Store64(r, 100)
			c.Clflush(r, 8)
		},
		Recover: func(c *Context) {
			r := c.Root()
			v := c.Load64(r)
			obs.add("saw %d", v)
			c.Assert(v == 0 || v == 100 || v == 200, "garbage value %d", v)
			c.Store64(r, 200)
			c.Clflush(r, 8)
		},
	}
	res := New(prog, Options{MaxFailures: 3}).Run()
	if res.Buggy() {
		t.Fatalf("bugs: %v", res.Bugs)
	}
	got := obs.set()
	for _, w := range []string{"saw 0", "saw 100", "saw 200"} {
		found := false
		for _, g := range got {
			if g == w {
				found = true
			}
		}
		if !found {
			t.Errorf("missing observation %q in %v", w, got)
		}
	}
}

func TestMixedSizeAccesses(t *testing.T) {
	res := Execute("mixed", func(c *Context) {
		a := c.Alloc(8, 8)
		c.Store64(a, 0x1122334455667788)
		if got := c.Load32(a); got != 0x55667788 {
			t.Errorf("Load32 low = %#x", got)
		}
		if got := c.Load32(a.Add(4)); got != 0x11223344 {
			t.Errorf("Load32 high = %#x", got)
		}
		if got := c.Load16(a.Add(2)); got != 0x5566 {
			t.Errorf("Load16 = %#x", got)
		}
		c.Store8(a.Add(7), 0xff)
		if got := c.Load64(a); got != 0xff22334455667788 {
			t.Errorf("after Store8: %#x", got)
		}
		c.Store16(a, 0xaabb)
		if got := c.Load64(a); got != 0xff2233445566aabb {
			t.Errorf("after Store16: %#x", got)
		}
	}, Options{})
	if res.Buggy() {
		t.Fatalf("bugs: %v", res.Bugs)
	}
}

// A torn multi-byte value must be observable when the two halves were
// written by different stores and the line was not flushed between them —
// and refinement must forbid impossible combinations.
func TestMixedSizeTearing(t *testing.T) {
	obs := &obsSet{}
	prog := Program{
		Name: "tearing",
		Run: func(c *Context) {
			r := c.Root()
			c.Store32(r, 0x11111111)
			c.Store32(r.Add(4), 0x22222222)
			c.Clflush(r, 8)
		},
		Recover: func(c *Context) {
			obs.add("%#x", c.Load64(c.Root()))
		},
	}
	res := New(prog, Options{}).Run()
	if res.Buggy() {
		t.Fatalf("bugs: %v", res.Bugs)
	}
	want := []string{"0x0", "0x11111111", "0x2222222211111111"}
	if got := obs.set(); !sameStrings(got, want) {
		t.Errorf("torn values = %v, want %v", got, want)
	}
}

func TestCAS(t *testing.T) {
	res := Execute("cas", func(c *Context) {
		a := c.Alloc(8, 8)
		c.Store64(a, 5)
		if !c.CAS64(a, 5, 9) {
			t.Error("CAS should succeed")
		}
		if c.CAS64(a, 5, 11) {
			t.Error("CAS should fail")
		}
		if got := c.Load64(a); got != 9 {
			t.Errorf("after CAS: %d", got)
		}
		if old := c.AtomicAdd64(a, 3); old != 9 {
			t.Errorf("AtomicAdd old = %d", old)
		}
		if old := c.AtomicExchange64(a, 1); old != 12 {
			t.Errorf("AtomicExchange old = %d", old)
		}
	}, Options{})
	if res.Buggy() {
		t.Fatalf("bugs: %v", res.Bugs)
	}
}

// Locked RMW has mfence semantics: it drains the flush buffer, so a prior
// clflushopt's writeback is ordered before the RMW's own store. If recovery
// observes the RMW's store, the flushed value must have persisted.
func TestRMWDrainsFlushBuffer(t *testing.T) {
	obs := &obsSet{}
	prog := Program{
		Name: "rmw-fence",
		Run: func(c *Context) {
			r := c.Root()
			c.Store64(r, 77)
			c.Clflushopt(r, 8)
			c.AtomicAdd64(r.Add(64), 1) // locked RMW on another line
		},
		Recover: func(c *Context) {
			r := c.Root()
			obs.add("r=%d flag=%d", c.Load64(r), c.Load64(r.Add(64)))
		},
	}
	res := New(prog, Options{}).Run()
	if res.Buggy() {
		t.Fatalf("bugs: %v", res.Bugs)
	}
	sawUnflushed := false
	for _, o := range obs.set() {
		if o == "r=0 flag=1" {
			t.Fatal("RMW store persisted without the preceding clflushopt writeback")
		}
		if o == "r=0 flag=0" {
			sawUnflushed = true // failure before the writeback is a real state
		}
	}
	if !sawUnflushed {
		t.Errorf("failure before the writeback never explored: %v", obs.set())
	}
}

// Without any fence, a clflushopt alone must NOT guarantee persistence at a
// mid-run failure (it may still sit in the flush buffer)... but after the
// program completes, quiescence applies it.
func TestClflushoptAloneQuiesces(t *testing.T) {
	obs := &obsSet{}
	prog := Program{
		Name: "clflushopt-alone",
		Run: func(c *Context) {
			r := c.Root()
			c.Store64(r, 55)
			c.Clflushopt(r, 8)
		},
		Recover: func(c *Context) {
			obs.add("r=%d", c.Load64(c.Root()))
		},
	}
	res := New(prog, Options{}).Run()
	if res.Buggy() {
		t.Fatalf("bugs: %v", res.Bugs)
	}
	want := []string{"r=0", "r=55"}
	if got := obs.set(); !sameStrings(got, want) {
		t.Errorf("observations = %v, want %v", got, want)
	}
}

func TestSpawnJoin(t *testing.T) {
	res := Execute("threads", func(c *Context) {
		a := c.Alloc(16, 8)
		h1 := c.Spawn(func(c *Context) {
			c.Store64(a, 1)
		})
		h2 := c.Spawn(func(c *Context) {
			c.Store64(a.Add(8), 2)
		})
		h1.Join(c)
		h2.Join(c)
		if c.Load64(a) != 1 || c.Load64(a.Add(8)) != 2 {
			t.Error("spawned writes lost")
		}
	}, Options{})
	if res.Buggy() {
		t.Fatalf("bugs: %v", res.Bugs)
	}
}

// Store buffering (the classic SB litmus test): with EvictAtFences both
// threads may read 0 from the other's variable.
func TestStoreBufferingLitmus(t *testing.T) {
	obs := &obsSet{}
	prog := Program{
		Name: "sb-litmus",
		Run: func(c *Context) {
			x := c.Alloc(8, 64)
			y := c.Alloc(8, 64)
			var r1, r2 uint64
			h1 := c.Spawn(func(c *Context) {
				c.Store64(x, 1)
				r1 = c.Load64(y)
			})
			h2 := c.Spawn(func(c *Context) {
				c.Store64(y, 1)
				r2 = c.Load64(x)
			})
			h1.Join(c)
			h2.Join(c)
			obs.add("r1=%d r2=%d", r1, r2)
		},
	}
	res := New(prog, Options{Eviction: EvictAtFences}).Run()
	if res.Buggy() {
		t.Fatalf("bugs: %v", res.Bugs)
	}
	got := obs.set()
	if !sameStrings(got, []string{"r1=0 r2=0"}) {
		t.Errorf("round-robin at-fences schedule should observe r1=r2=0, got %v", got)
	}
	// A thread always sees its own buffered store (bypass).
	res2 := Execute("bypass", func(c *Context) {
		x := c.Alloc(8, 64)
		c.Store64(x, 7)
		if got := c.Load64(x); got != 7 {
			t.Errorf("bypass read %d", got)
		}
	}, Options{Eviction: EvictAtFences})
	if res2.Buggy() {
		t.Fatalf("bugs: %v", res2.Bugs)
	}
}

// A failure injected while a child thread is running must tear down all
// guest goroutines and still explore recovery correctly.
func TestCrashWithChildThreads(t *testing.T) {
	obs := &obsSet{}
	prog := Program{
		Name: "crash-children",
		Run: func(c *Context) {
			a := c.Alloc(64, 64)
			h := c.Spawn(func(c *Context) {
				for i := 0; i < 4; i++ {
					c.Store64(a.Add(uint64(i)*8), uint64(i+1))
					c.Clflush(a.Add(uint64(i)*8), 8)
				}
			})
			c.Store64(a.Add(32), 99)
			c.Clflush(a.Add(32), 8)
			h.Join(c)
			c.StorePtr(c.Root(), a)
			c.Clflush(c.Root(), 8)
		},
		Recover: func(c *Context) {
			p := c.LoadPtr(c.Root())
			if p == 0 {
				obs.add("uncommitted")
				return
			}
			obs.add("v0=%d", c.Load64(p))
		},
	}
	res := New(prog, Options{}).Run()
	if res.Buggy() {
		t.Fatalf("bugs: %v", res.Bugs)
	}
	if res.Scenarios < 5 {
		t.Errorf("expected several scenarios, got %d", res.Scenarios)
	}
	if len(obs.set()) < 2 {
		t.Errorf("observations = %v", obs.set())
	}
}

func TestGuestFaultOnChildThread(t *testing.T) {
	res := Execute("child-fault", func(c *Context) {
		h := c.Spawn(func(c *Context) {
			c.Load64(0) // null deref on child
		})
		h.Join(c)
	}, Options{})
	if !res.Buggy() || res.Bugs[0].Type != BugIllegalAccess {
		t.Fatalf("child fault: %+v", res.Bugs)
	}
}

func TestChecksumRecovery(t *testing.T) {
	// Checksum-based recovery without explicit flushes (§4): write data and
	// its checksum, never flush; recovery validates the checksum before
	// trusting the data. Valid data is only observed when the checksum
	// matches, and matching checksums always accompany intact data.
	obs := &obsSet{}
	prog := Program{
		Name: "checksum",
		Run: func(c *Context) {
			r := c.Root()
			c.Store64(r.Add(8), 0xabcdef)
			sum := c.Fnv64(r.Add(8), 8)
			c.Store64(r, sum)
		},
		Recover: func(c *Context) {
			r := c.Root()
			sum := c.Load64(r)
			if sum == 0 {
				obs.add("empty")
				return
			}
			if c.Fnv64(r.Add(8), 8) == sum {
				c.Assert(c.Load64(r.Add(8)) == 0xabcdef, "checksum matched corrupt data")
				obs.add("valid")
			} else {
				obs.add("corrupt")
			}
		},
	}
	res := New(prog, Options{}).Run()
	if res.Buggy() {
		t.Fatalf("bugs: %v", res.Bugs)
	}
	got := obs.set()
	foundValid := false
	for _, g := range got {
		if g == "valid" {
			foundValid = true
		}
	}
	if !foundValid {
		t.Errorf("checksum-valid state never explored: %v", got)
	}
}

func TestTraceInBugReport(t *testing.T) {
	prog := Program{
		Name: "trace",
		Run: func(c *Context) {
			r := c.Root()
			c.Store64(r, 1)
			c.Clflush(r, 8)
		},
		Recover: func(c *Context) {
			c.Bug("report me")
		},
	}
	res := New(prog, Options{TraceLen: 16}).Run()
	if !res.Buggy() {
		t.Fatal("no bug")
	}
	if len(res.Bugs[0].Trace) == 0 {
		t.Error("bug report has no trace")
	}
	if res.Bugs[0].Choices == "" && res.Bugs[0].Scenario > 0 {
		t.Error("bug report has no choice description")
	}
}

func TestEvictRandomDeterministic(t *testing.T) {
	mk := func() *Result {
		obs := &obsSet{}
		return New(figure4Program(obs), Options{Eviction: EvictRandom, Seed: 42}).Run()
	}
	r1, r2 := mk(), mk()
	if r1.Scenarios != r2.Scenarios {
		t.Errorf("EvictRandom not deterministic: %d vs %d scenarios",
			r1.Scenarios, r2.Scenarios)
	}
}

func TestRootAreaAlwaysAddressable(t *testing.T) {
	res := Execute("root", func(c *Context) {
		r := c.Root()
		c.Store64(r.Add(RootSize-8), 3)
		if c.Load64(r.Add(RootSize-8)) != 3 {
			t.Error("root area store/load failed")
		}
	}, Options{})
	if res.Buggy() {
		t.Fatalf("bugs: %v", res.Bugs)
	}
}

func TestInRecoveryAndExecutionIndex(t *testing.T) {
	var preIdx, recIdx int
	var preIn, recIn bool
	prog := Program{
		Name: "exec-index",
		Run: func(c *Context) {
			preIdx, preIn = c.Execution(), c.InRecovery()
			c.Store64(c.Root(), 1)
			c.Clflush(c.Root(), 8)
		},
		Recover: func(c *Context) {
			recIdx, recIn = c.Execution(), c.InRecovery()
		},
	}
	res := New(prog, Options{}).Run()
	if res.Buggy() {
		t.Fatal(res.Bugs)
	}
	if preIdx != 0 || preIn {
		t.Errorf("pre-failure: Execution=%d InRecovery=%v", preIdx, preIn)
	}
	if recIdx != 1 || !recIn {
		t.Errorf("recovery: Execution=%d InRecovery=%v", recIdx, recIn)
	}
}

func TestBulkByteHelpers(t *testing.T) {
	res := Execute("bulk", func(c *Context) {
		a := c.Alloc(32, 8)
		c.StoreBytes(a, []byte{9, 8, 7})
		got := c.LoadBytes(a, 3)
		if got[0] != 9 || got[1] != 8 || got[2] != 7 {
			c.Bug("StoreBytes/LoadBytes mismatch: %v", got)
		}
		c.Memset(a.Add(8), 0x5A, 4)
		if c.Load32(a.Add(8)) != 0x5A5A5A5A {
			c.Bug("Memset mismatch")
		}
		c.Clwb(a, 16)
		c.Sfence()
	}, Options{})
	if res.Buggy() {
		t.Fatal(res.Bugs)
	}
}

// A non-guest panic on a child thread must propagate to the caller, not be
// swallowed as a bug.
func TestUnexpectedChildPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("child panic did not propagate")
		} else if r != "genuine bug" {
			t.Fatalf("wrong panic: %v", r)
		}
	}()
	Execute("child-panic", func(c *Context) {
		h := c.Spawn(func(c *Context) {
			c.Store64(c.Root(), 1) // take at least one turn
			panic("genuine bug")
		})
		h.Join(c)
	}, Options{})
}
