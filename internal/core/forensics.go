package core

// Bug forensics: BuildWitness re-runs the one scenario that manifested a bug
// with the forensics hooks armed and assembles the structured Witness value
// defined in internal/forensics — the machine-checkable elaboration of the
// paper's debugging support. Three hook families feed the recorder:
//
//   - the per-operation recorder (Context.op / Checker.traceOp) numbers every
//     guest operation and captures the full trace, never ring-truncated;
//   - the tso.Probe reports TSO state transitions — store-buffer evictions
//     and buffered writebacks — attributed to the issuing operation via the
//     Entry.Op stamp;
//   - the pmem interval tracer reports every effective interval refinement
//     with its provenance, feeding both the per-line timelines and the
//     per-load refinement steps.
//
// All hooks are nil-guarded on the exploration hot paths (c.wrec == nil
// outside witness replays), following the obs.Collector discipline: disabled
// forensics costs one branch per hook (pinned by BenchmarkObservability).

import (
	"fmt"
	"sort"

	"jaaru/internal/forensics"
	"jaaru/internal/pmem"
	"jaaru/internal/tso"
)

// witnessRecorder accumulates forensics data during one witness replay.
type witnessRecorder struct {
	c *Checker

	// opSeq is the index of the operation currently executing (Context.op
	// order, across all executions of the scenario); -1 before the first.
	opSeq int

	ops   []forensics.Op
	opPos map[int]int // Op.Index -> position in ops

	timelines []forensics.LineTimeline
	linePos   map[lineKey]int // (exec, line) -> position in timelines

	loads    []forensics.LoadResolution
	failures []forensics.FailureMark

	// decOps maps a choice-vector position to the operation that consumed
	// the decision.
	decOps map[int]int

	// openLoad is the resolution currently being assembled in loadByte, so
	// the interval tracer can attach refinement steps to it.
	openLoad *forensics.LoadResolution
}

type lineKey struct {
	exec int
	line pmem.Addr
}

func newWitnessRecorder(c *Checker) *witnessRecorder {
	return &witnessRecorder{
		c:       c,
		opSeq:   -1,
		opPos:   make(map[int]int),
		linePos: make(map[lineKey]int),
		decOps:  make(map[int]int),
	}
}

// wrecOp returns the current operation index for tso.Entry stamping (0 when
// no recorder is active: the stamp is only consumed by the probe, which is
// only attached alongside a recorder).
func (c *Checker) wrecOp() int {
	if c.wrec == nil {
		return 0
	}
	return c.wrec.opSeq
}

// wrecDecision records that the most recently consumed chooser decision
// belongs to the current operation. Call immediately after chooser.choose.
func (c *Checker) wrecDecision() {
	if c.wrec != nil {
		c.wrec.decOps[c.chooser.cursor-1] = c.wrec.opSeq
	}
}

// noteOp appends one traced operation (called from Checker.traceOp).
func (r *witnessRecorder) noteOp(threadID int, kind string, a pmem.Addr, size int, val uint64) {
	r.opPos[r.opSeq] = len(r.ops)
	r.ops = append(r.ops, forensics.Op{
		Index:  r.opSeq,
		Exec:   r.c.stack.Top().ID,
		Thread: threadID,
		Kind:   kind,
		Addr:   uint64(a),
		Size:   size,
		Val:    val,
	})
}

func (r *witnessRecorder) addTransition(opIdx int, phase string, s pmem.Seq) {
	pos, ok := r.opPos[opIdx]
	if !ok {
		return
	}
	r.ops[pos].Transitions = append(r.ops[pos].Transitions,
		forensics.Transition{Phase: phase, Op: r.opSeq, Seq: uint64(s)})
}

// probe builds the tso.Probe that feeds this recorder.
func (r *witnessRecorder) probe() *tso.Probe {
	return &tso.Probe{
		OnEvict: func(e tso.Entry, s pmem.Seq) {
			switch e.Kind {
			case tso.Store:
				r.addTransition(e.Op, "cache", s)
				r.lineEvent(e.Addr.Line(), "store", s)
			case tso.CLFlush:
				r.addTransition(e.Op, "cache", s)
				r.lineEvent(e.Addr.Line(), "clflush", s)
			case tso.CLFlushOpt:
				r.addTransition(e.Op, "flush-buffer", s)
			case tso.SFence:
				r.addTransition(e.Op, "fence", s)
			}
		},
		OnWriteback: func(line pmem.Addr, s pmem.Seq, op int) {
			r.addTransition(op, "persist-bound", s)
			r.lineEvent(line, "writeback", s)
		},
	}
}

// lineBounds reads a line's interval without materializing it (a vacuous
// line reads as [0, ∞), exactly what CacheLine would create).
func (r *witnessRecorder) lineBounds(exec int, line pmem.Addr) (begin, end uint64) {
	e := r.c.stack.At(exec)
	if !e.LineKnown(line) {
		return 0, uint64(pmem.SeqInf)
	}
	iv := e.CacheLine(line)
	return uint64(iv.Begin), uint64(iv.End)
}

// lineEvent appends a probe-sourced event (store/clflush/writeback) to the
// current execution's timeline for line, reading the post-effect interval.
func (r *witnessRecorder) lineEvent(line pmem.Addr, kind string, s pmem.Seq) {
	exec := r.c.stack.Top().ID
	begin, end := r.lineBounds(exec, line)
	r.appendLineEvent(exec, line, forensics.LineEvent{
		Op: r.opSeq, Kind: kind, Seq: uint64(s), Begin: begin, End: end})
}

func (r *witnessRecorder) appendLineEvent(exec int, line pmem.Addr, ev forensics.LineEvent) {
	k := lineKey{exec: exec, line: line}
	pos, ok := r.linePos[k]
	if !ok {
		pos = len(r.timelines)
		r.linePos[k] = pos
		r.timelines = append(r.timelines,
			forensics.LineTimeline{Exec: exec, Line: uint64(line)})
	}
	r.timelines[pos].Events = append(r.timelines[pos].Events, ev)
}

// intervalEvent is the pmem tracer callback. Flush raises are already on the
// timeline via the probe (which reads the post-effect interval); refinements
// are recorded here, and additionally attached to the load being resolved.
func (r *witnessRecorder) intervalEvent(ev pmem.IntervalEvent) {
	var kind, step string
	switch ev.Kind {
	case pmem.RefineRaise:
		kind, step = "refine-raise", "raise-begin"
	case pmem.RefineLower:
		kind, step = "refine-lower", "lower-end"
	default:
		return
	}
	r.appendLineEvent(ev.Exec, ev.Line, forensics.LineEvent{
		Op: r.opSeq, Kind: kind, Seq: uint64(ev.At),
		Begin: uint64(ev.After.Begin), End: uint64(ev.After.End)})
	if r.openLoad != nil {
		r.openLoad.Refined = append(r.openLoad.Refined, forensics.RefineStep{
			Exec: ev.Exec, Line: uint64(ev.Line), Kind: step, At: uint64(ev.At),
			Begin: uint64(ev.After.Begin), End: uint64(ev.After.End)})
	}
}

func (r *witnessRecorder) noteFailure(point int) {
	r.failures = append(r.failures, forensics.FailureMark{
		Op: r.opSeq, Point: point, Exec: r.c.stack.Top().ID})
}

// beginLoad builds the candidate verdict list for one refined load byte,
// mirroring the admission rule of ReadPreFailure (Figure 9) over every
// pre-failure store — excluded stores included, each with the interval
// constraint that decided it.
func (r *witnessRecorder) beginLoad(t *thread, a pmem.Addr) *forensics.LoadResolution {
	top := r.c.stack.Top()
	res := &forensics.LoadResolution{
		Op:     r.opSeq,
		Exec:   top.ID,
		Thread: t.id,
		Addr:   uint64(a),
		Loc:    guestLocation(),
	}
	settled := false
	var settledExec int
	var settledSeq uint64
	for id := top.ID - 1; id >= 0; id-- {
		e := r.c.stack.At(id)
		begin, end := r.lineBounds(id, a.Line())
		e.ForEachStoreNewest(a, func(bs pmem.ByteStore) bool {
			sc := forensics.StoreCandidate{
				Exec: id, Seq: uint64(bs.Seq), Val: uint64(bs.Val)}
			switch {
			case settled && settledExec == id:
				sc.Reason = fmt.Sprintf(
					"excluded: older than the store guaranteed persisted at σ=%d",
					settledSeq)
			case settled:
				sc.Reason = fmt.Sprintf(
					"unreachable: execution %d already guarantees a persisted value",
					settledExec)
			case uint64(bs.Seq) >= end:
				sc.Reason = fmt.Sprintf(
					"excluded: σ=%d ≥ End=%s — the line's last writeback is proven earlier",
					uint64(bs.Seq), forensics.FormatSeq(end))
			case uint64(bs.Seq) <= begin:
				sc.Admitted = true
				sc.Reason = fmt.Sprintf(
					"admitted: newest store with σ=%d ≤ Begin=%d — value guaranteed persisted",
					uint64(bs.Seq), begin)
				settled, settledExec, settledSeq = true, id, uint64(bs.Seq)
			default:
				sc.Admitted = true
				sc.Reason = fmt.Sprintf(
					"admitted: Begin=%d < σ=%d < End=%s — inside the writeback window",
					begin, uint64(bs.Seq), forensics.FormatSeq(end))
			}
			res.Candidates = append(res.Candidates, sc)
			return true
		})
	}
	initial := forensics.StoreCandidate{Exec: pmem.InitialExec}
	if settled {
		initial.Reason = fmt.Sprintf(
			"unreachable: execution %d already guarantees a persisted value", settledExec)
	} else {
		initial.Admitted = true
		initial.Reason = "admitted: initial pool contents — no execution settles the line"
	}
	res.Candidates = append(res.Candidates, initial)
	return res
}

// finishLoad marks the chosen candidate and files the resolution.
func (r *witnessRecorder) finishLoad(res *forensics.LoadResolution, chosen pmem.Candidate) {
	for i := range res.Candidates {
		sc := &res.Candidates[i]
		if sc.Exec == chosen.Exec && sc.Seq == uint64(chosen.Seq) {
			sc.Chosen = true
			res.Chosen = i
			break
		}
	}
	r.loads = append(r.loads, *res)
}

// witness assembles the recorder's data into the final value.
func (r *witnessRecorder) witness(b *BugReport, reproduced bool) *forensics.Witness {
	c := r.c
	w := &forensics.Witness{
		Program: c.prog.Name,
		Bug: forensics.Bug{
			Type:      b.Type.String(),
			Message:   b.Message,
			Execution: b.Execution,
			Choices:   b.Choices,
		},
		Reproduced: reproduced,
		Ops:        r.ops,
		Failures:   r.failures,
		Loads:      r.loads,
	}
	for i, p := range c.chooser.points {
		d := forensics.Decision{
			Index: i, Kind: p.kind.String(), Chosen: p.idx, Options: p.n, Op: -1}
		if op, ok := r.decOps[i]; ok {
			d.Op = op
		}
		w.Decisions = append(w.Decisions, d)
	}
	w.Lines = r.timelines
	sort.Slice(w.Lines, func(i, j int) bool {
		if w.Lines[i].Exec != w.Lines[j].Exec {
			return w.Lines[i].Exec < w.Lines[j].Exec
		}
		return w.Lines[i].Line < w.Lines[j].Line
	})
	return w
}

// BuildWitness replays the failure scenario recorded in b — prog and opts
// must match the exploration that produced it — with the forensics hooks
// armed, and returns the structured witness: annotated operation trace,
// per-cache-line persistence timelines, and per-load read-from resolutions.
//
// The replay always re-executes the guest from scratch (snapshots are
// forced off — a restored snapshot would skip the pre-failure operations the
// witness needs to show) and records the complete operation list itself, so
// the opts trace ring is not consulted. A guest whose choice shape changed
// since the exploration (nondeterminism outside the simulated pool) yields a
// witness with Reproduced == false carrying whatever replay was observed.
func BuildWitness(prog Program, opts Options, b *BugReport) *forensics.Witness {
	o := opts.withDefaults()
	o.TraceLen = -1 // the recorder captures the full trace itself
	o.MaxScenarios = 1
	o.FlagMultiRF = true
	o.Snapshots = -1
	c := New(prog, o)
	c.replaySegment = true
	c.wrec = newWitnessRecorder(c)
	c.sched.probe = c.wrec.probe()
	c.chooser.seed(b.replay)
	c.scenarios = 1
	func() {
		defer func() {
			switch r := recover().(type) {
			case nil:
			case engineError:
				// Nondeterministic replay: the witness reports Reproduced
				// false with the partial data gathered so far.
				_ = r
			default:
				panic(r)
			}
		}()
		c.runScenario()
	}()
	_, reproduced := c.bugIndex[b.key()]
	w := c.wrec.witness(b, reproduced)
	if c.reg != nil {
		c.reg.Emit("witness_build", "program", prog.Name,
			"type", b.Type.String(), "message", b.Message,
			"ops", len(w.Ops), "loads", len(w.Loads), "lines", len(w.Lines),
			"reproduced", reproduced)
	}
	return w
}
