package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"jaaru/internal/forensics"
	"jaaru/internal/obs"
	"jaaru/internal/pmalloc"
	"jaaru/internal/pmem"
	"jaaru/internal/tso"
)

// stats is the exploration-level aggregation state of one Checker: the
// counters and findings a worker accumulates over the scenarios it explores.
// It is separated from the scenario-level machinery so parallel exploration
// can give every worker a private copy and merge them deterministically at
// the end (see parallel.go).
type stats struct {
	scenarios  int
	execsPost  int // post-failure executions explored (fork-equivalent units)
	fpointsPre int // eligible failure points in the pre-failure execution (incl. end)
	totalSteps int64
	bugs       []*BugReport
	bugIndex   map[string]*BugReport
	multiRF    map[string]*MultiRF
	perfIssues map[string]*PerfIssue
	// maxRF is the largest candidate set any load byte presented.
	maxRF int
	// newPoints counts distinct choice points discovered, by kind (folded
	// in from the chooser when a result is built or a worker retires).
	newPoints [3]int
	// truncated marks an exploration that abandoned part of its state
	// space (e.g. a worker subtree dropped after an engine error).
	truncated bool
}

// initStats prepares the maps; the zero value of everything else is right.
func (s *stats) initStats() {
	s.bugIndex = make(map[string]*BugReport)
	s.multiRF = make(map[string]*MultiRF)
	s.perfIssues = make(map[string]*PerfIssue)
}

// Checker explores every failure behaviour of a guest Program. It is not
// safe for concurrent use; create one Checker per checked program. (With
// Options.Workers > 1, Run internally creates one private worker Checker
// per goroutine and merges their stats — see parallel.go.)
type Checker struct {
	prog Program
	opts Options

	// Exploration-level state.
	chooser *chooser
	stats

	// Scenario-level state (reset by resetScenario).
	seq       pmem.Seq
	stack     *pmem.Stack
	alloc     *pmalloc.Allocator
	sched     *scheduler
	rng       *rand.Rand
	trace     *traceRing
	lastStore map[pmem.Addr]pmem.Seq // newest store per line, current execution
	fpCount   int                    // eligible failure points seen in the current pre-failure execution
	dirty     bool                   // stores evicted since the last considered failure point
	preDone   bool                   // pre-failure execution ran to completion in this scenario
	steps     int                    // ops in the current execution
	// replaySteps counts the subset of steps executed while the chooser was
	// still replaying a recorded decision prefix — the physical replay cost
	// (obs.ReplaySteps), kept as a plain field so op() pays one compare and
	// an increment, flushed with the segment's step total.
	replaySteps int
	observers   []func(pmem.Addr, pmem.Candidate)
	snapshot    func(fpIndex int) // Yat instrumentation hook

	// Observability (nil unless Options.Observe/EventTrace): reg is the
	// registry shared across workers, col this checker's private shard,
	// workerID its index in event output (0 = serial / the coordinator).
	reg      *obs.Registry
	col      *obs.Collector
	workerID int
	// replaySegment marks segments run on behalf of Replay/FormatWitness,
	// so their time is accounted as replay overhead, not exploration.
	replaySegment bool

	// wrec is the forensics witness recorder (nil outside BuildWitness
	// replays); every hot-path hook guards on it with a single nil check.
	wrec *witnessRecorder

	// bugEndedSegment distinguishes "segment completed normally" from
	// "segment ended by a recorded bug" across the runSegment boundary.
	bugEndedSegment bool

	// rfScratch is reused across loadByte calls to avoid allocating a
	// candidate slice per pre-failure load byte.
	rfScratch []pmem.Candidate

	// pmpool recycles scenario storage (executions, pages, arenas) across
	// the millions of resetScenario calls a run performs; thScratch is the
	// reused thread snapshot quiesce takes under the scheduler lock.
	pmpool    *pmem.Pool
	thScratch []*thread

	// Snapshot engine state (snapshot.go). snaps is the stack of captured
	// pre-failure states, nested by choice prefix; snapActive latches
	// per-scenario eligibility; snapBase/snapBaseSteps are the scenario
	// baseline the capture deltas are measured against; scenPerf/scenMulti
	// accumulate the current scenario's perf-issue and multi-rf
	// manifestations so snapshots can re-apply them on restore.
	snaps         []*snapEntry
	snapActive    bool
	snapBase      obs.CounterVec
	snapBaseSteps int64
	scenPerf      map[string]*PerfIssue
	scenMulti     map[string]*MultiRF

	// Choice-point snapshot stack state (snapshot.go). snapFree pools
	// retired snapEntry values so the warmed capture/restore cycle allocates
	// nothing; chsnapActive latches per-scenario eligibility of the
	// choice-point stack; segLogs holds one value log per post-failure
	// execution depth (index ID-1), recording everything a fast-forward
	// replay must feed back to the guest; ffwd is the in-flight fast-forward
	// replay, if any.
	// segLog caches &segLogs[Top().ID-1] while a post-failure segment is in
	// flight (nil otherwise) so the per-byte noteSegEvent hot path is a single
	// pointer check.
	snapFree     []*snapEntry
	chsnapActive bool
	segLogs      [][]segEvent
	segLog       *[]segEvent
	ffwd         ffwdState

	// Partial-order-reduction state (por.go). porSeenSet is the fingerprint
	// seen-set, shared across workers; porOpen the stack of subtree records
	// still being explored; porFpActive latches per-scenario fingerprint
	// eligibility; porScenBase/porScenBaseSteps are the scenario baseline a
	// crash-point prefix measurement is taken against; porFPHook is a test
	// hook observing every fingerprint consultation.
	porSeenSet       *porSeen
	porOpen          []*porRecord
	porFpActive      bool
	porScenBase      obs.CounterVec
	porScenBaseSteps int64
	porFPHook        func(fp uint64, hit bool)
}

// New returns a checker for prog with the given options.
func New(prog Program, opts Options) *Checker {
	o := opts.withDefaults()
	if prog.Run == nil {
		panic(engineError{"program has no Run function"})
	}
	if prog.Recover == nil {
		o.MaxFailures = -1
	}
	c := &Checker{
		prog:      prog,
		opts:      o,
		chooser:   &chooser{},
		alloc:     pmalloc.New(PoolBase, o.PoolSize),
		sched:     newScheduler(),
		lastStore: make(map[pmem.Addr]pmem.Seq),
		pmpool:    pmem.NewPool(),
	}
	c.initStats()
	if o.POR > 0 {
		c.porSeenSet = newPorSeen()
	}
	if o.TraceLen > 0 {
		c.trace = newTraceRing(o.TraceLen)
	}
	if o.Observe || o.EventTrace != nil {
		reg := obs.NewRegistry(o.EventTrace)
		c.attachObs(reg, reg.NewShard(), 0)
	}
	return c
}

// attachObs binds this checker to a metrics registry: the chooser and the
// scheduler (which hands the shard to every thread's store buffers) record
// into the same per-worker shard as the checker itself.
func (c *Checker) attachObs(reg *obs.Registry, col *obs.Collector, workerID int) {
	c.reg = reg
	c.col = col
	c.workerID = workerID
	c.chooser.col = col
	c.sched.col = col
}

// Observability exposes the live metrics registry of an observed checker
// (nil unless Options.Observe or Options.EventTrace is set) — used for
// periodic progress reporting while Run is in flight.
func (c *Checker) Observability() *obs.Registry { return c.reg }

// Result summarizes one exploration.
type Result struct {
	Program string
	// Scenarios is the number of distinct failure scenarios explored.
	Scenarios int
	// Executions is the fork-equivalent execution count reported by the
	// paper (Figure 14, "JExec."): one shared pre-failure execution plus
	// one per post-failure execution explored.
	Executions int
	// FailurePoints counts the eligible failure injection points of the
	// pre-failure execution, including the end-of-run point (Figure 14,
	// "FPoints").
	FailurePoints int
	// Steps is the total number of guest operations simulated.
	Steps int64
	// Duration is the wall-clock exploration time (Figure 14, "JTime").
	Duration time.Duration
	// Bugs are the distinct bugs found, in canonical order: by the
	// choice-stack description of the first manifesting scenario, then by
	// type and message. Canonical order — not discovery order — keeps the
	// result independent of how the state space was partitioned across
	// workers (Options.Workers).
	Bugs []*BugReport
	// MultiRF lists flagged loads (debugging support), sorted by location.
	MultiRF []*MultiRF
	// PerfIssues lists redundant flushes/fences (with FlagPerfIssues),
	// sorted by location.
	PerfIssues []*PerfIssue
	// RFChoicePoints counts the distinct read-from choice points explored
	// (loads with more than one candidate store).
	RFChoicePoints int
	// FailDecisionPoints counts the distinct failure-injection decision
	// points explored.
	FailDecisionPoints int
	// MaxRFCandidates is the largest read-from candidate set any load byte
	// presented — a direct measure of how many stores a load could read
	// (the missing-flush signature).
	MaxRFCandidates int
	// Complete reports whether the state space was fully explored (false
	// when MaxScenarios or MaxBugs truncated exploration).
	Complete bool
	// Metrics carries the observability layer's extended counters when
	// Options.Observe (or EventTrace) was set; nil otherwise. Its
	// partition-independent counters (Metrics.Canonical) are identical
	// between a full serial and a full parallel exploration.
	Metrics *obs.Metrics
}

// Buggy reports whether any bug was found.
func (r *Result) Buggy() bool { return len(r.Bugs) > 0 }

// Witness builds the structured forensics witness for r.Bugs[i].
func (r *Result) Witness(i int) (*forensics.Witness, error) {
	if i < 0 || i >= len(r.Bugs) {
		return nil, fmt.Errorf("no bug %d (result has %d)", i, len(r.Bugs))
	}
	return r.Bugs[i].Witness()
}

// Run explores the program's failure behaviours to completion (or until a
// configured cap) and returns the aggregated result. With Options.Workers
// greater than one the choice tree is partitioned across worker goroutines
// (parallel.go); the serial loop below is the reference semantics the
// parallel driver must reproduce bit-for-bit.
func (c *Checker) Run() *Result {
	if c.reg != nil {
		c.reg.SetGoal(int64(c.opts.MaxScenarios))
		c.reg.Emit("run_start", "program", c.prog.Name,
			"workers", c.opts.Workers, "max_scenarios", c.opts.MaxScenarios)
	}
	if c.opts.Workers > 1 && c.snapshot == nil && len(c.observers) == 0 {
		return c.runParallel()
	}
	c.reg.SetWorkers(1)
	start := time.Now()
	complete := c.runSerial()
	return c.buildResult(start, complete)
}

// runSerial is the single-goroutine depth-first exploration loop. It
// reports whether the state space was exhausted (no cap cut it short).
func (c *Checker) runSerial() bool {
	for {
		c.scenarios++
		c.runScenario()
		if c.opts.StopAtFirstBug && len(c.bugs) > 0 {
			c.porAbandon()
			return false
		}
		if len(c.bugs) >= c.opts.MaxBugs {
			c.porAbandon()
			return false
		}
		if c.scenarios >= c.opts.MaxScenarios {
			c.porAbandon()
			return false
		}
		if !c.chooser.advance() {
			c.porFlush()
			return true
		}
	}
}

// buildResult folds the chooser's choice-point counts into the stats and
// assembles the Result, sorting every finding list canonically.
func (c *Checker) buildResult(start time.Time, complete bool) *Result {
	c.foldChooserStats()
	mrf := make([]*MultiRF, 0, len(c.multiRF))
	for _, m := range c.multiRF {
		mrf = append(mrf, m)
	}
	sort.Slice(mrf, func(i, j int) bool { return mrf[i].Loc < mrf[j].Loc })
	perf := make([]*PerfIssue, 0, len(c.perfIssues))
	for _, p := range c.perfIssues {
		perf = append(perf, p)
	}
	sort.Slice(perf, func(i, j int) bool {
		if perf[i].Loc != perf[j].Loc {
			return perf[i].Loc < perf[j].Loc
		}
		return perf[i].Kind < perf[j].Kind
	})
	sortBugsCanonically(c.bugs)
	for _, b := range c.bugs {
		b.prog, b.opts = &c.prog, &c.opts
	}
	var metrics *obs.Metrics
	if c.reg != nil {
		// run_end goes out before the snapshot so Metrics.Events covers
		// the complete stream.
		c.reg.Emit("run_end", "scenarios", c.scenarios,
			"executions", 1+c.execsPost, "bugs", len(c.bugs),
			"complete", complete && !c.truncated)
		m := c.reg.Snapshot()
		metrics = &m
	}
	return &Result{
		Program:            c.prog.Name,
		Scenarios:          c.scenarios,
		Executions:         1 + c.execsPost,
		FailurePoints:      c.fpointsPre,
		Steps:              c.totalSteps,
		Duration:           time.Since(start),
		Bugs:               c.bugs,
		MultiRF:            mrf,
		PerfIssues:         perf,
		RFChoicePoints:     c.newPoints[chooseReadFrom],
		FailDecisionPoints: c.newPoints[chooseFail],
		MaxRFCandidates:    c.maxRF,
		Complete:           complete && !c.truncated,
		Metrics:            metrics,
	}
}

// foldChooserStats moves the chooser's discovered-point counters into the
// mergeable stats (idempotent: the chooser's counters are drained).
func (c *Checker) foldChooserStats() {
	for k, n := range c.chooser.newPoints {
		c.newPoints[k] += n
		c.chooser.newPoints[k] = 0
	}
}

// sortBugsCanonically orders bug reports by the choice-stack description of
// their first manifesting scenario, then by type and message — a total
// order independent of discovery order.
func sortBugsCanonically(bugs []*BugReport) {
	sort.Slice(bugs, func(i, j int) bool { return bugLess(bugs[i], bugs[j]) })
}

func bugLess(a, b *BugReport) bool {
	if a.Choices != b.Choices {
		return a.Choices < b.Choices
	}
	if a.Type != b.Type {
		return a.Type < b.Type
	}
	return a.Message < b.Message
}

// Execute runs fn once against a fresh pool with no failure injection —
// used for direct (non-exploring) execution of guest code in tests and
// benchmarks. It returns the bug encountered, if any.
func Execute(name string, fn func(*Context), opts Options) *Result {
	ck := New(Program{Name: name, Run: fn}, opts)
	return ck.Run()
}

// ---- Scenario engine ----------------------------------------------------

func (c *Checker) resetScenario() {
	c.seq = 0
	c.stack = c.pmpool.Recycle(c.stack)
	c.alloc.Reset()
	if _, ok := c.alloc.Alloc(RootSize, 1); !ok {
		panic(engineError{"pool smaller than root area"})
	}
	c.chooser.begin()
	if c.opts.Eviction == EvictRandom || c.opts.RandomScheduler {
		c.rng = rand.New(rand.NewSource(c.opts.Seed))
	}
	c.fpCount = 0
	c.preDone = false
	clear(c.lastStore)
	if c.trace != nil {
		c.trace.reset()
	}
	if c.wrec != nil {
		c.stack.SetIntervalTracer(c.wrec.intervalEvent)
	}
}

// pushExecution starts a new execution after an injected failure.
func (c *Checker) pushExecution() {
	c.stack.Push()
	clear(c.lastStore)
	if c.chsnapActive {
		// A fresh value log for the new recovery segment (backing storage
		// reused across scenarios).
		id := c.stack.Top().ID
		for len(c.segLogs) < id {
			c.segLogs = append(c.segLogs, nil)
		}
		c.segLogs[id-1] = c.segLogs[id-1][:0]
		c.segLog = &c.segLogs[id-1]
	}
}

// runScenario executes one complete failure scenario: the pre-failure
// execution up to an injected (or end-of-run) failure, then recovery
// executions until one completes without a further failure.
func (c *Checker) runScenario() {
	c.porBeginScenario()
	if c.col != nil {
		c.col.Inc(obs.Scenarios)
		c.reg.Emit("scenario_start", "worker", c.workerID, "scenario", c.scenarios)
		defer func() {
			c.col.NotePeak(obs.PeakChoiceDepth, int64(len(c.chooser.points)))
			c.reg.Emit("scenario_end", "worker", c.workerID,
				"scenario", c.scenarios, "depth", len(c.chooser.points))
		}()
	}
	defer func() { c.porNoteDepth(len(c.chooser.points)) }()
	c.beginSnapScenario()

	var crashed, resumedMid bool
	if s := c.usableSnapshot(); s != nil {
		// The recorded choice prefix crashes at (or completes to) a captured
		// state: restore it instead of re-executing the guest from scratch.
		if s.kind == choiceSnap {
			// Resume mid-recovery-segment at the captured choice point via
			// fast-forward replay (snapshot.go).
			resumedMid = true
			crashed = c.restoreChoiceSnap(s)
			if c.ffwd.active {
				// The segment ended before the replay reached its capture
				// point: the guest diverged from the recorded value log.
				c.ffwd = ffwdState{}
				panic(engineError{
					"choice-snapshot fast-forward never reached its capture point"})
			}
		} else {
			crashed = c.restoreSnapshot(s)
		}
	} else {
		c.resetScenario()
		// A full run always starts over on a fresh Stack, so any cached
		// snapshots reference dead state and must go; eligible runs
		// re-capture from scratch on the journaled fresh stack.
		c.dropSnaps()
		if c.snapActive {
			c.stack.EnableJournal()
		}
		crashed = c.runSegment(c.prog.Run)
	}
	if c.preDone {
		fp := c.fpCount
		if c.opts.MaxFailures > 0 {
			fp++ // the end-of-run failure point
		}
		if fp > c.fpointsPre {
			c.fpointsPre = fp
		}
	}
	if !crashed {
		// A resumed recovery segment that ran to completion (or ended with a
		// bug) finishes the scenario: the end-of-run failure point below
		// belongs to the pre-failure execution only.
		if resumedMid {
			c.bugEndedSegment = false
			return
		}
		// Segment ended due to a bug, or there is nothing to recover.
		if c.opts.MaxFailures < 0 || c.prog.Recover == nil || c.bugEndedSegment {
			c.bugEndedSegment = false
			return
		}
		// Mandatory end-of-run failure: the paper's third failure point in
		// the Figure 4 walkthrough ("at the end of the execution").
		if c.snapshot != nil {
			c.snapshot(-1)
		}
		c.captureSnap(endSnap)
		if c.wrec != nil {
			c.wrec.noteFailure(-1)
		}
	}
	if c.porCrashCheck() {
		// Fingerprint hit: an equivalent post-failure state's recovery
		// subtree was already explored and its delta has been re-applied.
		return
	}
	// The stack depth reflects failures already injected — 1 on a fresh run,
	// deeper when a restored snapshot resumed mid-recovery.
	for depth := c.stack.Depth() - 1; ; depth++ {
		if depth > c.opts.MaxFailures {
			panic(engineError{"recovery depth exceeded MaxFailures"})
		}
		c.pushExecution()
		c.execsPost++
		c.col.Inc(obs.ExecutionsPost)
		crashed = c.runSegment(c.prog.Recover)
		if !crashed {
			c.bugEndedSegment = false
			return
		}
	}
}

// runSegment executes one guest execution (pre-failure Run or a recovery).
// It returns true if the segment ended with an injected power failure, and
// false if it completed normally or was ended by a bug (recorded via
// c.bugEndedSegment).
func (c *Checker) runSegment(fn func(*Context)) (crashed bool) {
	var schedRNG *rand.Rand
	if c.opts.RandomScheduler {
		schedRNG = c.rng
	}
	main := c.sched.reset(c.opts.SBCapacity, schedRNG)
	c.steps = 0
	c.replaySteps = 0
	c.dirty = false

	if c.col != nil {
		// Registered before the teardown defer, so it runs after teardown
		// (LIFO) and sees the segment's final step count. Phase selection
		// happens now: the execution stack grows before recovery segments.
		phase, timer := obs.PreFailureNs, obs.TimerPreFailure
		switch {
		case c.replaySegment:
			phase, timer = obs.ReplayNs, obs.TimerReplay
		case c.stack.Top().ID > 0:
			phase, timer = obs.PostFailureNs, obs.TimerPostFailure
		}
		t0 := time.Now()
		defer func() {
			ns := time.Since(t0).Nanoseconds()
			c.col.Add(phase, ns)
			c.col.Observe(timer, ns)
			c.col.Add(obs.Steps, int64(c.steps))
			c.col.Add(obs.ReplaySteps, int64(c.replaySteps))
		}()
	}

	defer func() {
		// Always tear down child goroutines before leaving the segment.
		fault, unexpected := c.sched.shutdown()
		r := recover()
		switch v := r.(type) {
		case nil:
		case crashSignal:
			crashed = true
		case guestFault:
			if fault == nil {
				fault = &v
			}
		default:
			panic(r) // engineError or a genuine Go bug: propagate
		}
		if unexpected != nil {
			panic(unexpected)
		}
		if fault != nil {
			c.recordBug(*fault)
			crashed = false
		}
	}()

	ctx := &Context{ck: c, th: main}
	fn(ctx)
	c.joinAll(main)
	c.quiesce()
	if c.stack.Top().ID == 0 {
		c.preDone = true
	}
	return false
}

// joinAll waits for any guest threads the program left running.
func (c *Checker) joinAll(main *thread) {
	for {
		var pending *thread
		c.sched.mu.Lock()
		for _, t := range c.sched.threads {
			if t != main && !t.done {
				pending = t
				break
			}
		}
		c.sched.mu.Unlock()
		if pending == nil {
			return
		}
		c.sched.join(main, pending)
	}
}

// quiesce drains every thread's store and flush buffers, as happens when a
// program runs to completion. Failure points encountered during the drain
// remain eligible.
func (c *Checker) quiesce() {
	c.sched.mu.Lock()
	threads := append(c.thScratch[:0], c.sched.threads...)
	c.sched.mu.Unlock()
	c.thScratch = threads
	for _, t := range threads {
		t.ts.Mfence(c)
	}
}

// ---- tso.Storage implementation ------------------------------------------

// NextSeq increments and returns the global sequence counter σcurr.
func (c *Checker) NextSeq() pmem.Seq { c.seq++; return c.seq }

// CurSeq returns σcurr without incrementing.
func (c *Checker) CurSeq() pmem.Seq { return c.seq }

// ApplyStore writes a store's bytes into the current execution's cache
// queues at sequence s.
func (c *Checker) ApplyStore(addr pmem.Addr, size int, val uint64, s pmem.Seq) {
	e := c.stack.Top()
	for i := 0; i < size; i++ {
		e.Append(addr+pmem.Addr(i), byte(val>>(8*uint(i))), s)
	}
	e.EvictedStores += size
	c.dirty = true
	if c.opts.FlagPerfIssues {
		pmem.Lines(addr, uint64(size), func(line pmem.Addr) {
			c.lastStore[line] = s
		})
	}
}

// ApplyCLFlush pins the line's most-recent-writeback lower bound to s.
// Routed through the stack so the mutation is undo-journaled when the
// snapshot engine is active.
func (c *Checker) ApplyCLFlush(addr pmem.Addr, s pmem.Seq) {
	c.stack.FlushLine(addr, s)
}

// ApplyWriteback applies a buffered clflushopt writeback ordered at or
// after s.
func (c *Checker) ApplyWriteback(addr pmem.Addr, s pmem.Seq) {
	c.stack.FlushLine(addr, s)
}

// SFenceEffect feeds the performance-issue detector.
func (c *Checker) SFenceEffect(pendingWritebacks int, loc string) {
	if pendingWritebacks == 0 {
		c.notePerfFence(loc)
	}
}

// BeforeFlushEffect is the failure-injection hook (§4, "Injecting
// failures"): invoked immediately before a flush operation takes effect.
// Points with no stores evicted since the last considered point are skipped.
func (c *Checker) BeforeFlushEffect(kind tso.EntryKind, addr pmem.Addr, loc string) {
	c.notePerfFlush(addr, loc)
	if c.opts.MaxFailures < 0 || c.stack.Depth() > c.opts.MaxFailures {
		return
	}
	if !c.dirty {
		return
	}
	if c.stack.Top().ID == 0 {
		c.fpCount++
	}
	fpIndex := c.fpCount - 1
	c.dirty = false
	if c.snapshot != nil {
		c.snapshot(fpIndex)
	}
	// Captured before the fail/continue decision is consumed: restoring this
	// snapshot resumes as if the decision selected "fail".
	c.captureSnap(fpSnap)
	fresh := c.chooser.cursor == len(c.chooser.points)
	fail := c.chooser.choose(chooseFail, 2) == 1
	if fresh {
		c.porNoteFailPoint()
	}
	c.wrecDecision()
	if fail {
		if c.wrec != nil {
			c.wrec.noteFailure(fpIndex)
		}
		c.sched.initiateCrash()
		panic(crashSignal{})
	}
}

// ---- Load path (Figures 9 & 10) ------------------------------------------

// loadByte resolves one byte of a load. first marks the operation's leading
// byte: the choice-point snapshot stack captures only there, so the value log
// (snapshot.go) stays whole-operation and a fast-forward arrival always lands
// on an operation boundary.
func (c *Checker) loadByte(t *thread, a pmem.Addr, first bool) byte {
	return c.resolveByte(t, a, first)
}

// resolveByte resolves one byte of a load: store-buffer bypass, then the
// current execution's cache, then the lazily enumerated pre-failure
// candidates with constraint refinement.
func (c *Checker) resolveByte(t *thread, a pmem.Addr, first bool) byte {
	if v, ok := t.ts.Lookup(a); ok {
		c.col.Inc(obs.LoadSBHits)
		return v
	}
	if bs, ok := c.stack.Top().Newest(a); ok {
		c.col.Inc(obs.LoadCacheHits)
		return bs.Val
	}
	if c.col != nil {
		// Per-byte refinement latency: candidate enumeration through value
		// selection (all exit paths, including elision). Wall-clock, so it
		// feeds only the non-canonical TimerRefinement histogram.
		t0 := time.Now()
		defer func() {
			c.col.Observe(obs.TimerRefinement, time.Since(t0).Nanoseconds())
		}()
	}
	c.rfScratch = c.stack.ReadPreFailureInto(a, c.rfScratch[:0])
	cands := c.rfScratch
	multi := len(cands) > 1
	// porElides is a pure predicate over the candidate set; it is hoisted
	// here so the capture below covers exactly the real (non-elided) choice
	// points the chooser will consume.
	elide := multi && c.porElides(cands)
	if multi && !elide && first {
		// Captured before any of this load's own accounting: the arrival of
		// a fast-forward replay re-executes the load live and charges its
		// counters exactly once. Choices at non-leading bytes go uncaptured
		// (a restore targeting them resumes from the nearest shallower entry
		// and replays forward), keeping captures on operation boundaries.
		c.captureChoiceSnap()
	}
	if c.col != nil {
		c.col.Inc(obs.LoadRefinements)
		c.col.Add(obs.RFCandidates, int64(len(cands)))
		c.col.NotePeak(obs.PeakRFCandidates, int64(len(cands)))
	}
	var wres *forensics.LoadResolution
	if c.wrec != nil && c.stack.Top().ID > 0 {
		// Built before the choice so the verdicts reflect the pre-refinement
		// intervals the admission rule actually consulted.
		wres = c.wrec.beginLoad(t, a)
		c.wrec.openLoad = wres
	}
	idx := 0
	if multi {
		if len(cands) > c.maxRF {
			c.maxRF = len(cands)
		}
		if c.opts.FlagMultiRF {
			c.flagMultiRF(a, cands)
		}
		if elide {
			// Every candidate carries the same value: the sibling read-from
			// branches commute. No choice point, and no DoRead refinement —
			// the unrefined interval keeps this single branch the exact
			// union of the elided siblings (see por.go).
			c.col.Inc(obs.RFElisions)
			if wres != nil {
				c.wrec.finishLoad(wres, cands[0])
				c.wrec.openLoad = nil
			}
			return cands[0].Val
		}
		idx = c.chooser.choose(chooseReadFrom, len(cands))
		c.wrecDecision()
	}
	chosen := cands[idx]
	if c.stack.DoRead(a, chosen) {
		c.col.Inc(obs.RefinementsSkipped)
	}
	if wres != nil {
		c.wrec.finishLoad(wres, chosen)
		c.wrec.openLoad = nil
	}
	for _, ob := range c.observers {
		ob(a, chosen)
	}
	return chosen.Val
}

func (c *Checker) flagMultiRF(a pmem.Addr, cands []pmem.Candidate) {
	loc := guestLocation()
	key := loc
	m, ok := c.multiRF[key]
	if ok && len(cands) < m.Candidates {
		// A smaller candidate set can never displace the canonical
		// representative (the candidate maximum only grows), so skip the
		// value formatting entirely — this is the hot path once a large
		// manifestation has been seen at a location.
		m.Count++
		if c.snapActive {
			c.noteMultiDelta(key, a, len(cands), nil)
		}
		return
	}
	vals := multiRFValues(cands)
	if !ok {
		m = &MultiRF{Loc: loc, Addr: a, Values: vals}
		c.multiRF[key] = m
	} else if len(cands) > m.Candidates ||
		strings.Join(vals, ",") < strings.Join(m.Values, ",") {
		// Canonical representative, the same rule the parallel merge
		// uses: the manifestation with the larger candidate set wins,
		// ties broken lexicographically — so the reported example does
		// not depend on discovery order (serial or partitioned).
		m.Values = vals
		m.Addr = a
	}
	if len(cands) > m.Candidates {
		m.Candidates = len(cands)
	}
	m.Count++
	if c.snapActive {
		c.noteMultiDelta(key, a, len(cands), vals)
	}
}

func multiRFValues(cands []pmem.Candidate) []string {
	vals := make([]string, 0, 8)
	for _, cd := range cands {
		vals = append(vals,
			fmt.Sprintf("exec%d σ=%v val=%#x", cd.Exec, cd.Seq, cd.Val))
		if len(vals) == 8 {
			break
		}
	}
	return vals
}

// ---- Bug recording --------------------------------------------------------

func (c *Checker) recordBug(f guestFault) {
	c.bugEndedSegment = true
	c.porNoteBug(f.typ, f.msg, c.stack.Top().ID)
	b := &BugReport{
		Type:      f.typ,
		Message:   f.msg,
		Execution: c.stack.Top().ID,
		Scenario:  c.scenarios - 1,
		Count:     1,
		Choices:   c.chooser.describe(),
		replay:    append([]choicePoint(nil), c.chooser.points...),
	}
	if existing, ok := c.bugIndex[b.key()]; ok {
		// Canonical representative, the same rule the parallel merge
		// uses: of all manifestations sharing a key, the one with the
		// smallest (Choices, Execution) supplies the reported scenario,
		// replay vector, and trace.
		if b.Choices < existing.Choices ||
			(b.Choices == existing.Choices && b.Execution < existing.Execution) {
			if c.trace != nil {
				b.Trace = c.trace.snapshot()
			}
			b.Count = existing.Count + 1
			*existing = *b
		} else {
			existing.Count++
		}
		return
	}
	if c.trace != nil {
		b.Trace = c.trace.snapshot()
	}
	c.bugIndex[b.key()] = b
	c.bugs = append(c.bugs, b)
	if c.reg != nil {
		c.reg.Emit("bug", "worker", c.workerID, "type", b.Type.String(),
			"message", b.Message, "choices", b.Choices)
	}
}

// recordEngineBug converts an internal engine panic raised while exploring
// a claimed branch into a reported bug carrying the offending branch prefix,
// so one corrupted subtree (typically a nondeterministic guest whose choice
// shape changed between record and replay) does not crash the whole
// parallel exploration. The abandoned subtree marks the stats truncated.
func (c *Checker) recordEngineBug(e engineError, prefix []choicePoint) {
	c.truncated = true
	b := &BugReport{
		Type:      BugEngine,
		Message:   e.msg,
		Execution: c.stack.Top().ID,
		Scenario:  c.scenarios - 1,
		Count:     1,
		Choices:   describeChoices(prefix),
		replay:    append([]choicePoint(nil), prefix...),
	}
	if existing, ok := c.bugIndex[b.key()]; ok {
		existing.Count++
		return
	}
	c.bugIndex[b.key()] = b
	c.bugs = append(c.bugs, b)
}
