package core

import (
	"sync"
	"testing"
)

// porInsertProgram writes n distinct values to n distinct slots, flushing
// each: every failure point exposes a different persisted state, so the
// fingerprint seen-set only ever records misses.
func porInsertProgram(n int) Program {
	return Program{
		Name: "por-insert",
		Run: func(c *Context) {
			slots := c.AllocLine(uint64(n) * 8)
			for i := 0; i < n; i++ {
				a := slots + Addr(i*8)
				c.Store64(a, uint64(i)*10+3)
				c.Clflush(a, 8)
				c.Sfence()
			}
		},
		Recover: func(c *Context) {
			slots := Addr(PoolBase)
			_ = c.Load64(slots)
		},
	}
}

// porUpdateProgram commits a slot and then rewrites it in place for rounds
// passes, alternating two values: the crash-time state recurs with period
// two, the shape the fingerprint sweep prunes.
func porUpdateProgram(rounds int) Program {
	return Program{
		Name: "por-update",
		Run: func(c *Context) {
			root := c.Root()
			data := c.AllocLine(8)
			c.Store64(data, 7)
			c.Clflush(data, 8)
			c.Sfence()
			c.StorePtr(root, data)
			c.Clflush(root, 8)
			c.Sfence()
			for r := 0; r < rounds; r++ {
				v := uint64(0xA5A5)
				if r%2 == 1 {
					v = 0x5A5A
				}
				c.Store64(data, v)
				c.Clflush(data, 8)
				c.Sfence()
			}
		},
		Recover: func(c *Context) {
			p := c.LoadPtr(c.Root())
			if p == 0 {
				return
			}
			v := c.Load64(p)
			c.Assert(v == 7 || v == 0xA5A5 || v == 0x5A5A,
				"slot holds %#x after recovery", v)
		},
	}
}

func TestPORFpEligibilityGates(t *testing.T) {
	prog := porUpdateProgram(2)
	cases := []struct {
		name string
		opts Options
		want bool
	}{
		{"default", Options{}, true},
		{"disabled", Options{POR: -1}, false},
		{"multi failure", Options{MaxFailures: 2}, false},
		{"no failure injection", Options{MaxFailures: -1}, false},
		{"random scheduler", Options{RandomScheduler: true, Seed: 1}, false},
		{"random eviction", Options{Eviction: EvictRandom, Seed: 1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New(prog, tc.opts)
			if got := c.porFpEligible(); got != tc.want {
				t.Errorf("porFpEligible = %v, want %v", got, tc.want)
			}
		})
	}
	t.Run("no recovery", func(t *testing.T) {
		p := prog
		p.Recover = nil
		if New(p, Options{}).porFpEligible() {
			t.Error("porFpEligible without a Recover function")
		}
	})
}

// fpCollector records every seen-set consultation through the porFPHook test
// hook. Workers share one collector, so it locks.
type fpCollector struct {
	mu   sync.Mutex
	fps  map[uint64]bool
	hits int
}

func newFpCollector() *fpCollector { return &fpCollector{fps: make(map[uint64]bool)} }

func (f *fpCollector) hook(fp uint64, hit bool) {
	f.mu.Lock()
	f.fps[fp] = true
	if hit {
		f.hits++
	}
	f.mu.Unlock()
}

func (f *fpCollector) set() map[uint64]bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[uint64]bool, len(f.fps))
	for k := range f.fps {
		out[k] = true
	}
	return out
}

// TestPORFingerprintSetDeterministicAcrossWorkers: the set of fingerprints
// consulted against the seen-set must not depend on how the choice tree is
// partitioned across workers. An insert-style program keeps the set
// hit-free, so serial and parallel runs must consult the identical set.
func TestPORFingerprintSetDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *fpCollector {
		col := newFpCollector()
		c := New(porInsertProgram(4), Options{Workers: workers})
		c.porFPHook = col.hook
		res := c.Run()
		if !res.Complete || res.Buggy() {
			t.Fatalf("workers=%d: unexpected result %+v", workers, res)
		}
		return col
	}
	serial := run(1)
	parallel := run(4)
	if serial.hits != 0 || parallel.hits != 0 {
		t.Fatalf("insert program produced fingerprint hits (serial %d, parallel %d): "+
			"the determinism comparison needs a hit-free state space",
			serial.hits, parallel.hits)
	}
	if len(serial.set()) == 0 {
		t.Fatal("no fingerprints consulted; the POR layer looks inactive")
	}
	ss, ps := serial.set(), parallel.set()
	if len(ss) != len(ps) {
		t.Fatalf("consultation sets differ in size: serial %d, parallel %d", len(ss), len(ps))
	}
	for fp := range ss {
		if !ps[fp] {
			t.Errorf("fingerprint %#x consulted serially but not in parallel", fp)
		}
	}
}

// TestPORSweepEquivalence: on a state-recurring workload the sweep must
// prune physical scenarios while preserving the logical result exactly.
func TestPORSweepEquivalence(t *testing.T) {
	prog := porUpdateProgram(12)
	off := New(prog, Options{POR: -1, Observe: true}).Run()
	on := New(prog, Options{Observe: true}).Run()

	if on.Scenarios != off.Scenarios || on.Executions != off.Executions ||
		on.FailurePoints != off.FailurePoints || on.Complete != off.Complete ||
		len(on.Bugs) != len(off.Bugs) {
		t.Errorf("logical results diverge:\noff %+v\non  %+v", off, on)
	}
	if off.Metrics.ScenariosPruned != 0 || off.Metrics.FingerprintHits != 0 {
		t.Errorf("POR disabled but pruning counters nonzero: %+v", off.Metrics)
	}
	if on.Metrics.ScenariosPruned == 0 {
		t.Error("update workload pruned no scenarios")
	}
	if on.Metrics.FingerprintHits == 0 {
		t.Error("update workload recorded no fingerprint hits")
	}
	physical := int64(on.Scenarios) - on.Metrics.ScenariosPruned
	if physical <= 0 {
		t.Fatalf("pruned %d of %d scenarios: accounting broken",
			on.Metrics.ScenariosPruned, on.Scenarios)
	}
	if physical*2 > int64(off.Scenarios) {
		t.Errorf("weak reduction: %d physical vs %d unpruned scenarios",
			physical, off.Scenarios)
	}
}
