package core

// Replay support: a BugReport records the scenario's complete choice
// vector, so the exact buggy execution can be re-run — with full tracing —
// long after exploration finished. This rounds out the paper's debugging
// support ("Jaaru prints out the load..., each of the stores, their
// locations in the trace"): first explore cheaply, then replay the one
// scenario that matters with maximal instrumentation.

// Replay re-executes the failure scenario that first manifested bug b for
// prog, with tracing forced on, and returns the complete operation trace
// of that scenario (all executions, pre-failure and recovery). The program
// and options must match the original exploration, or the recorded choices
// will not line up and Replay panics with a nondeterministic-replay error.
func Replay(prog Program, opts Options, b *BugReport) []TraceOp {
	// Tracing is forced on regardless of opts.TraceLen — producing the
	// trace is the point of a replay, even when the exploration ran with
	// tracing disabled. Snapshots are forced off so the scenario re-executes
	// the guest from scratch and the returned trace covers the pre-failure
	// operations too. Everything else keeps the original exploration's
	// semantics: withDefaults is idempotent, so New's second normalization
	// cannot flip disabled features (a negative MaxFailures, say) back to
	// their defaults.
	o := opts.withDefaults()
	o.TraceLen = witnessTraceLen
	o.MaxScenarios = 1
	o.Snapshots = -1
	c := New(prog, o)
	c.replaySegment = true
	c.chooser.seed(b.replay)
	c.scenarios = 1
	c.runScenario()
	return c.trace.snapshot()
}
