package core

import (
	"encoding/hex"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"jaaru/internal/obs"
)

// randWireClaims builds a batch of randomized claims in canonical wire shape
// (the shapes encodeClaim emits: limits nil or full-length, memos nil or
// full-length), sharing prefixes the way real frontier batches do.
func randWireClaims(rng *rand.Rand, batch int) []WireClaim {
	kinds := []choiceKind{chooseFail, chooseReadFrom, chooseEvict}
	var prefix []choicePoint
	ws := make([]WireClaim, batch)
	for ci := range ws {
		depth := rng.Intn(8)
		pts := make([]choicePoint, depth)
		// Reuse a shared prefix half the time, like sibling frontier claims.
		if len(prefix) > 0 && rng.Intn(2) == 0 {
			copy(pts, prefix[:min(len(prefix), depth)])
		}
		var limits []int
		memos := make([]*failMemo, depth)
		residual := rng.Intn(2) == 0
		if residual {
			limits = make([]int, depth)
		}
		anyMemo := false
		for i := range pts {
			if pts[i].n == 0 { // not copied from the prefix
				kind := kinds[rng.Intn(len(kinds))]
				n := 1 + rng.Intn(5)
				if kind == chooseFail {
					n = 2
				}
				pts[i] = choicePoint{kind: kind, n: n, idx: rng.Intn(n)}
			}
			if residual {
				p := pts[i]
				limits[i] = p.idx + 1 + rng.Intn(p.n-p.idx)
			}
			if pts[i].kind == chooseFail && rng.Intn(3) == 0 {
				m := &failMemo{fp: rng.Uint64(), steps: rng.Int63n(1 << 20)}
				if rng.Intn(2) == 0 {
					m.vec[obs.Scenarios] = rng.Int63n(100)
					m.vec[obs.Steps] = rng.Int63n(10000)
				}
				memos[i] = m
				anyMemo = true
			}
		}
		if !anyMemo {
			memos = nil
		}
		prefix = pts
		ws[ci] = encodeClaim(pts, limits, memos)
	}
	return ws
}

// richWireStats builds a stats snapshot exercising every field the codec
// carries: bugs with traces and replay vectors, flagged loads, perf issues,
// and an observability shard with sparse counters and histograms.
func richWireStats() *WireStats {
	pts := []choicePoint{
		{kind: chooseFail, n: 2, idx: 0},
		{kind: chooseReadFrom, n: 4, idx: 1},
		{kind: chooseEvict, n: 3, idx: 2},
	}
	counters := make([]int64, obs.NumCounters)
	counters[obs.Scenarios] = 7
	counters[obs.Steps] = 910
	return &WireStats{
		Scenarios:  7,
		ExecsPost:  7,
		FpointsPre: 5,
		Steps:      910,
		MaxRF:      3,
		NewPoints:  [3]int{4, 2, 1},
		Truncated:  true,
		Bugs: []WireBug{{
			Type:      int(BugAssertion),
			Message:   "second line persisted before first",
			Execution: 1,
			Scenario:  4,
			Count:     2,
			Choices:   "fail@3",
			Trace: []TraceOp{
				{Thread: 0, Kind: "store", Addr: 64, Size: 8, Val: 2},
				{Thread: 1, Kind: "load", Addr: 72, Size: 8, Val: 1},
			},
			Replay: encodePoints(pts),
		}},
		MultiRF: []MultiRF{{
			Loc: "probe.go:12", Addr: 128, Candidates: 3,
			Values: []string{"7", "9"}, Count: 2,
		}},
		PerfIssues: []PerfIssue{{Kind: PerfRedundantFlush, Loc: "probe.go:20", Line: 20, Count: 1}},
		Obs: &WireObs{
			Counters: counters,
			Peaks:    []int64{2},
			Hists: []WireHist{{
				Timer: int(obs.TimerPreFailure), Count: 2, Sum: 300,
				Buckets: [][2]int64{
					{int64(obs.HistBucketIndex(100)), 1},
					{int64(obs.HistBucketIndex(200)), 1},
				},
			}},
		},
	}
}

func richPorEntries() []WirePorEntry {
	suffix := []choicePoint{
		{kind: chooseFail, n: 2, idx: 1},
		{kind: chooseReadFrom, n: 3, idx: 0},
	}
	vec := make([]int64, obs.NumCounters)
	vec[obs.Scenarios] = 2
	return []WirePorEntry{
		{
			FP: 0xabcdef12,
			Delta: WirePorDelta{
				Scenarios: 2, Execs: 2, Steps: 64, MaxRF: 2, MaxRel: 1,
				NewPoints: [3]int{1, 1, 0}, Replayed: 10, Fresh: 54,
				Vec: vec,
				Bugs: []WirePorBug{{
					Type: int(BugAssertion), Message: "torn pair", Exec: 1,
					Count: 1, Rel: "fail@2",
					Suffix: encodePoints(suffix),
					Trace:  []TraceOp{{Thread: 0, Kind: "store", Addr: 8, Size: 8, Val: 5}},
				}},
				Perf: []WirePorPerf{{
					Count: 2,
					Issue: PerfIssue{Kind: PerfRedundantFence, Loc: "p.go:3", Line: 3, Count: 2},
				}},
				Multi: []WirePorMulti{{
					Count: 1,
					Multi: MultiRF{Loc: "p.go:9", Addr: 16, Candidates: 2, Values: []string{"0"}, Count: 1},
				}},
			},
		},
		{
			FP: 0x22,
			Delta: WirePorDelta{
				Scenarios: 1, Execs: 1, Steps: 8, NewPoints: [3]int{0, 1, 0}, Fresh: 8,
			},
		},
	}
}

// TestWireV2ClaimRoundTripProperty: randomized claim batches survive the
// binary codec exactly, and decode equal to the same values pushed through
// the frozen JSON v1 — the cross-version guarantee mixed fleets rely on.
func TestWireV2ClaimRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0x2b52))
	for iter := 0; iter < 500; iter++ {
		ws := randWireClaims(rng, 1+rng.Intn(4))

		e := NewWireEncoder(nil)
		e.Claims(ws)
		d := NewWireDecoder(e.Bytes())
		got := d.Claims()
		if err := d.Done(); err != nil {
			t.Fatalf("iter %d: decode: %v", iter, err)
		}
		if !reflect.DeepEqual(got, ws) {
			t.Fatalf("iter %d: v2 round trip differs:\nwant %+v\ngot  %+v", iter, ws, got)
		}

		// Cross-version: v1 (JSON) round trip of the same batch decodes to
		// the same values.
		data, err := json.Marshal(ws)
		if err != nil {
			t.Fatal(err)
		}
		var v1 []WireClaim
		if err := json.Unmarshal(data, &v1); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, v1) {
			t.Fatalf("iter %d: v2 and v1 decode differently:\nv1 %+v\nv2 %+v", iter, v1, got)
		}

		// Every decoded claim must still compile (grantable verbatim).
		for i := range got {
			if err := got[i].Validate(); err != nil {
				t.Fatalf("iter %d: decoded claim %d invalid: %v", iter, i, err)
			}
		}
	}
}

// TestWireV2DeepSharedPrefixTail: a batch of chained residual claims — each
// sharing all but one point with its predecessor, no limits, no memos — puts
// point streams whose declared length far exceeds their wire footprint at the
// very end of the message. Interned points cost zero bytes, so a decoder
// plausibility bound that charges a byte per point rejects this valid shape
// (observed live: a 4-worker lease grant of donated splits). Must round-trip.
func TestWireV2DeepSharedPrefixTail(t *testing.T) {
	mk := func(n int) WireClaim {
		pts := make([]WirePoint, n)
		for i := range pts {
			pts[i] = WirePoint{Kind: "rf", N: 2, Idx: i % 2}
		}
		return WireClaim{Points: pts}
	}
	// Descending lengths: each claim is a fresh prefix chain ending in a
	// different last point, so shared = len-1 against its predecessor's
	// truncation — the exact shape handleLease emits for split donations.
	batch := []WireClaim{mk(18), mk(17), mk(16), mk(15), mk(14)}

	e := NewWireEncoder(nil)
	e.Claims(batch)
	wire := e.Bytes()
	// The whole point of the test: the tail claims must be mostly interned,
	// leaving fewer wire bytes than declared points.
	if len(wire) > 80 {
		t.Fatalf("batch no longer interns tightly (%d bytes); test shape is stale", len(wire))
	}

	d := NewWireDecoder(wire)
	got := d.Claims()
	if err := d.Done(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, batch) {
		t.Fatalf("deep-shared-prefix batch differs:\nwant %+v\ngot  %+v", batch, got)
	}
}

// TestWireV2StatsRoundTrip: a fully populated stats snapshot (and the nil
// absence marker) survive the binary codec bit-exactly.
func TestWireV2StatsRoundTrip(t *testing.T) {
	ws := richWireStats()
	e := NewWireEncoder(nil)
	e.Stats(ws)
	d := NewWireDecoder(e.Bytes())
	got := d.Stats()
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ws) {
		t.Errorf("stats round trip differs:\nwant %+v\ngot  %+v", ws, got)
	}

	e.Reset()
	e.Stats(nil)
	d = NewWireDecoder(e.Bytes())
	if got := d.Stats(); got != nil || d.Done() != nil {
		t.Errorf("nil stats round trip: got %+v, err %v", got, d.Done())
	}
}

// TestWireV2PorEntriesRoundTrip: publication-log batches with bugs, perf
// deltas, and flagged loads survive the binary codec exactly.
func TestWireV2PorEntriesRoundTrip(t *testing.T) {
	es := richPorEntries()
	e := NewWireEncoder(nil)
	e.PorEntries(es)
	d := NewWireDecoder(e.Bytes())
	got := d.PorEntries()
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, es) {
		t.Errorf("por round trip differs:\nwant %+v\ngot  %+v", es, got)
	}
	for i := range got {
		if err := AbsorbPorEntry(&got[i]); err != nil {
			t.Errorf("decoded por entry %d invalid: %v", i, err)
		}
	}
}

// TestWireV2CompositeMessage: the codec has no sub-message framing, so a
// commit-shaped sequence (claims, more claims, stats, por log) must decode
// through one decoder in encode order — exactly how internal/dist frames it.
func TestWireV2CompositeMessage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	splits := randWireClaims(rng, 2)
	residuals := randWireClaims(rng, 3)
	ws := richWireStats()
	es := richPorEntries()

	e := NewWireEncoder(nil)
	e.Claims(splits)
	e.Claims(residuals)
	e.Stats(ws)
	e.PorEntries(es)

	d := NewWireDecoder(e.Bytes())
	gotSplits := d.Claims()
	gotResiduals := d.Claims()
	gotStats := d.Stats()
	gotEs := d.PorEntries()
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSplits, splits) || !reflect.DeepEqual(gotResiduals, residuals) ||
		!reflect.DeepEqual(gotStats, ws) || !reflect.DeepEqual(gotEs, es) {
		t.Error("composite message did not round trip field-for-field")
	}
}

// TestWireV2SmallerThanJSON: the codec's reason to exist — a realistic
// commit payload (prefix-sharing claims + stats + por) must be much smaller
// in v2 than in the JSON v1 encoding.
func TestWireV2SmallerThanJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	claims := randWireClaims(rng, 8)
	ws := richWireStats()

	e := NewWireEncoder(nil)
	e.Claims(claims)
	e.Stats(ws)
	v2 := len(e.Bytes())

	j1, _ := json.Marshal(claims)
	j2, _ := json.Marshal(ws)
	v1 := len(j1) + len(j2)
	if v2*2 > v1 {
		t.Errorf("v2 payload %dB is not at least 2x smaller than JSON %dB", v2, v1)
	}
}

// TestWireV2DecoderRejectsMalformed: the decoder must fail cleanly — sticky
// error, no panic, no silent truncation — on hostile or skewed input.
func TestWireV2DecoderRejectsMalformed(t *testing.T) {
	e := NewWireEncoder(nil)
	e.Claims(randWireClaims(rand.New(rand.NewSource(3)), 3))
	good := e.Bytes()

	// Every truncation of a valid message must error (via Err or Done), not
	// decode to a plausible value.
	for cut := 0; cut < len(good); cut++ {
		d := NewWireDecoder(good[:cut])
		d.Claims()
		if d.Err() == nil && d.Done() == nil {
			t.Fatalf("truncation at %d/%d decoded cleanly", cut, len(good))
		}
	}

	// Trailing garbage after a complete message is a framing error.
	d := NewWireDecoder(append(append([]byte(nil), good...), 0xee))
	d.Claims()
	if err := d.Done(); err == nil {
		t.Error("trailing bytes accepted")
	}

	// A shared-prefix count pointing past the interning context must fail.
	bad := NewWireEncoder(nil)
	bad.Uvarint(1) // one claim
	bad.Uvarint(2) // two points
	bad.Uvarint(2) // sharing 2 points of an empty context
	d = NewWireDecoder(bad.Bytes())
	d.Claims()
	if d.Err() == nil {
		t.Error("out-of-context shared prefix accepted")
	}

	// An unknown kind code must fail rather than alias a real kind.
	bad = NewWireEncoder(nil)
	bad.Uvarint(1)
	bad.Uvarint(1)
	bad.Uvarint(0)
	bad.Byte(0x7f)
	bad.Int(2)
	bad.Int(0)
	bad.Bool(false)
	bad.Bool(false)
	d = NewWireDecoder(bad.Bytes())
	d.Claims()
	if d.Err() == nil {
		t.Error("unknown kind code accepted")
	}

	// An unknown-but-escaped kind survives (future-proofing) and is caught
	// by Validate, not the codec.
	esc := NewWireEncoder(nil)
	esc.Claims([]WireClaim{{Points: []WirePoint{{Kind: "coin", N: 2, Idx: 0}}}})
	d = NewWireDecoder(esc.Bytes())
	got := d.Claims()
	if err := d.Done(); err != nil {
		t.Fatalf("escaped kind did not round trip: %v", err)
	}
	if got[0].Points[0].Kind != "coin" {
		t.Errorf("escaped kind = %q, want %q", got[0].Points[0].Kind, "coin")
	}
	if got[0].Validate() == nil {
		t.Error("unknown kind passed Validate")
	}
}

// TestWireV2GoldenFixture freezes the binary wire format, beside the JSON
// v1 fixture in wire_golden.json. A diff here means codec v2 changed shape:
// old workers and new coordinators would misparse each other, so bump
// deliberately (and regenerate with
// UPDATE_GOLDEN=1 go test ./internal/core/ -run TestWireV2GoldenFixture).
func TestWireV2GoldenFixture(t *testing.T) {
	pts := []choicePoint{
		{kind: chooseFail, n: 2, idx: 0},
		{kind: chooseReadFrom, n: 4, idx: 1},
		{kind: chooseFail, n: 2, idx: 0},
		{kind: chooseEvict, n: 3, idx: 2},
	}
	limits := []int{1, 3, 2, 3}
	memos := make([]*failMemo, len(pts))
	var vec obs.CounterVec
	vec[obs.Scenarios] = 3
	vec[obs.Steps] = 512
	memos[2] = &failMemo{fp: 0xfeedface, steps: 321, vec: vec}

	// One composite message covering every encoder entry point, in the
	// field order a commit frame uses.
	e := NewWireEncoder(nil)
	e.Claims([]WireClaim{
		encodeClaim(pts, limits, memos),
		encodeFrozenClaim(pts[:2]),
	})
	e.Stats(richWireStats())
	e.PorEntries(richPorEntries())

	got := []byte(hexDump(e.Bytes()))
	path := filepath.Join("testdata", "wire_golden_v2.hex")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("wire v2 format drifted from golden fixture %s:\n--- want\n%s\n--- got\n%s", path, want, got)
	}

	// The frozen bytes must still decode to the values they encode — the
	// fixture pins the format, this pins its meaning.
	d := NewWireDecoder(e.Bytes())
	claims := d.Claims()
	stats := d.Stats()
	por := d.PorEntries()
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
	if len(claims) != 2 || !reflect.DeepEqual(stats, richWireStats()) ||
		!reflect.DeepEqual(por, richPorEntries()) {
		t.Error("golden message decode mismatch")
	}
}

// hexDump renders bytes as lowercase hex, 32 bytes per line, trailing
// newline — a line-diffable fixture format.
func hexDump(b []byte) string {
	var sb strings.Builder
	for off := 0; off < len(b); off += 32 {
		end := min(off+32, len(b))
		sb.WriteString(hex.EncodeToString(b[off:end]))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestDiffWireStatsSequentialAbsorption: absorbing a lease's delta commits
// in sequence must land the coordinator in exactly the state absorbing the
// final cumulative snapshot once would have — the soundness condition of
// the delta-commit protocol.
func TestDiffWireStatsSequentialAbsorption(t *testing.T) {
	replay := encodePoints([]choicePoint{{kind: chooseFail, n: 2, idx: 1}})
	counters := func(scen, steps int64) []int64 {
		v := make([]int64, obs.NumCounters)
		v[obs.Scenarios] = scen
		v[obs.Steps] = steps
		return v
	}
	// Three cumulative snapshots of one worker: counts only grow, the bug
	// representative improves canonically ("b" -> "a"), a second bug and a
	// perf issue appear mid-lease, histogram buckets fill in.
	cum1 := &WireStats{
		Scenarios: 3, ExecsPost: 3, FpointsPre: 4, Steps: 100, MaxRF: 2,
		NewPoints: [3]int{1, 1, 0},
		Bugs: []WireBug{{Type: 1, Message: "m", Execution: 2, Scenario: 1,
			Count: 1, Choices: "b", Replay: replay}},
		MultiRF: []MultiRF{{Loc: "x.go:1", Addr: 8, Candidates: 2, Values: []string{"3"}, Count: 1}},
		Obs: &WireObs{Counters: counters(3, 100), Peaks: []int64{1},
			Hists: []WireHist{{Timer: 0, Count: 1, Sum: 50, Buckets: [][2]int64{{4, 1}}}}},
	}
	cum2 := &WireStats{
		Scenarios: 7, ExecsPost: 7, FpointsPre: 5, Steps: 250, MaxRF: 3,
		NewPoints: [3]int{2, 1, 1},
		Bugs: []WireBug{
			{Type: 1, Message: "m", Execution: 1, Scenario: 1, Count: 3, Choices: "a", Replay: replay},
			{Type: 2, Message: "n", Execution: 5, Scenario: 6, Count: 1, Choices: "c"},
		},
		// The flagged load's representative legitimately changed: a bigger
		// candidate set displaced it, the same join the worker's own
		// flagMultiRF applies (a representative never changes otherwise).
		MultiRF:    []MultiRF{{Loc: "x.go:1", Addr: 8, Candidates: 3, Values: []string{"3", "5", "7"}, Count: 2}},
		PerfIssues: []PerfIssue{{Kind: PerfRedundantFlush, Loc: "x.go:2", Line: 2, Count: 1}},
		Obs: &WireObs{Counters: counters(7, 250), Peaks: []int64{2},
			Hists: []WireHist{{Timer: 0, Count: 3, Sum: 150, Buckets: [][2]int64{{4, 2}, {6, 1}}}}},
	}
	cum3 := &WireStats{
		Scenarios: 10, ExecsPost: 10, FpointsPre: 5, Steps: 400, MaxRF: 3,
		NewPoints: [3]int{2, 2, 1},
		Bugs: []WireBug{
			{Type: 1, Message: "m", Execution: 1, Scenario: 1, Count: 4, Choices: "a", Replay: replay},
			{Type: 2, Message: "n", Execution: 5, Scenario: 6, Count: 2, Choices: "c"},
		},
		MultiRF:    []MultiRF{{Loc: "x.go:1", Addr: 8, Candidates: 3, Values: []string{"3", "5", "7"}, Count: 3}},
		PerfIssues: []PerfIssue{{Kind: PerfRedundantFlush, Loc: "x.go:2", Line: 2, Count: 2}},
		Obs: &WireObs{Counters: counters(10, 400), Peaks: []int64{2},
			Hists: []WireHist{{Timer: 0, Count: 5, Sum: 260, Buckets: [][2]int64{{4, 3}, {6, 2}}}}},
	}

	prog := Program{Name: "delta-probe", Run: func(*Context) {}}
	opts := Options{Observe: true}

	seq := NewMergeAcc(prog, opts)
	var prev *WireStats
	for _, cum := range []*WireStats{cum1, cum2, cum3} {
		if err := seq.Absorb(DiffWireStats(cum, prev)); err != nil {
			t.Fatal(err)
		}
		prev = cum
	}
	oneShot := NewMergeAcc(prog, opts)
	if err := oneShot.Absorb(DiffWireStats(cum3, nil)); err != nil {
		t.Fatal(err)
	}

	a, b := seq.BuildResult(true), oneShot.BuildResult(true)
	if a.Scenarios != b.Scenarios || a.Executions != b.Executions ||
		a.FailurePoints != b.FailurePoints || a.Steps != b.Steps ||
		a.RFChoicePoints != b.RFChoicePoints || a.FailDecisionPoints != b.FailDecisionPoints ||
		a.MaxRFCandidates != b.MaxRFCandidates || a.Complete != b.Complete {
		t.Errorf("scalar results differ:\nseq %+v\none %+v", a, b)
	}
	if len(a.Bugs) != len(b.Bugs) {
		t.Fatalf("bugs = %d vs %d", len(a.Bugs), len(b.Bugs))
	}
	for i := range a.Bugs {
		x, y := a.Bugs[i], b.Bugs[i]
		if x.Type != y.Type || x.Message != y.Message || x.Execution != y.Execution ||
			x.Scenario != y.Scenario || x.Count != y.Count || x.Choices != y.Choices ||
			!reflect.DeepEqual(x.Trace, y.Trace) || !reflect.DeepEqual(x.replay, y.replay) {
			t.Errorf("bug %d differs:\nseq %+v\none %+v", i, *x, *y)
		}
	}
	if len(a.MultiRF) != len(b.MultiRF) || len(a.PerfIssues) != len(b.PerfIssues) {
		t.Fatalf("finding counts differ: %d/%d vs %d/%d",
			len(a.MultiRF), len(a.PerfIssues), len(b.MultiRF), len(b.PerfIssues))
	}
	for i := range a.MultiRF {
		if !reflect.DeepEqual(*a.MultiRF[i], *b.MultiRF[i]) {
			t.Errorf("multiRF %d differs:\nseq %+v\none %+v", i, *a.MultiRF[i], *b.MultiRF[i])
		}
	}
	for i := range a.PerfIssues {
		if !reflect.DeepEqual(*a.PerfIssues[i], *b.PerfIssues[i]) {
			t.Errorf("perf issue %d differs:\nseq %+v\none %+v", i, *a.PerfIssues[i], *b.PerfIssues[i])
		}
	}
	if a.Metrics == nil || b.Metrics == nil {
		t.Fatal("Observe run produced no metrics")
	}
	ac, bc := a.Metrics.Canonical(), b.Metrics.Canonical()
	if !reflect.DeepEqual(ac, bc) {
		t.Errorf("canonical metrics differ:\nseq %+v\none %+v", ac, bc)
	}
}
