package core

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jaaru/internal/obs"
)

// Parallel state-space exploration.
//
// Stateless model checking is embarrassingly parallel once every source of
// nondeterminism is captured in a replayable choice stack: any branch of
// the choice tree is fully identified by its prefix of recorded decisions,
// and two workers exploring disjoint prefixes never need to communicate
// mid-scenario. The driver here exploits that:
//
//   - A coordinator owns a frontier of unexplored branch prefixes
//     (serialized []choicePoint stacks). It starts with the root (empty)
//     prefix.
//   - N workers each own a private Checker — allocator, execution stack,
//     scheduler, trace ring, chooser — and repeatedly claim a prefix,
//     replay it, and run the subtree below it depth-first.
//   - Whenever the frontier runs low, a worker donates the shallowest
//     sibling options it has not yet visited as fresh prefixes
//     (work-stealing style), lowering its local exploration limit so the
//     donated subtrees are explored exactly once, by their claimant.
//   - Global caps (MaxScenarios, MaxBugs, StopAtFirstBug) are enforced
//     with a shared admission counter and a cooperative stop flag.
//
// Determinism: a claimed prefix replays exactly the decisions a serial
// exploration would have replayed to reach the same branch, so per-branch
// observables (bugs, recovery executions, newly discovered choice points,
// candidate-set sizes) are identical to the serial run; the merge is over
// order-insensitive aggregates (sums, maxima, keyed dedup with canonical
// representative selection) followed by a canonical sort. A full parallel
// exploration therefore produces the same Result as Workers=1, which is the
// reference semantics.

// branch is one frontier item: a fully specified prefix of choices. The
// claimant replays the prefix verbatim and owns the entire subtree beneath
// it (minus anything it later donates back).
type branch struct {
	points []choicePoint
}

// frontier is the shared queue of unexplored branches. pending counts
// branches that are queued or actively being explored; when it reaches zero
// the whole tree has been explored and every popper is released.
type frontier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	items   []branch
	pending int
	stopped bool
	lowMark int // queue length below which workers should donate work

	// reg receives frontier traffic counters and events (nil when the
	// exploration is not observed).
	reg *obs.Registry
}

func newFrontier(lowMark int, reg *obs.Registry) *frontier {
	f := &frontier{lowMark: lowMark, reg: reg}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// push publishes branches and accounts for them as pending work. Branches
// pushed after a stop are dropped: pop would never hand them out, and
// counting them as pending would leave the frontier unable to report the
// tree as drained (pending can otherwise never return to zero).
func (f *frontier) push(bs []branch) {
	if len(bs) == 0 {
		return
	}
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		return
	}
	f.items = append(f.items, bs...)
	f.pending += len(bs)
	depth := len(f.items)
	f.mu.Unlock()
	f.cond.Broadcast()
	f.reg.NotePush(len(bs), depth)
	f.reg.Emit("frontier_push", "n", len(bs), "depth", depth)
}

// pop claims a branch, blocking while the queue is empty but other workers
// still hold claims that may yet donate work. It returns false when
// exploration is over: the tree is exhausted or a stop was requested.
//
// Liveness audit (small trees at high worker counts): a blocked popper is
// woken by exactly three events — push (new work), finish reaching
// pending == 0 (tree drained), and stop. The worker holding the last
// unsplit branch either donates (push wakes the waiters) or retires the
// claim via finish; since finish broadcasts precisely when pending hits
// zero, the queue-empty/pending-positive wait can never outlive the last
// claim, regardless of how lowMark compares to the tree size. The low
// watermark only modulates donation eagerness: a 2-scenario tree under
// Workers=8 keeps seven workers parked until the single holder donates its
// one sibling or drains the tree (see TestParallelSmallTreeManyWorkers).
func (f *frontier) pop() (branch, bool) {
	f.mu.Lock()
	for {
		if f.stopped {
			f.mu.Unlock()
			return branch{}, false
		}
		if n := len(f.items); n > 0 {
			br := f.items[n-1]
			f.items = f.items[:n-1]
			f.mu.Unlock()
			f.reg.NoteClaim(n - 1)
			f.reg.Emit("frontier_claim", "prefix", len(br.points), "depth", n-1)
			return br, true
		}
		if f.pending == 0 {
			f.mu.Unlock()
			return branch{}, false
		}
		f.cond.Wait()
	}
}

// finish retires a claim whose subtree is fully explored (or abandoned).
func (f *frontier) finish() {
	f.mu.Lock()
	f.pending--
	done := f.pending == 0
	f.mu.Unlock()
	if done {
		f.cond.Broadcast()
	}
}

// hungry reports whether the queue has run low and a donation would help.
func (f *frontier) hungry() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return !f.stopped && len(f.items) < f.lowMark
}

// stop releases every popper; in-flight claims notice via sharedCaps.
func (f *frontier) stop() {
	f.mu.Lock()
	f.stopped = true
	f.mu.Unlock()
	f.cond.Broadcast()
}

// sharedCaps enforces the exploration caps globally across workers.
type sharedCaps struct {
	f            *frontier
	maxScenarios int64
	maxBugs      int
	stopAtFirst  bool

	scen    atomic.Int64 // scenarios admitted so far
	stopped atomic.Bool  // a cap fired: wind down cooperatively
	capHit  atomic.Bool  // some cap truncated the exploration

	mu   sync.Mutex
	keys map[string]struct{} // distinct bug keys across all workers
}

func newSharedCaps(o Options, f *frontier) *sharedCaps {
	return &sharedCaps{
		f:            f,
		maxScenarios: int64(o.MaxScenarios),
		maxBugs:      o.MaxBugs,
		stopAtFirst:  o.StopAtFirstBug,
		keys:         make(map[string]struct{}),
	}
}

// requestStop winds the exploration down: marks it truncated and releases
// all workers.
func (s *sharedCaps) requestStop() {
	s.capHit.Store(true)
	if s.stopped.CompareAndSwap(false, true) {
		s.f.stop()
	}
}

// admit reserves the right to run one more scenario. Mirroring the serial
// loop, the scenario that reaches MaxScenarios still runs, and the
// exploration stops after it.
func (s *sharedCaps) admit() bool {
	if s.stopped.Load() {
		return false
	}
	n := s.scen.Add(1)
	if n > s.maxScenarios {
		s.scen.Add(-1) // not run: keep the global count exact
		s.requestStop()
		return false
	}
	if n == s.maxScenarios {
		s.requestStop()
	}
	return true
}

// noteBug registers a distinct bug key and fires the bug caps. Dedup by
// canonical key happens before any cap accounting: two workers reporting
// the same bug in the same stop window contribute one entry to the MaxBugs
// count and fire StopAtFirstBug once, and the merged Result carries one
// report with summed Count (see TestSharedCapsConcurrentSameBug).
func (s *sharedCaps) noteBug(key string) {
	s.mu.Lock()
	if _, ok := s.keys[key]; !ok {
		s.keys[key] = struct{}{}
		if s.stopAtFirst || len(s.keys) >= s.maxBugs {
			s.mu.Unlock()
			s.requestStop()
			return
		}
	}
	s.mu.Unlock()
}

// runParallel is the Workers>1 exploration driver: partition the choice
// tree across worker checkers, then merge their stats deterministically.
func (c *Checker) runParallel() *Result {
	start := time.Now()
	nw := c.opts.Workers
	c.reg.SetWorkers(nw)
	f := newFrontier(2*nw, c.reg)
	caps := newSharedCaps(c.opts, f)
	f.push([]branch{{}}) // the root prefix: the whole tree

	workers := make([]*Checker, nw)
	var wg sync.WaitGroup
	for i := range workers {
		w := c.newWorker(i + 1)
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.workerLoop(f, caps)
		}()
	}
	wg.Wait()

	for _, w := range workers {
		w.foldChooserStats()
		c.stats.merge(&w.stats)
	}

	complete := !caps.capHit.Load()
	res := c.buildResult(start, complete)
	// MaxBugs is a cap on recorded bugs; concurrent discoveries can
	// overshoot before the stop lands, so trim after the canonical sort.
	if !c.opts.StopAtFirstBug && len(res.Bugs) > c.opts.MaxBugs {
		res.Bugs = res.Bugs[:c.opts.MaxBugs]
	}
	return res
}

// newWorker builds a private Checker sharing this checker's program and
// options (already normalized; withDefaults is idempotent, so New's
// re-normalization is a no-op — disabled features stay disabled). Workers
// do not build private registries: they record into fresh shards of the
// coordinator's registry, so the merged metrics cover the whole run.
func (c *Checker) newWorker(id int) *Checker {
	o := c.opts
	o.Observe = false
	o.EventTrace = nil
	w := New(c.prog, o)
	// Workers share the coordinator's fingerprint seen-set: a subtree
	// explored by one worker prunes equivalent crash states everywhere.
	w.porSeenSet = c.porSeenSet
	w.porFPHook = c.porFPHook
	if c.reg != nil {
		w.attachObs(c.reg, c.reg.NewShard(), id)
	}
	return w
}

// workerLoop claims branches until the tree is exhausted or a cap stops
// the exploration.
func (c *Checker) workerLoop(f *frontier, caps *sharedCaps) {
	for {
		br, ok := f.pop()
		if !ok {
			return
		}
		c.exploreBranch(br, f, caps)
		f.finish()
	}
}

// exploreBranch replays a claimed prefix and runs its subtree depth-first,
// donating sibling branches whenever the frontier runs low.
func (c *Checker) exploreBranch(br branch, f *frontier, caps *sharedCaps) {
	c.chooser.seed(br.points)
	for {
		if !caps.admit() {
			c.porAbandon()
			return
		}
		c.scenarios++
		prevBugs := len(c.bugs)
		if !c.runScenarioGuarded(br.points) {
			// Engine panic: the replayed subtree is unreliable —
			// abandon the claim (recordEngineBug marked us truncated).
			for _, b := range c.bugs[prevBugs:] {
				caps.noteBug(b.key())
			}
			return
		}
		for _, b := range c.bugs[prevBugs:] {
			caps.noteBug(b.key())
		}
		if caps.stopped.Load() {
			c.porAbandon()
			return
		}
		for f.hungry() {
			bs := c.chooser.splitOff()
			if len(bs) == 0 {
				break
			}
			// A record rooted at or above the donated point no longer covers
			// its whole subtree locally; its delta must not be published.
			c.porCancelBelow(len(bs[0].points))
			c.reg.NoteDonation(len(bs))
			f.push(bs)
		}
		if !c.chooser.advance() {
			c.porFlush()
			return
		}
	}
}

// runScenarioGuarded runs one scenario, converting internal engine panics
// into a reported BugEngine instead of crashing the exploration. Guest
// faults and crash signals are already handled inside runScenario; anything
// else (a genuine Go bug) still propagates.
func (c *Checker) runScenarioGuarded(prefix []choicePoint) (ok bool) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		e, isEngine := r.(engineError)
		if !isEngine {
			panic(r)
		}
		// The panic may have left the shared scenario stack mid-mutation;
		// disarm any in-flight fast-forward replay, discard any snapshots
		// referencing the stack so the next claim starts from a clean full
		// run, and void any open subtree records — their statistics are
		// unreliable.
		c.ffwd = ffwdState{}
		c.dropSnaps()
		c.porAbandon()
		c.recordEngineBug(e, prefix)
	}()
	c.runScenario()
	return true
}

// ---- Deterministic merge ---------------------------------------------------

// merge folds a retired worker's stats into the aggregate. Every operation
// is order-insensitive (sum, max, keyed union with canonical representative
// selection), so the merged outcome does not depend on worker arrival
// order; buildResult's canonical sorts finish the job.
func (dst *stats) merge(src *stats) {
	dst.scenarios += src.scenarios
	dst.execsPost += src.execsPost
	dst.totalSteps += src.totalSteps
	if src.fpointsPre > dst.fpointsPre {
		dst.fpointsPre = src.fpointsPre
	}
	if src.maxRF > dst.maxRF {
		dst.maxRF = src.maxRF
	}
	dst.truncated = dst.truncated || src.truncated
	for k, n := range src.newPoints {
		dst.newPoints[k] += n
	}
	for _, b := range src.bugs {
		dst.mergeBug(b)
	}
	for k, m := range src.multiRF {
		dst.mergeMultiRF(k, m)
	}
	for k, p := range src.perfIssues {
		if ex, ok := dst.perfIssues[k]; ok {
			ex.Count += p.Count
			// Canonical representative, the same rule recordPerfIssue
			// applies within one worker: the smallest affected line is the
			// reported example, independent of worker arrival order.
			if p.Line < ex.Line {
				ex.Line = p.Line
			}
		} else {
			dst.perfIssues[k] = p
		}
	}
}

// mergeBug unions a bug report into the aggregate: counts sum; of the
// reports sharing a key, the canonically smallest (by choice description,
// then execution index) becomes the representative, so the surviving
// Choices/replay/Trace do not depend on which worker reported first.
func (dst *stats) mergeBug(b *BugReport) {
	ex, ok := dst.bugIndex[b.key()]
	if !ok {
		dst.bugIndex[b.key()] = b
		dst.bugs = append(dst.bugs, b)
		return
	}
	total := ex.Count + b.Count
	if b.Choices < ex.Choices || (b.Choices == ex.Choices && b.Execution < ex.Execution) {
		*ex = *b
	}
	ex.Count = total
}

// mergeMultiRF unions a flagged load: counts sum, candidate maxima win, and
// the example values come from the representative with the larger candidate
// set (ties broken lexicographically, for a stable merge).
func (dst *stats) mergeMultiRF(key string, m *MultiRF) {
	ex, ok := dst.multiRF[key]
	if !ok {
		dst.multiRF[key] = m
		return
	}
	if m.Candidates > ex.Candidates ||
		(m.Candidates == ex.Candidates &&
			strings.Join(m.Values, ",") < strings.Join(ex.Values, ",")) {
		ex.Values = m.Values
		ex.Addr = m.Addr
	}
	if m.Candidates > ex.Candidates {
		ex.Candidates = m.Candidates
	}
	ex.Count += m.Count
}
