package core

import (
	"testing"

	"jaaru/internal/obs"
	"jaaru/internal/pmem"
)

// snapProgram is a small two-failure-point program with a recovery that
// reads the committed state — enough choice-tree structure for snapshots to
// capture, restore, and invalidate.
func snapProgram(o *obsSet) Program {
	return Program{
		Name: "snap-test",
		Run: func(c *Context) {
			root := c.Root()
			data := c.AllocLine(8)
			c.Store64(data, 7)
			c.Clflush(data, 8)
			c.StorePtr(root, data)
			c.Clflush(root, 8)
		},
		Recover: func(c *Context) {
			p := c.LoadPtr(c.Root())
			if p == 0 {
				o.add("empty")
				return
			}
			o.add("v=%d", c.Load64(p))
		},
	}
}

func TestSnapshotEligibilityGates(t *testing.T) {
	prog := snapProgram(&obsSet{})
	cases := []struct {
		name string
		opts Options
		want bool
	}{
		{"default", Options{}, true},
		{"disabled", Options{Snapshots: -1}, false},
		{"no failure injection", Options{MaxFailures: -1}, false},
		{"random scheduler", Options{RandomScheduler: true, Seed: 1}, false},
		{"random eviction", Options{Eviction: EvictRandom, Seed: 1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New(prog, tc.opts)
			if got := c.snapEligible(); got != tc.want {
				t.Errorf("snapEligible = %v, want %v", got, tc.want)
			}
		})
	}
	t.Run("no recovery", func(t *testing.T) {
		p := prog
		p.Recover = nil
		if New(p, Options{}).snapEligible() {
			t.Error("snapEligible without a Recover function")
		}
	})
}

func TestSnapshotRunUsesRestores(t *testing.T) {
	offObs, onObs := &obsSet{}, &obsSet{}
	off := New(snapProgram(offObs), Options{Snapshots: -1, Observe: true}).Run()
	on := New(snapProgram(onObs), Options{Observe: true}).Run()

	if off.Scenarios != on.Scenarios || off.Executions != on.Executions ||
		off.Steps != on.Steps || len(off.Bugs) != len(on.Bugs) {
		t.Errorf("results diverge: off %+v\non %+v", off, on)
	}
	if !sameStrings(offObs.set(), onObs.set()) {
		t.Errorf("observations diverge: off %v, on %v", offObs.set(), onObs.set())
	}
	if off.Metrics.Canonical() != on.Metrics.Canonical() {
		t.Errorf("canonical metrics diverge:\noff %+v\non  %+v",
			off.Metrics.Canonical(), on.Metrics.Canonical())
	}
	if on.Metrics.SnapshotRestores == 0 {
		t.Error("no scenario restored a snapshot")
	}
	if on.Metrics.SnapshotRestores >= int64(on.Scenarios) {
		t.Errorf("SnapshotRestores = %d out of %d scenarios: the first full run cannot restore",
			on.Metrics.SnapshotRestores, on.Scenarios)
	}
	if off.Metrics.SnapshotCaptures != 0 {
		t.Errorf("disabled engine captured %d snapshots", off.Metrics.SnapshotCaptures)
	}
}

// TestSnapshotStalePrefixPruned drives usableSnapshot directly: an entry
// whose recorded prefix the chooser has backtracked away from must be
// dropped, and a matching fail-decision entry selected.
func TestSnapshotStalePrefixPruned(t *testing.T) {
	c := New(snapProgram(&obsSet{}), Options{})
	c.snapActive = true
	c.stack = pmem.NewStack()
	c.stack.EnableJournal()
	mk := func(depth int, prefix ...int) *snapEntry {
		pts := make([]choicePoint, len(prefix))
		for i, v := range prefix {
			pts[i] = choicePoint{kind: chooseFail, n: 2, idx: v}
		}
		return &snapEntry{kind: fpSnap, depth: depth, prefix: pts,
			mark: c.stack.Mark()}
	}
	c.snaps = []*snapEntry{mk(0), mk(1, 0)}

	// Current scenario: fail at the first point — the depth-1 entry (whose
	// prefix says the first point continued) is stale, the depth-0 usable.
	c.chooser.points = []choicePoint{{kind: chooseFail, n: 2, idx: 1}}
	s := c.usableSnapshot()
	if s == nil || s.depth != 0 {
		t.Fatalf("usableSnapshot = %+v, want the depth-0 entry", s)
	}
	if len(c.snaps) != 1 {
		t.Errorf("stale entry not pruned: %d entries remain", len(c.snaps))
	}

	// A scenario whose prefix matches no fail decision restores nothing.
	c.snaps = []*snapEntry{mk(0)}
	c.chooser.points = []choicePoint{{kind: chooseFail, n: 2, idx: 0}}
	if s := c.usableSnapshot(); s != nil {
		t.Errorf("usableSnapshot = %+v for a continue decision, want nil", s)
	}
}

// TestSnapshotCaptureDepthGuard: re-passing a capture site at or below the
// top entry's depth (a restored prefix) must not duplicate the entry.
func TestSnapshotCaptureDepthGuard(t *testing.T) {
	c := New(snapProgram(&obsSet{}), Options{Observe: true})
	c.stack = pmem.NewStack()
	c.stack.EnableJournal()
	c.beginSnapScenario()
	if !c.snapActive {
		t.Fatal("engine inactive")
	}
	c.chooser.points = []choicePoint{
		{kind: chooseFail, n: 2, idx: 0},
		{kind: chooseFail, n: 2, idx: 0},
		{kind: chooseFail, n: 2, idx: 0},
	}
	c.chooser.cursor = 2
	c.captureSnap(fpSnap)
	c.captureSnap(fpSnap) // same cursor: must dedup
	if len(c.snaps) != 1 {
		t.Fatalf("duplicate capture: %d entries", len(c.snaps))
	}
	c.chooser.cursor = 1
	c.captureSnap(fpSnap) // shallower: a replayed prefix site
	if len(c.snaps) != 1 {
		t.Fatalf("shallow re-capture accepted: %d entries", len(c.snaps))
	}
	c.chooser.cursor = 3
	c.captureSnap(endSnap)
	if len(c.snaps) != 2 {
		t.Fatalf("deeper capture rejected: %d entries", len(c.snaps))
	}
	if got := c.col.Counters()[obs.SnapshotCaptures]; got != 2 {
		t.Errorf("SnapshotCaptures = %d, want 2", got)
	}
}

// TestChoiceSnapshotPushPopAllocs is the hot-path allocation gate: once the
// entry pool and the chooser's slices are warm, a full choice-snapshot
// push (captureChoiceSnap) plus the stale-prefix pop back into the pool
// (usableSnapshot) must not allocate.
func TestChoiceSnapshotPushPopAllocs(t *testing.T) {
	c := New(snapProgram(&obsSet{}), Options{})
	c.stack = pmem.NewStack()
	c.stack.EnableJournal()
	c.stack.Push() // post-failure execution: Top().ID == 1
	c.snapActive = true
	c.chsnapActive = true
	c.segLogs = append(c.segLogs[:0], nil)
	pts := []choicePoint{
		{kind: chooseFail, n: 2, idx: 1},
		{kind: chooseReadFrom, n: 3, idx: 0},
	}
	cycle := func() {
		c.chooser.points = append(c.chooser.points[:0], pts...)
		c.chooser.cursor = 2
		c.captureChoiceSnap()
		if len(c.snaps) != 1 {
			t.Fatalf("capture did not push: %d entries", len(c.snaps))
		}
		// Backtrack away from the captured prefix: the deepest recorded
		// decision flips, the entry goes stale, and the scan pools it.
		c.chooser.points[1].idx = 1
		c.chooser.stable = 1
		if s := c.usableSnapshot(); s != nil {
			t.Fatalf("stale entry survived as %+v", s)
		}
		if len(c.snaps) != 0 {
			t.Fatalf("pop left %d entries", len(c.snaps))
		}
	}
	cycle() // warm the pool and every reused slice
	if allocs := testing.AllocsPerRun(50, cycle); allocs != 0 {
		t.Errorf("warmed choice-snapshot push/pop allocates %.1f times per cycle, want 0", allocs)
	}
}

// TestChoiceSnapExciseBelow: when porPruneSweep clamps point i, every stack
// entry whose prefix took the now-excised branch at i must be dropped, while
// entries on the surviving branch (or too shallow to cover i) stay cached.
func TestChoiceSnapExciseBelow(t *testing.T) {
	c := New(snapProgram(&obsSet{}), Options{})
	c.stack = pmem.NewStack()
	c.stack.EnableJournal()
	mk := func(depth int, idxAt1 int) *snapEntry {
		pts := []choicePoint{
			{kind: chooseFail, n: 2, idx: 1},
			{kind: chooseFail, n: 2, idx: idxAt1},
			{kind: chooseReadFrom, n: 2, idx: 0},
		}
		return &snapEntry{kind: choiceSnap, depth: depth, prefix: pts[:depth],
			mark: c.stack.Mark()}
	}
	c.chooser.points = []choicePoint{
		{kind: chooseFail, n: 2, idx: 1},
		{kind: chooseFail, n: 2, idx: 0}, // live path: point 1 not taken
		{kind: chooseReadFrom, n: 2, idx: 0},
	}
	// Shallow entry (does not cover point 1), covered entry on the live
	// branch, and a deeper entry whose prefix took the excised branch.
	c.snaps = []*snapEntry{mk(1, 0), mk(2, 0), mk(3, 1)}
	c.chsnapExciseBelow(1)
	if len(c.snaps) != 2 {
		t.Fatalf("excision kept %d entries, want 2", len(c.snaps))
	}
	for _, s := range c.snaps {
		if s.depth > 1 && s.prefix[1].idx != 0 {
			t.Errorf("entry at depth %d still hangs off the excised branch", s.depth)
		}
	}
}
