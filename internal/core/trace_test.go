package core

import (
	"testing"

	"jaaru/internal/pmem"
)

func traceOpN(n int) TraceOp {
	return TraceOp{Thread: 0, Kind: "store", Addr: pmem.Addr(n), Size: 8, Val: uint64(n)}
}

// Capacity 1 is the degenerate ring: it always holds exactly the last op.
func TestTraceRingCapacityOne(t *testing.T) {
	r := newTraceRing(1)
	if got := r.snapshot(); len(got) != 0 {
		t.Fatalf("empty ring snapshot = %v", got)
	}
	r.add(traceOpN(1))
	if got := r.snapshot(); len(got) != 1 || got[0] != traceOpN(1) {
		t.Fatalf("snapshot = %v, want [op1]", got)
	}
	r.add(traceOpN(2))
	if got := r.snapshot(); len(got) != 1 || got[0] != traceOpN(2) {
		t.Fatalf("snapshot after wrap = %v, want [op2]", got)
	}
}

// Exactly filling the ring is the wrap boundary: full must flip, and the
// snapshot must stay oldest-first through the next overwrite.
func TestTraceRingExactWrapBoundary(t *testing.T) {
	const cap = 4
	r := newTraceRing(cap)
	for i := 1; i <= cap; i++ {
		r.add(traceOpN(i))
	}
	got := r.snapshot()
	if len(got) != cap {
		t.Fatalf("snapshot length = %d, want %d", len(got), cap)
	}
	for i := range got {
		if got[i] != traceOpN(i+1) {
			t.Fatalf("snapshot[%d] = %v, want op%d (oldest-first)", i, got[i], i+1)
		}
	}
	// One more op overwrites the oldest.
	r.add(traceOpN(cap + 1))
	got = r.snapshot()
	if len(got) != cap {
		t.Fatalf("post-wrap snapshot length = %d, want %d", len(got), cap)
	}
	for i := range got {
		if got[i] != traceOpN(i+2) {
			t.Fatalf("post-wrap snapshot[%d] = %v, want op%d", i, got[i], i+2)
		}
	}
}

// reset starts a fresh scenario: stale entries from previous fills must
// never leak into a later, shorter snapshot — across several reset cycles
// with different fill levels.
func TestTraceRingSnapshotAfterResets(t *testing.T) {
	r := newTraceRing(3)
	for cycle, fill := range []int{5, 2, 3, 1, 0} {
		r.reset()
		for i := 1; i <= fill; i++ {
			r.add(traceOpN(100*cycle + i))
		}
		got := r.snapshot()
		wantLen := min(fill, 3)
		if len(got) != wantLen {
			t.Fatalf("cycle %d (fill %d): snapshot length = %d, want %d",
				cycle, fill, len(got), wantLen)
		}
		for i, op := range got {
			want := traceOpN(100*cycle + fill - wantLen + i + 1)
			if op != want {
				t.Fatalf("cycle %d: snapshot[%d] = %v, want %v", cycle, i, op, want)
			}
		}
	}
}

// snapshot must be a copy: later ring activity cannot mutate an already
// captured bug trace.
func TestTraceRingSnapshotIsCopy(t *testing.T) {
	r := newTraceRing(2)
	r.add(traceOpN(1))
	got := r.snapshot()
	r.add(traceOpN(2))
	r.add(traceOpN(3))
	if len(got) != 1 || got[0] != traceOpN(1) {
		t.Fatalf("captured snapshot mutated by later adds: %v", got)
	}
}
