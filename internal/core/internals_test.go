package core

import (
	"strings"
	"testing"
	"testing/quick"

	"jaaru/internal/pmem"
)

// ---- chooser ----------------------------------------------------------------

func TestChooserEnumeratesFullTree(t *testing.T) {
	// A chooser over a fixed shape (2 × 3 options) must enumerate exactly
	// the 6 leaves, depth-first, never repeating.
	ch := &chooser{}
	seen := make(map[[2]int]bool)
	for {
		ch.begin()
		a := ch.choose(chooseFail, 2)
		b := ch.choose(chooseReadFrom, 3)
		key := [2]int{a, b}
		if seen[key] {
			t.Fatalf("repeated combination %v", key)
		}
		seen[key] = true
		if !ch.advance() {
			break
		}
	}
	if len(seen) != 6 {
		t.Fatalf("enumerated %d combinations, want 6", len(seen))
	}
}

func TestChooserVariableShape(t *testing.T) {
	// The second choice exists only on one branch of the first — the
	// chooser must handle branch-dependent shapes.
	ch := &chooser{}
	var paths []string
	for {
		ch.begin()
		path := ""
		if ch.choose(chooseFail, 2) == 1 {
			path = "fail"
			switch ch.choose(chooseReadFrom, 2) {
			case 0:
				path += "-rf0"
			case 1:
				path += "-rf1"
			}
		} else {
			path = "continue"
		}
		paths = append(paths, path)
		if !ch.advance() {
			break
		}
	}
	want := "continue,fail-rf0,fail-rf1"
	if got := strings.Join(paths, ","); got != want {
		t.Fatalf("paths = %s, want %s", got, want)
	}
}

func TestChooserReplayMismatchPanics(t *testing.T) {
	ch := &chooser{}
	ch.begin()
	ch.choose(chooseFail, 2)
	ch.advance()
	ch.begin()
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("mismatched replay did not panic")
		}
	}()
	ch.choose(chooseReadFrom, 2) // kind differs from the recorded point
}

func TestChooserDescribe(t *testing.T) {
	ch := &chooser{points: []choicePoint{
		{kind: chooseFail, n: 2, idx: 0},
		{kind: chooseFail, n: 2, idx: 1},
		{kind: chooseReadFrom, n: 4, idx: 2},
	}}
	got := ch.describe()
	if !strings.Contains(got, "fail@1") || !strings.Contains(got, "rf[2/4]") {
		t.Errorf("describe() = %q", got)
	}
}

func TestChooserEnumerationCountProperty(t *testing.T) {
	// For any shape (sequence of option counts), the chooser visits the
	// product of the counts exactly once.
	f := func(shape []uint8) bool {
		if len(shape) > 6 {
			shape = shape[:6]
		}
		want := 1
		counts := make([]int, len(shape))
		for i, s := range shape {
			counts[i] = int(s%3) + 1
			want *= counts[i]
		}
		ch := &chooser{}
		visited := 0
		for {
			ch.begin()
			for _, n := range counts {
				ch.choose(chooseReadFrom, n)
			}
			visited++
			if !ch.advance() {
				break
			}
		}
		return visited == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// ---- trace ring ---------------------------------------------------------------

func TestTraceRing(t *testing.T) {
	r := newTraceRing(3)
	if got := r.snapshot(); len(got) != 0 {
		t.Fatalf("fresh ring snapshot = %v", got)
	}
	r.add(TraceOp{Kind: "a"})
	r.add(TraceOp{Kind: "b"})
	if got := r.snapshot(); len(got) != 2 || got[0].Kind != "a" {
		t.Fatalf("partial ring = %v", got)
	}
	r.add(TraceOp{Kind: "c"})
	r.add(TraceOp{Kind: "d"}) // evicts "a"
	got := r.snapshot()
	if len(got) != 3 || got[0].Kind != "b" || got[2].Kind != "d" {
		t.Fatalf("wrapped ring = %v", got)
	}
	r.reset()
	if got := r.snapshot(); len(got) != 0 {
		t.Fatalf("reset ring = %v", got)
	}
}

func TestTraceOpString(t *testing.T) {
	cases := []struct {
		op   TraceOp
		want string
	}{
		{TraceOp{Thread: 0, Kind: "sfence"}, "T0 sfence"},
		{TraceOp{Thread: 1, Kind: "clflush", Addr: 0x40}, "T1 clflush 0x40"},
		{TraceOp{Thread: 2, Kind: "store", Addr: 0x10, Size: 8, Val: 7}, "T2 store 0x10/8 = 0x7"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

// ---- snapshots (Yat instrumentation) -------------------------------------------

func TestSnapshotCutsAndBytes(t *testing.T) {
	s := &Snapshot{
		Queues: map[pmem.Addr][]pmem.ByteStore{
			0x1000: {{Val: 1, Seq: 1}, {Val: 2, Seq: 5}},
			0x1001: {{Val: 9, Seq: 3}},
			0x2000: {{Val: 4, Seq: 2}},
		},
		Begins: map[pmem.Addr]pmem.Seq{0x2000: 7},
	}
	dirty := s.DirtyLines()
	if len(dirty) != 1 || dirty[0] != 0x1000 {
		t.Fatalf("DirtyLines = %v (line 0x2000 is flushed past its store)", dirty)
	}
	cuts := s.Cuts(0x1000)
	if len(cuts) != 4 || cuts[0] != 0 || cuts[1] != 1 || cuts[2] != 3 || cuts[3] != 5 {
		t.Fatalf("Cuts = %v", cuts)
	}
	if v := s.ByteAt(0x1000, 0); v != 0 {
		t.Errorf("ByteAt(cut 0) = %d", v)
	}
	if v := s.ByteAt(0x1000, 1); v != 1 {
		t.Errorf("ByteAt(cut 1) = %d", v)
	}
	if v := s.ByteAt(0x1000, pmem.SeqInf); v != 2 {
		t.Errorf("ByteAt(∞) = %d", v)
	}
	if v := s.ByteAt(0x1001, 2); v != 0 {
		t.Errorf("ByteAt(0x1001, 2) = %d", v)
	}
}

func TestInstrumentFiresPerFailurePoint(t *testing.T) {
	prog := Program{
		Name: "instrument",
		Run: func(c *Context) {
			r := c.Root()
			c.Store64(r, 1)
			c.Clflush(r, 8)
			c.Store64(r.Add(64), 2)
			c.Clflush(r.Add(64), 8)
		},
		Recover: func(c *Context) {},
	}
	var fps []int
	ck := New(prog, Options{MaxScenarios: 1})
	ck.Instrument(func(s *Snapshot) { fps = append(fps, s.FP) })
	ck.Run()
	// Two pre-flush points plus the end (-1).
	if len(fps) != 3 || fps[0] != 0 || fps[1] != 1 || fps[2] != -1 {
		t.Fatalf("snapshot points = %v", fps)
	}
}

// ---- guest locations ------------------------------------------------------------

func TestGuestLocationFindsTestFrame(t *testing.T) {
	res := Execute("loc", func(c *Context) {
		c.Bug("marker")
	}, Options{})
	if !res.Buggy() || !strings.Contains(res.Bugs[0].Message, "internals_test.go") {
		t.Fatalf("bug message lacks guest location: %v", res.Bugs)
	}
}

// ---- Result helpers ---------------------------------------------------------------

func TestResultBugTypeStrings(t *testing.T) {
	for _, bt := range []BugType{BugAssertion, BugIllegalAccess, BugInfiniteLoop, BugExplicit} {
		if bt.String() == "" || strings.HasPrefix(bt.String(), "BugType(") {
			t.Errorf("BugType %d has no name", bt)
		}
	}
	if !strings.HasPrefix(BugType(42).String(), "BugType(") {
		t.Error("unknown BugType should fall back to numeric form")
	}
	b := &BugReport{Type: BugAssertion, Message: "m", Execution: 1, Scenario: 2, Count: 3}
	if s := b.String(); !strings.Contains(s, "assertion failure") || !strings.Contains(s, "3×") {
		t.Errorf("BugReport.String() = %q", s)
	}
	m := &MultiRF{Loc: "f.go:1", Addr: 0x40, Candidates: 2, Values: []string{"a", "b"}, Count: 5}
	if s := m.String(); !strings.Contains(s, "f.go:1") || !strings.Contains(s, "2 stores") {
		t.Errorf("MultiRF.String() = %q", s)
	}
}

// ---- MaxScenarios / MaxBugs caps ---------------------------------------------------

func TestMaxScenariosCap(t *testing.T) {
	prog := Program{
		Name: "cap",
		Run: func(c *Context) {
			r := c.Root()
			for i := uint64(0); i < 20; i++ {
				c.Store64(r.Add(i*64), i+1)
				c.Clflush(r.Add(i*64), 8)
			}
		},
		Recover: func(c *Context) {},
	}
	res := New(prog, Options{MaxScenarios: 5}).Run()
	if res.Scenarios != 5 {
		t.Errorf("Scenarios = %d, want the cap 5", res.Scenarios)
	}
	if res.Complete {
		t.Error("capped exploration reported complete")
	}
}

func TestMaxBugsCap(t *testing.T) {
	n := 0
	prog := Program{
		Name: "many-bugs",
		Run: func(c *Context) {
			r := c.Root()
			for i := uint64(0); i < 10; i++ {
				c.Store64(r.Add(i*64), i+1)
				c.Clflush(r.Add(i*64), 8)
			}
		},
		Recover: func(c *Context) {
			n++
			c.Bug("distinct bug number %d", n) // unique message each scenario
		},
	}
	res := New(prog, Options{MaxBugs: 3}).Run()
	if len(res.Bugs) != 3 {
		t.Errorf("Bugs = %d, want the cap 3", len(res.Bugs))
	}
	if res.Complete {
		t.Error("capped exploration reported complete")
	}
}

func TestExplorationStatistics(t *testing.T) {
	prog := Program{
		Name: "stats",
		Run: func(c *Context) {
			r := c.Root()
			c.Store64(r, 1)
			c.Store64(r, 2)
			c.Store64(r, 3)
			c.Clflush(r, 8) // one mid-run failure decision
		},
		Recover: func(c *Context) {
			_ = c.Load64(c.Root())
		},
	}
	res := New(prog, Options{}).Run()
	if res.Buggy() {
		t.Fatalf("bugs: %v", res.Bugs)
	}
	if res.FailDecisionPoints != 1 {
		t.Errorf("FailDecisionPoints = %d, want 1", res.FailDecisionPoints)
	}
	if res.RFChoicePoints == 0 {
		t.Error("RFChoicePoints = 0; the pre-flush failure branch has choices")
	}
	// Failing before the clflush, the load of r sees {3, 2, 1, initial}.
	if res.MaxRFCandidates != 4 {
		t.Errorf("MaxRFCandidates = %d, want 4", res.MaxRFCandidates)
	}
}
