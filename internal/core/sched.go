package core

import (
	"math/rand"
	"sync"

	"jaaru/internal/obs"
	"jaaru/internal/tso"
)

// thread is one guest thread. Thread 0 runs on the engine goroutine; spawned
// threads run on their own goroutines, but the turn-taking scheduler ensures
// exactly one guest thread executes at any moment, so all checker state is
// accessed with mutual exclusion (turn handoffs synchronize via the
// scheduler's mutex and condition variable).
type thread struct {
	id     int
	ts     *tso.ThreadState
	done   bool
	joinOn *thread // non-nil while blocked in Join
	parked bool    // a goroutine is waiting for this thread's turn
}

// scheduler interleaves guest threads deterministically: round-robin, one
// operation per turn. Jaaru controls the concurrent schedule but does not
// exhaustively explore schedules (§4, Discussion).
type scheduler struct {
	mu         sync.Mutex
	cond       *sync.Cond
	threads    []*thread
	cur        int        // id of the thread whose turn it is
	childAlive int        // spawned goroutines still running
	rng        *rand.Rand // nil = round-robin; else seeded random schedule
	crashed    bool
	fault      *guestFault // first guest fault raised on a child thread
	unexpected any         // non-guest panic from a child (propagated)

	// col is the owning checker's observability shard, handed to every
	// thread's store-buffer state (nil when disabled).
	col *obs.Collector
	// probe is the forensics transition probe, likewise handed to every
	// thread's store-buffer state (nil outside witness replays).
	probe *tso.Probe

	// main is the reused main thread: every execution segment starts with
	// thread 0 alone, so its thread struct and store-buffer state persist
	// across resets (mainCap guards against a capacity change).
	main    *thread
	mainCap int
}

func newScheduler() *scheduler {
	s := &scheduler{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// reset prepares the scheduler for a fresh execution with a single main
// thread using the given store-buffer capacity. A non-nil rng selects the
// seeded random schedule (used to fuzz for concurrency bugs, §4
// Discussion); nil selects deterministic round-robin. It must not be
// called while child goroutines are alive.
func (s *scheduler) reset(sbCapacity int, rng *rand.Rand) *thread {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.childAlive != 0 {
		panic(engineError{"scheduler reset with live child threads"})
	}
	main := s.main
	if main == nil || s.mainCap != sbCapacity {
		main = &thread{id: 0, ts: tso.NewThreadState(sbCapacity)}
		s.main, s.mainCap = main, sbCapacity
	} else {
		main.ts.Reset()
		main.done = false
		main.joinOn = nil
		main.parked = false
	}
	main.ts.SetObserver(s.col)
	main.ts.SetProbe(s.probe)
	for i := range s.threads {
		s.threads[i] = nil
	}
	s.threads = append(s.threads[:0], main)
	s.cur = 0
	s.rng = rng
	s.crashed = false
	s.fault = nil
	s.unexpected = nil
	return main
}

// runnable reports whether t can be given a turn.
func runnable(t *thread) bool {
	return !t.done && (t.joinOn == nil || t.joinOn.done)
}

// nextRunnable returns the id of the next runnable thread strictly after
// `after` in round-robin order (wrapping), or -1 if none.
func (s *scheduler) nextRunnable(after int) int {
	n := len(s.threads)
	for i := 1; i <= n; i++ {
		t := s.threads[(after+i)%n]
		if runnable(t) {
			return t.id
		}
	}
	return -1
}

// checkCrash panics with crashSignal if a failure has been initiated.
// Callers hold s.mu; the panic unwinds through their deferred unlock.
func (s *scheduler) checkCrash() {
	if s.crashed {
		panic(crashSignal{})
	}
}

// yield hands the turn to the next runnable thread and blocks until it is
// t's turn again (or a crash unwinds it). With a single thread it is a crash
// check only.
func (s *scheduler) yield(t *thread) {
	// Fast path: with a single thread there is no turn to hand over. The
	// unlocked reads are safe for the same reason as in Context.op — the
	// thread list is only ever appended to by the running thread (Spawn),
	// which with one thread is this goroutine, and every writer of crashed
	// is either this goroutine (maybeFail) or a child-thread trampoline,
	// which does not exist while the list has one entry.
	if len(s.threads) == 1 {
		if s.crashed {
			panic(crashSignal{})
		}
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.checkCrash()
	if len(s.threads) == 1 {
		return
	}
	var next int
	if s.rng != nil {
		next = s.pickRandom()
	} else {
		next = s.nextRunnable(t.id)
	}
	if next == t.id || next == -1 {
		return
	}
	s.cur = next
	s.cond.Broadcast()
	s.park(t)
	for s.cur != t.id {
		s.cond.Wait()
		s.checkCrash()
	}
	t.parked = false
}

// park marks t as waiting for its turn, diagnosing the guest error of
// sharing one Context across Spawned threads (two goroutines waiting for
// the same thread identity would otherwise deadlock the turn handoff).
func (s *scheduler) park(t *thread) {
	if t.parked {
		panic(guestFault{typ: BugExplicit,
			msg: "Context shared across guest threads: rebind data structure handles per thread"})
	}
	t.parked = true
}

// waitTurn blocks a freshly spawned thread until its first turn.
func (s *scheduler) waitTurn(t *thread) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.park(t)
	for s.cur != t.id {
		s.cond.Wait()
		s.checkCrash()
	}
	t.parked = false
}

// pickRandom returns a uniformly random runnable thread id (the current
// thread included, giving it bursts), or -1 if none.
func (s *scheduler) pickRandom() int {
	var runnableIDs []int
	for _, t := range s.threads {
		if runnable(t) {
			runnableIDs = append(runnableIDs, t.id)
		}
	}
	if len(runnableIDs) == 0 {
		return -1
	}
	return runnableIDs[s.rng.Intn(len(runnableIDs))]
}

// spawn registers a new guest thread and returns it. The caller launches the
// trampoline goroutine.
func (s *scheduler) spawn(sbCapacity int) *thread {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := &thread{id: len(s.threads), ts: tso.NewThreadState(sbCapacity)}
	t.ts.SetObserver(s.col)
	t.ts.SetProbe(s.probe)
	s.threads = append(s.threads, t)
	s.childAlive++
	return t
}

// finish marks t done and hands the turn onward. Called by the trampoline
// while holding the turn.
func (s *scheduler) finish(t *thread) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t.done = true
	if next := s.nextRunnable(t.id); next != -1 {
		s.cur = next
	}
	s.cond.Broadcast()
}

// childExited decrements the live-goroutine count (trampoline teardown,
// whether by normal finish, crash, or fault).
func (s *scheduler) childExited() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.childAlive--
	s.cond.Broadcast()
}

// join blocks t until target completes.
func (s *scheduler) join(t, target *thread) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t == target {
		panic(guestFault{typ: BugExplicit, msg: "thread joined itself"})
	}
	for !target.done {
		s.checkCrash()
		t.joinOn = target
		next := s.nextRunnable(t.id)
		if next == -1 || next == t.id {
			t.joinOn = nil
			panic(guestFault{typ: BugExplicit, msg: "deadlock: all threads blocked in Join"})
		}
		s.cur = next
		s.cond.Broadcast()
		s.park(t)
		for s.cur != t.id {
			s.cond.Wait()
			s.checkCrash()
		}
		t.parked = false
		t.joinOn = nil
	}
}

// initiateCrash marks the scenario as crashed and wakes all threads so they
// unwind with crashSignal. Safe to call multiple times.
func (s *scheduler) initiateCrash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crashed = true
	s.cond.Broadcast()
}

// recordFault stores the first guest fault raised by a child thread and
// initiates a crash so every other thread unwinds.
func (s *scheduler) recordFault(f guestFault) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fault == nil {
		s.fault = &f
	}
	s.crashed = true
	s.cond.Broadcast()
}

// recordUnexpected stores a non-guest panic from a child thread; the engine
// re-panics it after teardown.
func (s *scheduler) recordUnexpected(r any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.unexpected == nil {
		s.unexpected = r
	}
	s.crashed = true
	s.cond.Broadcast()
}

// shutdown initiates a crash (if one is not already in progress) and waits
// until every child goroutine has exited, then returns any fault or
// unexpected panic recorded by children.
func (s *scheduler) shutdown() (*guestFault, any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crashed = true
	s.cond.Broadcast()
	for s.childAlive > 0 {
		s.cond.Wait()
	}
	return s.fault, s.unexpected
}
