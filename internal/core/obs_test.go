package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// Without Observe/EventTrace the layer must stay entirely off.
func TestMetricsNilWhenDisabled(t *testing.T) {
	c := New(parallelTreeProgram(), Options{})
	if c.Observability() != nil {
		t.Fatal("registry created without Observe")
	}
	if res := c.Run(); res.Metrics != nil {
		t.Fatalf("Result.Metrics = %+v, want nil", res.Metrics)
	}
}

// The observability counters must agree exactly with the Result fields the
// checker already maintains — the two are accumulated independently.
func TestMetricsMatchResultCounters(t *testing.T) {
	res := New(parallelTreeProgram(), Options{Observe: true}).Run()
	m := res.Metrics
	if m == nil {
		t.Fatal("Result.Metrics nil with Observe set")
	}
	if m.Scenarios != int64(res.Scenarios) {
		t.Errorf("Metrics.Scenarios = %d, Result.Scenarios = %d", m.Scenarios, res.Scenarios)
	}
	if m.Executions != int64(res.Executions) || m.ExecutionsPost != int64(res.Executions-1) {
		t.Errorf("Metrics executions = %d/%d, Result.Executions = %d",
			m.Executions, m.ExecutionsPost, res.Executions)
	}
	if m.Steps != res.Steps {
		t.Errorf("Metrics.Steps = %d, Result.Steps = %d", m.Steps, res.Steps)
	}
	if m.MaxRFCandidates != int64(res.MaxRFCandidates) {
		t.Errorf("Metrics.MaxRFCandidates = %d, Result.MaxRFCandidates = %d",
			m.MaxRFCandidates, res.MaxRFCandidates)
	}
	// Fresh choice points = the distinct points Result counts, by kind.
	if m.ChoicesFresh != int64(res.RFChoicePoints+res.FailDecisionPoints) {
		t.Errorf("Metrics.ChoicesFresh = %d, Result points = %d+%d",
			m.ChoicesFresh, res.RFChoicePoints, res.FailDecisionPoints)
	}
	// Sanity on counters with no Result twin.
	if m.LoadRefinements == 0 || m.RFCandidates < m.LoadRefinements {
		t.Errorf("load refinement counters implausible: %+v", m)
	}
	if m.PreFailureNs <= 0 || m.PostFailureNs <= 0 {
		t.Errorf("phase timings missing: pre=%d post=%d", m.PreFailureNs, m.PostFailureNs)
	}
	if m.ReplayNs != 0 {
		t.Errorf("ReplayNs = %d without any replay", m.ReplayNs)
	}
	if m.MaxChoiceDepth == 0 || m.SBEvictions == 0 || m.MaxSBOccupancy == 0 {
		t.Errorf("choice/buffer counters missing: %+v", m)
	}
}

// The canonical counter subset must be bit-identical between a full serial
// exploration and a full parallel one — partition independence is the same
// property the Result equivalence suite asserts, extended to the new layer.
func TestMetricsSerialParallelEquivalence(t *testing.T) {
	serial := New(parallelTreeProgram(), Options{Observe: true}).Run()
	for _, workers := range []int{2, 4} {
		par := New(parallelTreeProgram(), Options{Workers: workers, Observe: true}).Run()
		if par.Metrics == nil {
			t.Fatalf("workers=%d: no metrics", workers)
		}
		if got, want := par.Metrics.Canonical(), serial.Metrics.Canonical(); got != want {
			t.Errorf("workers=%d: canonical metrics diverge\nserial:   %+v\nparallel: %+v",
				workers, want, got)
		}
		if par.Metrics.Workers != int64(workers) {
			t.Errorf("workers=%d: Metrics.Workers = %d", workers, par.Metrics.Workers)
		}
		if par.Metrics.FrontierClaimed == 0 || par.Metrics.FrontierPushed == 0 {
			t.Errorf("workers=%d: frontier counters empty: %+v", workers, par.Metrics)
		}
	}
}

// The JSONL event stream: every line parses, the envelope is ordered
// run_start..run_end, and scenario events agree with the Result.
func TestEventTraceJSONL(t *testing.T) {
	var buf bytes.Buffer
	res := New(parallelTreeProgram(), Options{EventTrace: &buf}).Run()
	if res.Metrics == nil {
		t.Fatal("EventTrace alone must imply metrics collection")
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("only %d events emitted", len(lines))
	}
	type event struct {
		Ev       string `json:"ev"`
		Scenario *int   `json:"scenario"`
	}
	var evs []event
	for i, ln := range lines {
		var e event
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, ln)
		}
		evs = append(evs, e)
	}
	if evs[0].Ev != "run_start" || evs[len(evs)-1].Ev != "run_end" {
		t.Fatalf("envelope = %q..%q, want run_start..run_end", evs[0].Ev, evs[len(evs)-1].Ev)
	}
	starts, ends := 0, 0
	for _, e := range evs {
		switch e.Ev {
		case "scenario_start":
			starts++
		case "scenario_end":
			ends++
		}
	}
	if starts != res.Scenarios || ends != res.Scenarios {
		t.Errorf("scenario events = %d starts / %d ends, Result.Scenarios = %d",
			starts, ends, res.Scenarios)
	}
	if res.Metrics.Events != int64(len(evs)) {
		t.Errorf("Metrics.Events = %d, stream has %d", res.Metrics.Events, len(evs))
	}
}

// Under Workers>1 the registry serializes event writes, so a plain buffer
// sink must be safe, and bug events must appear for a buggy program.
func TestEventTraceParallel(t *testing.T) {
	var buf bytes.Buffer
	res := New(buggyReplayProgram(), Options{Workers: 4, EventTrace: &buf}).Run()
	if !res.Buggy() {
		t.Fatal("no bug found")
	}
	out := buf.String()
	for _, want := range []string{`"ev":"run_start"`, `"ev":"frontier_claim"`,
		`"ev":"bug"`, `"ev":"run_end"`} {
		if !strings.Contains(out, want) {
			t.Errorf("event stream missing %s", want)
		}
	}
}

// Result accounting under parallel runs (satellite check): the admission
// counter and the independently accumulated metrics must agree exactly —
// no double count from the merge, no drift from cooperative stops.
func TestParallelResultAccounting(t *testing.T) {
	// Full run: duplicate-free admission.
	res := New(parallelTreeProgram(), Options{Workers: 4, Observe: true}).Run()
	if res.Metrics.Scenarios != int64(res.Scenarios) {
		t.Errorf("full: Metrics.Scenarios = %d, Result.Scenarios = %d",
			res.Metrics.Scenarios, res.Scenarios)
	}
	if res.Metrics.Steps != res.Steps {
		t.Errorf("full: Metrics.Steps = %d, Result.Steps = %d", res.Metrics.Steps, res.Steps)
	}
	if res.Duration <= 0 {
		t.Errorf("full: Duration = %v", res.Duration)
	}

	// MaxScenarios cap: admissions stop exactly at the cap.
	capped := New(parallelTreeProgram(), Options{Workers: 4, MaxScenarios: 5, Observe: true}).Run()
	if capped.Scenarios != 5 || capped.Metrics.Scenarios != 5 {
		t.Errorf("capped: Result=%d Metrics=%d, want 5", capped.Scenarios, capped.Metrics.Scenarios)
	}

	// Cooperative StopAtFirstBug: every admitted scenario ran and was
	// counted exactly once, even though workers wind down mid-flight.
	stop := New(Program{
		Name: "stop-accounting",
		Run: func(c *Context) {
			r := c.Root()
			for i := uint64(0); i < 12; i++ {
				c.Store64(r.Add(i*64), i+1)
				c.Clflush(r.Add(i*64), 8)
			}
		},
		Recover: func(c *Context) {
			if c.Load64(c.Root()) == 0 {
				c.Bug("first line unpersisted")
			}
		},
	}, Options{Workers: 4, StopAtFirstBug: true, Observe: true}).Run()
	if !stop.Buggy() {
		t.Fatal("no bug found")
	}
	if stop.Metrics.Scenarios != int64(stop.Scenarios) {
		t.Errorf("stop: Metrics.Scenarios = %d, Result.Scenarios = %d",
			stop.Metrics.Scenarios, stop.Scenarios)
	}
	if stop.Metrics.Executions != int64(stop.Executions) {
		t.Errorf("stop: Metrics.Executions = %d, Result.Executions = %d",
			stop.Metrics.Executions, stop.Executions)
	}
}

// Replay time lands in the replay phase bucket, not the exploration ones.
func TestReplayPhaseAccounting(t *testing.T) {
	res := New(buggyReplayProgram(), Options{Observe: true}).Run()
	if !res.Buggy() {
		t.Fatal("no bug")
	}
	// Replay builds its own checker; verify via a directly observed one.
	o := Options{Observe: true}.withDefaults()
	o.TraceLen = 1 << 16
	o.MaxScenarios = 1
	c := New(buggyReplayProgram(), o)
	c.replaySegment = true
	c.chooser.seed(res.Bugs[0].replay)
	c.scenarios = 1
	c.runScenario()
	m := c.reg.Snapshot()
	if m.ReplayNs <= 0 {
		t.Errorf("ReplayNs = %d after a replayed scenario", m.ReplayNs)
	}
	if m.PreFailureNs != 0 || m.PostFailureNs != 0 {
		t.Errorf("replay leaked into exploration phases: pre=%d post=%d",
			m.PreFailureNs, m.PostFailureNs)
	}
}
