package core

import (
	"strings"
	"testing"
)

// deepBugProgram manifests only at a later failure point, so its recorded
// choice prefix carries leading fail=0 decisions the minimizer can try to
// strip.
func deepBugProgram() Program {
	return Program{
		Name: "deep-bug",
		Run: func(c *Context) {
			a := c.AllocLine(8)
			c.Store64(a, 1)
			c.Clflush(a, 8) // failure point: harmless, a is self-contained
			c.Store64(a, 2)
			c.Clflush(a, 8) // failure point: harmless
			inner := c.AllocLine(8)
			c.Store64(inner, 42)
			// BUG: inner never flushed before the commit.
			c.StorePtr(c.Root(), inner)
			c.Clflush(c.Root(), 8)
		},
		Recover: func(c *Context) {
			if p := c.LoadPtr(c.Root()); p != 0 {
				c.Assert(c.Load64(p) == 42, "lost inner value")
			}
		},
	}
}

func TestBuildWitnessReproducesAndAnnotates(t *testing.T) {
	prog := buggyReplayProgram()
	res := New(prog, Options{TraceLen: -1}).Run()
	if !res.Buggy() {
		t.Fatal("no bug")
	}
	w := BuildWitness(prog, Options{TraceLen: -1}, res.Bugs[0])
	if !w.Reproduced {
		t.Fatal("witness replay did not reproduce the bug")
	}
	if w.Program != "replay-me" || w.Bug.Message != res.Bugs[0].Message {
		t.Errorf("witness header mismatch: %+v", w.Bug)
	}
	// TraceLen: -1 disabled the ring, but the recorder captures the full
	// trace regardless — including the pre-failure commit store.
	foundCommit, cacheTransition := false, false
	for _, op := range w.Ops {
		if op.Kind == "store" && op.Addr == uint64(PoolBase) && op.Exec == 0 {
			foundCommit = true
			for _, tr := range op.Transitions {
				if tr.Phase == "cache" {
					cacheTransition = true
				}
			}
		}
	}
	if !foundCommit {
		t.Error("pre-failure commit store missing from witness ops")
	}
	if !cacheTransition {
		t.Error("commit store has no cache transition")
	}
	if len(w.Failures) == 0 {
		t.Error("no failure mark recorded")
	}
	if len(w.Lines) == 0 {
		t.Error("no cache-line timelines recorded")
	}
	// The recovery's refined loads carry candidate verdicts, and at least
	// one candidate per resolved load is marked chosen.
	if len(w.Loads) == 0 {
		t.Fatal("no load resolutions recorded")
	}
	for _, l := range w.Loads {
		if len(l.Candidates) == 0 {
			t.Fatalf("load at op %d has no candidates", l.Op)
		}
		if !l.Candidates[l.Chosen].Chosen {
			t.Errorf("load at op %d: Chosen index %d not marked", l.Op, l.Chosen)
		}
		for _, c := range l.Candidates {
			if c.Reason == "" {
				t.Errorf("load at op %d: candidate without verdict reason", l.Op)
			}
		}
	}
	// Every consumed decision maps to an operation.
	for _, d := range w.Decisions {
		if d.Op < 0 {
			t.Errorf("decision %d (%s) not attributed to an operation", d.Index, d.Kind)
		}
	}
}

// Witness building must be independent of how the exploration that found the
// bug was partitioned: the canonical bug representative is the same, so the
// witness is too.
func TestBuildWitnessSerialParallelIdentical(t *testing.T) {
	prog := buggyReplayProgram()
	rs := New(prog, Options{}).Run()
	rp := New(prog, Options{Workers: 4}).Run()
	if !rs.Buggy() || !rp.Buggy() {
		t.Fatal("no bug")
	}
	ws := BuildWitness(prog, Options{}, rs.Bugs[0])
	wp := BuildWitness(prog, Options{Workers: 4}, rp.Bugs[0])
	// Compare the structured contents (the JSON byte-identity is pinned in
	// internal/report); spot-check the load resolutions deeply.
	if len(ws.Ops) != len(wp.Ops) || len(ws.Loads) != len(wp.Loads) ||
		len(ws.Lines) != len(wp.Lines) || len(ws.Decisions) != len(wp.Decisions) {
		t.Fatalf("shape differs: serial ops/loads/lines/decisions %d/%d/%d/%d, parallel %d/%d/%d/%d",
			len(ws.Ops), len(ws.Loads), len(ws.Lines), len(ws.Decisions),
			len(wp.Ops), len(wp.Loads), len(wp.Lines), len(wp.Decisions))
	}
	for i := range ws.Loads {
		s, p := ws.Loads[i], wp.Loads[i]
		if s.Addr != p.Addr || s.Chosen != p.Chosen || len(s.Candidates) != len(p.Candidates) {
			t.Errorf("load %d differs: %+v vs %+v", i, s, p)
		}
	}
}

// The Result/BugReport accessors carry the exploration's program and options,
// so no re-supplying is needed.
func TestWitnessAccessors(t *testing.T) {
	res := New(buggyReplayProgram(), Options{}).Run()
	if !res.Buggy() {
		t.Fatal("no bug")
	}
	w, err := res.Witness(0)
	if err != nil || !w.Reproduced {
		t.Fatalf("Result.Witness: %v (reproduced=%v)", err, w != nil && w.Reproduced)
	}
	if _, err := res.Witness(5); err == nil {
		t.Error("out-of-range Witness index accepted")
	}
	if _, err := (&BugReport{}).Witness(); err == nil {
		t.Error("hand-built report produced a witness")
	}
	nb, m, err := res.Bugs[0].Minimize()
	if err != nil || nb == nil || m == nil {
		t.Fatalf("BugReport.Minimize: %v", err)
	}
}

func TestMinimizePreservesBugAndNeverGrows(t *testing.T) {
	for _, prog := range []Program{buggyReplayProgram(), deepBugProgram()} {
		t.Run(prog.Name, func(t *testing.T) {
			opts := Options{MaxFailures: 1}
			res := New(prog, opts).Run()
			if !res.Buggy() {
				t.Fatal("no bug")
			}
			b := res.Bugs[0]
			nb, m := Minimize(prog, opts, b)
			if m.MinimizedLen > m.OriginalLen {
				t.Fatalf("minimized prefix grew: %d -> %d", m.OriginalLen, m.MinimizedLen)
			}
			if len(nb.replay) != m.MinimizedLen || m.OriginalLen != len(b.replay) {
				t.Fatalf("lengths inconsistent: report %d/%d, stats %+v",
					len(b.replay), len(nb.replay), m)
			}
			if nb.key() != b.key() {
				t.Fatalf("minimized report changed key: %q vs %q", nb.key(), b.key())
			}
			// The minimized prefix still reproduces the same bug key, and is
			// locally minimal: dropping any single remaining decision loses it.
			if !minimizeTrial(prog, opts, nb.replay, b.key()) {
				t.Fatal("minimized prefix does not reproduce the bug")
			}
			for i := range nb.replay {
				cand := append([]choicePoint(nil), nb.replay[:i]...)
				cand = append(cand, nb.replay[i+1:]...)
				if minimizeTrial(prog, opts, cand, b.key()) {
					t.Errorf("decision %d removable: prefix not locally minimal", i)
				}
			}
			if m.Trials <= 0 || m.Trials > minimizeMaxTrials {
				t.Errorf("implausible trial count %d", m.Trials)
			}
		})
	}
}

// The witness replay runs with snapshots forced off even when the
// exploration used them, so the replayed trace always includes the
// pre-failure segment.
func TestWitnessWithSnapshotsOnRegression(t *testing.T) {
	prog := buggyReplayProgram()
	opts := Options{Snapshots: 4} // snapshot engine on during exploration
	res := New(prog, opts).Run()
	if !res.Buggy() {
		t.Fatal("no bug")
	}
	// Replay and FormatWitness see the pre-failure commit store...
	trace := Replay(prog, opts, res.Bugs[0])
	found := false
	for _, op := range trace {
		if op.Kind == "store" && op.Addr == PoolBase {
			found = true
		}
	}
	if !found {
		t.Error("Replay with snapshots-on options lost the pre-failure segment")
	}
	text := FormatWitness(prog, opts, res.Bugs[0])
	if !strings.Contains(text, "operation trace") || !strings.Contains(text, "store") {
		t.Errorf("FormatWitness with snapshots-on options lost the trace:\n%s", text)
	}
	// ...and so does the structured witness.
	w := BuildWitness(prog, opts, res.Bugs[0])
	if !w.Reproduced {
		t.Fatal("witness with snapshots-on options did not reproduce")
	}
	preFailure := 0
	for _, op := range w.Ops {
		if op.Exec == 0 {
			preFailure++
		}
	}
	if preFailure == 0 {
		t.Error("structured witness has no pre-failure operations")
	}
}

// FormatWitness respects an explicitly disabled trace: the sentinel is not
// overridden back to the forced witness length (Replay still forces it —
// producing a trace is Replay's contract).
func TestFormatWitnessRespectsDisabledTrace(t *testing.T) {
	prog := buggyReplayProgram()
	res := New(prog, Options{TraceLen: -1}).Run()
	if !res.Buggy() {
		t.Fatal("no bug")
	}
	text := FormatWitness(prog, Options{TraceLen: -1}, res.Bugs[0])
	if strings.Contains(text, "operation trace") {
		t.Errorf("disabled trace still rendered:\n%s", text)
	}
	// The rest of the witness (decisions, manifestation) survives.
	if !strings.Contains(text, "witness for:") || !strings.Contains(text, "manifestation:") {
		t.Errorf("witness header lost:\n%s", text)
	}
	// Replay, by contrast, forces the trace into existence.
	if trace := Replay(prog, Options{TraceLen: -1}, res.Bugs[0]); len(trace) == 0 {
		t.Error("Replay with disabled trace returned nothing")
	}
}
