package core

import (
	"fmt"
	"sort"
	"strings"
)

// witnessTraceLen is the trace-ring capacity forced during witness replays:
// large enough that no bundled workload ever wraps, so the "complete
// operation trace" promise holds.
const witnessTraceLen = 1 << 16

// FormatWitness renders a complete, human-readable witness for a bug: the
// scenario's nondeterministic decisions, the replayed operation trace, and
// the flagged multi-candidate loads. This is the consolidated form of the
// paper's debugging support: "Jaaru prints out the load that can read from
// multiple stores, the source location of the load, each of the stores,
// their locations in the trace" — produced by re-running the recorded
// scenario with full instrumentation.
//
// prog and opts must match the exploration that produced b.
func FormatWitness(prog Program, opts Options, b *BugReport) string {
	// Replay with multi-rf flagging on so the witness carries the
	// candidate-store annotations even if the exploration ran without.
	// Tracing is widened — but only if the caller did not disable it
	// outright (TraceLen < 0 stays disabled; Replay is the API that forces
	// a trace into existence). Snapshots are forced off: a witness replay
	// must re-execute the guest from scratch so the trace covers the
	// pre-failure operations, not resume from a restored snapshot.
	o := opts.withDefaults()
	if o.TraceLen > 0 {
		o.TraceLen = witnessTraceLen
	}
	o.MaxScenarios = 1
	o.FlagMultiRF = true
	o.Snapshots = -1
	c := New(prog, o)
	c.replaySegment = true
	c.chooser.seed(b.replay)
	c.scenarios = 1
	c.runScenario()
	var trace []TraceOp
	if c.trace != nil {
		trace = c.trace.snapshot()
	}

	var w strings.Builder
	fmt.Fprintf(&w, "witness for: %v\n", b)
	if b.Choices == "" {
		fmt.Fprintf(&w, "decisions: (none — the first scenario)\n")
	} else {
		fmt.Fprintf(&w, "decisions: %s\n", b.Choices)
	}

	if len(c.multiRF) > 0 {
		fmt.Fprintf(&w, "\nloads that could read from more than one store:\n")
		for _, m := range sortedMultiRF(c.multiRF) {
			fmt.Fprintf(&w, "  %v\n", m)
		}
	}

	if c.trace != nil {
		fmt.Fprintf(&w, "\noperation trace (%d operations):\n", len(trace))
		for i, op := range trace {
			fmt.Fprintf(&w, "  %4d  %v\n", i, op)
		}
	}
	if len(c.bugs) > 0 {
		fmt.Fprintf(&w, "\nmanifestation: %s\n", c.bugs[0].Message)
	}
	return w.String()
}

func sortedMultiRF(m map[string]*MultiRF) []*MultiRF {
	out := make([]*MultiRF, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Loc < out[j].Loc })
	return out
}
