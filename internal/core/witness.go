package core

import (
	"fmt"
	"strings"
)

// FormatWitness renders a complete, human-readable witness for a bug: the
// scenario's nondeterministic decisions, the replayed operation trace, and
// the flagged multi-candidate loads. This is the consolidated form of the
// paper's debugging support: "Jaaru prints out the load that can read from
// multiple stores, the source location of the load, each of the stores,
// their locations in the trace" — produced by re-running the recorded
// scenario with full instrumentation.
//
// prog and opts must match the exploration that produced b.
func FormatWitness(prog Program, opts Options, b *BugReport) string {
	// Replay with multi-rf flagging on so the witness carries the
	// candidate-store annotations even if the exploration ran without.
	// As in Replay: tracing is forced on (that is the point), everything
	// else keeps the exploration's normalized semantics (withDefaults is
	// idempotent).
	o := opts.withDefaults()
	o.TraceLen = 1 << 16
	o.MaxScenarios = 1
	o.FlagMultiRF = true
	c := New(prog, o)
	c.replaySegment = true
	c.chooser.seed(b.replay)
	c.scenarios = 1
	c.runScenario()
	trace := c.trace.snapshot()

	var w strings.Builder
	fmt.Fprintf(&w, "witness for: %v\n", b)
	if b.Choices == "" {
		fmt.Fprintf(&w, "decisions: (none — the first scenario)\n")
	} else {
		fmt.Fprintf(&w, "decisions: %s\n", b.Choices)
	}

	if len(c.multiRF) > 0 {
		fmt.Fprintf(&w, "\nloads that could read from more than one store:\n")
		for _, m := range sortedMultiRF(c.multiRF) {
			fmt.Fprintf(&w, "  %v\n", m)
		}
	}

	fmt.Fprintf(&w, "\noperation trace (%d operations):\n", len(trace))
	for i, op := range trace {
		fmt.Fprintf(&w, "  %4d  %v\n", i, op)
	}
	if len(c.bugs) > 0 {
		fmt.Fprintf(&w, "\nmanifestation: %s\n", c.bugs[0].Message)
	}
	return w.String()
}

func sortedMultiRF(m map[string]*MultiRF) []*MultiRF {
	out := make([]*MultiRF, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Loc < out[j-1].Loc; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
