package core

import (
	"fmt"
	"strings"

	"jaaru/internal/obs"
)

// choiceKind labels the two sources of nondeterminism the checker explores:
// whether to inject a failure at an eligible failure point, and which
// pre-failure store a post-failure load byte reads from.
type choiceKind uint8

const (
	chooseFail choiceKind = iota
	chooseReadFrom
	chooseEvict
)

func (k choiceKind) String() string {
	switch k {
	case chooseFail:
		return "fail"
	case chooseReadFrom:
		return "rf"
	case chooseEvict:
		return "evict"
	default:
		return "?"
	}
}

// choicePoint is one recorded nondeterministic decision.
type choicePoint struct {
	kind choiceKind
	n    int // number of options
	idx  int // option currently being explored
}

// chooser is the replay-based exploration engine's choice stack. A scenario
// run consults it at every nondeterministic point: within the recorded
// prefix it replays, beyond it it appends new points taking option 0.
// advance moves depth-first to the next unexplored branch.
//
// For parallel exploration, each point carries an exploration limit (an
// exclusive upper bound on the options this chooser will itself visit,
// normally n): seed claims a branch prefix whose points are all frozen at
// their recorded option, and splitOff carves unexplored sibling options off
// as new branch prefixes for other workers, lowering the local limit so the
// donor never revisits them.
type chooser struct {
	points []choicePoint
	limit  []int // per-point exclusive exploration bound, limit[i] <= points[i].n
	// aux carries the POR layer's per-point memo (failMemo for failure
	// decisions, nil otherwise), kept in lockstep with points by seed,
	// choose and advance. A point's memo describes state that is a pure
	// function of the choice prefix leading to it, so it stays valid for as
	// long as the point itself survives backtracking.
	aux    []*failMemo
	cursor int

	// newPoints counts distinct choice points discovered, by kind —
	// exploration statistics for Result.
	newPoints [3]int

	// stable is the number of leading points guaranteed unchanged since the
	// snapshot machinery last validated its entries against this vector
	// (usableSnapshot resets it to MaxInt after a scan): advance only flips
	// the deepest surviving index, and choose only appends, so a snapshot
	// whose depth is <= stable still prefix-matches without comparing.
	// Accumulated as a min so multiple mutations between scans compose.
	stable int

	// col is the owning checker's observability shard (nil when disabled).
	col *obs.Collector
}

// begin resets the replay cursor for a fresh scenario run.
func (ch *chooser) begin() { ch.cursor = 0 }

// seed installs a claimed branch prefix: the next scenario replays exactly
// these decisions and explores fresh points beyond them. Every prefix point
// is frozen (limit = idx+1), so advance never backtracks into territory
// owned by the branch's publisher.
func (ch *chooser) seed(prefix []choicePoint) {
	ch.points = append(ch.points[:0], prefix...)
	ch.limit = ch.limit[:0]
	ch.aux = ch.aux[:0]
	for _, p := range prefix {
		ch.limit = append(ch.limit, p.idx+1)
		ch.aux = append(ch.aux, nil)
	}
	ch.cursor = 0
	ch.stable = 0
}

// choose returns the option index for the next nondeterministic point, which
// must present the same kind and option count on replay.
func (ch *chooser) choose(kind choiceKind, n int) int {
	if n <= 0 {
		panic(engineError{fmt.Sprintf("choice with %d options", n)})
	}
	if ch.cursor < len(ch.points) {
		p := ch.points[ch.cursor]
		if p.kind != kind || p.n != n {
			panic(engineError{fmt.Sprintf(
				"nondeterministic replay: recorded %v/%d, got %v/%d at %d",
				p.kind, p.n, kind, n, ch.cursor)})
		}
		ch.cursor++
		ch.col.Inc(obs.ChoicesReplayed)
		return p.idx
	}
	ch.points = append(ch.points, choicePoint{kind: kind, n: n})
	ch.limit = append(ch.limit, n)
	ch.aux = append(ch.aux, nil)
	ch.cursor++
	ch.newPoints[kind]++
	ch.col.Inc(obs.ChoicesFresh)
	return 0
}

// seedClaim installs a claimed branch with explicit per-point exploration
// limits and optional POR memos — the general form of seed used by
// distributed exploration. A frozen prefix is the special case
// limits[i] == idx+1; a residual claim requeued after a lease expiry carries
// idx < limit[i] <= n at points whose unexplored siblings the dead worker
// still owned, and the claimant resumes exactly there: the current vector is
// replayed as the first scenario, then advance walks the remaining siblings.
// Memos let the claimant's porPruneSweep re-clamp failure decisions whose
// crash state was already published without re-deriving the fingerprint.
func (ch *chooser) seedClaim(prefix []choicePoint, limits []int, memos []*failMemo) {
	ch.points = append(ch.points[:0], prefix...)
	ch.limit = ch.limit[:0]
	ch.aux = ch.aux[:0]
	for i, p := range prefix {
		lim := p.idx + 1
		if limits != nil {
			lim = limits[i]
		}
		ch.limit = append(ch.limit, lim)
		var m *failMemo
		if memos != nil {
			m = memos[i]
		}
		ch.aux = append(ch.aux, m)
	}
	ch.cursor = 0
	ch.stable = 0
}

// claimSnapshot exports the chooser's current claim — points, limits and POR
// memos — as the residual a lease commit publishes: re-seeding the snapshot
// with seedClaim and exploring covers exactly the work this chooser has not
// yet visited (the current vector and every remaining in-limit sibling).
// Limits are exported verbatim: donation lowers must stay lowered (the
// donated subtrees were pushed), and POR clamps must stay clamped (their
// analytic delta is part of the same commit's cumulative stats, so a
// claimant re-applying it would double-count).
func (ch *chooser) claimSnapshot() (points []choicePoint, limits []int, memos []*failMemo) {
	points = append([]choicePoint(nil), ch.points...)
	limits = append([]int(nil), ch.limit...)
	for _, m := range ch.aux {
		if m != nil {
			memos = append([]*failMemo(nil), ch.aux...)
			break
		}
	}
	return points, limits, memos
}

// advance backtracks depth-first: exhausted trailing points are popped, the
// deepest unexhausted point advances to its next option. It reports false
// when the whole (claimed) space has been explored.
func (ch *chooser) advance() bool {
	for len(ch.points) > 0 {
		i := len(ch.points) - 1
		top := &ch.points[i]
		if top.idx+1 < ch.limit[i] {
			top.idx++
			if i < ch.stable {
				ch.stable = i
			}
			return true
		}
		ch.points = ch.points[:i]
		ch.limit = ch.limit[:i]
		ch.aux[i] = nil
		ch.aux = ch.aux[:i]
	}
	return false
}

// splitOff donates work: it finds the shallowest point with options this
// chooser has not yet visited, returns each such option as an independent
// branch prefix, and lowers the local limit so the donated subtrees are
// never explored here. It returns nil when the chooser holds no splittable
// work. Shallowest-first splitting donates the largest subtrees, the
// standard work-stealing heuristic.
func (ch *chooser) splitOff() []branch {
	for d := range ch.points {
		lo, hi := ch.points[d].idx+1, ch.limit[d]
		if lo >= hi {
			continue
		}
		out := make([]branch, 0, hi-lo)
		for idx := lo; idx < hi; idx++ {
			pts := append([]choicePoint(nil), ch.points[:d+1]...)
			pts[d].idx = idx
			out = append(out, branch{points: pts})
		}
		ch.limit[d] = lo
		return out
	}
	return nil
}

// describe renders the decisions of the current scenario for bug reports,
// e.g. "fail@3 rf[2/4] rf[0/2]" — failed at the 4th eligible failure point,
// then picked candidates 2-of-4 and 0-of-2.
func (ch *chooser) describe() string { return describeChoices(ch.points) }

// describeChoices renders an arbitrary choice vector (see chooser.describe).
func describeChoices(points []choicePoint) string {
	var b strings.Builder
	failIdx := 0
	for _, p := range points {
		switch p.kind {
		case chooseFail:
			if p.idx == 1 {
				fmt.Fprintf(&b, "fail@%d ", failIdx)
			}
			failIdx++
		case chooseReadFrom:
			fmt.Fprintf(&b, "rf[%d/%d] ", p.idx, p.n)
		case chooseEvict:
			if p.idx == 1 {
				b.WriteString("evict ")
			}
		}
	}
	return strings.TrimSpace(b.String())
}
