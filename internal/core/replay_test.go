package core

import (
	"strings"
	"testing"
)

func buggyReplayProgram() Program {
	return Program{
		Name: "replay-me",
		Run: func(c *Context) {
			inner := c.AllocLine(8)
			c.Store64(inner, 42)
			// BUG: inner never flushed before the commit.
			c.StorePtr(c.Root(), inner)
			c.Clflush(c.Root(), 8)
		},
		Recover: func(c *Context) {
			if p := c.LoadPtr(c.Root()); p != 0 {
				c.Assert(c.Load64(p) == 42, "lost inner value")
			}
		},
	}
}

func TestReplayReproducesBug(t *testing.T) {
	// Explore without tracing (the cheap pass)...
	res := New(buggyReplayProgram(), Options{TraceLen: -1}).Run()
	if !res.Buggy() {
		t.Fatal("no bug to replay")
	}
	if len(res.Bugs[0].Trace) != 0 {
		t.Fatal("tracing was not disabled in the exploration pass")
	}
	// ...then replay the recorded scenario with full tracing.
	trace := Replay(buggyReplayProgram(), Options{TraceLen: -1}, res.Bugs[0])
	if len(trace) == 0 {
		t.Fatal("replay produced no trace")
	}
	stores, loads := 0, 0
	for _, op := range trace {
		switch op.Kind {
		case "store":
			stores++
		case "load":
			loads++
		}
	}
	if stores < 2 || loads < 1 {
		t.Errorf("replay trace implausible: %d stores, %d loads\n%v", stores, loads, trace)
	}
	// The last guest activity is the recovery's reads leading to the
	// assertion; the trace must include the pre-failure commit store too.
	foundCommit := false
	for _, op := range trace {
		if op.Kind == "store" && op.Addr == PoolBase {
			foundCommit = true
		}
	}
	if !foundCommit {
		t.Errorf("pre-failure commit store missing from replay trace:\n%v", trace)
	}
}

func TestReplayDeterministic(t *testing.T) {
	res := New(buggyReplayProgram(), Options{}).Run()
	if !res.Buggy() {
		t.Fatal("no bug")
	}
	t1 := Replay(buggyReplayProgram(), Options{}, res.Bugs[0])
	t2 := Replay(buggyReplayProgram(), Options{}, res.Bugs[0])
	if len(t1) != len(t2) {
		t.Fatalf("replay lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("replay diverged at op %d: %v vs %v", i, t1[i], t2[i])
		}
	}
}

func TestFormatWitness(t *testing.T) {
	res := New(buggyReplayProgram(), Options{}).Run()
	if !res.Buggy() {
		t.Fatal("no bug")
	}
	w := FormatWitness(buggyReplayProgram(), Options{}, res.Bugs[0])
	for _, want := range []string{
		"witness for:", "operation trace", "store", "load",
		"more than one store", "manifestation:",
	} {
		if !strings.Contains(w, want) {
			t.Errorf("witness missing %q:\n%s", want, w)
		}
	}
}
