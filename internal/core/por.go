package core

import (
	"sync"
	"time"

	"jaaru/internal/obs"
	"jaaru/internal/pmem"
)

// Persistency-aware partial-order reduction (the pruning layer behind
// Options.POR). Two complementary mechanisms shrink the explored scenario set
// without changing the reachable-behaviour set or the bug set:
//
//   - Single-valued read-from elision (porElides, wired into loadByte): when
//     a post-failure load byte's candidate set holds more than one store but
//     every candidate carries the same value, the sibling read-from branches
//     commute — no subsequent load can observe which store was chosen — so
//     exploring one branch covers them all. The checker resolves the load
//     without creating a choice point and, crucially, without applying the
//     Figure 10 interval refinement: refining for an arbitrarily chosen
//     candidate would narrow later candidate sets to one branch's view,
//     under-exploring; leaving the interval untouched makes the single
//     explored branch the exact union of the elided siblings. This is the
//     DPOR sleep-set construction of the POWER-paper SMC recipe specialized
//     to Jaaru's persistency semantics: the "transitions" are read-from
//     picks, and same-value picks are mutually non-conflicting. Because the
//     pruned siblings never enter the choice stack at all, the parallel
//     frontier can never enqueue a pruned prefix — splitOff only donates
//     recorded points.
//
//   - Post-failure state fingerprinting (porCrashCheck): at the first visit
//     of a failure point's recovery subtree, the checker computes a canonical
//     O(touched) fingerprint of the persisted state (pmem.Fingerprint: line
//     contents plus interval records, rank-encoded so absolute sequence
//     numbers cancel out) and consults a per-run seen-set shared across
//     workers. On a miss the subtree is explored normally while a porRecord
//     accumulates its statistics; when the chooser backtracks out of the
//     subtree the record is published as a porDelta. On a hit the entire
//     recovery subtree is skipped and the recorded delta is re-applied, so
//     Result and the canonical observability counters stay bit-identical to
//     a run that explored the equivalent subtree explicitly — scenario and
//     counter totals remain "as if unpruned", with the physical saving
//     reported through obs.ScenariosPruned.
//
// Delta exactness. A subtree of K scenarios re-runs (or snapshot-restores —
// both paths account identically) its choice prefix K−1 times, and the
// owner's prefix differs from a later hit's prefix. The record therefore
// separates the two parts: at open it measures the owner scenario's own
// prefix contribution (scenario baseline → crash point), and at close it
// publishes vec = rawΔ − (K−1)·ownerPrefixΔ, the prefix-invariant recovery
// part. A hit re-applies vec + (K−1)·hitPrefixΔ, measuring its own prefix
// the same way. ChoicesReplayed is handled analytically (each skipped
// scenario would replay its whole prefix — rootDepth decisions — whether
// live or via snapshot restore), ChoicesFresh is purely a suffix property
// (prefix re-runs replay, never discover), and Steps goes through the same
// prefix separation on the scalar counter.
//
// Soundness gates. Fingerprinting requires MaxFailures == 1 (recovery then
// contains no failure decisions, so a recorded bug's choice suffix renders
// position-independently and grafts onto any equivalent prefix), a
// deterministic scheduler and eviction draw (a skipped subtree must not
// leave per-scenario rng state behind), and no instrumentation/observer/
// replay hooks (those must see every execution). The recovery subtree is a
// function of exactly (persisted state, allocator high-water), both folded
// into the fingerprint, so equivalent states have isomorphic subtrees:
// identical choice structure, behaviours, bug manifestations, and step
// counts. Elision is gated only on observers: it stays active under witness
// replay so recorded choice vectors keep their shape.

// porElides reports whether a multi-candidate load byte can be resolved
// without a choice point because every candidate carries the same value.
func (c *Checker) porElides(cands []pmem.Candidate) bool {
	if c.opts.POR <= 0 || len(c.observers) > 0 {
		return false
	}
	v := cands[0].Val
	for _, cd := range cands[1:] {
		if cd.Val != v {
			return false
		}
	}
	return true
}

// porSeen is the per-run fingerprint seen-set, shared by every worker of a
// parallel exploration (newWorker aliases the coordinator's).
type porSeen struct {
	mu sync.RWMutex
	m  map[uint64]*porDelta
	// log records publication order, making the seen-set an append-only
	// publication log: distributed workers drain entries past a version
	// cursor and ship them to the coordinator, which republishes them to
	// other workers. Absorbing a foreign delta is safe even when its
	// publisher died mid-lease — a porDelta is a pure function of the
	// fingerprinted state, not of who explored it (the isomorphism argument
	// above), so deltas from abandoned leases stay valid.
	log []uint64
}

func newPorSeen() *porSeen { return &porSeen{m: make(map[uint64]*porDelta)} }

func (ps *porSeen) lookup(fp uint64) *porDelta {
	ps.mu.RLock()
	d := ps.m[fp]
	ps.mu.RUnlock()
	return d
}

// publish installs d for fp unless an equivalent delta got there first (two
// workers may race to explore equivalent subtrees; first wins, and the
// deltas are interchangeable by the isomorphism argument above).
func (ps *porSeen) publish(fp uint64, d *porDelta) {
	ps.mu.Lock()
	if _, ok := ps.m[fp]; !ok {
		ps.m[fp] = d
		ps.log = append(ps.log, fp)
	}
	ps.mu.Unlock()
}

// logLen returns the current publication-log version (entries published).
func (ps *porSeen) logLen() int {
	ps.mu.RLock()
	n := len(ps.log)
	ps.mu.RUnlock()
	return n
}

// entriesSince returns the (fingerprint, delta) pairs published at log
// positions from..len(log), in publication order.
func (ps *porSeen) entriesSince(from int) (fps []uint64, deltas []*porDelta) {
	ps.mu.RLock()
	for _, fp := range ps.log[min(from, len(ps.log)):] {
		fps = append(fps, fp)
		deltas = append(deltas, ps.m[fp])
	}
	ps.mu.RUnlock()
	return fps, deltas
}

// failMemo is the per-failure-point memo the chooser carries alongside each
// chooseFail point (chooser.aux): the canonical fingerprint of the persisted
// state a crash at that point recovers from, plus the cost of reaching the
// point from its scenario's start. The fingerprint is computed at point
// creation, which is sound because the crash hook fires before the flush
// effect applies and teardown runs no further program operations — the state
// at creation time is byte-identical to the state any later crash at the
// same point sees. The prefix costs are likewise a pure function of the
// choice prefix (deterministic scheduler), so the memo stays valid for the
// point's whole backtracking lifetime.
type failMemo struct {
	fp    uint64
	steps int64          // prefix steps: scenario start -> failure point
	vec   obs.CounterVec // prefix canonical counters, cleared
}

// porBug is one distinct bug of a recorded subtree: its manifestation count
// and the canonically smallest choice suffix (relative to the subtree root)
// that reaches it. Under MaxFailures == 1 the suffix holds only rf/evict
// points, whose rendering is position-independent, so the minimal suffix
// under the owner's prefix is the minimal suffix under any equivalent
// prefix — grafting preserves the canonical-representative rule.
type porBug struct {
	typ    BugType
	msg    string
	exec   int
	count  int
	rel    string // describeChoices(suffix), the canonical order key
	suffix []choicePoint
	trace  []TraceOp
}

// porPerfDelta / porMultiDelta carry a subtree's perf-issue and flagged-load
// count deltas, with the owner's representative fields for first-seen keys.
type porPerfDelta struct {
	key   string
	count int
	issue PerfIssue
}

type porMultiDelta struct {
	key   string
	count int
	multi MultiRF
}

// porDelta is a published subtree record: everything a fingerprint hit must
// re-apply to stay bit-identical to exploring the subtree. Immutable once
// published.
type porDelta struct {
	scenarios int // subtree scenario count, including its root
	execs     int // post-failure executions
	steps     int64
	maxRF     int
	maxRel    int // deepest choice stack relative to the subtree root
	newPoints [3]int
	replayed  int64 // suffix replays: rawΔ − (K−1)·ownerRootDepth
	fresh     int64
	vec       obs.CounterVec // prefix-invariant canonical counter delta
	bugs      []porBug
	perf      []porPerfDelta
	multi     []porMultiDelta
}

// porRecord tracks an open (still-exploring) subtree.
type porRecord struct {
	fp        uint64
	rootDepth int
	prefix    []choicePoint

	openVec      obs.CounterVec
	prefixVec    obs.CounterVec // owner prefix contribution, cleared
	openSteps    int64
	prefixSteps  int64
	openReplayed int64
	openFresh    int64
	baseScen     int
	baseExecs    int
	basePoints   [3]int
	basePerf     map[string]int
	baseMulti    map[string]int
	maxRel       int
	void         bool
	bugs         map[string]*porBug
}

// porClearPrefixDependent zeroes the counters the delta machinery accounts
// for outside the vec: per-scenario bookkeeping, analytic choice counters,
// wall-clock timings, and the snapshot/POR engines' own bookkeeping.
func porClearPrefixDependent(v *obs.CounterVec) {
	v.Clear(obs.Scenarios, obs.Steps,
		obs.PreFailureNs, obs.PostFailureNs, obs.ReplayNs,
		obs.ChoicesReplayed, obs.ChoicesFresh,
		obs.SnapshotCaptures, obs.SnapshotRestores, obs.SnapshotRestoreNs,
		obs.ScenariosPruned, obs.FingerprintHits, obs.FingerprintMisses,
		obs.ChoicesRestored, obs.ChoiceSnapCaptures, obs.ChoiceRestores,
		obs.ChoiceRestoreNs, obs.ReplayStepsSaved, obs.RefinementsSkipped,
		obs.ReplaySteps)
}

// porFpEligible reports whether post-failure state fingerprinting can run
// for this checker at all (see the soundness gates above).
func (c *Checker) porFpEligible() bool {
	return c.opts.POR > 0 &&
		c.porSeenSet != nil &&
		c.opts.MaxFailures == 1 &&
		c.prog.Recover != nil &&
		!c.opts.RandomScheduler &&
		c.opts.Eviction != EvictRandom &&
		c.snapshot == nil &&
		len(c.observers) == 0 &&
		c.wrec == nil &&
		!c.replaySegment
}

// porBeginScenario runs at the top of every scenario: it closes records the
// chooser has backtracked out of and latches the scenario baseline a later
// crash-point measurement is taken against.
func (c *Checker) porBeginScenario() {
	c.porSync()
	c.porFpActive = c.porFpEligible()
	if !c.porFpActive {
		return
	}
	// Sweep before latching the baselines: the deltas a pruned flip injects
	// must not leak into this scenario's own prefix measurements (nor into
	// the snapshot engine's, which latches after porBeginScenario returns).
	c.porPruneSweep()
	c.porScenBaseSteps = c.totalSteps
	c.porScenBase = c.col.Counters()
}

// porStateFingerprint canonically fingerprints the current persisted state:
// line contents plus refinement intervals (rank-encoded so absolute sequence
// numbers cancel), salted with the allocator high-water mark and crash-stack
// depth — the exact inputs the recovery subtree is a function of.
func (c *Checker) porStateFingerprint() uint64 {
	var t0 time.Time
	if c.col != nil {
		t0 = time.Now()
	}
	h := pmem.FingerprintSeed
	h = (h ^ uint64(c.alloc.HighWater())) * 0x100000001b3
	h = (h ^ uint64(c.stack.Depth())) * 0x100000001b3
	fp := c.stack.Fingerprint(h)
	if c.col != nil {
		c.col.Observe(obs.TimerFingerprint, time.Since(t0).Nanoseconds())
	}
	return fp
}

// porNoteFailPoint memoizes a freshly created failure decision point (called
// from BeforeFlushEffect right after the point is appended): crash-state
// fingerprint plus the prefix cost every scenario of the point's crash
// subtree would pay to reach it. porPruneSweep consults the memo at later
// scenario starts.
func (c *Checker) porNoteFailPoint() {
	if !c.porFpActive {
		return
	}
	m := &failMemo{
		fp:    c.porStateFingerprint(),
		steps: c.totalSteps - c.porScenBaseSteps,
	}
	if c.col != nil {
		m.vec = c.col.Counters().Diff(c.porScenBase)
		porClearPrefixDependent(&m.vec)
	}
	c.chooser.aux[c.chooser.cursor-1] = m
}

// porPruneSweep clamps failure decisions whose crash subtree is already
// proven equivalent to an explored one: a fail point still on its continue
// option whose memoized fingerprint has a published delta gets its
// exploration limit lowered to 1, so advance never flips it and splitOff
// never donates it — the subtree's K scenarios are accounted analytically
// without running a single one. This is what turns a fingerprint hit from a
// "cheap scenario" (crash-time hits still pay one prefix replay each) into
// no scenario at all. The sweep runs between subtrees only: with a record
// open, applying a foreign subtree's delta would contaminate the record's
// close-time diff. Nothing is lost by waiting — depth-first order reaches a
// clampable flip only after every record covering it has closed.
func (c *Checker) porPruneSweep() {
	if len(c.porOpen) != 0 {
		return
	}
	ch := c.chooser
	for i := range ch.points {
		if ch.points[i].kind != chooseFail || ch.points[i].idx != 0 || ch.limit[i] != 2 {
			continue
		}
		m := ch.aux[i]
		if m == nil {
			continue
		}
		d := c.porSeenSet.lookup(m.fp)
		if d == nil {
			continue
		}
		ch.limit[i] = 1
		// A clamp rewrites the subtree below point i out of the schedule;
		// any choice snapshot captured under the excised branch must not
		// survive to satisfy a later restore (see chsnapExciseBelow — with
		// the clamp landing on the un-flipped branch the excision is a
		// defensive no-op, but the invariant is cheap to enforce).
		c.chsnapExciseBelow(i)
		if c.porFPHook != nil {
			c.porFPHook(m.fp, true)
		}
		c.porApply(d, int64(d.scenarios), i+1, m.steps, m.vec, true)
	}
}

// porSync closes (publishes) every open record whose subtree the chooser has
// left. Records nest by prefix, deepest last, so the scan stops at the first
// record the current choice vector still extends. Callers have already
// counted the scenario being started, which is not part of any closing
// subtree.
func (c *Checker) porSync() {
	for i := len(c.porOpen) - 1; i >= 0; i-- {
		r := c.porOpen[i]
		pts := c.chooser.points
		if r.rootDepth <= len(pts) && prefixEqual(r.prefix, pts[:r.rootDepth]) {
			break
		}
		c.porClose(r, true)
		c.porOpen[i] = nil
		c.porOpen = c.porOpen[:i]
	}
}

// porFlush closes every open record — the exploration (or claimed branch)
// ran its subtree to completion.
func (c *Checker) porFlush() {
	for i := len(c.porOpen) - 1; i >= 0; i-- {
		c.porClose(c.porOpen[i], false)
		c.porOpen[i] = nil
	}
	c.porOpen = c.porOpen[:0]
}

// porAbandon voids and drops every open record (a cap truncated the subtree,
// or an engine panic made its statistics unreliable).
func (c *Checker) porAbandon() {
	for i := range c.porOpen {
		c.porOpen[i] = nil
	}
	c.porOpen = c.porOpen[:0]
}

// porCancelBelow voids open records whose subtree a donation carved work out
// of: a record rooted at or above the donated point no longer covers its
// whole subtree locally, so its delta must not be published. splitDepth is
// the length of the donated branch prefixes (donation point depth + 1).
func (c *Checker) porCancelBelow(splitDepth int) {
	for _, r := range c.porOpen {
		if r.rootDepth < splitDepth {
			r.void = true
		}
	}
}

// porNoteDepth records a finished scenario's choice-stack depth into every
// open record (for the PeakChoiceDepth a hit must re-apply).
func (c *Checker) porNoteDepth(depth int) {
	for _, r := range c.porOpen {
		if rel := depth - r.rootDepth; rel > r.maxRel {
			r.maxRel = rel
		}
	}
}

// porCrashCheck runs once per scenario at the moment a failure is committed
// (crash injected, or the mandatory end-of-run failure) and before any
// recovery executes. On a fingerprint hit it re-applies the recorded subtree
// delta and reports true: the caller skips the recovery loop entirely.
func (c *Checker) porCrashCheck() bool {
	if !c.porFpActive {
		return false
	}
	ch := c.chooser
	if ch.cursor != len(ch.points) {
		// Recorded points lie beyond the cursor: this crash subtree is
		// already being explored; only first visits consult the seen-set.
		return false
	}
	var fp uint64
	if n := ch.cursor; n > 0 && ch.points[n-1].kind == chooseFail &&
		ch.points[n-1].idx == 1 && ch.aux[n-1] != nil {
		// Crash committed at a memoized failure point: the creation-time
		// fingerprint is the crash-state fingerprint (the hook fires before
		// the flush effect, and teardown runs no further operations).
		fp = ch.aux[n-1].fp
	} else {
		fp = c.porStateFingerprint()
	}
	d := c.porSeenSet.lookup(fp)
	if c.porFPHook != nil {
		c.porFPHook(fp, d != nil)
	}
	if d != nil {
		c.porApplyHit(d)
		return true
	}
	c.col.Inc(obs.FingerprintMisses)
	c.porOpenRecord(fp)
	return false
}

// porOpenRecord opens a subtree record at a first-visit crash point,
// measuring the owner scenario's own prefix contribution.
func (c *Checker) porOpenRecord(fp uint64) {
	c.foldChooserStats()
	r := &porRecord{
		fp:          fp,
		rootDepth:   c.chooser.cursor,
		prefix:      append([]choicePoint(nil), c.chooser.points...),
		openSteps:   c.totalSteps,
		prefixSteps: c.totalSteps - c.porScenBaseSteps,
		baseScen:    c.scenarios - 1, // exclude the root scenario: the delta includes it
		baseExecs:   c.execsPost,
		basePoints:  c.newPoints,
	}
	if c.col != nil {
		r.openVec = c.col.Counters()
		r.openReplayed = r.openVec[obs.ChoicesReplayed]
		r.openFresh = r.openVec[obs.ChoicesFresh]
		r.prefixVec = r.openVec.Diff(c.porScenBase)
		porClearPrefixDependent(&r.prefixVec)
	}
	if len(c.perfIssues) > 0 {
		r.basePerf = make(map[string]int, len(c.perfIssues))
		for k, p := range c.perfIssues {
			r.basePerf[k] = p.Count
		}
	}
	if len(c.multiRF) > 0 {
		r.baseMulti = make(map[string]int, len(c.multiRF))
		for k, m := range c.multiRF {
			r.baseMulti[k] = m.Count
		}
	}
	c.porOpen = append(c.porOpen, r)
}

// porNoteBug records a bug manifestation into every open record, keeping the
// canonically smallest (suffix render, execution) pair as the representative
// — the same rule recordBug and the parallel merge apply globally.
func (c *Checker) porNoteBug(typ BugType, msg string, exec int) {
	for _, r := range c.porOpen {
		if r.void {
			continue
		}
		suffix := c.chooser.points[r.rootDepth:]
		rel := describeChoices(suffix)
		key := (&BugReport{Type: typ, Message: msg}).key()
		if r.bugs == nil {
			r.bugs = make(map[string]*porBug)
		}
		pb, ok := r.bugs[key]
		if !ok {
			pb = &porBug{typ: typ, msg: msg}
			r.bugs[key] = pb
		}
		pb.count++
		if !ok || rel < pb.rel || (rel == pb.rel && exec < pb.exec) {
			pb.rel = rel
			pb.exec = exec
			pb.suffix = append(pb.suffix[:0], suffix...)
			if c.trace != nil {
				pb.trace = c.trace.snapshot()
			}
		}
	}
}

// porClose publishes a finished record as a porDelta (unless voided).
func (c *Checker) porClose(r *porRecord, currentCounted bool) {
	if r.void || c.porSeenSet == nil {
		return
	}
	c.foldChooserStats()
	scen := c.scenarios - r.baseScen
	if currentCounted {
		scen--
	}
	if scen < 1 {
		return // nothing ran under the record; do not publish
	}
	k1 := int64(scen - 1)
	d := &porDelta{
		scenarios: scen,
		execs:     c.execsPost - r.baseExecs,
		steps:     c.totalSteps - r.openSteps - k1*r.prefixSteps,
		maxRF:     c.maxRF,
		maxRel:    r.maxRel,
	}
	for k := range d.newPoints {
		d.newPoints[k] = c.newPoints[k] - r.basePoints[k]
	}
	if c.col != nil {
		cur := c.col.Counters()
		d.replayed = cur[obs.ChoicesReplayed] - r.openReplayed - k1*int64(r.rootDepth)
		d.fresh = cur[obs.ChoicesFresh] - r.openFresh
		vec := cur.Diff(r.openVec)
		porClearPrefixDependent(&vec)
		for k := range vec {
			vec[k] -= k1 * r.prefixVec[k]
		}
		d.vec = vec
	}
	for _, pb := range r.bugs {
		d.bugs = append(d.bugs, *pb)
	}
	sortPorBugs(d.bugs)
	for key, p := range c.perfIssues {
		if n := p.Count - r.basePerf[key]; n > 0 {
			d.perf = append(d.perf, porPerfDelta{key: key, count: n, issue: *p})
		}
	}
	for key, m := range c.multiRF {
		if n := m.Count - r.baseMulti[key]; n > 0 {
			cm := *m
			cm.Values = append([]string(nil), m.Values...)
			d.multi = append(d.multi, porMultiDelta{key: key, count: n, multi: cm})
		}
	}
	c.porSeenSet.publish(r.fp, d)
}

// sortPorBugs orders a delta's bugs deterministically (map iteration order
// must not leak into published records).
func sortPorBugs(bugs []porBug) {
	for i := 1; i < len(bugs); i++ {
		for j := i; j > 0 && porBugLess(&bugs[j], &bugs[j-1]); j-- {
			bugs[j], bugs[j-1] = bugs[j-1], bugs[j]
		}
	}
}

func porBugLess(a, b *porBug) bool {
	if a.rel != b.rel {
		return a.rel < b.rel
	}
	if a.typ != b.typ {
		return a.typ < b.typ
	}
	return a.msg < b.msg
}

// porApplyHit re-applies a recorded subtree delta at an equivalent crash
// point: the K−1 remaining scenarios are accounted without running, and the
// hit scenario's own recovery is replaced by the owner root's recorded
// contribution (K == 1 hits still skip one recovery re-execution). The hit
// scenario itself already ran (and counted) its prefix live, so only the
// K−1 skipped siblings multiply the prefix costs.
func (c *Checker) porApplyHit(d *porDelta) {
	hitPrefixSteps := c.totalSteps - c.porScenBaseSteps
	var hitPrefix obs.CounterVec
	if c.col != nil {
		hitPrefix = c.col.Counters().Diff(c.porScenBase)
		porClearPrefixDependent(&hitPrefix)
	}
	c.porApply(d, int64(d.scenarios-1), c.chooser.cursor, hitPrefixSteps, hitPrefix, false)
}

// porApply accounts a recorded subtree delta without running the subtree:
// k skipped scenarios, each paying prefixSteps/prefixVec to reach the
// subtree root at choice depth hitDepth, plus the prefix-invariant recovery
// part recorded in d. Crash-time hits pass k = K−1 (the hit scenario is
// physical and measured live); sweep prunes pass k = K with the memoized
// prefix (no scenario of the subtree ever runs). flip marks grafted bug
// prefixes as taking the failure branch at hitDepth−1, where the live
// chooser stays on the continue branch.
func (c *Checker) porApply(d *porDelta, k int64, hitDepth int, prefixSteps int64, prefixVec obs.CounterVec, flip bool) {
	c.scenarios += int(k)
	c.execsPost += d.execs
	stepsApplied := d.steps + k*prefixSteps
	c.totalSteps += stepsApplied
	if d.maxRF > c.maxRF {
		c.maxRF = d.maxRF
	}
	for kind, n := range d.newPoints {
		c.newPoints[kind] += n
	}
	for i := range d.bugs {
		c.porGraftBug(&d.bugs[i], hitDepth, flip)
	}
	for i := range d.perf {
		pd := &d.perf[i]
		if ex, ok := c.perfIssues[pd.key]; ok {
			ex.Count += pd.count
			if pd.issue.Line < ex.Line {
				ex.Line = pd.issue.Line
			}
		} else {
			cp := pd.issue
			cp.Count = pd.count
			c.perfIssues[pd.key] = &cp
		}
	}
	for i := range d.multi {
		md := &d.multi[i]
		cm := md.multi
		cm.Count = md.count
		cm.Values = append([]string(nil), md.multi.Values...)
		c.stats.mergeMultiRF(md.key, &cm)
	}
	if c.col != nil {
		vec := d.vec
		for key := range vec {
			vec[key] += k * prefixVec[key]
		}
		c.col.AddCounters(vec)
		c.col.Add(obs.Steps, stepsApplied)
		c.col.Add(obs.Scenarios, k)
		c.col.Add(obs.ChoicesReplayed, d.replayed+k*int64(hitDepth))
		c.col.Add(obs.ChoicesFresh, d.fresh)
		c.col.NotePeak(obs.PeakChoiceDepth, int64(hitDepth+d.maxRel))
		c.col.NotePeak(obs.PeakRFCandidates, int64(d.maxRF))
		c.col.Add(obs.ScenariosPruned, k)
		c.col.Inc(obs.FingerprintHits)
	}
}

// porGraftBug merges a recorded subtree bug into the live bug index under
// the hit scenario's prefix: the grafted replay vector (hit prefix + owner
// suffix) is a valid reproduction, since equivalent subtrees present
// identical choice structure. With flip set, the prefix's final point — a
// fail decision the live chooser keeps on continue — is rewritten to the
// failure branch the recorded subtree hangs off.
func (c *Checker) porGraftBug(pb *porBug, hitDepth int, flip bool) {
	pts := make([]choicePoint, 0, hitDepth+len(pb.suffix))
	pts = append(pts, c.chooser.points[:hitDepth]...)
	if flip {
		pts[hitDepth-1].idx = 1
	}
	pts = append(pts, pb.suffix...)
	b := &BugReport{
		Type:      pb.typ,
		Message:   pb.msg,
		Execution: pb.exec,
		Scenario:  c.scenarios - 1,
		Count:     pb.count,
		Choices:   describeChoices(pts),
		Trace:     pb.trace,
		replay:    pts,
	}
	if existing, ok := c.bugIndex[b.key()]; ok {
		total := existing.Count + b.Count
		if b.Choices < existing.Choices ||
			(b.Choices == existing.Choices && b.Execution < existing.Execution) {
			*existing = *b
		}
		existing.Count = total
		return
	}
	c.bugIndex[b.key()] = b
	c.bugs = append(c.bugs, b)
	if c.reg != nil {
		c.reg.Emit("bug", "worker", c.workerID, "type", b.Type.String(),
			"message", b.Message, "choices", b.Choices)
	}
}
