package core

import (
	"jaaru/internal/pmem"
)

// Snapshot captures the persistent-memory-relevant state at one failure
// injection point, for use by eager baselines (the Yat reproduction) and by
// state-count accounting.
type Snapshot struct {
	// FP is the failure point index within the pre-failure execution;
	// the end-of-run point has index -1.
	FP int
	// Queues maps each written byte address to its store queue so far
	// (oldest first).
	Queues map[pmem.Addr][]pmem.ByteStore
	// Begins maps each flushed cache line to its writeback lower bound.
	Begins map[pmem.Addr]pmem.Seq
	// HighWater is the allocator's high-water mark at the failure point.
	HighWater pmem.Addr
}

// DirtyLines returns the lines with at least one store after their lower
// writeback bound, sorted.
func (s *Snapshot) DirtyLines() []pmem.Addr {
	seen := make(map[pmem.Addr]bool)
	var out []pmem.Addr
	for a, q := range s.Queues {
		line := a.Line()
		if seen[line] {
			continue
		}
		begin := s.Begins[line]
		for _, bs := range q {
			if bs.Seq > begin {
				seen[line] = true
				out = append(out, line)
				break
			}
		}
	}
	sortAddrSlice(out)
	return out
}

// Cuts returns, for a line, the distinct writeback cut points an eager
// explorer must consider: the lower bound itself plus every store to the
// line after it, in increasing order.
func (s *Snapshot) Cuts(line pmem.Addr) []pmem.Seq {
	begin := s.Begins[line]
	set := map[pmem.Seq]bool{begin: true}
	for off := pmem.Addr(0); off < pmem.CacheLineSize; off++ {
		for _, bs := range s.Queues[line+off] {
			if bs.Seq > begin {
				set[bs.Seq] = true
			}
		}
	}
	out := make([]pmem.Seq, 0, len(set))
	for sq := range set {
		out = append(out, sq)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ByteAt returns the persistent value of byte a if the line containing a
// was last written back at cut: the newest store with σ ≤ cut, or 0 (the
// initial pool contents).
func (s *Snapshot) ByteAt(a pmem.Addr, cut pmem.Seq) byte {
	q := s.Queues[a]
	var v byte
	for _, bs := range q {
		if bs.Seq <= cut {
			v = bs.Val
		} else {
			break
		}
	}
	return v
}

func sortAddrSlice(s []pmem.Addr) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Instrument registers fn to be invoked at every eligible failure injection
// point of the pre-failure execution (including the end-of-run point, with
// FP == -1), with a deep copy of the storage state. Intended to be combined
// with MaxScenarios == 1 so the hook fires exactly once per point.
func (c *Checker) Instrument(fn func(*Snapshot)) {
	c.snapshot = func(fp int) {
		if c.stack.Top().ID != 0 {
			return
		}
		fn(c.takeSnapshot(fp))
	}
}

func (c *Checker) takeSnapshot(fp int) *Snapshot {
	e := c.stack.Top()
	s := &Snapshot{
		FP:        fp,
		Queues:    make(map[pmem.Addr][]pmem.ByteStore),
		Begins:    make(map[pmem.Addr]pmem.Seq),
		HighWater: c.alloc.HighWater(),
	}
	for _, a := range e.TouchedAddrs() {
		// Queue materializes a fresh slice from the arena, so the snapshot
		// owns it outright.
		s.Queues[a] = e.Queue(a)
	}
	for _, line := range e.TouchedLines() {
		if e.LineKnown(line) {
			s.Begins[line] = e.CacheLine(line).Begin
		}
	}
	return s
}

// RunRecoveryOn executes prog.Recover exactly once against a concrete
// post-failure persistent-memory image — the eager exploration strategy of
// Yat. The image maps byte addresses to their persisted values; highWater
// marks the extent of allocated pool memory at the failure. The returned
// result carries any bug the recovery hit.
func RunRecoveryOn(prog Program, opts Options, image map[pmem.Addr]byte, highWater pmem.Addr) *Result {
	o := opts.withDefaults()
	o.MaxFailures = -1 // the disabled sentinel: recovery runs directly
	c := New(Program{Name: prog.Name + "-eager", Run: prog.Recover}, o)
	c.resetScenario()
	c.alloc.Grow(highWater)

	// Materialize the image as execution 0, every line pinned as flushed
	// after its (single) store so recovery loads resolve deterministically.
	e0 := c.stack.Top()
	addrs := make([]pmem.Addr, 0, len(image))
	for a := range image {
		addrs = append(addrs, a)
	}
	sortAddrSlice(addrs)
	for _, a := range addrs {
		e0.Append(a, image[a], c.NextSeq())
	}
	pin := c.NextSeq()
	for _, a := range addrs {
		e0.RaiseLineBegin(a, pin)
	}
	c.stack.Push()

	c.scenarios = 1
	c.runRecoverySegmentOnly()
	return &Result{
		Program:    c.prog.Name,
		Scenarios:  1,
		Executions: 1,
		Steps:      c.totalSteps,
		Bugs:       c.bugs,
		Complete:   true,
	}
}

func (c *Checker) runRecoverySegmentOnly() {
	crashed := c.runSegment(c.prog.Run)
	if crashed {
		panic(engineError{"failure injected during eager recovery run"})
	}
}
