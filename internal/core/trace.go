package core

import (
	"fmt"

	"jaaru/internal/pmem"
)

// TraceOp is one recorded guest operation for bug reports.
type TraceOp struct {
	Thread int
	Kind   string
	Addr   pmem.Addr
	Size   int
	Val    uint64
}

func (o TraceOp) String() string {
	switch o.Kind {
	case "sfence", "mfence":
		return fmt.Sprintf("T%d %s", o.Thread, o.Kind)
	case "clflush", "clflushopt":
		return fmt.Sprintf("T%d %s %v", o.Thread, o.Kind, o.Addr)
	default:
		return fmt.Sprintf("T%d %s %v/%d = %#x", o.Thread, o.Kind, o.Addr, o.Size, o.Val)
	}
}

// traceRing keeps the last N operations of the current scenario.
type traceRing struct {
	buf  []TraceOp
	next int
	full bool
}

func newTraceRing(n int) *traceRing { return &traceRing{buf: make([]TraceOp, n)} }

func (r *traceRing) reset() { r.next = 0; r.full = false }

func (r *traceRing) add(op TraceOp) {
	r.buf[r.next] = op
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// snapshot returns the recorded operations oldest-first.
func (r *traceRing) snapshot() []TraceOp {
	if !r.full {
		out := make([]TraceOp, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]TraceOp, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// snapshotInto is snapshot appending into a caller-provided buffer (the
// snapshot-entry free list reuses it, so a warmed capture allocates nothing).
func (r *traceRing) snapshotInto(out []TraceOp) []TraceOp {
	if !r.full {
		return append(out, r.buf[:r.next]...)
	}
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// restore rewinds the ring to hold exactly the given operations (a prior
// snapshot of length <= len(buf)), oldest-first — used when a scenario
// resumes from a captured snapshot instead of re-running its prefix.
func (r *traceRing) restore(ops []TraceOp) {
	r.reset()
	for _, op := range ops {
		r.add(op)
	}
}

func (c *Checker) traceOp(threadID int, kind string, a pmem.Addr, size int, val uint64) {
	if c.wrec != nil {
		// The forensics recorder keeps the full, never-truncated operation
		// list independently of the ring buffer.
		c.wrec.noteOp(threadID, kind, a, size, val)
	}
	if c.trace == nil {
		return
	}
	c.trace.add(TraceOp{Thread: threadID, Kind: kind, Addr: a, Size: size, Val: val})
}
