package core

import (
	"fmt"
	"sort"
	"testing"
)

// With EvictExplore, store-buffer eviction is a model-checking choice
// point (Figure 11): the classic SB litmus test must then exhibit every
// TSO-legal outcome — not just the one a fixed schedule or policy picks.
func TestEvictExploreSBLitmus(t *testing.T) {
	seen := make(map[string]bool)
	prog := Program{
		Name: "sb-explore",
		Run: func(c *Context) {
			x := c.Alloc(8, 64)
			y := c.Alloc(8, 64)
			start := c.Alloc(8, 8)
			var r1, r2 uint64
			h1 := c.Spawn(func(c *Context) {
				for c.Load64(start) == 0 {
				}
				c.Store64(x, 1)
				r1 = c.Load64(y)
			})
			h2 := c.Spawn(func(c *Context) {
				for c.Load64(start) == 0 {
				}
				c.Store64(y, 1)
				r2 = c.Load64(x)
			})
			c.Store64(start, 1)
			c.Mfence() // make the start flag visible under any eviction choice
			h1.Join(c)
			h2.Join(c)
			seen[fmt.Sprintf("r1=%d r2=%d", r1, r2)] = true
		},
	}
	res := New(prog, Options{Eviction: EvictExplore}).Run()
	if res.Buggy() {
		t.Fatalf("bugs: %v", res.Bugs)
	}
	var got []string
	for k := range seen {
		got = append(got, k)
	}
	sort.Strings(got)
	want := []string{"r1=0 r2=0", "r1=0 r2=1", "r1=1 r2=0", "r1=1 r2=1"}
	if len(got) != len(want) {
		t.Fatalf("outcomes = %v, want all four TSO-legal results %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("outcomes = %v, want %v", got, want)
		}
	}
}

// A single thread must never observe its own stores out of order, no
// matter the eviction choices (TSO total store order + bypassing).
func TestEvictExploreSingleThreadCoherence(t *testing.T) {
	prog := Program{
		Name: "coherence-explore",
		Run: func(c *Context) {
			a := c.Alloc(16, 8)
			c.Store64(a, 1)
			c.Store64(a.Add(8), 2)
			v1 := c.Load64(a)
			v2 := c.Load64(a.Add(8))
			c.Assert(v1 == 1 && v2 == 2, "own stores reordered: %d %d", v1, v2)
			c.Store64(a, 3)
			c.Assert(c.Load64(a) == 3, "stale read after overwrite")
		},
	}
	res := New(prog, Options{Eviction: EvictExplore}).Run()
	if res.Buggy() {
		t.Fatalf("bugs: %v", res.Bugs)
	}
	if res.Scenarios < 2 {
		t.Errorf("eviction choices not explored: %d scenarios", res.Scenarios)
	}
}

// Eviction choices compose with failure injection: a store still in the
// buffer at the failure point is lost; an evicted one may persist. The
// persistency behaviour set must match the eager-policy run (eviction
// timing must not change WHAT can persist, only when the SB empties).
func TestEvictExploreMatchesEagerBehaviours(t *testing.T) {
	build := func(evict EvictionPolicy, obs func(string)) *Result {
		prog := Program{
			Name: "evict-vs-eager",
			Run: func(c *Context) {
				r := c.Root()
				c.Store64(r, 1)
				c.Clflush(r, 8)
				c.Store64(r.Add(8), 2)
			},
			Recover: func(c *Context) {
				obs(fmt.Sprintf("a=%d b=%d", c.Load64(c.Root()), c.Load64(c.Root().Add(8))))
			},
		}
		return New(prog, Options{Eviction: evict}).Run()
	}
	collect := func(evict EvictionPolicy) []string {
		seen := make(map[string]bool)
		res := build(evict, func(s string) { seen[s] = true })
		if res.Buggy() {
			t.Fatalf("bugs: %v", res.Bugs)
		}
		var out []string
		for k := range seen {
			out = append(out, k)
		}
		sort.Strings(out)
		return out
	}
	eager, explore := collect(EvictEager), collect(EvictExplore)
	if len(eager) != len(explore) {
		t.Fatalf("behaviour sets differ:\n eager   %v\n explore %v", eager, explore)
	}
	for i := range eager {
		if eager[i] != explore[i] {
			t.Fatalf("behaviour sets differ:\n eager   %v\n explore %v", eager, explore)
		}
	}
}
