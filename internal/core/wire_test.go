package core

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"jaaru/internal/obs"
)

// TestWireClaimRoundTripProperty: randomized chooser claims — frozen donated
// prefixes, residuals with partial limits, POR-clamped fail decisions, and
// failMemo aux state — survive encode -> JSON -> decode -> compile exactly.
func TestWireClaimRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0x1a52))
	kinds := []choiceKind{chooseFail, chooseReadFrom, chooseEvict}
	for iter := 0; iter < 1000; iter++ {
		depth := rng.Intn(8)
		pts := make([]choicePoint, depth)
		var limits []int
		memos := make([]*failMemo, depth)
		residual := rng.Intn(2) == 0
		if residual {
			limits = make([]int, depth)
		}
		anyMemo := false
		for i := range pts {
			kind := kinds[rng.Intn(len(kinds))]
			n := 1 + rng.Intn(5)
			if kind == chooseFail {
				n = 2 // fail decisions are binary
			}
			idx := rng.Intn(n)
			pts[i] = choicePoint{kind: kind, n: n, idx: idx}
			if residual {
				// idx < limit <= n; for a clamped fail decision the limit
				// equals idx+1 (the sibling was pruned by POR and its delta
				// already committed).
				limits[i] = idx + 1 + rng.Intn(n-idx)
				if kind == chooseFail && idx == 0 && rng.Intn(3) == 0 {
					limits[i] = 1 // POR clamp
				}
			}
			if kind == chooseFail && rng.Intn(2) == 0 {
				m := &failMemo{fp: rng.Uint64(), steps: rng.Int63n(1 << 20)}
				if rng.Intn(2) == 0 {
					m.vec[obs.Scenarios] = rng.Int63n(100)
					m.vec[obs.Steps] = rng.Int63n(10000)
				}
				memos[i] = m
				anyMemo = true
			}
		}
		if !anyMemo {
			memos = nil
		}

		w := encodeClaim(pts, limits, memos)
		data, err := json.Marshal(w)
		if err != nil {
			t.Fatalf("iter %d: marshal: %v", iter, err)
		}
		var back WireClaim
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("iter %d: unmarshal: %v", iter, err)
		}
		gp, gl, gm, err := back.compile()
		if err != nil {
			t.Fatalf("iter %d: compile: %v\nclaim: %s", iter, err, data)
		}
		if !reflect.DeepEqual(gp, pts) && !(len(gp) == 0 && len(pts) == 0) {
			t.Fatalf("iter %d: points differ:\nwant %v\ngot  %v", iter, pts, gp)
		}
		if !reflect.DeepEqual(gl, limits) && !(len(gl) == 0 && len(limits) == 0) {
			t.Fatalf("iter %d: limits differ:\nwant %v\ngot  %v", iter, limits, gl)
		}
		wantMemos := memos
		if !anyMemo {
			wantMemos = nil
		}
		if !reflect.DeepEqual(gm, wantMemos) && !(len(gm) == 0 && len(wantMemos) == 0) {
			t.Fatalf("iter %d: memos differ:\nwant %v\ngot  %v", iter, wantMemos, gm)
		}
	}
}

// TestWireClaimSeedClaimRoundTrip: a decoded claim seeds a chooser whose
// immediate claimSnapshot re-encodes to the identical wire form — the
// exactness residual commits and expiry-requeues depend on.
func TestWireClaimSeedClaimRoundTrip(t *testing.T) {
	pts := []choicePoint{
		{kind: chooseFail, n: 2, idx: 0},
		{kind: chooseReadFrom, n: 4, idx: 1},
		{kind: chooseFail, n: 2, idx: 0},
		{kind: chooseEvict, n: 3, idx: 2},
	}
	limits := []int{1, 3, 2, 3} // first fail decision POR-clamped
	memos := make([]*failMemo, len(pts))
	memos[2] = &failMemo{fp: 0xfeedface, steps: 321}
	w := encodeClaim(pts, limits, memos)

	gp, gl, gm, err := w.compile()
	if err != nil {
		t.Fatal(err)
	}
	ch := &chooser{}
	ch.seedClaim(gp, gl, gm)
	rp, rl, rm := ch.claimSnapshot()
	if again := encodeClaim(rp, rl, rm); !reflect.DeepEqual(again, w) {
		t.Errorf("claimSnapshot re-encode differs:\nwant %+v\ngot  %+v", w, again)
	}
}

func TestWireClaimCompileRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		w    WireClaim
	}{
		{"unknown kind", WireClaim{Points: []WirePoint{{Kind: "coin", N: 2, Idx: 0}}}},
		{"idx out of range", WireClaim{Points: []WirePoint{{Kind: "rf", N: 2, Idx: 2}}}},
		{"negative idx", WireClaim{Points: []WirePoint{{Kind: "rf", N: 2, Idx: -1}}}},
		{"zero n", WireClaim{Points: []WirePoint{{Kind: "fail", N: 0, Idx: 0}}}},
		{"limit count mismatch", WireClaim{Points: []WirePoint{{Kind: "rf", N: 2, Idx: 0}}, Limits: []int{1, 2}}},
		{"limit below idx", WireClaim{Points: []WirePoint{{Kind: "rf", N: 3, Idx: 2}}, Limits: []int{2}}},
		{"limit above n", WireClaim{Points: []WirePoint{{Kind: "rf", N: 3, Idx: 0}}, Limits: []int{4}}},
		{"memo count mismatch", WireClaim{Points: []WirePoint{{Kind: "fail", N: 2, Idx: 0}}, Memos: []*WireMemo{nil, {}}}},
		{"memo on non-fail point", WireClaim{Points: []WirePoint{{Kind: "rf", N: 2, Idx: 0}}, Memos: []*WireMemo{{FP: 1}}}},
		{"memo vec length", WireClaim{Points: []WirePoint{{Kind: "fail", N: 2, Idx: 0}}, Memos: []*WireMemo{{FP: 1, Vec: []int64{1, 2}}}}},
	}
	for _, tc := range cases {
		if err := tc.w.Validate(); err == nil {
			t.Errorf("%s: compiled without error", tc.name)
		}
	}
}

// TestWireGoldenFixture freezes the JSON wire format. A diff here means the
// protocol changed: coordinator and workers from different builds would stop
// interoperating, so bump deliberately (and update the fixture with
// UPDATE_GOLDEN=1 go test ./internal/core/ -run TestWireGoldenFixture).
func TestWireGoldenFixture(t *testing.T) {
	pts := []choicePoint{
		{kind: chooseFail, n: 2, idx: 0},
		{kind: chooseReadFrom, n: 4, idx: 1},
		{kind: chooseFail, n: 2, idx: 0},
		{kind: chooseEvict, n: 3, idx: 2},
	}
	limits := []int{1, 3, 2, 3}
	memos := make([]*failMemo, len(pts))
	var vec obs.CounterVec
	vec[obs.Scenarios] = 3
	vec[obs.Steps] = 512
	memos[2] = &failMemo{fp: 0xfeedface, steps: 321, vec: vec}

	fixture := struct {
		Claim  WireClaim      `json:"claim"`
		Frozen WireClaim      `json:"frozen"`
		Stats  WireStats      `json:"stats"`
		Por    []WirePorEntry `json:"por"`
	}{
		Claim:  encodeClaim(pts, limits, memos),
		Frozen: encodeFrozenClaim(pts[:2]),
		Stats: WireStats{
			Scenarios:  7,
			ExecsPost:  7,
			FpointsPre: 5,
			Steps:      910,
			MaxRF:      3,
			NewPoints:  [3]int{4, 2, 1},
			Bugs: []WireBug{{
				Type:      int(BugAssertion),
				Message:   "second line persisted before first",
				Execution: 1,
				Scenario:  4,
				Count:     2,
				Choices:   "fail@3",
				Replay:    encodePoints(pts[:1]),
			}},
			MultiRF:    []MultiRF{{Loc: "probe.go:12", Count: 2, Values: []string{"7", "9"}}},
			PerfIssues: []PerfIssue{{Kind: PerfRedundantFlush, Loc: "probe.go:20", Count: 1}},
			Obs: &WireObs{Counters: []int64{7, 7}, Peaks: []int64{2},
				Hists: []WireHist{{
					Timer: int(obs.TimerPreFailure), Count: 2, Sum: 300,
					Buckets: [][2]int64{
						{int64(obs.HistBucketIndex(100)), 1},
						{int64(obs.HistBucketIndex(200)), 1},
					},
				}}},
		},
		Por: []WirePorEntry{{
			FP: 0xabcdef12,
			Delta: WirePorDelta{
				Scenarios: 2, Execs: 2, Steps: 64, MaxRF: 2, MaxRel: 1,
				NewPoints: [3]int{1, 1, 0}, Replayed: 10, Fresh: 54,
			},
		}},
	}

	got, err := json.MarshalIndent(fixture, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "wire_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("wire format drifted from golden fixture %s:\n--- want\n%s\n--- got\n%s", path, want, got)
	}
}

// TestWireStatsCompileMergesLikeParallel: a compiled WireStats folds into an
// aggregate through the same mergeBug/mergeMultiRF paths the in-process
// parallel driver uses — duplicate bug keys sum counts and keep the
// canonically smallest representative.
func TestWireStatsCompileMergesLikeParallel(t *testing.T) {
	ws := &WireStats{
		Scenarios: 3,
		Bugs: []WireBug{
			{Type: int(BugExplicit), Message: "m", Execution: 1, Count: 2, Choices: "b"},
			{Type: int(BugExplicit), Message: "m", Execution: 1, Count: 1, Choices: "a"},
		},
		MultiRF:    []MultiRF{{Loc: "x.go:1", Count: 1, Values: []string{"1"}}},
		PerfIssues: []PerfIssue{{Kind: PerfRedundantFlush, Loc: "x.go:2", Count: 2}},
	}
	s, err := compileStats(ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.bugs) != 1 {
		t.Fatalf("bugs = %d, want 1 (same canonical key)", len(s.bugs))
	}
	for _, b := range s.bugs {
		if b.Count != 3 {
			t.Errorf("merged Count = %d, want 3", b.Count)
		}
		if b.Choices != "a" {
			t.Errorf("representative Choices = %q, want the canonically smallest %q", b.Choices, "a")
		}
	}
	if len(s.multiRF) != 1 || len(s.perfIssues) != 1 {
		t.Errorf("multiRF/perf = %d/%d entries, want 1/1", len(s.multiRF), len(s.perfIssues))
	}
}

// TestWireStatsValidateRejectsMalformed: the coordinator validates every
// commit's cumulative stats at ingest; Validate must catch each class of
// malformation its later unchecked Absorb would otherwise swallow.
func TestWireStatsValidateRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		ws   WireStats
	}{
		{"negative scenarios", WireStats{Scenarios: -1}},
		{"negative execs", WireStats{ExecsPost: -2}},
		{"bad replay point", WireStats{Bugs: []WireBug{{Replay: []WirePoint{{Kind: "coin", N: 2}}}}}},
		{"obs counter width", WireStats{Obs: &WireObs{Counters: []int64{1, 2}}}},
		{"hist timer range", WireStats{Obs: &WireObs{Counters: make([]int64, obs.NumCounters),
			Hists: []WireHist{{Timer: obs.NumTimers, Count: 0}}}}},
		{"hist bucket order", WireStats{Obs: &WireObs{Counters: make([]int64, obs.NumCounters),
			Hists: []WireHist{{Timer: 0, Count: 2, Buckets: [][2]int64{{5, 1}, {5, 1}}}}}}},
		{"hist bucket range", WireStats{Obs: &WireObs{Counters: make([]int64, obs.NumCounters),
			Hists: []WireHist{{Timer: 0, Count: 1, Buckets: [][2]int64{{int64(obs.NumHistBuckets), 1}}}}}}},
		{"hist count mismatch", WireStats{Obs: &WireObs{Counters: make([]int64, obs.NumCounters),
			Hists: []WireHist{{Timer: 0, Count: 3, Buckets: [][2]int64{{5, 1}}}}}}},
		{"hist negative bucket count", WireStats{Obs: &WireObs{Counters: make([]int64, obs.NumCounters),
			Hists: []WireHist{{Timer: 0, Count: -1, Buckets: [][2]int64{{5, -1}}}}}}},
	}
	for _, tc := range cases {
		if err := tc.ws.Validate(); err == nil {
			t.Errorf("%s: Validate accepted malformed stats", tc.name)
		}
	}
	good := WireStats{Scenarios: 3}
	if err := good.Validate(); err != nil {
		t.Errorf("valid stats rejected: %v", err)
	}
}
