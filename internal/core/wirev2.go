package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"jaaru/internal/pmem"
)

// Wire codec v2: a length-prefixed binary encoding of the core wire types,
// negotiated per connection by internal/dist with transparent fallback to
// the frozen JSON v1 (the two codecs carry identical values; only the byte
// representation differs, which the cross-version round-trip tests pin).
//
// Layout rules:
//
//   - Unsigned lengths/counts are LEB128 uvarints; signed values are
//     zigzag varints (so small magnitudes of either sign stay 1-2 bytes).
//   - Strings and byte blobs are uvarint length + raw bytes.
//   - Fingerprints (hash-distributed 64-bit values) are fixed 8-byte
//     little-endian: a uvarint of a uniformly random uint64 averages over
//     9 bytes, so varinting them is a pessimization.
//   - Choice-point streams are prefix-interned per message: each stream
//     encodes the length of its common prefix with the previous stream the
//     same encoder emitted, then only the new points. Claims in a batch,
//     residual snapshots, and bug replay vectors share long prefixes by
//     construction, so this is where most of the wire bytes go away.
//   - Counter/peak vectors and histograms ship sparse: (index, value)
//     pairs for the populated entries against the fixed layouts of
//     obs.CounterVec / obs.Histogram. The original vector length travels
//     too, so decode rebuilds the exact slice (the JSON fixtures are not
//     all full-width and round-trips must be bit-exact).
//
// Encoder and decoder must walk the same field sequence; there is no
// self-describing framing below the message level. internal/dist frames
// whole protocol messages with a 2-byte magic and a message-kind byte.

// wireKindCode maps the three choice kinds to stable one-byte codes; any
// other string (malformed or future) travels escaped, so the codec never
// corrupts values it does not understand.
const wireKindEscape = 0xff

func wireKindCode(kind string) (byte, bool) {
	switch kind {
	case "fail":
		return 0, true
	case "rf":
		return 1, true
	case "evict":
		return 2, true
	}
	return 0, false
}

func wireKindName(code byte) (string, bool) {
	switch code {
	case 0:
		return "fail", true
	case 1:
		return "rf", true
	case 2:
		return "evict", true
	}
	return "", false
}

// WireEncoder serializes core wire types into one codec-v2 message. The
// zero value is not usable; construct with NewWireEncoder. Buffers may be
// reused across messages via Reset (pooling them is the caller's business).
type WireEncoder struct {
	buf  []byte
	prev []WirePoint // interning context: the previous point stream
}

// NewWireEncoder returns an encoder appending to buf (nil is fine).
func NewWireEncoder(buf []byte) *WireEncoder {
	return &WireEncoder{buf: buf[:0]}
}

// Bytes returns the encoded message so far (valid until the next Reset).
func (e *WireEncoder) Bytes() []byte { return e.buf }

// Reset clears the buffer and the interning context for a new message.
func (e *WireEncoder) Reset() {
	e.buf = e.buf[:0]
	e.prev = nil
}

// Uvarint appends an unsigned LEB128 varint.
func (e *WireEncoder) Uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// Varint appends a zigzag-encoded signed varint.
func (e *WireEncoder) Varint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

// Int appends an int as a zigzag varint.
func (e *WireEncoder) Int(v int) { e.Varint(int64(v)) }

// Bool appends one byte (0/1).
func (e *WireEncoder) Bool(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Byte appends one raw byte (message-kind tags and presence markers).
func (e *WireEncoder) Byte(b byte) { e.buf = append(e.buf, b) }

// Fixed64 appends a fixed 8-byte little-endian value (fingerprints).
func (e *WireEncoder) Fixed64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// String appends a length-prefixed string.
func (e *WireEncoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Blob appends a length-prefixed byte slice (embedded JSON sub-documents:
// job options travel as v1 JSON inside a v2 frame, because they evolve and
// are nowhere near the hot path).
func (e *WireEncoder) Blob(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Points appends a choice-point stream, interned against the previous
// stream this encoder emitted: shared-prefix length, then the new points.
func (e *WireEncoder) Points(pts []WirePoint) {
	shared := 0
	for shared < len(pts) && shared < len(e.prev) && pts[shared] == e.prev[shared] {
		shared++
	}
	e.Uvarint(uint64(len(pts)))
	e.Uvarint(uint64(shared))
	for _, p := range pts[shared:] {
		if code, ok := wireKindCode(p.Kind); ok {
			e.Byte(code)
		} else {
			e.Byte(wireKindEscape)
			e.String(p.Kind)
		}
		e.Int(p.N)
		e.Int(p.Idx)
	}
	e.prev = pts
}

// sparseVec appends an int64 vector as explicit length plus sparse
// (index, value) pairs.
func (e *WireEncoder) sparseVec(v []int64) {
	e.Uvarint(uint64(len(v)))
	nz := 0
	for _, x := range v {
		if x != 0 {
			nz++
		}
	}
	e.Uvarint(uint64(nz))
	for i, x := range v {
		if x != 0 {
			e.Uvarint(uint64(i))
			e.Varint(x)
		}
	}
}

// Claim appends one WireClaim.
func (e *WireEncoder) Claim(w WireClaim) {
	e.Points(w.Points)
	if w.Limits == nil {
		e.Bool(false)
	} else {
		e.Bool(true)
		e.Uvarint(uint64(len(w.Limits)))
		for _, lim := range w.Limits {
			e.Int(lim)
		}
	}
	if w.Memos == nil {
		e.Bool(false)
	} else {
		e.Bool(true)
		e.Uvarint(uint64(len(w.Memos)))
		for _, m := range w.Memos {
			if m == nil {
				e.Bool(false)
				continue
			}
			e.Bool(true)
			e.Fixed64(m.FP)
			e.Varint(m.Steps)
			if m.Vec == nil {
				e.Bool(false)
			} else {
				e.Bool(true)
				e.sparseVec(m.Vec)
			}
		}
	}
}

// Claims appends a claim batch.
func (e *WireEncoder) Claims(ws []WireClaim) {
	e.Uvarint(uint64(len(ws)))
	for _, w := range ws {
		e.Claim(w)
	}
}

func (e *WireEncoder) trace(ops []TraceOp) {
	e.Uvarint(uint64(len(ops)))
	for _, op := range ops {
		e.Int(op.Thread)
		e.String(op.Kind)
		e.Uvarint(uint64(op.Addr))
		e.Int(op.Size)
		e.Uvarint(op.Val)
	}
}

func (e *WireEncoder) multiRF(m *MultiRF) {
	e.String(m.Loc)
	e.Uvarint(uint64(m.Addr))
	e.Int(m.Candidates)
	e.Uvarint(uint64(len(m.Values)))
	for _, v := range m.Values {
		e.String(v)
	}
	e.Int(m.Count)
}

func (e *WireEncoder) perfIssue(p *PerfIssue) {
	e.Int(int(p.Kind))
	e.String(p.Loc)
	e.Uvarint(uint64(p.Line))
	e.Int(p.Count)
}

func (e *WireEncoder) hist(h *WireHist) {
	e.Int(h.Timer)
	e.Varint(h.Count)
	e.Varint(h.Sum)
	e.Uvarint(uint64(len(h.Buckets)))
	prev := int64(0)
	for i, b := range h.Buckets {
		if i == 0 {
			e.Varint(b[0])
		} else {
			e.Varint(b[0] - prev) // gap-encoded ascending indexes
		}
		prev = b[0]
		e.Varint(b[1])
	}
}

func (e *WireEncoder) obsShard(wo *WireObs) {
	if wo == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	e.sparseVec(wo.Counters)
	e.sparseVec(wo.Peaks)
	e.Uvarint(uint64(len(wo.Hists)))
	for i := range wo.Hists {
		e.hist(&wo.Hists[i])
	}
}

// Stats appends a WireStats (nil encodes as an absence marker).
func (e *WireEncoder) Stats(ws *WireStats) {
	if ws == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	e.Int(ws.Scenarios)
	e.Int(ws.ExecsPost)
	e.Int(ws.FpointsPre)
	e.Varint(ws.Steps)
	e.Int(ws.MaxRF)
	for _, n := range ws.NewPoints {
		e.Int(n)
	}
	e.Bool(ws.Truncated)
	e.Uvarint(uint64(len(ws.Bugs)))
	for i := range ws.Bugs {
		b := &ws.Bugs[i]
		e.Int(b.Type)
		e.String(b.Message)
		e.Int(b.Execution)
		e.Int(b.Scenario)
		e.Int(b.Count)
		e.String(b.Choices)
		e.trace(b.Trace)
		e.Points(b.Replay)
	}
	e.Uvarint(uint64(len(ws.MultiRF)))
	for i := range ws.MultiRF {
		e.multiRF(&ws.MultiRF[i])
	}
	e.Uvarint(uint64(len(ws.PerfIssues)))
	for i := range ws.PerfIssues {
		e.perfIssue(&ws.PerfIssues[i])
	}
	e.obsShard(ws.Obs)
}

// PorEntries appends a POR publication-log batch.
func (e *WireEncoder) PorEntries(es []WirePorEntry) {
	e.Uvarint(uint64(len(es)))
	for i := range es {
		en := &es[i]
		e.Fixed64(en.FP)
		d := &en.Delta
		e.Int(d.Scenarios)
		e.Int(d.Execs)
		e.Varint(d.Steps)
		e.Int(d.MaxRF)
		e.Int(d.MaxRel)
		for _, n := range d.NewPoints {
			e.Int(n)
		}
		e.Varint(d.Replayed)
		e.Varint(d.Fresh)
		if d.Vec == nil {
			e.Bool(false)
		} else {
			e.Bool(true)
			e.sparseVec(d.Vec)
		}
		e.Uvarint(uint64(len(d.Bugs)))
		for j := range d.Bugs {
			b := &d.Bugs[j]
			e.Int(b.Type)
			e.String(b.Message)
			e.Int(b.Exec)
			e.Int(b.Count)
			e.String(b.Rel)
			e.Points(b.Suffix)
			e.trace(b.Trace)
		}
		e.Uvarint(uint64(len(d.Perf)))
		for j := range d.Perf {
			e.Int(d.Perf[j].Count)
			e.perfIssue(&d.Perf[j].Issue)
		}
		e.Uvarint(uint64(len(d.Multi)))
		for j := range d.Multi {
			e.Int(d.Multi[j].Count)
			e.multiRF(&d.Multi[j].Multi)
		}
	}
}

// WireDecoder is the mirror of WireEncoder: it walks the same field
// sequence over an encoded message. Errors are sticky — after the first
// malformed field every getter returns zero values and Err reports the
// failure — so call sites read fields linearly and check once at the end.
type WireDecoder struct {
	data []byte
	off  int
	err  error
	prev []WirePoint
}

// NewWireDecoder returns a decoder over data.
func NewWireDecoder(data []byte) *WireDecoder {
	return &WireDecoder{data: data}
}

// Err reports the first decode error (nil if none so far).
func (d *WireDecoder) Err() error { return d.err }

// Done verifies the message was fully consumed with no errors.
func (d *WireDecoder) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.data) {
		return fmt.Errorf("wirev2: %d trailing bytes", len(d.data)-d.off)
	}
	return nil
}

func (d *WireDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wirev2: "+format, args...)
	}
}

// Uvarint reads an unsigned varint.
func (d *WireDecoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail("truncated uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Varint reads a zigzag-encoded signed varint.
func (d *WireDecoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.fail("truncated varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Int reads a zigzag varint as an int, rejecting values outside int range.
func (d *WireDecoder) Int() int {
	v := d.Varint()
	if v > math.MaxInt || v < math.MinInt {
		d.fail("varint %d overflows int", v)
		return 0
	}
	return int(v)
}

// Bool reads one byte as a bool.
func (d *WireDecoder) Bool() bool {
	return d.Byte() != 0
}

// Byte reads one raw byte.
func (d *WireDecoder) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.data) {
		d.fail("truncated byte at offset %d", d.off)
		return 0
	}
	b := d.data[d.off]
	d.off++
	return b
}

// Fixed64 reads a fixed 8-byte little-endian value.
func (d *WireDecoder) Fixed64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.data) {
		d.fail("truncated fixed64 at offset %d", d.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.data[d.off:])
	d.off += 8
	return v
}

// length reads a collection length and bounds it by the bytes remaining
// (every element costs at least min bytes), so malformed input cannot force
// huge allocations.
func (d *WireDecoder) length(min int) int {
	v := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if v > uint64((len(d.data)-d.off)/min+1) {
		d.fail("implausible length %d at offset %d", v, d.off)
		return 0
	}
	return int(v)
}

// String reads a length-prefixed string.
func (d *WireDecoder) String() string {
	n := d.length(1)
	if d.err != nil || n == 0 {
		return ""
	}
	if d.off+n > len(d.data) {
		d.fail("truncated string at offset %d", d.off)
		return ""
	}
	s := string(d.data[d.off : d.off+n])
	d.off += n
	return s
}

// Blob reads a length-prefixed byte slice (nil when empty).
func (d *WireDecoder) Blob() []byte {
	n := d.length(1)
	if d.err != nil || n == 0 {
		return nil
	}
	if d.off+n > len(d.data) {
		d.fail("truncated blob at offset %d", d.off)
		return nil
	}
	b := append([]byte(nil), d.data[d.off:d.off+n]...)
	d.off += n
	return b
}

// Points reads a prefix-interned choice-point stream.
func (d *WireDecoder) Points() []WirePoint {
	// Not d.length: shared points cost zero wire bytes, so the generic
	// at-least-one-byte-per-element plausibility bound would reject valid
	// streams whose prefix is mostly interned (deep split claims at the tail
	// of a lease grant). Bound the fresh tail instead — each non-shared
	// point costs at least 3 bytes (kind byte plus two varints) — and the
	// shared head by the already-validated previous stream.
	n := int(d.Uvarint())
	shared := int(d.Uvarint())
	if d.err != nil {
		return nil
	}
	if shared > n || shared > len(d.prev) {
		d.fail("shared prefix %d exceeds stream (%d) or context (%d)", shared, n, len(d.prev))
		return nil
	}
	if n-shared > (len(d.data)-d.off)/3+1 {
		d.fail("implausible point stream %d (shared %d) at offset %d", n, shared, d.off)
		return nil
	}
	if n == 0 {
		d.prev = nil
		return nil
	}
	pts := make([]WirePoint, n)
	copy(pts, d.prev[:shared])
	for i := shared; i < n; i++ {
		code := d.Byte()
		var kind string
		if code == wireKindEscape {
			kind = d.String()
		} else {
			var ok bool
			if kind, ok = wireKindName(code); !ok {
				d.fail("unknown point kind code %d", code)
				return nil
			}
		}
		pts[i] = WirePoint{Kind: kind, N: d.Int(), Idx: d.Int()}
	}
	if d.err != nil {
		return nil
	}
	d.prev = pts
	return pts
}

// sparseVec reads an explicit-length sparse int64 vector.
func (d *WireDecoder) sparseVec() []int64 {
	width := d.Uvarint()
	if d.err != nil {
		return nil
	}
	// The width is a logical vector size (obs.NumCounters-scale), not a
	// byte count; cap it well above any real vector to bound allocation.
	if width > 1<<16 {
		d.fail("implausible vector width %d", width)
		return nil
	}
	nz := d.length(2)
	if d.err != nil {
		return nil
	}
	v := make([]int64, width)
	for i := 0; i < nz; i++ {
		idx := d.Uvarint()
		val := d.Varint()
		if d.err != nil {
			return nil
		}
		if idx >= width {
			d.fail("sparse index %d out of width %d", idx, width)
			return nil
		}
		v[idx] = val
	}
	return v
}

// Claim reads one WireClaim.
func (d *WireDecoder) Claim() WireClaim {
	var w WireClaim
	w.Points = d.Points()
	if d.Bool() {
		n := d.length(1)
		w.Limits = make([]int, n)
		for i := range w.Limits {
			w.Limits[i] = d.Int()
		}
	}
	if d.Bool() {
		n := d.length(1)
		w.Memos = make([]*WireMemo, n)
		for i := range w.Memos {
			if !d.Bool() {
				continue
			}
			m := &WireMemo{FP: d.Fixed64(), Steps: d.Varint()}
			if d.Bool() {
				m.Vec = d.sparseVec()
			}
			w.Memos[i] = m
		}
	}
	return w
}

// Claims reads a claim batch (nil when empty).
func (d *WireDecoder) Claims() []WireClaim {
	n := d.length(1)
	if d.err != nil || n == 0 {
		return nil
	}
	ws := make([]WireClaim, n)
	for i := range ws {
		ws[i] = d.Claim()
	}
	return ws
}

func (d *WireDecoder) trace() []TraceOp {
	n := d.length(1)
	if d.err != nil || n == 0 {
		return nil
	}
	ops := make([]TraceOp, n)
	for i := range ops {
		ops[i] = TraceOp{
			Thread: d.Int(),
			Kind:   d.String(),
			Addr:   pmem.Addr(d.Uvarint()),
			Size:   d.Int(),
			Val:    d.Uvarint(),
		}
	}
	return ops
}

func (d *WireDecoder) multiRF() MultiRF {
	m := MultiRF{
		Loc:        d.String(),
		Addr:       pmem.Addr(d.Uvarint()),
		Candidates: d.Int(),
	}
	if n := d.length(1); n > 0 && d.err == nil {
		m.Values = make([]string, n)
		for i := range m.Values {
			m.Values[i] = d.String()
		}
	}
	m.Count = d.Int()
	return m
}

func (d *WireDecoder) perfIssue() PerfIssue {
	return PerfIssue{
		Kind:  PerfIssueKind(d.Int()),
		Loc:   d.String(),
		Line:  pmem.Addr(d.Uvarint()),
		Count: d.Int(),
	}
}

func (d *WireDecoder) hist() WireHist {
	h := WireHist{Timer: d.Int(), Count: d.Varint(), Sum: d.Varint()}
	n := d.length(2)
	if d.err != nil || n == 0 {
		return h
	}
	h.Buckets = make([][2]int64, n)
	prev := int64(0)
	for i := range h.Buckets {
		gap := d.Varint()
		idx := prev + gap
		if i == 0 {
			idx = gap
		}
		prev = idx
		h.Buckets[i] = [2]int64{idx, d.Varint()}
	}
	return h
}

func (d *WireDecoder) obsShard() *WireObs {
	if !d.Bool() {
		return nil
	}
	wo := &WireObs{Counters: d.sparseVec(), Peaks: d.sparseVec()}
	n := d.length(1)
	if d.err != nil {
		return wo
	}
	for i := 0; i < n; i++ {
		wo.Hists = append(wo.Hists, d.hist())
	}
	return wo
}

// Stats reads a WireStats (nil when the absence marker was encoded).
func (d *WireDecoder) Stats() *WireStats {
	if !d.Bool() {
		return nil
	}
	ws := &WireStats{
		Scenarios:  d.Int(),
		ExecsPost:  d.Int(),
		FpointsPre: d.Int(),
		Steps:      d.Varint(),
		MaxRF:      d.Int(),
	}
	for i := range ws.NewPoints {
		ws.NewPoints[i] = d.Int()
	}
	ws.Truncated = d.Bool()
	nb := d.length(1)
	for i := 0; i < nb && d.err == nil; i++ {
		b := WireBug{
			Type:      d.Int(),
			Message:   d.String(),
			Execution: d.Int(),
			Scenario:  d.Int(),
			Count:     d.Int(),
			Choices:   d.String(),
		}
		b.Trace = d.trace()
		b.Replay = d.Points()
		ws.Bugs = append(ws.Bugs, b)
	}
	nm := d.length(1)
	for i := 0; i < nm && d.err == nil; i++ {
		ws.MultiRF = append(ws.MultiRF, d.multiRF())
	}
	np := d.length(1)
	for i := 0; i < np && d.err == nil; i++ {
		ws.PerfIssues = append(ws.PerfIssues, d.perfIssue())
	}
	ws.Obs = d.obsShard()
	return ws
}

// PorEntries reads a POR publication-log batch (nil when empty).
func (d *WireDecoder) PorEntries() []WirePorEntry {
	n := d.length(9) // fixed fp alone is 8 bytes
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]WirePorEntry, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		var en WirePorEntry
		en.FP = d.Fixed64()
		dl := &en.Delta
		dl.Scenarios = d.Int()
		dl.Execs = d.Int()
		dl.Steps = d.Varint()
		dl.MaxRF = d.Int()
		dl.MaxRel = d.Int()
		for j := range dl.NewPoints {
			dl.NewPoints[j] = d.Int()
		}
		dl.Replayed = d.Varint()
		dl.Fresh = d.Varint()
		if d.Bool() {
			dl.Vec = d.sparseVec()
		}
		nb := d.length(1)
		for j := 0; j < nb && d.err == nil; j++ {
			b := WirePorBug{
				Type:    d.Int(),
				Message: d.String(),
				Exec:    d.Int(),
				Count:   d.Int(),
				Rel:     d.String(),
			}
			b.Suffix = d.Points()
			b.Trace = d.trace()
			dl.Bugs = append(dl.Bugs, b)
		}
		np := d.length(1)
		for j := 0; j < np && d.err == nil; j++ {
			p := WirePorPerf{Count: d.Int()}
			p.Issue = d.perfIssue()
			dl.Perf = append(dl.Perf, p)
		}
		nm := d.length(1)
		for j := 0; j < nm && d.err == nil; j++ {
			m := WirePorMulti{Count: d.Int()}
			m.Multi = d.multiRF()
			dl.Multi = append(dl.Multi, m)
		}
		out = append(out, en)
	}
	if d.err != nil {
		return nil
	}
	return out
}
